// Ablation for Theorem III.1 / Sec. III-B: (a) verify the generated trip
// lengths fit a log-normal, (b) numerically evaluate the paper's expected
// sharing probability E(theta >= delta) at delta = pi/2 under the fitted
// log-normal with gamma = 1.5 (paper reports 40.98% for CHD and 41.38% for
// NYC), and (c) measure the empirical shareable fraction among wide-angle
// pairs for comparison.

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/harness.h"
#include "geo/angle.h"
#include "roadnet/generator.h"
#include "sharegraph/builder.h"
#include "sim/datasets.h"
#include "sim/workload.h"
#include "util/stats.h"

using namespace structride;

namespace {

// Log-normal CDF with parameters (mu, sigma).
double LogNormalCdf(double x, double mu, double sigma) {
  if (x <= 0) return 0;
  return 0.5 * std::erfc(-(std::log(x) - mu) / (sigma * std::sqrt(2.0)));
}

// The paper's E(theta >= delta): for trip cost 2c = x of request ra, a
// candidate rb at angle theta = delta shares if its trip cost y satisfies
// y <= g(c) (schedule a) or y >= h(c) (schedule b), with
//   g(c) = 1 / (cos^2(t/2) / (gamma c) + sin^2(t/2) / ((gamma-1) c))
//   h(c) = 2 c (1 - cos t) / (gamma - 1).
double ExpectedSharingProbability(double mu, double sigma, double gamma,
                                  double theta) {
  double cos_half_sq = std::pow(std::cos(theta / 2), 2);
  double sin_half_sq = std::pow(std::sin(theta / 2), 2);
  // Numeric integration over x ~ LogNormal(mu, sigma).
  const int kSteps = 4000;
  double total = 0;
  double prev_cdf = 0;
  for (int i = 1; i <= kSteps; ++i) {
    // Integrate in quantile space for stability.
    double q = (static_cast<double>(i) - 0.5) / kSteps;
    // Inverse CDF via bisection on LogNormalCdf.
    double lo = 1e-6, hi = std::exp(mu + 6 * sigma);
    for (int it = 0; it < 60; ++it) {
      double mid = 0.5 * (lo + hi);
      if (LogNormalCdf(mid, mu, sigma) < q) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    double x = 0.5 * (lo + hi);
    double c = x / 2;
    double g = 1.0 / (cos_half_sq / (gamma * c) + sin_half_sq / ((gamma - 1) * c));
    double h = 2 * c * (1 - std::cos(theta)) / (gamma - 1);
    double p = LogNormalCdf(g, mu, sigma) +
               (1.0 - LogNormalCdf(std::max(h, g), mu, sigma));
    total += p;
    (void)prev_cdf;
  }
  return total / kSteps;
}

}  // namespace

int main() {
  std::printf("\n================================================================\n");
  std::printf("Sec. III-B ablation: angle pruning expectation E(theta >= pi/2)\n");
  std::printf("================================================================\n");
  std::printf("%-10s%12s%12s%16s%18s\n", "dataset", "fit mu", "fit sigma",
              "E(analytic)", "empirical share");

  for (const char* name : {"CHD", "NYC"}) {
    DatasetSpec spec = DatasetByName(name, 0.2);
    RoadNetwork net = BuildNetwork(&spec);
    TravelCostEngine engine(net);
    auto reqs = GenerateWorkload(net, &engine, spec.policy, spec.workload);

    // Fit log-normal to direct costs.
    RunningStat logs;
    for (const Request& r : reqs) logs.Add(std::log(r.direct_cost));
    double mu = logs.Mean();
    double sigma = logs.StdDev();

    double analytic = ExpectedSharingProbability(mu, sigma, /*gamma=*/1.5,
                                                 /*theta=*/kPi / 2);

    // Empirical: among sampled pairs with angle >= pi/2, what fraction is
    // actually shareable? (These are the pairs the prune would discard.)
    ShareGraphBuilderOptions bopts;
    bopts.use_angle_pruning = false;
    ShareGraphBuilder builder(&engine, bopts);
    int wide = 0, wide_shareable = 0;
    size_t limit = std::min<size_t>(reqs.size(), 400);
    for (size_t i = 0; i < limit; ++i) {
      for (size_t j = i + 1; j < limit && wide < 4000; ++j) {
        const Request& ra = reqs[i];
        const Request& rb = reqs[j];
        if (std::abs(ra.release_time - rb.release_time) > 120) continue;
        Point sb = net.position(rb.source);
        Point eb = net.position(rb.destination);
        Point ea = net.position(ra.destination);
        double theta = AngleBetween(ea - sb, eb - sb);
        if (theta < kPi / 2) continue;
        ++wide;
        if (builder.Shareable(ra, rb)) ++wide_shareable;
      }
    }
    double empirical = wide == 0 ? 0 : static_cast<double>(wide_shareable) / wide;
    bench::RecordJsonValue(name, "gamma=1.5", "analytic_expectation", analytic);
    bench::RecordJsonValue(name, "gamma=1.5", "empirical_share", empirical);
    std::printf("%-10s%12.3f%12.3f%16.4f%18.4f\n", name, mu, sigma, analytic,
                empirical);
  }
  std::printf("\npaper: E = 0.4098 (CHD), 0.4138 (NYC) at gamma=1.5\n");
  return 0;
}
