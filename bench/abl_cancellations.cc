// Robustness ablation: rider impatience. Real platforms lose unassigned
// requests to cancellations; batch methods hold requests in a working set
// across proposal rounds, so impatience should hurt them more than
// immediate-insertion online methods. This bench sweeps the cancellation
// rate of the engine's fault model over both taxi datasets and reports each
// algorithm's service rate and cancelled count.

#include <cstdio>
#include <string>

#include "bench/harness.h"
#include "sim/engine.h"
#include "sim/workload.h"

using namespace structride;
using namespace structride::bench;

int main() {
  const double scale = BenchScale();
  std::printf("\n================================================================\n");
  std::printf("Robustness ablation: rider cancellations (patience ~ Exp(60 s))\n");
  std::printf("================================================================\n");
  std::printf("%-8s%-14s%8s%10s%12s%16s\n", "city", "algorithm", "rate",
              "service", "cancelled", "unified cost");
  for (const std::string& ds : {std::string("CHD"), std::string("NYC")}) {
    DatasetSpec spec = DatasetByName(ds, scale);
    RoadNetwork net = BuildNetwork(&spec);
    TravelCostEngine engine(net);
    auto requests = GenerateWorkload(net, &engine, spec.policy, spec.workload);
    for (double rate : {0.0, 0.2, 0.5}) {
      for (const std::string& algorithm : BenchAlgorithms()) {
        // One engine per (rate, algorithm): the fault model's RNG advances
        // across runs on a shared engine, so reusing one would hand each
        // successive algorithm a different cancellation/capacity draw and
        // skew the comparison.
        SimulationOptions sopts;
        sopts.batch_period = 5;
        sopts.seed = 4242;
        sopts.dataset = ds;
        sopts.cancellation_rate = rate;
        sopts.cancellation_patience = 60.0;
        SimulationEngine sim(&engine, requests, sopts);
        sim.SpawnFleet(spec.num_vehicles, spec.capacity);
        DispatchConfig config;
        config.vehicle_capacity = spec.capacity;
        config.grouping.max_group_size = spec.capacity;
        RunMetrics m = sim.Run(algorithm, config);
        RecordJsonRow(algorithm, ds + " rate=" + std::to_string(rate), m);
        std::printf("%-8s%-14s%8.1f%10.3f%12d%16.0f\n", ds.c_str(),
                    algorithm.c_str(), rate, m.service_rate, m.cancelled,
                    m.unified_cost);
      }
    }
  }
  std::printf("\nOnline methods assign at release and barely notice impatience;\n"
              "batch methods carry unassigned requests across rounds, so their\n"
              "working sets bleed under high cancellation rates.\n");
  return 0;
}
