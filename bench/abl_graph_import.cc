// Graph import / snapshot-persistence ablation: the build-once/load-many
// story, measured and gated.
//
// Phases (always all of them, so both CI modes emit the same row set):
//   1. import the graph file (DIMACS/OSM; default: the bundled fixture)
//   2. build the hub-label arena and the CH upward CSR from scratch
//   3. write the snapshot — or reuse an existing one at
//      STRUCTRIDE_SNAPSHOT_PATH (the CI cache), which turns the parity
//      gate below into a cross-run differential
//   4. load it back, heap-read and mmap, several times (load-many)
//   5. parity gate: on sampled pairs, Dijkstra / bidirectional / A* / HL /
//      CH on the loaded graph must be bitwise equal to the rebuilt
//      in-memory versions, and a loaded-engine vs rebuilt-engine replay
//      must agree cost-for-cost with identical sp_queries. Any divergence
//      exits nonzero.
//
// The "engine_ready" row is the compare_bench.py hook: its running_time_s
// is the time from graph file to query-ready engine under
// STRUCTRIDE_IMPORT_MODE — "build" (import + index builds) or "snapshot"
// (one heap-read load). CI runs the bench once per mode into two JSON dirs
// and gates snapshot >= 10x build. The row's unified_cost carries the sum
// of the sampled costs and sp_queries the replay's backend count, so the
// same compare also pins cost parity across the two processes.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "roadnet/astar.h"
#include "roadnet/contraction_hierarchies.h"
#include "roadnet/dijkstra.h"
#include "roadnet/hub_labeling.h"
#include "roadnet/importer.h"
#include "roadnet/snapshot.h"
#include "roadnet/travel_cost.h"
#include "util/random.h"

namespace structride {
namespace {

using Clock = std::chrono::steady_clock;

double Seconds(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

int g_failures = 0;

void Check(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "[abl_graph_import] PARITY FAIL: %s\n", what);
    ++g_failures;
  }
}

// One timing row for the JSON diff; the zeroed outcome fields are equal in
// both modes by construction, so only the gates we set carry signal.
void RecordTiming(const std::string& dataset, const std::string& point,
                  double seconds, double cost_digest = 0,
                  uint64_t sp_queries = 0, int samples = 0) {
  RunMetrics m;
  m.dataset = dataset;
  m.algorithm = "import";
  m.running_time = seconds;
  m.unified_cost = cost_digest;
  m.sp_queries = sp_queries;
  m.total_requests = samples;
  bench::RecordJsonRow("import", point, m);
}

}  // namespace
}  // namespace structride

int main() {
  using namespace structride;

  const char* file_env = std::getenv("STRUCTRIDE_GRAPH_FILE");
  const std::string graph_file =
      (file_env != nullptr && file_env[0] != '\0')
          ? file_env
          : std::string(STRUCTRIDE_FIXTURE_DIR) + "/mini.gr";
  const char* mode_env = std::getenv("STRUCTRIDE_IMPORT_MODE");
  const std::string mode = mode_env != nullptr ? mode_env : "build";
  if (mode != "build" && mode != "snapshot") {
    std::fprintf(stderr, "STRUCTRIDE_IMPORT_MODE must be build or snapshot\n");
    return 2;
  }
  const char* snap_env = std::getenv("STRUCTRIDE_SNAPSHOT_PATH");
  const std::string snap_path =
      (snap_env != nullptr && snap_env[0] != '\0') ? snap_env
                                                   : graph_file + ".snap";
  size_t slash = graph_file.find_last_of('/');
  const std::string dataset =
      slash == std::string::npos ? graph_file : graph_file.substr(slash + 1);

  std::printf("abl_graph_import: %s (mode=%s, snapshot=%s)\n",
              graph_file.c_str(), mode.c_str(), snap_path.c_str());

  // Phase 1+2: the cold path every process without a snapshot pays.
  std::string error;
  RoadNetwork net;
  ImportStats stats;
  auto t0 = Clock::now();
  if (!ImportGraphFile(graph_file, {}, &net, &stats, &error)) {
    std::fprintf(stderr, "import failed: %s\n", error.c_str());
    return 2;
  }
  net.Freeze();
  auto t1 = Clock::now();
  HubLabeling hl(net);
  auto t2 = Clock::now();
  ContractionHierarchies ch(net);
  auto t3 = Clock::now();
  const double import_s = Seconds(t0, t1);
  const double build_hl_s = Seconds(t1, t2);
  const double build_ch_s = Seconds(t2, t3);
  std::printf("  import          %8.2f ms  (%zu nodes, %zu edges)\n",
              import_s * 1e3, net.num_nodes(), net.num_edges());
  std::printf("  build HL        %8.2f ms  (%zu label entries)\n",
              build_hl_s * 1e3, hl.TotalLabelEntries());
  std::printf("  build CH        %8.2f ms  (%zu shortcuts)\n",
              build_ch_s * 1e3, ch.num_shortcuts());

  // Phase 3: write (or adopt the cached) snapshot.
  double write_s = 0;
  GraphBundle probe;
  bool have_cached = LoadGraphSnapshot(snap_path, {}, &probe, &error);
  if (!have_cached) {
    SnapshotWriteOptions wopts;
    wopts.hub_labels = &hl;
    wopts.ch = &ch;
    auto w0 = Clock::now();
    if (!WriteGraphSnapshot(net, wopts, snap_path, &error)) {
      std::fprintf(stderr, "snapshot write failed: %s\n", error.c_str());
      return 2;
    }
    write_s = Seconds(w0, Clock::now());
    std::printf("  write snapshot  %8.2f ms\n", write_s * 1e3);
  } else {
    std::printf("  reusing cached snapshot (cross-run differential)\n");
  }
  probe = GraphBundle{};  // drop the probe mapping before the timed loads

  // Phase 4: load-many. The heap read is what BuildGraph does; time both.
  constexpr int kLoads = 5;
  double load_read_s = 0, load_mmap_s = 0;
  GraphBundle loaded;
  for (int i = 0; i < kLoads; ++i) {
    for (bool use_mmap : {false, true}) {
      GraphBundle bundle;
      SnapshotLoadOptions lopts;
      lopts.use_mmap = use_mmap;
      auto l0 = Clock::now();
      if (!LoadGraphSnapshot(snap_path, lopts, &bundle, &error)) {
        std::fprintf(stderr, "snapshot load failed: %s\n", error.c_str());
        return 2;
      }
      (use_mmap ? load_mmap_s : load_read_s) += Seconds(l0, Clock::now());
      if (i + 1 == kLoads) loaded = std::move(bundle);
    }
  }
  load_read_s /= kLoads;
  load_mmap_s /= kLoads;
  std::printf("  load (read)     %8.2f ms  (mean of %d)\n", load_read_s * 1e3,
              kLoads);
  std::printf("  load (mmap)     %8.2f ms  (mean of %d)\n", load_mmap_s * 1e3,
              kLoads);

  // Phase 5a: backend parity, loaded vs rebuilt, bitwise.
  Check(loaded.network.num_nodes() == net.num_nodes(), "node count");
  Check(loaded.network.num_edges() == net.num_edges(), "edge count");
  Check(loaded.hub_labels != nullptr && loaded.ch != nullptr,
        "loaded snapshot carries both indices");
  if (g_failures != 0) return 1;

  Rng rng(4321);
  const int64_t n = static_cast<int64_t>(net.num_nodes());
  const int kSamples = 200;
  double cost_digest = 0;
  for (int i = 0; i < kSamples; ++i) {
    NodeId s = static_cast<NodeId>(rng.UniformInt(0, n - 1));
    NodeId t = static_cast<NodeId>(rng.UniformInt(0, n - 1));
    const double want_hl = hl.Query(s, t);
    Check(BidirectionalDijkstra(loaded.network, s, t) ==
              BidirectionalDijkstra(net, s, t),
          "bidirectional Dijkstra bitwise equality");
    Check(AStarCost(loaded.network, s, t) == AStarCost(net, s, t),
          "A* bitwise equality");
    Check(loaded.hub_labels->Query(s, t) == want_hl,
          "hub-label bitwise equality");
    Check(loaded.ch->Query(s, t) == ch.Query(s, t), "CH bitwise equality");
    cost_digest += want_hl;
  }
  std::vector<double> full_ref = DijkstraAll(net, 0);
  std::vector<double> full_loaded = DijkstraAll(loaded.network, 0);
  Check(full_ref == full_loaded, "full Dijkstra tree bitwise equality");

  // Phase 5b: engine differential — a rebuilt engine and a loaded-adopting
  // engine replay the same query stream; costs and sp_queries must match.
  TravelCostOptions built_opts;
  TravelCostEngine built(net, built_opts);
  TravelCostOptions adopt_opts;
  adopt_opts.prebuilt_hub_labels = loaded.hub_labels.get();
  adopt_opts.prebuilt_ch = loaded.ch.get();
  TravelCostEngine adopted(loaded.network, adopt_opts);
  Rng qrng(8765);
  for (int i = 0; i < 2000; ++i) {
    NodeId s = static_cast<NodeId>(qrng.UniformInt(0, n - 1));
    NodeId t = static_cast<NodeId>(qrng.UniformInt(0, n - 1));
    Check(built.Cost(s, t) == adopted.Cost(s, t), "engine cost equality");
  }
  Check(built.num_queries() == adopted.num_queries(),
        "engine sp_queries equality");
  const uint64_t sp_queries = adopted.num_queries();

  // The compare_bench rows (see file comment).
  const double build_path_s = import_s + build_hl_s + build_ch_s;
  const double ready_s = mode == "build" ? build_path_s : load_read_s;
  RecordTiming(dataset, "engine_ready", ready_s, cost_digest, sp_queries,
               kSamples);
  RecordTiming(dataset, "import", import_s);
  RecordTiming(dataset, "build_hl", build_hl_s);
  RecordTiming(dataset, "build_ch", build_ch_s);
  RecordTiming(dataset, "load_read", load_read_s);
  RecordTiming(dataset, "load_mmap", load_mmap_s);

  std::printf("  engine_ready    %8.2f ms  (mode=%s; build path %.2f ms, "
              "load %.2f ms, ratio %.1fx)\n",
              ready_s * 1e3, mode.c_str(), build_path_s * 1e3,
              load_read_s * 1e3,
              load_read_s > 0 ? build_path_s / load_read_s : 0.0);

  if (g_failures != 0) {
    std::fprintf(stderr, "abl_graph_import: %d parity failures\n", g_failures);
    return 1;
  }
  std::printf("abl_graph_import: loaded and rebuilt backends agree bitwise "
              "on %d sampled pairs + %d engine queries\n",
              kSamples, 2000);
  return 0;
}
