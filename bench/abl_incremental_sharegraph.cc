// Incremental share-graph maintenance ablation (DESIGN.md §7): every
// graph-consuming dispatcher replayed per dataset preset with the
// run-maintained incremental graph ON and with the frozen
// rebuild-per-batch reference, at the bench defaults. Two jobs:
//
//  1. Parity gate — the incremental rows must reproduce the rebuild rows
//     bitwise on served / unified cost / #SP queries (and the
//     service-quality stats); the bench exits nonzero on any divergence,
//     so the nightly smoke run doubles as the maintenance-equivalence
//     check at bench scale, the discipline abl_scenarios applies to the
//     event core.
//  2. Redundancy gate — GAS and RTV rebuild their graph over the whole
//     pending pool every batch, re-running pair feasibility checks that
//     already ran; incremental maintenance must cut their exact pair
//     checks by >= 2x. (SARD already carried a persistent builder, so its
//     ratio is reported but not gated.)
//
// Every recorded run gets a freshly constructed SimulationEngine AND a
// fresh, cold travel-cost cache (the same discipline as the engine
// parity tests): a shared warm cache would report sp_queries == 0 on both
// sides — a vacuous gate — and, past the LRU capacity, leave the two runs
// starting from different cache states, failing the gate with no real
// divergence. The workload is generated once per dataset from a separate
// engine so every run replays the identical stream.
//
// Scale bound: the sp_queries equality leg of the gate assumes the run's
// distinct travel-cost pairs fit the engine's LRU (2^20 entries) — past
// that, the rebuild path recomputes evicted legs the incremental path
// never re-touches and the counts legitimately drift apart with no
// behavioral divergence. Fine through the default scale 0.25 with room to
// spare; at paper-size scales (~25) compare served/unified_cost only or
// raise TravelCostOptions::cache_capacity here.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "sim/engine.h"

using namespace structride;
using namespace structride::bench;

int main() {
  const double scale = BenchScale();
  std::printf("\n================================================================\n");
  std::printf("Incremental share graph vs rebuild-per-batch, per dispatcher\n");
  std::printf("================================================================\n");
  std::printf("%-9s%-7s%-13s%8s%16s%12s%14s%8s\n", "city", "algo", "mode",
              "served", "unified cost", "sp queries", "pair checks",
              "ratio");

  int failures = 0;
  for (const std::string& ds :
       {std::string("CHD"), std::string("NYC"), std::string("Cainiao")}) {
    DatasetSpec spec = DatasetByName(ds, scale);
    RoadNetwork net = BuildNetwork(&spec);
    std::vector<Request> requests;
    {
      TravelCostEngine workload_engine(net);
      requests =
          GenerateWorkload(net, &workload_engine, spec.policy, spec.workload);
    }

    for (const std::string& algo :
         {std::string("GAS"), std::string("RTV"), std::string("SARD")}) {
      auto run_mode = [&](bool incremental) {
        TravelCostEngine engine(net);  // cold cache per recorded run
        SimulationOptions sopts;
        sopts.batch_period = 5;
        sopts.seed = 4242;
        sopts.dataset = ds;
        SimulationEngine sim(&engine, requests, sopts);
        sim.SpawnFleet(spec.num_vehicles, spec.capacity);
        DispatchConfig config;
        config.vehicle_capacity = spec.capacity;
        config.grouping.max_group_size = spec.capacity;
        config.sharegraph.vehicle_capacity = spec.capacity;
        config.incremental_sharegraph = incremental;
        return sim.Run(algo, config);
      };

      RunMetrics rebuild = run_mode(false);
      RunMetrics incremental = run_mode(true);
      RecordJsonRow(algo, ds + " rebuild", rebuild);
      RecordJsonRow(algo, ds + " incremental", incremental);
      // Vacuously 1x when neither path checked a pair (degenerate scale);
      // a rebuild count with zero incremental checks is a full elimination.
      const double ratio =
          rebuild.sharegraph_pair_checks == 0
              ? 1.0
              : (incremental.sharegraph_pair_checks == 0
                     ? static_cast<double>(rebuild.sharegraph_pair_checks)
                     : static_cast<double>(rebuild.sharegraph_pair_checks) /
                           static_cast<double>(
                               incremental.sharegraph_pair_checks));
      RecordJsonValue(algo, ds, "pair_check_reduction", ratio);

      for (const RunMetrics* m : {&rebuild, &incremental}) {
        std::printf("%-9s%-7s%-13s%8d%16.0f%12llu%14llu%8.2f\n", ds.c_str(),
                    algo.c_str(), m == &rebuild ? "rebuild" : "incremental",
                    m->served, m->unified_cost,
                    static_cast<unsigned long long>(m->sp_queries),
                    static_cast<unsigned long long>(m->sharegraph_pair_checks),
                    m == &rebuild ? 1.0 : ratio);
      }

      const bool parity = incremental.served == rebuild.served &&
                          incremental.unified_cost == rebuild.unified_cost &&
                          incremental.sp_queries == rebuild.sp_queries &&
                          incremental.cancelled == rebuild.cancelled &&
                          incremental.pickup_wait_p50 == rebuild.pickup_wait_p50 &&
                          incremental.pickup_wait_p99 == rebuild.pickup_wait_p99 &&
                          incremental.mean_detour_ratio ==
                              rebuild.mean_detour_ratio;
      if (!parity) {
        ++failures;
        std::fprintf(stderr,
                     "DIVERGED: %s %s incremental != rebuild-per-batch\n",
                     ds.c_str(), algo.c_str());
      }
      if (algo != "SARD" && rebuild.sharegraph_pair_checks > 0 &&
          ratio < 2.0) {
        ++failures;
        std::fprintf(stderr,
                     "FAIL: %s %s pair-check reduction %.2fx < 2x\n",
                     ds.c_str(), algo.c_str(), ratio);
      }
    }
  }

  std::printf(
      "\nIncremental rows must reproduce the rebuild rows bitwise (served,\n"
      "unified cost, #SP queries, service-quality stats): the maintained\n"
      "graph is the same graph, it just skips re-checking pairs that\n"
      "already ran in earlier batches — which is where the >= 2x pair-check\n"
      "reduction for GAS/RTV comes from. SARD already maintained its graph\n"
      "across batches, so its ratio hovers near 1x by construction.\n");
  if (failures > 0) {
    std::fprintf(stderr, "FAIL: %d divergence/reduction gate(s) tripped\n",
                 failures);
    return 1;
  }
  return 0;
}
