// Ablation for the Sec. IV-A claim: inserting requests in ascending order of
// shareability (graph degree) raises the probability that linear insertion
// reaches the globally optimal schedule. Paper numbers: release order gives
// 89% / 85% optimal when inserting the 3rd / 4th request (NYC / CHD);
// shareability order raises this to 91% / 90%.
//
// Method: sample k-cliques from a real shareability graph, compute the exact
// optimum with the kinetic tree, and compare against linear insertion under
// both orderings.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/harness.h"
#include "core/insertion.h"
#include "core/kinetic_tree.h"
#include "roadnet/generator.h"
#include "sharegraph/builder.h"
#include "sim/workload.h"
#include "util/random.h"

using namespace structride;

namespace {

struct Tally {
  int optimal = 0;
  int total = 0;
  double Rate() const { return total == 0 ? 0 : static_cast<double>(optimal) / total; }
};

// Linear insertion of `order` into an empty schedule; returns cost or -1.
double LinearCost(const RouteState& state, const std::vector<Request>& order,
                  TravelCostEngine* engine) {
  Schedule schedule;
  for (const Request& r : order) {
    InsertionCandidate cand = BestInsertion(state, schedule, r, engine);
    if (!cand.feasible) return -1;
    schedule = Schedule(ApplyInsertion(schedule, r, cand));
  }
  auto [ok, cost] = CheckSchedule(state, schedule.stops(), engine);
  return ok ? cost : -1;
}

}  // namespace

int main() {
  CityOptions copt;
  copt.rows = 24;
  copt.cols = 24;
  copt.seed = 77;
  RoadNetwork net = GenerateGridCity(copt);
  TravelCostEngine engine(net);
  DeadlinePolicy policy;
  policy.gamma = 1.4;  // tight detours: orderings actually matter

  std::printf("\n================================================================\n");
  std::printf("Sec. IV-A ablation: linear insertion optimality probability\n");
  std::printf("================================================================\n");
  std::printf("%-8s%-22s%14s%10s\n", "k", "insertion order", "P(optimal)",
              "samples");

  Rng rng(4242);
  for (int k : {3, 4}) {
    Tally release_order, shareability_order;
    for (int round = 0; round < 80; ++round) {
      // A fresh burst of near-simultaneous requests.
      WorkloadOptions wopts;
      wopts.num_requests = 90;
      wopts.duration = 30;
      wopts.seed = 1000 + static_cast<uint64_t>(round) * 13 + k;
      auto reqs = GenerateWorkload(net, &engine, policy, wopts);
      ShareGraphBuilderOptions bopts;
      bopts.use_angle_pruning = false;
      bopts.vehicle_capacity = k;
      ShareGraphBuilder builder(&engine, bopts);
      builder.AddBatch(reqs);
      const ShareGraph& sg = builder.graph();

      // Sample k-cliques greedily from random seeds.
      for (int attempt = 0; attempt < 40; ++attempt) {
        RequestId seed = reqs[static_cast<size_t>(
                                  rng.UniformInt(0, static_cast<int64_t>(
                                                        reqs.size()) -
                                                        1))]
                             .id;
        std::vector<RequestId> clique = {seed};
        for (RequestId nb : sg.Neighbors(seed)) {
          bool connected_to_all = true;
          for (RequestId m : clique) {
            if (m != seed && !sg.HasEdge(nb, m)) {
              connected_to_all = false;
              break;
            }
          }
          if (connected_to_all) clique.push_back(nb);
          if (static_cast<int>(clique.size()) == k) break;
        }
        if (static_cast<int>(clique.size()) != k) continue;

        std::vector<Request> members;
        for (RequestId id : clique) members.push_back(builder.request(id));
        RouteState state;
        state.start = members[0].source;
        state.start_time = 0;
        state.capacity = k;

        // Exact optimum.
        KineticTree tree(state);
        bool all = true;
        for (const Request& r : members) {
          if (!tree.Insert(r, &engine)) {
            all = false;
            break;
          }
        }
        if (!all) continue;
        double optimal = tree.BestCost(&engine);

        // Release order.
        std::vector<Request> by_release = members;
        std::sort(by_release.begin(), by_release.end(),
                  [](const Request& a, const Request& b) {
                    return a.release_time < b.release_time;
                  });
        double lin_release = LinearCost(state, by_release, &engine);
        if (lin_release >= 0) {
          ++release_order.total;
          if (lin_release <= optimal + 1e-6) ++release_order.optimal;
        }

        // Ascending shareability (degree) order.
        std::vector<Request> by_degree = members;
        std::sort(by_degree.begin(), by_degree.end(),
                  [&sg](const Request& a, const Request& b) {
                    return sg.Degree(a.id) < sg.Degree(b.id);
                  });
        double lin_degree = LinearCost(state, by_degree, &engine);
        if (lin_degree >= 0) {
          ++shareability_order.total;
          if (lin_degree <= optimal + 1e-6) ++shareability_order.optimal;
        }
      }
    }
    std::printf("%-8d%-22s%14.3f%10d\n", k, "release time",
                release_order.Rate(), release_order.total);
    std::printf("%-8d%-22s%14.3f%10d\n", k, "ascending shareability",
                shareability_order.Rate(), shareability_order.total);
    const std::string point = "k=" + std::to_string(k);
    bench::RecordJsonValue("release time", point, "p_optimal",
                           release_order.Rate());
    bench::RecordJsonValue("release time", point, "samples",
                           release_order.total);
    bench::RecordJsonValue("ascending shareability", point, "p_optimal",
                           shareability_order.Rate());
    bench::RecordJsonValue("ascending shareability", point, "samples",
                           shareability_order.total);
  }
  std::printf("\npaper: release 0.89/0.85, shareability 0.91/0.90 (k=3/k=4)\n");
  return 0;
}
