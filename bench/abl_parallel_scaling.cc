// Ablation for the paper's scalability note ("multi-threading can speed up
// the Shareability Graph building and acceptance stage as each vehicle
// decides independently"): SARD swept over worker-thread counts × fleet
// sizes, against the *serial baseline* — one thread on the legacy dispatch
// path (full-fleet distance sort per group scan, no worker pool), i.e. the
// pre-refactor code the sharded cache / spatial index / thread pool
// replaced. Result quality (service rate, unified cost, served, #SP
// queries) must be identical in every cell: the parallelism prices
// proposals only, commits stay serial and deterministic, and the spatial
// index is outcome-identical by construction. The bench exits nonzero if
// any cell's outcome diverges from its fleet's baseline, so the nightly
// smoke run doubles as a determinism check.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "sim/engine.h"
#include "sim/workload.h"
#include "util/alloc_gate.h"

using namespace structride;
using namespace structride::bench;

int main() {
  const double scale = BenchScale();
  std::printf("\n================================================================\n");
  std::printf("Scalability ablation: SARD threads x fleet sweep vs serial baseline\n");
  std::printf("================================================================\n");
  std::printf("%-8s%-8s%-10s%10s%16s%12s%10s%12s\n", "city", "fleet",
              "threads", "service", "unified cost", "time (s)", "speedup",
              "allocs p50");
  if (HeapAllocCountingActive()) {
    std::printf("(counting allocator active: steady-state rounds on the "
                "pooled path must allocate nothing)\n");
  }

  int divergences = 0;
  int alloc_gate_failures = 0;
  for (const std::string& ds : {std::string("CHD"), std::string("NYC")}) {
    DatasetSpec spec = DatasetByName(ds, scale);
    // Triple the arrival rate: graph building and proposal pricing are what
    // parallelize, so batches must be busy enough for the sweep to mean
    // something.
    spec.workload.num_requests *= 3;
    RoadNetwork net = BuildNetwork(&spec);
    TravelCostEngine engine(net);
    auto reqs = GenerateWorkload(net, &engine, spec.policy, spec.workload);
    SimulationOptions sopts;
    sopts.batch_period = 10;
    sopts.seed = 4242;
    sopts.dataset = ds;

    for (int fleet_mult : {1, 4}) {
      SimulationEngine sim(&engine, reqs, sopts);
      sim.SpawnFleet(spec.num_vehicles * fleet_mult, spec.capacity);

      auto config_for = [&](int threads, bool spatial_index) {
        DispatchConfig c;
        c.vehicle_capacity = spec.capacity;
        c.grouping.max_group_size = spec.capacity;
        c.use_spatial_index = spatial_index;
        c.sard_parallel_acceptance = threads > 1;
        c.num_threads = threads;
        return c;
      };

      // Warm the shared travel-cost cache so every measured cell sees the
      // same (hot) cache and #SP-query comparisons are apples-to-apples.
      sim.Run("SARD", config_for(1, true));

      // Serial baseline: one thread, legacy full-sort candidate scans.
      RunMetrics base = sim.Run("SARD", config_for(1, false));
      RecordJsonRow("SARD", ds + " x" + std::to_string(fleet_mult) + " base",
                    base);
      std::printf("%-8sx%-7d%-10s%10.3f%16.0f%12.2f%10s%12s\n", ds.c_str(),
                  fleet_mult, "base", base.service_rate, base.unified_cost,
                  base.running_time, "1.00", "-");

      for (int threads : {1, 2, 4, 8}) {
        RunMetrics r = sim.Run("SARD", config_for(threads, true));
        RecordJsonRow("SARD", ds + " x" + std::to_string(fleet_mult) + " t" +
                                  std::to_string(threads),
                      r);
        bool same = r.served == base.served &&
                    r.unified_cost == base.unified_cost &&
                    r.sp_queries == base.sp_queries;
        if (!same) ++divergences;
        // The allocation gate (DESIGN.md §8): with the counting allocator
        // linked in, the pooled dispatch path must keep its zero-heap
        // promise on steady-state rounds at every thread count. The serial
        // baseline cell is exempt — use_spatial_index=false runs the legacy
        // allocating candidate scans by design.
        bool allocs_ok =
            !HeapAllocCountingActive() || r.allocs_per_batch_p50 == 0;
        if (!allocs_ok) ++alloc_gate_failures;
        std::printf("%-8sx%-7d%-10d%10.3f%16.0f%12.2f%10.2f%12llu%s%s\n",
                    ds.c_str(), fleet_mult, threads, r.service_rate,
                    r.unified_cost, r.running_time,
                    r.running_time > 0 ? base.running_time / r.running_time
                                       : 0.0,
                    static_cast<unsigned long long>(r.allocs_per_batch_p50),
                    same ? "" : "  << DIVERGED from baseline",
                    allocs_ok ? "" : "  << STEADY BATCHES ALLOCATED");
      }
    }

    // ---- Shards dimension (DESIGN.md §12) ----
    // The second parallel axis: geo-shards × worker threads with the
    // acceptance stage kept serial (sard_parallel_acceptance=false), so
    // concurrent shard batches are the *only* thing threads buy. Each shard
    // count gets its own engine (its own cache partitions, warmed before
    // measuring); the gate is thread-invariance — the 8-thread cell must be
    // bitwise identical to the 1-thread cell of the same shard count, which
    // pins the concurrent batch phase against the serial shard-id-order
    // reference. Outcomes legitimately differ *across* shard counts (zonal
    // dispatch is a different policy), so speedup is reported against the
    // 1-shard 1-thread cell but parity is gated only within a shard count.
    std::printf("%-8s%-8s%-10s%10s%16s%12s%10s%12s\n", "city", "shards",
                "threads", "service", "unified cost", "time (s)", "speedup",
                "allocs p50");
    double z1t1_time = 0;
    for (int shards : {1, 2, 4}) {
      SimulationEngine zsim(&engine, reqs, sopts);
      zsim.SpawnFleet(spec.num_vehicles, spec.capacity);
      auto zconfig = [&](int threads) {
        DispatchConfig c;
        c.vehicle_capacity = spec.capacity;
        c.grouping.max_group_size = spec.capacity;
        c.sard_parallel_acceptance = false;
        c.num_threads = threads;
        c.num_shards = shards;
        c.concurrent_shards = BenchConcurrentShards();
        return c;
      };
      // Warm both the shared root cache and this engine's shard partitions.
      zsim.Run("SARD", zconfig(1));
      RunMetrics zbase;
      for (int threads : {1, 8}) {
        RunMetrics r = zsim.Run("SARD", zconfig(threads));
        RecordJsonRow("SARD", ds + " z" + std::to_string(shards) + " t" +
                                  std::to_string(threads),
                      r);
        bool same = true;
        if (threads == 1) {
          zbase = r;
          if (shards == 1) z1t1_time = r.running_time;
        } else {
          same = r.served == zbase.served &&
                 r.unified_cost == zbase.unified_cost &&
                 r.sp_queries == zbase.sp_queries &&
                 r.cross_shard_trips == zbase.cross_shard_trips &&
                 r.shard_sp_queries == zbase.shard_sp_queries;
          if (!same) ++divergences;
        }
        bool allocs_ok =
            !HeapAllocCountingActive() || r.allocs_per_batch_p50 == 0;
        if (!allocs_ok) ++alloc_gate_failures;
        std::printf("%-8sz%-7d%-10d%10.3f%16.0f%12.2f%10.2f%12llu%s%s\n",
                    ds.c_str(), shards, threads, r.service_rate,
                    r.unified_cost, r.running_time,
                    r.running_time > 0 ? z1t1_time / r.running_time : 0.0,
                    static_cast<unsigned long long>(r.allocs_per_batch_p50),
                    same ? "" : "  << DIVERGED across thread counts",
                    allocs_ok ? "" : "  << STEADY BATCHES ALLOCATED");
      }
    }
  }

  std::printf("\nEvery cell must match its fleet's baseline on served, unified\n"
              "cost and #SP queries: pricing is a pure read of batch-start\n"
              "fleet state, commits are serial in group order, and the grid\n"
              "fleet index returns the exact prefix of the legacy distance\n"
              "sort. Speedup at 1 thread isolates the spatial index + sharded\n"
              "cache; higher thread counts add pooled parallel graph building\n"
              "and proposal pricing, and scale with the cores the host\n"
              "actually has (on a single-core container they only measure\n"
              "pool overhead). The shards block sweeps the second parallel\n"
              "axis: with acceptance serial, 8 threads must be bitwise\n"
              "identical to 1 thread at every shard count — concurrent shard\n"
              "batches change wall-clock only.\n");
  if (divergences > 0) {
    std::fprintf(stderr, "FAIL: %d cells diverged from the serial baseline\n",
                 divergences);
    return 1;
  }
  if (alloc_gate_failures > 0) {
    std::fprintf(stderr,
                 "FAIL: %d cells heap-allocated on steady-state batches\n",
                 alloc_gate_failures);
    return 1;
  }
  return 0;
}
