// Ablation for the paper's scalability note ("multi-threading can speed up
// the Shareability Graph building and acceptance stage as each vehicle
// decides independently"): SARD with the parallel acceptance stage enabled,
// swept over worker-thread counts, against the single-threaded default.
// Result quality (service rate, unified cost) must be unaffected — the
// parallelism is per-vehicle and decision-order independent — while the
// acceptance stage's share of running time shrinks.

#include <cstdio>
#include <string>

#include "bench/harness.h"
#include "sim/engine.h"
#include "sim/workload.h"

using namespace structride;
using namespace structride::bench;

int main() {
  const double scale = BenchScale();
  std::printf("\n================================================================\n");
  std::printf("Scalability ablation: SARD parallel acceptance (threads sweep)\n");
  std::printf("================================================================\n");
  std::printf("%-8s%-10s%10s%16s%12s%10s\n", "city", "threads", "service",
              "unified cost", "time (s)", "speedup");
  for (const std::string& ds : {std::string("CHD"), std::string("NYC")}) {
    DatasetSpec spec = DatasetByName(ds, scale);
    // Triple the arrival rate: each vehicle's acceptance-phase grouping tree
    // is what parallelizes, so batches must be busy enough for the thread
    // sweep to mean something.
    spec.workload.num_requests *= 3;
    RoadNetwork net = BuildNetwork(&spec);
    TravelCostEngine engine(net);
    auto reqs = GenerateWorkload(net, &engine, spec.policy, spec.workload);
    SimulationOptions sopts;
    sopts.batch_period = 10;
    sopts.seed = 4242;
    SimulationEngine sim(&engine, reqs, sopts);
    sim.SpawnFleet(spec.num_vehicles, spec.capacity);

    // Warm the shared LRU travel-cost cache so the first measured point does
    // not pay all the cache misses for the later ones.
    {
      DispatchConfig warm;
      warm.vehicle_capacity = spec.capacity;
      warm.grouping.max_group_size = spec.capacity;
      sim.Run("SARD", warm);
    }

    double base_time = 0;
    for (int threads : {1, 2, 4, 8}) {
      DispatchConfig c;
      c.vehicle_capacity = spec.capacity;
      c.grouping.max_group_size = spec.capacity;
      c.sard_parallel_acceptance = threads > 1;
      c.num_threads = threads;
      RunMetrics r = sim.Run("SARD", c);
      if (threads == 1) base_time = r.running_time;
      std::printf("%-8s%-10d%10.3f%16.0f%12.2f%10.2f\n", ds.c_str(), threads,
                  r.service_rate, r.unified_cost, r.running_time,
                  r.running_time > 0 ? base_time / r.running_time : 0.0);
    }
  }
  std::printf("\nService rate and unified cost are thread-count invariant (the\n"
              "parallelism is per-vehicle and decision-order independent). At\n"
              "bench scale the speedup hovers near 1: each proposal round spawns\n"
              "its own worker set and most rounds carry only a handful of busy\n"
              "vehicles, so thread startup and cold per-worker caches offset the\n"
              "parallel grouping work. The paper's scalability note holds for\n"
              "city-scale batches (thousands of proposals per round), not here —\n"
              "an honest negative at this reproduction's scale.\n");
  return 0;
}
