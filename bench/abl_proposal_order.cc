// Ablation for the Alg. 3 proposal ordering: the paper's text pops the WORST
// candidate vehicle first ("propose to vehicles needing more additional
// travel costs first", Example 4); this bench compares that literal reading
// against best-first proposals on both taxi datasets. In our simulator the
// literal order loses 3-5 service-rate points and ~10% unified cost, which
// is why the library defaults to best-first (DESIGN.md §4 documents the
// deviation).

#include <cstdio>
#include <string>

#include "bench/harness.h"
#include "sim/engine.h"
#include "sim/workload.h"

using namespace structride;
using namespace structride::bench;

int main() {
  const double scale = BenchScale();
  std::printf("\n================================================================\n");
  std::printf("Alg. 3 ablation: SARD proposal order (worst-first vs best-first)\n");
  std::printf("================================================================\n");
  std::printf("%-8s%-14s%10s%14s%16s%12s\n", "city", "order", "service",
              "travel", "unified cost", "time (s)");
  for (const std::string& ds : {std::string("CHD"), std::string("NYC")}) {
    DatasetSpec spec = DatasetByName(ds, scale);
    RoadNetwork net = BuildNetwork(&spec);
    TravelCostEngine engine(net);
    auto reqs = GenerateWorkload(net, &engine, spec.policy, spec.workload);
    SimulationOptions sopts;
    sopts.batch_period = 5;
    sopts.seed = 4242;
    sopts.dataset = ds;
    SimulationEngine sim(&engine, reqs, sopts);
    sim.SpawnFleet(spec.num_vehicles, spec.capacity);
    for (bool worst : {true, false}) {
      DispatchConfig c;
      c.vehicle_capacity = spec.capacity;
      c.grouping.max_group_size = spec.capacity;
      c.sard_propose_worst_first = worst;
      RunMetrics r = sim.Run("SARD", c);
      RecordJsonRow(worst ? "worst-first" : "best-first", ds, r);
      std::printf("%-8s%-14s%10.3f%14.0f%16.0f%12.2f\n", ds.c_str(),
                  worst ? "worst-first" : "best-first", r.service_rate,
                  r.travel_cost, r.unified_cost, r.running_time);
    }
  }
  return 0;
}
