// Scenario-subsystem ablation (DESIGN.md §6): SARD replayed on the
// event-driven core under each scenario and the repositioning policy, per
// dataset preset. The "baseline" cell (no scenarios) must be *bitwise*
// identical to the frozen legacy fixed-batch engine on served / unified
// cost / #SP queries — the bench exits nonzero on any divergence, so the
// nightly smoke run doubles as the equivalence check at bench scale, the
// same discipline abl_parallel_scaling applies to the parallel path.
//
// Scenario timings are fractions of the preset's (scaled) arrival window:
//   surge      releases in [0.25D, 0.50D) compressed 3x toward 0.25D
//   downtime   half the fleet off duty during [0.30D, 0.60D)
//   online     per-request online dispatch from 0.50D onward
//   reposition greedy move-toward-demand-centroid for idle vehicles
//   combined   all four at once
// Every cell gets a freshly constructed SimulationEngine (fault-model RNG
// statefulness) over a shared warm travel-cost cache; the first (unrecorded)
// warm-up run makes #SP queries comparable across cells.

#include <cstdio>
#include <limits>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "sim/engine.h"
#include "sim/scenario.h"

using namespace structride;
using namespace structride::bench;

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

struct Cell {
  std::string name;
  bool legacy = false;
  bool surge = false;
  bool downtime = false;
  bool online = false;
  bool reposition = false;
};

}  // namespace

int main() {
  const double scale = BenchScale();
  std::printf("\n================================================================\n");
  std::printf("Scenario ablation: SARD on the event core, per scenario\n");
  std::printf("================================================================\n");
  std::printf("%-9s%-12s%8s%10s%16s%10s%8s%10s%10s\n", "city", "scenario",
              "served", "service", "unified cost", "cancelled", "repos",
              "wait p50", "time (s)");

  int divergences = 0;
  for (const std::string& ds :
       {std::string("CHD"), std::string("NYC"), std::string("Cainiao")}) {
    DatasetSpec spec = DatasetByName(ds, scale);
    RoadNetwork net = BuildNetwork(&spec);
    TravelCostEngine engine(net);
    auto requests = GenerateWorkload(net, &engine, spec.policy, spec.workload);
    const double d = spec.workload.duration;

    DispatchConfig config;
    config.vehicle_capacity = spec.capacity;
    config.grouping.max_group_size = spec.capacity;
    config.sharegraph.vehicle_capacity = spec.capacity;

    auto run_cell = [&](const Cell& cell) {
      SimulationOptions sopts;
      sopts.batch_period = 5;
      sopts.seed = 4242;
      sopts.dataset = ds;
      SimulationEngine sim(&engine, requests, sopts);
      sim.SpawnFleet(spec.num_vehicles, spec.capacity);
      if (cell.surge) sim.AddScenario(MakeDemandSurge(0.25 * d, 0.5 * d, 3.0));
      if (cell.downtime) {
        sim.AddScenario(MakeVehicleDowntime(0.3 * d, 0.3 * d, 0.5));
      }
      if (cell.online) sim.AddScenario(MakeDispatchModeSwitch(0.5 * d, kInf));
      if (cell.reposition) {
        sim.SetRepositioningPolicy(MakeGreedyCentroidRepositioning());
      }
      return cell.legacy ? sim.RunLegacy("SARD", config)
                         : sim.Run("SARD", config);
    };

    // Warm the shared travel-cost cache so every recorded cell sees the
    // same (hot) cache and #SP-query comparisons are apples-to-apples.
    run_cell({"warmup"});

    const std::vector<Cell> cells = {
        {"legacy", true},
        {"baseline"},
        {"surge", false, true},
        {"downtime", false, false, true},
        {"online", false, false, false, true},
        {"reposition", false, false, false, false, true},
        {"combined", false, true, true, true, true},
    };
    RunMetrics legacy;
    for (const Cell& cell : cells) {
      RunMetrics m = run_cell(cell);
      if (cell.name == "legacy") legacy = m;
      std::string label = ds + " " + cell.name;
      RecordJsonRow("SARD", label, m);
      std::printf("%-9s%-12s%8d%10.3f%16.0f%10d%8d%10.1f%10.2f\n", ds.c_str(),
                  cell.name.c_str(), m.served, m.service_rate, m.unified_cost,
                  m.cancelled, m.repositions, m.pickup_wait_p50,
                  m.running_time);
      if (cell.name == "baseline") {
        bool same = m.served == legacy.served &&
                    m.unified_cost == legacy.unified_cost &&
                    m.sp_queries == legacy.sp_queries &&
                    m.cancelled == legacy.cancelled &&
                    m.pickup_wait_p50 == legacy.pickup_wait_p50 &&
                    m.pickup_wait_p99 == legacy.pickup_wait_p99 &&
                    m.mean_detour_ratio == legacy.mean_detour_ratio;
        if (!same) {
          ++divergences;
          std::fprintf(stderr,
                       "DIVERGED: %s event-core baseline != legacy engine\n",
                       ds.c_str());
        }
      }
    }
  }

  std::printf(
      "\nThe baseline row must reproduce the legacy row bitwise (served,\n"
      "unified cost, #SP queries, service-quality stats): with no scenarios\n"
      "installed the event core schedules the same batch ticks the legacy\n"
      "loop ran. Scenario rows are honest perturbations — surge packs the\n"
      "same demand into a tighter window, downtime removes supply mid-run,\n"
      "online dispatches each request at release, reposition spends empty\n"
      "miles to move idle supply toward open demand.\n");
  if (divergences > 0) {
    std::fprintf(stderr, "FAIL: %d dataset(s) diverged from legacy\n",
                 divergences);
    return 1;
  }
  return 0;
}
