// Geo-sharding ablation (DESIGN.md §12): SARD on the event core at 1, 2 and
// 4 shards over the CHD preset, plus a 4-shard NYC wall-clock cell. Three
// hard gates, all fatal (nonzero exit):
//
//   1-shard parity   the num_shards=1 cell must be *bitwise* identical to
//                    the frozen legacy fixed-batch engine on served /
//                    unified cost / #SP queries / service-quality stats —
//                    the whole shard machinery must vanish at Z=1.
//   serial==conc     every multi-shard cell runs twice, with
//                    concurrent_shards off (the serial shard-id-order
//                    reference) and on (the pool-task batch phase); the two
//                    must agree bitwise on every parity metric, per-shard
//                    sp_queries included.
//   N-shard census   at 2 and 4 shards every request must reach exactly one
//                    terminal outcome: served + cancelled + expired +
//                    rejected + late == total. (The engine additionally
//                    SR_CHECKs vehicle/request conservation every round,
//                    so a violation aborts the binary — also nonzero.)
//
// The sweep reports the sharding observables per cell: per-shard load
// balance (max/mean of per-shard assignment counts), the cross-shard trip
// fraction, and the batch-time imbalance ratio, all landing in the BENCH
// json via RecordJsonRow. The NYC section records both the serial and the
// concurrent wall-clock ("NYC shards=4 serial t8" / "NYC shards=4 t8") so
// CI's compare_bench.py cell can gate the concurrent speedup; the
// STRUCTRIDE_CONC_SHARDS env knob flips the recorded non-"serial" rows to
// serial execution for the two-directory comparison.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "sim/engine.h"

using namespace structride;
using namespace structride::bench;

namespace {

// Bitwise agreement on every parity metric (wall-clock and allocation
// sampling are the only fields legitimately mode-dependent).
bool SameOutcome(const RunMetrics& a, const RunMetrics& b) {
  return a.served == b.served && a.cancelled == b.cancelled &&
         a.expired == b.expired && a.rejected == b.rejected &&
         a.total_requests == b.total_requests &&
         a.unified_cost == b.unified_cost && a.travel_cost == b.travel_cost &&
         a.penalty_cost == b.penalty_cost &&
         a.service_rate == b.service_rate && a.sp_queries == b.sp_queries &&
         a.sharegraph_pair_checks == b.sharegraph_pair_checks &&
         a.memory_bytes == b.memory_bytes &&
         a.pickup_wait_p50 == b.pickup_wait_p50 &&
         a.pickup_wait_p99 == b.pickup_wait_p99 &&
         a.mean_detour_ratio == b.mean_detour_ratio &&
         a.late_dropoffs == b.late_dropoffs &&
         a.num_shards == b.num_shards &&
         a.cross_shard_trips == b.cross_shard_trips &&
         a.shard_load_max_over_mean == b.shard_load_max_over_mean &&
         a.shard_sp_queries == b.shard_sp_queries &&
         a.shard_cache_hit_rate == b.shard_cache_hit_rate;
}

}  // namespace

int main() {
  const double scale = BenchScale();
  int failures = 0;

  std::printf("\n================================================================\n");
  std::printf("Geo-sharding ablation: SARD on CHD at 1/2/4 shards\n");
  std::printf("================================================================\n");
  std::printf("%-8s%8s%10s%16s%10s%12s%12s%12s%10s\n", "shards", "served",
              "service", "unified cost", "x-shard", "x-fraction", "load m/m",
              "time m/m", "time (s)");

  DatasetSpec spec = DatasetByName("CHD", scale);
  RoadNetwork net = BuildNetwork(&spec);
  TravelCostEngine engine(net);
  auto requests = GenerateWorkload(net, &engine, spec.policy, spec.workload);

  DispatchConfig config;
  config.vehicle_capacity = spec.capacity;
  config.grouping.max_group_size = spec.capacity;
  config.sharegraph.vehicle_capacity = spec.capacity;
  config.num_threads = 8;

  auto run_cell = [&](int num_shards, bool legacy, bool concurrent) {
    SimulationOptions sopts;
    sopts.batch_period = 5;
    sopts.seed = 4242;
    sopts.dataset = "CHD";
    SimulationEngine sim(&engine, requests, sopts);
    sim.SpawnFleet(spec.num_vehicles, spec.capacity);
    DispatchConfig cell_config = config;
    cell_config.num_shards = num_shards;
    cell_config.concurrent_shards = concurrent;
    return legacy ? sim.RunLegacy("SARD", cell_config)
                  : sim.Run("SARD", cell_config);
  };

  // Warm the shared travel-cost cache so every recorded cell sees the same
  // (hot) root cache and #SP-query comparisons are apples-to-apples. (The
  // per-shard cache partitions live on each cell's own SimulationEngine and
  // start cold either way, identically for the serial and concurrent runs.)
  run_cell(1, /*legacy=*/false, /*concurrent=*/false);

  const bool conc_mode = BenchConcurrentShards();
  const RunMetrics legacy = run_cell(1, /*legacy=*/true, false);
  for (int shards : {1, 2, 4}) {
    const RunMetrics serial = run_cell(shards, /*legacy=*/false, false);
    // The recorded cell honours STRUCTRIDE_CONC_SHARDS so two bench
    // invocations (env 0 vs default) record serial vs concurrent rows under
    // the same point names for compare_bench.py.
    const RunMetrics m =
        conc_mode ? run_cell(shards, /*legacy=*/false, true) : serial;
    double frac = m.served > 0 ? static_cast<double>(m.cross_shard_trips) /
                                     static_cast<double>(m.served)
                               : 0;
    RecordJsonRow("SARD", "shards=" + std::to_string(shards), m);
    RecordJsonValue("SARD", "shards=" + std::to_string(shards),
                    "cross_shard_fraction", frac);
    std::printf("%-8d%8d%10.3f%16.0f%10d%12.4f%12.3f%12.3f%10.2f\n", shards,
                m.served, m.service_rate, m.unified_cost, m.cross_shard_trips,
                frac, m.shard_load_max_over_mean,
                m.shard_round_time_max_over_mean, m.running_time);

    if (conc_mode && !SameOutcome(serial, m)) {
      ++failures;
      std::fprintf(stderr,
                   "FAIL: concurrent_shards diverged from the serial shard "
                   "loop at %d shards\n",
                   shards);
    }
    if (shards == 1) {
      bool same = m.served == legacy.served &&
                  m.unified_cost == legacy.unified_cost &&
                  m.sp_queries == legacy.sp_queries &&
                  m.cancelled == legacy.cancelled &&
                  m.expired == legacy.expired &&
                  m.pickup_wait_p50 == legacy.pickup_wait_p50 &&
                  m.pickup_wait_p99 == legacy.pickup_wait_p99 &&
                  m.mean_detour_ratio == legacy.mean_detour_ratio;
      if (!same || m.cross_shard_trips != 0 || m.num_shards != 1) {
        ++failures;
        std::fprintf(stderr,
                     "FAIL: 1-shard run diverged from the legacy engine\n");
      }
    } else {
      long closed = static_cast<long>(m.served) +
                    static_cast<long>(m.cancelled) +
                    static_cast<long>(m.expired) +
                    static_cast<long>(m.rejected) +
                    static_cast<long>(m.late_dropoffs);
      if (closed != m.total_requests || m.num_shards != shards) {
        ++failures;
        std::fprintf(stderr,
                     "FAIL: %d-shard census %ld != %d total requests\n",
                     shards, closed, m.total_requests);
      }
    }
  }

  // ---- NYC wall-clock cell: 4 shards, 8 threads, serial vs concurrent ----
  // sard_parallel_acceptance stays off so shard-level concurrency is the
  // only difference between the two runs; the speedup is then sum(t_i) /
  // max-chain, bounded by the batch-time imbalance ratio reported above.
  std::printf("\nNYC preset, 4 shards, 8 threads: serial vs concurrent "
              "batch phase\n");
  {
    DatasetSpec nyc = DatasetByName("NYC", scale);
    RoadNetwork nyc_net = BuildNetwork(&nyc);
    TravelCostEngine nyc_engine(nyc_net);
    auto nyc_requests =
        GenerateWorkload(nyc_net, &nyc_engine, nyc.policy, nyc.workload);
    DispatchConfig nyc_config;
    nyc_config.vehicle_capacity = nyc.capacity;
    nyc_config.grouping.max_group_size = nyc.capacity;
    nyc_config.sharegraph.vehicle_capacity = nyc.capacity;
    nyc_config.num_threads = 8;
    nyc_config.num_shards = 4;
    auto run_nyc = [&](bool concurrent) {
      SimulationOptions sopts;
      sopts.batch_period = 5;
      sopts.seed = 4242;
      sopts.dataset = "NYC";
      SimulationEngine sim(&nyc_engine, nyc_requests, sopts);
      sim.SpawnFleet(nyc.num_vehicles, nyc.capacity);
      DispatchConfig cell_config = nyc_config;
      cell_config.concurrent_shards = concurrent;
      return sim.Run("SARD", cell_config);
    };
    run_nyc(false);  // warm the root cache, as above
    const RunMetrics serial = run_nyc(false);
    const RunMetrics conc = conc_mode ? run_nyc(true) : run_nyc(false);
    if (!SameOutcome(serial, conc)) {
      ++failures;
      std::fprintf(stderr,
                   "FAIL: concurrent_shards diverged from the serial shard "
                   "loop on NYC/4 shards\n");
    }
    const double speedup =
        conc.running_time > 0 ? serial.running_time / conc.running_time : 0;
    RecordJsonRow("SARD", "NYC shards=4 serial t8", serial);
    RecordJsonRow("SARD", "NYC shards=4 t8", conc);
    RecordJsonValue("SARD", "NYC shards=4 t8", "concurrent_speedup", speedup);
    std::printf("%-22s%12s%12s%10s\n", "mode", "time (s)", "time m/m",
                "speedup");
    std::printf("%-22s%12.2f%12.3f%10s\n", "serial", serial.running_time,
                serial.shard_round_time_max_over_mean, "-");
    std::printf("%-22s%12.2f%12.3f%10.2f\n",
                conc_mode ? "concurrent" : "serial (env off)",
                conc.running_time, conc.shard_round_time_max_over_mean,
                speedup);
  }

  std::printf(
      "\nThe shards=1 row must reproduce the legacy engine bitwise — the\n"
      "partition degenerates to one zone and the coordinator replays the\n"
      "exact single-region round. At 2/4 shards each zone dispatches its\n"
      "own requests over its resident fleet (against its own travel-cost\n"
      "cache partition); boundary requests re-home through the escrow (the\n"
      "x-shard column counts trips assigned by a foreign shard), the census\n"
      "must balance exactly, and the concurrent batch phase must agree\n"
      "bitwise with the serial shard-id-order reference.\n");
  if (failures > 0) {
    std::fprintf(stderr, "FAIL: %d sharding gate(s) violated\n", failures);
    return 1;
  }
  return 0;
}
