// Geo-sharding ablation (DESIGN.md §12): SARD on the event core at 1, 2 and
// 4 shards over the CHD preset. Two hard gates, both fatal (nonzero exit):
//
//   1-shard parity   the num_shards=1 cell must be *bitwise* identical to
//                    the frozen legacy fixed-batch engine on served /
//                    unified cost / #SP queries / service-quality stats —
//                    the whole shard machinery must vanish at Z=1.
//   N-shard census   at 2 and 4 shards every request must reach exactly one
//                    terminal outcome: served + cancelled + expired +
//                    rejected + late == total. (The engine additionally
//                    SR_CHECKs vehicle/request conservation every round,
//                    so a violation aborts the binary — also nonzero.)
//
// The sweep reports the sharding observables per cell: per-shard load
// balance (max/mean of per-shard assignment counts) and the cross-shard
// trip fraction (assignments that went through the boundary-escrow
// handoff), both landing in the BENCH json via RecordJsonRow.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "sim/engine.h"

using namespace structride;
using namespace structride::bench;

int main() {
  const double scale = BenchScale();
  std::printf("\n================================================================\n");
  std::printf("Geo-sharding ablation: SARD on CHD at 1/2/4 shards\n");
  std::printf("================================================================\n");
  std::printf("%-8s%8s%10s%16s%10s%12s%12s%10s\n", "shards", "served",
              "service", "unified cost", "x-shard", "x-fraction", "load m/m",
              "time (s)");

  DatasetSpec spec = DatasetByName("CHD", scale);
  RoadNetwork net = BuildNetwork(&spec);
  TravelCostEngine engine(net);
  auto requests = GenerateWorkload(net, &engine, spec.policy, spec.workload);

  DispatchConfig config;
  config.vehicle_capacity = spec.capacity;
  config.grouping.max_group_size = spec.capacity;
  config.sharegraph.vehicle_capacity = spec.capacity;

  auto run_cell = [&](int num_shards, bool legacy) {
    SimulationOptions sopts;
    sopts.batch_period = 5;
    sopts.seed = 4242;
    sopts.dataset = "CHD";
    SimulationEngine sim(&engine, requests, sopts);
    sim.SpawnFleet(spec.num_vehicles, spec.capacity);
    DispatchConfig cell_config = config;
    cell_config.num_shards = num_shards;
    return legacy ? sim.RunLegacy("SARD", cell_config)
                  : sim.Run("SARD", cell_config);
  };

  // Warm the shared travel-cost cache so every recorded cell sees the same
  // (hot) cache and #SP-query comparisons are apples-to-apples.
  run_cell(1, /*legacy=*/false);

  int failures = 0;
  const RunMetrics legacy = run_cell(1, /*legacy=*/true);
  for (int shards : {1, 2, 4}) {
    RunMetrics m = run_cell(shards, /*legacy=*/false);
    double frac = m.served > 0 ? static_cast<double>(m.cross_shard_trips) /
                                     static_cast<double>(m.served)
                               : 0;
    RecordJsonRow("SARD", "shards=" + std::to_string(shards), m);
    RecordJsonValue("SARD", "shards=" + std::to_string(shards),
                    "cross_shard_fraction", frac);
    std::printf("%-8d%8d%10.3f%16.0f%10d%12.4f%12.3f%10.2f\n", shards,
                m.served, m.service_rate, m.unified_cost, m.cross_shard_trips,
                frac, m.shard_load_max_over_mean, m.running_time);

    if (shards == 1) {
      bool same = m.served == legacy.served &&
                  m.unified_cost == legacy.unified_cost &&
                  m.sp_queries == legacy.sp_queries &&
                  m.cancelled == legacy.cancelled &&
                  m.expired == legacy.expired &&
                  m.pickup_wait_p50 == legacy.pickup_wait_p50 &&
                  m.pickup_wait_p99 == legacy.pickup_wait_p99 &&
                  m.mean_detour_ratio == legacy.mean_detour_ratio;
      if (!same || m.cross_shard_trips != 0 || m.num_shards != 1) {
        ++failures;
        std::fprintf(stderr,
                     "FAIL: 1-shard run diverged from the legacy engine\n");
      }
    } else {
      long closed = static_cast<long>(m.served) +
                    static_cast<long>(m.cancelled) +
                    static_cast<long>(m.expired) +
                    static_cast<long>(m.rejected) +
                    static_cast<long>(m.late_dropoffs);
      if (closed != m.total_requests || m.num_shards != shards) {
        ++failures;
        std::fprintf(stderr,
                     "FAIL: %d-shard census %ld != %d total requests\n",
                     shards, closed, m.total_requests);
      }
    }
  }

  std::printf(
      "\nThe shards=1 row must reproduce the legacy engine bitwise — the\n"
      "partition degenerates to one zone and the coordinator replays the\n"
      "exact single-region round. At 2/4 shards each zone dispatches its\n"
      "own requests over its resident fleet; boundary requests re-home\n"
      "through the escrow (the x-shard column counts trips assigned by a\n"
      "foreign shard) and the census must still balance exactly.\n");
  if (failures > 0) {
    std::fprintf(stderr, "FAIL: %d sharding gate(s) violated\n", failures);
    return 1;
  }
  return 0;
}
