// Ablation: the distance-oracle backend choice. The paper's setup fixes hub
// labeling + LRU cache for every algorithm; this bench measures what that
// choice buys by comparing all point-to-point backends (hub labels,
// contraction hierarchies, A*, bidirectional Dijkstra) on query latency and
// preprocessing cost over the same synthetic city.

#include <benchmark/benchmark.h>

#include "roadnet/astar.h"
#include "roadnet/contraction_hierarchies.h"
#include "roadnet/dijkstra.h"
#include "roadnet/generator.h"
#include "roadnet/hub_labeling.h"
#include "roadnet/travel_cost.h"
#include "util/random.h"

namespace structride {
namespace {

const RoadNetwork& Net() {
  static RoadNetwork net = [] {
    CityOptions opt;
    opt.rows = 40;
    opt.cols = 40;
    opt.seed = 9;
    return GenerateGridCity(opt);
  }();
  return net;
}

std::pair<NodeId, NodeId> RandomPair(Rng& rng) {
  return {static_cast<NodeId>(rng.UniformInt(0, Net().num_nodes() - 1)),
          static_cast<NodeId>(rng.UniformInt(0, Net().num_nodes() - 1))};
}

void BM_QueryHubLabel(benchmark::State& state) {
  static HubLabeling index(Net());
  Rng rng(1);
  for (auto _ : state) {
    auto [s, t] = RandomPair(rng);
    benchmark::DoNotOptimize(index.Query(s, t));
  }
  state.SetLabel("index " + std::to_string(index.MemoryBytes() / 1024) + " KiB");
}
BENCHMARK(BM_QueryHubLabel);

void BM_QueryContractionHierarchies(benchmark::State& state) {
  static ContractionHierarchies index(Net());
  Rng rng(1);
  for (auto _ : state) {
    auto [s, t] = RandomPair(rng);
    benchmark::DoNotOptimize(index.Query(s, t));
  }
  state.SetLabel("index " + std::to_string(index.MemoryBytes() / 1024) + " KiB, " +
                 std::to_string(index.num_shortcuts()) + " shortcuts");
}
BENCHMARK(BM_QueryContractionHierarchies);

void BM_QueryAStar(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) {
    auto [s, t] = RandomPair(rng);
    benchmark::DoNotOptimize(AStarCost(Net(), s, t));
  }
  state.SetLabel("no index");
}
BENCHMARK(BM_QueryAStar);

void BM_QueryBidirectionalDijkstra(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) {
    auto [s, t] = RandomPair(rng);
    benchmark::DoNotOptimize(BidirectionalDijkstra(Net(), s, t));
  }
  state.SetLabel("no index");
}
BENCHMARK(BM_QueryBidirectionalDijkstra);

// Preprocessing cost, swept over city size. Hub labels answer faster but
// cost far more to build; CH sits between the index-free searches and HL.
void BM_BuildHubLabel(benchmark::State& state) {
  CityOptions opt;
  opt.rows = static_cast<int>(state.range(0));
  opt.cols = static_cast<int>(state.range(0));
  opt.seed = 11;
  RoadNetwork net = GenerateGridCity(opt);
  for (auto _ : state) {
    HubLabeling index(net);
    benchmark::DoNotOptimize(index.TotalLabelEntries());
  }
  state.SetLabel(std::to_string(net.num_nodes()) + " nodes");
}
BENCHMARK(BM_BuildHubLabel)->Arg(10)->Arg(20)->Arg(30)->Unit(benchmark::kMillisecond)->Iterations(3);

void BM_BuildContractionHierarchies(benchmark::State& state) {
  CityOptions opt;
  opt.rows = static_cast<int>(state.range(0));
  opt.cols = static_cast<int>(state.range(0));
  opt.seed = 11;
  RoadNetwork net = GenerateGridCity(opt);
  for (auto _ : state) {
    ContractionHierarchies index(net);
    benchmark::DoNotOptimize(index.num_shortcuts());
  }
  state.SetLabel(std::to_string(net.num_nodes()) + " nodes");
}
BENCHMARK(BM_BuildContractionHierarchies)
    ->Arg(10)
    ->Arg(20)
    ->Arg(30)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

// Dispatch-shaped access pattern: the LRU-cached engine over each indexed
// backend, on a skewed (hotspot-heavy) query mix like real batches produce.
void CachedEngineBench(benchmark::State& state, TravelCostOptions::Backend backend) {
  TravelCostOptions options;
  options.backend = backend;
  TravelCostEngine engine(Net(), options);
  Rng rng(7);
  // 80% of queries touch a 32-node hotspot set; 20% are uniform.
  std::vector<NodeId> hot;
  for (int i = 0; i < 32; ++i) {
    hot.push_back(static_cast<NodeId>(rng.UniformInt(0, Net().num_nodes() - 1)));
  }
  for (auto _ : state) {
    NodeId s, t;
    if (rng.Uniform(0, 1) < 0.8) {
      s = hot[static_cast<size_t>(rng.UniformInt(0, 31))];
      t = hot[static_cast<size_t>(rng.UniformInt(0, 31))];
    } else {
      std::tie(s, t) = RandomPair(rng);
    }
    benchmark::DoNotOptimize(engine.Cost(s, t));
  }
  state.SetLabel("hit rate " + std::to_string(engine.CacheHitRate()));
}

void BM_CachedEngineHubLabel(benchmark::State& state) {
  CachedEngineBench(state, TravelCostOptions::Backend::kHubLabeling);
}
BENCHMARK(BM_CachedEngineHubLabel);

void BM_CachedEngineCH(benchmark::State& state) {
  CachedEngineBench(state, TravelCostOptions::Backend::kContractionHierarchies);
}
BENCHMARK(BM_CachedEngineCH);

void BM_CachedEngineDijkstra(benchmark::State& state) {
  CachedEngineBench(state, TravelCostOptions::Backend::kBidirectionalDijkstra);
}
BENCHMARK(BM_CachedEngineDijkstra);

}  // namespace
}  // namespace structride
