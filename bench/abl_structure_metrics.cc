// Structure metrics of real (builder-produced) shareability graphs across
// the three dataset presets: the measurements behind the paper's theory —
// power-law degree profile (Theorem IV.1's assumption), degeneracy, largest
// clique omega (Eq. 7 regime), greedy capacity-bounded clique partition vs
// the Bhasker-Samad bound theta'_upper (Eqs. 6/8) — with and without angle
// pruning, so the pruning's structural footprint (Sec. III-B discussion) is
// visible next to its Tables V/VI cost savings.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "sharegraph/analysis.h"
#include "sharegraph/builder.h"
#include "sim/datasets.h"
#include "sim/workload.h"

using namespace structride;
using namespace structride::bench;

int main() {
  const double scale = BenchScale();
  std::printf("\n=====================================================================\n");
  std::printf("Shareability-graph structure across datasets (one 60 s batch window)\n");
  std::printf("=====================================================================\n");
  std::printf("%-9s%-9s%7s%8s%9s%7s%7s%7s%10s%9s%8s\n", "city", "pruning",
              "nodes", "edges", "mean-deg", "eta", "degen", "omega", "partition",
              "theta'", "comps");
  for (const std::string& ds :
       {std::string("CHD"), std::string("NYC"), std::string("Cainiao")}) {
    DatasetSpec spec = DatasetByName(ds, scale);
    RoadNetwork net = BuildNetwork(&spec);
    TravelCostEngine engine(net);
    spec.workload.duration = 60;
    spec.workload.num_requests = std::max(150, spec.workload.num_requests / 60);
    std::vector<Request> window =
        GenerateWorkload(net, &engine, spec.policy, spec.workload);

    for (bool pruning : {false, true}) {
      ShareGraphBuilderOptions opts;
      opts.use_angle_pruning = pruning;
      ShareGraphBuilder builder(&engine, opts);
      builder.AddBatch(window);
      StructureReport report =
          AnalyzeStructure(builder.graph(), static_cast<size_t>(spec.capacity));
      const std::string series = pruning ? "angle" : "none";
      RecordJsonValue(series, ds, "nodes", report.degrees.num_nodes);
      RecordJsonValue(series, ds, "edges", report.degrees.num_edges);
      RecordJsonValue(series, ds, "mean_degree", report.degrees.mean_degree);
      RecordJsonValue(series, ds, "degeneracy", report.degeneracy);
      RecordJsonValue(series, ds, "max_clique", report.max_clique);
      RecordJsonValue(series, ds, "partition_cliques",
                      report.greedy_partition_cliques);
      std::printf("%-9s%-9s%7zu%8zu%9.2f%7.2f%7d%7zu%10zu%9zu%8zu\n", ds.c_str(),
                  pruning ? "angle" : "none", report.degrees.num_nodes,
                  report.degrees.num_edges, report.degrees.mean_degree,
                  report.degrees.power_law_exponent, report.degeneracy,
                  report.max_clique, report.greedy_partition_cliques,
                  report.partition_upper_bound, report.num_components);
    }
  }
  std::printf("\nReading: angle pruning trims divergent-direction edges (lower mean\n"
              "degree) while leaving the cohesive mass — degeneracy, omega and the\n"
              "capacity-bounded partition count — nearly unchanged, which is why\n"
              "Tables V/VI show query savings at flat service rates.\n");
  return 0;
}
