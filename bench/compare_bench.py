#!/usr/bin/env python3
"""Diff two STRUCTRIDE_JSON_DIR result directories and gate CI on them.

Usage:
    compare_bench.py BASELINE_DIR CANDIDATE_DIR [options]

Both directories are scanned for BENCH_*.json files (the format written by
bench/harness.cc's WriteJsonAtExit). Rows are matched across the two
directories by (bench, dataset, series, point) and checked two ways:

  * Parity metrics (served / cancelled / expired / rejected /
    total_requests / sp_queries / unified_cost / service_rate /
    late_dropoffs, plus the per-shard sp_queries vector) must be *exactly*
    equal: these are deterministic outcomes, and any drift means the two
    builds computed different dispatches. This is how CI pins
    concurrent_shards=on against the STRUCTRIDE_CONC_SHARDS=0 serial
    reference across two bench invocations.
  * running_time_s may regress by at most --max-regress-pct percent
    (default 10) on rows slower than --min-time seconds (default 0.05 —
    timing noise dominates below that).

Optionally --min-speedup R requires candidate rows matching
--speedup-filter to be at least R times faster than the same baseline row
(the CI serial-vs-concurrent shard cell: baseline dir ran with
STRUCTRIDE_CONC_SHARDS=0). The filter failing to match any row is itself a
failure, so a renamed bench point cannot silently skip the gate.

--config FILE supplies per-cell overrides as JSON, so one invocation can
hold different rows to different bars (a qps bench is noisier than a replay
bench). Format:

    {"cells": [
        {"match": "svc_sustained_qps", "max_regress_pct": 30,
         "min_time": 0.2},
        {"match": "abl_sharding / SARD", "min_speedup": 1.3}
    ]}

Each row resolves against the FIRST cell whose "match" substring occurs in
"bench / series / point"; its max_regress_pct / min_time / min_speedup
replace the global flags for that row. A config cell that matches no row at
all is a failure (same no-silent-skip rule as --speedup-filter).

Exit status: 0 when every gate passes, 1 otherwise (and a summary of every
violation on stderr). Baseline rows missing from the candidate fail; rows
only in the candidate are reported but do not fail (new benches land first).
"""

import argparse
import glob
import json
import os
import sys

PARITY_FIELDS = [
    "served",
    "cancelled",
    "expired",
    "rejected",
    "total_requests",
    "late_dropoffs",
    "sp_queries",
    "unified_cost",
    "service_rate",
    "num_shards",
    "cross_shard_trips",
    "shard_sp_queries",
]


def load_rows(directory):
    """Returns {(bench, dataset, series, point): row} over all BENCH_*.json
    files. The dataset is part of the key because multi-city benches reuse
    the same (series, point) labels per city."""
    rows = {}
    paths = sorted(glob.glob(os.path.join(directory, "BENCH_*.json")))
    if not paths:
        sys.stderr.write("compare_bench: no BENCH_*.json in %s\n" % directory)
        sys.exit(2)
    for path in paths:
        try:
            with open(path) as f:
                doc = json.load(f)
        except (OSError, ValueError) as e:
            sys.stderr.write("compare_bench: cannot read %s: %s\n" % (path, e))
            sys.exit(2)
        bench = doc.get("bench", os.path.basename(path))
        for row in doc.get("rows", []):
            key = (bench, row.get("dataset", ""), row.get("series", ""),
                   row.get("point", ""))
            if key in rows:
                sys.stderr.write(
                    "compare_bench: duplicate row %r in %s\n" % (key, path))
                sys.exit(2)
            rows[key] = row
    return rows


def fmt(key):
    return "%s / %s / %s / %s" % key


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline")
    ap.add_argument("candidate")
    ap.add_argument("--max-regress-pct", type=float, default=10.0,
                    help="max running_time_s regression in percent "
                         "(default 10)")
    ap.add_argument("--min-time", type=float, default=0.05,
                    help="ignore timing on rows faster than this many "
                         "seconds in the baseline (default 0.05)")
    ap.add_argument("--min-speedup", type=float, default=None,
                    help="require candidate to be at least R x faster than "
                         "baseline on rows matching --speedup-filter")
    ap.add_argument("--speedup-filter", default="",
                    help="substring of 'series / point' selecting the rows "
                         "the --min-speedup gate applies to (default: all)")
    ap.add_argument("--config", default=None, metavar="FILE",
                    help="JSON file of per-cell gate overrides (see "
                         "module docstring)")
    args = ap.parse_args()

    config_cells = []
    if args.config is not None:
        try:
            with open(args.config) as f:
                doc = json.load(f)
        except (OSError, ValueError) as e:
            sys.stderr.write(
                "compare_bench: cannot read --config %s: %s\n"
                % (args.config, e))
            sys.exit(2)
        for cell in doc.get("cells", []):
            if not isinstance(cell, dict) or "match" not in cell:
                sys.stderr.write(
                    "compare_bench: every config cell needs a \"match\" "
                    "string: %r\n" % (cell,))
                sys.exit(2)
            unknown = set(cell) - {
                "match", "max_regress_pct", "min_time", "min_speedup"}
            if unknown:
                sys.stderr.write(
                    "compare_bench: unknown config keys %r in %r\n"
                    % (sorted(unknown), cell["match"]))
                sys.exit(2)
            config_cells.append(dict(cell, hits=0))

    def cell_for(key):
        """First config cell whose match occurs in the row's full label."""
        label = fmt(key)
        for cell in config_cells:
            if cell["match"] in label:
                cell["hits"] += 1
                return cell
        return None

    base = load_rows(args.baseline)
    cand = load_rows(args.candidate)

    failures = []
    regressions = 0
    compared = 0
    speedup_rows = 0

    for key, brow in sorted(base.items()):
        crow = cand.get(key)
        if crow is None:
            failures.append("missing in candidate: %s" % fmt(key))
            continue
        compared += 1
        for field in PARITY_FIELDS:
            if field not in brow and field not in crow:
                continue  # older json without the field: nothing to compare
            bval, cval = brow.get(field), crow.get(field)
            if bval != cval:
                failures.append(
                    "parity drift on %s: %s %r -> %r"
                    % (fmt(key), field, bval, cval))
        cell = cell_for(key)
        max_regress = args.max_regress_pct
        min_time = args.min_time
        min_speedup = args.min_speedup
        speedup_gated = args.min_speedup is not None and \
            args.speedup_filter in "%s / %s / %s" % (key[1], key[2], key[3])
        if cell is not None:
            max_regress = cell.get("max_regress_pct", max_regress)
            min_time = cell.get("min_time", min_time)
            if "min_speedup" in cell:
                min_speedup = cell["min_speedup"]
                speedup_gated = True
        bt = brow.get("running_time_s", 0.0)
        ct = crow.get("running_time_s", 0.0)
        if bt >= min_time and ct > bt * (1 + max_regress / 100):
            regressions += 1
            failures.append(
                "time regression on %s: %.3fs -> %.3fs (+%.1f%% > %.1f%%)"
                % (fmt(key), bt, ct, 100 * (ct / bt - 1), max_regress))
        if speedup_gated:
            speedup_rows += 1
            speedup = bt / ct if ct > 0 else float("inf")
            marker = "ok" if speedup >= min_speedup else "FAIL"
            print("speedup %s: %.3fs / %.3fs = %.2fx (need %.2fx) [%s]"
                  % (fmt(key), bt, ct, speedup, min_speedup, marker))
            if speedup < min_speedup:
                failures.append(
                    "speedup %.2fx < %.2fx on %s"
                    % (speedup, min_speedup, fmt(key)))

    for key in sorted(set(cand) - set(base)):
        print("note: new row (not in baseline): %s" % fmt(key))

    if args.min_speedup is not None and speedup_rows == 0:
        failures.append(
            "--min-speedup set but --speedup-filter %r matched no rows"
            % args.speedup_filter)
    for cell in config_cells:
        if cell["hits"] == 0:
            failures.append(
                "--config cell %r matched no rows" % cell["match"])

    print("compare_bench: %d rows compared, %d timing regressions, "
          "%d gate failures" % (compared, regressions, len(failures)))
    if failures:
        for msg in failures:
            sys.stderr.write("FAIL: %s\n" % msg)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
