#!/usr/bin/env python3
"""Diff two STRUCTRIDE_JSON_DIR result directories and gate CI on them.

Usage:
    compare_bench.py BASELINE_DIR CANDIDATE_DIR [options]

Both directories are scanned for BENCH_*.json files (the format written by
bench/harness.cc's WriteJsonAtExit). Rows are matched across the two
directories by (bench, series, point) and checked two ways:

  * Parity metrics (served / cancelled / expired / rejected /
    total_requests / sp_queries / unified_cost / service_rate /
    late_dropoffs, plus the per-shard sp_queries vector) must be *exactly*
    equal: these are deterministic outcomes, and any drift means the two
    builds computed different dispatches. This is how CI pins
    concurrent_shards=on against the STRUCTRIDE_CONC_SHARDS=0 serial
    reference across two bench invocations.
  * running_time_s may regress by at most --max-regress-pct percent
    (default 10) on rows slower than --min-time seconds (default 0.05 —
    timing noise dominates below that).

Optionally --min-speedup R requires candidate rows matching
--speedup-filter to be at least R times faster than the same baseline row
(the CI serial-vs-concurrent shard cell: baseline dir ran with
STRUCTRIDE_CONC_SHARDS=0). The filter failing to match any row is itself a
failure, so a renamed bench point cannot silently skip the gate.

Exit status: 0 when every gate passes, 1 otherwise (and a summary of every
violation on stderr). Baseline rows missing from the candidate fail; rows
only in the candidate are reported but do not fail (new benches land first).
"""

import argparse
import glob
import json
import os
import sys

PARITY_FIELDS = [
    "served",
    "cancelled",
    "expired",
    "rejected",
    "total_requests",
    "late_dropoffs",
    "sp_queries",
    "unified_cost",
    "service_rate",
    "num_shards",
    "cross_shard_trips",
    "shard_sp_queries",
]


def load_rows(directory):
    """Returns {(bench, series, point): row} over all BENCH_*.json files."""
    rows = {}
    paths = sorted(glob.glob(os.path.join(directory, "BENCH_*.json")))
    if not paths:
        sys.stderr.write("compare_bench: no BENCH_*.json in %s\n" % directory)
        sys.exit(2)
    for path in paths:
        try:
            with open(path) as f:
                doc = json.load(f)
        except (OSError, ValueError) as e:
            sys.stderr.write("compare_bench: cannot read %s: %s\n" % (path, e))
            sys.exit(2)
        bench = doc.get("bench", os.path.basename(path))
        for row in doc.get("rows", []):
            key = (bench, row.get("series", ""), row.get("point", ""))
            if key in rows:
                sys.stderr.write(
                    "compare_bench: duplicate row %r in %s\n" % (key, path))
                sys.exit(2)
            rows[key] = row
    return rows


def fmt(key):
    return "%s / %s / %s" % key


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline")
    ap.add_argument("candidate")
    ap.add_argument("--max-regress-pct", type=float, default=10.0,
                    help="max running_time_s regression in percent "
                         "(default 10)")
    ap.add_argument("--min-time", type=float, default=0.05,
                    help="ignore timing on rows faster than this many "
                         "seconds in the baseline (default 0.05)")
    ap.add_argument("--min-speedup", type=float, default=None,
                    help="require candidate to be at least R x faster than "
                         "baseline on rows matching --speedup-filter")
    ap.add_argument("--speedup-filter", default="",
                    help="substring of 'series / point' selecting the rows "
                         "the --min-speedup gate applies to (default: all)")
    args = ap.parse_args()

    base = load_rows(args.baseline)
    cand = load_rows(args.candidate)

    failures = []
    regressions = 0
    compared = 0
    speedup_rows = 0

    for key, brow in sorted(base.items()):
        crow = cand.get(key)
        if crow is None:
            failures.append("missing in candidate: %s" % fmt(key))
            continue
        compared += 1
        for field in PARITY_FIELDS:
            if field not in brow and field not in crow:
                continue  # older json without the field: nothing to compare
            bval, cval = brow.get(field), crow.get(field)
            if bval != cval:
                failures.append(
                    "parity drift on %s: %s %r -> %r"
                    % (fmt(key), field, bval, cval))
        bt = brow.get("running_time_s", 0.0)
        ct = crow.get("running_time_s", 0.0)
        if bt >= args.min_time and ct > bt * (1 + args.max_regress_pct / 100):
            regressions += 1
            failures.append(
                "time regression on %s: %.3fs -> %.3fs (+%.1f%% > %.1f%%)"
                % (fmt(key), bt, ct, 100 * (ct / bt - 1),
                   args.max_regress_pct))
        if args.min_speedup is not None and \
                args.speedup_filter in "%s / %s" % (key[1], key[2]):
            speedup_rows += 1
            speedup = bt / ct if ct > 0 else float("inf")
            marker = "ok" if speedup >= args.min_speedup else "FAIL"
            print("speedup %s: %.3fs / %.3fs = %.2fx (need %.2fx) [%s]"
                  % (fmt(key), bt, ct, speedup, args.min_speedup, marker))
            if speedup < args.min_speedup:
                failures.append(
                    "speedup %.2fx < %.2fx on %s"
                    % (speedup, args.min_speedup, fmt(key)))

    for key in sorted(set(cand) - set(base)):
        print("note: new row (not in baseline): %s" % fmt(key))

    if args.min_speedup is not None and speedup_rows == 0:
        failures.append(
            "--min-speedup set but --speedup-filter %r matched no rows"
            % args.speedup_filter)

    print("compare_bench: %d rows compared, %d timing regressions, "
          "%d gate failures" % (compared, regressions, len(failures)))
    if failures:
        for msg in failures:
            sys.stderr.write("FAIL: %s\n" % msg)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
