// Fig. 10 reproduction: metrics as the deadline parameter gamma varies
// (1.2-2.0). The paper omits RTV at gamma >= 1.8 on NYC because glpk blows
// up; our solver degrades to its anytime incumbent instead (reported in the
// running-time row).

#include <string>
#include <vector>

#include "bench/harness.h"

using structride::bench::BenchAlgorithms;
using structride::bench::BenchContext;
using structride::bench::BenchScale;
using structride::bench::PointParams;
using structride::bench::SweepPrinter;

int main() {
  const double scale = BenchScale();
  const std::vector<double> gammas = {1.2, 1.3, 1.5, 1.8, 2.0};

  for (const std::string& dataset : {std::string("CHD"), std::string("NYC")}) {
    BenchContext ctx(dataset, scale);
    std::vector<std::string> labels;
    for (double g : gammas) {
      char buf[16];
      std::snprintf(buf, sizeof(buf), "g=%.1f", g);
      labels.push_back(buf);
    }
    SweepPrinter printer("Fig. 10 (" + dataset + "): varying gamma", labels);
    for (const std::string& algo : BenchAlgorithms()) {
      for (size_t i = 0; i < gammas.size(); ++i) {
        PointParams p;
        p.gamma = gammas[i];
        printer.Record(algo, i, ctx.Run(algo, p));
      }
    }
    printer.Print();
  }
  return 0;
}
