// Fig. 11 reproduction: metrics as the vehicle capacity c varies (2-6).

#include <string>
#include <vector>

#include "bench/harness.h"

using structride::bench::BenchAlgorithms;
using structride::bench::BenchContext;
using structride::bench::BenchScale;
using structride::bench::PointParams;
using structride::bench::SweepPrinter;

int main() {
  const double scale = BenchScale();
  const std::vector<int> capacities = {2, 3, 4, 5, 6};

  for (const std::string& dataset : {std::string("CHD"), std::string("NYC")}) {
    BenchContext ctx(dataset, scale);
    std::vector<std::string> labels;
    for (int c : capacities) labels.push_back("c=" + std::to_string(c));
    SweepPrinter printer("Fig. 11 (" + dataset + "): varying capacity", labels);
    for (const std::string& algo : BenchAlgorithms()) {
      for (size_t i = 0; i < capacities.size(); ++i) {
        PointParams p;
        p.capacity = capacities[i];
        printer.Record(algo, i, ctx.Run(algo, p));
      }
    }
    printer.Print();
  }
  return 0;
}
