// Fig. 12 reproduction: metrics as the penalty coefficient p_r varies
// (2-30). Greedy methods' assignments are unaffected (the coefficient only
// reprices the unified cost); RTV folds the penalty into its ILP.

#include <string>
#include <vector>

#include "bench/harness.h"

using structride::bench::BenchAlgorithms;
using structride::bench::BenchContext;
using structride::bench::BenchScale;
using structride::bench::PointParams;
using structride::bench::SweepPrinter;

int main() {
  const double scale = BenchScale();
  const std::vector<double> penalties = {2, 5, 10, 20, 30};

  for (const std::string& dataset : {std::string("CHD"), std::string("NYC")}) {
    BenchContext ctx(dataset, scale);
    std::vector<std::string> labels;
    for (double pr : penalties) {
      labels.push_back("pr=" + std::to_string(static_cast<int>(pr)));
    }
    SweepPrinter printer("Fig. 12 (" + dataset + "): varying penalty", labels);
    for (const std::string& algo : BenchAlgorithms()) {
      for (size_t i = 0; i < penalties.size(); ++i) {
        PointParams p;
        p.penalty = penalties[i];
        printer.Record(algo, i, ctx.Run(algo, p));
      }
    }
    printer.Print();
  }
  return 0;
}
