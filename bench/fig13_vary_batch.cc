// Fig. 13 reproduction: batch-based methods (RTV, GAS, SARD) as the batching
// period Delta varies (1-9 s).

#include <string>
#include <vector>

#include "bench/harness.h"

using structride::bench::BenchContext;
using structride::bench::BenchScale;
using structride::bench::PointParams;
using structride::bench::SweepPrinter;

int main() {
  const double scale = BenchScale();
  const std::vector<double> deltas = {1, 3, 5, 7, 9};
  const std::vector<std::string> batch_algos = {"RTV", "GAS", "SARD"};

  for (const std::string& dataset : {std::string("CHD"), std::string("NYC")}) {
    BenchContext ctx(dataset, scale);
    std::vector<std::string> labels;
    for (double d : deltas) {
      labels.push_back("D=" + std::to_string(static_cast<int>(d)) + "s");
    }
    SweepPrinter printer("Fig. 13 (" + dataset + "): varying batch period",
                         labels);
    for (const std::string& algo : batch_algos) {
      for (size_t i = 0; i < deltas.size(); ++i) {
        PointParams p;
        p.batch_period = deltas[i];
        printer.Record(algo, i, ctx.Run(algo, p));
      }
    }
    printer.Print();
  }
  return 0;
}
