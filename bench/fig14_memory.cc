// Fig. 14 reproduction: peak memory of each algorithm's dominant structures
// at the Table-III defaults, via instrumented byte accounting (DESIGN.md §4
// explains the substitution for process-RSS measurement). Expected ordering:
// RTV >> GAS ~= SARD > online methods.

#include <cstdio>
#include <string>

#include "bench/harness.h"

using structride::RunMetrics;
using structride::bench::BenchAlgorithms;
using structride::bench::BenchContext;
using structride::bench::BenchScale;
using structride::bench::PointParams;
using structride::bench::RecordJsonRow;

int main() {
  const double scale = BenchScale();
  std::printf("\n================================================================\n");
  std::printf("Fig. 14: Memory consumption (defaults, scale %.2f)\n", scale);
  std::printf("================================================================\n");
  std::printf("%-10s%-14s%16s%14s%14s\n", "dataset", "algorithm", "memory (KB)",
              "service", "run (s)");
  for (const std::string& dataset : {std::string("CHD"), std::string("NYC")}) {
    BenchContext ctx(dataset, scale);
    for (const std::string& algo : BenchAlgorithms()) {
      PointParams p;
      RunMetrics m = ctx.Run(algo, p);
      RecordJsonRow(algo, dataset, m);
      std::printf("%-10s%-14s%16.0f%14.3f%14.2f\n", dataset.c_str(), algo.c_str(),
                  static_cast<double>(m.memory_bytes) / 1e3, m.service_rate,
                  m.running_time);
    }
  }
  return 0;
}
