// Fig. 15 reproduction (Appendix B): the five Cainiao sweeps — |W|, |R|,
// gamma, p_r and Delta. DARM+DPRS is excluded, matching the paper
// ("due to insufficient training data, we only report the results of
// traditional algorithms").

#include <cmath>
#include <string>
#include <vector>

#include "bench/harness.h"

using structride::bench::BenchContext;
using structride::bench::BenchScale;
using structride::bench::PointParams;
using structride::bench::SweepPrinter;

namespace {

const std::vector<std::string> kAlgos = {"RTV", "pruneGDP", "GAS",
                                         "TicketAssign+", "SARD"};

void Sweep(BenchContext* ctx, const std::string& title,
           const std::vector<std::string>& labels,
           const std::vector<PointParams>& points) {
  SweepPrinter printer(title, labels);
  for (const std::string& algo : kAlgos) {
    for (size_t i = 0; i < points.size(); ++i) {
      printer.Record(algo, i, ctx->Run(algo, points[i]));
    }
  }
  printer.Print();
}

}  // namespace

int main() {
  const double scale = BenchScale();
  BenchContext ctx("Cainiao", scale);
  const int default_w = ctx.spec().num_vehicles;
  const int default_n = ctx.spec().workload.num_requests;

  // |W|: paper 3K..5K around a 4K default => ratios 0.75 .. 1.25.
  {
    std::vector<PointParams> points;
    std::vector<std::string> labels;
    for (double f : {0.75, 0.875, 1.0, 1.125, 1.25}) {
      PointParams p;
      p.num_vehicles = static_cast<int>(std::lround(default_w * f));
      points.push_back(p);
      labels.push_back(std::to_string(p.num_vehicles));
    }
    Sweep(&ctx, "Fig. 15 (Cainiao): varying |W|", labels, points);
  }
  // |R|: paper 50K..150K around 100K => ratios 0.5 .. 1.5.
  {
    std::vector<PointParams> points;
    std::vector<std::string> labels;
    for (double f : {0.5, 0.75, 1.0, 1.25, 1.5}) {
      PointParams p;
      p.num_requests = static_cast<int>(std::lround(default_n * f));
      points.push_back(p);
      labels.push_back(std::to_string(p.num_requests));
    }
    Sweep(&ctx, "Fig. 15 (Cainiao): varying |R|", labels, points);
  }
  // gamma: 1.8 .. 2.2.
  {
    std::vector<PointParams> points;
    std::vector<std::string> labels;
    for (double g : {1.8, 1.9, 2.0, 2.1, 2.2}) {
      PointParams p;
      p.gamma = g;
      points.push_back(p);
      char buf[16];
      std::snprintf(buf, sizeof(buf), "g=%.1f", g);
      labels.push_back(buf);
    }
    Sweep(&ctx, "Fig. 15 (Cainiao): varying gamma", labels, points);
  }
  // p_r: 2 .. 30.
  {
    std::vector<PointParams> points;
    std::vector<std::string> labels;
    for (double pr : {2.0, 5.0, 10.0, 20.0, 30.0}) {
      PointParams p;
      p.penalty = pr;
      points.push_back(p);
      labels.push_back("pr=" + std::to_string(static_cast<int>(pr)));
    }
    Sweep(&ctx, "Fig. 15 (Cainiao): varying penalty", labels, points);
  }
  // Delta: 3 .. 7 s.
  {
    std::vector<PointParams> points;
    std::vector<std::string> labels;
    for (double d : {3.0, 4.0, 5.0, 6.0, 7.0}) {
      PointParams p;
      p.batch_period = d;
      points.push_back(p);
      labels.push_back("D=" + std::to_string(static_cast<int>(d)) + "s");
    }
    Sweep(&ctx, "Fig. 15 (Cainiao): varying batch period", labels, points);
  }
  return 0;
}
