// Fig. 16 reproduction (Appendix B/C): Cainiao capacity sweep (c = 2..6)
// and capacity-variance sweep (sigma = 0..2 with mean 4).

#include <string>
#include <vector>

#include "bench/harness.h"

using structride::bench::BenchContext;
using structride::bench::BenchScale;
using structride::bench::PointParams;
using structride::bench::SweepPrinter;

namespace {
const std::vector<std::string> kAlgos = {"RTV", "pruneGDP", "GAS",
                                         "TicketAssign+", "SARD"};
}

int main() {
  const double scale = BenchScale();
  BenchContext ctx("Cainiao", scale);

  {
    std::vector<std::string> labels;
    for (int c : {2, 3, 4, 5, 6}) labels.push_back("c=" + std::to_string(c));
    SweepPrinter printer("Fig. 16 (Cainiao): varying capacity", labels);
    for (const std::string& algo : kAlgos) {
      size_t i = 0;
      for (int c : {2, 3, 4, 5, 6}) {
        PointParams p;
        p.capacity = c;
        printer.Record(algo, i++, ctx.Run(algo, p));
      }
    }
    printer.Print();
  }
  {
    std::vector<std::string> labels;
    for (double s : {0.0, 0.5, 1.0, 1.5, 2.0}) {
      char buf[16];
      std::snprintf(buf, sizeof(buf), "s=%.1f", s);
      labels.push_back(buf);
    }
    SweepPrinter printer("Fig. 16 (Cainiao): varying capacity variance sigma",
                         labels);
    for (const std::string& algo : kAlgos) {
      size_t i = 0;
      for (double s : {0.0, 0.5, 1.0, 1.5, 2.0}) {
        PointParams p;
        p.capacity_sigma = s;
        printer.Record(algo, i++, ctx.Run(algo, p));
      }
    }
    printer.Print();
  }
  return 0;
}
