// Fig. 17 reproduction (Appendix C): CHD and NYC under vehicle-capacity
// distributions N(4, sigma), sigma = 0..2. The paper finds all algorithms
// stable across sigma.

#include <string>
#include <vector>

#include "bench/harness.h"

using structride::bench::BenchAlgorithms;
using structride::bench::BenchContext;
using structride::bench::BenchScale;
using structride::bench::PointParams;
using structride::bench::SweepPrinter;

int main() {
  const double scale = BenchScale();
  const std::vector<double> sigmas = {0.0, 0.5, 1.0, 1.5, 2.0};

  for (const std::string& dataset : {std::string("CHD"), std::string("NYC")}) {
    BenchContext ctx(dataset, scale);
    std::vector<std::string> labels;
    for (double s : sigmas) {
      char buf[16];
      std::snprintf(buf, sizeof(buf), "s=%.1f", s);
      labels.push_back(buf);
    }
    SweepPrinter printer("Fig. 17 (" + dataset + "): varying capacity sigma",
                         labels);
    for (const std::string& algo : BenchAlgorithms()) {
      for (size_t i = 0; i < sigmas.size(); ++i) {
        PointParams p;
        p.capacity_sigma = sigmas[i];
        printer.Record(algo, i, ctx.Run(algo, p));
      }
    }
    printer.Print();
  }
  return 0;
}
