// Fig. 8 reproduction: unified cost / service rate / running time as the
// fleet size |W| varies (paper: 1K-5K vehicles around a 3K default; here the
// same ratios around the scaled preset default).

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/harness.h"

using structride::RunMetrics;
using structride::bench::BenchAlgorithms;
using structride::bench::BenchContext;
using structride::bench::BenchScale;
using structride::bench::PointParams;
using structride::bench::SweepPrinter;

int main() {
  const double scale = BenchScale();
  // Paper sweep 1K..5K with a 3K default: the same 1/3 .. 5/3 ratios.
  const std::vector<double> fractions = {1.0 / 3, 2.0 / 3, 1.0, 4.0 / 3, 5.0 / 3};
  const std::vector<std::string> paper_labels = {"~1K", "~2K", "~3K", "~4K", "~5K"};

  for (const std::string& dataset : {std::string("CHD"), std::string("NYC")}) {
    BenchContext ctx(dataset, scale);
    std::vector<std::string> labels;
    for (size_t i = 0; i < fractions.size(); ++i) {
      int w = static_cast<int>(std::lround(ctx.spec().num_vehicles * fractions[i]));
      labels.push_back(std::to_string(w) + "(" + paper_labels[i] + ")");
    }
    SweepPrinter printer("Fig. 8 (" + dataset + "): varying |W|", labels);
    for (const std::string& algo : BenchAlgorithms()) {
      for (size_t i = 0; i < fractions.size(); ++i) {
        PointParams p;
        p.num_vehicles =
            static_cast<int>(std::lround(ctx.spec().num_vehicles * fractions[i]));
        printer.Record(algo, i, ctx.Run(algo, p));
      }
    }
    printer.Print();
  }
  return 0;
}
