// Fig. 9 reproduction: metrics as the request count |R| varies (paper:
// 10K-250K around a 100K default; here the same ratios of the scaled preset).

#include <cmath>
#include <string>
#include <vector>

#include "bench/harness.h"

using structride::bench::BenchAlgorithms;
using structride::bench::BenchContext;
using structride::bench::BenchScale;
using structride::bench::PointParams;
using structride::bench::SweepPrinter;

int main() {
  const double scale = BenchScale();
  const std::vector<double> fractions = {0.1, 0.5, 1.0, 1.5, 2.0, 2.5};
  const std::vector<std::string> paper_labels = {"~10K",  "~50K",  "~100K",
                                                 "~150K", "~200K", "~250K"};

  for (const std::string& dataset : {std::string("CHD"), std::string("NYC")}) {
    BenchContext ctx(dataset, scale);
    std::vector<std::string> labels;
    for (size_t i = 0; i < fractions.size(); ++i) {
      int n = static_cast<int>(
          std::lround(ctx.spec().workload.num_requests * fractions[i]));
      labels.push_back(std::to_string(n) + "(" + paper_labels[i] + ")");
    }
    SweepPrinter printer("Fig. 9 (" + dataset + "): varying |R|", labels);
    for (const std::string& algo : BenchAlgorithms()) {
      for (size_t i = 0; i < fractions.size(); ++i) {
        PointParams p;
        p.num_requests = static_cast<int>(
            std::lround(ctx.spec().workload.num_requests * fractions[i]));
        printer.Record(algo, i, ctx.Run(algo, p));
      }
    }
    printer.Print();
  }
  return 0;
}
