#include "bench/harness.h"

#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "sim/workload.h"
#include "util/logging.h"

namespace structride {
namespace bench {

namespace {

// ---------------------------------------------------------------- JSON ----

struct JsonRow {
  std::string series;
  std::string point;
  RunMetrics metrics;
};

struct JsonValue {
  std::string series;
  std::string point;
  std::string metric;
  double value;
};

// Captured at static init, before main, so wall_time_s covers setup and the
// first run — not just the span between the first and last recorded row.
const std::chrono::steady_clock::time_point g_process_start =
    std::chrono::steady_clock::now();

struct JsonState {
  std::vector<JsonRow> rows;
  std::vector<JsonValue> values;
  bool at_exit_registered = false;
};

JsonState& GlobalJsonState() {
  static JsonState state;
  return state;
}

std::string BinaryName() {
#ifdef __GLIBC__
  return program_invocation_short_name;
#else
  // No portable program name: disambiguate by pid so concurrent or
  // sequential benches never overwrite each other's results.
  return "bench_pid" + std::to_string(static_cast<long>(::getpid()));
#endif
}

void WriteJsonAtExit() {
  const char* dir = std::getenv("STRUCTRIDE_JSON_DIR");
  if (dir == nullptr) return;
  JsonState& state = GlobalJsonState();
  const std::string name = BinaryName();
  std::string path = std::string(dir) + "/BENCH_" + name + ".json";
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "[bench] cannot write %s\n", path.c_str());
    return;
  }
  double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    g_process_start)
          .count();
  std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"wall_time_s\": %.3f,\n",
               JsonEscape(name).c_str(), wall);
  std::fprintf(f, "  \"scale\": %g,\n  \"rows\": [\n", BenchScale());
  for (size_t i = 0; i < state.rows.size(); ++i) {
    const JsonRow& r = state.rows[i];
    const RunMetrics& m = r.metrics;
    // Per-shard observability arrays (one entry per shard, shard-id order).
    std::string shard_queries, shard_hit_rates;
    for (size_t s = 0; s < m.shard_sp_queries.size(); ++s) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%s%llu", s > 0 ? ", " : "",
                    static_cast<unsigned long long>(m.shard_sp_queries[s]));
      shard_queries += buf;
    }
    for (size_t s = 0; s < m.shard_cache_hit_rate.size(); ++s) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%s%.6f", s > 0 ? ", " : "",
                    m.shard_cache_hit_rate[s]);
      shard_hit_rates += buf;
    }
    std::fprintf(
        f,
        "    {\"series\": \"%s\", \"point\": \"%s\", \"dataset\": \"%s\", "
        "\"algorithm\": \"%s\", \"unified_cost\": %.6f, \"travel_cost\": "
        "%.6f, \"penalty_cost\": %.6f, \"service_rate\": %.6f, "
        "\"running_time_s\": %.6f, \"sp_queries\": %llu, "
        "\"sharegraph_pair_checks\": %llu, \"memory_bytes\": "
        "%zu, \"served\": %d, \"cancelled\": %d, \"total_requests\": %d, "
        "\"expired\": %d, \"rejected\": %d, "
        "\"pickup_wait_p50\": %.6f, \"pickup_wait_p99\": %.6f, "
        "\"mean_detour_ratio\": %.6f, \"late_dropoffs\": %d, "
        "\"repositions\": %d, \"reposition_cost\": %.6f, "
        "\"num_shards\": %d, \"cross_shard_trips\": %d, "
        "\"shard_load_max_over_mean\": %.6f, "
        "\"shard_sp_queries\": [%s], \"shard_cache_hit_rate\": [%s], "
        "\"shard_round_time_max_over_mean\": %.6f, "
        "\"allocs_per_batch_p50\": %llu, \"allocs_per_batch_max\": %llu, "
        "\"arena_peak_bytes\": %zu, "
        "\"dispatch_latency_p50_ms\": %.6f, "
        "\"dispatch_latency_p99_ms\": %.6f, "
        "\"dispatch_latency_p999_ms\": %.6f, "
        "\"max_sustained_qps\": %.3f, \"shed_requests\": %llu, "
        "\"ingest_queue_depth_max\": %llu}%s\n",
        JsonEscape(r.series).c_str(), JsonEscape(r.point).c_str(),
        JsonEscape(m.dataset).c_str(), JsonEscape(m.algorithm).c_str(),
        m.unified_cost, m.travel_cost, m.penalty_cost, m.service_rate,
        m.running_time, static_cast<unsigned long long>(m.sp_queries),
        static_cast<unsigned long long>(m.sharegraph_pair_checks),
        m.memory_bytes, m.served, m.cancelled, m.total_requests,
        m.expired, m.rejected,
        m.pickup_wait_p50, m.pickup_wait_p99, m.mean_detour_ratio,
        m.late_dropoffs, m.repositions, m.reposition_cost,
        m.num_shards, m.cross_shard_trips, m.shard_load_max_over_mean,
        shard_queries.c_str(), shard_hit_rates.c_str(),
        m.shard_round_time_max_over_mean,
        static_cast<unsigned long long>(m.allocs_per_batch_p50),
        static_cast<unsigned long long>(m.allocs_per_batch_max),
        m.arena_peak_bytes, m.dispatch_latency_p50_ms,
        m.dispatch_latency_p99_ms, m.dispatch_latency_p999_ms,
        m.max_sustained_qps, static_cast<unsigned long long>(m.shed_requests),
        static_cast<unsigned long long>(m.ingest_queue_depth_max),
        i + 1 < state.rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"values\": [\n");
  for (size_t i = 0; i < state.values.size(); ++i) {
    const JsonValue& v = state.values[i];
    std::fprintf(f,
                 "    {\"series\": \"%s\", \"point\": \"%s\", \"metric\": "
                 "\"%s\", \"value\": %.9g}%s\n",
                 JsonEscape(v.series).c_str(), JsonEscape(v.point).c_str(),
                 JsonEscape(v.metric).c_str(), v.value,
                 i + 1 < state.values.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::fprintf(stderr, "[bench] wrote %s (%zu rows, %zu values)\n",
               path.c_str(), state.rows.size(), state.values.size());
}

void RegisterJsonAtExit(JsonState* state) {
  if (!state->at_exit_registered) {
    state->at_exit_registered = true;
    std::atexit(WriteJsonAtExit);
  }
}

}  // namespace

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

void RecordJsonRow(const std::string& series, const std::string& point,
                   const RunMetrics& metrics) {
  JsonState& state = GlobalJsonState();
  RegisterJsonAtExit(&state);
  state.rows.push_back({series, point, metrics});
}

void RecordJsonValue(const std::string& series, const std::string& point,
                     const std::string& metric, double value) {
  JsonState& state = GlobalJsonState();
  RegisterJsonAtExit(&state);
  state.values.push_back({series, point, metric, value});
}

double BenchScale() {
  const char* env = std::getenv("STRUCTRIDE_SCALE");
  if (env == nullptr) return 0.25;
  char* end = nullptr;
  double s = std::strtod(env, &end);
  if (end == env || *end != '\0' || !(s > 0)) {
    std::fprintf(stderr,
                 "[bench] ignoring STRUCTRIDE_SCALE=\"%s\" (want a positive "
                 "number); using the default 0.25\n",
                 env);
    return 0.25;
  }
  return s;
}

int BenchShards() {
  const char* env = std::getenv("STRUCTRIDE_SHARDS");
  if (env == nullptr) return 1;
  char* end = nullptr;
  long z = std::strtol(env, &end, 10);
  if (end == env || *end != '\0' || z < 1) {
    std::fprintf(stderr,
                 "[bench] ignoring STRUCTRIDE_SHARDS=\"%s\" (want a positive "
                 "integer); using the default 1\n",
                 env);
    return 1;
  }
  return static_cast<int>(z);
}

bool BenchConcurrentShards() {
  const char* env = std::getenv("STRUCTRIDE_CONC_SHARDS");
  if (env == nullptr) return true;
  if (std::strcmp(env, "0") == 0) return false;
  if (std::strcmp(env, "1") == 0) return true;
  std::fprintf(stderr,
               "[bench] ignoring STRUCTRIDE_CONC_SHARDS=\"%s\" (want 0 or "
               "1); using the default 1\n",
               env);
  return true;
}

int BenchThreads() {
  const char* env = std::getenv("STRUCTRIDE_THREADS");
  if (env == nullptr) return 4;
  char* end = nullptr;
  long t = std::strtol(env, &end, 10);
  if (end == env || *end != '\0' || t < 1) {
    std::fprintf(stderr,
                 "[bench] ignoring STRUCTRIDE_THREADS=\"%s\" (want a positive "
                 "integer); using the default 4\n",
                 env);
    return 4;
  }
  return static_cast<int>(t);
}

double BenchQps() {
  const char* env = std::getenv("STRUCTRIDE_QPS");
  if (env == nullptr) return 0;
  char* end = nullptr;
  double q = std::strtod(env, &end);
  if (end == env || *end != '\0' || q < 0) {
    std::fprintf(stderr,
                 "[bench] ignoring STRUCTRIDE_QPS=\"%s\" (want a "
                 "non-negative number); using the default 0 (replay)\n",
                 env);
    return 0;
  }
  return q;
}

double BenchSloP99Ms() {
  const char* env = std::getenv("STRUCTRIDE_SLO_P99_MS");
  if (env == nullptr) return 250;
  char* end = nullptr;
  double ms = std::strtod(env, &end);
  if (end == env || *end != '\0' || !(ms > 0)) {
    std::fprintf(stderr,
                 "[bench] ignoring STRUCTRIDE_SLO_P99_MS=\"%s\" (want a "
                 "positive number); using the default 250\n",
                 env);
    return 250;
  }
  return ms;
}

TravelCostOptions::Backend BenchSpBackend() {
  const char* env = std::getenv("STRUCTRIDE_SP_BACKEND");
  if (env == nullptr) return TravelCostOptions::Backend::kHubLabeling;
  if (std::strcmp(env, "hl") == 0) {
    return TravelCostOptions::Backend::kHubLabeling;
  }
  if (std::strcmp(env, "ch") == 0) {
    return TravelCostOptions::Backend::kContractionHierarchies;
  }
  if (std::strcmp(env, "bd") == 0) {
    return TravelCostOptions::Backend::kBidirectionalDijkstra;
  }
  std::fprintf(stderr,
               "[bench] ignoring STRUCTRIDE_SP_BACKEND=\"%s\" (want hl, ch "
               "or bd); using the default hl\n",
               env);
  return TravelCostOptions::Backend::kHubLabeling;
}

std::vector<std::string> BenchAlgorithms() {
  const char* env = std::getenv("STRUCTRIDE_ALGOS");
  if (env == nullptr) return AllDispatcherNames();
  std::vector<std::string> out;
  std::stringstream ss(env);
  std::string token;
  while (std::getline(ss, token, ',')) {
    if (!token.empty()) out.push_back(token);
  }
  return out.empty() ? AllDispatcherNames() : out;
}

BenchContext::BenchContext(const std::string& dataset, double scale)
    : spec_(DatasetByName(dataset, scale)) {
  // DatasetByName already scaled the request count, fleet size and arrival
  // window (exactly once — see sim/datasets.h); nothing to rescale here.
  graph_ = BuildGraph(&spec_);
  TravelCostOptions topts;
  topts.backend = BenchSpBackend();
  // Snapshot-loaded indices ride along in the bundle; adopt them so a
  // preprocessed graph never rebuilds what the file already carries.
  topts.prebuilt_hub_labels = graph_.hub_labels.get();
  topts.prebuilt_ch = graph_.ch.get();
  engine_ = std::make_unique<TravelCostEngine>(graph_.network, topts);
  std::fprintf(stderr, "[bench] %s: %zu nodes, %zu edges, %d requests, %d vehicles\n",
               spec_.name.c_str(), graph_.network.num_nodes(),
               graph_.network.num_edges(), spec_.workload.num_requests,
               spec_.num_vehicles);
}

void BenchContext::EnsureStream(double gamma, int num_requests) {
  if (stream_gamma_ == gamma && stream_requests_ == num_requests) return;
  DeadlinePolicy policy = spec_.policy;
  policy.gamma = gamma;
  WorkloadOptions wopts = spec_.workload;
  wopts.num_requests = num_requests;
  requests_ = GenerateWorkload(graph_.network, engine_.get(), policy, wopts);
  stream_gamma_ = gamma;
  stream_requests_ = num_requests;
}

RunMetrics BenchContext::Run(const std::string& algorithm,
                             const PointParams& params) {
  double gamma = params.gamma > 0 ? params.gamma : spec_.policy.gamma;
  int n = params.num_requests > 0 ? params.num_requests
                                  : spec_.workload.num_requests;
  EnsureStream(gamma, n);

  SimulationOptions sopts;
  sopts.batch_period = params.batch_period;
  sopts.seed = 4242;
  sopts.dataset = spec_.name;  // the engine stamps RunMetrics::dataset
  int capacity = params.capacity > 0 ? params.capacity : spec_.capacity;
  sopts.capacity_sigma = params.capacity_sigma;
  sopts.capacity_mean = params.capacity_sigma > 0 ? 4 : capacity;
  if (params.capacity_sigma > 0) capacity = 4;  // Appendix C: mean 4
  const double qps = BenchQps();
  if (qps > 0) {
    sopts.service_mode = true;
    sopts.service_qps = qps;
  }

  SimulationEngine sim(engine_.get(), requests_, sopts);
  int vehicles = params.num_vehicles > 0 ? params.num_vehicles : spec_.num_vehicles;
  sim.SpawnFleet(vehicles, capacity);

  DispatchConfig config;
  config.penalty_coefficient = params.penalty;
  config.vehicle_capacity = capacity;
  config.grouping.max_group_size = capacity;
  config.sharegraph.vehicle_capacity = capacity;
  config.sharegraph.use_angle_pruning = params.angle_pruning;
  config.ilp_node_cap = 200'000;
  config.num_threads = BenchThreads();
  config.num_shards = BenchShards();
  config.concurrent_shards = BenchConcurrentShards();

  return sim.Run(algorithm, config);
}

SweepPrinter::SweepPrinter(std::string title, std::vector<std::string> labels)
    : title_(std::move(title)), labels_(std::move(labels)) {}

void SweepPrinter::Record(const std::string& algorithm, size_t col,
                          const RunMetrics& m) {
  SR_CHECK(col < labels_.size());
  size_t row = algorithms_.size();
  for (size_t i = 0; i < algorithms_.size(); ++i) {
    if (algorithms_[i] == algorithm) {
      row = i;
      break;
    }
  }
  if (row == algorithms_.size()) {
    algorithms_.push_back(algorithm);
    cells_.emplace_back(labels_.size());
  }
  cells_[row][col].set = true;
  cells_[row][col].metrics = m;
  RecordJsonRow(algorithm, labels_[col], m);
}

void SweepPrinter::Print() const {
  auto block = [&](const char* name, auto getter, const char* fmt) {
    std::printf("\n%s — %s\n", title_.c_str(), name);
    std::printf("%-14s", "algorithm");
    for (const std::string& l : labels_) std::printf("%12s", l.c_str());
    std::printf("\n");
    for (size_t r = 0; r < algorithms_.size(); ++r) {
      std::printf("%-14s", algorithms_[r].c_str());
      for (size_t c = 0; c < labels_.size(); ++c) {
        if (cells_[r][c].set) {
          char buf[32];
          std::snprintf(buf, sizeof(buf), fmt, getter(cells_[r][c].metrics));
          std::printf("%12s", buf);
        } else {
          std::printf("%12s", "-");
        }
      }
      std::printf("\n");
    }
  };
  std::printf("\n================================================================\n");
  std::printf("%s\n", title_.c_str());
  std::printf("================================================================\n");
  block("Unified Cost", [](const RunMetrics& m) { return m.unified_cost; },
        "%.0f");
  block("Service Rate", [](const RunMetrics& m) { return m.service_rate; },
        "%.3f");
  block("Running Time (s)", [](const RunMetrics& m) { return m.running_time; },
        "%.2f");
  block("SP Queries (K)",
        [](const RunMetrics& m) { return static_cast<double>(m.sp_queries) / 1e3; },
        "%.0f");
  block("Memory (KB)",
        [](const RunMetrics& m) { return static_cast<double>(m.memory_bytes) / 1e3; },
        "%.0f");
  std::fflush(stdout);
}

}  // namespace bench
}  // namespace structride
