// Shared harness for the figure/table reproduction benches. Each bench
// binary sweeps one Table-III/IV parameter and prints, for every algorithm,
// the three series the paper plots (unified cost, service rate, running
// time) plus the auxiliary columns (queries, memory).
//
// Scaling: workloads default to 1/4 of the already-scaled-down dataset
// presets so that a full bench suite completes on one machine; set
// STRUCTRIDE_SCALE to change (e.g. STRUCTRIDE_SCALE=1 for the DESIGN.md
// default size; the paper's full size corresponds to ~25).
// STRUCTRIDE_ALGOS=SARD,GAS filters algorithms.

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "roadnet/travel_cost.h"
#include "sim/datasets.h"
#include "sim/engine.h"

namespace structride {
namespace bench {

/// \brief One sweep point's knobs (unset fields fall back to the dataset
/// spec's Table-III defaults).
struct PointParams {
  int num_vehicles = -1;
  int num_requests = -1;
  int capacity = -1;
  double gamma = -1;
  double penalty = 10;
  double batch_period = 5;
  double capacity_sigma = 0;
  bool angle_pruning = false;  ///< SARD-O when true (Tables V/VI)
};

/// \brief A dataset instantiated for benching: network + engine + a cached
/// request stream (regenerated when gamma or request count changes).
class BenchContext {
 public:
  /// \p scale multiplies the preset's request/fleet counts and duration.
  BenchContext(const std::string& dataset, double scale);

  /// \brief Run one (algorithm, parameters) point and return its metrics.
  RunMetrics Run(const std::string& algorithm, const PointParams& params);

  const DatasetSpec& spec() const { return spec_; }
  const RoadNetwork& network() const { return graph_.network; }
  const GraphBundle& graph() const { return graph_; }
  TravelCostEngine* engine() { return engine_.get(); }

 private:
  void EnsureStream(double gamma, int num_requests);

  DatasetSpec spec_;
  /// Network plus any snapshot-loaded indices; the engine adopts the latter
  /// through TravelCostOptions::prebuilt_* instead of rebuilding.
  GraphBundle graph_;
  std::unique_ptr<TravelCostEngine> engine_;
  std::vector<Request> requests_;
  double stream_gamma_ = -1;
  int stream_requests_ = -1;
};

/// \brief Env-var scale (STRUCTRIDE_SCALE, default 0.25).
double BenchScale();

/// \brief Env-var shard count (STRUCTRIDE_SHARDS, default 1): every
/// BenchContext::Run dispatches with DispatchConfig::num_shards set to this,
/// so any figure/table bench replays geo-sharded without a rebuild.
int BenchShards();

/// \brief Env-var concurrent-shard switch (STRUCTRIDE_CONC_SHARDS, default
/// 1): every BenchContext::Run dispatches with
/// DispatchConfig::concurrent_shards set to this, so serial-vs-concurrent
/// shard execution can be compared across two bench invocations (the CI
/// compare_bench.py cell) without a rebuild. 0 = serial reference.
bool BenchConcurrentShards();

/// \brief Env-var worker-thread count (STRUCTRIDE_THREADS, default 4):
/// every BenchContext::Run dispatches with DispatchConfig::num_threads set
/// to this, so the sweep generator can grid over thread counts.
int BenchThreads();

/// \brief Env-var service-mode arrival rate (STRUCTRIDE_QPS, default 0):
/// when positive, every BenchContext::Run enables the streaming service
/// mode (DESIGN.md §13) at this wall-clock qps; 0 keeps the replay engine.
double BenchQps();

/// \brief Env-var dispatch-latency SLO (STRUCTRIDE_SLO_P99_MS, default
/// 250): the p99 ingest→decision bound the sustained-qps bench and the CI
/// service gate hold runs to, in milliseconds.
double BenchSloP99Ms();

/// \brief Env-var travel-cost backend (STRUCTRIDE_SP_BACKEND: "hl", "ch" or
/// "bd"; default "hl"): the shortest-path backend BenchContext builds its
/// engine with, so the sweep generator can grid over backends.
TravelCostOptions::Backend BenchSpBackend();

/// \brief Escapes \p s for embedding inside a JSON string literal: quotes,
/// backslashes, the named control escapes (\b \f \n \r \t) and \u00XX for
/// every other byte below 0x20. Dataset/bench/series names flow into
/// BENCH_*.json verbatim otherwise, and one quote would corrupt the file.
std::string JsonEscape(const std::string& s);

/// \brief Machine-readable results: rows accumulate in-process and are
/// written to $STRUCTRIDE_JSON_DIR/BENCH_<binary>.json at exit — one row per
/// (series, point) with the full RunMetrics plus the bench's wall time. A
/// no-op when the env var is unset. SweepPrinter::Record feeds this
/// automatically; benches with bespoke tables call it directly.
void RecordJsonRow(const std::string& series, const std::string& point,
                   const RunMetrics& metrics);

/// \brief Like RecordJsonRow for benches whose output is a scalar statistic
/// (optimality probabilities, structure metrics) rather than a RunMetrics;
/// lands in the same BENCH_<binary>.json under "values".
void RecordJsonValue(const std::string& series, const std::string& point,
                     const std::string& metric, double value);

/// \brief Algorithms to bench: STRUCTRIDE_ALGOS filter or the paper's six.
std::vector<std::string> BenchAlgorithms();

/// \brief Pretty-print one sweep: for each metric block (unified cost,
/// service rate, running time), algorithms as rows, sweep points as columns.
class SweepPrinter {
 public:
  /// \p title e.g. "Fig. 8 (CHD): varying |W|"; \p labels column labels.
  SweepPrinter(std::string title, std::vector<std::string> labels);

  /// \brief Record the metrics of \p algorithm at sweep position \p col.
  void Record(const std::string& algorithm, size_t col, const RunMetrics& m);

  /// \brief Print all metric blocks to stdout.
  void Print() const;

 private:
  struct Cell {
    bool set = false;
    RunMetrics metrics;
  };
  std::string title_;
  std::vector<std::string> labels_;
  std::vector<std::string> algorithms_;  // insertion order
  std::vector<std::vector<Cell>> cells_;  // [algorithm][col]
};

}  // namespace bench
}  // namespace structride
