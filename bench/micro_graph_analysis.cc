// Microbenchmarks for the shareability-graph structure analyses used by the
// graph_analysis example and available through sharegraph/analysis.h: degree
// profiling, k-core peeling, component labeling, maximal-clique enumeration
// and the greedy bounded clique partition, at batch-realistic graph sizes.

#include <benchmark/benchmark.h>

#include "sharegraph/analysis.h"
#include "sharegraph/share_graph.h"
#include "util/random.h"

namespace structride {
namespace {

// Batch-like random graph: mean degree ~8 regardless of node count, matching
// what the builder produces on NYC-like batches.
ShareGraph BatchGraph(int n, uint64_t seed) {
  Rng rng(seed);
  ShareGraph g;
  double p = std::min(1.0, 8.0 / n);
  for (int v = 0; v < n; ++v) g.AddNode(v);
  for (int a = 0; a < n; ++a) {
    for (int b = a + 1; b < n; ++b) {
      if (rng.Uniform(0, 1) < p) g.AddEdge(a, b);
    }
  }
  return g;
}

void BM_DegreeProfile(benchmark::State& state) {
  ShareGraph g = BatchGraph(static_cast<int>(state.range(0)), 1);
  for (auto _ : state) benchmark::DoNotOptimize(ComputeDegreeProfile(g));
  state.SetLabel(std::to_string(g.NumEdges()) + " edges");
}
BENCHMARK(BM_DegreeProfile)->Arg(200)->Arg(1000);

void BM_CoreDecomposition(benchmark::State& state) {
  ShareGraph g = BatchGraph(static_cast<int>(state.range(0)), 2);
  for (auto _ : state) benchmark::DoNotOptimize(ComputeCoreDecomposition(g));
  state.SetLabel(std::to_string(g.NumEdges()) + " edges");
}
BENCHMARK(BM_CoreDecomposition)->Arg(200)->Arg(1000);

void BM_ConnectedComponents(benchmark::State& state) {
  ShareGraph g = BatchGraph(static_cast<int>(state.range(0)), 3);
  for (auto _ : state) benchmark::DoNotOptimize(ConnectedComponents(g));
}
BENCHMARK(BM_ConnectedComponents)->Arg(200)->Arg(1000);

void BM_MaximalCliques(benchmark::State& state) {
  ShareGraph g = BatchGraph(static_cast<int>(state.range(0)), 4);
  size_t cliques = 0;
  for (auto _ : state) {
    auto result = MaximalCliques(g);
    cliques = result.size();
    benchmark::DoNotOptimize(result);
  }
  state.SetLabel(std::to_string(cliques) + " cliques");
}
BENCHMARK(BM_MaximalCliques)->Arg(200)->Arg(500)->Unit(benchmark::kMillisecond);

void BM_GreedyCliquePartition(benchmark::State& state) {
  ShareGraph g = BatchGraph(static_cast<int>(state.range(0)), 5);
  size_t parts = 0;
  for (auto _ : state) {
    auto result = GreedyCliquePartition(g, 3);
    parts = result.size();
    benchmark::DoNotOptimize(result);
  }
  state.SetLabel(std::to_string(parts) + " cliques (k=3)");
}
BENCHMARK(BM_GreedyCliquePartition)->Arg(200)->Arg(1000);

void BM_AnalyzeStructure(benchmark::State& state) {
  ShareGraph g = BatchGraph(static_cast<int>(state.range(0)), 6);
  for (auto _ : state) benchmark::DoNotOptimize(AnalyzeStructure(g, 3));
}
BENCHMARK(BM_AnalyzeStructure)->Arg(200)->Arg(500)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace structride
