// Microbenchmarks for the Algorithm-2 grouping enumerator: cost versus pool
// size and capacity, under both insertion-order policies (the paper's
// one-schedule-per-node additive tree vs the GAS-quality variant).

#include <benchmark/benchmark.h>

#include "group/grouping.h"
#include "roadnet/generator.h"
#include "sharegraph/builder.h"
#include "sim/workload.h"

namespace structride {
namespace {

struct Fixture {
  RoadNetwork net;
  TravelCostEngine engine;
  std::vector<Request> requests;
  std::unique_ptr<ShareGraphBuilder> builder;

  Fixture()
      : net([] {
          CityOptions opt;
          opt.rows = 30;
          opt.cols = 30;
          opt.seed = 41;
          return GenerateGridCity(opt);
        }()),
        engine(net) {
    DeadlinePolicy policy;
    policy.gamma = 2.0;
    WorkloadOptions wopts;
    wopts.num_requests = 120;
    wopts.duration = 30;
    wopts.seed = 8;
    requests = GenerateWorkload(net, &engine, policy, wopts);
    ShareGraphBuilderOptions bopts;
    bopts.use_angle_pruning = false;
    bopts.vehicle_capacity = 6;
    builder = std::make_unique<ShareGraphBuilder>(&engine, bopts);
    builder->AddBatch(requests);
  }
};

Fixture& F() {
  static Fixture f;
  return f;
}

void BM_EnumerateGroups(benchmark::State& state) {
  Fixture& f = F();
  size_t pool_size = static_cast<size_t>(state.range(0));
  int capacity = static_cast<int>(state.range(1));
  bool best_of_all = state.range(2) != 0;
  std::vector<Request> pool(f.requests.begin(),
                            f.requests.begin() +
                                std::min(pool_size, f.requests.size()));
  RouteState rs;
  rs.start = pool[0].source;
  rs.start_time = 0;
  rs.capacity = capacity;
  GroupingOptions opts;
  opts.max_group_size = capacity;
  opts.insertion_order = best_of_all ? InsertionOrderPolicy::kBestOfAllParents
                                     : InsertionOrderPolicy::kByShareability;
  size_t produced = 0;
  for (auto _ : state) {
    GroupingResult res = EnumerateGroups(rs, Schedule(), pool, &f.builder->graph(),
                                         &f.engine, opts);
    produced = res.groups.size();
    benchmark::DoNotOptimize(res);
  }
  state.SetLabel("pool=" + std::to_string(pool.size()) + " c=" +
                 std::to_string(capacity) + " groups=" + std::to_string(produced) +
                 (best_of_all ? " best-of-all" : " by-shareability"));
}
BENCHMARK(BM_EnumerateGroups)
    ->Args({10, 3, 0})
    ->Args({30, 3, 0})
    ->Args({60, 3, 0})
    ->Args({30, 4, 0})
    ->Args({30, 3, 1})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(20);

}  // namespace
}  // namespace structride
