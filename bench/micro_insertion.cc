// Microbenchmarks for the linear insertion operator: cost versus committed
// schedule length, with and without lower-bound pruning, plus the kinetic
// tree comparison (the Sec. IV-A tradeoff).

#include <benchmark/benchmark.h>

#include "core/insertion.h"
#include "core/kinetic_tree.h"
#include "roadnet/generator.h"
#include "sim/workload.h"
#include "util/random.h"

namespace structride {
namespace {

struct Fixture {
  RoadNetwork net;
  TravelCostEngine engine;
  DeadlinePolicy policy;
  std::vector<Request> requests;

  Fixture()
      : net([] {
          CityOptions opt;
          opt.rows = 30;
          opt.cols = 30;
          opt.seed = 21;
          return GenerateGridCity(opt);
        }()),
        engine(net) {
    policy.gamma = 2.0;
    WorkloadOptions wopts;
    wopts.num_requests = 400;
    wopts.duration = 60;
    wopts.seed = 5;
    requests = GenerateWorkload(net, &engine, policy, wopts);
  }
};

Fixture& F() {
  static Fixture f;
  return f;
}

// Build a vehicle with `k` committed requests.
Vehicle LoadedVehicle(int k, uint64_t seed) {
  Fixture& f = F();
  Rng rng(seed);
  Vehicle w(0, static_cast<NodeId>(rng.UniformInt(0, f.net.num_nodes() - 1)),
            /*capacity=*/8);
  int committed = 0;
  for (const Request& r : f.requests) {
    if (committed >= k) break;
    if (TryInsertAndCommit(&w, r, 0, &f.engine) <
        std::numeric_limits<double>::infinity()) {
      ++committed;
    }
  }
  return w;
}

void BM_BestInsertion(benchmark::State& state) {
  Fixture& f = F();
  Vehicle w = LoadedVehicle(static_cast<int>(state.range(0)), 7);
  InsertionOptions opts;
  opts.use_pruning = state.range(1) != 0;
  size_t i = 100;
  for (auto _ : state) {
    const Request& r = f.requests[i++ % f.requests.size()];
    benchmark::DoNotOptimize(
        BestInsertion(w.route_state(0), w.schedule(), r, &f.engine, opts));
  }
  state.SetLabel(std::string("k=") + std::to_string(state.range(0)) +
                 (opts.use_pruning ? " pruned" : " exhaustive"));
}
BENCHMARK(BM_BestInsertion)
    ->Args({0, 1})
    ->Args({2, 1})
    ->Args({4, 1})
    ->Args({6, 1})
    ->Args({4, 0});

void BM_KineticTreeInsert(benchmark::State& state) {
  Fixture& f = F();
  int k = static_cast<int>(state.range(0));
  for (auto _ : state) {
    RouteState rs;
    rs.start = f.requests[0].source;
    rs.start_time = 0;
    rs.capacity = 8;
    KineticTree tree(rs);
    int inserted = 0;
    for (const Request& r : f.requests) {
      if (inserted >= k) break;
      if (tree.Insert(r, &f.engine)) ++inserted;
    }
    benchmark::DoNotOptimize(tree.NumSchedules());
  }
  state.SetLabel("k=" + std::to_string(k));
}
BENCHMARK(BM_KineticTreeInsert)->Arg(2)->Arg(3)->Arg(4);

void BM_CheckSchedule(benchmark::State& state) {
  Fixture& f = F();
  Vehicle w = LoadedVehicle(5, 13);
  RouteState rs = w.route_state(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(CheckSchedule(rs, w.schedule().stops(), &f.engine));
  }
}
BENCHMARK(BM_CheckSchedule);

}  // namespace
}  // namespace structride
