// Microbenchmarks for the shareability graph: batch folding with and
// without angle pruning (the Alg. 1 cost), shareability loss evaluation and
// supernode substitution.

#include <benchmark/benchmark.h>

#include "sharegraph/builder.h"
#include "sharegraph/loss.h"
#include "roadnet/generator.h"
#include "sim/workload.h"

namespace structride {
namespace {

struct Fixture {
  RoadNetwork net;
  TravelCostEngine engine;
  std::vector<Request> requests;

  Fixture()
      : net([] {
          CityOptions opt;
          opt.rows = 30;
          opt.cols = 30;
          opt.seed = 31;
          return GenerateGridCity(opt);
        }()),
        engine(net) {
    DeadlinePolicy policy;
    policy.gamma = 1.5;
    WorkloadOptions wopts;
    wopts.num_requests = 300;
    wopts.duration = 90;
    wopts.seed = 6;
    requests = GenerateWorkload(net, &engine, policy, wopts);
  }
};

Fixture& F() {
  static Fixture f;
  return f;
}

void BM_BuildShareGraph(benchmark::State& state) {
  Fixture& f = F();
  ShareGraphBuilderOptions opts;
  opts.use_angle_pruning = state.range(0) != 0;
  for (auto _ : state) {
    ShareGraphBuilder builder(&f.engine, opts);
    builder.AddBatch(f.requests);
    benchmark::DoNotOptimize(builder.graph().NumEdges());
  }
  state.SetLabel(opts.use_angle_pruning ? "angle pruning" : "no pruning");
}
BENCHMARK(BM_BuildShareGraph)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond)->Iterations(10);

void BM_IncrementalAddBatch(benchmark::State& state) {
  // The per-batch incremental cost: fold 20 new requests into a populated
  // graph.
  Fixture& f = F();
  ShareGraphBuilderOptions opts;
  opts.use_angle_pruning = true;
  for (auto _ : state) {
    state.PauseTiming();
    ShareGraphBuilder builder(&f.engine, opts);
    std::vector<Request> base(f.requests.begin(), f.requests.end() - 20);
    std::vector<Request> batch(f.requests.end() - 20, f.requests.end());
    builder.AddBatch(base);
    state.ResumeTiming();
    builder.AddBatch(batch);
    benchmark::DoNotOptimize(builder.graph().NumEdges());
  }
}
BENCHMARK(BM_IncrementalAddBatch)->Unit(benchmark::kMillisecond)->Iterations(10);

void BM_ShareabilityLoss(benchmark::State& state) {
  static ShareGraphBuilder* builder = [] {
    auto* b = new ShareGraphBuilder(&F().engine, ShareGraphBuilderOptions{false});
    b->AddBatch(F().requests);
    return b;
  }();
  const ShareGraph& sg = builder->graph();
  // Collect groups of the requested size (edges / triangles).
  std::vector<std::vector<RequestId>> groups;
  int k = static_cast<int>(state.range(0));
  for (RequestId a : sg.Nodes()) {
    for (RequestId b : sg.Neighbors(a)) {
      if (b <= a) continue;
      if (k == 2) {
        groups.push_back({a, b});
      } else {
        for (RequestId c : sg.Neighbors(b)) {
          if (c <= b || !sg.HasEdge(a, c)) continue;
          groups.push_back({a, b, c});
        }
      }
      if (groups.size() > 500) break;
    }
    if (groups.size() > 500) break;
  }
  if (groups.empty()) {
    state.SkipWithError("no groups found");
    return;
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ShareabilityLoss(sg, groups[i++ % groups.size()]));
  }
  state.SetLabel("|G|=" + std::to_string(k));
}
BENCHMARK(BM_ShareabilityLoss)->Arg(2)->Arg(3);

void BM_SupernodeSubstitution(benchmark::State& state) {
  Fixture& f = F();
  ShareGraphBuilderOptions opts;
  opts.use_angle_pruning = false;
  for (auto _ : state) {
    state.PauseTiming();
    ShareGraphBuilder builder(&f.engine, opts);
    builder.AddBatch(f.requests);
    ShareGraph sg = builder.graph();
    // First edge found.
    std::vector<RequestId> group;
    for (RequestId a : sg.Nodes()) {
      if (!sg.Neighbors(a).empty()) {
        group = {a, sg.Neighbors(a)[0]};
        break;
      }
    }
    state.ResumeTiming();
    if (!group.empty()) sg.SubstituteSupernode(group, 1 << 20);
    benchmark::DoNotOptimize(sg.NumEdges());
  }
}
BENCHMARK(BM_SupernodeSubstitution)->Unit(benchmark::kMillisecond)->Iterations(10);

}  // namespace
}  // namespace structride
