// Microbenchmarks for the shortest-path substrate, in two parts:
//
//  1. A cold/warm latency study on the CHD preset network: for each backend
//     (hub labels, contraction hierarchies, bidirectional Dijkstra) the same
//     random pair set is driven through a fresh TravelCostEngine twice — the
//     cold pass is all cache misses (backend-bound), the warm pass is all
//     cache hits (LRU-bound) — and p50/p99 per-query latency plus
//     queries/sec are reported per phase. A third HL-only pass issues the
//     pairs as one-to-many CostMany batches. Warm (and CostMany) queries are
//     tens of nanoseconds, below the clock resolution, so those phases time
//     fixed-size chunks and report per-query averages per chunk; cold
//     queries are timed individually. Runs before the Google-Benchmark
//     cases (own main below).
//
//  2. The Google-Benchmark cases: raw hub-label query vs bidirectional
//     Dijkstra, the cached engine hot path, batched CostMany, and index
//     construction.
//
// With STRUCTRIDE_JSON_DIR set, the study writes
// $STRUCTRIDE_JSON_DIR/BENCH_micro_shortest_path_latency.json.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "roadnet/dijkstra.h"
#include "roadnet/generator.h"
#include "roadnet/hub_labeling.h"
#include "roadnet/travel_cost.h"
#include "sim/datasets.h"
#include "util/random.h"

namespace structride {
namespace {

// ------------------------------------------------------------------------
// Part 1: cold/warm latency study.

struct PhaseStats {
  double p50_ns = 0;
  double p99_ns = 0;
  double qps = 0;
};

PhaseStats Summarize(std::vector<double> ns_per_query, double total_seconds,
                     size_t queries) {
  PhaseStats out;
  if (ns_per_query.empty()) return out;
  std::sort(ns_per_query.begin(), ns_per_query.end());
  out.p50_ns = ns_per_query[ns_per_query.size() / 2];
  out.p99_ns = ns_per_query[std::min(ns_per_query.size() - 1,
                                     ns_per_query.size() * 99 / 100)];
  out.qps = total_seconds > 0 ? static_cast<double>(queries) / total_seconds : 0;
  return out;
}

double Seconds(std::chrono::steady_clock::time_point a,
               std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

std::vector<std::pair<NodeId, NodeId>> StudyPairs(const RoadNetwork& net,
                                                  size_t count) {
  // Distinct canonical pairs, so the cold phase is all misses and the warm
  // phase all hits.
  Rng rng(7);
  std::vector<std::pair<NodeId, NodeId>> pairs;
  std::vector<uint64_t> seen;
  const int64_t n = static_cast<int64_t>(net.num_nodes());
  while (pairs.size() < count) {
    NodeId s = static_cast<NodeId>(rng.UniformInt(0, n - 1));
    NodeId t = static_cast<NodeId>(rng.UniformInt(0, n - 1));
    if (s == t) continue;
    uint64_t key = (static_cast<uint64_t>(static_cast<uint32_t>(std::min(s, t)))
                    << 32) |
                   static_cast<uint32_t>(std::max(s, t));
    if (std::find(seen.begin(), seen.end(), key) != seen.end()) continue;
    seen.push_back(key);
    pairs.emplace_back(s, t);
  }
  return pairs;
}

struct BackendReport {
  std::string name;
  PhaseStats cold;
  PhaseStats warm;
  PhaseStats cost_many;  // HL only; zeroed elsewhere
};

BackendReport RunStudyBackend(const RoadNetwork& net,
                              TravelCostOptions::Backend backend,
                              const std::string& name,
                              const std::vector<std::pair<NodeId, NodeId>>& pairs) {
  BackendReport report;
  report.name = name;
  TravelCostOptions options;
  options.backend = backend;
  TravelCostEngine engine(net, options);

  // Cold: every query is a miss; microsecond-scale, timed individually.
  {
    std::vector<double> samples;
    samples.reserve(pairs.size());
    auto t0 = std::chrono::steady_clock::now();
    for (const auto& [s, t] : pairs) {
      auto q0 = std::chrono::steady_clock::now();
      benchmark::DoNotOptimize(engine.Cost(s, t));
      auto q1 = std::chrono::steady_clock::now();
      samples.push_back(Seconds(q0, q1) * 1e9);
    }
    auto t1 = std::chrono::steady_clock::now();
    report.cold = Summarize(std::move(samples), Seconds(t0, t1), pairs.size());
  }

  // Warm: every query is a hit; tens of nanoseconds, timed in chunks.
  {
    constexpr size_t kChunk = 64;
    constexpr int kRounds = 16;
    std::vector<double> samples;
    auto t0 = std::chrono::steady_clock::now();
    for (int round = 0; round < kRounds; ++round) {
      for (size_t base = 0; base + kChunk <= pairs.size(); base += kChunk) {
        auto q0 = std::chrono::steady_clock::now();
        for (size_t k = base; k < base + kChunk; ++k) {
          benchmark::DoNotOptimize(engine.Cost(pairs[k].first, pairs[k].second));
        }
        auto q1 = std::chrono::steady_clock::now();
        samples.push_back(Seconds(q0, q1) * 1e9 / static_cast<double>(kChunk));
      }
    }
    auto t1 = std::chrono::steady_clock::now();
    report.warm = Summarize(std::move(samples), Seconds(t0, t1),
                            kRounds * (pairs.size() / kChunk) * kChunk);
  }

  // Batched one-to-many (HL pins the source once): fresh engine so the
  // batch is cold, grouped by source node.
  if (backend == TravelCostOptions::Backend::kHubLabeling) {
    TravelCostEngine batch_engine(net, options);
    constexpr size_t kFanOut = 64;
    Rng rng(11);
    const int64_t n = static_cast<int64_t>(net.num_nodes());
    std::vector<double> samples;
    std::vector<NodeId> targets(kFanOut);
    std::vector<double> out(kFanOut);
    size_t batches = pairs.size() / kFanOut;
    auto t0 = std::chrono::steady_clock::now();
    for (size_t b = 0; b < batches; ++b) {
      NodeId source = static_cast<NodeId>(rng.UniformInt(0, n - 1));
      for (size_t k = 0; k < kFanOut; ++k) {
        targets[k] = static_cast<NodeId>(rng.UniformInt(0, n - 1));
      }
      auto q0 = std::chrono::steady_clock::now();
      batch_engine.CostMany(source, {targets.data(), targets.size()},
                            out.data());
      auto q1 = std::chrono::steady_clock::now();
      benchmark::DoNotOptimize(out.data());
      samples.push_back(Seconds(q0, q1) * 1e9 / static_cast<double>(kFanOut));
    }
    auto t1 = std::chrono::steady_clock::now();
    report.cost_many =
        Summarize(std::move(samples), Seconds(t0, t1), batches * kFanOut);
  }
  return report;
}

void RunLatencyStudy() {
  DatasetSpec spec = DatasetByName("CHD", 1.0);
  RoadNetwork net = BuildNetwork(&spec);
  const auto pairs = StudyPairs(net, 2048);

  std::printf("\n==================================================================\n");
  std::printf("Shortest-path latency study: CHD preset (%zu nodes, %zu pairs)\n",
              net.num_nodes(), pairs.size());
  std::printf("cold = engine misses (backend-bound), warm = engine hits\n");
  std::printf("(LRU-bound, chunk-averaged), many = one-to-many CostMany\n");
  std::printf("==================================================================\n");
  std::printf("%-14s%-8s%12s%12s%16s\n", "backend", "phase", "p50 (ns)",
              "p99 (ns)", "queries/sec");

  std::vector<BackendReport> reports;
  reports.push_back(RunStudyBackend(
      net, TravelCostOptions::Backend::kHubLabeling, "HL", pairs));
  reports.push_back(RunStudyBackend(
      net, TravelCostOptions::Backend::kContractionHierarchies, "CH", pairs));
  reports.push_back(RunStudyBackend(
      net, TravelCostOptions::Backend::kBidirectionalDijkstra, "BiDijkstra",
      pairs));

  auto row = [](const char* backend, const char* phase, const PhaseStats& s) {
    std::printf("%-14s%-8s%12.0f%12.0f%16.0f\n", backend, phase, s.p50_ns,
                s.p99_ns, s.qps);
  };
  for (const BackendReport& r : reports) {
    row(r.name.c_str(), "cold", r.cold);
    row(r.name.c_str(), "warm", r.warm);
    if (r.cost_many.qps > 0) row(r.name.c_str(), "many", r.cost_many);
  }
  std::fflush(stdout);

  if (const char* dir = std::getenv("STRUCTRIDE_JSON_DIR")) {
    std::string path =
        std::string(dir) + "/BENCH_micro_shortest_path_latency.json";
    if (FILE* f = std::fopen(path.c_str(), "w")) {
      std::fprintf(f, "{\n  \"bench\": \"micro_shortest_path_latency\",\n");
      std::fprintf(f, "  \"dataset\": \"CHD\",\n  \"pairs\": %zu,\n  \"rows\": [\n",
                   pairs.size());
      bool first = true;
      auto jrow = [&](const std::string& backend, const char* phase,
                      const PhaseStats& s) {
        std::fprintf(f,
                     "%s    {\"backend\": \"%s\", \"phase\": \"%s\", "
                     "\"p50_ns\": %.1f, \"p99_ns\": %.1f, \"qps\": %.0f}",
                     first ? "" : ",\n", backend.c_str(), phase, s.p50_ns,
                     s.p99_ns, s.qps);
        first = false;
      };
      for (const BackendReport& r : reports) {
        jrow(r.name, "cold", r.cold);
        jrow(r.name, "warm", r.warm);
        if (r.cost_many.qps > 0) jrow(r.name, "many", r.cost_many);
      }
      std::fprintf(f, "\n  ]\n}\n");
      std::fclose(f);
      std::fprintf(stderr, "[bench] wrote %s\n", path.c_str());
    } else {
      std::fprintf(stderr, "[bench] cannot write %s\n", path.c_str());
    }
  }
}

// ------------------------------------------------------------------------
// Part 2: Google-Benchmark cases.

const RoadNetwork& Net() {
  static RoadNetwork net = [] {
    CityOptions opt;
    opt.rows = 40;
    opt.cols = 40;
    opt.seed = 9;
    return GenerateGridCity(opt);
  }();
  return net;
}

const HubLabeling& Labels() {
  static HubLabeling hl(Net());
  return hl;
}

void BM_HubLabelQuery(benchmark::State& state) {
  const RoadNetwork& net = Net();
  const HubLabeling& hl = Labels();
  Rng rng(1);
  for (auto _ : state) {
    NodeId s = static_cast<NodeId>(rng.UniformInt(0, net.num_nodes() - 1));
    NodeId t = static_cast<NodeId>(rng.UniformInt(0, net.num_nodes() - 1));
    benchmark::DoNotOptimize(hl.Query(s, t));
  }
}
BENCHMARK(BM_HubLabelQuery);

void BM_BidirectionalDijkstra(benchmark::State& state) {
  const RoadNetwork& net = Net();
  Rng rng(1);
  for (auto _ : state) {
    NodeId s = static_cast<NodeId>(rng.UniformInt(0, net.num_nodes() - 1));
    NodeId t = static_cast<NodeId>(rng.UniformInt(0, net.num_nodes() - 1));
    benchmark::DoNotOptimize(BidirectionalDijkstra(net, s, t));
  }
}
BENCHMARK(BM_BidirectionalDijkstra);

void BM_CachedEngineHot(benchmark::State& state) {
  // Repeated queries over a small node set: the LRU absorbs nearly all.
  static TravelCostEngine engine(Net());
  Rng rng(2);
  std::vector<std::pair<NodeId, NodeId>> pairs;
  for (int i = 0; i < 64; ++i) {
    pairs.emplace_back(
        static_cast<NodeId>(rng.UniformInt(0, Net().num_nodes() - 1)),
        static_cast<NodeId>(rng.UniformInt(0, Net().num_nodes() - 1)));
  }
  size_t i = 0;
  for (auto _ : state) {
    auto [s, t] = pairs[i++ % pairs.size()];
    benchmark::DoNotOptimize(engine.Cost(s, t));
  }
}
BENCHMARK(BM_CachedEngineHot);

void BM_EngineCostMany(benchmark::State& state) {
  // One-to-many batches, warm cache: per-target cost of the batched path.
  static TravelCostEngine engine(Net());
  Rng rng(2);
  constexpr size_t kFanOut = 64;
  std::vector<NodeId> targets(kFanOut);
  for (size_t k = 0; k < kFanOut; ++k) {
    targets[k] =
        static_cast<NodeId>(rng.UniformInt(0, Net().num_nodes() - 1));
  }
  NodeId source = static_cast<NodeId>(rng.UniformInt(0, Net().num_nodes() - 1));
  std::vector<double> out(kFanOut);
  for (auto _ : state) {
    engine.CostMany(source, {targets.data(), targets.size()}, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kFanOut));
}
BENCHMARK(BM_EngineCostMany);

void BM_DijkstraAll(benchmark::State& state) {
  const RoadNetwork& net = Net();
  Rng rng(3);
  for (auto _ : state) {
    NodeId s = static_cast<NodeId>(rng.UniformInt(0, net.num_nodes() - 1));
    benchmark::DoNotOptimize(DijkstraAll(net, s));
  }
}
BENCHMARK(BM_DijkstraAll);

void BM_HubLabelBuild(benchmark::State& state) {
  CityOptions opt;
  opt.rows = static_cast<int>(state.range(0));
  opt.cols = static_cast<int>(state.range(0));
  opt.seed = 11;
  RoadNetwork net = GenerateGridCity(opt);
  for (auto _ : state) {
    HubLabeling hl(net);
    benchmark::DoNotOptimize(hl.TotalLabelEntries());
  }
  state.SetLabel(std::to_string(net.num_nodes()) + " nodes");
}
BENCHMARK(BM_HubLabelBuild)->Arg(10)->Arg(20)->Unit(benchmark::kMillisecond)->Iterations(3);

}  // namespace
}  // namespace structride

int main(int argc, char** argv) {
  structride::RunLatencyStudy();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
