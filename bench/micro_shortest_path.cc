// Microbenchmarks for the shortest-path substrate: hub-label queries vs
// bidirectional Dijkstra, the LRU-cached engine, and index construction.

#include <benchmark/benchmark.h>

#include "roadnet/dijkstra.h"
#include "roadnet/generator.h"
#include "roadnet/hub_labeling.h"
#include "roadnet/travel_cost.h"
#include "util/random.h"

namespace structride {
namespace {

const RoadNetwork& Net() {
  static RoadNetwork net = [] {
    CityOptions opt;
    opt.rows = 40;
    opt.cols = 40;
    opt.seed = 9;
    return GenerateGridCity(opt);
  }();
  return net;
}

const HubLabeling& Labels() {
  static HubLabeling hl(Net());
  return hl;
}

void BM_HubLabelQuery(benchmark::State& state) {
  const RoadNetwork& net = Net();
  const HubLabeling& hl = Labels();
  Rng rng(1);
  for (auto _ : state) {
    NodeId s = static_cast<NodeId>(rng.UniformInt(0, net.num_nodes() - 1));
    NodeId t = static_cast<NodeId>(rng.UniformInt(0, net.num_nodes() - 1));
    benchmark::DoNotOptimize(hl.Query(s, t));
  }
}
BENCHMARK(BM_HubLabelQuery);

void BM_BidirectionalDijkstra(benchmark::State& state) {
  const RoadNetwork& net = Net();
  Rng rng(1);
  for (auto _ : state) {
    NodeId s = static_cast<NodeId>(rng.UniformInt(0, net.num_nodes() - 1));
    NodeId t = static_cast<NodeId>(rng.UniformInt(0, net.num_nodes() - 1));
    benchmark::DoNotOptimize(BidirectionalDijkstra(net, s, t));
  }
}
BENCHMARK(BM_BidirectionalDijkstra);

void BM_CachedEngineHot(benchmark::State& state) {
  // Repeated queries over a small node set: the LRU absorbs nearly all.
  static TravelCostEngine engine(Net());
  Rng rng(2);
  std::vector<std::pair<NodeId, NodeId>> pairs;
  for (int i = 0; i < 64; ++i) {
    pairs.emplace_back(
        static_cast<NodeId>(rng.UniformInt(0, Net().num_nodes() - 1)),
        static_cast<NodeId>(rng.UniformInt(0, Net().num_nodes() - 1)));
  }
  size_t i = 0;
  for (auto _ : state) {
    auto [s, t] = pairs[i++ % pairs.size()];
    benchmark::DoNotOptimize(engine.Cost(s, t));
  }
}
BENCHMARK(BM_CachedEngineHot);

void BM_DijkstraAll(benchmark::State& state) {
  const RoadNetwork& net = Net();
  Rng rng(3);
  for (auto _ : state) {
    NodeId s = static_cast<NodeId>(rng.UniformInt(0, net.num_nodes() - 1));
    benchmark::DoNotOptimize(DijkstraAll(net, s));
  }
}
BENCHMARK(BM_DijkstraAll);

void BM_HubLabelBuild(benchmark::State& state) {
  CityOptions opt;
  opt.rows = static_cast<int>(state.range(0));
  opt.cols = static_cast<int>(state.range(0));
  opt.seed = 11;
  RoadNetwork net = GenerateGridCity(opt);
  for (auto _ : state) {
    HubLabeling hl(net);
    benchmark::DoNotOptimize(hl.TotalLabelEntries());
  }
  state.SetLabel(std::to_string(net.num_nodes()) + " nodes");
}
BENCHMARK(BM_HubLabelBuild)->Arg(10)->Arg(20)->Unit(benchmark::kMillisecond)->Iterations(3);

}  // namespace
}  // namespace structride
