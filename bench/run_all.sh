#!/usr/bin/env bash
# Nightly smoke: run every bench binary at a small scale so regressions in
# any figure/table reproduction surface quickly. Usage:
#   bench/run_all.sh [build-dir]
# Env:
#   STRUCTRIDE_SCALE      sweep scale (default 0.05)
#   STRUCTRIDE_ALGOS      algorithm filter passthrough
#   STRUCTRIDE_BENCH_SET  all | sweep | micro (default all)
#   STRUCTRIDE_SHARDS     geo-shard count for the sweep benches (default 1;
#                         note abl_scenarios' legacy-parity baseline only
#                         holds at 1 shard — see DESIGN.md §12)
#   STRUCTRIDE_JSON_DIR   where BENCH_<name>.json results land
#                         (default <build-dir>/bench_json)
#   STRUCTRIDE_CONC_SHARDS  0 forces the serial shard loop in every bench
#                         (the differential reference for the compare gate)
#   STRUCTRIDE_COMPARE_DIR  baseline BENCH json dir: after the sweep,
#                         bench/compare_bench.py diffs it against
#                         STRUCTRIDE_JSON_DIR and fails the run on parity
#                         drift or timing regression; extra flags via
#                         STRUCTRIDE_COMPARE_ARGS (e.g. --min-speedup)
#   STRUCTRIDE_SVC_DATASETS / STRUCTRIDE_SVC_SHARDS  the sustained-qps
#                         service bench's grid (smoke defaults: NYC, 1);
#                         SLO via STRUCTRIDE_SLO_P99_MS (default 250 ms)
#   STRUCTRIDE_SNAPSHOT_PATH  where abl_graph_import writes/reuses its
#                         binary graph snapshot (default: inside the json
#                         dir, so the smoke never dirties the source tree)
set -u

BUILD_DIR="${1:-build}"
export STRUCTRIDE_SCALE="${STRUCTRIDE_SCALE:-0.05}"
BENCH_SET="${STRUCTRIDE_BENCH_SET:-all}"
export STRUCTRIDE_JSON_DIR="${STRUCTRIDE_JSON_DIR:-$BUILD_DIR/bench_json}"

# Validate the shard knob here so a typo fails the whole sweep loudly
# instead of every binary silently falling back to its default.
if [ -n "${STRUCTRIDE_SHARDS:-}" ]; then
  case "$STRUCTRIDE_SHARDS" in
    ''|*[!0-9]*|0)
      echo "warning: STRUCTRIDE_SHARDS='$STRUCTRIDE_SHARDS' is not a positive integer; ignoring (running single-shard)" >&2
      unset STRUCTRIDE_SHARDS
      ;;
    *)
      export STRUCTRIDE_SHARDS
      ;;
  esac
fi

if [ ! -d "$BUILD_DIR" ]; then
  echo "error: build dir '$BUILD_DIR' not found (run cmake first)" >&2
  exit 2
fi
mkdir -p "$STRUCTRIDE_JSON_DIR"
# Keep the import ablation's snapshot out of tests/data/ by default.
export STRUCTRIDE_SNAPSHOT_PATH="${STRUCTRIDE_SNAPSHOT_PATH:-$STRUCTRIDE_JSON_DIR/graph.snap}"

SWEEP_BENCHES="
fig8_vary_vehicles fig9_vary_requests fig10_vary_deadline
fig11_vary_capacity fig12_vary_penalty fig13_vary_batch fig14_memory
fig15_cainiao fig16_capacity_sigma fig17_vary_sigma
table5_angle_pruning_cainiao table6_angle_pruning
abl_cancellations abl_incremental_sharegraph abl_parallel_scaling
abl_scenarios abl_proposal_order abl_sharding
abl_angle_expectation abl_insertion_order abl_structure_metrics
abl_graph_import
"
MICRO_BENCHES="
micro_insertion micro_shortest_path micro_grouping
micro_graph_analysis micro_sharegraph abl_sp_backends
"

failures=0
ran=0
summary=""  # one "name<TAB>status<TAB>exit-code" line per bench

note() {
  summary="${summary}$(printf '%s\t%s\t%s' "$1" "$2" "$3")
"
}

if [ "$BENCH_SET" != "micro" ]; then
  for bench in $SWEEP_BENCHES; do
    exe="$BUILD_DIR/$bench"
    if [ ! -x "$exe" ]; then
      echo "missing: $bench" >&2
      failures=$((failures + 1))
      note "$bench" MISSING -
      continue
    fi
    echo "=== $bench (scale $STRUCTRIDE_SCALE) ==="
    if "$exe"; then
      note "$bench" ok 0
    else
      rc=$?
      echo "FAILED: $bench (exit $rc)" >&2
      failures=$((failures + 1))
      note "$bench" FAIL "$rc"
    fi
    ran=$((ran + 1))
  done
fi

if [ "$BENCH_SET" != "micro" ]; then
  # Service-mode sustained-qps probe (DESIGN.md §13). Smoke defaults: one
  # city, single-shard, SARD-only — the full grid is a nightly-perf job,
  # not a smoke gate. Callers override via the STRUCTRIDE_SVC_* knobs.
  exe="$BUILD_DIR/svc_sustained_qps"
  if [ ! -x "$exe" ]; then
    echo "missing: svc_sustained_qps" >&2
    failures=$((failures + 1))
    note "svc_sustained_qps" MISSING -
  else
    echo "=== svc_sustained_qps (scale $STRUCTRIDE_SCALE) ==="
    if STRUCTRIDE_SVC_DATASETS="${STRUCTRIDE_SVC_DATASETS:-NYC}" \
       STRUCTRIDE_SVC_SHARDS="${STRUCTRIDE_SVC_SHARDS:-1}" \
       STRUCTRIDE_ALGOS="${STRUCTRIDE_ALGOS:-SARD}" \
       "$exe"; then
      note "svc_sustained_qps" ok 0
    else
      rc=$?
      echo "FAILED: svc_sustained_qps (exit $rc)" >&2
      failures=$((failures + 1))
      note "svc_sustained_qps" FAIL "$rc"
    fi
    ran=$((ran + 1))
  fi

  # Grid-sweep generator smoke: exercises the cell runner, the merge and
  # the Markdown writer on a tiny grid (results land under the json dir).
  echo "=== sweep.py --smoke ==="
  if python3 "$(dirname "$0")/sweep.py" --smoke --bindir "$BUILD_DIR" \
       --out "$STRUCTRIDE_JSON_DIR/sweep_smoke"; then
    note "sweep.py" ok 0
  else
    rc=$?
    echo "FAILED: sweep.py --smoke (exit $rc)" >&2
    failures=$((failures + 1))
    note "sweep.py" FAIL "$rc"
  fi
  ran=$((ran + 1))
fi

if [ "$BENCH_SET" != "sweep" ]; then
  for bench in $MICRO_BENCHES; do
    exe="$BUILD_DIR/$bench"
    if [ ! -x "$exe" ]; then
      echo "skipping $bench (not built; Google Benchmark missing?)" >&2
      note "$bench" skipped -
      continue
    fi
    echo "=== $bench ==="
    # Google Benchmark's native JSON writer covers the micro benches;
    # micro_shortest_path additionally writes its latency-study JSON via
    # STRUCTRIDE_JSON_DIR.
    if "$exe" --benchmark_min_time=0.01 \
         --benchmark_out="$STRUCTRIDE_JSON_DIR/BENCH_${bench}.json" \
         --benchmark_out_format=json; then
      note "$bench" ok 0
    else
      rc=$?
      echo "FAILED: $bench (exit $rc)" >&2
      failures=$((failures + 1))
      note "$bench" FAIL "$rc"
    fi
    ran=$((ran + 1))
  done
fi

# Optional baseline diff: parity metrics must be bitwise identical and
# running times within tolerance (see bench/compare_bench.py --help).
if [ -n "${STRUCTRIDE_COMPARE_DIR:-}" ]; then
  echo "=== compare_bench ($STRUCTRIDE_COMPARE_DIR vs $STRUCTRIDE_JSON_DIR) ==="
  # shellcheck disable=SC2086 — COMPARE_ARGS is intentionally word-split.
  if python3 "$(dirname "$0")/compare_bench.py" \
       "$STRUCTRIDE_COMPARE_DIR" "$STRUCTRIDE_JSON_DIR" \
       ${STRUCTRIDE_COMPARE_ARGS:-}; then
    note "compare_bench" ok 0
  else
    rc=$?
    echo "FAILED: compare_bench (exit $rc)" >&2
    failures=$((failures + 1))
    note "compare_bench" FAIL "$rc"
  fi
fi

echo
echo "run_all summary (bench / status / exit code):"
printf '%s' "$summary" | while IFS="$(printf '\t')" read -r name status rc; do
  printf '  %-32s %-8s %s\n' "$name" "$status" "$rc"
done
echo "run_all: $ran benches, $failures failures, results in $STRUCTRIDE_JSON_DIR"
[ "$failures" -eq 0 ]
