// Sustained-qps service bench (DESIGN.md §13): for each dataset × shard
// count × dispatcher cell, binary-search the maximum wall-clock arrival
// rate the streaming service mode sustains — p99 ingest→decision latency
// under the SLO (STRUCTRIDE_SLO_P99_MS, default 250 ms) with zero shed
// arrivals. The virtual-time pacer maps the stream's demand density onto
// the target rate, so demand per round is qps-invariant and only the wall
// budget per round shrinks as qps grows; sustainability is therefore
// monotone in qps and the bisection is valid.
//
// Knobs: STRUCTRIDE_SVC_DATASETS (default CHD,NYC,Cainiao),
// STRUCTRIDE_SVC_SHARDS (default 1,4), STRUCTRIDE_ALGOS (default
// SARD,GAS,RTV here — the roster the acceptance gate names),
// STRUCTRIDE_SCALE / STRUCTRIDE_THREADS / STRUCTRIDE_SLO_P99_MS as
// everywhere. STRUCTRIDE_SVC_REQUIRE_SUSTAINED=1 makes the binary exit
// nonzero when any cell fails to sustain even the search floor — the CI
// service gate.
//
// Wall-time note: one probe's arrival phase lasts ~n/qps wall seconds, so
// the floor probe dominates a cell's cost; keep smoke runs at small
// STRUCTRIDE_SCALE.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "sim/engine.h"
#include "sim/workload.h"

using namespace structride;
using namespace structride::bench;

namespace {

// The search lattice: qps values are powers of two times the floor, so
// probe results are reusable across the doubling and bisection phases.
constexpr double kQpsFloor = 125;
constexpr double kQpsCap = 16000;
constexpr int kBisectSteps = 4;

std::vector<std::string> SplitCsv(const char* env, const char* fallback) {
  std::vector<std::string> out;
  std::stringstream ss(env != nullptr ? env : fallback);
  std::string token;
  while (std::getline(ss, token, ',')) {
    if (!token.empty()) out.push_back(token);
  }
  return out;
}

struct Probe {
  double qps = 0;
  bool sustainable = false;
  RunMetrics metrics;
};

}  // namespace

int main() {
  const double scale = BenchScale();
  const double slo_ms = BenchSloP99Ms();
  const std::vector<std::string> datasets =
      SplitCsv(std::getenv("STRUCTRIDE_SVC_DATASETS"), "CHD,NYC,Cainiao");
  const std::vector<std::string> algos =
      SplitCsv(std::getenv("STRUCTRIDE_ALGOS"), "SARD,GAS,RTV");
  std::vector<int> shard_counts;
  for (const std::string& s :
       SplitCsv(std::getenv("STRUCTRIDE_SVC_SHARDS"), "1,4")) {
    const int z = std::atoi(s.c_str());
    if (z >= 1) shard_counts.push_back(z);
  }
  const char* require_env = std::getenv("STRUCTRIDE_SVC_REQUIRE_SUSTAINED");
  const bool require_sustained =
      require_env != nullptr && std::strcmp(require_env, "1") == 0;

  std::printf("\n================================================================\n");
  std::printf("Service mode: max sustained qps (SLO: p99 <= %.0f ms, 0 shed)\n",
              slo_ms);
  std::printf("================================================================\n");
  std::printf("%-10s%-8s%-8s%14s%12s%12s%10s%12s\n", "city", "shards",
              "algo", "max qps", "p50 (ms)", "p99 (ms)", "shed",
              "depth max");

  int unsustained_cells = 0;
  for (const std::string& ds : datasets) {
    DatasetSpec spec = DatasetByName(ds, scale);
    RoadNetwork net = BuildNetwork(&spec);
    TravelCostOptions topts;
    topts.backend = BenchSpBackend();
    TravelCostEngine engine(net, topts);
    const std::vector<Request> reqs =
        GenerateWorkload(net, &engine, spec.policy, spec.workload);

    for (int shards : shard_counts) {
      for (const std::string& algo : algos) {
        DispatchConfig config;
        config.vehicle_capacity = spec.capacity;
        config.grouping.max_group_size = spec.capacity;
        config.sharegraph.vehicle_capacity = spec.capacity;
        config.num_threads = BenchThreads();
        config.num_shards = shards;
        config.concurrent_shards = BenchConcurrentShards();

        auto probe = [&](double qps) {
          SimulationOptions sopts;
          sopts.batch_period = 5;
          sopts.seed = 4242;
          sopts.dataset = ds;
          sopts.service_mode = true;
          sopts.service_qps = qps;
          SimulationEngine sim(&engine, reqs, sopts);
          sim.SpawnFleet(spec.num_vehicles, spec.capacity);
          Probe p;
          p.qps = qps;
          p.metrics = sim.Run(algo, config);
          p.sustainable = p.metrics.dispatch_latency_p99_ms <= slo_ms &&
                          p.metrics.shed_requests == 0;
          return p;
        };

        // Exponential phase from 1000: double while sustainable, halve
        // while not, clamped to [floor, cap]; then bisect the bracket.
        Probe best;  // highest sustainable probe so far
        Probe cur = probe(1000);
        double lo = 0, hi = 0;  // sustainable .. unsustainable bracket
        if (cur.sustainable) {
          best = cur;
          lo = cur.qps;
          while (hi == 0 && lo < kQpsCap) {
            cur = probe(std::min(kQpsCap, lo * 2));
            if (cur.sustainable) {
              best = cur;
              lo = cur.qps;
            } else {
              hi = cur.qps;
            }
          }
        } else {
          hi = cur.qps;
          while (lo == 0 && hi > kQpsFloor) {
            cur = probe(std::max(kQpsFloor, hi / 2));
            if (cur.sustainable) {
              best = cur;
              lo = cur.qps;
            } else {
              hi = cur.qps;
            }
          }
        }
        for (int step = 0; lo > 0 && hi > 0 && step < kBisectSteps; ++step) {
          cur = probe((lo + hi) / 2);
          if (cur.sustainable) {
            best = cur;
            lo = cur.qps;
          } else {
            hi = cur.qps;
          }
        }

        RunMetrics m = best.metrics;  // zero-valued when nothing sustained
        m.max_sustained_qps = best.qps;
        m.dataset = ds;
        m.algorithm = algo;
        const std::string point = ds + " s" + std::to_string(shards);
        RecordJsonRow(algo, point, m);
        RecordJsonValue(algo, point, "max_sustained_qps", best.qps);
        std::printf("%-10s%-8d%-8s%14.0f%12.3f%12.3f%10llu%12llu\n",
                    ds.c_str(), shards, algo.c_str(), best.qps,
                    m.dispatch_latency_p50_ms, m.dispatch_latency_p99_ms,
                    static_cast<unsigned long long>(m.shed_requests),
                    static_cast<unsigned long long>(m.ingest_queue_depth_max));
        std::fflush(stdout);
        if (best.qps <= 0) ++unsustained_cells;
      }
    }
  }

  if (unsustained_cells > 0) {
    std::printf("\n%d cell(s) sustained no probed rate (floor %.0f qps)\n",
                unsustained_cells, kQpsFloor);
    if (require_sustained) return 1;
  }
  return 0;
}
