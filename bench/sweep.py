#!/usr/bin/env python3
"""Grid sweep generator over the bench suite's environment knobs.

Runs each requested bench binary once per cell of the cartesian grid
  shards x threads x SP backend x service-mode qps
(each dimension driven purely by the STRUCTRIDE_* env knobs, so no rebuild
is ever needed), while the remaining paper dimensions — batch period and
fleet size — come from the benches themselves (fig13_vary_batch sweeps the
period, fig8_vary_vehicles the fleet).

Layout under --out:
  cells/<tag>/BENCH_*.json   one STRUCTRIDE_JSON_DIR per cell (the bench
                             harness's native format)
  merged/BENCH_*.json        the same rows with the cell tag folded into
                             the "bench" field ("<bench>@<tag>"), so a
                             whole sweep is one compare_bench.py directory:
                             compare_bench.py A/merged B/merged gates every
                             cell at once (use --config for per-cell bars)
  sweep.json                 every row of every cell in one document
  sweep.md                   Markdown summary (one table per bench)

Usage:
  sweep.py --bindir build --out sweep_out \\
      --benches fig13_vary_batch,svc_sustained_qps \\
      --shards 1,4 --threads 1,4 --backends hl,ch --qps 0,1000
  sweep.py --bindir build --out sweep_out --smoke   # tiny CI smoke grid

qps 0 means replay mode (no service-mode env set); a positive qps sets
STRUCTRIDE_QPS for the cell. Every cell inherits --scale and --algos.
"""

import argparse
import itertools
import json
import os
import subprocess
import sys


def parse_list(text, cast):
    out = []
    for token in text.split(","):
        token = token.strip()
        if token:
            out.append(cast(token))
    return out


def cell_tag(shards, threads, backend, qps):
    tag = "s%d_t%d_%s" % (shards, threads, backend)
    if qps > 0:
        tag += "_q%g" % qps
    return tag


def run_cell(args, bench, shards, threads, backend, qps, cell_dir):
    env = dict(os.environ)
    env["STRUCTRIDE_JSON_DIR"] = cell_dir
    env["STRUCTRIDE_SHARDS"] = str(shards)
    env["STRUCTRIDE_THREADS"] = str(threads)
    env["STRUCTRIDE_SP_BACKEND"] = backend
    if qps > 0:
        env["STRUCTRIDE_QPS"] = "%g" % qps
    else:
        env.pop("STRUCTRIDE_QPS", None)
    if args.scale is not None:
        env["STRUCTRIDE_SCALE"] = "%g" % args.scale
    if args.algos:
        env["STRUCTRIDE_ALGOS"] = args.algos
    binary = os.path.join(args.bindir, bench)
    if not os.path.exists(binary):
        sys.stderr.write("sweep: missing binary %s (build first?)\n" % binary)
        return False
    sys.stderr.write("sweep: %s [%s]\n"
                     % (bench, os.path.basename(cell_dir)))
    proc = subprocess.run([binary], env=env, stdout=subprocess.DEVNULL,
                          stderr=subprocess.DEVNULL)
    if proc.returncode != 0:
        sys.stderr.write("sweep: %s failed in cell %s (exit %d)\n"
                         % (bench, os.path.basename(cell_dir),
                            proc.returncode))
        return False
    return True


def merge(out_dir, cells):
    """Writes merged/BENCH_*.json, sweep.json and sweep.md; returns rows."""
    merged_dir = os.path.join(out_dir, "merged")
    os.makedirs(merged_dir, exist_ok=True)
    all_rows = []
    for tag, cell_dir in cells:
        for name in sorted(os.listdir(cell_dir)):
            if not (name.startswith("BENCH_") and name.endswith(".json")):
                continue
            with open(os.path.join(cell_dir, name)) as f:
                doc = json.load(f)
            doc["bench"] = "%s@%s" % (doc.get("bench", name), tag)
            doc["cell"] = tag
            merged_name = name[:-len(".json")] + "__" + tag + ".json"
            with open(os.path.join(merged_dir, merged_name), "w") as f:
                json.dump(doc, f, indent=1)
            for row in doc.get("rows", []):
                all_rows.append(dict(row, bench=doc["bench"], cell=tag))
    with open(os.path.join(out_dir, "sweep.json"), "w") as f:
        json.dump({"rows": all_rows}, f, indent=1)
    return all_rows


def write_markdown(out_dir, rows):
    by_bench = {}
    for row in rows:
        by_bench.setdefault(row["bench"].split("@")[0], []).append(row)
    lines = ["# Bench sweep", ""]
    cols = ["cell", "series", "point", "service_rate", "unified_cost",
            "running_time_s", "dispatch_latency_p99_ms", "max_sustained_qps",
            "shed_requests"]
    for bench in sorted(by_bench):
        lines.append("## %s" % bench)
        lines.append("")
        lines.append("| " + " | ".join(cols) + " |")
        lines.append("|" + "---|" * len(cols))
        for row in by_bench[bench]:
            cells = []
            for col in cols:
                val = row.get(col, "")
                if isinstance(val, float):
                    val = "%.4g" % val
                cells.append(str(val))
            lines.append("| " + " | ".join(cells) + " |")
        lines.append("")
    path = os.path.join(out_dir, "sweep.md")
    with open(path, "w") as f:
        f.write("\n".join(lines) + "\n")
    sys.stderr.write("sweep: wrote %s (%d rows)\n" % (path, len(rows)))


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--bindir", default="build",
                    help="directory holding the bench binaries")
    ap.add_argument("--out", default="sweep_out")
    ap.add_argument("--benches", default="fig13_vary_batch,fig8_vary_vehicles",
                    help="comma list of bench binaries to run per cell")
    ap.add_argument("--shards", default="1,4")
    ap.add_argument("--threads", default="1,4")
    ap.add_argument("--backends", default="hl",
                    help="comma list of hl,ch,bd")
    ap.add_argument("--qps", default="0",
                    help="comma list; 0 = replay mode, >0 = service mode")
    ap.add_argument("--scale", type=float, default=None,
                    help="STRUCTRIDE_SCALE for every cell")
    ap.add_argument("--algos", default="",
                    help="STRUCTRIDE_ALGOS for every cell")
    ap.add_argument("--smoke", action="store_true",
                    help="tiny CI grid: one bench, 2 cells, scale 0.02")
    args = ap.parse_args()

    if args.smoke:
        args.benches = "fig13_vary_batch"
        args.shards = "1"
        args.threads = "1,2"
        args.backends = "hl"
        args.qps = "0"
        if args.scale is None:
            args.scale = 0.02
        if not args.algos:
            args.algos = "SARD"

    benches = parse_list(args.benches, str)
    grid = list(itertools.product(
        parse_list(args.shards, int), parse_list(args.threads, int),
        parse_list(args.backends, str), parse_list(args.qps, float)))
    if not benches or not grid:
        sys.stderr.write("sweep: empty bench list or grid\n")
        return 2

    os.makedirs(args.out, exist_ok=True)
    cells = []
    failures = 0
    for shards, threads, backend, qps in grid:
        tag = cell_tag(shards, threads, backend, qps)
        cell_dir = os.path.join(args.out, "cells", tag)
        os.makedirs(cell_dir, exist_ok=True)
        for bench in benches:
            if not run_cell(args, bench, shards, threads, backend, qps,
                            cell_dir):
                failures += 1
        cells.append((tag, cell_dir))

    rows = merge(args.out, cells)
    write_markdown(args.out, rows)
    if failures:
        sys.stderr.write("sweep: %d bench invocation(s) failed\n" % failures)
        return 1
    if not rows:
        sys.stderr.write("sweep: no rows produced\n")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
