// Table V reproduction (Appendix B): the angle-pruning ablation on the
// Cainiao dataset — SARD (no pruning) vs SARD-O (with pruning), reporting
// unified cost, service rate, shortest-path query count and running time.
// Paper: SARD-O saves up to 41.9% of queries and 33.9% of time with almost
// no quality change.

#include <cstdio>
#include <string>

#include "bench/harness.h"

using structride::RunMetrics;
using structride::bench::BenchContext;
using structride::bench::BenchScale;
using structride::bench::PointParams;
using structride::bench::RecordJsonRow;

int main() {
  const double scale = BenchScale();
  BenchContext ctx("Cainiao", scale);
  std::printf("\n================================================================\n");
  std::printf("Table V: angle pruning ablation (Cainiao)\n");
  std::printf("================================================================\n");
  std::printf("%-10s%16s%14s%18s%12s\n", "method", "unified cost", "service",
              "#SP queries (K)", "time (s)");
  for (bool pruning : {false, true}) {
    PointParams p;
    p.angle_pruning = pruning;
    RunMetrics m = ctx.Run("SARD", p);
    RecordJsonRow(pruning ? "SARD-O" : "SARD", "Cainiao", m);
    std::printf("%-10s%16.0f%14.4f%18.0f%12.2f\n",
                pruning ? "SARD-O" : "SARD", m.unified_cost, m.service_rate,
                static_cast<double>(m.sp_queries) / 1e3, m.running_time);
  }
  return 0;
}
