// Table VI reproduction (Appendix D): the angle-pruning ablation on the CHD
// and NYC datasets. Paper: SARD-O saves up to 7.3% of shortest-path queries
// and 5.2% of running time with no harm to quality.

#include <cstdio>
#include <string>

#include "bench/harness.h"

using structride::RunMetrics;
using structride::bench::BenchContext;
using structride::bench::BenchScale;
using structride::bench::PointParams;
using structride::bench::RecordJsonRow;

int main() {
  const double scale = BenchScale();
  std::printf("\n================================================================\n");
  std::printf("Table VI: angle pruning ablation (CHD, NYC)\n");
  std::printf("================================================================\n");
  std::printf("%-8s%-10s%16s%14s%18s%12s\n", "city", "method", "unified cost",
              "service", "#SP queries (K)", "time (s)");
  for (const std::string& dataset : {std::string("CHD"), std::string("NYC")}) {
    BenchContext ctx(dataset, scale);
    for (bool pruning : {false, true}) {
      PointParams p;
      p.angle_pruning = pruning;
      RunMetrics m = ctx.Run("SARD", p);
      RecordJsonRow(pruning ? "SARD-O" : "SARD", dataset, m);
      std::printf("%-8s%-10s%16.0f%14.4f%18.0f%12.2f\n", dataset.c_str(),
                  pruning ? "SARD-O" : "SARD", m.unified_cost, m.service_rate,
                  static_cast<double>(m.sp_queries) / 1e3, m.running_time);
    }
  }
  return 0;
}
