#include "core/entity_pools.h"

#include <algorithm>

namespace structride {

void FleetSoA::Refresh(const std::vector<Vehicle>& fleet) {
  // Read-only delegation; the view never mutates through this call.
  Refresh(FleetView(const_cast<std::vector<Vehicle>*>(&fleet)));
}

void FleetSoA::Refresh(const FleetView& fleet) {
  const size_t n = fleet.size();
  node.resize(n);
  capacity.resize(n);
  onboard.resize(n);
  in_service.resize(n);
  idle.resize(n);
  for (size_t i = 0; i < n; ++i) {
    const Vehicle& v = fleet[i];
    node[i] = v.node();
    capacity[i] = v.capacity();
    onboard[i] = v.onboard();
    in_service[i] = v.in_service() ? 1 : 0;
    idle[i] = v.idle() ? 1 : 0;
  }
}

size_t FleetSoA::MemoryBytes() const {
  return node.capacity() * sizeof(NodeId) +
         capacity.capacity() * sizeof(int) + onboard.capacity() * sizeof(int) +
         in_service.capacity() + idle.capacity();
}

void RequestSoA::Refresh(Span<const Request* const> pending) {
  const size_t n = pending.size();
  id.resize(n);
  source.resize(n);
  destination.resize(n);
  release.resize(n);
  latest_pickup.resize(n);
  deadline.resize(n);
  direct.resize(n);
  order_by_id.resize(n);
  for (size_t i = 0; i < n; ++i) {
    const Request& r = *pending[i];
    id[i] = r.id;
    source[i] = r.source;
    destination[i] = r.destination;
    release[i] = r.release_time;
    latest_pickup[i] = r.latest_pickup;
    deadline[i] = r.deadline;
    direct[i] = r.direct_cost;
    order_by_id[i] = static_cast<uint32_t>(i);
  }
  // Ids are unique within a pool, so this comparator is a strict total
  // order and std::sort (allocation-free) is deterministic.
  std::sort(order_by_id.begin(), order_by_id.end(),
            [this](uint32_t a, uint32_t b) { return id[a] < id[b]; });
}

int64_t RequestSoA::IndexOfId(RequestId rid) const {
  size_t lo = 0, hi = order_by_id.size();
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    if (id[order_by_id[mid]] < rid) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo < order_by_id.size() && id[order_by_id[lo]] == rid) {
    return static_cast<int64_t>(order_by_id[lo]);
  }
  return -1;
}

size_t RequestSoA::MemoryBytes() const {
  return id.capacity() * sizeof(RequestId) +
         (source.capacity() + destination.capacity()) * sizeof(NodeId) +
         (release.capacity() + latest_pickup.capacity() +
          deadline.capacity() + direct.capacity()) *
             sizeof(double) +
         order_by_id.capacity() * sizeof(uint32_t);
}

}  // namespace structride
