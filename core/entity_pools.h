// Structure-of-arrays views of the core entities plus the pooled schedule
// store (DESIGN.md §8).
//
//  - SchedulePool: every transient stop sequence of a batch (candidate
//    group schedules, kinetic-tree orderings, commit staging) lives in one
//    arena-backed store addressed by {offset,len}-style handles. Storage is
//    stable until Reset — pooled consumers hold Span<const Stop> views
//    across further appends — and Reset rewinds without releasing chunks,
//    so a warmed pool serves a steady-state batch with zero heap
//    allocations. Committed vehicle schedules stay inline in Vehicle (they
//    outlive batches and mutate rarely); the pool covers the per-batch
//    churn that used to be one std::vector<Stop> per candidate.
//  - FleetSoA / RequestSoA: the hot per-entity fields dispatchers scan
//    every round (positions, capacity, service flags, ids, deadlines)
//    refreshed into parallel planes once per batch; cold fields stay on
//    Vehicle / Request. RequestSoA also carries the id-sorted order plane
//    that replaces the per-batch unordered_map<RequestId, ...> lookups.

#pragma once

#include <cstdint>
#include <vector>

#include "core/request.h"
#include "core/schedule.h"
#include "core/vehicle.h"
#include "util/arena.h"
#include "util/span.h"

namespace structride {

class SchedulePool {
 public:
  using Handle = uint32_t;
  static constexpr Handle kInvalid = ~Handle{0};

  SchedulePool() = default;

  /// Copies \p stops into the pool; the returned handle's view is valid
  /// until Reset().
  Handle Append(Span<const Stop> stops) {
    Handle h;
    Stop* out = AppendUninit(stops.size(), &h);
    for (size_t k = 0; k < stops.size(); ++k) out[k] = stops[k];
    return h;
  }

  /// Reserves \p len uninitialized slots and returns their storage (stable
  /// until Reset — arena chunks never move). Caller fills all \p len stops.
  Stop* AppendUninit(size_t len, Handle* h) {
    Stop* out = arena_.AllocateArray<Stop>(len);
    *h = static_cast<Handle>(slots_.size());
    slots_.push_back({out, static_cast<uint32_t>(len)});
    return out;
  }

  Span<const Stop> View(Handle h) const {
    const Slot& s = slots_[h];
    return {s.ptr, s.len};
  }

  size_t NumSchedules() const { return slots_.size(); }

  /// Drops every handle and rewinds the arena; chunk and slot-vector
  /// capacity are retained (the warmth).
  void Reset() {
    slots_.clear();
    arena_.Reset();
  }

  size_t MemoryBytes() const {
    return arena_.retained_bytes() + slots_.capacity() * sizeof(Slot);
  }

 private:
  struct Slot {
    Stop* ptr = nullptr;
    uint32_t len = 0;
  };
  EpochArena arena_;
  std::vector<Slot> slots_;
};

/// Hot vehicle fields in parallel planes, refreshed once per batch.
struct FleetSoA {
  std::vector<NodeId> node;
  std::vector<int> capacity;
  std::vector<int> onboard;
  std::vector<char> in_service;
  std::vector<char> idle;

  /// Primary form: plane index i mirrors view-local index i, so a shard's
  /// planes line up with its restricted FleetView (DESIGN.md §12).
  void Refresh(const FleetView& fleet);
  void Refresh(const std::vector<Vehicle>& fleet);
  size_t size() const { return node.size(); }
  size_t MemoryBytes() const;
};

/// Hot request fields of the pending pool in parallel planes, plus the
/// id-sorted order plane answering id -> pool-index without a hash map.
struct RequestSoA {
  std::vector<RequestId> id;
  std::vector<NodeId> source;
  std::vector<NodeId> destination;
  std::vector<double> release;
  std::vector<double> latest_pickup;
  std::vector<double> deadline;
  std::vector<double> direct;
  /// Pool indices sorted by ascending id (ids are unique within a pool).
  std::vector<uint32_t> order_by_id;

  void Refresh(Span<const Request* const> pending);
  size_t size() const { return id.size(); }

  /// Pool index of \p rid, or -1 when absent. O(log n), allocation-free.
  int64_t IndexOfId(RequestId rid) const;
  size_t MemoryBytes() const;
};

}  // namespace structride
