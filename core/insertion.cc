#include "core/insertion.h"

#include <vector>

#include "util/logging.h"

namespace structride {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

InsertionCandidate BestInsertion(const RouteState& state,
                                 const Schedule& schedule,
                                 const Request& request,
                                 TravelCostEngine* engine,
                                 const InsertionOptions& options) {
  InsertionCandidate best;
  const std::vector<Stop>& stops = schedule.stops();
  size_t n = stops.size();

  // Base walk: per-stop service times and leg costs (also the base cost the
  // delta is measured against).
  std::vector<double> base_time(n);
  std::vector<double> base_leg(n);
  {
    double t = state.start_time;
    NodeId pos = state.start;
    double total = 0;
    for (size_t k = 0; k < n; ++k) {
      double leg = stops[k].node == pos ? 0.0 : engine->Cost(pos, stops[k].node);
      t += leg;
      total += leg;
      pos = stops[k].node;
      if (t > stops[k].deadline + 1e-7) return best;  // base already broken
      if (stops[k].kind == StopKind::kPickup && t < stops[k].earliest) {
        t = stops[k].earliest;
      }
      base_time[k] = t;
      base_leg[k] = leg;
    }
    best.total_cost = total;  // reused below as base cost
  }
  double base_cost = n == 0 ? 0 : best.total_cost;
  best.total_cost = kInf;

  const RoadNetwork& net = engine->network();
  const Point& src = net.position(request.source);
  const Point& dst = net.position(request.destination);
  auto node_pos = [&](size_t k) { return net.position(stops[k].node); };
  auto start_pos = [&] { return net.position(state.start); };

  // Euclidean lower bound on the extra cost of splicing point p between the
  // endpoints of original leg k (k == n appends after the last stop).
  auto detour_lb = [&](size_t k, const Point& p) {
    Point prev = k == 0 ? start_pos() : node_pos(k - 1);
    if (k == n) return EuclidDistance(prev, p);
    return EuclidDistance(prev, p) + EuclidDistance(p, node_pos(k)) -
           base_leg[k];
  };

  std::vector<Stop> candidate;
  candidate.reserve(n + 2);
  for (size_t i = 0; i <= n; ++i) {
    if (options.use_pruning) {
      // The vehicle reaches the pickup no earlier than the base time at the
      // preceding stop; once that alone misses the pickup deadline, every
      // later position misses it too.
      double prefix = i == 0 ? state.start_time : base_time[i - 1];
      if (prefix > request.latest_pickup + 1e-7) break;
      if (detour_lb(i, src) >= best.delta_cost) continue;
    }
    for (size_t j = i; j <= n; ++j) {
      if (options.use_pruning) {
        double lb;
        if (j == i) {
          // src then dst spliced into the same original leg i.
          Point prev = i == 0 ? start_pos() : node_pos(i - 1);
          lb = EuclidDistance(prev, src) + EuclidDistance(src, dst);
          if (i < n) lb += EuclidDistance(dst, node_pos(i)) - base_leg[i];
        } else {
          lb = detour_lb(i, src) + detour_lb(j, dst);
        }
        if (lb >= best.delta_cost) continue;
      }
      candidate.clear();
      candidate.insert(candidate.end(), stops.begin(),
                       stops.begin() + static_cast<long>(i));
      candidate.push_back(PickupStop(request));
      candidate.insert(candidate.end(), stops.begin() + static_cast<long>(i),
                       stops.begin() + static_cast<long>(j));
      candidate.push_back(DropoffStop(request));
      candidate.insert(candidate.end(), stops.begin() + static_cast<long>(j),
                       stops.end());
      auto [ok, cost] = CheckSchedule(state, candidate, engine);
      if (!ok) continue;
      double delta = cost - base_cost;
      if (delta < best.delta_cost) {
        best.feasible = true;
        best.pickup_pos = i;
        best.dropoff_pos = j;
        best.delta_cost = delta;
        best.total_cost = cost;
      }
    }
  }
  return best;
}

Schedule ApplyInsertion(const Schedule& schedule, const Request& request,
                        const InsertionCandidate& candidate) {
  SR_CHECK(candidate.feasible);
  const std::vector<Stop>& stops = schedule.stops();
  SR_CHECK(candidate.pickup_pos <= candidate.dropoff_pos);
  SR_CHECK(candidate.dropoff_pos <= stops.size());
  std::vector<Stop> out;
  out.reserve(stops.size() + 2);
  out.insert(out.end(), stops.begin(),
             stops.begin() + static_cast<long>(candidate.pickup_pos));
  out.push_back(PickupStop(request));
  out.insert(out.end(), stops.begin() + static_cast<long>(candidate.pickup_pos),
             stops.begin() + static_cast<long>(candidate.dropoff_pos));
  out.push_back(DropoffStop(request));
  out.insert(out.end(), stops.begin() + static_cast<long>(candidate.dropoff_pos),
             stops.end());
  return Schedule(std::move(out));
}

double TryInsertAndCommit(Vehicle* vehicle, const Request& request, double now,
                          TravelCostEngine* engine) {
  InsertionCandidate cand = BestInsertion(vehicle->route_state(now),
                                          vehicle->schedule(), request, engine);
  if (!cand.feasible) return kInf;
  Schedule updated = ApplyInsertion(vehicle->schedule(), request, cand);
  if (!vehicle->CommitSchedule(updated, now, engine)) return kInf;
  return cand.delta_cost;
}

}  // namespace structride
