#include "core/insertion.h"

#include <vector>

#include "util/arena.h"
#include "util/logging.h"

namespace structride {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();

// Writes stops with the request's pickup spliced before original index i and
// the dropoff before original index j (i <= j <= stops.size()) into out,
// which must hold stops.size() + 2 and not alias stops. Returns the length.
inline size_t Splice(Span<const Stop> stops, const Request& request, size_t i,
                     size_t j, Stop* out) {
  size_t w = 0;
  for (size_t k = 0; k < i; ++k) out[w++] = stops[k];
  out[w++] = PickupStop(request);
  for (size_t k = i; k < j; ++k) out[w++] = stops[k];
  out[w++] = DropoffStop(request);
  for (size_t k = j; k < stops.size(); ++k) out[w++] = stops[k];
  return w;
}
}  // namespace

InsertionCandidate BestInsertion(const RouteState& state,
                                 Span<const Stop> stops,
                                 const Request& request,
                                 TravelCostEngine* engine,
                                 const InsertionOptions& options) {
  InsertionCandidate best;
  size_t n = stops.size();

  // Scratch: the base-walk planes plus one candidate buffer. Both paths
  // produce identical results; the arena path just parks the bytes on the
  // calling thread's scratch arena instead of the heap.
  ArenaScope scope(ScratchArena());
  std::vector<double> vec_time, vec_leg;
  std::vector<Stop> vec_cand;
  double* base_time;
  double* base_leg;
  Stop* candidate;
  if (options.use_arena_scratch) {
    base_time = scope.AllocateArray<double>(n);
    base_leg = scope.AllocateArray<double>(n);
    candidate = scope.AllocateArray<Stop>(n + 2);
  } else {
    vec_time.resize(n);
    vec_leg.resize(n);
    vec_cand.resize(n + 2);
    base_time = vec_time.data();
    base_leg = vec_leg.data();
    candidate = vec_cand.data();
  }

  // Base walk: per-stop service times and leg costs (also the base cost the
  // delta is measured against).
  {
    double t = state.start_time;
    NodeId pos = state.start;
    double total = 0;
    for (size_t k = 0; k < n; ++k) {
      double leg = stops[k].node == pos ? 0.0 : engine->Cost(pos, stops[k].node);
      t += leg;
      total += leg;
      pos = stops[k].node;
      if (t > stops[k].deadline + 1e-7) return best;  // base already broken
      if (stops[k].kind == StopKind::kPickup && t < stops[k].earliest) {
        t = stops[k].earliest;
      }
      base_time[k] = t;
      base_leg[k] = leg;
    }
    best.total_cost = total;  // reused below as base cost
  }
  double base_cost = n == 0 ? 0 : best.total_cost;
  best.total_cost = kInf;

  const RoadNetwork& net = engine->network();
  const Point& src = net.position(request.source);
  const Point& dst = net.position(request.destination);
  auto node_pos = [&](size_t k) { return net.position(stops[k].node); };
  auto start_pos = [&] { return net.position(state.start); };

  // Euclidean lower bound on the extra cost of splicing point p between the
  // endpoints of original leg k (k == n appends after the last stop).
  auto detour_lb = [&](size_t k, const Point& p) {
    Point prev = k == 0 ? start_pos() : node_pos(k - 1);
    if (k == n) return EuclidDistance(prev, p);
    return EuclidDistance(prev, p) + EuclidDistance(p, node_pos(k)) -
           base_leg[k];
  };

  for (size_t i = 0; i <= n; ++i) {
    if (options.use_pruning) {
      // The vehicle reaches the pickup no earlier than the base time at the
      // preceding stop; once that alone misses the pickup deadline, every
      // later position misses it too.
      double prefix = i == 0 ? state.start_time : base_time[i - 1];
      if (prefix > request.latest_pickup + 1e-7) break;
      if (detour_lb(i, src) >= best.delta_cost) continue;
    }
    for (size_t j = i; j <= n; ++j) {
      if (options.use_pruning) {
        double lb;
        if (j == i) {
          // src then dst spliced into the same original leg i.
          Point prev = i == 0 ? start_pos() : node_pos(i - 1);
          lb = EuclidDistance(prev, src) + EuclidDistance(src, dst);
          if (i < n) lb += EuclidDistance(dst, node_pos(i)) - base_leg[i];
        } else {
          lb = detour_lb(i, src) + detour_lb(j, dst);
        }
        if (lb >= best.delta_cost) continue;
      }
      size_t len = Splice(stops, request, i, j, candidate);
      auto [ok, cost] = CheckSchedule(state, {candidate, len}, engine);
      if (!ok) continue;
      double delta = cost - base_cost;
      if (delta < best.delta_cost) {
        best.feasible = true;
        best.pickup_pos = i;
        best.dropoff_pos = j;
        best.delta_cost = delta;
        best.total_cost = cost;
      }
    }
  }
  return best;
}

InsertionCandidate BestInsertion(const RouteState& state,
                                 const Schedule& schedule,
                                 const Request& request,
                                 TravelCostEngine* engine,
                                 const InsertionOptions& options) {
  return BestInsertion(state, Span<const Stop>(schedule.stops()), request,
                       engine, options);
}

size_t ApplyInsertionInto(Span<const Stop> stops, const Request& request,
                          const InsertionCandidate& candidate, Stop* out) {
  SR_CHECK(candidate.feasible);
  SR_CHECK(candidate.pickup_pos <= candidate.dropoff_pos);
  SR_CHECK(candidate.dropoff_pos <= stops.size());
  return Splice(stops, request, candidate.pickup_pos, candidate.dropoff_pos,
                out);
}

Schedule ApplyInsertion(const Schedule& schedule, const Request& request,
                        const InsertionCandidate& candidate) {
  std::vector<Stop> out(schedule.size() + 2);
  ApplyInsertionInto(schedule.stops(), request, candidate, out.data());
  return Schedule(std::move(out));
}

double TryInsertAndCommit(Vehicle* vehicle, const Request& request, double now,
                          TravelCostEngine* engine) {
  InsertionCandidate cand = BestInsertion(vehicle->route_state(now),
                                          vehicle->schedule(), request, engine);
  if (!cand.feasible) return kInf;
  // Stage the committed sequence on the thread's scratch arena; CommitStops
  // copies it into the vehicle's retained storage.
  ArenaScope scope(ScratchArena());
  Stop* staged = scope.AllocateArray<Stop>(vehicle->schedule().size() + 2);
  size_t len =
      ApplyInsertionInto(vehicle->schedule().stops(), request, cand, staged);
  if (!vehicle->CommitStops({staged, len}, now, engine)) return kInf;
  return cand.delta_cost;
}

}  // namespace structride
