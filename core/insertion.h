// The linear insertion operator (Sec. IV-A): place one request's pickup and
// dropoff into an existing stop sequence at minimum extra travel cost. The
// optional pruning skips position pairs whose Euclidean detour lower bound
// already exceeds the incumbent, without ever changing the result.

#pragma once

#include <limits>

#include "core/schedule.h"
#include "core/vehicle.h"

namespace structride {

struct InsertionOptions {
  bool use_pruning = true;
};

struct InsertionCandidate {
  bool feasible = false;
  /// Pickup goes before original stop index pickup_pos; dropoff before
  /// original stop index dropoff_pos (>= pickup_pos; equal means the dropoff
  /// immediately follows the pickup).
  size_t pickup_pos = 0;
  size_t dropoff_pos = 0;
  double delta_cost = std::numeric_limits<double>::infinity();
  double total_cost = std::numeric_limits<double>::infinity();
};

/// Best feasible insertion of \p request into \p schedule evaluated from
/// \p state; infeasible candidate if none exists.
InsertionCandidate BestInsertion(const RouteState& state,
                                 const Schedule& schedule,
                                 const Request& request,
                                 TravelCostEngine* engine,
                                 const InsertionOptions& options = {});

/// Materializes the stop sequence described by a feasible candidate.
Schedule ApplyInsertion(const Schedule& schedule, const Request& request,
                        const InsertionCandidate& candidate);

/// Convenience used by online dispatchers and benches: best insertion into
/// the vehicle's remaining schedule at time \p now, committed on success.
/// Returns the delta cost, or +infinity if no feasible insertion exists.
double TryInsertAndCommit(Vehicle* vehicle, const Request& request, double now,
                          TravelCostEngine* engine);

}  // namespace structride
