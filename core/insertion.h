// The linear insertion operator (Sec. IV-A): place one request's pickup and
// dropoff into an existing stop sequence at minimum extra travel cost. The
// optional pruning skips position pairs whose Euclidean detour lower bound
// already exceeds the incumbent, without ever changing the result.

#pragma once

#include <limits>

#include "core/schedule.h"
#include "core/vehicle.h"
#include "util/span.h"

namespace structride {

struct InsertionOptions {
  bool use_pruning = true;
  /// Scratch placement for the base walk and candidate buffers: the
  /// calling thread's epoch arena (the allocation-free hot path) or plain
  /// vectors (the legacy reference the differential tests compare
  /// against). Outcome-identical by construction — it only moves where the
  /// same bytes briefly live.
  bool use_arena_scratch = true;
};

struct InsertionCandidate {
  bool feasible = false;
  /// Pickup goes before original stop index pickup_pos; dropoff before
  /// original stop index dropoff_pos (>= pickup_pos; equal means the dropoff
  /// immediately follows the pickup).
  size_t pickup_pos = 0;
  size_t dropoff_pos = 0;
  double delta_cost = std::numeric_limits<double>::infinity();
  double total_cost = std::numeric_limits<double>::infinity();
};

/// Best feasible insertion of \p request into the stop sequence \p stops
/// evaluated from \p state; infeasible candidate if none exists. The span
/// form is the core operator — pooled schedules (SchedulePool views, arena
/// blocks) price without materializing a Schedule.
InsertionCandidate BestInsertion(const RouteState& state,
                                 Span<const Stop> stops,
                                 const Request& request,
                                 TravelCostEngine* engine,
                                 const InsertionOptions& options = {});

/// Schedule-facing convenience wrapper over the span form.
InsertionCandidate BestInsertion(const RouteState& state,
                                 const Schedule& schedule,
                                 const Request& request,
                                 TravelCostEngine* engine,
                                 const InsertionOptions& options = {});

/// Writes the stop sequence described by a feasible candidate into \p out
/// (room for stops.size() + 2 required; \p out must not alias \p stops).
/// Returns the written length.
size_t ApplyInsertionInto(Span<const Stop> stops, const Request& request,
                          const InsertionCandidate& candidate, Stop* out);

/// Materializes the stop sequence described by a feasible candidate.
Schedule ApplyInsertion(const Schedule& schedule, const Request& request,
                        const InsertionCandidate& candidate);

/// Convenience used by online dispatchers and benches: best insertion into
/// the vehicle's remaining schedule at time \p now, committed on success.
/// Returns the delta cost, or +infinity if no feasible insertion exists.
double TryInsertAndCommit(Vehicle* vehicle, const Request& request, double now,
                          TravelCostEngine* engine);

}  // namespace structride
