#include "core/kinetic_tree.h"

#include <algorithm>
#include <limits>

namespace structride {

bool KineticTree::Insert(const Request& request, TravelCostEngine* engine) {
  std::vector<std::vector<Stop>> next;
  auto expand = [&](const std::vector<Stop>& stops) {
    size_t n = stops.size();
    std::vector<Stop> candidate;
    candidate.reserve(n + 2);
    for (size_t i = 0; i <= n; ++i) {
      for (size_t j = i; j <= n; ++j) {
        candidate.clear();
        candidate.insert(candidate.end(), stops.begin(),
                         stops.begin() + static_cast<long>(i));
        candidate.push_back(PickupStop(request));
        candidate.insert(candidate.end(), stops.begin() + static_cast<long>(i),
                         stops.begin() + static_cast<long>(j));
        candidate.push_back(DropoffStop(request));
        candidate.insert(candidate.end(), stops.begin() + static_cast<long>(j),
                         stops.end());
        if (CheckSchedule(root_, candidate, engine).first) {
          next.push_back(candidate);
        }
      }
    }
  };

  if (empty_tree_) {
    expand({});
  } else {
    for (const auto& stops : schedules_) expand(stops);
  }
  if (next.empty()) return false;

  if (next.size() > kMaxSchedules) {
    // One cost per schedule, then an index sort: the cheapest survive.
    std::vector<double> cost(next.size());
    std::vector<size_t> order(next.size());
    for (size_t i = 0; i < next.size(); ++i) {
      cost[i] = CheckSchedule(root_, next[i], engine).second;
      order[i] = i;
    }
    std::stable_sort(order.begin(), order.end(),
                     [&](size_t a, size_t b) { return cost[a] < cost[b]; });
    std::vector<std::vector<Stop>> kept;
    kept.reserve(kMaxSchedules);
    for (size_t k = 0; k < kMaxSchedules; ++k) {
      kept.push_back(std::move(next[order[k]]));
    }
    next = std::move(kept);
  }
  schedules_ = std::move(next);
  empty_tree_ = false;
  return true;
}

double KineticTree::BestCost(TravelCostEngine* engine) const {
  double best = std::numeric_limits<double>::infinity();
  for (const auto& stops : schedules_) {
    auto [ok, cost] = CheckSchedule(root_, stops, engine);
    if (ok && cost < best) best = cost;
  }
  return best;
}

size_t KineticTree::MemoryBytes() const {
  size_t bytes = schedules_.size() * sizeof(std::vector<Stop>);
  for (const auto& stops : schedules_) bytes += stops.size() * sizeof(Stop);
  return bytes;
}

}  // namespace structride
