#include "core/kinetic_tree.h"

#include <algorithm>
#include <limits>

#include "util/arena.h"

namespace structride {

bool KineticTree::Insert(const Request& request, TravelCostEngine* engine) {
  return use_pool_ ? InsertPooled(request, engine)
                   : InsertLegacy(request, engine);
}

bool KineticTree::InsertPooled(const Request& request,
                               TravelCostEngine* engine) {
  SchedulePool& src = pools_[cur_];
  SchedulePool& dst = pools_[1 - cur_];
  dst.Reset();

  auto expand = [&](Span<const Stop> stops) {
    size_t n = stops.size();
    ArenaScope scope(ScratchArena());
    Stop* cand = scope.AllocateArray<Stop>(n + 2);
    for (size_t i = 0; i <= n; ++i) {
      for (size_t j = i; j <= n; ++j) {
        size_t w = 0;
        for (size_t k = 0; k < i; ++k) cand[w++] = stops[k];
        cand[w++] = PickupStop(request);
        for (size_t k = i; k < j; ++k) cand[w++] = stops[k];
        cand[w++] = DropoffStop(request);
        for (size_t k = j; k < n; ++k) cand[w++] = stops[k];
        if (CheckSchedule(root_, {cand, w}, engine).first) {
          dst.Append({cand, w});
        }
      }
    }
  };

  if (empty_tree_) {
    expand({});
  } else {
    for (size_t s = 0; s < src.NumSchedules(); ++s) {
      expand(src.View(static_cast<uint32_t>(s)));
    }
  }
  const size_t produced = dst.NumSchedules();
  if (produced == 0) return false;

  if (produced > kMaxSchedules) {
    // One cost per ordering, then an index sort: the cheapest survive, in
    // cost order (ties by production index — the same sequence the legacy
    // stable_sort yields). The survivors are rewritten into the source
    // pool, which becomes the next generation.
    ArenaScope scope(ScratchArena());
    double* cost = scope.AllocateArray<double>(produced);
    size_t* order = scope.AllocateArray<size_t>(produced);
    for (size_t i = 0; i < produced; ++i) {
      cost[i] =
          CheckSchedule(root_, dst.View(static_cast<uint32_t>(i)), engine)
              .second;
      order[i] = i;
    }
    std::sort(order, order + produced, [&](size_t a, size_t b) {
      return cost[a] != cost[b] ? cost[a] < cost[b] : a < b;
    });
    src.Reset();
    for (size_t k = 0; k < kMaxSchedules; ++k) {
      src.Append(dst.View(static_cast<uint32_t>(order[k])));
    }
    // cur_ stays: src holds the pruned generation.
  } else {
    cur_ = 1 - cur_;
  }
  empty_tree_ = false;
  return true;
}

bool KineticTree::InsertLegacy(const Request& request,
                               TravelCostEngine* engine) {
  std::vector<std::vector<Stop>> next;
  auto expand = [&](const std::vector<Stop>& stops) {
    size_t n = stops.size();
    std::vector<Stop> candidate;
    candidate.reserve(n + 2);
    for (size_t i = 0; i <= n; ++i) {
      for (size_t j = i; j <= n; ++j) {
        candidate.clear();
        candidate.insert(candidate.end(), stops.begin(),
                         stops.begin() + static_cast<long>(i));
        candidate.push_back(PickupStop(request));
        candidate.insert(candidate.end(), stops.begin() + static_cast<long>(i),
                         stops.begin() + static_cast<long>(j));
        candidate.push_back(DropoffStop(request));
        candidate.insert(candidate.end(), stops.begin() + static_cast<long>(j),
                         stops.end());
        if (CheckSchedule(root_, candidate, engine).first) {
          next.push_back(candidate);
        }
      }
    }
  };

  if (empty_tree_) {
    expand({});
  } else {
    for (const auto& stops : schedules_) expand(stops);
  }
  if (next.empty()) return false;

  if (next.size() > kMaxSchedules) {
    // One cost per schedule, then an index sort: the cheapest survive.
    std::vector<double> cost(next.size());
    std::vector<size_t> order(next.size());
    for (size_t i = 0; i < next.size(); ++i) {
      cost[i] = CheckSchedule(root_, next[i], engine).second;
      order[i] = i;
    }
    std::stable_sort(order.begin(), order.end(),
                     [&](size_t a, size_t b) { return cost[a] < cost[b]; });
    std::vector<std::vector<Stop>> kept;
    kept.reserve(kMaxSchedules);
    for (size_t k = 0; k < kMaxSchedules; ++k) {
      kept.push_back(std::move(next[order[k]]));
    }
    next = std::move(kept);
  }
  schedules_ = std::move(next);
  empty_tree_ = false;
  return true;
}

double KineticTree::BestCost(TravelCostEngine* engine) const {
  double best = std::numeric_limits<double>::infinity();
  const size_t count = NumSchedules();
  for (size_t s = 0; s < count; ++s) {
    auto [ok, cost] = CheckSchedule(root_, ScheduleAt(s), engine);
    if (ok && cost < best) best = cost;
  }
  return best;
}

size_t KineticTree::MemoryBytes() const {
  if (use_pool_) {
    return pools_[0].MemoryBytes() + pools_[1].MemoryBytes();
  }
  size_t bytes = schedules_.size() * sizeof(std::vector<Stop>);
  for (const auto& stops : schedules_) bytes += stops.size() * sizeof(Stop);
  return bytes;
}

}  // namespace structride
