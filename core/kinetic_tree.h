// Kinetic tree: maintains every feasible ordering of the inserted requests'
// stops, so it answers the exact optimum that linear insertion approximates
// (the Sec. IV-A tradeoff: exponential state for exactness).

#pragma once

#include <cstddef>
#include <vector>

#include "core/entity_pools.h"
#include "core/schedule.h"

namespace structride {

class KineticTree {
 public:
  /// \p use_pool selects the storage backend: ping-pong SchedulePools
  /// (default — orderings live in arena chunks, one generation is rewound
  /// per Insert, allocation-free once warm) or the legacy one-vector-per-
  /// ordering representation the differential tests compare against. Both
  /// produce identical orderings in identical sequence.
  explicit KineticTree(const RouteState& root, bool use_pool = true)
      : root_(root), use_pool_(use_pool) {}

  /// Inserts the request into every held ordering at every feasible
  /// position pair. Returns false — leaving the tree unchanged — if no
  /// feasible ordering survives.
  bool Insert(const Request& request, TravelCostEngine* engine);

  /// Number of feasible stop orderings currently held.
  size_t NumSchedules() const {
    return use_pool_ ? pools_[cur_].NumSchedules() : schedules_.size();
  }

  /// Minimum travel cost over all held orderings (+infinity when empty).
  double BestCost(TravelCostEngine* engine) const;

  /// The i-th held ordering; valid until the next Insert.
  Span<const Stop> ScheduleAt(size_t i) const {
    if (use_pool_) return pools_[cur_].View(static_cast<uint32_t>(i));
    return schedules_[i];
  }

  size_t MemoryBytes() const;

 private:
  // Safety valve: beyond this many orderings the cheapest ones are kept.
  static constexpr size_t kMaxSchedules = 4096;

  bool InsertPooled(const Request& request, TravelCostEngine* engine);
  bool InsertLegacy(const Request& request, TravelCostEngine* engine);

  RouteState root_;
  bool use_pool_;
  bool empty_tree_ = true;  ///< distinguishes "no requests yet" from pruned

  // Pooled backend: the current generation lives in pools_[cur_]; Insert
  // expands it into the other pool and flips cur_.
  SchedulePool pools_[2];
  size_t cur_ = 0;

  // Legacy backend.
  std::vector<std::vector<Stop>> schedules_;
};

}  // namespace structride
