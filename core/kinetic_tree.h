// Kinetic tree: maintains every feasible ordering of the inserted requests'
// stops, so it answers the exact optimum that linear insertion approximates
// (the Sec. IV-A tradeoff: exponential state for exactness).

#pragma once

#include <cstddef>
#include <vector>

#include "core/schedule.h"

namespace structride {

class KineticTree {
 public:
  explicit KineticTree(const RouteState& root) : root_(root) {}

  /// Inserts the request into every held ordering at every feasible
  /// position pair. Returns false — leaving the tree unchanged — if no
  /// feasible ordering survives.
  bool Insert(const Request& request, TravelCostEngine* engine);

  /// Number of feasible stop orderings currently held.
  size_t NumSchedules() const { return schedules_.size(); }

  /// Minimum travel cost over all held orderings (+infinity when empty).
  double BestCost(TravelCostEngine* engine) const;

  const std::vector<std::vector<Stop>>& schedules() const { return schedules_; }

  size_t MemoryBytes() const;

 private:
  // Safety valve: beyond this many orderings the cheapest ones are kept.
  static constexpr size_t kMaxSchedules = 4096;

  RouteState root_;
  std::vector<std::vector<Stop>> schedules_;
  bool empty_tree_ = true;  ///< distinguishes "no requests yet" from pruned
};

}  // namespace structride
