// A ride request and its deadline bookkeeping. Deadlines follow the paper's
// single-knob policy: a request released at e_r with direct cost t(s,e) must
// be dropped off by e_r + gamma * t(s,e); the latest feasible pickup follows
// by subtracting the direct leg.

#pragma once

#include <cstdint>

#include "roadnet/road_network.h"

namespace structride {

using RequestId = int64_t;

struct Request {
  RequestId id = 0;
  NodeId source = 0;
  NodeId destination = 0;
  double release_time = 0;
  double direct_cost = 0;    ///< t(source, destination)
  double deadline = 0;       ///< latest dropoff time
  double latest_pickup = 0;  ///< deadline - direct_cost
};

}  // namespace structride
