#include "core/schedule.h"

namespace structride {

namespace {
constexpr double kEps = 1e-7;

template <typename CostFn>
std::pair<bool, double> Walk(const RouteState& state,
                             Span<const Stop> stops, CostFn cost_fn) {
  double t = state.start_time;
  NodeId pos = state.start;
  int load = state.onboard;
  double total = 0;
  for (const Stop& stop : stops) {
    double leg = stop.node == pos ? 0.0 : cost_fn(pos, stop.node);
    t += leg;
    total += leg;
    pos = stop.node;
    if (t > stop.deadline + kEps) return {false, total};
    if (stop.kind == StopKind::kPickup) {
      if (t < stop.earliest) t = stop.earliest;
      if (++load > state.capacity) return {false, total};
    } else {
      --load;
    }
  }
  return {true, total};
}
}  // namespace

std::pair<bool, double> CheckSchedule(const RouteState& state,
                                      Span<const Stop> stops,
                                      TravelCostEngine* engine) {
  return Walk(state, stops,
              [engine](NodeId a, NodeId b) { return engine->Cost(a, b); });
}

std::pair<bool, double> CheckScheduleLowerBound(
    const RouteState& state, Span<const Stop> stops,
    const TravelCostEngine* engine) {
  return Walk(state, stops, [engine](NodeId a, NodeId b) {
    return engine->LowerBound(a, b);
  });
}

}  // namespace structride
