// Stop sequences and their feasibility/cost evaluation — the shared
// currency of every insertion operator, grouping enumerator and dispatcher.

#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "core/request.h"
#include "roadnet/travel_cost.h"
#include "util/span.h"

namespace structride {

enum class StopKind { kPickup, kDropoff };

struct Stop {
  RequestId request = 0;
  NodeId node = 0;
  StopKind kind = StopKind::kPickup;
  double earliest = 0;  ///< pickups: release time (vehicle waits if early)
  double deadline = 0;  ///< pickups: latest pickup; dropoffs: latest dropoff
};

inline Stop PickupStop(const Request& r) {
  return {r.id, r.source, StopKind::kPickup, r.release_time, r.latest_pickup};
}
inline Stop DropoffStop(const Request& r) {
  return {r.id, r.destination, StopKind::kDropoff, 0, r.deadline};
}

class Schedule {
 public:
  Schedule() = default;
  explicit Schedule(std::vector<Stop> stops) : stops_(std::move(stops)) {}

  const std::vector<Stop>& stops() const { return stops_; }
  std::vector<Stop>& mutable_stops() { return stops_; }
  bool empty() const { return stops_.empty(); }
  size_t size() const { return stops_.size(); }

 private:
  std::vector<Stop> stops_;
};

/// The vehicle-side context a schedule is evaluated against: where the
/// vehicle is, when it is free there, how many seats it has and how many are
/// already occupied by riders whose dropoffs appear in the schedule.
struct RouteState {
  NodeId start = 0;
  double start_time = 0;
  int capacity = 0;
  int onboard = 0;
};

/// Simulates the stop sequence from \p state: waits at early pickups,
/// enforces every deadline and the seat capacity. Returns {feasible,
/// total travel cost}; on infeasibility the cost is the partial cost up to
/// the violation (useful only for diagnostics). Takes a span so pooled
/// stop sequences (SchedulePool views, arena scratch) evaluate without a
/// vector round-trip; std::vector<Stop> converts implicitly.
std::pair<bool, double> CheckSchedule(const RouteState& state,
                                      Span<const Stop> stops,
                                      TravelCostEngine* engine);

/// Same simulation under the Euclidean lower-bound metric — no shortest-path
/// queries. If this returns false the schedule is infeasible under the real
/// metric too (costs only grow), which is what makes the angle/insertion
/// pruning sound.
std::pair<bool, double> CheckScheduleLowerBound(const RouteState& state,
                                                Span<const Stop> stops,
                                                const TravelCostEngine* engine);

}  // namespace structride
