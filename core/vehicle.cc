#include "core/vehicle.h"

#include <cmath>

#include "util/arena.h"
#include "util/logging.h"

namespace structride {

bool Vehicle::CommitSchedule(const Schedule& schedule, double now,
                             TravelCostEngine* engine) {
  return CommitStops(schedule.stops(), now, engine);
}

bool Vehicle::CommitStops(Span<const Stop> stops, double now,
                          TravelCostEngine* engine) {
  RouteState state = route_state(now);
  const size_t n = stops.size();
  // Arrival/leg staging lives on the thread's scratch arena so an
  // infeasible attempt leaves no trace and a feasible one is copied into
  // the vehicle's retained vectors below.
  ArenaScope scope(ScratchArena());
  double* arrivals = scope.AllocateArray<double>(n);
  double* legs = scope.AllocateArray<double>(n);

  double t = state.start_time;
  NodeId pos = state.start;
  int load = state.onboard;
  for (size_t k = 0; k < n; ++k) {
    const Stop& stop = stops[k];
    double leg = stop.node == pos ? 0.0 : engine->Cost(pos, stop.node);
    t += leg;
    pos = stop.node;
    if (t > stop.deadline + 1e-7) return false;
    if (stop.kind == StopKind::kPickup) {
      if (t < stop.earliest) t = stop.earliest;
      if (++load > capacity_) return false;
    } else {
      --load;
    }
    arrivals[k] = t;
    legs[k] = leg;
  }

  // assign() refills in place, reusing the members' capacity once warmed.
  // A span viewing the vehicle's own stop vector must not self-assign
  // (assign from a range inside the vector is UB); such a span is
  // necessarily a prefix of the storage, so truncation preserves it.
  if (stops.data() == schedule_.stops().data()) {
    schedule_.mutable_stops().resize(n);
  } else {
    schedule_.mutable_stops().assign(stops.begin(), stops.end());
  }
  arrivals_.assign(arrivals, arrivals + n);
  legs_.assign(legs, legs + n);
  time_ = state.start_time;
  repositioning_ = false;  // real work abandons an in-flight reposition
  ++epoch_;
  return true;
}

bool Vehicle::BeginReposition(NodeId target, double now,
                              TravelCostEngine* engine) {
  if (!schedule_.empty() || repositioning_ || target == node_) return false;
  double leg = engine->Cost(node_, target);
  // An unreachable target (disconnected component: Cost = +inf) must not
  // become a leg — it would never complete mid-run and would charge +inf
  // into travel_cost at the end-of-run drain.
  if (!std::isfinite(leg)) return false;
  double start = now > time_ ? now : time_;
  reposition_leg_ = leg;
  reposition_arrival_ = start + leg;
  reposition_target_ = target;
  repositioning_ = true;
  ++epoch_;
  return true;
}

void Vehicle::CancelReposition() {
  if (!repositioning_) return;
  repositioning_ = false;
  ++epoch_;
}

void Vehicle::AdvanceTo(double now,
                        const std::function<void(const Stop&, double)>& on_stop) {
  size_t done = 0;
  const auto& stops = schedule_.stops();
  while (done < stops.size() && arrivals_[done] <= now) {
    const Stop& stop = stops[done];
    travel_cost_ += legs_[done];
    node_ = stop.node;
    time_ = arrivals_[done];
    if (stop.kind == StopKind::kPickup) {
      ++onboard_;
    } else {
      SR_CHECK(onboard_ > 0);
      --onboard_;
    }
    if (on_stop) on_stop(stop, arrivals_[done]);
    ++done;
  }
  if (done > 0) {
    auto& mutable_stops = schedule_.mutable_stops();
    mutable_stops.erase(mutable_stops.begin(),
                        mutable_stops.begin() + static_cast<long>(done));
    arrivals_.erase(arrivals_.begin(), arrivals_.begin() + static_cast<long>(done));
    legs_.erase(legs_.begin(), legs_.begin() + static_cast<long>(done));
    ++epoch_;
  }
  if (repositioning_ && reposition_arrival_ <= now) {
    travel_cost_ += reposition_leg_;
    reposition_cost_ += reposition_leg_;
    ++repositions_completed_;
    node_ = reposition_target_;
    time_ = reposition_arrival_;
    repositioning_ = false;
    ++epoch_;
  }
}

}  // namespace structride
