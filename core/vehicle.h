// A vehicle: current position/time, seat usage, and its committed stop
// sequence with precomputed arrival times. Movement follows the committed
// model documented in DESIGN.md §4: the vehicle is considered to be at the
// last completed stop; committing a new schedule re-times every remaining
// stop from there and must pass a full feasibility check, so promises made
// to committed riders are never broken.
//
// Two orthogonal bits of state serve the event-driven simulation core
// (DESIGN.md §6):
//  - `in_service`: an out-of-service vehicle (scenario downtime / shift
//    change) finishes its committed stops but receives no new work — every
//    dispatcher candidate scan skips it.
//  - an empty *reposition* leg: an idle vehicle can be sent toward demand.
//    Under the committed model it stays at its current node until the leg's
//    arrival; the travel cost accrues on completion, and committing a real
//    schedule first abandons the move at zero cost (the vehicle never left).
//  - `epoch`: bumped whenever the committed future changes (commit,
//    reposition begin/cancel, any completion), so queued stop-completion
//    events can detect they are stale.

#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <vector>

#include "core/schedule.h"

namespace structride {

class Vehicle {
 public:
  Vehicle(int id, NodeId start, int capacity)
      : id_(id), node_(start), capacity_(capacity) {}

  int id() const { return id_; }
  int capacity() const { return capacity_; }
  int onboard() const { return onboard_; }
  NodeId node() const { return node_; }
  bool idle() const { return schedule_.empty(); }
  double total_travel_cost() const { return travel_cost_; }

  const Schedule& schedule() const { return schedule_; }

  /// True unless a scenario pulled the vehicle out of service. Out-of-
  /// service vehicles still complete their committed stops.
  bool in_service() const { return in_service_; }
  void set_in_service(bool in) { in_service_ = in; }

  /// Bumped on every change to the committed timeline; see header comment.
  uint64_t epoch() const { return epoch_; }

  /// When the next committed stop (or reposition arrival) completes;
  /// +infinity when nothing is in flight.
  double next_completion_time() const {
    if (!arrivals_.empty()) return arrivals_.front();
    if (repositioning_) return reposition_arrival_;
    return std::numeric_limits<double>::infinity();
  }

  bool repositioning() const { return repositioning_; }
  NodeId reposition_target() const { return reposition_target_; }
  /// Completed (not abandoned) reposition legs and their summed travel
  /// cost; the cost is also folded into total_travel_cost().
  int repositions_completed() const { return repositions_completed_; }
  double reposition_cost() const { return reposition_cost_; }

  /// Vehicle-side context for evaluating schedule edits at time \p now.
  RouteState route_state(double now) const {
    return {node_, now > time_ ? now : time_, capacity_, onboard_};
  }

  /// Replaces the remaining schedule, re-timing every stop from
  /// route_state(now). Returns false (and leaves the vehicle untouched) if
  /// the new schedule is infeasible. Success abandons any in-flight
  /// reposition leg (committed model: the vehicle never left, no cost).
  bool CommitSchedule(const Schedule& schedule, double now,
                      TravelCostEngine* engine);

  /// Span form of CommitSchedule — the pooled hot path: \p stops may live in
  /// an arena or SchedulePool, and the vehicle's retained stop/arrival/leg
  /// vectors are re-filled in place (no heap allocation once their capacity
  /// has warmed). \p stops may view the vehicle's own schedule storage.
  bool CommitStops(Span<const Stop> stops, double now,
                   TravelCostEngine* engine);

  /// Starts an empty relocation toward \p target (one travel-cost query for
  /// the leg). Requires an idle, non-repositioning vehicle; returns false
  /// when those preconditions fail or \p target is the current node.
  bool BeginReposition(NodeId target, double now, TravelCostEngine* engine);

  /// Abandons an in-flight reposition at zero cost. No-op when idle.
  void CancelReposition();

  /// Completes every stop serviced by \p now — and a reposition leg whose
  /// arrival has passed — invoking \p on_stop with each stop and its
  /// service time, in order (reposition completions don't invoke it).
  void AdvanceTo(double now,
                 const std::function<void(const Stop&, double)>& on_stop);

 private:
  int id_;
  NodeId node_;
  int capacity_;
  int onboard_ = 0;
  double time_ = 0;  ///< time the vehicle became free at node_
  double travel_cost_ = 0;
  Schedule schedule_;
  std::vector<double> arrivals_;  ///< service time per remaining stop
  std::vector<double> legs_;     ///< travel cost into each remaining stop

  bool in_service_ = true;
  uint64_t epoch_ = 0;
  bool repositioning_ = false;
  NodeId reposition_target_ = 0;
  double reposition_arrival_ = 0;
  double reposition_leg_ = 0;
  int repositions_completed_ = 0;
  double reposition_cost_ = 0;
};

/// A possibly-restricted view over the one global fleet vector (geo-sharding,
/// DESIGN.md §12). The simulation engine keeps a single fleet for the whole
/// metro; a shard's dispatcher sees only its resident vehicles through the
/// optional member-index plane. Every index a dispatcher hands out or
/// receives (candidate scans, proposals, RepositionMove::vehicle) is
/// view-local; global_index() translates back to fleet storage. An
/// unrestricted view is a pure pass-through — view-local == global — which is
/// what keeps the single-shard engine bitwise identical to the pre-sharding
/// one. The members plane, when present, must hold strictly ascending fleet
/// indices so deterministic (distance, index) tie breaks survive restriction.
class FleetView {
 public:
  FleetView() = default;
  // Implicit on purpose: every pre-sharding call site passes the whole fleet.
  FleetView(std::vector<Vehicle>* storage) : storage_(storage) {}
  FleetView(std::vector<Vehicle>* storage, const std::vector<size_t>* members)
      : storage_(storage), members_(members) {}

  size_t size() const {
    if (members_ != nullptr) return members_->size();
    return storage_ != nullptr ? storage_->size() : 0;
  }
  bool empty() const { return size() == 0; }

  Vehicle& operator[](size_t i) const {
    return (*storage_)[members_ != nullptr ? (*members_)[i] : i];
  }

  /// Fleet-storage index of view-local index \p i.
  size_t global_index(size_t i) const {
    return members_ != nullptr ? (*members_)[i] : i;
  }

  bool restricted() const { return members_ != nullptr; }
  std::vector<Vehicle>* storage() const { return storage_; }

 private:
  std::vector<Vehicle>* storage_ = nullptr;
  const std::vector<size_t>* members_ = nullptr;
};

}  // namespace structride
