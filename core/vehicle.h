// A vehicle: current position/time, seat usage, and its committed stop
// sequence with precomputed arrival times. Movement follows the committed
// model documented in DESIGN.md §4: the vehicle is considered to be at the
// last completed stop; committing a new schedule re-times every remaining
// stop from there and must pass a full feasibility check, so promises made
// to committed riders are never broken.

#pragma once

#include <functional>
#include <vector>

#include "core/schedule.h"

namespace structride {

class Vehicle {
 public:
  Vehicle(int id, NodeId start, int capacity)
      : id_(id), node_(start), capacity_(capacity) {}

  int id() const { return id_; }
  int capacity() const { return capacity_; }
  int onboard() const { return onboard_; }
  NodeId node() const { return node_; }
  bool idle() const { return schedule_.empty(); }
  double total_travel_cost() const { return travel_cost_; }

  const Schedule& schedule() const { return schedule_; }

  /// Vehicle-side context for evaluating schedule edits at time \p now.
  RouteState route_state(double now) const {
    return {node_, now > time_ ? now : time_, capacity_, onboard_};
  }

  /// Replaces the remaining schedule, re-timing every stop from
  /// route_state(now). Returns false (and leaves the vehicle untouched) if
  /// the new schedule is infeasible.
  bool CommitSchedule(const Schedule& schedule, double now,
                      TravelCostEngine* engine);

  /// Completes every stop serviced by \p now; invokes \p on_stop with the
  /// stop and its service time, in order.
  void AdvanceTo(double now,
                 const std::function<void(const Stop&, double)>& on_stop);

 private:
  int id_;
  NodeId node_;
  int capacity_;
  int onboard_ = 0;
  double time_ = 0;  ///< time the vehicle became free at node_
  double travel_cost_ = 0;
  Schedule schedule_;
  std::vector<double> arrivals_;  ///< service time per remaining stop
  std::vector<double> legs_;     ///< travel cost into each remaining stop
};

}  // namespace structride
