// The online insertion baselines and the learning-method surrogate.
//
//  - pruneGDP: greedy min-delta insertion at release, with the
//    lower-bound reachability prune over a distance-sorted fleet scan.
//  - TicketAssign+: first-feasible insertion among the nearest vehicles
//    (a bucketed nearest-candidate scheme; faster, slightly worse).
//  - DARM+DPRS: the paper compares against a learned dispatcher; without
//    its training data this is an honest heuristic surrogate — delay-
//    tolerant batched insertion that holds a request back while its slack
//    allows a cheaper shared match (DESIGN.md §4).
//
// Each baseline carries a pooled twin (DispatchConfig::soa_pools): a
// persistent scanner whose planes refill in place, *Into candidate queries
// into thread-scratch buffers, and winner-only schedule materialization
// staged in the scratch arena (ApplyInsertion issues no engine queries, so
// deferring it past the scan changes nothing) — zero heap allocations per
// steady-state batch once pools are warm. The legacy bodies are kept
// verbatim as the bitwise parity reference.

#include <limits>
#include <unordered_set>

#include "dispatch/common.h"
#include "dispatch/dispatcher.h"

namespace structride {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

class PruneGdpDispatcher : public Dispatcher {
 public:
  using Dispatcher::Dispatcher;

  void OnBatch(DispatchContext* ctx) override {
    if (config_.soa_pools) {
      OnBatchPooled(ctx);
    } else {
      OnBatchLegacy(ctx);
    }
  }

 private:
  void OnBatchPooled(DispatchContext* ctx) {
    if (ctx->pending.empty()) return;  // drain phase: don't build the index
    const FleetView& fleet = ctx->fleet;
    scanner_.Rebuild(fleet, ctx->engine->network(), config_.use_spatial_index);
    ArenaScope batch_scope(ScratchArena());
    size_t* nearest = batch_scope.AllocateArray<size_t>(fleet.size());
    for (const Request* r : ctx->pending) {
      double best = kInf;
      size_t best_vehicle = 0;
      InsertionCandidate best_cand;
      // Reachability prune: only vehicles whose straight-line distance still
      // makes the pickup deadline can serve the request, and vehicle
      // positions are fixed within a batch, so the radius query visits
      // exactly the prefix the sorted full-fleet scan used to.
      double reach = r->latest_pickup - ctx->now;
      const size_t num_near = scanner_.NearestWithinInto(
          r->source, fleet.size(), reach, nearest);
      for (size_t ni = 0; ni < num_near; ++ni) {
        Vehicle& v = fleet[nearest[ni]];
        InsertionCandidate cand = BestInsertion(
            v.route_state(ctx->now), v.schedule().stops(), *r, ctx->engine);
        if (cand.feasible && cand.delta_cost < best) {
          best = cand.delta_cost;
          best_vehicle = nearest[ni];
          best_cand = cand;
        }
      }
      bool committed = false;
      if (best < kInf) {
        ArenaScope scope(ScratchArena());
        const std::vector<Stop>& cur = fleet[best_vehicle].schedule().stops();
        Stop* staged = scope.AllocateArray<Stop>(cur.size() + 2);
        size_t len = ApplyInsertionInto(cur, *r, best_cand, staged);
        committed = fleet[best_vehicle].CommitStops({staged, len}, ctx->now,
                                                    ctx->engine);
      }
      if (committed) {
        ctx->assigned.push_back(r->id);
      } else {
        ctx->rejected.push_back(r->id);  // online: no second chance
      }
    }
    NotePeak(fleet.size() * sizeof(double) + scanner_.MemoryBytes() +
             ctx->pending.size() * sizeof(Request*));
  }

  void OnBatchLegacy(DispatchContext* ctx) {
    if (ctx->pending.empty()) return;  // drain phase: don't build the index
    const FleetView& fleet = ctx->fleet;
    const RoadNetwork& net = ctx->engine->network();
    dispatch::CandidateScanner scanner(fleet, net, config_.use_spatial_index);
    for (const Request* r : ctx->pending) {
      double best = kInf;
      size_t best_vehicle = 0;
      Schedule best_schedule;
      // Reachability prune: only vehicles whose straight-line distance still
      // makes the pickup deadline can serve the request, and vehicle
      // positions are fixed within a batch, so the radius query visits
      // exactly the prefix the sorted full-fleet scan used to.
      double reach = r->latest_pickup - ctx->now;
      for (size_t vi : scanner.NearestWithin(r->source, fleet.size(), reach)) {
        Vehicle& v = fleet[vi];
        InsertionCandidate cand =
            BestInsertion(v.route_state(ctx->now), v.schedule(), *r,
                          ctx->engine);
        if (cand.feasible && cand.delta_cost < best) {
          best = cand.delta_cost;
          best_vehicle = vi;
          best_schedule = ApplyInsertion(v.schedule(), *r, cand);
        }
      }
      if (best < kInf &&
          fleet[best_vehicle].CommitSchedule(best_schedule, ctx->now,
                                             ctx->engine)) {
        ctx->assigned.push_back(r->id);
      } else {
        ctx->rejected.push_back(r->id);  // online: no second chance
      }
    }
    NotePeak(fleet.size() * sizeof(double) + scanner.MemoryBytes() +
             ctx->pending.size() * sizeof(Request*));
  }

  dispatch::CandidateScanner scanner_;
};

class TicketAssignDispatcher : public Dispatcher {
 public:
  using Dispatcher::Dispatcher;

  void OnBatch(DispatchContext* ctx) override {
    if (config_.soa_pools) {
      OnBatchPooled(ctx);
    } else {
      OnBatchLegacy(ctx);
    }
  }

 private:
  static constexpr size_t kScanLimit = 16;

  void OnBatchPooled(DispatchContext* ctx) {
    if (ctx->pending.empty()) return;  // drain phase: don't build the index
    const FleetView& fleet = ctx->fleet;
    scanner_.Rebuild(fleet, ctx->engine->network(), config_.use_spatial_index);
    for (const Request* r : ctx->pending) {
      bool placed = false;
      size_t nearest[kScanLimit];
      const size_t num_near =
          scanner_.NearestInto(r->source, kScanLimit, nearest);
      for (size_t ni = 0; ni < num_near; ++ni) {
        Vehicle& v = fleet[nearest[ni]];
        InsertionCandidate cand = BestInsertion(
            v.route_state(ctx->now), v.schedule().stops(), *r, ctx->engine);
        if (!cand.feasible) continue;
        ArenaScope scope(ScratchArena());
        const std::vector<Stop>& cur = v.schedule().stops();
        Stop* staged = scope.AllocateArray<Stop>(cur.size() + 2);
        size_t len = ApplyInsertionInto(cur, *r, cand, staged);
        if (v.CommitStops({staged, len}, ctx->now, ctx->engine)) {
          ctx->assigned.push_back(r->id);
          placed = true;
          break;
        }
      }
      if (!placed) ctx->rejected.push_back(r->id);
    }
    NotePeak(kScanLimit * sizeof(size_t) + scanner_.MemoryBytes() +
             ctx->pending.size() * sizeof(Request*));
  }

  void OnBatchLegacy(DispatchContext* ctx) {
    if (ctx->pending.empty()) return;  // drain phase: don't build the index
    const FleetView& fleet = ctx->fleet;
    const RoadNetwork& net = ctx->engine->network();
    dispatch::CandidateScanner scanner(fleet, net, config_.use_spatial_index);
    for (const Request* r : ctx->pending) {
      bool placed = false;
      for (size_t vi : scanner.Nearest(r->source, kScanLimit)) {
        Vehicle& v = fleet[vi];
        InsertionCandidate cand =
            BestInsertion(v.route_state(ctx->now), v.schedule(), *r,
                          ctx->engine);
        if (!cand.feasible) continue;
        Schedule updated = ApplyInsertion(v.schedule(), *r, cand);
        if (v.CommitSchedule(updated, ctx->now, ctx->engine)) {
          ctx->assigned.push_back(r->id);
          placed = true;
          break;
        }
      }
      if (!placed) ctx->rejected.push_back(r->id);
    }
    NotePeak(kScanLimit * sizeof(size_t) + scanner.MemoryBytes() +
             ctx->pending.size() * sizeof(Request*));
  }

  dispatch::CandidateScanner scanner_;
};

class DarmDprsDispatcher : public Dispatcher {
 public:
  using Dispatcher::Dispatcher;

  void OnBatch(DispatchContext* ctx) override {
    if (config_.soa_pools) {
      OnBatchPooled(ctx);
    } else {
      OnBatchLegacy(ctx);
    }
  }

 private:
  // Hold a request back while it still has slack and no cheap (likely
  // shared) placement exists; assign unconditionally once it gets urgent.
  static constexpr size_t kScanLimit = 16;
  static constexpr double kCheapRatio = 0.6;  // delta <= 60% of direct cost
  static constexpr double kUrgentSlack = 60;  // seconds of pickup slack

  void OnBatchPooled(DispatchContext* ctx) {
    if (ctx->pending.empty()) return;  // drain phase: don't build the index
    const FleetView& fleet = ctx->fleet;
    scanner_.Rebuild(fleet, ctx->engine->network(), config_.use_spatial_index);
    for (const Request* r : ctx->pending) {
      double best = kInf;
      size_t best_vehicle = 0;
      InsertionCandidate best_cand;
      size_t nearest[kScanLimit];
      const size_t num_near =
          scanner_.NearestInto(r->source, kScanLimit, nearest);
      for (size_t ni = 0; ni < num_near; ++ni) {
        Vehicle& v = fleet[nearest[ni]];
        InsertionCandidate cand = BestInsertion(
            v.route_state(ctx->now), v.schedule().stops(), *r, ctx->engine);
        if (cand.feasible && cand.delta_cost < best) {
          best = cand.delta_cost;
          best_vehicle = nearest[ni];
          best_cand = cand;
        }
      }
      if (best == kInf) continue;  // stays pending until slack runs out
      double slack = r->latest_pickup - ctx->now;
      if (best <= kCheapRatio * r->direct_cost || slack <= kUrgentSlack) {
        ArenaScope scope(ScratchArena());
        const std::vector<Stop>& cur = fleet[best_vehicle].schedule().stops();
        Stop* staged = scope.AllocateArray<Stop>(cur.size() + 2);
        size_t len = ApplyInsertionInto(cur, *r, best_cand, staged);
        if (fleet[best_vehicle].CommitStops({staged, len}, ctx->now,
                                            ctx->engine)) {
          ctx->assigned.push_back(r->id);
        }
      }
    }
    NotePeak(ctx->pending.size() * (sizeof(Request*) + sizeof(double)) +
             scanner_.MemoryBytes() + kScanLimit * sizeof(size_t));
  }

  void OnBatchLegacy(DispatchContext* ctx) {
    if (ctx->pending.empty()) return;  // drain phase: don't build the index
    const FleetView& fleet = ctx->fleet;
    const RoadNetwork& net = ctx->engine->network();
    dispatch::CandidateScanner scanner(fleet, net, config_.use_spatial_index);
    for (const Request* r : ctx->pending) {
      double best = kInf;
      size_t best_vehicle = 0;
      Schedule best_schedule;
      for (size_t vi : scanner.Nearest(r->source, kScanLimit)) {
        Vehicle& v = fleet[vi];
        InsertionCandidate cand =
            BestInsertion(v.route_state(ctx->now), v.schedule(), *r,
                          ctx->engine);
        if (cand.feasible && cand.delta_cost < best) {
          best = cand.delta_cost;
          best_vehicle = vi;
          best_schedule = ApplyInsertion(v.schedule(), *r, cand);
        }
      }
      if (best == kInf) continue;  // stays pending until slack runs out
      double slack = r->latest_pickup - ctx->now;
      if (best <= kCheapRatio * r->direct_cost || slack <= kUrgentSlack) {
        if (fleet[best_vehicle].CommitSchedule(best_schedule, ctx->now,
                                               ctx->engine)) {
          ctx->assigned.push_back(r->id);
        }
      }
    }
    NotePeak(ctx->pending.size() * (sizeof(Request*) + sizeof(double)) +
             scanner.MemoryBytes() + kScanLimit * sizeof(size_t));
  }

  dispatch::CandidateScanner scanner_;
};

}  // namespace

std::unique_ptr<Dispatcher> MakePruneGdp(const DispatchConfig& config) {
  return std::make_unique<PruneGdpDispatcher>(config);
}
std::unique_ptr<Dispatcher> MakeTicketAssign(const DispatchConfig& config) {
  return std::make_unique<TicketAssignDispatcher>(config);
}
std::unique_ptr<Dispatcher> MakeDarmDprs(const DispatchConfig& config) {
  return std::make_unique<DarmDprsDispatcher>(config);
}

}  // namespace structride
