// The online insertion baselines and the learning-method surrogate.
//
//  - pruneGDP: greedy min-delta insertion at release, with the
//    lower-bound reachability prune over a distance-sorted fleet scan.
//  - TicketAssign+: first-feasible insertion among the nearest vehicles
//    (a bucketed nearest-candidate scheme; faster, slightly worse).
//  - DARM+DPRS: the paper compares against a learned dispatcher; without
//    its training data this is an honest heuristic surrogate — delay-
//    tolerant batched insertion that holds a request back while its slack
//    allows a cheaper shared match (DESIGN.md §4).

#include <limits>
#include <unordered_set>

#include "dispatch/common.h"
#include "dispatch/dispatcher.h"

namespace structride {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

class PruneGdpDispatcher : public Dispatcher {
 public:
  using Dispatcher::Dispatcher;

  void OnBatch(DispatchContext* ctx) override {
    if (ctx->pending.empty()) return;  // drain phase: don't build the index
    std::vector<Vehicle>& fleet = *ctx->fleet;
    const RoadNetwork& net = ctx->engine->network();
    dispatch::CandidateScanner scanner(fleet, net, config_.use_spatial_index);
    for (const Request* r : ctx->pending) {
      double best = kInf;
      size_t best_vehicle = 0;
      Schedule best_schedule;
      // Reachability prune: only vehicles whose straight-line distance still
      // makes the pickup deadline can serve the request, and vehicle
      // positions are fixed within a batch, so the radius query visits
      // exactly the prefix the sorted full-fleet scan used to.
      double reach = r->latest_pickup - ctx->now;
      for (size_t vi : scanner.NearestWithin(r->source, fleet.size(), reach)) {
        Vehicle& v = fleet[vi];
        InsertionCandidate cand =
            BestInsertion(v.route_state(ctx->now), v.schedule(), *r,
                          ctx->engine);
        if (cand.feasible && cand.delta_cost < best) {
          best = cand.delta_cost;
          best_vehicle = vi;
          best_schedule = ApplyInsertion(v.schedule(), *r, cand);
        }
      }
      if (best < kInf &&
          fleet[best_vehicle].CommitSchedule(best_schedule, ctx->now,
                                             ctx->engine)) {
        ctx->assigned.push_back(r->id);
      } else {
        ctx->rejected.push_back(r->id);  // online: no second chance
      }
    }
    NotePeak(fleet.size() * sizeof(double) + scanner.MemoryBytes() +
             ctx->pending.size() * sizeof(Request*));
  }
};

class TicketAssignDispatcher : public Dispatcher {
 public:
  using Dispatcher::Dispatcher;

  void OnBatch(DispatchContext* ctx) override {
    constexpr size_t kScanLimit = 16;
    if (ctx->pending.empty()) return;  // drain phase: don't build the index
    std::vector<Vehicle>& fleet = *ctx->fleet;
    const RoadNetwork& net = ctx->engine->network();
    dispatch::CandidateScanner scanner(fleet, net, config_.use_spatial_index);
    for (const Request* r : ctx->pending) {
      bool placed = false;
      for (size_t vi : scanner.Nearest(r->source, kScanLimit)) {
        Vehicle& v = fleet[vi];
        InsertionCandidate cand =
            BestInsertion(v.route_state(ctx->now), v.schedule(), *r,
                          ctx->engine);
        if (!cand.feasible) continue;
        Schedule updated = ApplyInsertion(v.schedule(), *r, cand);
        if (v.CommitSchedule(updated, ctx->now, ctx->engine)) {
          ctx->assigned.push_back(r->id);
          placed = true;
          break;
        }
      }
      if (!placed) ctx->rejected.push_back(r->id);
    }
    NotePeak(kScanLimit * sizeof(size_t) + scanner.MemoryBytes() +
             ctx->pending.size() * sizeof(Request*));
  }
};

class DarmDprsDispatcher : public Dispatcher {
 public:
  using Dispatcher::Dispatcher;

  void OnBatch(DispatchContext* ctx) override {
    // Hold a request back while it still has slack and no cheap (likely
    // shared) placement exists; assign unconditionally once it gets urgent.
    constexpr size_t kScanLimit = 16;
    constexpr double kCheapRatio = 0.6;   // delta <= 60% of the direct cost
    constexpr double kUrgentSlack = 60;   // seconds of pickup slack
    if (ctx->pending.empty()) return;  // drain phase: don't build the index
    std::vector<Vehicle>& fleet = *ctx->fleet;
    const RoadNetwork& net = ctx->engine->network();
    dispatch::CandidateScanner scanner(fleet, net, config_.use_spatial_index);
    for (const Request* r : ctx->pending) {
      double best = kInf;
      size_t best_vehicle = 0;
      Schedule best_schedule;
      for (size_t vi : scanner.Nearest(r->source, kScanLimit)) {
        Vehicle& v = fleet[vi];
        InsertionCandidate cand =
            BestInsertion(v.route_state(ctx->now), v.schedule(), *r,
                          ctx->engine);
        if (cand.feasible && cand.delta_cost < best) {
          best = cand.delta_cost;
          best_vehicle = vi;
          best_schedule = ApplyInsertion(v.schedule(), *r, cand);
        }
      }
      if (best == kInf) continue;  // stays pending until slack runs out
      double slack = r->latest_pickup - ctx->now;
      if (best <= kCheapRatio * r->direct_cost || slack <= kUrgentSlack) {
        if (fleet[best_vehicle].CommitSchedule(best_schedule, ctx->now,
                                               ctx->engine)) {
          ctx->assigned.push_back(r->id);
        }
      }
    }
    NotePeak(ctx->pending.size() * (sizeof(Request*) + sizeof(double)) +
             scanner.MemoryBytes() + kScanLimit * sizeof(size_t));
  }
};

}  // namespace

std::unique_ptr<Dispatcher> MakePruneGdp(const DispatchConfig& config) {
  return std::make_unique<PruneGdpDispatcher>(config);
}
std::unique_ptr<Dispatcher> MakeTicketAssign(const DispatchConfig& config) {
  return std::make_unique<TicketAssignDispatcher>(config);
}
std::unique_ptr<Dispatcher> MakeDarmDprs(const DispatchConfig& config) {
  return std::make_unique<DarmDprsDispatcher>(config);
}

}  // namespace structride
