// The batch comparison methods.
//
//  - GAS: shareability graph over the open pool (the run's incrementally
//    maintained graph when the engine provides one, rebuilt per batch on
//    the frozen reference path), best-of-all-parents group enumeration per
//    vehicle, then a cost-per-rider greedy assignment.
//  - RTV: the request-trip-vehicle pipeline — the same enumeration but
//    exhaustive up to the ILP node cap, with every trip materialized (the
//    memory hog of Fig. 14) and an anytime assignment: penalty-folded
//    greedy over trips plus a per-request improvement pass standing in for
//    the ILP solve (degrading to the incumbent instead of blowing up).
//
// Each method carries two representations of the same algorithm
// (DispatchConfig::soa_pools): the pooled path enumerates into a persistent
// GroupingScratch (SchedulePool-backed), keys conflict sets through the
// RequestSoA id plane instead of hash sets, and stages ordering/selection
// arrays in the batch arena — zero heap allocations per steady-state batch
// once pools are warm — while the legacy path keeps the original per-batch
// containers as the bitwise parity reference. Every enumeration, sort key
// and commit decision is evaluated in the identical order, so the two
// paths reproduce each other exactly on served / unified_cost /
// sp_queries.

#include <algorithm>
#include <optional>
#include <unordered_set>

#include "dispatch/common.h"
#include "dispatch/dispatcher.h"

namespace structride {
namespace {

struct TripCandidate {
  size_t vehicle = 0;
  CandidateGroup group;
};

// Deterministic candidate ordering shared by both methods.
bool OrderCandidates(const TripCandidate& a, const TripCandidate& b,
                     double a_key, double b_key) {
  if (a_key != b_key) return a_key < b_key;
  if (a.vehicle != b.vehicle) return a.vehicle < b.vehicle;
  return a.group.members < b.group.members;
}

// Shared base of the two graph-consuming batch methods: picks the round's
// share graph, keeps the pair-check books, and owns the pooled-path
// persistent state (grouping scratch, fallback arena and SoA views).
class GraphBatchDispatcher : public Dispatcher {
 protected:
  using Dispatcher::Dispatcher;

  // The share graph for one round: the engine-maintained incremental
  // builder when the run provides one (closed requests already retired by
  // lifecycle events; only the fresh slice is folded in here), else
  // \p local after a from-scratch rebuild over the whole pool — the frozen
  // reference path behind DispatchConfig::incremental_sharegraph
  // (DESIGN.md §7). Both paths yield the identical graph over the open
  // set; the incremental one just skips re-checking every pair that
  // already ran in an earlier round. Accounting follows the builder's
  // lifetime: a persistent builder's running total is adopted, a per-batch
  // throwaway's is accumulated.
  ShareGraphBuilder* RoundShareGraph(DispatchContext* ctx,
                                     const std::vector<Request>& pool,
                                     ShareGraphBuilder* local) {
    if (ctx->sharegraph != nullptr) {
      ctx->sharegraph->SyncToPending(ctx->pending);
      SetPairChecks(ctx->sharegraph->pair_checks());
      return ctx->sharegraph;
    }
    local->AddBatch(pool);
    AddPairChecks(local->pair_checks());
    return local;
  }

  // Pooled twin: the throwaway builder is only even constructed on the
  // from-scratch reference path (its per-batch rebuild allocates by
  // design); the request copies it folds in are staged in the batch arena.
  ShareGraphBuilder* RoundShareGraphPooled(
      DispatchContext* ctx, std::optional<ShareGraphBuilder>* local,
      EpochArena* arena) {
    if (ctx->sharegraph != nullptr) {
      ctx->sharegraph->SyncToPending(ctx->pending);
      SetPairChecks(ctx->sharegraph->pair_checks());
      return ctx->sharegraph;
    }
    local->emplace(ctx->engine, config_.sharegraph);
    const size_t n = ctx->pending.size();
    Request* copy = arena->AllocateArray<Request>(n);
    for (size_t i = 0; i < n; ++i) copy[i] = *ctx->pending[i];
    (*local)->AddRequests(Span<const Request>(copy, n));
    AddPairChecks((*local)->pair_checks());
    return &**local;
  }

  EpochArena* BatchArena(DispatchContext* ctx) {
    if (ctx->arena != nullptr) return ctx->arena;
    own_arena_.Reset();
    return &own_arena_;
  }
  const RequestSoA* PendingView(DispatchContext* ctx) {
    if (ctx->pending_soa != nullptr) return ctx->pending_soa;
    pending_soa_.Refresh({ctx->pending.data(), ctx->pending.size()});
    return &pending_soa_;
  }
  const FleetSoA* FleetPlanes(DispatchContext* ctx) {
    if (ctx->fleet_soa != nullptr) return ctx->fleet_soa;
    fleet_soa_.Refresh(ctx->fleet);
    return &fleet_soa_;
  }

  /// Pooled-path persistent state: the enumeration scratch's pool and
  /// vectors stay warm across batches, as do the fallback planes/arena for
  /// callers that provide none.
  GroupingScratch scratch_;

 private:
  EpochArena own_arena_;
  RequestSoA pending_soa_;
  FleetSoA fleet_soa_;
};

class GasDispatcher : public GraphBatchDispatcher {
 public:
  using GraphBatchDispatcher::GraphBatchDispatcher;

  void OnBatch(DispatchContext* ctx) override {
    if (config_.soa_pools) {
      OnBatchPooled(ctx);
    } else {
      OnBatchLegacy(ctx);
    }
  }

 private:
  void OnBatchPooled(DispatchContext* ctx) {
    const FleetView& fleet = ctx->fleet;
    if (ctx->pending.empty()) return;
    EpochArena* arena = BatchArena(ctx);
    const RequestSoA* soa = PendingView(ctx);
    const FleetSoA* fsoa = FleetPlanes(ctx);
    const size_t num_pending = ctx->pending.size();

    std::optional<ShareGraphBuilder> local;
    ShareGraphBuilder* builder = RoundShareGraphPooled(ctx, &local, arena);

    GroupingOptions gopts = config_.grouping;
    gopts.insertion_order = InsertionOrderPolicy::kBestOfAllParents;
    gopts.max_group_size =
        std::min(gopts.max_group_size, config_.vehicle_capacity);

    scratch_.Reset();
    Span<const Request* const> pool(ctx->pending.data(), ctx->pending.size());
    PooledGroupingResult* per_vehicle =
        arena->AllocateArray<PooledGroupingResult>(fleet.size());
    size_t grouping_bytes = 0;
    for (size_t vi = 0; vi < fleet.size(); ++vi) {
      per_vehicle[vi] = PooledGroupingResult{};
      if (!fsoa->in_service[vi]) continue;  // downtime: no new work
      per_vehicle[vi] = EnumerateGroupsPooled(
          fleet[vi].route_state(ctx->now), fleet[vi].schedule().stops(), pool,
          &builder->graph(), ctx->engine, gopts, &scratch_);
      grouping_bytes += PooledGroupingMemoryBytes(scratch_, per_vehicle[vi]);
    }
    const size_t num_cands = scratch_.groups.size();
    size_t* cand_vehicle = arena->AllocateArray<size_t>(num_cands);
    for (size_t vi = 0; vi < fleet.size(); ++vi) {
      for (size_t i = 0; i < per_vehicle[vi].count; ++i) {
        cand_vehicle[per_vehicle[vi].first_group + i] = vi;
      }
    }
    // Same accounting terms as the legacy path, so the metric is
    // representation-invariant.
    NotePeak(builder->MemoryBytes() + grouping_bytes +
             num_cands * sizeof(TripCandidate));

    // (key, vehicle, members) is unique per candidate (best-of-all-parents
    // dedups member sets per vehicle), so this std::sort realizes the
    // legacy OrderCandidates order exactly.
    size_t* order = arena->AllocateArray<size_t>(num_cands);
    for (size_t i = 0; i < num_cands; ++i) order[i] = i;
    std::sort(order, order + num_cands, [&](size_t a, size_t b) {
      const PooledGroup& ga = scratch_.groups[a];
      const PooledGroup& gb = scratch_.groups[b];
      double ka = ga.delta_cost / static_cast<double>(ga.members_len);
      double kb = gb.delta_cost / static_cast<double>(gb.members_len);
      if (ka != kb) return ka < kb;
      if (cand_vehicle[a] != cand_vehicle[b]) {
        return cand_vehicle[a] < cand_vehicle[b];
      }
      Span<const RequestId> ma = scratch_.MembersOf(ga);
      Span<const RequestId> mb = scratch_.MembersOf(gb);
      return std::lexicographical_compare(ma.begin(), ma.end(), mb.begin(),
                                          mb.end());
    });

    // Conflict sets as flat flags over fleet index / pending-pool index
    // (the RequestSoA id plane replaces the legacy hash sets).
    char* used_vehicle = arena->AllocateArray<char>(fleet.size());
    std::fill(used_vehicle, used_vehicle + fleet.size(), 0);
    char* taken = arena->AllocateArray<char>(num_pending);
    std::fill(taken, taken + num_pending, 0);
    for (size_t oi = 0; oi < num_cands; ++oi) {
      const size_t ci = order[oi];
      const PooledGroup& g = scratch_.groups[ci];
      const size_t vi = cand_vehicle[ci];
      if (used_vehicle[vi]) continue;
      bool conflict = false;
      for (RequestId id : scratch_.MembersOf(g)) {
        if (taken[soa->IndexOfId(id)]) {
          conflict = true;
          break;
        }
      }
      if (conflict) continue;
      if (!fleet[vi].CommitStops(scratch_.ScheduleOf(g), ctx->now,
                                 ctx->engine)) {
        continue;
      }
      used_vehicle[vi] = 1;
      for (RequestId id : scratch_.MembersOf(g)) {
        taken[soa->IndexOfId(id)] = 1;
        ctx->assigned.push_back(id);
      }
    }
  }

  void OnBatchLegacy(DispatchContext* ctx) {
    const FleetView& fleet = ctx->fleet;
    std::vector<Request> pool;
    pool.reserve(ctx->pending.size());
    for (const Request* r : ctx->pending) pool.push_back(*r);
    if (pool.empty()) return;

    ShareGraphBuilder local(ctx->engine, config_.sharegraph);
    ShareGraphBuilder* builder = RoundShareGraph(ctx, pool, &local);

    GroupingOptions gopts = config_.grouping;
    gopts.insertion_order = InsertionOrderPolicy::kBestOfAllParents;
    gopts.max_group_size =
        std::min(gopts.max_group_size, config_.vehicle_capacity);

    std::vector<TripCandidate> candidates;
    size_t grouping_bytes = 0;
    for (size_t vi = 0; vi < fleet.size(); ++vi) {
      if (!fleet[vi].in_service()) continue;  // downtime: no new work
      GroupingResult res =
          EnumerateGroups(fleet[vi].route_state(ctx->now), fleet[vi].schedule(),
                          pool, &builder->graph(), ctx->engine, gopts);
      grouping_bytes += GroupingMemoryBytes(res);
      for (CandidateGroup& g : res.groups) {
        candidates.push_back({vi, std::move(g)});
      }
    }
    NotePeak(builder->MemoryBytes() + grouping_bytes +
             candidates.size() * sizeof(TripCandidate));

    std::sort(candidates.begin(), candidates.end(),
              [](const TripCandidate& a, const TripCandidate& b) {
                return OrderCandidates(
                    a, b,
                    a.group.delta_cost / static_cast<double>(a.group.members.size()),
                    b.group.delta_cost / static_cast<double>(b.group.members.size()));
              });

    std::unordered_set<size_t> used_vehicles;
    std::unordered_set<RequestId> taken;
    for (const TripCandidate& c : candidates) {
      if (used_vehicles.count(c.vehicle)) continue;
      bool conflict = false;
      for (RequestId id : c.group.members) {
        if (taken.count(id)) {
          conflict = true;
          break;
        }
      }
      if (conflict) continue;
      if (!fleet[c.vehicle].CommitSchedule(c.group.schedule, ctx->now,
                                           ctx->engine)) {
        continue;
      }
      used_vehicles.insert(c.vehicle);
      for (RequestId id : c.group.members) {
        taken.insert(id);
        ctx->assigned.push_back(id);
      }
    }
  }
};

class RtvDispatcher : public GraphBatchDispatcher {
 public:
  using GraphBatchDispatcher::GraphBatchDispatcher;

  void OnBatch(DispatchContext* ctx) override {
    if (config_.soa_pools) {
      OnBatchPooled(ctx);
    } else {
      OnBatchLegacy(ctx);
    }
  }

 private:
  void OnBatchPooled(DispatchContext* ctx) {
    const FleetView& fleet = ctx->fleet;
    if (ctx->pending.empty()) return;
    EpochArena* arena = BatchArena(ctx);
    const RequestSoA* soa = PendingView(ctx);
    const FleetSoA* fsoa = FleetPlanes(ctx);
    const size_t num_pending = ctx->pending.size();

    // RR edges (the shareability graph) and per-vehicle trip enumeration.
    std::optional<ShareGraphBuilder> local;
    ShareGraphBuilder* builder = RoundShareGraphPooled(ctx, &local, arena);

    GroupingOptions gopts = config_.grouping;
    gopts.insertion_order = InsertionOrderPolicy::kBestOfAllParents;
    gopts.max_group_size = config_.vehicle_capacity;

    scratch_.Reset();
    Span<const Request* const> pool(ctx->pending.data(), ctx->pending.size());
    PooledGroupingResult* per_vehicle =
        arena->AllocateArray<PooledGroupingResult>(fleet.size());
    for (size_t vi = 0; vi < fleet.size(); ++vi) {
      per_vehicle[vi] = PooledGroupingResult{};
    }
    int64_t node_budget = config_.ilp_node_cap;
    for (size_t vi = 0; vi < fleet.size() && node_budget > 0; ++vi) {
      if (!fsoa->in_service[vi]) continue;  // downtime: no new work
      gopts.max_groups = static_cast<size_t>(node_budget);
      per_vehicle[vi] = EnumerateGroupsPooled(
          fleet[vi].route_state(ctx->now), fleet[vi].schedule().stops(), pool,
          &builder->graph(), ctx->engine, gopts, &scratch_);
      node_budget -= static_cast<int64_t>(per_vehicle[vi].count);
    }
    const size_t num_trips = scratch_.groups.size();
    size_t* trip_vehicle = arena->AllocateArray<size_t>(num_trips);
    for (size_t vi = 0; vi < fleet.size(); ++vi) {
      for (size_t i = 0; i < per_vehicle[vi].count; ++i) {
        trip_vehicle[per_vehicle[vi].first_group + i] = vi;
      }
    }
    // Same accounting terms as the legacy path (every trip materialized —
    // the memory hog the figure is about), representation-invariant.
    size_t trip_bytes = num_trips * sizeof(TripCandidate);
    for (const PooledGroup& g : scratch_.groups) {
      trip_bytes += g.members_len * sizeof(RequestId) +
                    scratch_.ScheduleOf(g).size() * sizeof(Stop);
    }
    NotePeak(builder->MemoryBytes() + trip_bytes);

    // The assignment objective folds the unassignment penalty in: picking a
    // trip saves penalty * sum(direct costs) against its extra travel. The
    // RequestSoA direct plane replaces the legacy id->direct hash map.
    // Decorate-sort: one net cost per trip, not one per comparison.
    double* net = arena->AllocateArray<double>(num_trips);
    size_t* order = arena->AllocateArray<size_t>(num_trips);
    for (size_t i = 0; i < num_trips; ++i) {
      const PooledGroup& g = scratch_.groups[i];
      double saved = 0;
      for (RequestId id : scratch_.MembersOf(g)) {
        saved += soa->direct[soa->IndexOfId(id)];
      }
      net[i] = g.delta_cost - config_.penalty_coefficient * saved;
      order[i] = i;
    }
    std::sort(order, order + num_trips, [&](size_t a, size_t b) {
      if (net[a] != net[b]) return net[a] < net[b];
      if (trip_vehicle[a] != trip_vehicle[b]) {
        return trip_vehicle[a] < trip_vehicle[b];
      }
      Span<const RequestId> ma = scratch_.MembersOf(scratch_.groups[a]);
      Span<const RequestId> mb = scratch_.MembersOf(scratch_.groups[b]);
      return std::lexicographical_compare(ma.begin(), ma.end(), mb.begin(),
                                          mb.end());
    });

    char* used_vehicle = arena->AllocateArray<char>(fleet.size());
    std::fill(used_vehicle, used_vehicle + fleet.size(), 0);
    char* taken = arena->AllocateArray<char>(num_pending);
    std::fill(taken, taken + num_pending, 0);
    for (size_t oi = 0; oi < num_trips; ++oi) {
      const size_t ti = order[oi];
      if (net[ti] >= 0) break;  // remaining trips cannot help
      const PooledGroup& g = scratch_.groups[ti];
      const size_t vi = trip_vehicle[ti];
      if (used_vehicle[vi]) continue;
      bool conflict = false;
      for (RequestId id : scratch_.MembersOf(g)) {
        if (taken[soa->IndexOfId(id)]) {
          conflict = true;
          break;
        }
      }
      if (conflict) continue;
      if (!fleet[vi].CommitStops(scratch_.ScheduleOf(g), ctx->now,
                                 ctx->engine)) {
        continue;
      }
      used_vehicle[vi] = 1;
      for (RequestId id : scratch_.MembersOf(g)) {
        taken[soa->IndexOfId(id)] = 1;
        ctx->assigned.push_back(id);
      }
    }

    // Improvement pass (the anytime stand-in for the ILP): leftover requests
    // get a plain best-insertion over the whole fleet, including vehicles
    // already extended this round. The winning schedule is materialized
    // only once per committed request (ApplyInsertion issues no engine
    // queries, so deferring it past the scan changes nothing).
    for (size_t ri = 0; ri < num_pending; ++ri) {
      if (taken[ri]) continue;
      const Request& r = *ctx->pending[ri];
      double best = std::numeric_limits<double>::infinity();
      size_t best_vehicle = 0;
      InsertionCandidate best_cand;
      for (size_t vi = 0; vi < fleet.size(); ++vi) {
        if (!fsoa->in_service[vi]) continue;
        InsertionCandidate cand =
            BestInsertion(fleet[vi].route_state(ctx->now),
                          fleet[vi].schedule().stops(), r, ctx->engine);
        if (cand.feasible && cand.delta_cost < best) {
          best = cand.delta_cost;
          best_vehicle = vi;
          best_cand = cand;
        }
      }
      if (best < config_.penalty_coefficient * r.direct_cost) {
        ArenaScope scope(ScratchArena());
        const std::vector<Stop>& cur = fleet[best_vehicle].schedule().stops();
        Stop* staged = scope.AllocateArray<Stop>(cur.size() + 2);
        size_t len = ApplyInsertionInto(cur, r, best_cand, staged);
        if (fleet[best_vehicle].CommitStops({staged, len}, ctx->now,
                                            ctx->engine)) {
          taken[ri] = 1;
          ctx->assigned.push_back(r.id);
        }
      }
    }
  }

  void OnBatchLegacy(DispatchContext* ctx) {
    const FleetView& fleet = ctx->fleet;
    std::vector<Request> pool;
    pool.reserve(ctx->pending.size());
    for (const Request* r : ctx->pending) pool.push_back(*r);
    if (pool.empty()) return;

    // RR edges (the shareability graph) and per-vehicle trip enumeration.
    ShareGraphBuilder local(ctx->engine, config_.sharegraph);
    ShareGraphBuilder* builder = RoundShareGraph(ctx, pool, &local);

    GroupingOptions gopts = config_.grouping;
    gopts.insertion_order = InsertionOrderPolicy::kBestOfAllParents;
    gopts.max_group_size = config_.vehicle_capacity;

    std::vector<TripCandidate> trips;
    int64_t node_budget = config_.ilp_node_cap;
    for (size_t vi = 0; vi < fleet.size() && node_budget > 0; ++vi) {
      if (!fleet[vi].in_service()) continue;  // downtime: no new work
      gopts.max_groups = static_cast<size_t>(node_budget);
      GroupingResult res =
          EnumerateGroups(fleet[vi].route_state(ctx->now), fleet[vi].schedule(),
                          pool, &builder->graph(), ctx->engine, gopts);
      node_budget -= static_cast<int64_t>(res.groups.size());
      for (CandidateGroup& g : res.groups) {
        trips.push_back({vi, std::move(g)});
      }
    }
    size_t trip_bytes = trips.size() * sizeof(TripCandidate);
    for (const TripCandidate& t : trips) {
      trip_bytes += t.group.members.size() * sizeof(RequestId) +
                    t.group.schedule.size() * sizeof(Stop);
    }
    NotePeak(builder->MemoryBytes() + trip_bytes);

    // The assignment objective folds the unassignment penalty in: picking a
    // trip saves penalty * sum(direct costs) against its extra travel.
    std::unordered_map<RequestId, double> direct;
    for (const Request& r : pool) direct[r.id] = r.direct_cost;
    // Decorate-sort: one net cost per trip, not one per comparison.
    std::vector<double> net(trips.size());
    std::vector<size_t> order(trips.size());
    for (size_t i = 0; i < trips.size(); ++i) {
      double saved = 0;
      for (RequestId id : trips[i].group.members) saved += direct[id];
      net[i] = trips[i].group.delta_cost - config_.penalty_coefficient * saved;
      order[i] = i;
    }
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return OrderCandidates(trips[a], trips[b], net[a], net[b]);
    });

    std::unordered_set<size_t> used_vehicles;
    std::unordered_set<RequestId> taken;
    for (size_t i : order) {
      const TripCandidate& t = trips[i];
      if (net[i] >= 0) break;  // remaining trips cannot help
      if (used_vehicles.count(t.vehicle)) continue;
      bool conflict = false;
      for (RequestId id : t.group.members) {
        if (taken.count(id)) {
          conflict = true;
          break;
        }
      }
      if (conflict) continue;
      if (!fleet[t.vehicle].CommitSchedule(t.group.schedule, ctx->now,
                                           ctx->engine)) {
        continue;
      }
      used_vehicles.insert(t.vehicle);
      for (RequestId id : t.group.members) {
        taken.insert(id);
        ctx->assigned.push_back(id);
      }
    }

    // Improvement pass (the anytime stand-in for the ILP): leftover requests
    // get a plain best-insertion over the whole fleet, including vehicles
    // already extended this round.
    for (const Request& r : pool) {
      if (taken.count(r.id)) continue;
      double best = std::numeric_limits<double>::infinity();
      size_t best_vehicle = 0;
      Schedule best_schedule;
      for (size_t vi = 0; vi < fleet.size(); ++vi) {
        if (!fleet[vi].in_service()) continue;
        InsertionCandidate cand =
            BestInsertion(fleet[vi].route_state(ctx->now), fleet[vi].schedule(),
                          r, ctx->engine);
        if (cand.feasible && cand.delta_cost < best) {
          best = cand.delta_cost;
          best_vehicle = vi;
          best_schedule = ApplyInsertion(fleet[vi].schedule(), r, cand);
        }
      }
      if (best < config_.penalty_coefficient * r.direct_cost &&
          fleet[best_vehicle].CommitSchedule(best_schedule, ctx->now,
                                             ctx->engine)) {
        taken.insert(r.id);
        ctx->assigned.push_back(r.id);
      }
    }
  }
};

}  // namespace

std::unique_ptr<Dispatcher> MakeGas(const DispatchConfig& config) {
  return std::make_unique<GasDispatcher>(config);
}
std::unique_ptr<Dispatcher> MakeRtv(const DispatchConfig& config) {
  return std::make_unique<RtvDispatcher>(config);
}

}  // namespace structride
