// The batch comparison methods.
//
//  - GAS: shareability graph over the open pool (the run's incrementally
//    maintained graph when the engine provides one, rebuilt per batch on
//    the frozen reference path), best-of-all-parents group enumeration per
//    vehicle, then a cost-per-rider greedy assignment.
//  - RTV: the request-trip-vehicle pipeline — the same enumeration but
//    exhaustive up to the ILP node cap, with every trip materialized (the
//    memory hog of Fig. 14) and an anytime assignment: penalty-folded
//    greedy over trips plus a per-request improvement pass standing in for
//    the ILP solve (degrading to the incumbent instead of blowing up).

#include <algorithm>
#include <unordered_set>

#include "dispatch/common.h"
#include "dispatch/dispatcher.h"

namespace structride {
namespace {

struct TripCandidate {
  size_t vehicle = 0;
  CandidateGroup group;
};

// Deterministic candidate ordering shared by both methods.
bool OrderCandidates(const TripCandidate& a, const TripCandidate& b,
                     double a_key, double b_key) {
  if (a_key != b_key) return a_key < b_key;
  if (a.vehicle != b.vehicle) return a.vehicle < b.vehicle;
  return a.group.members < b.group.members;
}

// Shared base of the two graph-consuming batch methods: picks the round's
// share graph and keeps the pair-check books.
class GraphBatchDispatcher : public Dispatcher {
 protected:
  using Dispatcher::Dispatcher;

  // The share graph for one round: the engine-maintained incremental
  // builder when the run provides one (closed requests already retired by
  // lifecycle events; only the fresh slice is folded in here), else
  // \p local after a from-scratch rebuild over the whole pool — the frozen
  // reference path behind DispatchConfig::incremental_sharegraph
  // (DESIGN.md §7). Both paths yield the identical graph over the open
  // set; the incremental one just skips re-checking every pair that
  // already ran in an earlier round. Accounting follows the builder's
  // lifetime: a persistent builder's running total is adopted, a per-batch
  // throwaway's is accumulated.
  ShareGraphBuilder* RoundShareGraph(DispatchContext* ctx,
                                     const std::vector<Request>& pool,
                                     ShareGraphBuilder* local) {
    if (ctx->sharegraph != nullptr) {
      ctx->sharegraph->SyncToPending(ctx->pending);
      SetPairChecks(ctx->sharegraph->pair_checks());
      return ctx->sharegraph;
    }
    local->AddBatch(pool);
    AddPairChecks(local->pair_checks());
    return local;
  }
};

class GasDispatcher : public GraphBatchDispatcher {
 public:
  using GraphBatchDispatcher::GraphBatchDispatcher;

  void OnBatch(DispatchContext* ctx) override {
    std::vector<Vehicle>& fleet = *ctx->fleet;
    std::vector<Request> pool;
    pool.reserve(ctx->pending.size());
    for (const Request* r : ctx->pending) pool.push_back(*r);
    if (pool.empty()) return;

    ShareGraphBuilder local(ctx->engine, config_.sharegraph);
    ShareGraphBuilder* builder = RoundShareGraph(ctx, pool, &local);

    GroupingOptions gopts = config_.grouping;
    gopts.insertion_order = InsertionOrderPolicy::kBestOfAllParents;
    gopts.max_group_size =
        std::min(gopts.max_group_size, config_.vehicle_capacity);

    std::vector<TripCandidate> candidates;
    size_t grouping_bytes = 0;
    for (size_t vi = 0; vi < fleet.size(); ++vi) {
      if (!fleet[vi].in_service()) continue;  // downtime: no new work
      GroupingResult res =
          EnumerateGroups(fleet[vi].route_state(ctx->now), fleet[vi].schedule(),
                          pool, &builder->graph(), ctx->engine, gopts);
      grouping_bytes += GroupingMemoryBytes(res);
      for (CandidateGroup& g : res.groups) {
        candidates.push_back({vi, std::move(g)});
      }
    }
    NotePeak(builder->MemoryBytes() + grouping_bytes +
             candidates.size() * sizeof(TripCandidate));

    std::sort(candidates.begin(), candidates.end(),
              [](const TripCandidate& a, const TripCandidate& b) {
                return OrderCandidates(
                    a, b,
                    a.group.delta_cost / static_cast<double>(a.group.members.size()),
                    b.group.delta_cost / static_cast<double>(b.group.members.size()));
              });

    std::unordered_set<size_t> used_vehicles;
    std::unordered_set<RequestId> taken;
    for (const TripCandidate& c : candidates) {
      if (used_vehicles.count(c.vehicle)) continue;
      bool conflict = false;
      for (RequestId id : c.group.members) {
        if (taken.count(id)) {
          conflict = true;
          break;
        }
      }
      if (conflict) continue;
      if (!fleet[c.vehicle].CommitSchedule(c.group.schedule, ctx->now,
                                           ctx->engine)) {
        continue;
      }
      used_vehicles.insert(c.vehicle);
      for (RequestId id : c.group.members) {
        taken.insert(id);
        ctx->assigned.push_back(id);
      }
    }
  }
};

class RtvDispatcher : public GraphBatchDispatcher {
 public:
  using GraphBatchDispatcher::GraphBatchDispatcher;

  void OnBatch(DispatchContext* ctx) override {
    std::vector<Vehicle>& fleet = *ctx->fleet;
    std::vector<Request> pool;
    pool.reserve(ctx->pending.size());
    for (const Request* r : ctx->pending) pool.push_back(*r);
    if (pool.empty()) return;

    // RR edges (the shareability graph) and per-vehicle trip enumeration.
    ShareGraphBuilder local(ctx->engine, config_.sharegraph);
    ShareGraphBuilder* builder = RoundShareGraph(ctx, pool, &local);

    GroupingOptions gopts = config_.grouping;
    gopts.insertion_order = InsertionOrderPolicy::kBestOfAllParents;
    gopts.max_group_size = config_.vehicle_capacity;

    std::vector<TripCandidate> trips;
    int64_t node_budget = config_.ilp_node_cap;
    for (size_t vi = 0; vi < fleet.size() && node_budget > 0; ++vi) {
      if (!fleet[vi].in_service()) continue;  // downtime: no new work
      gopts.max_groups = static_cast<size_t>(node_budget);
      GroupingResult res =
          EnumerateGroups(fleet[vi].route_state(ctx->now), fleet[vi].schedule(),
                          pool, &builder->graph(), ctx->engine, gopts);
      node_budget -= static_cast<int64_t>(res.groups.size());
      for (CandidateGroup& g : res.groups) {
        trips.push_back({vi, std::move(g)});
      }
    }
    size_t trip_bytes = trips.size() * sizeof(TripCandidate);
    for (const TripCandidate& t : trips) {
      trip_bytes += t.group.members.size() * sizeof(RequestId) +
                    t.group.schedule.size() * sizeof(Stop);
    }
    NotePeak(builder->MemoryBytes() + trip_bytes);

    // The assignment objective folds the unassignment penalty in: picking a
    // trip saves penalty * sum(direct costs) against its extra travel.
    std::unordered_map<RequestId, double> direct;
    for (const Request& r : pool) direct[r.id] = r.direct_cost;
    // Decorate-sort: one net cost per trip, not one per comparison.
    std::vector<double> net(trips.size());
    std::vector<size_t> order(trips.size());
    for (size_t i = 0; i < trips.size(); ++i) {
      double saved = 0;
      for (RequestId id : trips[i].group.members) saved += direct[id];
      net[i] = trips[i].group.delta_cost - config_.penalty_coefficient * saved;
      order[i] = i;
    }
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return OrderCandidates(trips[a], trips[b], net[a], net[b]);
    });

    std::unordered_set<size_t> used_vehicles;
    std::unordered_set<RequestId> taken;
    for (size_t i : order) {
      const TripCandidate& t = trips[i];
      if (net[i] >= 0) break;  // remaining trips cannot help
      if (used_vehicles.count(t.vehicle)) continue;
      bool conflict = false;
      for (RequestId id : t.group.members) {
        if (taken.count(id)) {
          conflict = true;
          break;
        }
      }
      if (conflict) continue;
      if (!fleet[t.vehicle].CommitSchedule(t.group.schedule, ctx->now,
                                           ctx->engine)) {
        continue;
      }
      used_vehicles.insert(t.vehicle);
      for (RequestId id : t.group.members) {
        taken.insert(id);
        ctx->assigned.push_back(id);
      }
    }

    // Improvement pass (the anytime stand-in for the ILP): leftover requests
    // get a plain best-insertion over the whole fleet, including vehicles
    // already extended this round.
    for (const Request& r : pool) {
      if (taken.count(r.id)) continue;
      double best = std::numeric_limits<double>::infinity();
      size_t best_vehicle = 0;
      Schedule best_schedule;
      for (size_t vi = 0; vi < fleet.size(); ++vi) {
        if (!fleet[vi].in_service()) continue;
        InsertionCandidate cand =
            BestInsertion(fleet[vi].route_state(ctx->now), fleet[vi].schedule(),
                          r, ctx->engine);
        if (cand.feasible && cand.delta_cost < best) {
          best = cand.delta_cost;
          best_vehicle = vi;
          best_schedule = ApplyInsertion(fleet[vi].schedule(), r, cand);
        }
      }
      if (best < config_.penalty_coefficient * r.direct_cost &&
          fleet[best_vehicle].CommitSchedule(best_schedule, ctx->now,
                                             ctx->engine)) {
        taken.insert(r.id);
        ctx->assigned.push_back(r.id);
      }
    }
  }
};

}  // namespace

std::unique_ptr<Dispatcher> MakeGas(const DispatchConfig& config) {
  return std::make_unique<GasDispatcher>(config);
}
std::unique_ptr<Dispatcher> MakeRtv(const DispatchConfig& config) {
  return std::make_unique<RtvDispatcher>(config);
}

}  // namespace structride
