#include "dispatch/common.h"

#include <algorithm>

namespace structride {
namespace dispatch {

std::vector<size_t> VehiclesByDistance(const FleetView& fleet,
                                       const RoadNetwork& net, NodeId from) {
  std::vector<size_t> order;
  order.reserve(fleet.size());
  std::vector<double> dist(fleet.size());
  for (size_t i = 0; i < fleet.size(); ++i) {
    if (!fleet[i].in_service()) continue;  // scenario downtime: no new work
    order.push_back(i);
    dist[i] = net.EuclidLowerBound(fleet[i].node(), from);
  }
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (dist[a] != dist[b]) return dist[a] < dist[b];
    return a < b;
  });
  return order;
}

std::vector<size_t> VehiclesByDistance(const std::vector<Vehicle>& fleet,
                                       const RoadNetwork& net, NodeId from) {
  // Read-only delegation; nothing mutates through the view.
  return VehiclesByDistance(
      FleetView(const_cast<std::vector<Vehicle>*>(&fleet)), net, from);
}

void CandidateScanner::Rebuild(const FleetView& fleet, const RoadNetwork& net,
                               bool use_index) {
  fleet_ = fleet;
  net_ = &net;
  use_index_ = use_index;
  if (use_index_) index_.Rebuild(fleet, net);
}

void CandidateScanner::Rebuild(const std::vector<Vehicle>& fleet,
                               const RoadNetwork& net, bool use_index) {
  Rebuild(FleetView(const_cast<std::vector<Vehicle>*>(&fleet)), net,
          use_index);
}

std::vector<size_t> CandidateScanner::Nearest(NodeId from, size_t k) const {
  if (use_index_) return index_.KNearest(from, k);
  std::vector<size_t> order = VehiclesByDistance(fleet_, *net_, from);
  if (order.size() > k) order.resize(k);
  return order;
}

std::vector<size_t> CandidateScanner::NearestWithin(NodeId from, size_t k,
                                                    double max_dist) const {
  if (use_index_) return index_.KNearestWithin(from, k, max_dist);
  std::vector<size_t> order = VehiclesByDistance(fleet_, *net_, from);
  std::vector<size_t> out;
  for (size_t vi : order) {
    if (out.size() >= k) break;
    if (net_->EuclidLowerBound(fleet_[vi].node(), from) > max_dist) break;
    out.push_back(vi);
  }
  return out;
}

size_t CandidateScanner::NearestInto(NodeId from, size_t k,
                                     size_t* out) const {
  if (use_index_) return index_.KNearestInto(from, k, out);
  std::vector<size_t> order = Nearest(from, k);  // legacy path may allocate
  std::copy(order.begin(), order.end(), out);
  return order.size();
}

size_t CandidateScanner::NearestWithinInto(NodeId from, size_t k,
                                           double max_dist,
                                           size_t* out) const {
  if (use_index_) return index_.KNearestWithinInto(from, k, max_dist, out);
  std::vector<size_t> order = NearestWithin(from, k, max_dist);
  std::copy(order.begin(), order.end(), out);
  return order.size();
}

GroupInsertion InsertGroupSequential(const RouteState& state,
                                     const Schedule& committed,
                                     const std::vector<const Request*>& members,
                                     TravelCostEngine* engine) {
  GroupInsertion out;
  Schedule schedule = committed;
  double delta = 0;
  for (const Request* r : members) {
    InsertionCandidate cand = BestInsertion(state, schedule, *r, engine);
    if (!cand.feasible) return out;
    schedule = ApplyInsertion(schedule, *r, cand);
    delta += cand.delta_cost;
  }
  out.feasible = true;
  out.delta_cost = delta;
  out.schedule = std::move(schedule);
  return out;
}

PooledGroupInsertion InsertGroupSequentialPooled(
    const RouteState& state, Span<const Stop> committed,
    Span<const Request* const> members, TravelCostEngine* engine,
    EpochArena* arena) {
  PooledGroupInsertion out;
  const size_t final_len = committed.size() + 2 * members.size();
  Stop* bufs[2] = {arena->AllocateArray<Stop>(final_len),
                   arena->AllocateArray<Stop>(final_len)};
  Span<const Stop> cur = committed;
  int which = 0;
  double delta = 0;
  for (const Request* r : members) {
    InsertionCandidate cand = BestInsertion(state, cur, *r, engine);
    if (!cand.feasible) return out;
    size_t len = ApplyInsertionInto(cur, *r, cand, bufs[which]);
    cur = {bufs[which], len};
    which ^= 1;
    delta += cand.delta_cost;
  }
  out.feasible = true;
  out.delta_cost = delta;
  out.stops = cur.data();
  out.len = cur.size();
  return out;
}

}  // namespace dispatch
}  // namespace structride
