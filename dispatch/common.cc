#include "dispatch/common.h"

#include <algorithm>
#include <numeric>

namespace structride {
namespace dispatch {

std::vector<size_t> VehiclesByDistance(const std::vector<Vehicle>& fleet,
                                       const RoadNetwork& net, NodeId from) {
  std::vector<size_t> order;
  order.reserve(fleet.size());
  std::vector<double> dist(fleet.size());
  for (size_t i = 0; i < fleet.size(); ++i) {
    if (!fleet[i].in_service()) continue;  // scenario downtime: no new work
    order.push_back(i);
    dist[i] = net.EuclidLowerBound(fleet[i].node(), from);
  }
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (dist[a] != dist[b]) return dist[a] < dist[b];
    return a < b;
  });
  return order;
}

CandidateScanner::CandidateScanner(const std::vector<Vehicle>& fleet,
                                   const RoadNetwork& net, bool use_index)
    : fleet_(&fleet), net_(&net) {
  if (use_index) index_ = std::make_unique<FleetSpatialIndex>(fleet, net);
}

std::vector<size_t> CandidateScanner::Nearest(NodeId from, size_t k) const {
  if (index_) return index_->KNearest(from, k);
  std::vector<size_t> order = VehiclesByDistance(*fleet_, *net_, from);
  if (order.size() > k) order.resize(k);
  return order;
}

std::vector<size_t> CandidateScanner::NearestWithin(NodeId from, size_t k,
                                                    double max_dist) const {
  if (index_) return index_->KNearestWithin(from, k, max_dist);
  std::vector<size_t> order = VehiclesByDistance(*fleet_, *net_, from);
  std::vector<size_t> out;
  for (size_t vi : order) {
    if (out.size() >= k) break;
    if (net_->EuclidLowerBound((*fleet_)[vi].node(), from) > max_dist) break;
    out.push_back(vi);
  }
  return out;
}

size_t CandidateScanner::MemoryBytes() const {
  return index_ ? index_->MemoryBytes() : 0;
}

GroupInsertion InsertGroupSequential(const RouteState& state,
                                     const Schedule& committed,
                                     const std::vector<const Request*>& members,
                                     TravelCostEngine* engine) {
  GroupInsertion out;
  Schedule schedule = committed;
  double delta = 0;
  for (const Request* r : members) {
    InsertionCandidate cand = BestInsertion(state, schedule, *r, engine);
    if (!cand.feasible) return out;
    schedule = ApplyInsertion(schedule, *r, cand);
    delta += cand.delta_cost;
  }
  out.feasible = true;
  out.delta_cost = delta;
  out.schedule = std::move(schedule);
  return out;
}

}  // namespace dispatch
}  // namespace structride
