// Helpers shared by the dispatcher implementations.

#pragma once

#include <vector>

#include "core/insertion.h"
#include "core/vehicle.h"
#include "dispatch/spatial_index.h"
#include "util/arena.h"

namespace structride {
namespace dispatch {

/// In-service view-local fleet indices sorted by straight-line distance from
/// \p from (ties by vehicle index, so orderings are deterministic); vehicles
/// a scenario pulled out of service are omitted. The legacy full-fleet scan:
/// O(F log F) per call. Kept as the spatial index's ground truth and as the
/// serial baseline behind `DispatchConfig::use_spatial_index=false`. Under
/// geo-sharding the view restricts the scan to one shard's residents.
std::vector<size_t> VehiclesByDistance(const FleetView& fleet,
                                       const RoadNetwork& net, NodeId from);
std::vector<size_t> VehiclesByDistance(const std::vector<Vehicle>& fleet,
                                       const RoadNetwork& net, NodeId from);

/// Per-batch nearest-candidate scanner. Rebuilt once per batch from the
/// batch-start fleet positions; answers from the grid-bucket index when
/// enabled, or from the legacy full sort when not. Both paths return the
/// identical (distance, index)-ordered prefix, so the knob only moves time.
/// A persistent instance reuses the index's planes across Rebuild calls —
/// steady-state batches rebuild without heap allocation — and the *Into
/// query variants answer into caller buffers.
class CandidateScanner {
 public:
  CandidateScanner() = default;
  CandidateScanner(const FleetView& fleet, const RoadNetwork& net,
                   bool use_index) {
    Rebuild(fleet, net, use_index);
  }
  CandidateScanner(const std::vector<Vehicle>& fleet, const RoadNetwork& net,
                   bool use_index) {
    Rebuild(fleet, net, use_index);
  }

  void Rebuild(const FleetView& fleet, const RoadNetwork& net, bool use_index);
  void Rebuild(const std::vector<Vehicle>& fleet, const RoadNetwork& net,
               bool use_index);

  /// The k nearest fleet indices to \p from.
  std::vector<size_t> Nearest(NodeId from, size_t k) const;

  /// Fleet indices with straight-line distance <= \p max_dist, nearest
  /// first, capped at \p k.
  std::vector<size_t> NearestWithin(NodeId from, size_t k,
                                    double max_dist) const;

  /// Allocation-free twins (on the indexed path): write up to \p k fleet
  /// indices into \p out (room for k), return the count. Safe to call from
  /// concurrent workers — staging uses the calling thread's scratch arena.
  size_t NearestInto(NodeId from, size_t k, size_t* out) const;
  size_t NearestWithinInto(NodeId from, size_t k, double max_dist,
                           size_t* out) const;

  size_t MemoryBytes() const { return use_index_ ? index_.MemoryBytes() : 0; }

 private:
  FleetView fleet_;
  const RoadNetwork* net_ = nullptr;
  bool use_index_ = false;
  FleetSpatialIndex index_;
};

struct GroupInsertion {
  bool feasible = false;
  double delta_cost = 0;
  Schedule schedule;
};

/// Linear insertion of \p members, in the given order, into \p committed
/// evaluated from \p state; infeasible if any member fails.
GroupInsertion InsertGroupSequential(const RouteState& state,
                                     const Schedule& committed,
                                     const std::vector<const Request*>& members,
                                     TravelCostEngine* engine);

/// Pooled result: the stop sequence lives in the arena passed to
/// InsertGroupSequentialPooled, valid until that arena rewinds.
struct PooledGroupInsertion {
  bool feasible = false;
  double delta_cost = 0;
  const Stop* stops = nullptr;
  size_t len = 0;
};

/// The allocation-free twin of InsertGroupSequential: identical insertions
/// in identical order (hence identical feasibility, delta and travel-cost
/// query sequence), with every intermediate stage ping-ponged between two
/// \p arena blocks instead of materialized as a Schedule.
PooledGroupInsertion InsertGroupSequentialPooled(
    const RouteState& state, Span<const Stop> committed,
    Span<const Request* const> members, TravelCostEngine* engine,
    EpochArena* arena);

}  // namespace dispatch
}  // namespace structride
