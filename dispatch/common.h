// Helpers shared by the dispatcher implementations.

#pragma once

#include <vector>

#include "core/insertion.h"
#include "core/vehicle.h"

namespace structride {
namespace dispatch {

/// Fleet indices sorted by straight-line distance from \p from (ties by
/// vehicle index, so orderings are deterministic).
std::vector<size_t> VehiclesByDistance(const std::vector<Vehicle>& fleet,
                                       const RoadNetwork& net, NodeId from);

struct GroupInsertion {
  bool feasible = false;
  double delta_cost = 0;
  Schedule schedule;
};

/// Linear insertion of \p members, in the given order, into \p committed
/// evaluated from \p state; infeasible if any member fails.
GroupInsertion InsertGroupSequential(const RouteState& state,
                                     const Schedule& committed,
                                     const std::vector<const Request*>& members,
                                     TravelCostEngine* engine);

}  // namespace dispatch
}  // namespace structride
