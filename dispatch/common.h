// Helpers shared by the dispatcher implementations.

#pragma once

#include <memory>
#include <vector>

#include "core/insertion.h"
#include "core/vehicle.h"
#include "dispatch/spatial_index.h"

namespace structride {
namespace dispatch {

/// In-service fleet indices sorted by straight-line distance from \p from
/// (ties by vehicle index, so orderings are deterministic); vehicles a
/// scenario pulled out of service are omitted. The legacy full-fleet scan:
/// O(F log F) per call. Kept as the spatial index's ground truth and as the
/// serial baseline behind `DispatchConfig::use_spatial_index=false`.
std::vector<size_t> VehiclesByDistance(const std::vector<Vehicle>& fleet,
                                       const RoadNetwork& net, NodeId from);

/// Per-batch nearest-candidate scanner. Built once per batch from the
/// batch-start fleet positions; answers from the grid-bucket index when
/// enabled, or from the legacy full sort when not. Both paths return the
/// identical (distance, index)-ordered prefix, so the knob only moves time.
class CandidateScanner {
 public:
  CandidateScanner(const std::vector<Vehicle>& fleet, const RoadNetwork& net,
                   bool use_index);

  /// The k nearest fleet indices to \p from.
  std::vector<size_t> Nearest(NodeId from, size_t k) const;

  /// Fleet indices with straight-line distance <= \p max_dist, nearest
  /// first, capped at \p k.
  std::vector<size_t> NearestWithin(NodeId from, size_t k,
                                    double max_dist) const;

  size_t MemoryBytes() const;

 private:
  const std::vector<Vehicle>* fleet_;
  const RoadNetwork* net_;
  std::unique_ptr<FleetSpatialIndex> index_;  ///< null on the legacy path
};

struct GroupInsertion {
  bool feasible = false;
  double delta_cost = 0;
  Schedule schedule;
};

/// Linear insertion of \p members, in the given order, into \p committed
/// evaluated from \p state; infeasible if any member fails.
GroupInsertion InsertGroupSequential(const RouteState& state,
                                     const Schedule& committed,
                                     const std::vector<const Request*>& members,
                                     TravelCostEngine* engine);

}  // namespace dispatch
}  // namespace structride
