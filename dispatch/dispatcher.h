// Dispatcher interface and registry. A dispatcher sees one batch at a time:
// the open (pending) requests and the fleet, and assigns by committing
// schedules onto vehicles. Batch methods may leave requests pending across
// rounds; online methods must assign-or-reject each request immediately.

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/entity_pools.h"
#include "core/insertion.h"
#include "core/vehicle.h"
#include "group/grouping.h"
#include "sharegraph/builder.h"
#include "util/arena.h"

namespace structride {

class ThreadPool;

struct DispatchConfig {
  double penalty_coefficient = 10;
  int vehicle_capacity = 4;
  GroupingOptions grouping;
  ShareGraphBuilderOptions sharegraph;
  /// Global cap on enumerated trip nodes per batch (RTV's ILP size guard).
  int64_t ilp_node_cap = 200000;
  int num_threads = 1;
  /// SARD: evaluate the acceptance stage on worker threads (per-vehicle
  /// decisions are independent, so results are thread-count invariant).
  bool sard_parallel_acceptance = false;
  /// SARD: the literal Alg.-3 reading (propose to the vehicle needing the
  /// most additional travel first) instead of the best-first default.
  bool sard_propose_worst_first = false;
  /// SARD: when every proposal of a group is rejected, retry its halves
  /// (recursively, down to singletons) before leaving the whole group
  /// pending — otherwise the clique partition re-forms the identical group
  /// next batch and its members starve until they expire (DESIGN.md §4).
  bool sard_split_rejected_groups = true;
  /// Answer nearest-candidate scans from a per-batch grid-bucket fleet index
  /// instead of a full O(F log F) distance sort per scan. Outcome-identical
  /// by construction; `false` restores the legacy scan (the serial baseline
  /// `abl_parallel_scaling` measures against).
  bool use_spatial_index = true;
  /// Maintain one share graph per run, incrementally: the engine owns a
  /// ShareGraphBuilder, retires requests at assignment / cancellation /
  /// expiry events, and hands it to every round via
  /// DispatchContext::sharegraph; GAS, RTV and SARD fold only the fresh
  /// slice in. `false` restores the frozen reference path — GAS/RTV rebuild
  /// the graph from scratch over the whole pending pool each batch, SARD
  /// keeps a private persistent builder — which the incremental path must
  /// match on served / unified_cost / sp_queries and the graph edge set
  /// (DESIGN.md §7; pinned by tests and abl_incremental_sharegraph).
  bool incremental_sharegraph = true;
  /// Run the pooled structure-of-arrays hot path (DESIGN.md §8): entity
  /// state viewed through FleetSoA/RequestSoA planes, candidate schedules
  /// built in SchedulePool / epoch-arena storage, per-batch scratch
  /// bump-allocated and reset once per round — zero heap allocations per
  /// steady-state batch once the pools are warm. `false` restores the
  /// legacy vector-backed representation, which the pooled path must match
  /// bitwise on served / unified_cost / sp_queries (pinned by tests).
  bool soa_pools = true;
  /// Geo-sharding (DESIGN.md §12): partition the metro into this many zones
  /// and run one ShardRuntime (dispatcher + share graph + SoA planes + arena)
  /// per zone, with cross-shard trips handled by the boundary escrow and
  /// vehicle-migration events. 1 = single-region, bitwise identical to the
  /// pre-sharding engine.
  int num_shards = 1;
  /// Partition grid columns override; 0 picks ceil(sqrt(num_shards)).
  int shard_grid_cols = 0;
  /// Run the N-shard round's per-shard batches concurrently on the shared
  /// worker pool (DESIGN.md §12). Every shard writes only shard-local state
  /// plus its private output buffers during the batch; the engine commits
  /// the buffers serially in shard-id order afterwards, so results are
  /// bitwise identical to `false`, which runs the same buffer-then-commit
  /// protocol with the batch phase serialized in shard-id order (the
  /// differential reference). No effect at num_shards == 1 or num_threads
  /// == 1.
  bool concurrent_shards = true;
  /// Per-shard travel-cost cache partition sizing under geo-sharding: total
  /// cached pairs per partition (0 = the root engine's capacity divided by
  /// num_shards). Each shard queries only its own partition, so concurrent
  /// shards never contend on a cache lock and per-shard sp_queries stay
  /// exact.
  size_t shard_cache_capacity = 0;
  /// Lock stripes per partition (0 = 16; intra-shard parallelism is bounded
  /// by SARD's acceptance stage, so partitions need fewer stripes than the
  /// 64-way root cache).
  size_t shard_cache_stripes = 0;
};

/// An empty relocation for an idle vehicle (the repositioning hook,
/// DESIGN.md §6): move view-local fleet index \p vehicle (relative to
/// DispatchContext::fleet) toward \p target; the engine translates to
/// fleet storage via FleetView::global_index before applying.
struct RepositionMove {
  size_t vehicle = 0;
  NodeId target = 0;
};

struct DispatchContext {
  double now = 0;
  TravelCostEngine* engine = nullptr;
  /// The vehicles this dispatcher may scan and commit to. Unrestricted in
  /// single-region runs; a shard's resident vehicles under geo-sharding
  /// (DESIGN.md §12). All vehicle indices exchanged through this context are
  /// view-local.
  FleetView fleet;
  /// Worker pool owned by the caller (the simulation engine keeps one per
  /// run); dispatchers that parallelize use it instead of spawning threads
  /// per batch. Null means no pool — dispatchers fall back to a private one.
  ThreadPool* pool = nullptr;
  /// Open requests in release order.
  std::vector<const Request*> pending;
  /// Streaming service mode only (DESIGN.md §13): wall-clock seconds (run
  /// epoch) at which the ingestion thread pushed each pending request,
  /// parallel to `pending`. Dispatchers may consult it for latency-aware
  /// ordering; empty in replay mode and in hand-built contexts.
  std::vector<double> pending_ingest_wall;
  /// True when this invocation was triggered by a single request-release
  /// event (the scenario-enabled online dispatch mode) rather than a batch
  /// tick. Batch methods may treat per-event rounds like tiny batches.
  bool online_event = false;
  /// The run-scoped, incrementally maintained share-graph builder
  /// (DESIGN.md §7), owned by the simulation engine when
  /// DispatchConfig::incremental_sharegraph is on: closed requests have
  /// already been retired by lifecycle events, so a dispatcher only syncs
  /// the fresh slice in (ShareGraphBuilder::SyncToPending) and consumes the
  /// graph. Null when the caller keeps no persistent graph (the frozen
  /// legacy engine, hand-built contexts) — graph dispatchers then fall back
  /// to their per-batch / private builders.
  ShareGraphBuilder* sharegraph = nullptr;
  /// Batch-scoped bump arena, owned by the caller and reset between rounds
  /// (after the dispatcher returns). Pooled dispatcher paths stage
  /// proposals, candidate schedules and scratch here. Null when the caller
  /// keeps no arena (the frozen legacy engine, hand-built contexts) —
  /// dispatchers then fall back to a private arena.
  EpochArena* arena = nullptr;
  /// Structure-of-arrays views over the batch-start fleet and pending pool,
  /// refreshed by the caller each round (DESIGN.md §8). Null when the
  /// caller maintains no pools; pooled dispatcher paths then refresh
  /// private planes.
  const FleetSoA* fleet_soa = nullptr;
  const RequestSoA* pending_soa = nullptr;
  /// Outputs: requests assigned this round; requests the dispatcher gives up
  /// on permanently (online methods reject instead of queueing).
  std::vector<RequestId> assigned;
  std::vector<RequestId> rejected;
  /// Output: relocations the dispatcher proposes for idle vehicles; the
  /// engine applies them after the round, then consults the installed
  /// RepositioningPolicy (if any) for more. No built-in dispatcher fills
  /// this today. Out-of-service, busy or already-repositioning vehicles are
  /// skipped when applying.
  std::vector<RepositionMove> repositions;
};

class Dispatcher {
 public:
  explicit Dispatcher(const DispatchConfig& config) : config_(config) {}
  virtual ~Dispatcher() = default;

  virtual void OnBatch(DispatchContext* ctx) = 0;

  /// Peak instrumented bytes of the dispatcher's dominant structures
  /// (DESIGN.md §4: the substitution for process-RSS measurement).
  size_t MemoryBytes() const { return peak_memory_; }

  /// Exact share-graph pair feasibility evaluations this dispatcher has
  /// spent so far (0 for methods that build no share graph). The engine
  /// surfaces it as RunMetrics::sharegraph_pair_checks; the incremental
  /// maintenance bench gates its ≥2x reduction on it.
  uint64_t SharePairChecks() const { return share_pair_checks_; }

 protected:
  void NotePeak(size_t bytes) {
    if (bytes > peak_memory_) peak_memory_ = bytes;
  }
  /// Accumulate checks from a per-batch throwaway builder.
  void AddPairChecks(uint64_t delta) { share_pair_checks_ += delta; }
  /// Adopt the running total of a persistent (run-scoped) builder.
  void SetPairChecks(uint64_t total) { share_pair_checks_ = total; }

  DispatchConfig config_;

 private:
  size_t peak_memory_ = 0;
  uint64_t share_pair_checks_ = 0;
};

/// The paper's dispatcher roster, in comparison order.
std::vector<std::string> AllDispatcherNames();

/// Every name MakeDispatcher accepts (the roster plus aliases like
/// "SARD-O"), in registry order.
const std::vector<std::string>& ListDispatchers();

/// Factory; SR_CHECK-fails on unknown names.
std::unique_ptr<Dispatcher> MakeDispatcher(const std::string& name,
                                           const DispatchConfig& config);

}  // namespace structride
