#include "dispatch/dispatcher.h"

#include "util/logging.h"

namespace structride {

// Factories defined in the per-method translation units.
std::unique_ptr<Dispatcher> MakePruneGdp(const DispatchConfig&);
std::unique_ptr<Dispatcher> MakeTicketAssign(const DispatchConfig&);
std::unique_ptr<Dispatcher> MakeDarmDprs(const DispatchConfig&);
std::unique_ptr<Dispatcher> MakeGas(const DispatchConfig&);
std::unique_ptr<Dispatcher> MakeRtv(const DispatchConfig&);
std::unique_ptr<Dispatcher> MakeSard(const DispatchConfig&);

std::vector<std::string> AllDispatcherNames() {
  // The paper's six comparison methods, in its table order. SARD-O is SARD
  // with DispatchConfig::sharegraph.use_angle_pruning set.
  return {"RTV", "pruneGDP", "GAS", "TicketAssign+", "DARM+DPRS", "SARD"};
}

const std::vector<std::string>& ListDispatchers() {
  // The roster plus the aliases the factory accepts.
  static const std::vector<std::string> names = {
      "RTV", "pruneGDP", "GAS", "TicketAssign+", "DARM+DPRS", "SARD",
      "SARD-O"};
  return names;
}

std::unique_ptr<Dispatcher> MakeDispatcher(const std::string& name,
                                           const DispatchConfig& config) {
  if (name == "RTV") return MakeRtv(config);
  if (name == "pruneGDP") return MakePruneGdp(config);
  if (name == "GAS") return MakeGas(config);
  if (name == "TicketAssign+") return MakeTicketAssign(config);
  if (name == "DARM+DPRS") return MakeDarmDprs(config);
  if (name == "SARD" || name == "SARD-O") return MakeSard(config);
  std::string valid;
  for (const std::string& n : ListDispatchers()) {
    if (!valid.empty()) valid += ", ";
    valid += n;
  }
  SR_LOG("unknown dispatcher '%s' (valid names: %s)", name.c_str(),
         valid.c_str());
  SR_CHECK(false);
  return nullptr;
}

}  // namespace structride
