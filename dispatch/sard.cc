// SARD: the paper's structure-aware ridesharing dispatcher. Per batch:
// fold the new requests into a persistent shareability graph (Alg. 1, with
// the optional angle pruning = SARD-O), partition the open requests into
// capacity-bounded cliques (the grouping stage), then run the
// proposal/acceptance stage (Alg. 3): each group is proposed to nearby
// vehicles, each vehicle prices the group by linear insertion in ascending
// shareability order (Sec. IV-A) and the first accepting vehicle commits.
//
// The acceptance evaluation is a pure read of the batch-start fleet state,
// which is what makes the parallel variant exact: worker threads (a pool
// reused across batches) only price proposals; commits happen serially in
// deterministic group order with re-validation, so thread count never
// changes the result. Groups every vehicle rejects are retried as halves
// down to singletons (DispatchConfig::sard_split_rejected_groups), because
// the clique partition would otherwise re-form the identical group next
// batch and starve its members.

#include <algorithm>
#include <functional>
#include <unordered_map>
#include <unordered_set>

#include "dispatch/common.h"
#include "dispatch/dispatcher.h"
#include "sharegraph/analysis.h"
#include "util/thread_pool.h"

namespace structride {
namespace {

class SardDispatcher : public Dispatcher {
 public:
  using Dispatcher::Dispatcher;

  void OnBatch(DispatchContext* ctx) override {
    constexpr size_t kCandidateVehicles = 16;
    std::vector<Vehicle>& fleet = *ctx->fleet;
    if (ctx->pending.empty()) return;

    ThreadPool* pool = WorkerPool(ctx);
    // The run's engine-maintained builder when provided (closed requests
    // already retired by lifecycle events), else the private persistent
    // builder — both paths then do the same delta sync: drop anything no
    // longer pending, fold the fresh slice in, so the graph tracks the
    // open set (DESIGN.md §7).
    ShareGraphBuilder* builder = ctx->sharegraph;
    if (builder == nullptr) {
      if (!builder_) {
        builder_ = std::make_unique<ShareGraphBuilder>(ctx->engine,
                                                       config_.sharegraph);
        builder_->set_memoize_pairs(true);  // persistent across batches
      }
      builder = builder_.get();
    }
    builder->set_pool(pool);
    builder->SyncToPending(ctx->pending);
    SetPairChecks(builder->pair_checks());

    // Induced subgraph over the open requests (assigned/expired nodes fall
    // out naturally because only pending ids are copied in).
    ShareGraph open;
    std::unordered_map<RequestId, const Request*> by_id;
    for (const Request* r : ctx->pending) {
      open.AddNode(r->id);
      by_id[r->id] = r;
    }
    for (const Request* r : ctx->pending) {
      for (RequestId nb : builder->graph().Neighbors(r->id)) {
        if (nb > r->id && by_id.count(nb)) open.AddEdge(r->id, nb);
      }
    }

    int bound = std::min(config_.vehicle_capacity,
                         config_.grouping.max_group_size);
    std::vector<std::vector<RequestId>> groups =
        GreedyCliquePartition(open, static_cast<size_t>(bound > 0 ? bound : 1));

    // Members inside a group join schedules in ascending shareability order.
    std::vector<std::vector<const Request*>> group_members(groups.size());
    for (size_t gi = 0; gi < groups.size(); ++gi) {
      std::vector<RequestId> ids = groups[gi];
      std::stable_sort(ids.begin(), ids.end(), [&](RequestId a, RequestId b) {
        size_t da = open.Degree(a), db = open.Degree(b);
        if (da != db) return da < db;
        return a < b;
      });
      for (RequestId id : ids) group_members[gi].push_back(by_id[id]);
    }

    // One fleet index per batch; every nearest-candidate scan below answers
    // from it (or from the legacy full sort when the knob is off).
    dispatch::CandidateScanner scanner(fleet, ctx->engine->network(),
                                       config_.use_spatial_index);

    // Proposal pricing (phase A; pure, parallelizable): for each group, the
    // feasible nearby vehicles ordered by the configured proposal policy.
    struct Proposal {
      double delta = 0;
      size_t vehicle = 0;
    };
    auto price_group = [&](const std::vector<const Request*>& members) {
      std::vector<Proposal> props;
      NodeId anchor = members.front()->source;
      const std::vector<size_t> nearest =
          scanner.Nearest(anchor, kCandidateVehicles);
      // Batched warm-up of the first insertion leg: an *idle* candidate's
      // pricing provably starts with Cost(vehicle node, anchor) — the first
      // member goes to position 0 of an empty schedule, that position's
      // lower bound cannot beat an infinite incumbent, and an open
      // request's pickup deadline is ahead of `now`, so BestInsertion's
      // first CheckSchedule always prices that leg. One-to-many fetching
      // those legs pins the anchor's hub label once; CostMany's per-target
      // cache fill/count keeps sp_queries identical to the point-to-point
      // path. Busy candidates' first legs depend on their committed stops
      // and are left to the sequential walk.
      std::vector<NodeId> idle_nodes;
      for (size_t vi : nearest) {
        if (fleet[vi].schedule().empty()) idle_nodes.push_back(fleet[vi].node());
      }
      if (idle_nodes.size() > 1) {
        std::vector<double> warmed(idle_nodes.size());
        ctx->engine->CostMany(anchor, {idle_nodes.data(), idle_nodes.size()},
                              warmed.data());
      }
      for (size_t vi : nearest) {
        dispatch::GroupInsertion ins = dispatch::InsertGroupSequential(
            fleet[vi].route_state(ctx->now), fleet[vi].schedule(), members,
            ctx->engine);
        if (ins.feasible) props.push_back({ins.delta_cost, vi});
      }
      std::stable_sort(props.begin(), props.end(),
                       [&](const Proposal& a, const Proposal& b) {
                         if (a.delta != b.delta) {
                           return config_.sard_propose_worst_first
                                      ? a.delta > b.delta
                                      : a.delta < b.delta;
                         }
                         return a.vehicle < b.vehicle;
                       });
      return props;
    };

    std::vector<std::vector<Proposal>> proposals(groups.size());
    auto price_task = [&](size_t gi) {
      proposals[gi] = price_group(group_members[gi]);
    };
    if (pool && groups.size() > 1) {
      pool->ParallelFor(groups.size(), price_task);
    } else {
      for (size_t gi = 0; gi < groups.size(); ++gi) price_task(gi);
    }

    // Acceptance commits (phase B; serial, deterministic group order). A
    // vehicle's schedule may have grown since pricing, so each proposal is
    // re-validated before committing. A group nobody accepts retries as
    // halves (recursively, down to singletons): the split subgroups are
    // priced on the spot against the current fleet state.
    std::function<void(const std::vector<const Request*>&,
                       const std::vector<Proposal>*)>
        assign = [&](const std::vector<const Request*>& members,
                     const std::vector<Proposal>* priced) {
          std::vector<Proposal> local;
          if (priced == nullptr) {
            local = price_group(members);
            priced = &local;
          }
          for (const Proposal& p : *priced) {
            Vehicle& v = fleet[p.vehicle];
            dispatch::GroupInsertion ins = dispatch::InsertGroupSequential(
                v.route_state(ctx->now), v.schedule(), members, ctx->engine);
            if (!ins.feasible) continue;
            if (!v.CommitSchedule(ins.schedule, ctx->now, ctx->engine)) {
              continue;
            }
            for (const Request* r : members) ctx->assigned.push_back(r->id);
            return;
          }
          if (members.size() <= 1 || !config_.sard_split_rejected_groups) {
            return;
          }
          auto mid = members.begin() +
                     static_cast<ptrdiff_t>(members.size() / 2);
          std::vector<const Request*> lo(members.begin(), mid);
          std::vector<const Request*> hi(mid, members.end());
          assign(lo, nullptr);
          assign(hi, nullptr);
        };
    for (size_t gi = 0; gi < groups.size(); ++gi) {
      assign(group_members[gi], &proposals[gi]);
    }

    size_t proposal_bytes = 0;
    for (const auto& plist : proposals) {
      proposal_bytes += plist.size() * sizeof(Proposal);
    }
    NotePeak(builder->MemoryBytes() + open.MemoryBytes() + proposal_bytes +
             scanner.MemoryBytes() +
             groups.size() * sizeof(std::vector<RequestId>));
  }

 private:
  // The caller's per-run pool when provided; otherwise a private pool built
  // once and reused for every batch (never fresh threads per batch).
  ThreadPool* WorkerPool(DispatchContext* ctx) {
    int threads = config_.sard_parallel_acceptance
                      ? std::max(1, config_.num_threads)
                      : 1;
    if (threads <= 1) return nullptr;
    if (ctx->pool) return ctx->pool;
    if (!own_pool_) own_pool_ = std::make_unique<ThreadPool>(threads);
    return own_pool_.get();
  }

  /// Fallback when the caller keeps no run-scoped builder (the frozen
  /// legacy engine, hand-built contexts): SARD stays persistent either way.
  std::unique_ptr<ShareGraphBuilder> builder_;
  std::unique_ptr<ThreadPool> own_pool_;
};

}  // namespace

std::unique_ptr<Dispatcher> MakeSard(const DispatchConfig& config) {
  return std::make_unique<SardDispatcher>(config);
}

}  // namespace structride
