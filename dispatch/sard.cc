// SARD: the paper's structure-aware ridesharing dispatcher. Per batch:
// fold the new requests into a persistent shareability graph (Alg. 1, with
// the optional angle pruning = SARD-O), partition the open requests into
// capacity-bounded cliques (the grouping stage), then run the
// proposal/acceptance stage (Alg. 3): each group is proposed to nearby
// vehicles, each vehicle prices the group by linear insertion in ascending
// shareability order (Sec. IV-A) and the first accepting vehicle commits.
//
// The acceptance evaluation is a pure read of the batch-start fleet state,
// which is what makes the parallel variant exact: worker threads only price
// proposals; commits happen serially in deterministic group order with
// re-validation, so thread count never changes the result.

#include <algorithm>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "dispatch/common.h"
#include "dispatch/dispatcher.h"
#include "sharegraph/analysis.h"

namespace structride {
namespace {

class SardDispatcher : public Dispatcher {
 public:
  using Dispatcher::Dispatcher;

  void OnBatch(DispatchContext* ctx) override {
    constexpr size_t kCandidateVehicles = 16;
    std::vector<Vehicle>& fleet = *ctx->fleet;
    if (ctx->pending.empty()) return;

    if (!builder_) {
      builder_ = std::make_unique<ShareGraphBuilder>(ctx->engine,
                                                     config_.sharegraph);
    }
    // Closed requests (assigned, expired, cancelled) leave the persistent
    // graph before the new batch folds in, so the graph tracks the open set.
    std::vector<RequestId> open_ids;
    for (const Request* r : ctx->pending) open_ids.push_back(r->id);
    builder_->Retain(open_ids);
    std::vector<Request> fresh;
    for (const Request* r : ctx->pending) {
      if (!builder_->has_request(r->id)) fresh.push_back(*r);
    }
    builder_->AddBatch(fresh);

    // Induced subgraph over the open requests (assigned/expired nodes fall
    // out naturally because only pending ids are copied in).
    ShareGraph open;
    std::unordered_map<RequestId, const Request*> by_id;
    for (const Request* r : ctx->pending) {
      open.AddNode(r->id);
      by_id[r->id] = r;
    }
    for (const Request* r : ctx->pending) {
      for (RequestId nb : builder_->graph().Neighbors(r->id)) {
        if (nb > r->id && by_id.count(nb)) open.AddEdge(r->id, nb);
      }
    }

    int bound = std::min(config_.vehicle_capacity,
                         config_.grouping.max_group_size);
    std::vector<std::vector<RequestId>> groups =
        GreedyCliquePartition(open, static_cast<size_t>(bound > 0 ? bound : 1));

    // Members inside a group join schedules in ascending shareability order.
    std::vector<std::vector<const Request*>> group_members(groups.size());
    for (size_t gi = 0; gi < groups.size(); ++gi) {
      std::vector<RequestId> ids = groups[gi];
      std::stable_sort(ids.begin(), ids.end(), [&](RequestId a, RequestId b) {
        size_t da = open.Degree(a), db = open.Degree(b);
        if (da != db) return da < db;
        return a < b;
      });
      for (RequestId id : ids) group_members[gi].push_back(by_id[id]);
    }

    // Proposal pricing (phase A; pure, parallelizable): for each group, the
    // feasible nearby vehicles ordered by the configured proposal policy.
    struct Proposal {
      double delta = 0;
      size_t vehicle = 0;
    };
    std::vector<std::vector<Proposal>> proposals(groups.size());
    auto price_group = [&](size_t gi) {
      const std::vector<const Request*>& members = group_members[gi];
      NodeId anchor = members.front()->source;
      size_t scanned = 0;
      for (size_t vi : dispatch::VehiclesByDistance(fleet, ctx->engine->network(),
                                                    anchor)) {
        if (++scanned > kCandidateVehicles) break;
        dispatch::GroupInsertion ins = dispatch::InsertGroupSequential(
            fleet[vi].route_state(ctx->now), fleet[vi].schedule(), members,
            ctx->engine);
        if (ins.feasible) proposals[gi].push_back({ins.delta_cost, vi});
      }
      std::stable_sort(proposals[gi].begin(), proposals[gi].end(),
                       [&](const Proposal& a, const Proposal& b) {
                         if (a.delta != b.delta) {
                           return config_.sard_propose_worst_first
                                      ? a.delta > b.delta
                                      : a.delta < b.delta;
                         }
                         return a.vehicle < b.vehicle;
                       });
    };

    int threads = config_.sard_parallel_acceptance
                      ? std::max(1, config_.num_threads)
                      : 1;
    if (threads > 1 && groups.size() > 1) {
      std::vector<std::thread> workers;
      workers.reserve(static_cast<size_t>(threads));
      for (int w = 0; w < threads; ++w) {
        workers.emplace_back([&, w] {
          for (size_t gi = static_cast<size_t>(w); gi < groups.size();
               gi += static_cast<size_t>(threads)) {
            price_group(gi);
          }
        });
      }
      for (std::thread& t : workers) t.join();
    } else {
      for (size_t gi = 0; gi < groups.size(); ++gi) price_group(gi);
    }

    // Acceptance commits (phase B; serial, deterministic group order). A
    // vehicle's schedule may have grown since pricing, so each proposal is
    // re-validated before committing.
    for (size_t gi = 0; gi < groups.size(); ++gi) {
      for (const Proposal& p : proposals[gi]) {
        Vehicle& v = fleet[p.vehicle];
        dispatch::GroupInsertion ins = dispatch::InsertGroupSequential(
            v.route_state(ctx->now), v.schedule(), group_members[gi],
            ctx->engine);
        if (!ins.feasible) continue;
        if (!v.CommitSchedule(ins.schedule, ctx->now, ctx->engine)) continue;
        for (const Request* r : group_members[gi]) {
          ctx->assigned.push_back(r->id);
        }
        break;
      }
    }

    size_t proposal_bytes = 0;
    for (const auto& plist : proposals) {
      proposal_bytes += plist.size() * sizeof(Proposal);
    }
    NotePeak(builder_->MemoryBytes() + open.MemoryBytes() + proposal_bytes +
             groups.size() * sizeof(std::vector<RequestId>));
  }

 private:
  std::unique_ptr<ShareGraphBuilder> builder_;
};

}  // namespace

std::unique_ptr<Dispatcher> MakeSard(const DispatchConfig& config) {
  return std::make_unique<SardDispatcher>(config);
}

}  // namespace structride
