// SARD: the paper's structure-aware ridesharing dispatcher. Per batch:
// fold the new requests into a persistent shareability graph (Alg. 1, with
// the optional angle pruning = SARD-O), partition the open requests into
// capacity-bounded cliques (the grouping stage), then run the
// proposal/acceptance stage (Alg. 3): each group is proposed to nearby
// vehicles, each vehicle prices the group by linear insertion in ascending
// shareability order (Sec. IV-A) and the first accepting vehicle commits.
//
// The acceptance evaluation is a pure read of the batch-start fleet state,
// which is what makes the parallel variant exact: worker threads (a pool
// reused across batches) only price proposals; commits happen serially in
// deterministic group order with re-validation, so thread count never
// changes the result. Groups every vehicle rejects are retried as halves
// down to singletons (DispatchConfig::sard_split_rejected_groups), because
// the clique partition would otherwise re-form the identical group next
// batch and starve its members.
//
// Two representations of the same algorithm (DispatchConfig::soa_pools):
// the pooled path stages the induced subgraph, clique partition, member
// order and proposal slots as flat arrays in the batch arena and prices
// groups through InsertGroupSequentialPooled (thread-scratch ping-pong
// buffers) — zero heap allocations per steady-state batch once pools are
// warm — while the legacy path below it keeps the original per-batch
// containers as the bitwise parity reference. Every decision point (clique
// seeds, member picks, proposal order, commit order, travel-cost query
// sequence) is evaluated in the identical order, so the two paths reproduce
// each other exactly on served / unified_cost / sp_queries.

#include <algorithm>
#include <functional>
#include <unordered_map>
#include <unordered_set>

#include "dispatch/common.h"
#include "dispatch/dispatcher.h"
#include "sharegraph/analysis.h"
#include "util/thread_pool.h"

namespace structride {
namespace {

class SardDispatcher : public Dispatcher {
 public:
  using Dispatcher::Dispatcher;

  void OnBatch(DispatchContext* ctx) override {
    if (config_.soa_pools) {
      OnBatchPooled(ctx);
    } else {
      OnBatchLegacy(ctx);
    }
  }

 private:
  static constexpr size_t kCandidateVehicles = 16;

  struct Proposal {
    double delta = 0;
    size_t vehicle = 0;
  };

  /// One-pointer capture context for the pooled pricing ParallelFor (a
  /// std::function over a single pointer stays in its small-buffer slot, so
  /// dispatching the parallel phase allocates nothing).
  struct PriceCtx {
    SardDispatcher* self;
    DispatchContext* ctx;
    const Request* const* member_reqs;
    const size_t* group_first;
    const size_t* group_len;
    Proposal* props;
    uint32_t* prop_count;
  };

  ShareGraphBuilder* SyncedBuilder(DispatchContext* ctx, ThreadPool* pool) {
    // The run's engine-maintained builder when provided (closed requests
    // already retired by lifecycle events), else the private persistent
    // builder — both paths then do the same delta sync: drop anything no
    // longer pending, fold the fresh slice in, so the graph tracks the
    // open set (DESIGN.md §7).
    ShareGraphBuilder* builder = ctx->sharegraph;
    if (builder == nullptr) {
      if (!builder_) {
        builder_ = std::make_unique<ShareGraphBuilder>(ctx->engine,
                                                       config_.sharegraph);
        builder_->set_memoize_pairs(true);  // persistent across batches
      }
      builder = builder_.get();
    }
    builder->set_pool(pool);
    builder->SyncToPending(ctx->pending);
    SetPairChecks(builder->pair_checks());
    return builder;
  }

  // ---------------------------------------------------------------------
  // Pooled path (DispatchConfig::soa_pools = true, DESIGN.md §8).
  // ---------------------------------------------------------------------

  void OnBatchPooled(DispatchContext* ctx) {
    const FleetView& fleet = ctx->fleet;
    if (ctx->pending.empty()) return;

    ThreadPool* pool = WorkerPool(ctx);
    ShareGraphBuilder* builder = SyncedBuilder(ctx, pool);

    // SoA view of the pending pool (id -> pool-index without a hash map)
    // and the batch arena — the caller's when provided, else the private
    // fallbacks, so hand-built contexts work unchanged.
    const RequestSoA* soa = ctx->pending_soa;
    if (soa == nullptr) {
      pending_soa_.Refresh({ctx->pending.data(), ctx->pending.size()});
      soa = &pending_soa_;
    }
    EpochArena* arena = ctx->arena;
    if (arena == nullptr) {
      own_arena_.Reset();
      arena = &own_arena_;
    }
    const size_t num_pending = ctx->pending.size();

    // Induced share subgraph over the open requests as a CSR adjacency in
    // the batch arena: the same edge set the legacy path materializes as a
    // per-batch ShareGraph (assigned/expired nodes fall out naturally
    // because only pending ids resolve through IndexOfId). Each adjacency
    // run is sorted so membership tests are binary searches; no decision
    // below depends on adjacency order beyond the edge set.
    size_t* deg = arena->AllocateArray<size_t>(num_pending);
    size_t* offsets = arena->AllocateArray<size_t>(num_pending + 1);
    size_t num_adj = 0;
    for (size_t i = 0; i < num_pending; ++i) {
      size_t d = 0;
      for (RequestId nb : builder->graph().Neighbors(soa->id[i])) {
        if (soa->IndexOfId(nb) >= 0) ++d;
      }
      deg[i] = d;
      offsets[i] = num_adj;
      num_adj += d;
    }
    offsets[num_pending] = num_adj;
    size_t* adj = arena->AllocateArray<size_t>(num_adj);
    for (size_t i = 0; i < num_pending; ++i) {
      size_t w = offsets[i];
      for (RequestId nb : builder->graph().Neighbors(soa->id[i])) {
        int64_t j = soa->IndexOfId(nb);
        if (j >= 0) adj[w++] = static_cast<size_t>(j);
      }
      std::sort(adj + offsets[i], adj + offsets[i] + deg[i]);
    }
    auto has_edge = [&](size_t a, size_t b) {
      return std::binary_search(adj + offsets[a], adj + offsets[a + 1], b);
    };

    // GreedyCliquePartition on the flat representation. Seeds in ascending
    // (degree, id) order; each clique grows by the eligible neighbor of its
    // seed minimizing (degree, id). Both rules are min-over-a-set, so they
    // match the legacy ShareGraph walk regardless of adjacency order, and
    // (degree, id) is a total order (ids unique), so std::sort reproduces
    // the legacy stable_sort.
    int raw_bound = std::min(config_.vehicle_capacity,
                             config_.grouping.max_group_size);
    const size_t bound = static_cast<size_t>(raw_bound > 0 ? raw_bound : 1);
    size_t* order = arena->AllocateArray<size_t>(num_pending);
    for (size_t i = 0; i < num_pending; ++i) order[i] = i;
    std::sort(order, order + num_pending, [&](size_t a, size_t b) {
      if (deg[a] != deg[b]) return deg[a] < deg[b];
      return soa->id[a] < soa->id[b];
    });
    char* taken = arena->AllocateArray<char>(num_pending);
    std::fill(taken, taken + num_pending, 0);
    size_t* members = arena->AllocateArray<size_t>(num_pending);
    size_t* group_first = arena->AllocateArray<size_t>(num_pending);
    size_t* group_len = arena->AllocateArray<size_t>(num_pending);
    size_t num_groups = 0, num_members = 0;
    for (size_t si = 0; si < num_pending; ++si) {
      const size_t seed = order[si];
      if (taken[seed]) continue;
      const size_t first = num_members;
      members[num_members++] = seed;
      taken[seed] = 1;
      size_t len = 1;
      while (len < bound) {
        size_t pick = 0, pick_degree = 0;
        bool found = false;
        for (size_t w = offsets[seed]; w < offsets[seed + 1]; ++w) {
          const size_t nb = adj[w];
          if (taken[nb]) continue;
          bool adjacent_to_all = true;
          for (size_t k = 1; k < len; ++k) {
            if (!has_edge(members[first + k], nb)) {
              adjacent_to_all = false;
              break;
            }
          }
          if (!adjacent_to_all) continue;
          const size_t d = deg[nb];
          if (!found || d < pick_degree ||
              (d == pick_degree && soa->id[nb] < soa->id[pick])) {
            found = true;
            pick = nb;
            pick_degree = d;
          }
        }
        if (!found) break;
        members[num_members++] = pick;
        taken[pick] = 1;
        ++len;
      }
      group_first[num_groups] = first;
      group_len[num_groups] = len;
      ++num_groups;
    }

    // Members inside a group join schedules in ascending shareability order.
    const Request** member_reqs =
        arena->AllocateArray<const Request*>(num_members);
    for (size_t g = 0; g < num_groups; ++g) {
      std::sort(members + group_first[g],
                members + group_first[g] + group_len[g],
                [&](size_t a, size_t b) {
                  if (deg[a] != deg[b]) return deg[a] < deg[b];
                  return soa->id[a] < soa->id[b];
                });
    }
    for (size_t m = 0; m < num_members; ++m) {
      member_reqs[m] = ctx->pending[members[m]];
    }

    // One fleet index per batch; the persistent scanner refills its planes
    // in place (steady-state rebuilds without heap allocation).
    scanner_.Rebuild(fleet, ctx->engine->network(), config_.use_spatial_index);

    // Proposal pricing (phase A; pure, parallelizable): workers fill
    // disjoint fixed-size proposal slots in the batch arena.
    Proposal* props =
        arena->AllocateArray<Proposal>(num_groups * kCandidateVehicles);
    uint32_t* prop_count = arena->AllocateArray<uint32_t>(num_groups);
    PriceCtx pctx{this,      ctx,   member_reqs, group_first,
                  group_len, props, prop_count};
    auto price_task = [p = &pctx](size_t gi) {
      Span<const Request* const> mem(p->member_reqs + p->group_first[gi],
                                     p->group_len[gi]);
      p->prop_count[gi] = static_cast<uint32_t>(p->self->PriceGroupPooled(
          p->ctx, mem, p->props + gi * kCandidateVehicles));
    };
    if (pool && num_groups > 1) {
      pool->ParallelFor(num_groups, price_task);
    } else {
      for (size_t gi = 0; gi < num_groups; ++gi) price_task(gi);
    }

    // Acceptance commits (phase B; serial, deterministic group order).
    for (size_t gi = 0; gi < num_groups; ++gi) {
      Span<const Request* const> mem(member_reqs + group_first[gi],
                                     group_len[gi]);
      AssignPooled(ctx, mem, props + gi * kCandidateVehicles, prop_count[gi]);
    }

    size_t proposal_bytes = 0;
    for (size_t gi = 0; gi < num_groups; ++gi) {
      proposal_bytes += prop_count[gi] * sizeof(Proposal);
    }
    // Size-based (not capacity-based) accounting, so the figure is
    // deterministic and identical across caller-provided vs fallback
    // arenas; arena retention is reported separately as
    // RunMetrics::arena_peak_bytes.
    const size_t graph_bytes = (2 * num_pending + 1 + num_adj) * sizeof(size_t);
    const size_t group_bytes =
        num_members * (sizeof(size_t) + sizeof(const Request*)) +
        num_groups * 2 * sizeof(size_t);
    NotePeak(builder->MemoryBytes() + graph_bytes + proposal_bytes +
             scanner_.MemoryBytes() + group_bytes);
  }

  /// Prices \p mem against its nearby vehicles into \p out (room for
  /// kCandidateVehicles), returning the count; (delta, vehicle)-sorted per
  /// the proposal policy. Pure read of the current fleet state; scratch
  /// lives on the calling thread's arena, so workers price concurrently
  /// without touching the heap.
  size_t PriceGroupPooled(DispatchContext* ctx,
                          Span<const Request* const> mem, Proposal* out) {
    const FleetView& fleet = ctx->fleet;
    size_t count = 0;
    NodeId anchor = mem[0]->source;
    size_t nearest[kCandidateVehicles];
    const size_t num_near =
        scanner_.NearestInto(anchor, kCandidateVehicles, nearest);
    // Batched warm-up of the first insertion leg: an *idle* candidate's
    // pricing provably starts with Cost(vehicle node, anchor) — the first
    // member goes to position 0 of an empty schedule, that position's
    // lower bound cannot beat an infinite incumbent, and an open
    // request's pickup deadline is ahead of `now`, so BestInsertion's
    // first CheckSchedule always prices that leg. One-to-many fetching
    // those legs pins the anchor's hub label once; CostMany's per-target
    // cache fill/count keeps sp_queries identical to the point-to-point
    // path. Busy candidates' first legs depend on their committed stops
    // and are left to the sequential walk.
    NodeId idle_nodes[kCandidateVehicles];
    size_t num_idle = 0;
    for (size_t ni = 0; ni < num_near; ++ni) {
      const Vehicle& v = fleet[nearest[ni]];
      if (v.schedule().empty()) idle_nodes[num_idle++] = v.node();
    }
    if (num_idle > 1) {
      double warmed[kCandidateVehicles];
      ctx->engine->CostMany(anchor, {idle_nodes, num_idle}, warmed);
    }
    for (size_t ni = 0; ni < num_near; ++ni) {
      const size_t vi = nearest[ni];
      ArenaScope scope(ScratchArena());
      dispatch::PooledGroupInsertion ins =
          dispatch::InsertGroupSequentialPooled(
              fleet[vi].route_state(ctx->now), fleet[vi].schedule().stops(),
              mem, ctx->engine, scope.arena());
      if (ins.feasible) {
        out[count].delta = ins.delta_cost;
        out[count].vehicle = vi;
        ++count;
      }
    }
    // (delta, vehicle) is a total order (vehicle unique), so std::sort
    // reproduces the legacy stable_sort.
    std::sort(out, out + count, [this](const Proposal& a, const Proposal& b) {
      if (a.delta != b.delta) {
        return config_.sard_propose_worst_first ? a.delta > b.delta
                                                : a.delta < b.delta;
      }
      return a.vehicle < b.vehicle;
    });
    return count;
  }

  /// Serial acceptance for one group: re-validate each proposal against the
  /// live fleet state, commit to the first that still fits; a group nobody
  /// accepts retries as halves (recursively, down to singletons), priced on
  /// the spot. Member subsets are subspans — no copies.
  void AssignPooled(DispatchContext* ctx, Span<const Request* const> mem,
                    const Proposal* priced, size_t num_priced) {
    const FleetView& fleet = ctx->fleet;
    ArenaScope scope(ScratchArena());
    if (priced == nullptr) {
      Proposal* local = scope.AllocateArray<Proposal>(kCandidateVehicles);
      num_priced = PriceGroupPooled(ctx, mem, local);
      priced = local;
    }
    for (size_t pi = 0; pi < num_priced; ++pi) {
      Vehicle& v = fleet[priced[pi].vehicle];
      ArenaScope commit_scope(ScratchArena());
      dispatch::PooledGroupInsertion ins =
          dispatch::InsertGroupSequentialPooled(
              v.route_state(ctx->now), v.schedule().stops(), mem, ctx->engine,
              commit_scope.arena());
      if (!ins.feasible) continue;
      if (!v.CommitStops({ins.stops, ins.len}, ctx->now, ctx->engine)) {
        continue;
      }
      for (const Request* r : mem) ctx->assigned.push_back(r->id);
      return;
    }
    if (mem.size() <= 1 || !config_.sard_split_rejected_groups) return;
    const size_t half = mem.size() / 2;
    AssignPooled(ctx, Span<const Request* const>(mem.data(), half), nullptr,
                 0);
    AssignPooled(ctx,
                 Span<const Request* const>(mem.data() + half,
                                            mem.size() - half),
                 nullptr, 0);
  }

  // ---------------------------------------------------------------------
  // Legacy path (soa_pools = false): the original vector-backed batch,
  // kept verbatim as the pooled path's bitwise parity reference.
  // ---------------------------------------------------------------------

  void OnBatchLegacy(DispatchContext* ctx) {
    const FleetView& fleet = ctx->fleet;
    if (ctx->pending.empty()) return;

    ThreadPool* pool = WorkerPool(ctx);
    ShareGraphBuilder* builder = SyncedBuilder(ctx, pool);

    // Induced subgraph over the open requests (assigned/expired nodes fall
    // out naturally because only pending ids are copied in).
    ShareGraph open;
    std::unordered_map<RequestId, const Request*> by_id;
    for (const Request* r : ctx->pending) {
      open.AddNode(r->id);
      by_id[r->id] = r;
    }
    for (const Request* r : ctx->pending) {
      for (RequestId nb : builder->graph().Neighbors(r->id)) {
        if (nb > r->id && by_id.count(nb)) open.AddEdge(r->id, nb);
      }
    }

    int bound = std::min(config_.vehicle_capacity,
                         config_.grouping.max_group_size);
    std::vector<std::vector<RequestId>> groups =
        GreedyCliquePartition(open, static_cast<size_t>(bound > 0 ? bound : 1));

    // Members inside a group join schedules in ascending shareability order.
    std::vector<std::vector<const Request*>> group_members(groups.size());
    for (size_t gi = 0; gi < groups.size(); ++gi) {
      std::vector<RequestId> ids = groups[gi];
      std::stable_sort(ids.begin(), ids.end(), [&](RequestId a, RequestId b) {
        size_t da = open.Degree(a), db = open.Degree(b);
        if (da != db) return da < db;
        return a < b;
      });
      for (RequestId id : ids) group_members[gi].push_back(by_id[id]);
    }

    // One fleet index per batch; every nearest-candidate scan below answers
    // from it (or from the legacy full sort when the knob is off).
    dispatch::CandidateScanner scanner(fleet, ctx->engine->network(),
                                       config_.use_spatial_index);

    // Proposal pricing (phase A; pure, parallelizable): for each group, the
    // feasible nearby vehicles ordered by the configured proposal policy.
    auto price_group = [&](const std::vector<const Request*>& members) {
      std::vector<Proposal> props;
      NodeId anchor = members.front()->source;
      const std::vector<size_t> nearest =
          scanner.Nearest(anchor, kCandidateVehicles);
      // Batched warm-up of the first insertion leg (see the pooled twin for
      // the full provenance argument).
      std::vector<NodeId> idle_nodes;
      for (size_t vi : nearest) {
        if (fleet[vi].schedule().empty()) idle_nodes.push_back(fleet[vi].node());
      }
      if (idle_nodes.size() > 1) {
        std::vector<double> warmed(idle_nodes.size());
        ctx->engine->CostMany(anchor, {idle_nodes.data(), idle_nodes.size()},
                              warmed.data());
      }
      for (size_t vi : nearest) {
        dispatch::GroupInsertion ins = dispatch::InsertGroupSequential(
            fleet[vi].route_state(ctx->now), fleet[vi].schedule(), members,
            ctx->engine);
        if (ins.feasible) props.push_back({ins.delta_cost, vi});
      }
      std::stable_sort(props.begin(), props.end(),
                       [&](const Proposal& a, const Proposal& b) {
                         if (a.delta != b.delta) {
                           return config_.sard_propose_worst_first
                                      ? a.delta > b.delta
                                      : a.delta < b.delta;
                         }
                         return a.vehicle < b.vehicle;
                       });
      return props;
    };

    std::vector<std::vector<Proposal>> proposals(groups.size());
    auto price_task = [&](size_t gi) {
      proposals[gi] = price_group(group_members[gi]);
    };
    if (pool && groups.size() > 1) {
      pool->ParallelFor(groups.size(), price_task);
    } else {
      for (size_t gi = 0; gi < groups.size(); ++gi) price_task(gi);
    }

    // Acceptance commits (phase B; serial, deterministic group order). A
    // vehicle's schedule may have grown since pricing, so each proposal is
    // re-validated before committing. A group nobody accepts retries as
    // halves (recursively, down to singletons): the split subgroups are
    // priced on the spot against the current fleet state.
    std::function<void(const std::vector<const Request*>&,
                       const std::vector<Proposal>*)>
        assign = [&](const std::vector<const Request*>& members,
                     const std::vector<Proposal>* priced) {
          std::vector<Proposal> local;
          if (priced == nullptr) {
            local = price_group(members);
            priced = &local;
          }
          for (const Proposal& p : *priced) {
            Vehicle& v = fleet[p.vehicle];
            dispatch::GroupInsertion ins = dispatch::InsertGroupSequential(
                v.route_state(ctx->now), v.schedule(), members, ctx->engine);
            if (!ins.feasible) continue;
            if (!v.CommitSchedule(ins.schedule, ctx->now, ctx->engine)) {
              continue;
            }
            for (const Request* r : members) ctx->assigned.push_back(r->id);
            return;
          }
          if (members.size() <= 1 || !config_.sard_split_rejected_groups) {
            return;
          }
          auto mid = members.begin() +
                     static_cast<ptrdiff_t>(members.size() / 2);
          std::vector<const Request*> lo(members.begin(), mid);
          std::vector<const Request*> hi(mid, members.end());
          assign(lo, nullptr);
          assign(hi, nullptr);
        };
    for (size_t gi = 0; gi < groups.size(); ++gi) {
      assign(group_members[gi], &proposals[gi]);
    }

    size_t proposal_bytes = 0;
    for (const auto& plist : proposals) {
      proposal_bytes += plist.size() * sizeof(Proposal);
    }
    // Size-based accounting over the same content terms as the pooled twin
    // (CSR offsets + adjacency, member/group records), so memory_bytes is
    // identical across the two representations (pinned by tests/soa_test).
    size_t num_adj = 0;
    for (const Request* r : ctx->pending) num_adj += open.Degree(r->id);
    size_t num_members = 0;
    for (const auto& g : groups) num_members += g.size();
    const size_t graph_bytes =
        (2 * ctx->pending.size() + 1 + num_adj) * sizeof(size_t);
    const size_t group_bytes =
        num_members * (sizeof(size_t) + sizeof(const Request*)) +
        groups.size() * 2 * sizeof(size_t);
    NotePeak(builder->MemoryBytes() + graph_bytes + proposal_bytes +
             scanner.MemoryBytes() + group_bytes);
  }

  // The caller's per-run pool when provided; otherwise a private pool built
  // once and reused for every batch (never fresh threads per batch).
  ThreadPool* WorkerPool(DispatchContext* ctx) {
    int threads = config_.sard_parallel_acceptance
                      ? std::max(1, config_.num_threads)
                      : 1;
    if (threads <= 1) return nullptr;
    if (ctx->pool) return ctx->pool;
    if (!own_pool_) own_pool_ = std::make_unique<ThreadPool>(threads);
    return own_pool_.get();
  }

  /// Fallback when the caller keeps no run-scoped builder (the frozen
  /// legacy engine, hand-built contexts): SARD stays persistent either way.
  std::unique_ptr<ShareGraphBuilder> builder_;
  std::unique_ptr<ThreadPool> own_pool_;
  /// Pooled-path persistent state: the per-batch fleet index (planes
  /// refilled in place), the fallback pending-pool SoA view and the
  /// fallback batch arena for callers that provide none.
  dispatch::CandidateScanner scanner_;
  RequestSoA pending_soa_;
  EpochArena own_arena_;
};

}  // namespace

std::unique_ptr<Dispatcher> MakeSard(const DispatchConfig& config) {
  return std::make_unique<SardDispatcher>(config);
}

}  // namespace structride
