#include "dispatch/shard.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/logging.h"

namespace structride {

void ShardPartition::Build(const RoadNetwork& net, int num_shards,
                           int grid_cols) {
  net_ = &net;
  num_shards_ = std::max(1, num_shards);
  if (num_shards_ == 1 || net.num_nodes() == 0) {
    cols_ = rows_ = 1;
    cell_w_ = cell_h_ = 1;
    min_x_ = min_y_ = 0;
    return;
  }
  double min_x = net.position(0).x, max_x = min_x;
  double min_y = net.position(0).y, max_y = min_y;
  for (size_t n = 1; n < net.num_nodes(); ++n) {
    const Point p = net.position(static_cast<NodeId>(n));
    min_x = std::min(min_x, p.x);
    max_x = std::max(max_x, p.x);
    min_y = std::min(min_y, p.y);
    max_y = std::max(max_y, p.y);
  }
  int cols = grid_cols > 0
                 ? std::min(grid_cols, num_shards_)
                 : static_cast<int>(
                       std::ceil(std::sqrt(static_cast<double>(num_shards_))));
  cols_ = std::max(1, cols);
  rows_ = (num_shards_ + cols_ - 1) / cols_;
  min_x_ = min_x;
  min_y_ = min_y;
  // Same clamp discipline as FleetSpatialIndex: degenerate (single-point)
  // extents still index safely.
  cell_w_ = std::max((max_x - min_x) / cols_, 1e-9);
  cell_h_ = std::max((max_y - min_y) / rows_, 1e-9);
}

int ShardPartition::ShardOfNode(NodeId node) const {
  if (num_shards_ == 1) return 0;
  SR_CHECK(net_ != nullptr);
  const Point p = net_->position(node);
  int cx = std::min(
      cols_ - 1,
      std::max(0, static_cast<int>((p.x - min_x_) / cell_w_)));
  int cy = std::min(
      rows_ - 1,
      std::max(0, static_cast<int>((p.y - min_y_) / cell_h_)));
  return std::min(cy * cols_ + cx, num_shards_ - 1);
}

uint64_t MemberPlaneFingerprint(const std::vector<size_t>& members) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (size_t m : members) {
    h ^= static_cast<uint64_t>(m);
    h *= 0x100000001b3ull;
  }
  // Fold the length in so a plane that shrinks to a prefix still changes.
  h ^= static_cast<uint64_t>(members.size());
  h *= 0x100000001b3ull;
  return h;
}

double ShardLoadMaxOverMean(const std::vector<uint64_t>& loads) {
  if (loads.empty()) return 0;
  uint64_t total = 0, max_load = 0;
  for (uint64_t l : loads) {
    total += l;
    max_load = std::max(max_load, l);
  }
  if (total == 0) return 0;
  return static_cast<double>(max_load) * static_cast<double>(loads.size()) /
         static_cast<double>(total);
}

size_t NearestInServiceVehicle(const std::vector<Vehicle>& fleet,
                               const RoadNetwork& net, NodeId from) {
  size_t best = std::numeric_limits<size_t>::max();
  double best_dist = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < fleet.size(); ++i) {
    if (!fleet[i].in_service()) continue;
    double d = net.EuclidLowerBound(fleet[i].node(), from);
    if (d < best_dist) {
      best_dist = d;
      best = i;
    }
  }
  return best;
}

}  // namespace structride
