// Geo-sharding support (DESIGN.md §12): the zone partition of a metro and
// the per-zone runtime bundle the simulation engine coordinates.
//
// The partition reuses the FleetSpatialIndex grid discipline — a uniform
// grid over the road network's bounding box, row-major cells, every cell
// past the shard count folded into the last shard — so zone membership is a
// pure function of a node's position: cheap enough to evaluate on every
// request release and stop completion, and identical across runs. With one
// shard every node maps to zone 0 and the whole machinery degenerates to
// the pre-sharding engine (the bitwise 1-shard gate).

#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/entity_pools.h"
#include "dispatch/dispatcher.h"
#include "util/arena.h"

namespace structride {

/// Row-major uniform-grid zone partition over the network's bounding box.
class ShardPartition {
 public:
  /// Partitions \p net into \p num_shards zones. \p grid_cols overrides the
  /// column count (0 picks ceil(sqrt(num_shards))); rows follow as
  /// ceil(num_shards / cols). Cells beyond num_shards-1 fold into the last
  /// shard so every node maps into [0, num_shards).
  void Build(const RoadNetwork& net, int num_shards, int grid_cols = 0);

  int ShardOfNode(NodeId node) const;

  int num_shards() const { return num_shards_; }
  int cols() const { return cols_; }
  int rows() const { return rows_; }

 private:
  const RoadNetwork* net_ = nullptr;
  int num_shards_ = 1;
  int cols_ = 1, rows_ = 1;
  double min_x_ = 0, min_y_ = 0;
  double cell_w_ = 1, cell_h_ = 1;
};

/// Everything one zone owns: its dispatcher instance, incrementally
/// maintained share graph, SoA planes and batch arena, the resident vehicle
/// set (ascending fleet indices — the restricted FleetView's member plane),
/// its private travel-cost cache partition, and its dispatch context. The
/// simulation engine drives all shards from the shared EventQueue and
/// ThreadPool under a buffer-then-commit round protocol (DESIGN.md §12):
/// the batch phase touches only this struct plus read-only global planes
/// (so shards may run concurrently), and the engine merges the ctx output
/// buffers serially in shard-id order, so N-shard runs stay deterministic.
struct ShardRuntime {
  int id = 0;
  /// Resident fleet-storage indices, strictly ascending.
  std::vector<size_t> members;
  std::unique_ptr<Dispatcher> dispatcher;
  std::unique_ptr<ShareGraphBuilder> sharegraph;
  /// This shard's travel-cost cache partition
  /// (TravelCostEngine::MakeCachePartition), owned by the simulation engine
  /// so it stays warm across runs; null at 1 shard (the root engine serves
  /// directly, preserving the bitwise 1-shard gate).
  TravelCostEngine* cache = nullptr;
  DispatchContext ctx;
  EpochArena arena;
  FleetSoA fleet_soa;
  RequestSoA pending_soa;
  /// Requests this shard has assigned over the whole run (the load-balance
  /// numerator of RunMetrics::shard_load_max_over_mean).
  uint64_t assigned_total = 0;
  /// Wall seconds this shard's OnBatch calls have taken over the run (the
  /// imbalance numerator of RunMetrics::shard_round_time_max_over_mean) and
  /// in the last round alone.
  double batch_seconds_total = 0;
  double last_batch_seconds = 0;
  /// Heap allocations observed strictly around the last OnBatch. Only
  /// meaningful when the batch phase ran serially (concurrent shards share
  /// the process-wide counter); the engine then sums per-shard deltas to
  /// reproduce the pre-sharding steady-state alloc gate exactly.
  uint64_t last_batch_allocs = 0;
  /// Per-run baselines for the partition's counters, captured at run start
  /// so RunMetrics::shard_sp_queries / shard_cache_hit_rate report this run
  /// only even though partitions stay warm across runs.
  uint64_t queries_at_run_start = 0;
  uint64_t lookups_at_run_start = 0;
};

/// max(loads) / mean(loads); 0 when every load is zero (no assignments).
double ShardLoadMaxOverMean(const std::vector<uint64_t>& loads);

/// Order-sensitive FNV-1a fingerprint of a shard's member plane. The engine
/// snapshots every shard's fingerprint before the (possibly concurrent)
/// batch phase and SR_CHECKs them unchanged after: no shard may touch any
/// member plane — its own included — until the serial commit phase.
uint64_t MemberPlaneFingerprint(const std::vector<size_t>& members);

/// Fleet-storage index of the in-service vehicle nearest \p from by the
/// straight-line lower bound (ties: lower index), or SIZE_MAX when none is
/// in service. The escrow scan's "best-candidate vehicle" oracle.
size_t NearestInServiceVehicle(const std::vector<Vehicle>& fleet,
                               const RoadNetwork& net, NodeId from);

}  // namespace structride
