#include "dispatch/spatial_index.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/arena.h"

namespace structride {
namespace dispatch {

namespace {

// Distance from a point to the complement of an axis-aligned rectangle:
// how far any point strictly outside [x0,x1]x[y0,y1] must be from q. Zero
// when q itself lies outside the rectangle.
double OutsideDistance(const Point& q, double x0, double y0, double x1,
                       double y1) {
  if (q.x < x0 || q.x > x1 || q.y < y0 || q.y > y1) return 0;
  return std::min(std::min(q.x - x0, x1 - q.x),
                  std::min(q.y - y0, y1 - q.y));
}

// Distance from a point to an axis-aligned rectangle (zero inside).
double BoxDistance(const Point& q, double x0, double y0, double x1,
                   double y1) {
  double dx = q.x < x0 ? x0 - q.x : (q.x > x1 ? q.x - x1 : 0);
  double dy = q.y < y0 ? y0 - q.y : (q.y > y1 ? q.y - y1 : 0);
  return std::sqrt(dx * dx + dy * dy);
}

}  // namespace

void FleetSpatialIndex::Rebuild(const std::vector<Vehicle>& fleet,
                                const RoadNetwork& net) {
  // Read-only delegation; nothing mutates through the view.
  Rebuild(FleetView(const_cast<std::vector<Vehicle>*>(&fleet)), net);
}

void FleetSpatialIndex::Rebuild(const FleetView& fleet,
                                const RoadNetwork& net) {
  net_ = &net;
  positions_.clear();
  active_.clear();
  positions_.reserve(fleet.size());
  active_.reserve(fleet.size());
  for (size_t i = 0; i < fleet.size(); ++i) {
    const Vehicle& v = fleet[i];
    positions_.push_back(net.position(v.node()));
    active_.push_back(v.in_service() ? 1 : 0);
  }
  if (positions_.empty()) {
    cols_ = rows_ = 1;
    bucket_offsets_.assign(2, 0);
    bucket_items_.clear();
    return;
  }
  double max_x = positions_[0].x, max_y = positions_[0].y;
  min_x_ = positions_[0].x;
  min_y_ = positions_[0].y;
  for (const Point& p : positions_) {
    min_x_ = std::min(min_x_, p.x);
    min_y_ = std::min(min_y_, p.y);
    max_x = std::max(max_x, p.x);
    max_y = std::max(max_y, p.y);
  }
  // ~1 vehicle per cell: rings around a query cell then hold a handful of
  // candidates each, so KNearest(16) touches tens of vehicles, not the fleet.
  int side = static_cast<int>(std::ceil(
      std::sqrt(static_cast<double>(positions_.size()))));
  cols_ = rows_ = std::max(1, side);
  cell_w_ = std::max((max_x - min_x_) / cols_, 1e-9);
  cell_h_ = std::max((max_y - min_y_) / rows_, 1e-9);

  // Counting sort into the CSR planes. Filling in fleet order keeps every
  // bucket ascending by vehicle index. Out-of-service vehicles are never
  // bucketed: the index answers candidate scans, and pulled vehicles take
  // no new work.
  const size_t num_cells =
      static_cast<size_t>(cols_) * static_cast<size_t>(rows_);
  cell_of_.clear();
  cell_of_.resize(positions_.size(), num_cells);  // sentinel: not bucketed
  bucket_offsets_.assign(num_cells + 1, 0);
  for (size_t i = 0; i < positions_.size(); ++i) {
    if (!active_[i]) continue;
    int cx = std::min(cols_ - 1,
                      std::max(0, static_cast<int>((positions_[i].x - min_x_) /
                                                   cell_w_)));
    int cy = std::min(rows_ - 1,
                      std::max(0, static_cast<int>((positions_[i].y - min_y_) /
                                                   cell_h_)));
    cell_of_[i] = static_cast<size_t>(cy) * static_cast<size_t>(cols_) +
                  static_cast<size_t>(cx);
    ++bucket_offsets_[cell_of_[i] + 1];
  }
  for (size_t c = 0; c < num_cells; ++c) {
    bucket_offsets_[c + 1] += bucket_offsets_[c];
  }
  bucket_items_.resize(bucket_offsets_[num_cells]);
  {
    ArenaScope scope(ScratchArena());
    size_t* fill = scope.AllocateArray<size_t>(num_cells);
    std::copy(bucket_offsets_.begin(), bucket_offsets_.end() - 1, fill);
    for (size_t i = 0; i < positions_.size(); ++i) {
      if (cell_of_[i] == num_cells) continue;
      bucket_items_[fill[cell_of_[i]]++] = i;
    }
  }
}

size_t FleetSpatialIndex::QueryInto(NodeId from, size_t k, double max_dist,
                                    size_t* out) const {
  if (k == 0 || positions_.empty()) return 0;
  const Point q = net_->position(from);
  ArenaScope scope(ScratchArena());

  // Dense ask: k covers most of the fleet, so walking every grid cell with
  // per-candidate bound upkeep cannot beat one flat scan + sort (this is
  // pruneGDP's radius query with k = fleet size).
  if (2 * k >= positions_.size()) {
    auto* cand =
        scope.AllocateArray<std::pair<double, size_t>>(positions_.size());
    size_t num_cand = 0;
    for (size_t i = 0; i < positions_.size(); ++i) {
      if (!active_[i]) continue;
      double d = EuclidDistance(q, positions_[i]);
      if (max_dist >= 0 && d > max_dist) continue;
      cand[num_cand++] = {d, i};
    }
    // Lexicographic pair order reproduces the full sort's distance-then-
    // index tie break exactly.
    std::sort(cand, cand + num_cand);
    size_t written = std::min(num_cand, k);
    for (size_t i = 0; i < written; ++i) out[i] = cand[i].second;
    return written;
  }

  const int qcx = std::min(
      cols_ - 1,
      std::max(0, static_cast<int>((q.x - min_x_) / cell_w_)));
  const int qcy = std::min(
      rows_ - 1,
      std::max(0, static_cast<int>((q.y - min_y_) / cell_h_)));

  // Sorted best-k array of (distance, index) pairs; k is small on this
  // path, so ordered insertion is a short memmove — cheaper than heap
  // churn, and already in final order.
  auto* best = scope.AllocateArray<std::pair<double, size_t>>(k + 1);
  size_t num_best = 0;
  auto bound = [&]() {
    return num_best == k ? best[num_best - 1].first
                         : std::numeric_limits<double>::infinity();
  };
  auto scan_cell = [&](int cx, int cy) {
    // Cell-level prune: nothing inside the cell's rectangle can beat the
    // current kth-best.
    if (num_best == k) {
      double cell_lb = BoxDistance(q, min_x_ + cx * cell_w_,
                                   min_y_ + cy * cell_h_,
                                   min_x_ + (cx + 1) * cell_w_,
                                   min_y_ + (cy + 1) * cell_h_);
      if (cell_lb > best[num_best - 1].first) return;
    }
    size_t len = 0;
    const size_t* bucket = BucketBegin(cx, cy, &len);
    for (size_t b = 0; b < len; ++b) {
      size_t i = bucket[b];
      double d = EuclidDistance(q, positions_[i]);
      if (max_dist >= 0 && d > max_dist) continue;
      std::pair<double, size_t> cand{d, i};
      if (num_best == k && !(cand < best[num_best - 1])) continue;
      auto* pos = std::upper_bound(best, best + num_best, cand);
      for (auto* m = best + num_best; m > pos; --m) *m = *(m - 1);
      *pos = cand;
      if (num_best < k) ++num_best;
    }
  };

  const int max_ring = std::max(cols_, rows_);
  for (int r = 0; r <= max_ring; ++r) {
    // Lower bound on the distance from q to any cell outside the already
    // scanned (2r-1)-block: once it exceeds both the kth-best distance and
    // the radius cap, no unscanned vehicle can make the result (ties at the
    // bound keep expanding, so the index-ascending tie break stays exact).
    if (r > 0) {
      double lb = OutsideDistance(q, min_x_ + (qcx - (r - 1)) * cell_w_,
                                  min_y_ + (qcy - (r - 1)) * cell_h_,
                                  min_x_ + (qcx + r) * cell_w_,
                                  min_y_ + (qcy + r) * cell_h_);
      bool past_k = num_best == k && lb > bound();
      bool past_radius = max_dist >= 0 && lb > max_dist;
      if (past_k || past_radius) break;
    }
    const int x0 = qcx - r, x1 = qcx + r, y0 = qcy - r, y1 = qcy + r;
    for (int cy = std::max(0, y0); cy <= std::min(rows_ - 1, y1); ++cy) {
      bool edge_row = cy == y0 || cy == y1;
      for (int cx = std::max(0, x0); cx <= std::min(cols_ - 1, x1); ++cx) {
        if (!edge_row && cx != x0 && cx != x1) continue;  // perimeter only
        scan_cell(cx, cy);
      }
    }
  }

  for (size_t i = 0; i < num_best; ++i) out[i] = best[i].second;
  return num_best;
}

size_t FleetSpatialIndex::MemoryBytes() const {
  size_t bytes = positions_.size() * (sizeof(Point) + sizeof(size_t));
  bytes += active_.size() * sizeof(char);
  bytes += (bucket_offsets_.size() + bucket_items_.size()) * sizeof(size_t);
  return bytes;
}

}  // namespace dispatch
}  // namespace structride
