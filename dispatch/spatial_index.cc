#include "dispatch/spatial_index.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace structride {
namespace dispatch {

namespace {

// Distance from a point to the complement of an axis-aligned rectangle:
// how far any point strictly outside [x0,x1]x[y0,y1] must be from q. Zero
// when q itself lies outside the rectangle.
double OutsideDistance(const Point& q, double x0, double y0, double x1,
                       double y1) {
  if (q.x < x0 || q.x > x1 || q.y < y0 || q.y > y1) return 0;
  return std::min(std::min(q.x - x0, x1 - q.x),
                  std::min(q.y - y0, y1 - q.y));
}

// Distance from a point to an axis-aligned rectangle (zero inside).
double BoxDistance(const Point& q, double x0, double y0, double x1,
                   double y1) {
  double dx = q.x < x0 ? x0 - q.x : (q.x > x1 ? q.x - x1 : 0);
  double dy = q.y < y0 ? y0 - q.y : (q.y > y1 ? q.y - y1 : 0);
  return std::sqrt(dx * dx + dy * dy);
}

}  // namespace

FleetSpatialIndex::FleetSpatialIndex(const std::vector<Vehicle>& fleet,
                                     const RoadNetwork& net)
    : net_(&net) {
  positions_.reserve(fleet.size());
  active_.reserve(fleet.size());
  for (const Vehicle& v : fleet) {
    positions_.push_back(net.position(v.node()));
    active_.push_back(v.in_service() ? 1 : 0);
  }
  if (positions_.empty()) {
    buckets_.resize(1);
    return;
  }
  double max_x = positions_[0].x, max_y = positions_[0].y;
  min_x_ = positions_[0].x;
  min_y_ = positions_[0].y;
  for (const Point& p : positions_) {
    min_x_ = std::min(min_x_, p.x);
    min_y_ = std::min(min_y_, p.y);
    max_x = std::max(max_x, p.x);
    max_y = std::max(max_y, p.y);
  }
  // ~1 vehicle per cell: rings around a query cell then hold a handful of
  // candidates each, so KNearest(16) touches tens of vehicles, not the fleet.
  int side = static_cast<int>(std::ceil(
      std::sqrt(static_cast<double>(positions_.size()))));
  cols_ = rows_ = std::max(1, side);
  cell_w_ = std::max((max_x - min_x_) / cols_, 1e-9);
  cell_h_ = std::max((max_y - min_y_) / rows_, 1e-9);
  buckets_.resize(static_cast<size_t>(cols_) * static_cast<size_t>(rows_));
  // Fleet order insertion keeps every bucket ascending by vehicle index.
  // Out-of-service vehicles are never bucketed: the index answers candidate
  // scans, and pulled vehicles take no new work.
  for (size_t i = 0; i < positions_.size(); ++i) {
    if (!active_[i]) continue;
    int cx = std::min(cols_ - 1,
                      std::max(0, static_cast<int>((positions_[i].x - min_x_) /
                                                   cell_w_)));
    int cy = std::min(rows_ - 1,
                      std::max(0, static_cast<int>((positions_[i].y - min_y_) /
                                                   cell_h_)));
    buckets_[static_cast<size_t>(cy) * static_cast<size_t>(cols_) +
             static_cast<size_t>(cx)]
        .push_back(i);
  }
}

std::vector<size_t> FleetSpatialIndex::Query(NodeId from, size_t k,
                                             double max_dist) const {
  std::vector<size_t> out;
  if (k == 0 || positions_.empty()) return out;
  const Point q = net_->position(from);

  // Dense ask: k covers most of the fleet, so walking every grid cell with
  // per-candidate bound upkeep cannot beat one flat scan + sort (this is
  // pruneGDP's radius query with k = fleet size).
  if (2 * k >= positions_.size()) {
    std::vector<std::pair<double, size_t>> cand;
    cand.reserve(positions_.size());
    for (size_t i = 0; i < positions_.size(); ++i) {
      if (!active_[i]) continue;
      double d = EuclidDistance(q, positions_[i]);
      if (max_dist >= 0 && d > max_dist) continue;
      cand.emplace_back(d, i);
    }
    // Lexicographic pair order reproduces the full sort's distance-then-
    // index tie break exactly.
    std::sort(cand.begin(), cand.end());
    if (cand.size() > k) cand.resize(k);
    out.reserve(cand.size());
    for (const auto& c : cand) out.push_back(c.second);
    return out;
  }

  const int qcx = std::min(
      cols_ - 1,
      std::max(0, static_cast<int>((q.x - min_x_) / cell_w_)));
  const int qcy = std::min(
      rows_ - 1,
      std::max(0, static_cast<int>((q.y - min_y_) / cell_h_)));

  // Sorted best-k array of (distance, index) pairs; k is small on this
  // path, so ordered insertion is a short memmove — cheaper than heap
  // churn, and already in final order.
  std::vector<std::pair<double, size_t>> best;
  best.reserve(k + 1);
  auto bound = [&]() {
    return best.size() == k ? best.back().first
                            : std::numeric_limits<double>::infinity();
  };
  auto scan_cell = [&](int cx, int cy) {
    // Cell-level prune: nothing inside the cell's rectangle can beat the
    // current kth-best.
    if (best.size() == k) {
      double cell_lb = BoxDistance(q, min_x_ + cx * cell_w_,
                                   min_y_ + cy * cell_h_,
                                   min_x_ + (cx + 1) * cell_w_,
                                   min_y_ + (cy + 1) * cell_h_);
      if (cell_lb > best.back().first) return;
    }
    for (size_t i : Bucket(cx, cy)) {
      double d = EuclidDistance(q, positions_[i]);
      if (max_dist >= 0 && d > max_dist) continue;
      std::pair<double, size_t> cand{d, i};
      if (best.size() == k && !(cand < best.back())) continue;
      best.insert(std::upper_bound(best.begin(), best.end(), cand), cand);
      if (best.size() > k) best.pop_back();
    }
  };

  const int max_ring = std::max(cols_, rows_);
  for (int r = 0; r <= max_ring; ++r) {
    // Lower bound on the distance from q to any cell outside the already
    // scanned (2r-1)-block: once it exceeds both the kth-best distance and
    // the radius cap, no unscanned vehicle can make the result (ties at the
    // bound keep expanding, so the index-ascending tie break stays exact).
    if (r > 0) {
      double lb = OutsideDistance(q, min_x_ + (qcx - (r - 1)) * cell_w_,
                                  min_y_ + (qcy - (r - 1)) * cell_h_,
                                  min_x_ + (qcx + r) * cell_w_,
                                  min_y_ + (qcy + r) * cell_h_);
      bool past_k = best.size() == k && lb > bound();
      bool past_radius = max_dist >= 0 && lb > max_dist;
      if (past_k || past_radius) break;
    }
    const int x0 = qcx - r, x1 = qcx + r, y0 = qcy - r, y1 = qcy + r;
    for (int cy = std::max(0, y0); cy <= std::min(rows_ - 1, y1); ++cy) {
      bool edge_row = cy == y0 || cy == y1;
      for (int cx = std::max(0, x0); cx <= std::min(cols_ - 1, x1); ++cx) {
        if (!edge_row && cx != x0 && cx != x1) continue;  // perimeter only
        scan_cell(cx, cy);
      }
    }
  }

  out.reserve(best.size());
  for (const auto& c : best) out.push_back(c.second);
  return out;
}

size_t FleetSpatialIndex::MemoryBytes() const {
  size_t bytes = positions_.size() * (sizeof(Point) + sizeof(size_t));
  bytes += active_.capacity() * sizeof(char);
  bytes += buckets_.size() * sizeof(std::vector<size_t>);
  return bytes;
}

}  // namespace dispatch
}  // namespace structride
