// Grid-bucket spatial index over the fleet's current positions. Dispatchers
// rebuild it once per batch (vehicle positions only change between batches;
// committing a schedule does not move a vehicle) and answer every
// nearest-candidate scan from it, replacing the O(F log F) full-fleet
// distance sort that used to run once per group per batch.
//
// Exactness contract: KNearest(from, k) returns exactly the first k entries
// of dispatch::VehiclesByDistance(fleet, net, from) — straight-line distance
// ascending, vehicle index ascending on ties — so swapping the index in
// changes running time, never dispatch outcomes. Both sides of the contract
// omit vehicles that are out of service (scenario downtime takes them off
// the candidate market; they still finish their committed stops).

#pragma once

#include <cstddef>
#include <vector>

#include "core/vehicle.h"

namespace structride {
namespace dispatch {

class FleetSpatialIndex {
 public:
  FleetSpatialIndex(const std::vector<Vehicle>& fleet, const RoadNetwork& net);

  /// The k nearest fleet indices to \p from, ordered by (distance, index).
  std::vector<size_t> KNearest(NodeId from, size_t k) const {
    return Query(from, k, -1.0);
  }

  /// Every fleet index with straight-line distance <= \p max_dist, nearest
  /// first, capped at \p k — the prefix an early-breaking scan over the
  /// distance-sorted fleet would have visited. A negative radius matches
  /// nothing (it is not the "unbounded" sentinel).
  std::vector<size_t> KNearestWithin(NodeId from, size_t k,
                                     double max_dist) const {
    if (max_dist < 0) return {};
    return Query(from, k, max_dist);
  }

  size_t MemoryBytes() const;

 private:
  std::vector<size_t> Query(NodeId from, size_t k, double max_dist) const;
  const std::vector<size_t>& Bucket(int cx, int cy) const {
    return buckets_[static_cast<size_t>(cy) * static_cast<size_t>(cols_) +
                    static_cast<size_t>(cx)];
  }

  const RoadNetwork* net_;
  std::vector<Point> positions_;  ///< per fleet index, batch-start position
  std::vector<char> active_;      ///< per fleet index, in_service at build
  double min_x_ = 0, min_y_ = 0;
  double cell_w_ = 1, cell_h_ = 1;
  int cols_ = 1, rows_ = 1;
  std::vector<std::vector<size_t>> buckets_;  ///< ascending fleet indices
};

}  // namespace dispatch
}  // namespace structride
