// Grid-bucket spatial index over the fleet's current positions. Dispatchers
// rebuild it once per batch (vehicle positions only change between batches;
// committing a schedule does not move a vehicle) and answer every
// nearest-candidate scan from it, replacing the O(F log F) full-fleet
// distance sort that used to run once per group per batch.
//
// Exactness contract: KNearest(from, k) returns exactly the first k entries
// of dispatch::VehiclesByDistance(fleet, net, from) — straight-line distance
// ascending, vehicle index ascending on ties — so swapping the index in
// changes running time, never dispatch outcomes. Both sides of the contract
// omit vehicles that are out of service (scenario downtime takes them off
// the candidate market; they still finish their committed stops).
//
// Storage is CSR (one offsets plane, one flat item plane) rather than a
// vector-of-vectors, and Rebuild() refills the planes in place — a
// persistent index serves a steady-state batch without heap allocation
// (DESIGN.md §8). The *Into query variants write fleet indices into a
// caller buffer, staging candidates on the calling thread's scratch arena,
// so concurrent workers query without touching the heap.

#pragma once

#include <cstddef>
#include <vector>

#include "core/vehicle.h"

namespace structride {
namespace dispatch {

class FleetSpatialIndex {
 public:
  FleetSpatialIndex() = default;
  FleetSpatialIndex(const std::vector<Vehicle>& fleet, const RoadNetwork& net) {
    Rebuild(fleet, net);
  }

  /// Re-indexes the fleet's batch-start positions, reusing every plane's
  /// capacity. Call once per batch. Indices stored and returned are
  /// view-local; a shard's restricted view (DESIGN.md §12) yields a
  /// shard-local index over its residents only.
  void Rebuild(const FleetView& fleet, const RoadNetwork& net);
  void Rebuild(const std::vector<Vehicle>& fleet, const RoadNetwork& net);

  /// The k nearest fleet indices to \p from, ordered by (distance, index).
  std::vector<size_t> KNearest(NodeId from, size_t k) const {
    std::vector<size_t> out(k);
    out.resize(QueryInto(from, k, -1.0, out.data()));
    return out;
  }

  /// Every fleet index with straight-line distance <= \p max_dist, nearest
  /// first, capped at \p k — the prefix an early-breaking scan over the
  /// distance-sorted fleet would have visited. A negative radius matches
  /// nothing (it is not the "unbounded" sentinel).
  std::vector<size_t> KNearestWithin(NodeId from, size_t k,
                                     double max_dist) const {
    if (max_dist < 0) return {};
    std::vector<size_t> out(k);
    out.resize(QueryInto(from, k, max_dist, out.data()));
    return out;
  }

  /// Allocation-free query twins: write up to \p k fleet indices into
  /// \p out (room for k) and return the count written.
  size_t KNearestInto(NodeId from, size_t k, size_t* out) const {
    return QueryInto(from, k, -1.0, out);
  }
  size_t KNearestWithinInto(NodeId from, size_t k, double max_dist,
                            size_t* out) const {
    if (max_dist < 0) return 0;
    return QueryInto(from, k, max_dist, out);
  }

  size_t MemoryBytes() const;

 private:
  size_t QueryInto(NodeId from, size_t k, double max_dist, size_t* out) const;
  /// Bucket (cx, cy) as a CSR slice of bucket_items_.
  const size_t* BucketBegin(int cx, int cy, size_t* len) const {
    size_t cell = static_cast<size_t>(cy) * static_cast<size_t>(cols_) +
                  static_cast<size_t>(cx);
    *len = bucket_offsets_[cell + 1] - bucket_offsets_[cell];
    return bucket_items_.data() + bucket_offsets_[cell];
  }

  const RoadNetwork* net_ = nullptr;
  std::vector<Point> positions_;  ///< per fleet index, batch-start position
  std::vector<char> active_;      ///< per fleet index, in_service at build
  double min_x_ = 0, min_y_ = 0;
  double cell_w_ = 1, cell_h_ = 1;
  int cols_ = 1, rows_ = 1;
  /// CSR buckets: cell c holds bucket_items_[bucket_offsets_[c] ..
  /// bucket_offsets_[c+1]), ascending fleet indices.
  std::vector<size_t> bucket_offsets_;
  std::vector<size_t> bucket_items_;
  std::vector<size_t> cell_of_;  ///< rebuild scratch: cell per active vehicle
};

}  // namespace dispatch
}  // namespace structride
