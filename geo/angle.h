// Planar points and the direction-angle helper behind the Sec. III-B angle
// pruning: theta = angle between the two trip direction vectors seen from a
// shared origin.

#pragma once

#include <cmath>

namespace structride {

constexpr double kPi = 3.14159265358979323846;

struct Point {
  double x = 0;
  double y = 0;
};

inline Point operator-(const Point& a, const Point& b) {
  return {a.x - b.x, a.y - b.y};
}
inline Point operator+(const Point& a, const Point& b) {
  return {a.x + b.x, a.y + b.y};
}

inline double Dot(const Point& a, const Point& b) { return a.x * b.x + a.y * b.y; }
inline double Norm(const Point& a) { return std::sqrt(Dot(a, a)); }
inline double EuclidDistance(const Point& a, const Point& b) {
  return Norm(a - b);
}

/// Angle in [0, pi] between vectors \p a and \p b; 0 for degenerate vectors
/// (a zero-length trip cannot be pruned by direction).
inline double AngleBetween(const Point& a, const Point& b) {
  double na = Norm(a), nb = Norm(b);
  if (na <= 1e-12 || nb <= 1e-12) return 0;
  double c = Dot(a, b) / (na * nb);
  if (c > 1) c = 1;
  if (c < -1) c = -1;
  return std::acos(c);
}

}  // namespace structride
