#include "group/grouping.h"

#include <map>

namespace structride {

namespace {

struct Node {
  std::vector<size_t> member_idx;  // indices into the ordered pool
  CandidateGroup group;
};

bool AdjacentToAll(const ShareGraph* graph, RequestId candidate,
                   const std::vector<RequestId>& members) {
  for (RequestId m : members) {
    if (!graph->HasEdge(candidate, m)) return false;
  }
  return true;
}

}  // namespace

GroupingResult EnumerateGroups(const RouteState& state,
                               const Schedule& committed,
                               const std::vector<Request>& pool,
                               const ShareGraph* graph,
                               TravelCostEngine* engine,
                               const GroupingOptions& options) {
  GroupingResult result;
  if (options.max_group_size <= 0) return result;

  std::vector<const Request*> ordered;
  ordered.reserve(pool.size());
  for (const Request& r : pool) ordered.push_back(&r);
  if (options.insertion_order == InsertionOrderPolicy::kByShareability &&
      graph != nullptr) {
    std::stable_sort(ordered.begin(), ordered.end(),
                     [graph](const Request* a, const Request* b) {
                       size_t da = graph->Degree(a->id);
                       size_t db = graph->Degree(b->id);
                       if (da != db) return da < db;
                       return a->id < b->id;
                     });
  }

  auto capped = [&] { return result.groups.size() >= options.max_groups; };

  std::vector<Node> level;
  for (size_t idx = 0; idx < ordered.size(); ++idx) {
    if (capped()) {
      result.truncated = true;
      return result;
    }
    InsertionCandidate cand =
        BestInsertion(state, committed, *ordered[idx], engine);
    if (!cand.feasible) continue;
    Node node;
    node.member_idx = {idx};
    node.group.members = {ordered[idx]->id};
    node.group.schedule = ApplyInsertion(committed, *ordered[idx], cand);
    node.group.delta_cost = cand.delta_cost;
    result.groups.push_back(node.group);
    level.push_back(std::move(node));
  }

  int size = 1;
  while (!level.empty() && size < options.max_group_size && graph != nullptr) {
    std::vector<Node> next;
    if (options.insertion_order == InsertionOrderPolicy::kByShareability) {
      // Additive tree: each set is generated once, along the index-increasing
      // path, i.e. members join in ascending shareability order.
      for (const Node& node : level) {
        for (size_t idx = node.member_idx.back() + 1; idx < ordered.size();
             ++idx) {
          const Request& r = *ordered[idx];
          if (!AdjacentToAll(graph, r.id, node.group.members)) continue;
          InsertionCandidate cand =
              BestInsertion(state, node.group.schedule, r, engine);
          if (!cand.feasible) continue;
          Node child;
          child.member_idx = node.member_idx;
          child.member_idx.push_back(idx);
          child.group.members = node.group.members;
          child.group.members.push_back(r.id);
          child.group.schedule = ApplyInsertion(node.group.schedule, r, cand);
          child.group.delta_cost = node.group.delta_cost + cand.delta_cost;
          next.push_back(std::move(child));
          if (result.groups.size() + next.size() >= options.max_groups) {
            result.truncated = true;
            break;
          }
        }
        if (result.truncated) break;
      }
    } else {
      // Best-of-all-parents: a set of size k+1 is reachable from each of its
      // k+1 parents; keep the cheapest schedule found.
      std::map<std::vector<RequestId>, Node> dedup;
      for (const Node& node : level) {
        for (size_t idx = 0; idx < ordered.size(); ++idx) {
          const Request& r = *ordered[idx];
          if (std::find(node.member_idx.begin(), node.member_idx.end(), idx) !=
              node.member_idx.end()) {
            continue;
          }
          if (!AdjacentToAll(graph, r.id, node.group.members)) continue;
          std::vector<RequestId> key = node.group.members;
          key.push_back(r.id);
          std::sort(key.begin(), key.end());
          InsertionCandidate cand =
              BestInsertion(state, node.group.schedule, r, engine);
          if (!cand.feasible) continue;
          double delta = node.group.delta_cost + cand.delta_cost;
          auto it = dedup.find(key);
          if (it != dedup.end() && it->second.group.delta_cost <= delta) {
            continue;
          }
          Node child;
          child.member_idx = node.member_idx;
          child.member_idx.push_back(idx);
          std::sort(child.member_idx.begin(), child.member_idx.end());
          child.group.members = key;
          child.group.schedule = ApplyInsertion(node.group.schedule, r, cand);
          child.group.delta_cost = delta;
          dedup[key] = std::move(child);
          if (result.groups.size() + dedup.size() >= options.max_groups) {
            result.truncated = true;
            break;
          }
        }
        if (result.truncated) break;
      }
      for (auto& [key, node] : dedup) {
        (void)key;
        next.push_back(std::move(node));
      }
    }
    for (const Node& node : next) result.groups.push_back(node.group);
    level = std::move(next);
    ++size;
    if (result.truncated) break;
  }
  return result;
}

size_t GroupingMemoryBytes(const GroupingResult& result) {
  size_t bytes = result.groups.size() * sizeof(CandidateGroup);
  for (const CandidateGroup& g : result.groups) {
    bytes += g.members.size() * sizeof(RequestId);
    bytes += g.schedule.size() * sizeof(Stop);
  }
  return bytes;
}

}  // namespace structride
