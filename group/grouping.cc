#include "group/grouping.h"

#include <map>

#include "util/arena.h"

namespace structride {

namespace {

struct Node {
  std::vector<size_t> member_idx;  // indices into the ordered pool
  CandidateGroup group;
};

bool AdjacentToAll(const ShareGraph* graph, RequestId candidate,
                   const std::vector<RequestId>& members) {
  for (RequestId m : members) {
    if (!graph->HasEdge(candidate, m)) return false;
  }
  return true;
}

bool AdjacentToAllSpan(const ShareGraph* graph, RequestId candidate,
                       const RequestId* members, uint32_t len) {
  for (uint32_t k = 0; k < len; ++k) {
    if (!graph->HasEdge(candidate, members[k])) return false;
  }
  return true;
}

// FNV-1a over the (sorted) member-id key.
uint64_t HashKey(const RequestId* key, uint32_t len) {
  uint64_t h = 1469598103934665603ull;
  for (uint32_t k = 0; k < len; ++k) {
    h ^= static_cast<uint64_t>(key[k]);
    h *= 1099511628211ull;
  }
  return h;
}

// One candidate child produced during a best-of-all-parents level, chained
// in production order on the call's arena.
struct ChildRec {
  const RequestId* key = nullptr;   ///< sorted member ids (len entries)
  const size_t* midx = nullptr;     ///< sorted pool indices (len entries)
  uint32_t len = 0;
  uint32_t parent = 0;              ///< index into the current level
  const Request* request = nullptr; ///< the member this child adds
  double delta = 0;
  InsertionCandidate cand;
  ChildRec* next = nullptr;
};

bool SameKey(const ChildRec* a, const ChildRec* b) {
  if (a->len != b->len) return false;
  for (uint32_t k = 0; k < a->len; ++k) {
    if (a->key[k] != b->key[k]) return false;
  }
  return true;
}

}  // namespace

GroupingResult EnumerateGroups(const RouteState& state,
                               const Schedule& committed,
                               const std::vector<Request>& pool,
                               const ShareGraph* graph,
                               TravelCostEngine* engine,
                               const GroupingOptions& options) {
  GroupingResult result;
  if (options.max_group_size <= 0) return result;

  std::vector<const Request*> ordered;
  ordered.reserve(pool.size());
  for (const Request& r : pool) ordered.push_back(&r);
  if (options.insertion_order == InsertionOrderPolicy::kByShareability &&
      graph != nullptr) {
    std::stable_sort(ordered.begin(), ordered.end(),
                     [graph](const Request* a, const Request* b) {
                       size_t da = graph->Degree(a->id);
                       size_t db = graph->Degree(b->id);
                       if (da != db) return da < db;
                       return a->id < b->id;
                     });
  }

  auto capped = [&] { return result.groups.size() >= options.max_groups; };

  std::vector<Node> level;
  level.reserve(ordered.size());
  result.groups.reserve(std::min(options.max_groups, ordered.size()));
  for (size_t idx = 0; idx < ordered.size(); ++idx) {
    if (capped()) {
      result.truncated = true;
      return result;
    }
    InsertionCandidate cand =
        BestInsertion(state, committed, *ordered[idx], engine);
    if (!cand.feasible) continue;
    Node node;
    node.member_idx = {idx};
    node.group.members = {ordered[idx]->id};
    node.group.schedule = ApplyInsertion(committed, *ordered[idx], cand);
    node.group.delta_cost = cand.delta_cost;
    result.groups.push_back(node.group);
    level.push_back(std::move(node));
  }

  int size = 1;
  while (!level.empty() && size < options.max_group_size && graph != nullptr) {
    std::vector<Node> next;
    next.reserve(level.size());
    if (options.insertion_order == InsertionOrderPolicy::kByShareability) {
      // Additive tree: each set is generated once, along the index-increasing
      // path, i.e. members join in ascending shareability order.
      for (const Node& node : level) {
        for (size_t idx = node.member_idx.back() + 1; idx < ordered.size();
             ++idx) {
          const Request& r = *ordered[idx];
          if (!AdjacentToAll(graph, r.id, node.group.members)) continue;
          InsertionCandidate cand =
              BestInsertion(state, node.group.schedule, r, engine);
          if (!cand.feasible) continue;
          Node child;
          child.member_idx.reserve(node.member_idx.size() + 1);
          child.member_idx = node.member_idx;
          child.member_idx.push_back(idx);
          child.group.members.reserve(node.group.members.size() + 1);
          child.group.members = node.group.members;
          child.group.members.push_back(r.id);
          child.group.schedule = ApplyInsertion(node.group.schedule, r, cand);
          child.group.delta_cost = node.group.delta_cost + cand.delta_cost;
          next.push_back(std::move(child));
          if (result.groups.size() + next.size() >= options.max_groups) {
            result.truncated = true;
            break;
          }
        }
        if (result.truncated) break;
      }
    } else {
      // Best-of-all-parents: a set of size k+1 is reachable from each of its
      // k+1 parents; keep the cheapest schedule found.
      std::map<std::vector<RequestId>, Node> dedup;
      for (const Node& node : level) {
        for (size_t idx = 0; idx < ordered.size(); ++idx) {
          const Request& r = *ordered[idx];
          if (std::find(node.member_idx.begin(), node.member_idx.end(), idx) !=
              node.member_idx.end()) {
            continue;
          }
          if (!AdjacentToAll(graph, r.id, node.group.members)) continue;
          std::vector<RequestId> key;
          key.reserve(node.group.members.size() + 1);
          key = node.group.members;
          key.push_back(r.id);
          std::sort(key.begin(), key.end());
          InsertionCandidate cand =
              BestInsertion(state, node.group.schedule, r, engine);
          if (!cand.feasible) continue;
          double delta = node.group.delta_cost + cand.delta_cost;
          auto it = dedup.find(key);
          if (it != dedup.end() && it->second.group.delta_cost <= delta) {
            continue;
          }
          Node child;
          child.member_idx.reserve(node.member_idx.size() + 1);
          child.member_idx = node.member_idx;
          child.member_idx.push_back(idx);
          std::sort(child.member_idx.begin(), child.member_idx.end());
          child.group.members = key;
          child.group.schedule = ApplyInsertion(node.group.schedule, r, cand);
          child.group.delta_cost = delta;
          dedup[key] = std::move(child);
          if (result.groups.size() + dedup.size() >= options.max_groups) {
            result.truncated = true;
            break;
          }
        }
        if (result.truncated) break;
      }
      next.reserve(dedup.size());
      for (auto& [key, node] : dedup) {
        (void)key;
        next.push_back(std::move(node));
      }
    }
    result.groups.reserve(result.groups.size() + next.size());
    for (const Node& node : next) result.groups.push_back(node.group);
    level = std::move(next);
    ++size;
    if (result.truncated) break;
  }
  return result;
}

PooledGroupingResult EnumerateGroupsPooled(const RouteState& state,
                                           Span<const Stop> committed,
                                           Span<const Request* const> pool,
                                           const ShareGraph* graph,
                                           TravelCostEngine* engine,
                                           const GroupingOptions& options,
                                           GroupingScratch* scratch) {
  PooledGroupingResult result;
  result.first_group = scratch->groups.size();
  if (options.max_group_size <= 0) return result;

  ArenaScope scope(ScratchArena());
  const size_t n = pool.size();
  const Request** ordered = scope.AllocateArray<const Request*>(n);
  for (size_t i = 0; i < n; ++i) ordered[i] = pool[i];
  if (options.insertion_order == InsertionOrderPolicy::kByShareability &&
      graph != nullptr) {
    // (degree, id) is a strict total order — ids are unique — so the
    // allocation-free std::sort reproduces the legacy stable_sort.
    std::sort(ordered, ordered + n,
              [graph](const Request* a, const Request* b) {
                size_t da = graph->Degree(a->id);
                size_t db = graph->Degree(b->id);
                if (da != db) return da < db;
                return a->id < b->id;
              });
  }

  auto count = [&] { return scratch->groups.size() - result.first_group; };
  auto capped = [&] { return count() >= options.max_groups; };

  // Splices request r (per cand) into parent and appends the group; the
  // caller supplies the full member-id list.
  auto emit_group = [&](Span<const Stop> parent, const Request& r,
                        const InsertionCandidate& cand,
                        const RequestId* members, uint32_t mlen,
                        double delta) {
    PooledGroup g;
    g.members_first = static_cast<uint32_t>(scratch->member_ids.size());
    g.members_len = mlen;
    scratch->member_ids.insert(scratch->member_ids.end(), members,
                               members + mlen);
    Stop* out = scratch->schedules.AppendUninit(parent.size() + 2, &g.schedule);
    ApplyInsertionInto(parent, r, cand, out);
    g.delta_cost = delta;
    scratch->groups.push_back(g);
    return g.schedule;
  };

  auto& level = scratch->level_;
  auto& next = scratch->next_;
  level.clear();
  next.clear();

  for (size_t idx = 0; idx < n; ++idx) {
    if (capped()) {
      result.truncated = true;
      result.count = count();
      return result;
    }
    InsertionCandidate cand =
        BestInsertion(state, committed, *ordered[idx], engine);
    if (!cand.feasible) continue;
    RequestId* mem = scope.AllocateArray<RequestId>(1);
    mem[0] = ordered[idx]->id;
    size_t* midx = scope.AllocateArray<size_t>(1);
    midx[0] = idx;
    SchedulePool::Handle h =
        emit_group(committed, *ordered[idx], cand, mem, 1, cand.delta_cost);
    level.push_back({mem, midx, 1, h, cand.delta_cost});
  }

  int size = 1;
  while (!level.empty() && size < options.max_group_size && graph != nullptr) {
    next.clear();
    if (options.insertion_order == InsertionOrderPolicy::kByShareability) {
      // Additive tree, as in EnumerateGroups; children are emitted at
      // production time, which is exactly the order the legacy path appends
      // them after the level completes.
      for (const auto& node : level) {
        for (size_t idx = node.member_idx[node.len - 1] + 1; idx < n; ++idx) {
          const Request& r = *ordered[idx];
          if (!AdjacentToAllSpan(graph, r.id, node.members, node.len)) continue;
          Span<const Stop> parent = scratch->schedules.View(node.schedule);
          InsertionCandidate cand = BestInsertion(state, parent, r, engine);
          if (!cand.feasible) continue;
          RequestId* mem = scope.AllocateArray<RequestId>(node.len + 1);
          std::copy(node.members, node.members + node.len, mem);
          mem[node.len] = r.id;
          size_t* midx = scope.AllocateArray<size_t>(node.len + 1);
          std::copy(node.member_idx, node.member_idx + node.len, midx);
          midx[node.len] = idx;
          double delta = node.delta + cand.delta_cost;
          SchedulePool::Handle h =
              emit_group(parent, r, cand, mem, node.len + 1, delta);
          next.push_back({mem, midx, node.len + 1, h, delta});
          if (capped()) {
            result.truncated = true;
            break;
          }
        }
        if (result.truncated) break;
      }
    } else {
      // Best-of-all-parents. Children are recorded in production order; the
      // winners — cheapest per member set, earliest producer on delta ties,
      // exactly the survivor of the legacy replace-if-cheaper map — are
      // selected and materialized afterwards in ascending key order, the
      // legacy map's iteration order. The member-key set (open addressing
      // over the arena) tracks the distinct-set count the truncation cap is
      // defined on.
      ChildRec* head = nullptr;
      ChildRec** tail = &head;
      size_t num_children = 0;
      size_t table_cap = 64;
      while (table_cap < 2 * level.size() + 16) table_cap <<= 1;
      ChildRec** table = scope.AllocateArray<ChildRec*>(table_cap);
      std::fill(table, table + table_cap, nullptr);
      size_t distinct = 0;

      auto find_slot = [&](ChildRec* rec) {
        size_t slot = HashKey(rec->key, rec->len) & (table_cap - 1);
        while (table[slot] != nullptr && !SameKey(table[slot], rec)) {
          slot = (slot + 1) & (table_cap - 1);
        }
        return slot;
      };
      auto grow_table = [&] {
        size_t old_cap = table_cap;
        ChildRec** old = table;
        table_cap <<= 1;
        table = scope.AllocateArray<ChildRec*>(table_cap);
        std::fill(table, table + table_cap, nullptr);
        for (size_t s = 0; s < old_cap; ++s) {
          if (old[s] != nullptr) table[find_slot(old[s])] = old[s];
        }
      };

      for (uint32_t ni = 0; ni < level.size() && !result.truncated; ++ni) {
        const auto& node = level[ni];
        for (size_t idx = 0; idx < n; ++idx) {
          const Request& r = *ordered[idx];
          bool contains = false;
          for (uint32_t k = 0; k < node.len; ++k) {
            if (node.member_idx[k] == idx) {
              contains = true;
              break;
            }
          }
          if (contains) continue;
          if (!AdjacentToAllSpan(graph, r.id, node.members, node.len)) continue;
          RequestId* key = scope.AllocateArray<RequestId>(node.len + 1);
          std::copy(node.members, node.members + node.len, key);
          key[node.len] = r.id;
          std::sort(key, key + node.len + 1);
          InsertionCandidate cand = BestInsertion(
              state, scratch->schedules.View(node.schedule), r, engine);
          if (!cand.feasible) continue;
          size_t* midx = scope.AllocateArray<size_t>(node.len + 1);
          std::copy(node.member_idx, node.member_idx + node.len, midx);
          midx[node.len] = idx;
          std::sort(midx, midx + node.len + 1);
          ChildRec* rec = scope.AllocateArray<ChildRec>(1);
          *rec = {key,  midx, node.len + 1,     ni,
                  &r,   node.delta + cand.delta_cost, cand, nullptr};
          *tail = rec;
          tail = &rec->next;
          ++num_children;
          size_t slot = find_slot(rec);
          if (table[slot] == nullptr) {
            table[slot] = rec;
            ++distinct;
            if (2 * distinct >= table_cap) grow_table();
            if (count() + distinct >= options.max_groups) {
              result.truncated = true;
              break;
            }
          }
        }
      }

      // Selection: sort all recorded children by (key, delta, production
      // index) and keep the first of each key run.
      ChildRec** all = scope.AllocateArray<ChildRec*>(num_children);
      {
        size_t w = 0;
        for (ChildRec* rec = head; rec != nullptr; rec = rec->next) {
          all[w++] = rec;
        }
      }
      uint32_t* order = scope.AllocateArray<uint32_t>(num_children);
      for (uint32_t i = 0; i < num_children; ++i) order[i] = i;
      std::sort(order, order + num_children, [&](uint32_t a, uint32_t b) {
        const ChildRec* ca = all[a];
        const ChildRec* cb = all[b];
        for (uint32_t k = 0; k < ca->len; ++k) {
          if (ca->key[k] != cb->key[k]) return ca->key[k] < cb->key[k];
        }
        if (ca->delta != cb->delta) return ca->delta < cb->delta;
        return a < b;
      });
      const ChildRec* prev = nullptr;
      for (size_t i = 0; i < num_children; ++i) {
        ChildRec* rec = all[order[i]];
        if (prev != nullptr && SameKey(prev, rec)) continue;
        prev = rec;
        Span<const Stop> parent =
            scratch->schedules.View(level[rec->parent].schedule);
        SchedulePool::Handle h = emit_group(parent, *rec->request, rec->cand,
                                            rec->key, rec->len, rec->delta);
        next.push_back({rec->key, rec->midx, rec->len, h, rec->delta});
      }
    }
    std::swap(level, next);
    ++size;
    if (result.truncated) break;
  }
  result.count = count();
  return result;
}

size_t GroupingMemoryBytes(const GroupingResult& result) {
  size_t bytes = result.groups.size() * sizeof(CandidateGroup);
  for (const CandidateGroup& g : result.groups) {
    bytes += g.members.size() * sizeof(RequestId);
    bytes += g.schedule.size() * sizeof(Stop);
  }
  return bytes;
}

size_t PooledGroupingMemoryBytes(const GroupingScratch& scratch,
                                 const PooledGroupingResult& result) {
  size_t bytes = result.count * sizeof(CandidateGroup);
  for (size_t i = 0; i < result.count; ++i) {
    const PooledGroup& g = scratch.groups[result.first_group + i];
    bytes += g.members_len * sizeof(RequestId);
    bytes += scratch.ScheduleOf(g).size() * sizeof(Stop);
  }
  return bytes;
}

}  // namespace structride
