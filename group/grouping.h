// The Algorithm-2 grouping enumerator: all request groups (cliques in the
// shareability graph) a given vehicle could feasibly absorb, each with a
// concrete schedule and delta cost. Two insertion-order policies trade
// enumeration cost for schedule quality:
//
//  - kByShareability: the paper's additive tree — one schedule per group,
//    members inserted in ascending shareability (degree) order, which is
//    exactly the ordering Sec. IV-A shows reaches the optimum most often.
//  - kBestOfAllParents: the GAS-quality variant — every parent group's
//    schedule is tried for the new member and the cheapest kept; more work,
//    occasionally better schedules.
//
// Two representations of the output (DESIGN.md §8):
//  - EnumerateGroups: one CandidateGroup per group, each owning vectors —
//    the legacy reference the differential tests pin against.
//  - EnumerateGroupsPooled: groups append into a caller-owned
//    GroupingScratch (schedules in a SchedulePool, member ids in one flat
//    vector) that persists across batches — a warmed scratch serves a
//    steady-state batch without heap allocation. Identical groups in
//    identical order, bitwise-identical schedules and deltas.

#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/entity_pools.h"
#include "core/insertion.h"
#include "sharegraph/share_graph.h"

namespace structride {

enum class InsertionOrderPolicy {
  kByShareability,
  kBestOfAllParents,
};

struct GroupingOptions {
  int max_group_size = 4;
  InsertionOrderPolicy insertion_order = InsertionOrderPolicy::kByShareability;
  /// Safety cap on enumerated groups (RTV wires its ILP node cap in here).
  size_t max_groups = 200000;
};

struct CandidateGroup {
  std::vector<RequestId> members;
  Schedule schedule;       ///< committed stops + all members spliced in
  double delta_cost = 0;   ///< extra travel vs. the committed schedule
};

struct GroupingResult {
  std::vector<CandidateGroup> groups;
  bool truncated = false;  ///< hit max_groups before finishing a level
};

/// Enumerates feasible groups from \p pool for a vehicle at \p state with
/// \p committed stops. Groups must be cliques in \p graph (a null graph
/// admits only singleton groups).
GroupingResult EnumerateGroups(const RouteState& state,
                               const Schedule& committed,
                               const std::vector<Request>& pool,
                               const ShareGraph* graph,
                               TravelCostEngine* engine,
                               const GroupingOptions& options);

/// One enumerated group in the pooled representation: members are a slice
/// of GroupingScratch::member_ids, the schedule a SchedulePool handle.
struct PooledGroup {
  uint32_t members_first = 0;
  uint32_t members_len = 0;
  SchedulePool::Handle schedule = SchedulePool::kInvalid;
  double delta_cost = 0;
};

/// Batch-lifetime storage for pooled enumeration. One instance per
/// dispatcher: Reset() once per batch (retains capacity), then any number
/// of EnumerateGroupsPooled calls append into it and the consumer reads
/// groups until the next Reset.
struct GroupingScratch {
  SchedulePool schedules;
  std::vector<RequestId> member_ids;
  std::vector<PooledGroup> groups;

  Span<const RequestId> MembersOf(const PooledGroup& g) const {
    return {member_ids.data() + g.members_first, g.members_len};
  }
  Span<const Stop> ScheduleOf(const PooledGroup& g) const {
    return schedules.View(g.schedule);
  }

  void Reset() {
    schedules.Reset();
    member_ids.clear();
    groups.clear();
    level_.clear();
    next_.clear();
  }
  size_t MemoryBytes() const {
    return schedules.MemoryBytes() + member_ids.capacity() * sizeof(RequestId) +
           groups.capacity() * sizeof(PooledGroup);
  }

  // Per-call working state (capacity reused across calls; the pointers
  // reference the calling thread's scratch arena and die with the call).
  struct LevelNode {
    const RequestId* members = nullptr;
    const size_t* member_idx = nullptr;
    uint32_t len = 0;
    SchedulePool::Handle schedule = SchedulePool::kInvalid;
    double delta = 0;
  };
  std::vector<LevelNode> level_, next_;
};

/// Where EnumerateGroupsPooled put this call's groups: indices
/// [first_group, first_group + count) of scratch->groups.
struct PooledGroupingResult {
  size_t first_group = 0;
  size_t count = 0;
  bool truncated = false;  ///< hit max_groups before finishing a level
};

/// The pooled twin of EnumerateGroups: same groups, same order, same
/// schedules and deltas, same travel-cost query sequence — appended into
/// \p scratch instead of freshly allocated. \p options.max_groups caps this
/// call's group count (not the scratch total).
PooledGroupingResult EnumerateGroupsPooled(const RouteState& state,
                                           Span<const Stop> committed,
                                           Span<const Request* const> pool,
                                           const ShareGraph* graph,
                                           TravelCostEngine* engine,
                                           const GroupingOptions& options,
                                           GroupingScratch* scratch);

/// Estimated heap footprint of a grouping result (for Fig.-14-style
/// instrumented memory accounting).
size_t GroupingMemoryBytes(const GroupingResult& result);

/// Pooled counterpart of GroupingMemoryBytes for one call's slice: counts
/// the same content bytes (group records, member ids, schedule stops), so
/// the instrumented accounting stays representation-independent.
size_t PooledGroupingMemoryBytes(const GroupingScratch& scratch,
                                 const PooledGroupingResult& result);

}  // namespace structride
