// The Algorithm-2 grouping enumerator: all request groups (cliques in the
// shareability graph) a given vehicle could feasibly absorb, each with a
// concrete schedule and delta cost. Two insertion-order policies trade
// enumeration cost for schedule quality:
//
//  - kByShareability: the paper's additive tree — one schedule per group,
//    members inserted in ascending shareability (degree) order, which is
//    exactly the ordering Sec. IV-A shows reaches the optimum most often.
//  - kBestOfAllParents: the GAS-quality variant — every parent group's
//    schedule is tried for the new member and the cheapest kept; more work,
//    occasionally better schedules.

#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

#include "core/insertion.h"
#include "sharegraph/share_graph.h"

namespace structride {

enum class InsertionOrderPolicy {
  kByShareability,
  kBestOfAllParents,
};

struct GroupingOptions {
  int max_group_size = 4;
  InsertionOrderPolicy insertion_order = InsertionOrderPolicy::kByShareability;
  /// Safety cap on enumerated groups (RTV wires its ILP node cap in here).
  size_t max_groups = 200000;
};

struct CandidateGroup {
  std::vector<RequestId> members;
  Schedule schedule;       ///< committed stops + all members spliced in
  double delta_cost = 0;   ///< extra travel vs. the committed schedule
};

struct GroupingResult {
  std::vector<CandidateGroup> groups;
  bool truncated = false;  ///< hit max_groups before finishing a level
};

/// Enumerates feasible groups from \p pool for a vehicle at \p state with
/// \p committed stops. Groups must be cliques in \p graph (a null graph
/// admits only singleton groups).
GroupingResult EnumerateGroups(const RouteState& state,
                               const Schedule& committed,
                               const std::vector<Request>& pool,
                               const ShareGraph* graph,
                               TravelCostEngine* engine,
                               const GroupingOptions& options);

/// Estimated heap footprint of a grouping result (for Fig.-14-style
/// instrumented memory accounting).
size_t GroupingMemoryBytes(const GroupingResult& result);

}  // namespace structride
