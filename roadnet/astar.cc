#include "roadnet/astar.h"

#include <limits>
#include <queue>
#include <utility>
#include <vector>

namespace structride {

double AStarCost(const RoadNetwork& net, NodeId source, NodeId target) {
  if (source == target) return 0;
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> g(net.num_nodes(), kInf);
  using Entry = std::pair<double, NodeId>;  // (g + h, node)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> open;
  g[static_cast<size_t>(source)] = 0;
  open.push({net.EuclidLowerBound(source, target), source});
  while (!open.empty()) {
    auto [f, u] = open.top();
    open.pop();
    if (u == target) return g[static_cast<size_t>(u)];
    double gu = g[static_cast<size_t>(u)];
    if (f > gu + net.EuclidLowerBound(u, target) + 1e-9) continue;  // stale
    for (const RoadNetwork::Arc& arc : net.arcs(u)) {
      double ng = gu + arc.cost;
      if (ng < g[static_cast<size_t>(arc.to)]) {
        g[static_cast<size_t>(arc.to)] = ng;
        open.push({ng + net.EuclidLowerBound(arc.to, target), arc.to});
      }
    }
  }
  return kInf;
}

}  // namespace structride
