// A* point-to-point search using the Euclidean lower bound as heuristic.
// Admissible (and consistent) because every generator emits edge costs
// >= the Euclidean length of the edge.

#pragma once

#include "roadnet/road_network.h"

namespace structride {

double AStarCost(const RoadNetwork& net, NodeId source, NodeId target);

}  // namespace structride
