#include "roadnet/contraction_hierarchies.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <unordered_map>
#include <utility>

namespace structride {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
using HeapEntry = std::pair<double, NodeId>;
using MinHeap =
    std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>>;

// Working graph during contraction: adjacency with parallel-edge collapsing.
struct WorkGraph {
  std::vector<std::unordered_map<NodeId, double>> adj;

  explicit WorkGraph(const RoadNetwork& net) : adj(net.num_nodes()) {
    for (size_t u = 0; u < net.num_nodes(); ++u) {
      for (const RoadNetwork::Arc& arc : net.arcs(static_cast<NodeId>(u))) {
        auto it = adj[u].find(arc.to);
        if (it == adj[u].end() || arc.cost < it->second) {
          adj[u][arc.to] = arc.cost;
        }
      }
    }
  }

  void AddOrRelax(NodeId u, NodeId v, double cost) {
    auto it = adj[static_cast<size_t>(u)].find(v);
    if (it == adj[static_cast<size_t>(u)].end() || cost < it->second) {
      adj[static_cast<size_t>(u)][v] = cost;
    }
  }

  void RemoveNode(NodeId v) {
    for (const auto& [to, cost] : adj[static_cast<size_t>(v)]) {
      (void)cost;
      adj[static_cast<size_t>(to)].erase(v);
    }
    adj[static_cast<size_t>(v)].clear();
  }
};

// Local Dijkstra from `source`, ignoring `excluded`, stopping once all
// targets are settled or the cost limit / settle cap is exceeded. Returns
// settled distances for nodes in `targets`.
void WitnessSearch(const WorkGraph& g, NodeId source, NodeId excluded,
                   double limit, std::unordered_map<NodeId, double>* out) {
  std::unordered_map<NodeId, double> dist;
  MinHeap heap;
  dist[source] = 0;
  heap.push({0, source});
  int settled = 0;
  while (!heap.empty() && settled < 80) {
    auto [d, u] = heap.top();
    heap.pop();
    auto it = dist.find(u);
    if (it != dist.end() && d > it->second) continue;
    ++settled;
    if (d > limit) break;
    for (const auto& [to, cost] : g.adj[static_cast<size_t>(u)]) {
      if (to == excluded) continue;
      double nd = d + cost;
      auto jt = dist.find(to);
      if (jt == dist.end() || nd < jt->second) {
        dist[to] = nd;
        heap.push({nd, to});
      }
    }
  }
  *out = std::move(dist);
}

}  // namespace

ContractionHierarchies::ContractionHierarchies(const RoadNetwork& net) {
  size_t n = net.num_nodes();
  rank_.assign(n, 0);
  WorkGraph work(net);

  // All arcs (original + shortcuts) by endpoint; filtered into up_ at the end.
  std::vector<std::vector<Arc>> all(n);
  for (size_t u = 0; u < n; ++u) {
    for (const auto& [to, cost] : work.adj[u]) {
      all[u].push_back({to, cost});
    }
  }

  auto edge_difference = [&](NodeId v) {
    // Shortcuts needed if v were contracted now, minus removed edges.
    const auto& nbrs = work.adj[static_cast<size_t>(v)];
    int shortcuts = 0;
    for (auto it = nbrs.begin(); it != nbrs.end(); ++it) {
      for (auto jt = std::next(it); jt != nbrs.end(); ++jt) {
        double via = it->second + jt->second;
        std::unordered_map<NodeId, double> dist;
        WitnessSearch(work, it->first, v, via, &dist);
        auto found = dist.find(jt->first);
        if (found == dist.end() || found->second > via + 1e-9) ++shortcuts;
      }
    }
    return shortcuts - static_cast<int>(nbrs.size());
  };

  // Lazy-update contraction order.
  using PqEntry = std::pair<double, NodeId>;  // (priority, node)
  std::priority_queue<PqEntry, std::vector<PqEntry>, std::greater<>> pq;
  std::vector<int> contracted_neighbors(n, 0);
  for (size_t v = 0; v < n; ++v) {
    pq.push({static_cast<double>(edge_difference(static_cast<NodeId>(v))),
             static_cast<NodeId>(v)});
  }
  std::vector<bool> done(n, false);
  int32_t next_rank = 0;
  while (!pq.empty()) {
    auto [prio, v] = pq.top();
    pq.pop();
    if (done[static_cast<size_t>(v)]) continue;
    double fresh = static_cast<double>(edge_difference(v)) +
                   0.5 * contracted_neighbors[static_cast<size_t>(v)];
    if (!pq.empty() && fresh > pq.top().first + 1e-9) {
      pq.push({fresh, v});
      continue;
    }
    // Contract v: add witnesses-failing shortcuts between its neighbors.
    done[static_cast<size_t>(v)] = true;
    rank_[static_cast<size_t>(v)] = next_rank++;
    auto nbrs = work.adj[static_cast<size_t>(v)];  // copy; we mutate below
    for (auto it = nbrs.begin(); it != nbrs.end(); ++it) {
      for (auto jt = std::next(it); jt != nbrs.end(); ++jt) {
        double via = it->second + jt->second;
        std::unordered_map<NodeId, double> dist;
        WitnessSearch(work, it->first, v, via, &dist);
        auto found = dist.find(jt->first);
        if (found == dist.end() || found->second > via + 1e-9) {
          work.AddOrRelax(it->first, jt->first, via);
          work.AddOrRelax(jt->first, it->first, via);
          all[static_cast<size_t>(it->first)].push_back({jt->first, via});
          all[static_cast<size_t>(jt->first)].push_back({it->first, via});
          ++num_shortcuts_;
        }
      }
    }
    for (const auto& [to, cost] : nbrs) {
      (void)cost;
      ++contracted_neighbors[static_cast<size_t>(to)];
    }
    work.RemoveNode(v);
  }

  // Filter into per-node upward lists, then flatten into the CSR buffer.
  std::vector<Arc> up;
  up_offsets_.assign(n + 1, 0);
  for (size_t u = 0; u < n; ++u) {
    up.clear();
    for (const Arc& arc : all[u]) {
      if (rank_[static_cast<size_t>(arc.to)] > rank_[u]) {
        up.push_back(arc);
      }
    }
    // Deterministic order + dedupe parallel arcs keeping the cheapest.
    std::sort(up.begin(), up.end(), [](const Arc& a, const Arc& b) {
      return a.to != b.to ? a.to < b.to : a.cost < b.cost;
    });
    up.erase(std::unique(up.begin(), up.end(),
                         [](const Arc& a, const Arc& b) {
                           return a.to == b.to;
                         }),
             up.end());
    up_arcs_.insert(up_arcs_.end(), up.begin(), up.end());
    up_offsets_[u + 1] = static_cast<uint32_t>(up_arcs_.size());
  }
  up_arcs_.shrink_to_fit();
  up_offsets_view_ = {up_offsets_.data(), up_offsets_.size()};
  up_arcs_view_ = {up_arcs_.data(), up_arcs_.size()};
  rank_view_ = {rank_.data(), rank_.size()};
}

std::unique_ptr<ContractionHierarchies>
ContractionHierarchies::FromFrozenSections(Span<const uint32_t> up_offsets,
                                           Span<const Arc> up_arcs,
                                           Span<const int32_t> ranks,
                                           size_t num_shortcuts,
                                           std::shared_ptr<const void> payload) {
  auto ch = std::unique_ptr<ContractionHierarchies>(
      new ContractionHierarchies());
  ch->up_offsets_view_ = up_offsets;
  ch->up_arcs_view_ = up_arcs;
  ch->rank_view_ = ranks;
  ch->num_shortcuts_ = num_shortcuts;
  ch->payload_ = std::move(payload);
  return ch;
}

double ContractionHierarchies::Query(NodeId s, NodeId t) const {
  if (s == t) return 0;
  std::unordered_map<NodeId, double> df, db;
  MinHeap hf, hb;
  df[s] = 0;
  db[t] = 0;
  hf.push({0, s});
  hb.push({0, t});
  double best = kInf;
  auto step = [&](MinHeap& heap, std::unordered_map<NodeId, double>& dist,
                  const std::unordered_map<NodeId, double>& other) {
    auto [d, u] = heap.top();
    heap.pop();
    auto it = dist.find(u);
    if (it != dist.end() && d > it->second) return;
    auto ot = other.find(u);
    if (ot != other.end() && d + ot->second < best) best = d + ot->second;
    if (d >= best) return;
    for (const Arc& arc : UpArcs(u)) {
      double nd = d + arc.cost;
      auto jt = dist.find(arc.to);
      if (jt == dist.end() || nd < jt->second) {
        dist[arc.to] = nd;
        heap.push({nd, arc.to});
      }
    }
  };
  while (!hf.empty() || !hb.empty()) {
    double ft = hf.empty() ? kInf : hf.top().first;
    double bt = hb.empty() ? kInf : hb.top().first;
    if (std::min(ft, bt) >= best) break;
    if (ft <= bt) {
      step(hf, df, db);
    } else {
      step(hb, db, df);
    }
  }
  return best;
}

size_t ContractionHierarchies::MemoryBytes() const {
  size_t bytes = rank_.capacity() * sizeof(int32_t) +
                 up_offsets_.capacity() * sizeof(uint32_t) +
                 up_arcs_.capacity() * sizeof(Arc);
  if (payload_ != nullptr) {
    bytes += rank_view_.size() * sizeof(int32_t) +
             up_offsets_view_.size() * sizeof(uint32_t) +
             up_arcs_view_.size() * sizeof(Arc);
  }
  return bytes;
}

}  // namespace structride
