// Contraction hierarchies: the middle ground between index-free searches
// and hub labels. Nodes are contracted in an edge-difference order with
// witness searches; queries run a bidirectional upward Dijkstra over the
// augmented (original + shortcut) graph.
//
// Memory layout (DESIGN.md §"Memory layout"): the upward arcs live in one
// contiguous buffer with a CSR offset array (same shape as the frozen
// RoadNetwork), so the query's relax loop walks a flat span per node.
//
// Ownership (DESIGN.md §"Graph import and persistence"): queries read the
// upward CSR through borrowed views. A built hierarchy owns the buffers; a
// snapshot-loaded one borrows them from the (possibly mmap-ed) section
// payloads and keeps the backing GraphSource alive via payload_.

#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "roadnet/road_network.h"

namespace structride {

class ContractionHierarchies {
 public:
  struct Arc {
    NodeId to;
    double cost;
  };

  explicit ContractionHierarchies(const RoadNetwork& net);

  /// Adopts an already-built upward CSR owned elsewhere (a loaded
  /// snapshot); \p payload keeps the backing storage alive. The snapshot
  /// loader validates the CSR invariants before calling this.
  static std::unique_ptr<ContractionHierarchies> FromFrozenSections(
      Span<const uint32_t> up_offsets, Span<const Arc> up_arcs,
      Span<const int32_t> ranks, size_t num_shortcuts,
      std::shared_ptr<const void> payload);

  /// Exact shortest-path cost (infinity if disconnected).
  double Query(NodeId s, NodeId t) const;

  size_t num_shortcuts() const { return num_shortcuts_; }

  // Section views for serialization (roadnet/snapshot.cc).
  Span<const uint32_t> up_offsets() const { return up_offsets_view_; }
  Span<const Arc> up_arcs() const { return up_arcs_view_; }
  Span<const int32_t> node_ranks() const { return rank_view_; }

  size_t MemoryBytes() const;

 private:
  ContractionHierarchies() = default;

  Span<const Arc> UpArcs(NodeId v) const {
    const size_t u = static_cast<size_t>(v);
    return {up_arcs_view_.data() + up_offsets_view_[u],
            up_offsets_view_[u + 1] - up_offsets_view_[u]};
  }

  // Upward arcs only (to strictly higher-ranked neighbors), flattened CSR.
  // Vectors hold the owned (built) buffers; the views are what queries read
  // and point either at the vectors or at borrowed snapshot sections.
  std::vector<uint32_t> up_offsets_;  ///< size n + 1
  std::vector<Arc> up_arcs_;
  std::vector<int32_t> rank_;
  Span<const uint32_t> up_offsets_view_;
  Span<const Arc> up_arcs_view_;
  Span<const int32_t> rank_view_;
  std::shared_ptr<const void> payload_;  ///< keeps borrowed sections alive
  size_t num_shortcuts_ = 0;
};

}  // namespace structride
