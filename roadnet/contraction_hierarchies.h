// Contraction hierarchies: the middle ground between index-free searches
// and hub labels. Nodes are contracted in an edge-difference order with
// witness searches; queries run a bidirectional upward Dijkstra over the
// augmented (original + shortcut) graph.
//
// Memory layout (DESIGN.md §"Memory layout"): the upward arcs live in one
// contiguous buffer with a CSR offset array (same shape as the frozen
// RoadNetwork), so the query's relax loop walks a flat span per node.

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "roadnet/road_network.h"

namespace structride {

class ContractionHierarchies {
 public:
  explicit ContractionHierarchies(const RoadNetwork& net);

  /// Exact shortest-path cost (infinity if disconnected).
  double Query(NodeId s, NodeId t) const;

  size_t num_shortcuts() const { return num_shortcuts_; }
  size_t MemoryBytes() const;

 private:
  struct Arc {
    NodeId to;
    double cost;
  };

  Span<const Arc> UpArcs(NodeId v) const {
    const size_t u = static_cast<size_t>(v);
    return {up_arcs_.data() + up_offsets_[u],
            up_offsets_[u + 1] - up_offsets_[u]};
  }

  // Upward arcs only (to strictly higher-ranked neighbors), flattened CSR.
  std::vector<uint32_t> up_offsets_;  ///< size n + 1
  std::vector<Arc> up_arcs_;
  std::vector<int32_t> rank_;
  size_t num_shortcuts_ = 0;
};

}  // namespace structride
