// Contraction hierarchies: the middle ground between index-free searches
// and hub labels. Nodes are contracted in an edge-difference order with
// witness searches; queries run a bidirectional upward Dijkstra over the
// augmented (original + shortcut) graph.

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "roadnet/road_network.h"

namespace structride {

class ContractionHierarchies {
 public:
  explicit ContractionHierarchies(const RoadNetwork& net);

  /// Exact shortest-path cost (infinity if disconnected).
  double Query(NodeId s, NodeId t) const;

  size_t num_shortcuts() const { return num_shortcuts_; }
  size_t MemoryBytes() const;

 private:
  struct Arc {
    NodeId to;
    double cost;
  };

  // Upward arcs only: from each node to strictly higher-ranked neighbors.
  std::vector<std::vector<Arc>> up_;
  std::vector<int32_t> rank_;
  size_t num_shortcuts_ = 0;
};

}  // namespace structride
