#include "roadnet/dijkstra.h"

#include <limits>
#include <queue>
#include <utility>

namespace structride {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
using HeapEntry = std::pair<double, NodeId>;
using MinHeap =
    std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>>;
}  // namespace

std::vector<double> DijkstraAll(const RoadNetwork& net, NodeId source) {
  std::vector<double> dist(net.num_nodes(), kInf);
  MinHeap heap;
  dist[static_cast<size_t>(source)] = 0;
  heap.push({0, source});
  while (!heap.empty()) {
    auto [d, u] = heap.top();
    heap.pop();
    if (d > dist[static_cast<size_t>(u)]) continue;
    for (const RoadNetwork::Arc& arc : net.arcs(u)) {
      double nd = d + arc.cost;
      if (nd < dist[static_cast<size_t>(arc.to)]) {
        dist[static_cast<size_t>(arc.to)] = nd;
        heap.push({nd, arc.to});
      }
    }
  }
  return dist;
}

double BidirectionalDijkstra(const RoadNetwork& net, NodeId source,
                             NodeId target) {
  if (source == target) return 0;
  size_t n = net.num_nodes();
  std::vector<double> df(n, kInf), db(n, kInf);
  MinHeap hf, hb;
  df[static_cast<size_t>(source)] = 0;
  db[static_cast<size_t>(target)] = 0;
  hf.push({0, source});
  hb.push({0, target});
  double best = kInf;

  auto relax = [&](MinHeap& heap, std::vector<double>& dist,
                   const std::vector<double>& other) {
    auto [d, u] = heap.top();
    heap.pop();
    if (d > dist[static_cast<size_t>(u)]) return;
    if (other[static_cast<size_t>(u)] + d < best) {
      best = other[static_cast<size_t>(u)] + d;
    }
    for (const RoadNetwork::Arc& arc : net.arcs(u)) {
      double nd = d + arc.cost;
      size_t to = static_cast<size_t>(arc.to);
      if (nd < dist[to]) {
        dist[to] = nd;
        heap.push({nd, arc.to});
        if (other[to] < kInf && nd + other[to] < best) best = nd + other[to];
      }
    }
  };

  while (!hf.empty() && !hb.empty()) {
    if (hf.top().first + hb.top().first >= best) break;
    if (hf.top().first <= hb.top().first) {
      relax(hf, df, db);
    } else {
      relax(hb, db, df);
    }
  }
  return best;
}

}  // namespace structride
