// Plain and bidirectional Dijkstra over a RoadNetwork. These are the
// reference backends: exact, index-free, and the ground truth the indexed
// oracles (hub labels, contraction hierarchies) are tested against.

#pragma once

#include <vector>

#include "roadnet/road_network.h"

namespace structride {

/// Single-source shortest-path costs to every node (infinity if unreachable).
std::vector<double> DijkstraAll(const RoadNetwork& net, NodeId source);

/// Point-to-point cost via bidirectional search (infinity if unreachable).
double BidirectionalDijkstra(const RoadNetwork& net, NodeId source,
                             NodeId target);

}  // namespace structride
