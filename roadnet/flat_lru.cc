#include "roadnet/flat_lru.h"

#include "util/bits.h"
#include "util/logging.h"

namespace structride {

FlatLru::FlatLru(size_t capacity) {
  if (capacity == 0) capacity = 1;
  entries_.resize(capacity);
  // <= 50% load keeps linear-probe chains short even at full capacity.
  size_t buckets = RoundUpPow2(capacity * 2);
  table_.assign(buckets, -1);
  mask_ = buckets - 1;
  shift_ = 64;
  for (size_t b = buckets; b > 1; b >>= 1) --shift_;
}

size_t FlatLru::HomeBucket(uint64_t key) const {
  // Fibonacci hash: multiply spreads consecutive canonical pair keys, the
  // top bits index the power-of-two table.
  return static_cast<size_t>((key * 0x9e3779b97f4a7c15ull) >> shift_);
}

size_t FlatLru::BucketOf(uint64_t key) const {
  size_t b = HomeBucket(key);
  for (;;) {
    int32_t idx = table_[b];
    SR_CHECK(idx >= 0);  // caller guarantees presence
    if (entries_[static_cast<size_t>(idx)].key == key) return b;
    b = (b + 1) & mask_;
  }
}

void FlatLru::MoveToFront(int32_t idx) {
  if (idx == head_) return;
  Entry& e = entries_[static_cast<size_t>(idx)];
  // Unlink (idx != head_, so e.prev is valid).
  entries_[static_cast<size_t>(e.prev)].next = e.next;
  if (e.next >= 0) {
    entries_[static_cast<size_t>(e.next)].prev = e.prev;
  } else {
    tail_ = e.prev;
  }
  // Relink at the head.
  e.prev = -1;
  e.next = head_;
  entries_[static_cast<size_t>(head_)].prev = idx;
  head_ = idx;
}

const double* FlatLru::Find(uint64_t key) {
  size_t b = HomeBucket(key);
  for (;;) {
    int32_t idx = table_[b];
    if (idx < 0) return nullptr;
    if (entries_[static_cast<size_t>(idx)].key == key) {
      MoveToFront(idx);
      return &entries_[static_cast<size_t>(idx)].value;
    }
    b = (b + 1) & mask_;
  }
}

void FlatLru::EraseBucket(size_t b) {
  // Backward-shift deletion: refill the hole with the next element whose
  // home bucket still reaches it, so no probe chain is ever broken and no
  // tombstones accumulate.
  size_t hole = b;
  size_t j = b;
  for (;;) {
    table_[hole] = -1;
    for (;;) {
      j = (j + 1) & mask_;
      int32_t idx = table_[j];
      if (idx < 0) return;
      size_t home = HomeBucket(entries_[static_cast<size_t>(idx)].key);
      // The hole lies on this element's probe path iff the forward distance
      // home -> j is at least the forward distance hole -> j.
      if (((j - home) & mask_) >= ((j - hole) & mask_)) break;
    }
    table_[hole] = table_[j];
    hole = j;
  }
}

std::optional<uint64_t> FlatLru::Insert(uint64_t key, double value) {
  std::optional<uint64_t> evicted;
  int32_t idx;
  if (size_ == entries_.size()) {
    // Full: reuse the LRU entry's pool slot.
    idx = tail_;
    Entry& victim = entries_[static_cast<size_t>(idx)];
    evicted = victim.key;
    EraseBucket(BucketOf(victim.key));
    tail_ = victim.prev;
    if (tail_ >= 0) {
      entries_[static_cast<size_t>(tail_)].next = -1;
    } else {
      head_ = -1;
    }
  } else {
    idx = static_cast<int32_t>(size_);
    ++size_;
  }

  Entry& e = entries_[static_cast<size_t>(idx)];
  e.key = key;
  e.value = value;
  e.prev = -1;
  e.next = head_;
  if (head_ >= 0) entries_[static_cast<size_t>(head_)].prev = idx;
  head_ = idx;
  if (tail_ < 0) tail_ = idx;

  size_t b = HomeBucket(key);
  while (table_[b] >= 0) {
    SR_CHECK(entries_[static_cast<size_t>(table_[b])].key != key);
    b = (b + 1) & mask_;
  }
  table_[b] = idx;
  return evicted;
}

}  // namespace structride
