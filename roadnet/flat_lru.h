// Allocation-free LRU map from uint64 keys to double values — the per-shard
// store behind TravelCostEngine's travel-cost cache. One flat entry pool
// with intrusive MRU/LRU links plus an open-addressing index (linear
// probing, backward-shift deletion). All memory is reserved at construction
// and no operation allocates, so a cache hit touches two cache lines
// instead of the old std::list + std::unordered_map node chase.
//
// Semantics match the list-based shard it replaced exactly (tests pin the
// parity): Find touches the entry most-recently-used, Insert evicts the
// least-recently-used entry once `capacity` entries are live, and the
// caller owns the canonical-key and query-count contracts.

#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

namespace structride {

class FlatLru {
 public:
  /// Reserves the entry pool and index for \p capacity entries (clamped to
  /// >= 1). Nothing allocates after this.
  explicit FlatLru(size_t capacity);

  /// Value stored under \p key, touched most-recently-used; nullptr when
  /// absent. The pointer is valid until the next Insert.
  const double* Find(uint64_t key);

  /// Inserts a key that must not be present (checked), evicting the
  /// least-recently-used entry when full. Returns the evicted key, if any.
  std::optional<uint64_t> Insert(uint64_t key, double value);

  size_t size() const { return size_; }
  size_t capacity() const { return entries_.size(); }

  /// Exact bytes of the two flat buffers (they never grow).
  size_t MemoryBytes() const {
    return entries_.capacity() * sizeof(Entry) +
           table_.capacity() * sizeof(int32_t);
  }

 private:
  struct Entry {
    uint64_t key = 0;
    double value = 0;
    int32_t prev = -1;  ///< toward MRU
    int32_t next = -1;  ///< toward LRU
  };

  size_t HomeBucket(uint64_t key) const;
  /// Index-table bucket currently holding \p key (which must be present).
  size_t BucketOf(uint64_t key) const;
  void MoveToFront(int32_t idx);
  /// Empties bucket \p b, back-shifting displaced entries so every probe
  /// chain stays contiguous.
  void EraseBucket(size_t b);

  std::vector<Entry> entries_;  ///< fixed pool; slot of an entry never moves
  std::vector<int32_t> table_;  ///< open addressing: entry index or -1
  size_t mask_ = 0;
  int shift_ = 0;
  size_t size_ = 0;
  int32_t head_ = -1;  ///< most recently used
  int32_t tail_ = -1;  ///< least recently used
};

}  // namespace structride
