#include "roadnet/generator.h"

#include "util/random.h"

namespace structride {

RoadNetwork GenerateGridCity(const CityOptions& options) {
  SR_CHECK(options.rows >= 2 && options.cols >= 2);
  SR_CHECK(options.min_factor >= 1.0);
  Rng rng(options.seed);
  RoadNetwork net;

  auto index = [&](int r, int c) {
    return static_cast<NodeId>(r * options.cols + c);
  };

  for (int r = 0; r < options.rows; ++r) {
    for (int c = 0; c < options.cols; ++c) {
      double jx = rng.Uniform(-options.jitter, options.jitter) * options.block;
      double jy = rng.Uniform(-options.jitter, options.jitter) * options.block;
      net.AddNode({c * options.block + jx, r * options.block + jy});
    }
  }

  auto add_street = [&](NodeId u, NodeId v) {
    double factor = rng.Uniform(options.min_factor, options.max_factor);
    net.AddEdge(u, v, net.EuclidLowerBound(u, v) * factor);
  };

  for (int r = 0; r < options.rows; ++r) {
    for (int c = 0; c < options.cols; ++c) {
      if (c + 1 < options.cols) add_street(index(r, c), index(r, c + 1));
      if (r + 1 < options.rows) add_street(index(r, c), index(r + 1, c));
      if (r + 1 < options.rows && c + 1 < options.cols &&
          rng.Uniform(0, 1) < options.diagonal_prob) {
        // One diagonal per lucky cell, direction chosen by the same draw
        // stream so layouts stay reproducible.
        if (rng.Uniform(0, 1) < 0.5) {
          add_street(index(r, c), index(r + 1, c + 1));
        } else {
          add_street(index(r, c + 1), index(r + 1, c));
        }
      }
    }
  }
  // Generated cities are complete: hand back the frozen CSR form directly.
  net.Freeze();
  return net;
}

}  // namespace structride
