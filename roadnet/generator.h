// Synthetic city generator. The dataset presets (sim/datasets.h) stand in
// for the paper's proprietary road networks with seeded grid cities:
// perturbed node positions, per-edge congestion factors, and a sprinkle of
// diagonal shortcut streets so shortest paths are not axis-trivial.

#pragma once

#include <cstdint>

#include "roadnet/road_network.h"

namespace structride {

struct CityOptions {
  int rows = 20;
  int cols = 20;
  uint64_t seed = 1;
  /// Distance between adjacent grid intersections (cost units).
  double block = 10.0;
  /// Positional jitter applied to each intersection, as a fraction of block.
  double jitter = 0.2;
  /// Per-edge congestion factor range; travel cost = euclid * factor with
  /// factor in [min_factor, max_factor]. min_factor must stay >= 1 so the
  /// Euclidean distance remains an admissible lower bound.
  double min_factor = 1.05;
  double max_factor = 1.45;
  /// Probability that a grid cell gains one diagonal shortcut street.
  double diagonal_prob = 0.15;
};

/// Deterministic (seeded) grid city; always connected.
RoadNetwork GenerateGridCity(const CityOptions& options);

}  // namespace structride
