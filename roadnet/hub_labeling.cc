#include "roadnet/hub_labeling.h"

#include <algorithm>
#include <limits>
#include <numeric>
#include <queue>
#include <utility>

namespace structride {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

HubLabeling::HubLabeling(const RoadNetwork& net) {
  size_t n = net.num_nodes();
  labels_.assign(n, {});

  // Build order: distance from the planar centroid, ascending. On grid-like
  // cities the central nodes cover the most shortest paths, which keeps
  // labels small; ties broken by id for determinism.
  Point centroid{0, 0};
  for (size_t v = 0; v < n; ++v) {
    centroid = centroid + net.position(static_cast<NodeId>(v));
  }
  if (n > 0) {
    centroid.x /= static_cast<double>(n);
    centroid.y /= static_cast<double>(n);
  }
  std::vector<NodeId> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    double da = EuclidDistance(net.position(a), centroid);
    double db = EuclidDistance(net.position(b), centroid);
    if (da != db) return da < db;
    return a < b;
  });

  // Query restricted to already-built labels (used for pruning).
  auto pruned_query = [&](NodeId s, NodeId t) {
    const auto& ls = labels_[static_cast<size_t>(s)];
    const auto& lt = labels_[static_cast<size_t>(t)];
    double best = kInf;
    size_t i = 0, j = 0;
    while (i < ls.size() && j < lt.size()) {
      if (ls[i].hub_rank == lt[j].hub_rank) {
        double d = ls[i].dist + lt[j].dist;
        if (d < best) best = d;
        ++i;
        ++j;
      } else if (ls[i].hub_rank < lt[j].hub_rank) {
        ++i;
      } else {
        ++j;
      }
    }
    return best;
  };

  std::vector<double> dist(n, kInf);
  std::vector<NodeId> touched;
  using Entry = std::pair<double, NodeId>;
  for (int32_t rank = 0; rank < static_cast<int32_t>(n); ++rank) {
    NodeId hub = order[static_cast<size_t>(rank)];
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
    dist[static_cast<size_t>(hub)] = 0;
    touched.push_back(hub);
    heap.push({0, hub});
    while (!heap.empty()) {
      auto [d, u] = heap.top();
      heap.pop();
      if (d > dist[static_cast<size_t>(u)]) continue;
      // Prune: if existing labels already certify a path <= d, the hub adds
      // nothing for u or anything beyond it.
      if (pruned_query(hub, u) <= d + 1e-9) continue;
      labels_[static_cast<size_t>(u)].push_back({rank, d});
      for (const RoadNetwork::Arc& arc : net.arcs(u)) {
        double nd = d + arc.cost;
        size_t to = static_cast<size_t>(arc.to);
        if (nd < dist[to]) {
          if (dist[to] == kInf) touched.push_back(arc.to);
          dist[to] = nd;
          heap.push({nd, arc.to});
        }
      }
    }
    for (NodeId v : touched) dist[static_cast<size_t>(v)] = kInf;
    touched.clear();
  }

  for (const auto& label : labels_) total_entries_ += label.size();
}

double HubLabeling::Query(NodeId s, NodeId t) const {
  if (s == t) return 0;
  const auto& ls = labels_[static_cast<size_t>(s)];
  const auto& lt = labels_[static_cast<size_t>(t)];
  double best = kInf;
  size_t i = 0, j = 0;
  while (i < ls.size() && j < lt.size()) {
    if (ls[i].hub_rank == lt[j].hub_rank) {
      double d = ls[i].dist + lt[j].dist;
      if (d < best) best = d;
      ++i;
      ++j;
    } else if (ls[i].hub_rank < lt[j].hub_rank) {
      ++i;
    } else {
      ++j;
    }
  }
  return best;
}

size_t HubLabeling::MemoryBytes() const {
  size_t bytes = labels_.size() * sizeof(std::vector<LabelEntry>);
  bytes += total_entries_ * sizeof(LabelEntry);
  return bytes;
}

}  // namespace structride
