#include "roadnet/hub_labeling.h"

#include <algorithm>
#include <deque>
#include <limits>
#include <queue>
#include <utility>

namespace structride {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Hierarchical quadtree-center build order: the node nearest the full
// bounding box's center first, then one node per quadrant, breadth-first
// down the recursion. Every prefix of the order covers the map at its own
// granularity — the separator property that keeps pruned-landmark labels
// near sqrt(n) on grid cities (a global centrality sort clusters redundant
// hubs in the center instead). Deterministic: ties broken by node id.
std::vector<NodeId> QuadtreeCenterOrder(const RoadNetwork& net) {
  const size_t n = net.num_nodes();
  std::vector<NodeId> order;
  order.reserve(n);
  if (n == 0) return order;

  double x0 = kInf, y0 = kInf, x1 = -kInf, y1 = -kInf;
  for (size_t v = 0; v < n; ++v) {
    const Point& p = net.position(static_cast<NodeId>(v));
    x0 = std::min(x0, p.x);
    y0 = std::min(y0, p.y);
    x1 = std::max(x1, p.x);
    y1 = std::max(y1, p.y);
  }

  struct Cell {
    double x0, y0, x1, y1;
    std::vector<NodeId> nodes;
  };
  std::deque<Cell> queue;
  Cell root{x0, y0, x1, y1, {}};
  root.nodes.resize(n);
  for (size_t v = 0; v < n; ++v) root.nodes[v] = static_cast<NodeId>(v);
  queue.push_back(std::move(root));

  while (!queue.empty()) {
    Cell cell = std::move(queue.front());
    queue.pop_front();
    if (cell.nodes.empty()) continue;
    const double cx = (cell.x0 + cell.x1) / 2;
    const double cy = (cell.y0 + cell.y1) / 2;

    NodeId pick = cell.nodes[0];
    double best = kInf;
    for (NodeId v : cell.nodes) {
      double d = EuclidDistance(net.position(v), {cx, cy});
      if (d < best || (d == best && v < pick)) {
        best = d;
        pick = v;
      }
    }
    order.push_back(pick);
    if (cell.nodes.size() == 1) continue;

    // Degenerate cell (coincident points): emit the rest in id order rather
    // than splitting forever.
    if (cell.x1 - cell.x0 < 1e-9 && cell.y1 - cell.y0 < 1e-9) {
      std::vector<NodeId> rest;
      for (NodeId v : cell.nodes) {
        if (v != pick) rest.push_back(v);
      }
      std::sort(rest.begin(), rest.end());
      for (NodeId v : rest) order.push_back(v);
      continue;
    }

    Cell quads[4] = {{cell.x0, cell.y0, cx, cy, {}},
                     {cx, cell.y0, cell.x1, cy, {}},
                     {cell.x0, cy, cx, cell.y1, {}},
                     {cx, cy, cell.x1, cell.y1, {}}};
    for (NodeId v : cell.nodes) {
      if (v == pick) continue;
      const Point& p = net.position(v);
      int q = (p.x >= cx ? 1 : 0) + (p.y >= cy ? 2 : 0);
      quads[q].nodes.push_back(v);
    }
    for (Cell& q : quads) {
      if (!q.nodes.empty()) queue.push_back(std::move(q));
    }
  }
  return order;
}

}  // namespace

HubLabeling::HubLabeling(const RoadNetwork& net) {
  size_t n = net.num_nodes();
  num_nodes_ = n;
  std::vector<NodeId> order = QuadtreeCenterOrder(net);

  // Labels grow across hub rounds at arbitrary nodes, so the build works on
  // per-node (rank, dist) vectors and flattens into the arena at the end.
  struct BuildEntry {
    int32_t hub_rank;
    double dist;
  };
  std::vector<std::vector<BuildEntry>> labels(n);

  // Query restricted to already-built labels (used for pruning).
  auto pruned_query = [&](NodeId s, NodeId t) {
    const auto& ls = labels[static_cast<size_t>(s)];
    const auto& lt = labels[static_cast<size_t>(t)];
    double best = kInf;
    size_t i = 0, j = 0;
    while (i < ls.size() && j < lt.size()) {
      if (ls[i].hub_rank == lt[j].hub_rank) {
        double d = ls[i].dist + lt[j].dist;
        if (d < best) best = d;
        ++i;
        ++j;
      } else if (ls[i].hub_rank < lt[j].hub_rank) {
        ++i;
      } else {
        ++j;
      }
    }
    return best;
  };

  std::vector<double> dist(n, kInf);
  std::vector<NodeId> touched;
  using Entry = std::pair<double, NodeId>;
  for (int32_t rank = 0; rank < static_cast<int32_t>(n); ++rank) {
    NodeId hub = order[static_cast<size_t>(rank)];
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
    dist[static_cast<size_t>(hub)] = 0;
    touched.push_back(hub);
    heap.push({0, hub});
    while (!heap.empty()) {
      auto [d, u] = heap.top();
      heap.pop();
      if (d > dist[static_cast<size_t>(u)]) continue;
      // Prune: if existing labels already certify a path <= d, the hub adds
      // nothing for u or anything beyond it.
      if (pruned_query(hub, u) <= d + 1e-9) continue;
      labels[static_cast<size_t>(u)].push_back({rank, d});
      for (const RoadNetwork::Arc& arc : net.arcs(u)) {
        double nd = d + arc.cost;
        size_t to = static_cast<size_t>(arc.to);
        if (nd < dist[to]) {
          if (dist[to] == kInf) touched.push_back(arc.to);
          dist[to] = nd;
          heap.push({nd, arc.to});
        }
      }
    }
    for (NodeId v : touched) dist[static_cast<size_t>(v)] = kInf;
    touched.clear();
  }

  for (const auto& label : labels) total_entries_ += label.size();

  // Flatten: each node's (rank-ascending) run followed by one sentinel, so
  // the query merge needs no bound checks at all.
  offsets_.resize(n);
  ranks_.reserve(total_entries_ + n);
  dists_.reserve(total_entries_ + n);
  for (size_t v = 0; v < n; ++v) {
    offsets_[v] = static_cast<uint32_t>(ranks_.size());
    for (const BuildEntry& e : labels[v]) {
      ranks_.push_back(e.hub_rank);
      dists_.push_back(e.dist);
    }
    ranks_.push_back(kSentinelRank);
    dists_.push_back(kInf);
  }
  ranks_view_ = {ranks_.data(), ranks_.size()};
  dists_view_ = {dists_.data(), dists_.size()};
  offsets_view_ = {offsets_.data(), offsets_.size()};
}

std::unique_ptr<HubLabeling> HubLabeling::FromFrozenSections(
    Span<const uint32_t> offsets, Span<const int32_t> ranks,
    Span<const double> dists, size_t total_entries,
    std::shared_ptr<const void> payload) {
  SR_CHECK(ranks.size() == dists.size());
  auto hl = std::unique_ptr<HubLabeling>(new HubLabeling());
  hl->offsets_view_ = offsets;
  hl->ranks_view_ = ranks;
  hl->dists_view_ = dists;
  hl->total_entries_ = total_entries;
  hl->num_nodes_ = offsets.size();
  hl->payload_ = std::move(payload);
  return hl;
}

double HubLabeling::Query(NodeId s, NodeId t) const {
  if (s == t) return 0;
  const int32_t* R = ranks_view_.data();
  const double* D = dists_view_.data();
  size_t i = offsets_view_[static_cast<size_t>(s)];
  size_t j = offsets_view_[static_cast<size_t>(t)];
  double best = kInf;
  // Sentinel-terminated merge join: both runs end on kSentinelRank, so the
  // loop exits on the equality branch and the index advances compile to
  // branch-free conditional increments over the dense rank plane.
  for (;;) {
    const int32_t ra = R[i];
    const int32_t rb = R[j];
    if (ra == rb) {
      if (ra == kSentinelRank) break;
      const double d = D[i] + D[j];
      if (d < best) best = d;
      ++i;
      ++j;
    } else {
      i += ra < rb;
      j += rb < ra;
    }
  }
  return best;
}

void HubLabeling::PinSource(NodeId s, double* scratch) const {
  for (size_t k = offsets_view_[static_cast<size_t>(s)];
       ranks_view_[k] != kSentinelRank; ++k) {
    scratch[ranks_view_[k]] = dists_view_[k];
  }
}

double HubLabeling::QueryPinned(const double* scratch, NodeId t) const {
  double best = kInf;
  // min over the pinned source's hubs ∩ t's hubs: a rank the source does not
  // label contributes +inf and never wins, so one pass over t's run suffices
  // and the result is identical to the two-pointer merge in Query.
  for (size_t k = offsets_view_[static_cast<size_t>(t)];
       ranks_view_[k] != kSentinelRank; ++k) {
    const double d = scratch[ranks_view_[k]] + dists_view_[k];
    if (d < best) best = d;
  }
  return best;
}

void HubLabeling::UnpinSource(NodeId s, double* scratch) const {
  for (size_t k = offsets_view_[static_cast<size_t>(s)];
       ranks_view_[k] != kSentinelRank; ++k) {
    scratch[ranks_view_[k]] = kInf;
  }
}

size_t HubLabeling::MemoryBytes() const {
  size_t bytes = ranks_.capacity() * sizeof(int32_t) +
                 dists_.capacity() * sizeof(double) +
                 offsets_.capacity() * sizeof(uint32_t);
  if (payload_ != nullptr) {
    bytes += ranks_view_.size() * sizeof(int32_t) +
             dists_view_.size() * sizeof(double) +
             offsets_view_.size() * sizeof(uint32_t);
  }
  return bytes;
}

}  // namespace structride
