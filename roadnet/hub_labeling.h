// Pruned-landmark hub labeling (2-hop cover): the paper's fixed
// shortest-path substrate. Exact distances via a sorted-label merge join;
// build via pruned Dijkstra in a centrality order that works well on city
// grids (central intersections make the best hubs).

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "roadnet/road_network.h"

namespace structride {

class HubLabeling {
 public:
  explicit HubLabeling(const RoadNetwork& net);

  /// Exact shortest-path cost (infinity if disconnected).
  double Query(NodeId s, NodeId t) const;

  size_t TotalLabelEntries() const { return total_entries_; }
  size_t MemoryBytes() const;

 private:
  struct LabelEntry {
    int32_t hub_rank;  // position in the build order; labels sorted by it
    double dist;
  };

  std::vector<std::vector<LabelEntry>> labels_;
  size_t total_entries_ = 0;
};

}  // namespace structride
