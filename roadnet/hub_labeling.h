// Pruned-landmark hub labeling (2-hop cover): the paper's fixed
// shortest-path substrate. Exact distances via a sorted-label merge join;
// build via pruned Dijkstra in a hierarchical quadtree-center order (a
// separator-style order: the node nearest the city center first, then the
// centers of the four quadrants, and so on — every prefix of the order
// spreads over the map, which is what keeps grid labels small).
//
// Memory layout (DESIGN.md §"Memory layout"): all labels live in one
// contiguous node-major arena addressed by one offset array, stored as two
// parallel planes — hub ranks (int32, what the merge join scans, 16 per
// cache line) and distances (double, only touched on rank matches). Each
// node's run is terminated by a rank sentinel, so the query walks raw
// pointers with a single compare per step — no per-node vector headers, no
// bound checks. The pinned-source API spreads one node's label into a
// rank-indexed scratch array so one-to-many batches
// (TravelCostEngine::CostMany) pay the source's label walk once.
//
// Ownership (DESIGN.md §"Graph import and persistence"): queries read the
// arena through borrowed views. A built labeling owns the planes; a
// snapshot-loaded one borrows them from the (possibly mmap-ed) section
// payloads and keeps the backing GraphSource alive via payload_.

#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "roadnet/road_network.h"

namespace structride {

class HubLabeling {
 public:
  explicit HubLabeling(const RoadNetwork& net);

  /// Terminates every node's label run; compares greater than any real rank.
  static constexpr int32_t kSentinelRank = INT32_MAX;

  /// Adopts an already-flattened node-major arena owned elsewhere (a loaded
  /// snapshot): \p offsets holds one run start per node, \p ranks / \p dists
  /// are the sentinel-terminated parallel planes, and \p payload keeps the
  /// backing storage alive. The snapshot loader validates the arena
  /// invariants (runs in range, ranks in [0, n) or sentinel, final sentinel
  /// present) before calling this.
  static std::unique_ptr<HubLabeling> FromFrozenSections(
      Span<const uint32_t> offsets, Span<const int32_t> ranks,
      Span<const double> dists, size_t total_entries,
      std::shared_ptr<const void> payload);

  /// Exact shortest-path cost (infinity if disconnected).
  double Query(NodeId s, NodeId t) const;

  // One-to-many protocol: PinSource spreads s's label into \p scratch
  // (>= num_ranks() doubles, all +infinity), QueryPinned answers targets
  // with results identical to Query(s, t), UnpinSource restores the
  // all-infinity invariant. The scratch is caller-owned so batched callers
  // can keep one per thread.
  size_t num_ranks() const { return num_nodes_; }
  void PinSource(NodeId s, double* scratch) const;
  double QueryPinned(const double* scratch, NodeId t) const;
  void UnpinSource(NodeId s, double* scratch) const;

  // Arena section views for serialization (roadnet/snapshot.cc). The rank
  // and distance planes include the per-node sentinels.
  Span<const uint32_t> label_offsets() const { return offsets_view_; }
  Span<const int32_t> rank_plane() const { return ranks_view_; }
  Span<const double> dist_plane() const { return dists_view_; }

  size_t TotalLabelEntries() const { return total_entries_; }
  size_t MemoryBytes() const;

 private:
  HubLabeling() = default;

  // Node-major label arena: node v's run is [offsets[v], sentinel), with
  // ranks ascending per run and dists[k] the matching distance. The vectors
  // hold the owned (built) arena; the views are what queries read and point
  // either at the vectors or at borrowed snapshot sections.
  std::vector<int32_t> ranks_;
  std::vector<double> dists_;
  std::vector<uint32_t> offsets_;  ///< start of node v's run
  Span<const int32_t> ranks_view_;
  Span<const double> dists_view_;
  Span<const uint32_t> offsets_view_;
  std::shared_ptr<const void> payload_;  ///< keeps borrowed sections alive
  size_t total_entries_ = 0;             ///< real entries (sentinels excluded)
  size_t num_nodes_ = 0;
};

}  // namespace structride
