#include "roadnet/importer.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <unordered_map>
#include <vector>

namespace structride {

namespace {

// ------------------------------------------------------------- parsing ----

bool ReadFileLines(const std::string& path, std::vector<std::string>* lines,
                   std::string* error) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    *error = "cannot open " + path;
    return false;
  }
  std::string content;
  char buf[1 << 16];
  size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    content.append(buf, got);
  }
  std::fclose(f);
  size_t start = 0;
  while (start <= content.size()) {
    size_t nl = content.find('\n', start);
    size_t end = nl == std::string::npos ? content.size() : nl;
    size_t len = end - start;
    // CRLF endings: strip the trailing carriage return.
    if (len > 0 && content[start + len - 1] == '\r') --len;
    lines->emplace_back(content, start, len);
    if (nl == std::string::npos) break;
    start = nl + 1;
  }
  // Drop one trailing empty line from a final newline.
  if (!lines->empty() && lines->back().empty()) lines->pop_back();
  return true;
}

std::vector<std::string> SplitWs(const std::string& line) {
  std::vector<std::string> tokens;
  size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    size_t start = i;
    while (i < line.size() && line[i] != ' ' && line[i] != '\t') ++i;
    if (i > start) tokens.emplace_back(line, start, i - start);
  }
  return tokens;
}

bool ParseI64(const std::string& tok, int64_t* out) {
  if (tok.empty()) return false;
  char* end = nullptr;
  errno = 0;
  long long v = std::strtoll(tok.c_str(), &end, 10);
  if (errno != 0 || end != tok.c_str() + tok.size()) return false;
  *out = v;
  return true;
}

bool ParseF64(const std::string& tok, double* out) {
  if (tok.empty()) return false;
  char* end = nullptr;
  double v = std::strtod(tok.c_str(), &end);
  if (end != tok.c_str() + tok.size()) return false;
  *out = v;
  return true;
}

std::string LineError(const std::string& path, size_t lineno,
                      const std::string& what) {
  return path + ":" + std::to_string(lineno) + ": " + what;
}

// ------------------------------------------------ folded graph builder ----

struct PendingEdge {
  int32_t u;
  int32_t v;
  double cost;
};

// Accumulates nodes and folded undirected edges in deterministic order,
// then applies the import normalizations and freezes a RoadNetwork.
struct GraphAssembler {
  std::vector<Point> positions;
  std::vector<PendingEdge> edges;              // first-seen canonical order
  std::unordered_map<uint64_t, size_t> index;  // canonical pair -> edge slot

  static uint64_t Key(int32_t u, int32_t v) {
    int32_t lo = u < v ? u : v, hi = u < v ? v : u;
    return (static_cast<uint64_t>(static_cast<uint32_t>(lo)) << 32) |
           static_cast<uint32_t>(hi);
  }

  /// Folds one arc: self loops dropped, duplicate pairs keep the cheapest.
  void AddArc(int32_t u, int32_t v, double cost, ImportStats* stats) {
    ++stats->file_arcs;
    if (u == v) {
      ++stats->self_arcs;
      return;
    }
    auto [it, inserted] = index.emplace(Key(u, v), edges.size());
    if (inserted) {
      edges.push_back({u, v, cost});
    } else {
      ++stats->duplicate_arcs;
      if (cost < edges[it->second].cost) edges[it->second].cost = cost;
    }
  }

  bool Finalize(const ImportOptions& options, RoadNetwork* out,
                ImportStats* stats, std::string* error) {
    const size_t n = positions.size();
    stats->file_nodes = n;
    if (n == 0) {
      *error = "graph has no nodes";
      return false;
    }

    // Largest connected component (deterministic: components found in
    // ascending seed order; strict > keeps the earliest largest one).
    std::vector<int32_t> keep_id(n, 0);  // new id, or -1 for dropped
    size_t kept = n;
    if (options.restrict_to_largest_component && !edges.empty()) {
      std::vector<std::vector<int32_t>> adj(n);
      for (const PendingEdge& e : edges) {
        adj[static_cast<size_t>(e.u)].push_back(e.v);
        adj[static_cast<size_t>(e.v)].push_back(e.u);
      }
      std::vector<int32_t> component(n, -1);
      std::vector<size_t> sizes;
      std::vector<int32_t> stack;
      for (size_t seed = 0; seed < n; ++seed) {
        if (component[seed] >= 0) continue;
        int32_t comp = static_cast<int32_t>(sizes.size());
        size_t size = 0;
        stack.push_back(static_cast<int32_t>(seed));
        component[seed] = comp;
        while (!stack.empty()) {
          int32_t v = stack.back();
          stack.pop_back();
          ++size;
          for (int32_t to : adj[static_cast<size_t>(v)]) {
            if (component[static_cast<size_t>(to)] < 0) {
              component[static_cast<size_t>(to)] = comp;
              stack.push_back(to);
            }
          }
        }
        sizes.push_back(size);
      }
      int32_t best = 0;
      for (size_t c = 1; c < sizes.size(); ++c) {
        if (sizes[c] > sizes[static_cast<size_t>(best)]) {
          best = static_cast<int32_t>(c);
        }
      }
      kept = 0;
      for (size_t v = 0; v < n; ++v) {
        keep_id[v] = component[v] == best ? static_cast<int32_t>(kept++) : -1;
      }
    } else {
      for (size_t v = 0; v < n; ++v) keep_id[v] = static_cast<int32_t>(v);
    }
    stats->dropped_component_nodes = n - kept;

    // Admissibility rescale (see header): shrink positions uniformly until
    // every kept edge's Euclidean length is below its cost.
    double factor = 1.0;
    if (options.scale_positions_to_admissible) {
      for (const PendingEdge& e : edges) {
        if (keep_id[static_cast<size_t>(e.u)] < 0 ||
            keep_id[static_cast<size_t>(e.v)] < 0) {
          continue;
        }
        double euclid = EuclidDistance(positions[static_cast<size_t>(e.u)],
                                       positions[static_cast<size_t>(e.v)]);
        if (euclid > 0 && e.cost < euclid * factor) {
          factor = e.cost / euclid;
        }
      }
      if (factor < 1.0) factor *= 1.0 - 1e-9;  // strict under double rounding
    }
    stats->position_scale = factor;

    RoadNetwork net;
    for (size_t v = 0; v < n; ++v) {
      if (keep_id[v] < 0) continue;
      net.AddNode({positions[v].x * factor, positions[v].y * factor});
    }
    size_t kept_edges = 0;
    for (const PendingEdge& e : edges) {
      int32_t u = keep_id[static_cast<size_t>(e.u)];
      int32_t v = keep_id[static_cast<size_t>(e.v)];
      if (u < 0 || v < 0) continue;
      net.AddEdge(u, v, e.cost);
      ++kept_edges;
    }
    net.Freeze();
    stats->kept_nodes = kept;
    stats->kept_edges = kept_edges;
    if (kept == 0) {
      *error = "no nodes left after component restriction";
      return false;
    }
    *out = std::move(net);
    return true;
  }
};

}  // namespace

// -------------------------------------------------------------- DIMACS ----

bool ImportDimacs(const std::string& gr_path, const std::string& co_path,
                  const ImportOptions& options, RoadNetwork* out,
                  ImportStats* stats, std::string* error) {
  *stats = ImportStats{};
  std::vector<std::string> lines;
  if (!ReadFileLines(gr_path, &lines, error)) return false;

  GraphAssembler assembler;
  int64_t declared_nodes = -1, declared_arcs = -1;
  size_t parsed_arcs = 0;
  for (size_t i = 0; i < lines.size(); ++i) {
    const std::string& line = lines[i];
    if (line.empty() || line[0] == 'c') continue;
    std::vector<std::string> tok = SplitWs(line);
    if (tok.empty()) continue;
    if (tok[0] == "p") {
      if (declared_nodes >= 0) {
        *error = LineError(gr_path, i + 1, "duplicate problem line");
        return false;
      }
      if (tok.size() != 4 || tok[1] != "sp" ||
          !ParseI64(tok[2], &declared_nodes) ||
          !ParseI64(tok[3], &declared_arcs) || declared_nodes <= 0 ||
          declared_arcs < 0) {
        *error = LineError(gr_path, i + 1, "malformed 'p sp <n> <m>' line");
        return false;
      }
      assembler.positions.resize(static_cast<size_t>(declared_nodes));
    } else if (tok[0] == "a") {
      if (declared_nodes < 0) {
        *error = LineError(gr_path, i + 1, "arc before the problem line");
        return false;
      }
      int64_t u, v;
      double w;
      if (tok.size() != 4 || !ParseI64(tok[1], &u) || !ParseI64(tok[2], &v) ||
          !ParseF64(tok[3], &w)) {
        *error = LineError(gr_path, i + 1, "malformed 'a <u> <v> <w>' line");
        return false;
      }
      // DIMACS ids are 1-based.
      if (u < 1 || u > declared_nodes || v < 1 || v > declared_nodes) {
        *error = LineError(gr_path, i + 1, "node id out of range");
        return false;
      }
      if (w < 0) {
        *error = LineError(gr_path, i + 1, "negative arc cost");
        return false;
      }
      ++parsed_arcs;
      assembler.AddArc(static_cast<int32_t>(u - 1), static_cast<int32_t>(v - 1),
                       w, stats);
    } else {
      *error = LineError(gr_path, i + 1, "unrecognized line '" + line + "'");
      return false;
    }
  }
  if (declared_nodes < 0) {
    *error = gr_path + ": missing 'p sp <n> <m>' problem line";
    return false;
  }
  if (static_cast<int64_t>(parsed_arcs) != declared_arcs) {
    *error = gr_path + ": declared " + std::to_string(declared_arcs) +
             " arcs but the body has " + std::to_string(parsed_arcs);
    return false;
  }

  // Coordinates.
  std::vector<std::string> co_lines;
  if (!ReadFileLines(co_path, &co_lines, error)) return false;
  std::vector<bool> have_pos(static_cast<size_t>(declared_nodes), false);
  bool co_header = false;
  for (size_t i = 0; i < co_lines.size(); ++i) {
    const std::string& line = co_lines[i];
    if (line.empty() || line[0] == 'c') continue;
    std::vector<std::string> tok = SplitWs(line);
    if (tok.empty()) continue;
    if (tok[0] == "p") {
      int64_t co_nodes;
      if (tok.size() != 5 || tok[1] != "aux" || tok[2] != "sp" ||
          tok[3] != "co" || !ParseI64(tok[4], &co_nodes)) {
        *error = LineError(co_path, i + 1, "malformed 'p aux sp co <n>' line");
        return false;
      }
      if (co_nodes != declared_nodes) {
        *error = LineError(co_path, i + 1,
                           "coordinate node count mismatches the .gr file");
        return false;
      }
      co_header = true;
    } else if (tok[0] == "v") {
      int64_t id;
      double x, y;
      if (tok.size() != 4 || !ParseI64(tok[1], &id) || !ParseF64(tok[2], &x) ||
          !ParseF64(tok[3], &y)) {
        *error = LineError(co_path, i + 1, "malformed 'v <id> <x> <y>' line");
        return false;
      }
      if (id < 1 || id > declared_nodes) {
        *error = LineError(co_path, i + 1, "node id out of range");
        return false;
      }
      size_t idx = static_cast<size_t>(id - 1);
      if (have_pos[idx]) {
        *error = LineError(co_path, i + 1, "duplicate coordinate for node " +
                                               std::to_string(id));
        return false;
      }
      have_pos[idx] = true;
      assembler.positions[idx] = {x, y};
    } else {
      *error = LineError(co_path, i + 1, "unrecognized line '" + line + "'");
      return false;
    }
  }
  if (!co_header) {
    *error = co_path + ": missing 'p aux sp co <n>' line";
    return false;
  }
  for (size_t v = 0; v < have_pos.size(); ++v) {
    if (!have_pos[v]) {
      *error = co_path + ": node " + std::to_string(v + 1) +
               " has no coordinate";
      return false;
    }
  }
  return assembler.Finalize(options, out, stats, error);
}

// ------------------------------------------------------- OSM edge list ----

bool ImportOsmEdgeList(const std::string& path, const ImportOptions& options,
                       RoadNetwork* out, ImportStats* stats,
                       std::string* error) {
  *stats = ImportStats{};
  std::vector<std::string> lines;
  if (!ReadFileLines(path, &lines, error)) return false;

  GraphAssembler assembler;
  std::unordered_map<int64_t, int32_t> id_map;  // file id -> dense id
  for (size_t i = 0; i < lines.size(); ++i) {
    const std::string& line = lines[i];
    if (line.empty() || line[0] == '#') continue;
    std::vector<std::string> tok = SplitWs(line);
    if (tok.empty()) continue;
    if (tok[0] == "n") {
      int64_t id;
      double x, y;
      if (tok.size() != 4 || !ParseI64(tok[1], &id) || !ParseF64(tok[2], &x) ||
          !ParseF64(tok[3], &y)) {
        *error = LineError(path, i + 1, "malformed 'n <id> <x> <y>' line");
        return false;
      }
      auto [it, inserted] =
          id_map.emplace(id, static_cast<int32_t>(assembler.positions.size()));
      (void)it;
      if (!inserted) {
        *error = LineError(path, i + 1,
                           "duplicate node id " + std::to_string(id));
        return false;
      }
      assembler.positions.push_back({x, y});
    } else if (tok[0] == "e") {
      int64_t u, v;
      double cost;
      if (tok.size() != 4 || !ParseI64(tok[1], &u) || !ParseI64(tok[2], &v) ||
          !ParseF64(tok[3], &cost)) {
        *error = LineError(path, i + 1, "malformed 'e <u> <v> <cost>' line");
        return false;
      }
      auto iu = id_map.find(u), iv = id_map.find(v);
      if (iu == id_map.end() || iv == id_map.end()) {
        *error = LineError(path, i + 1, "edge names an undeclared node");
        return false;
      }
      if (!(cost > 0)) {
        *error = LineError(path, i + 1, "edge cost must be positive");
        return false;
      }
      assembler.AddArc(iu->second, iv->second, cost, stats);
    } else {
      *error = LineError(path, i + 1, "unrecognized line '" + line + "'");
      return false;
    }
  }
  return assembler.Finalize(options, out, stats, error);
}

// ------------------------------------------------------------ dispatch ----

bool ImportGraphFile(const std::string& path, const ImportOptions& options,
                     RoadNetwork* out, ImportStats* stats,
                     std::string* error) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    *error = "cannot open " + path;
    return false;
  }
  char head[8] = {0};
  size_t got = std::fread(head, 1, sizeof(head), f);
  std::fclose(f);
  if (got == sizeof(head) && std::memcmp(head, "SRSNAP1", 7) == 0) {
    *error = path + " is a binary graph snapshot; load it through "
             "LoadGraphSnapshot (roadnet/snapshot.h)";
    return false;
  }
  // DIMACS when the extension says so or the first byte is a DIMACS record
  // tag; our OSM edge-list lines start with '#', 'n' or 'e' instead.
  bool dimacs = false;
  if (path.size() > 3 && path.compare(path.size() - 3, 3, ".gr") == 0) {
    dimacs = true;
  } else if (got > 0 && (head[0] == 'c' || head[0] == 'p' || head[0] == 'a')) {
    dimacs = true;
  }
  if (dimacs) {
    std::string co_path = path;
    if (path.size() > 3 && path.compare(path.size() - 3, 3, ".gr") == 0) {
      co_path = path.substr(0, path.size() - 3) + ".co";
    } else {
      co_path = path + ".co";
    }
    return ImportDimacs(path, co_path, options, out, stats, error);
  }
  return ImportOsmEdgeList(path, options, out, stats, error);
}

}  // namespace structride
