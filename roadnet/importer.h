// Real-world road-network import: parsers that build a frozen RoadNetwork
// straight from on-disk graph files, for the two formats metro-scale
// benchmarks actually come in:
//
//  * 9th DIMACS Implementation Challenge shortest-path format — a `.gr`
//    arc file (`c` comments, one `p sp <n> <m>` problem line, `a <u> <v>
//    <w>` arcs with 1-based node ids) plus its sibling `.co` coordinate
//    file (`p aux sp co <n>`, `v <id> <x> <y>`). Arcs are directed in the
//    file; the import folds them onto the undirected RoadNetwork, keeping
//    the cheapest cost per unordered pair and dropping self loops.
//
//  * A line-delimited OSM-extract edge list (the output of preprocessing
//    an OSM cut offline): `#` comments, `n <id> <x> <y>` nodes with
//    arbitrary int64 ids (densely remapped in first-seen order), and
//    `e <u> <v> <cost>` undirected edges.
//
// Two normalizations make imported graphs honor the invariants the rest of
// the system assumes (see ImportOptions):
//
//  * Admissibility rescale: generators guarantee edge cost >= Euclidean
//    length, which A*, insertion pruning and angle pruning rely on. File
//    coordinates and costs come in unrelated units, so positions are
//    uniformly scaled by min(1, min_edge cost/euclid) — angles and
//    relative distances are preserved, and the Euclidean lower bound
//    becomes admissible again (in the worst case it degrades toward 0,
//    which is still admissible).
//
//  * Largest-component restriction: workload generation samples random
//    endpoints and expects finite costs; real extracts ship disconnected
//    fragments. Nodes outside the largest connected component are dropped
//    and ids densely remapped in ascending order.
//
// Every parser reports malformed input through its error string (never
// SR_CHECK), so callers — and the adversarial tests — can observe failures.
// All imports are deterministic: node and edge order are functions of the
// file contents alone.

#pragma once

#include <cstddef>
#include <string>

#include "roadnet/road_network.h"

namespace structride {

struct ImportOptions {
  /// Drop everything outside the largest connected component (see above).
  bool restrict_to_largest_component = true;
  /// Uniformly rescale positions so every edge cost >= Euclidean length.
  bool scale_positions_to_admissible = true;
};

struct ImportStats {
  size_t file_nodes = 0;      ///< nodes declared in the file
  size_t file_arcs = 0;       ///< arc/edge lines parsed (before folding)
  size_t self_arcs = 0;       ///< dropped u == v arcs
  size_t duplicate_arcs = 0;  ///< folded onto an existing unordered pair
  size_t kept_nodes = 0;      ///< nodes in the resulting network
  size_t kept_edges = 0;      ///< undirected edges in the resulting network
  size_t dropped_component_nodes = 0;  ///< outside the largest component
  double position_scale = 1.0;         ///< admissibility rescale factor
};

/// DIMACS import from a `.gr` arc file and its `.co` coordinate file.
/// Returns false (with \p error set) on malformed input: arcs before the
/// problem line, out-of-range ids, negative costs, a declared arc count
/// that mismatches the body, missing coordinates, duplicate coordinate
/// lines. CRLF line endings are accepted.
bool ImportDimacs(const std::string& gr_path, const std::string& co_path,
                  const ImportOptions& options, RoadNetwork* out,
                  ImportStats* stats, std::string* error);

/// OSM-extract edge-list import (format above). Returns false on malformed
/// input: duplicate node ids, edges naming undeclared nodes, non-positive
/// costs.
bool ImportOsmEdgeList(const std::string& path, const ImportOptions& options,
                       RoadNetwork* out, ImportStats* stats,
                       std::string* error);

/// Sniffs the file and dispatches: DIMACS when the first meaningful line is
/// a `c`/`p` record (the `.co` sibling is derived by swapping the `.gr`
/// extension), OSM edge list otherwise. Snapshot containers are rejected
/// here — load those through roadnet/snapshot.h.
bool ImportGraphFile(const std::string& path, const ImportOptions& options,
                     RoadNetwork* out, ImportStats* stats, std::string* error);

}  // namespace structride
