// The road network substrate: an undirected weighted graph with planar node
// positions. Edge weights are travel costs (abstract seconds) and are
// guaranteed by every generator to be >= the Euclidean distance between the
// endpoints, so straight-line distance is an admissible lower bound for all
// search and pruning code (A*, insertion pruning, angle pruning).

#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "geo/angle.h"
#include "util/logging.h"

namespace structride {

using NodeId = int32_t;

class RoadNetwork {
 public:
  struct Arc {
    NodeId to = 0;
    double cost = 0;
  };

  NodeId AddNode(Point position) {
    positions_.push_back(position);
    adjacency_.emplace_back();
    return static_cast<NodeId>(positions_.size() - 1);
  }

  /// Adds an undirected edge (two arcs) with the given travel cost.
  void AddEdge(NodeId u, NodeId v, double cost) {
    SR_CHECK(u >= 0 && static_cast<size_t>(u) < positions_.size());
    SR_CHECK(v >= 0 && static_cast<size_t>(v) < positions_.size());
    adjacency_[static_cast<size_t>(u)].push_back({v, cost});
    adjacency_[static_cast<size_t>(v)].push_back({u, cost});
    ++num_edges_;
  }

  size_t num_nodes() const { return positions_.size(); }
  size_t num_edges() const { return num_edges_; }

  const Point& position(NodeId v) const {
    return positions_[static_cast<size_t>(v)];
  }

  const std::vector<Arc>& arcs(NodeId v) const {
    return adjacency_[static_cast<size_t>(v)];
  }

  double EuclidLowerBound(NodeId u, NodeId v) const {
    return EuclidDistance(position(u), position(v));
  }

  size_t MemoryBytes() const {
    size_t bytes = positions_.size() * sizeof(Point);
    bytes += adjacency_.size() * sizeof(std::vector<Arc>);
    for (const auto& arcs : adjacency_) bytes += arcs.size() * sizeof(Arc);
    return bytes;
  }

 private:
  std::vector<Point> positions_;
  std::vector<std::vector<Arc>> adjacency_;
  size_t num_edges_ = 0;
};

}  // namespace structride
