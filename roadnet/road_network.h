// The road network substrate: an undirected weighted graph with planar node
// positions. Edge weights are travel costs (abstract seconds) and are
// guaranteed by every generator — and by the importer's admissibility
// rescale (roadnet/importer.h) — to be >= the Euclidean distance between
// the endpoints, so straight-line distance is an admissible lower bound for
// all search and pruning code (A*, insertion pruning, angle pruning).
//
// Memory layout (DESIGN.md §"Memory layout"): the graph is built through
// AddNode/AddEdge into per-node vectors, then *frozen* into a CSR view —
// one offsets array plus one contiguous arc array — that every search
// backend iterates. Freeze() is idempotent and also runs lazily on the
// first arcs() call; after it, AddNode/AddEdge are contract violations
// (SR_CHECK). Freezing must happen before the network is shared across
// threads (constructing any TravelCostEngine does it).
//
// Ownership (DESIGN.md §"Graph import and persistence"): every accessor
// reads through borrowed views (positions/offsets/arcs spans). A network
// built through AddNode/AddEdge owns its buffers and points the views at
// them on Freeze(); a network loaded from a snapshot borrows the views
// straight out of the (possibly mmap-ed) section payloads and keeps the
// backing GraphSource alive through a type-erased shared_ptr. The hot
// paths cannot tell the difference.

#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "geo/angle.h"
#include "util/logging.h"
#include "util/span.h"

namespace structride {

using NodeId = int32_t;

class RoadNetwork {
 public:
  struct Arc {
    NodeId to = 0;
    double cost = 0;
  };
  /// Contiguous view of one node's arcs in the frozen CSR.
  using ArcSpan = Span<const Arc>;

  RoadNetwork() = default;
  // Views alias the owned vectors' heap buffers, which vector moves
  // preserve; copies would alias the source's buffers, so they are banned.
  RoadNetwork(RoadNetwork&&) = default;
  RoadNetwork& operator=(RoadNetwork&&) = default;
  RoadNetwork(const RoadNetwork&) = delete;
  RoadNetwork& operator=(const RoadNetwork&) = delete;

  /// Adopts already-frozen CSR sections owned elsewhere (a loaded snapshot):
  /// the returned network is frozen and borrows every buffer; \p payload
  /// keeps the backing storage (e.g. the mmap-ed GraphSource) alive for the
  /// network's lifetime. The sections must already satisfy the CSR
  /// invariants — the snapshot loader validates them before calling this.
  static RoadNetwork FromFrozenSections(Span<const Point> positions,
                                        Span<const uint32_t> offsets,
                                        Span<const Arc> arcs, size_t num_edges,
                                        std::shared_ptr<const void> payload) {
    RoadNetwork net;
    net.positions_view_ = positions;
    net.offsets_view_ = offsets;
    net.arcs_view_ = arcs;
    net.num_edges_ = num_edges;
    net.payload_ = std::move(payload);
    net.frozen_ = true;
    return net;
  }

  NodeId AddNode(Point position) {
    SR_CHECK(!frozen_);
    positions_.push_back(position);
    adjacency_.emplace_back();
    positions_view_ = {positions_.data(), positions_.size()};
    return static_cast<NodeId>(positions_.size() - 1);
  }

  /// Adds an undirected edge (two arcs) with the given travel cost.
  void AddEdge(NodeId u, NodeId v, double cost) {
    SR_CHECK(!frozen_);
    SR_CHECK(u >= 0 && static_cast<size_t>(u) < positions_.size());
    SR_CHECK(v >= 0 && static_cast<size_t>(v) < positions_.size());
    adjacency_[static_cast<size_t>(u)].push_back({v, cost});
    adjacency_[static_cast<size_t>(v)].push_back({u, cost});
    ++num_edges_;
  }

  /// Compacts the per-node adjacency into the flat CSR arrays and frees the
  /// build-time vectors. Idempotent; arc order per node is insertion order,
  /// so pre-freeze and post-freeze traversals visit identical sequences.
  void Freeze() {
    if (frozen_) return;
    const size_t n = positions_.size();
    offsets_.resize(n + 1);
    offsets_[0] = 0;
    for (size_t v = 0; v < n; ++v) {
      offsets_[v + 1] =
          offsets_[v] + static_cast<uint32_t>(adjacency_[v].size());
    }
    arcs_.reserve(offsets_[n]);
    for (size_t v = 0; v < n; ++v) {
      arcs_.insert(arcs_.end(), adjacency_[v].begin(), adjacency_[v].end());
    }
    std::vector<std::vector<Arc>>().swap(adjacency_);
    offsets_view_ = {offsets_.data(), offsets_.size()};
    arcs_view_ = {arcs_.data(), arcs_.size()};
    frozen_ = true;
  }

  bool frozen() const { return frozen_; }
  /// True when the CSR buffers are borrowed from a loaded snapshot.
  bool borrowed() const { return payload_ != nullptr; }

  size_t num_nodes() const { return positions_view_.size(); }
  size_t num_edges() const { return num_edges_; }

  const Point& position(NodeId v) const {
    return positions_view_[static_cast<size_t>(v)];
  }

  /// The node's arcs as a CSR span; lazily freezes on first use (must not
  /// race with other threads — freeze explicitly before sharing).
  ArcSpan arcs(NodeId v) const {
    if (!frozen_) const_cast<RoadNetwork*>(this)->Freeze();
    const size_t u = static_cast<size_t>(v);
    return {arcs_view_.data() + offsets_view_[u],
            offsets_view_[u + 1] - offsets_view_[u]};
  }

  // Whole-graph section views for serialization (roadnet/snapshot.cc);
  // lazily freeze like arcs().
  Span<const Point> positions() const { return positions_view_; }
  Span<const uint32_t> csr_offsets() const {
    if (!frozen_) const_cast<RoadNetwork*>(this)->Freeze();
    return offsets_view_;
  }
  Span<const Arc> csr_arcs() const {
    if (!frozen_) const_cast<RoadNetwork*>(this)->Freeze();
    return arcs_view_;
  }

  double EuclidLowerBound(NodeId u, NodeId v) const {
    return EuclidDistance(position(u), position(v));
  }

  /// Heap bytes actually reserved: capacity-based for every vector so slack
  /// is charged, plus the per-node vector headers while unfrozen. A borrowed
  /// network charges its section views instead (those bytes are resident
  /// once touched, whether read into a heap buffer or mmap-ed).
  size_t MemoryBytes() const {
    size_t bytes = positions_.capacity() * sizeof(Point);
    bytes += offsets_.capacity() * sizeof(uint32_t);
    bytes += arcs_.capacity() * sizeof(Arc);
    bytes += adjacency_.capacity() * sizeof(std::vector<Arc>);
    for (const auto& arcs : adjacency_) bytes += arcs.capacity() * sizeof(Arc);
    if (payload_ != nullptr) {
      bytes += positions_view_.size() * sizeof(Point);
      bytes += offsets_view_.size() * sizeof(uint32_t);
      bytes += arcs_view_.size() * sizeof(Arc);
    }
    return bytes;
  }

 private:
  std::vector<Point> positions_;
  std::vector<std::vector<Arc>> adjacency_;  ///< build-time; empty once frozen
  std::vector<uint32_t> offsets_;            ///< CSR: arcs of v at [v, v+1)
  std::vector<Arc> arcs_;                    ///< CSR: all arcs, node-major
  // What the accessors read: the owned vectors (set by AddNode/Freeze) or a
  // loaded snapshot's sections (set by FromFrozenSections).
  Span<const Point> positions_view_;
  Span<const uint32_t> offsets_view_;
  Span<const Arc> arcs_view_;
  std::shared_ptr<const void> payload_;  ///< keeps borrowed sections alive
  size_t num_edges_ = 0;
  bool frozen_ = false;
};

}  // namespace structride
