// The road network substrate: an undirected weighted graph with planar node
// positions. Edge weights are travel costs (abstract seconds) and are
// guaranteed by every generator to be >= the Euclidean distance between the
// endpoints, so straight-line distance is an admissible lower bound for all
// search and pruning code (A*, insertion pruning, angle pruning).
//
// Memory layout (DESIGN.md §"Memory layout"): the graph is built through
// AddNode/AddEdge into per-node vectors, then *frozen* into a CSR view —
// one offsets array plus one contiguous arc array — that every search
// backend iterates. Freeze() is idempotent and also runs lazily on the
// first arcs() call; after it, AddNode/AddEdge are contract violations
// (SR_CHECK). Freezing must happen before the network is shared across
// threads (constructing any TravelCostEngine does it).

#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "geo/angle.h"
#include "util/logging.h"
#include "util/span.h"

namespace structride {

using NodeId = int32_t;

class RoadNetwork {
 public:
  struct Arc {
    NodeId to = 0;
    double cost = 0;
  };
  /// Contiguous view of one node's arcs in the frozen CSR.
  using ArcSpan = Span<const Arc>;

  NodeId AddNode(Point position) {
    SR_CHECK(!frozen_);
    positions_.push_back(position);
    adjacency_.emplace_back();
    return static_cast<NodeId>(positions_.size() - 1);
  }

  /// Adds an undirected edge (two arcs) with the given travel cost.
  void AddEdge(NodeId u, NodeId v, double cost) {
    SR_CHECK(!frozen_);
    SR_CHECK(u >= 0 && static_cast<size_t>(u) < positions_.size());
    SR_CHECK(v >= 0 && static_cast<size_t>(v) < positions_.size());
    adjacency_[static_cast<size_t>(u)].push_back({v, cost});
    adjacency_[static_cast<size_t>(v)].push_back({u, cost});
    ++num_edges_;
  }

  /// Compacts the per-node adjacency into the flat CSR arrays and frees the
  /// build-time vectors. Idempotent; arc order per node is insertion order,
  /// so pre-freeze and post-freeze traversals visit identical sequences.
  void Freeze() {
    if (frozen_) return;
    const size_t n = positions_.size();
    offsets_.resize(n + 1);
    offsets_[0] = 0;
    for (size_t v = 0; v < n; ++v) {
      offsets_[v + 1] =
          offsets_[v] + static_cast<uint32_t>(adjacency_[v].size());
    }
    arcs_.reserve(offsets_[n]);
    for (size_t v = 0; v < n; ++v) {
      arcs_.insert(arcs_.end(), adjacency_[v].begin(), adjacency_[v].end());
    }
    std::vector<std::vector<Arc>>().swap(adjacency_);
    frozen_ = true;
  }

  bool frozen() const { return frozen_; }

  size_t num_nodes() const { return positions_.size(); }
  size_t num_edges() const { return num_edges_; }

  const Point& position(NodeId v) const {
    return positions_[static_cast<size_t>(v)];
  }

  /// The node's arcs as a CSR span; lazily freezes on first use (must not
  /// race with other threads — freeze explicitly before sharing).
  ArcSpan arcs(NodeId v) const {
    if (!frozen_) const_cast<RoadNetwork*>(this)->Freeze();
    const size_t u = static_cast<size_t>(v);
    return {arcs_.data() + offsets_[u], offsets_[u + 1] - offsets_[u]};
  }

  double EuclidLowerBound(NodeId u, NodeId v) const {
    return EuclidDistance(position(u), position(v));
  }

  /// Heap bytes actually reserved: capacity-based for every vector so slack
  /// is charged, plus the per-node vector headers while unfrozen.
  size_t MemoryBytes() const {
    size_t bytes = positions_.capacity() * sizeof(Point);
    bytes += offsets_.capacity() * sizeof(uint32_t);
    bytes += arcs_.capacity() * sizeof(Arc);
    bytes += adjacency_.capacity() * sizeof(std::vector<Arc>);
    for (const auto& arcs : adjacency_) bytes += arcs.capacity() * sizeof(Arc);
    return bytes;
  }

 private:
  std::vector<Point> positions_;
  std::vector<std::vector<Arc>> adjacency_;  ///< build-time; empty once frozen
  std::vector<uint32_t> offsets_;            ///< CSR: arcs of v at [v, v+1)
  std::vector<Arc> arcs_;                    ///< CSR: all arcs, node-major
  size_t num_edges_ = 0;
  bool frozen_ = false;
};

}  // namespace structride
