#include "roadnet/snapshot.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <vector>

namespace structride {

namespace {

constexpr char kMagic[8] = {'S', 'R', 'S', 'N', 'A', 'P', '1', '\0'};
constexpr uint32_t kVersion = 1;
constexpr size_t kHeaderBytes = 64;
constexpr size_t kSectionAlign = 4096;
constexpr uint32_t kMaxSections = 64;

// Section ids (see snapshot.h).
enum SectionId : uint32_t {
  kPositions = 1,
  kCsrOffsets = 2,
  kCsrArcs = 3,
  kHlOffsets = 4,
  kHlRanks = 5,
  kHlDists = 6,
  kChUpOffsets = 7,
  kChUpArcs = 8,
  kChRank = 9,
};

struct Header {
  char magic[8];
  uint32_t version;
  uint32_t num_sections;
  uint64_t checksum;   ///< FNV-1a64 over bytes [kHeaderBytes, file_size)
  uint64_t file_size;
  uint64_t num_nodes;
  uint64_t num_edges;
  uint64_t hl_total_entries;
  uint64_t ch_num_shortcuts;
};
static_assert(sizeof(Header) == kHeaderBytes, "header must be 64 bytes");

struct SectionEntry {
  uint32_t id;
  uint32_t reserved;
  uint64_t offset;  ///< absolute file offset, kSectionAlign-aligned
  uint64_t size;    ///< payload bytes (padding after it is not counted)
};
static_assert(sizeof(SectionEntry) == 24, "section entry must be 24 bytes");

// Both arc structs serialize as 16 raw bytes with the 4 padding bytes
// zeroed by the writer, so files are byte-reproducible.
static_assert(sizeof(RoadNetwork::Arc) == 16, "arc layout changed");
static_assert(offsetof(RoadNetwork::Arc, to) == 0, "arc layout changed");
static_assert(offsetof(RoadNetwork::Arc, cost) == 8, "arc layout changed");
static_assert(sizeof(ContractionHierarchies::Arc) == 16, "arc layout changed");
static_assert(offsetof(ContractionHierarchies::Arc, to) == 0,
              "arc layout changed");
static_assert(offsetof(ContractionHierarchies::Arc, cost) == 8,
              "arc layout changed");
static_assert(sizeof(Point) == 16, "point layout changed");

constexpr uint64_t kFnvOffset = 14695981039346656037ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

uint64_t Fnv1a(uint64_t state, const uint8_t* data, size_t size) {
  for (size_t i = 0; i < size; ++i) {
    state ^= data[i];
    state *= kFnvPrime;
  }
  return state;
}

size_t AlignUp(size_t v, size_t a) { return (v + a - 1) / a * a; }

// ------------------------------------------------------------- writing ----

// Streams bytes to a FILE while folding everything after the header into
// the running checksum, so the writer never holds the whole file in memory.
struct ChecksummedWriter {
  FILE* f;
  uint64_t checksum = kFnvOffset;
  size_t written = 0;
  bool failed = false;

  void Write(const void* data, size_t size) {
    if (failed || size == 0) return;
    if (std::fwrite(data, 1, size, f) != size) {
      failed = true;
      return;
    }
    if (written + size > kHeaderBytes) {
      size_t skip = written < kHeaderBytes ? kHeaderBytes - written : 0;
      checksum = Fnv1a(checksum, static_cast<const uint8_t*>(data) + skip,
                       size - skip);
    }
    written += size;
  }

  void PadTo(size_t offset) {
    static const uint8_t zeros[4096] = {0};
    while (!failed && written < offset) {
      size_t chunk = offset - written;
      if (chunk > sizeof(zeros)) chunk = sizeof(zeros);
      Write(zeros, chunk);
    }
  }
};

// Re-packs an arc array with the struct padding bytes zeroed.
template <typename ArcT>
std::vector<uint8_t> PackArcs(Span<const ArcT> arcs) {
  std::vector<uint8_t> bytes(arcs.size() * sizeof(ArcT), 0);
  for (size_t i = 0; i < arcs.size(); ++i) {
    std::memcpy(bytes.data() + i * sizeof(ArcT), &arcs[i].to,
                sizeof(arcs[i].to));
    std::memcpy(bytes.data() + i * sizeof(ArcT) + 8, &arcs[i].cost,
                sizeof(arcs[i].cost));
  }
  return bytes;
}

}  // namespace

// --------------------------------------------------------- GraphSource ----

GraphSource::~GraphSource() {
  if (data_ == nullptr) return;
  if (mmapped_) {
    ::munmap(data_, size_);
  } else {
    delete[] data_;
  }
}

std::shared_ptr<GraphSource> GraphSource::ReadFile(const std::string& path,
                                                   std::string* error) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    *error = "cannot open " + path;
    return nullptr;
  }
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  if (size < 0) {
    std::fclose(f);
    *error = "cannot stat " + path;
    return nullptr;
  }
  auto src = std::shared_ptr<GraphSource>(new GraphSource());
  src->size_ = static_cast<size_t>(size);
  src->data_ = new uint8_t[src->size_ > 0 ? src->size_ : 1];
  size_t got = std::fread(src->data_, 1, src->size_, f);
  std::fclose(f);
  if (got != src->size_) {
    *error = "short read on " + path;
    return nullptr;
  }
  return src;
}

std::shared_ptr<GraphSource> GraphSource::MmapFile(const std::string& path,
                                                   std::string* error) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    *error = "cannot open " + path;
    return nullptr;
  }
  struct stat st;
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    *error = "cannot stat " + path;
    return nullptr;
  }
  auto src = std::shared_ptr<GraphSource>(new GraphSource());
  src->size_ = static_cast<size_t>(st.st_size);
  src->mmapped_ = true;
  if (src->size_ == 0) {
    src->data_ = nullptr;
    src->mmapped_ = false;
    ::close(fd);
    return src;
  }
  void* map = ::mmap(nullptr, src->size_, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);
  if (map == MAP_FAILED) {
    *error = "mmap failed on " + path;
    return nullptr;
  }
  src->data_ = static_cast<uint8_t*>(map);
  return src;
}

// -------------------------------------------------------------- writer ----

bool WriteGraphSnapshot(const RoadNetwork& net,
                        const SnapshotWriteOptions& options,
                        const std::string& path, std::string* error) {
  Span<const Point> positions = net.positions();
  Span<const uint32_t> csr_offsets = net.csr_offsets();  // freezes if needed
  Span<const RoadNetwork::Arc> csr_arcs = net.csr_arcs();

  struct PlannedSection {
    uint32_t id;
    const void* data;
    size_t size;
  };
  std::vector<PlannedSection> sections;
  std::vector<uint8_t> packed_csr_arcs =
      PackArcs<RoadNetwork::Arc>(csr_arcs);
  sections.push_back({kPositions, positions.data(),
                      positions.size() * sizeof(Point)});
  sections.push_back({kCsrOffsets, csr_offsets.data(),
                      csr_offsets.size() * sizeof(uint32_t)});
  sections.push_back(
      {kCsrArcs, packed_csr_arcs.data(), packed_csr_arcs.size()});

  std::vector<uint8_t> packed_up_arcs;
  if (options.hub_labels != nullptr) {
    const HubLabeling& hl = *options.hub_labels;
    sections.push_back({kHlOffsets, hl.label_offsets().data(),
                        hl.label_offsets().size() * sizeof(uint32_t)});
    sections.push_back({kHlRanks, hl.rank_plane().data(),
                        hl.rank_plane().size() * sizeof(int32_t)});
    sections.push_back({kHlDists, hl.dist_plane().data(),
                        hl.dist_plane().size() * sizeof(double)});
  }
  if (options.ch != nullptr) {
    const ContractionHierarchies& ch = *options.ch;
    packed_up_arcs = PackArcs<ContractionHierarchies::Arc>(ch.up_arcs());
    sections.push_back({kChUpOffsets, ch.up_offsets().data(),
                        ch.up_offsets().size() * sizeof(uint32_t)});
    sections.push_back(
        {kChUpArcs, packed_up_arcs.data(), packed_up_arcs.size()});
    sections.push_back({kChRank, ch.node_ranks().data(),
                        ch.node_ranks().size() * sizeof(int32_t)});
  }

  // Lay out: header, table, then page-aligned sections.
  std::vector<SectionEntry> table(sections.size());
  size_t cursor = kHeaderBytes + sections.size() * sizeof(SectionEntry);
  for (size_t i = 0; i < sections.size(); ++i) {
    cursor = AlignUp(cursor, kSectionAlign);
    table[i] = {sections[i].id, 0, cursor, sections[i].size};
    cursor += sections[i].size;
  }
  const size_t file_size = cursor;

  FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    *error = "cannot open " + path + " for writing";
    return false;
  }
  ChecksummedWriter w{f};
  Header header{};
  std::memcpy(header.magic, kMagic, sizeof(kMagic));
  header.version = kVersion;
  header.num_sections = static_cast<uint32_t>(sections.size());
  header.checksum = 0;  // patched below
  header.file_size = file_size;
  header.num_nodes = net.num_nodes();
  header.num_edges = net.num_edges();
  header.hl_total_entries = options.hub_labels != nullptr
                                ? options.hub_labels->TotalLabelEntries()
                                : 0;
  header.ch_num_shortcuts =
      options.ch != nullptr ? options.ch->num_shortcuts() : 0;
  w.Write(&header, sizeof(header));
  w.Write(table.data(), table.size() * sizeof(SectionEntry));
  for (size_t i = 0; i < sections.size(); ++i) {
    w.PadTo(table[i].offset);
    w.Write(sections[i].data, sections[i].size);
  }
  if (w.failed) {
    std::fclose(f);
    *error = "write failed on " + path;
    return false;
  }
  // Patch the checksum now that every post-header byte has been folded in.
  header.checksum = w.checksum;
  std::fseek(f, 0, SEEK_SET);
  bool ok = std::fwrite(&header, 1, sizeof(header), f) == sizeof(header);
  ok = std::fclose(f) == 0 && ok;
  if (!ok) {
    *error = "write failed on " + path;
    return false;
  }
  return true;
}

// -------------------------------------------------------------- loader ----

namespace {

// Typed view of one section, bounds-checked before construction.
struct SectionView {
  const uint8_t* data = nullptr;
  size_t size = 0;
  bool present = false;
};

bool FindSections(const uint8_t* base, size_t file_size, const Header& header,
                  SectionView out[10], std::string* error) {
  const size_t table_off = kHeaderBytes;
  const size_t table_bytes = header.num_sections * sizeof(SectionEntry);
  for (uint32_t i = 0; i < header.num_sections; ++i) {
    SectionEntry entry;
    std::memcpy(&entry, base + table_off + i * sizeof(SectionEntry),
                sizeof(entry));
    // Overflow-safe bounds: offset and size each checked against file_size
    // before the sum is formed.
    if (entry.offset < table_off + table_bytes || entry.offset > file_size ||
        entry.size > file_size - entry.offset) {
      *error = "section " + std::to_string(entry.id) +
               " is out of bounds (offset " + std::to_string(entry.offset) +
               ", size " + std::to_string(entry.size) + ", file " +
               std::to_string(file_size) + ")";
      return false;
    }
    if (entry.offset % kSectionAlign != 0) {
      *error = "section " + std::to_string(entry.id) +
               " is not page-aligned (offset " +
               std::to_string(entry.offset) + ")";
      return false;
    }
    if (entry.id == 0 || entry.id > 9) continue;  // unknown: skip, forward-compat
    if (out[entry.id].present) {
      *error = "duplicate section " + std::to_string(entry.id);
      return false;
    }
    out[entry.id] = {base + entry.offset, entry.size, true};
  }
  return true;
}

bool ExpectSize(const SectionView& s, uint32_t id, size_t expected,
                std::string* error) {
  if (s.size != expected) {
    *error = "section " + std::to_string(id) + " has " +
             std::to_string(s.size) + " bytes, expected " +
             std::to_string(expected);
    return false;
  }
  return true;
}

// Validates a CSR offsets/arcs pair: offsets monotone, final offset equal
// to the arc count, every target in [0, n).
template <typename ArcT>
bool ValidateCsr(Span<const uint32_t> offsets, Span<const ArcT> arcs,
                 size_t num_nodes, const char* what, std::string* error) {
  if (offsets.size() != num_nodes + 1 || offsets[0] != 0) {
    *error = std::string(what) + " offsets malformed";
    return false;
  }
  for (size_t v = 0; v < num_nodes; ++v) {
    if (offsets[v + 1] < offsets[v]) {
      *error = std::string(what) + " offsets not monotone at node " +
               std::to_string(v);
      return false;
    }
  }
  if (offsets[num_nodes] != arcs.size()) {
    *error = std::string(what) + " offsets end at " +
             std::to_string(offsets[num_nodes]) + " but the arc array has " +
             std::to_string(arcs.size()) + " entries";
    return false;
  }
  for (size_t i = 0; i < arcs.size(); ++i) {
    if (arcs[i].to < 0 || static_cast<size_t>(arcs[i].to) >= num_nodes) {
      *error = std::string(what) + " arc " + std::to_string(i) +
               " targets out-of-range node " + std::to_string(arcs[i].to);
      return false;
    }
  }
  return true;
}

}  // namespace

bool LoadGraphSnapshot(const std::string& path,
                       const SnapshotLoadOptions& options, GraphBundle* out,
                       std::string* error) {
  std::shared_ptr<GraphSource> src = options.use_mmap
                                         ? GraphSource::MmapFile(path, error)
                                         : GraphSource::ReadFile(path, error);
  if (src == nullptr) return false;
  const uint8_t* base = src->data();
  const size_t file_size = src->size();

  if (file_size < kHeaderBytes) {
    *error = path + ": too small to hold a snapshot header (" +
             std::to_string(file_size) + " bytes)";
    return false;
  }
  Header header;
  std::memcpy(&header, base, sizeof(header));
  if (std::memcmp(header.magic, kMagic, sizeof(kMagic)) != 0) {
    *error = path + ": not a structride snapshot (bad magic)";
    return false;
  }
  if (header.version != kVersion) {
    *error = path + ": unsupported snapshot version " +
             std::to_string(header.version);
    return false;
  }
  if (header.file_size != file_size) {
    *error = path + ": truncated or padded (header says " +
             std::to_string(header.file_size) + " bytes, file has " +
             std::to_string(file_size) + ")";
    return false;
  }
  if (header.num_sections > kMaxSections ||
      header.num_sections * sizeof(SectionEntry) >
          file_size - kHeaderBytes) {
    *error = path + ": section table does not fit (" +
             std::to_string(header.num_sections) + " sections)";
    return false;
  }
  const uint64_t checksum =
      Fnv1a(kFnvOffset, base + kHeaderBytes, file_size - kHeaderBytes);
  if (checksum != header.checksum) {
    *error = path + ": checksum mismatch (corrupt file)";
    return false;
  }

  SectionView sections[10];
  if (!FindSections(base, file_size, header, sections, error)) {
    *error = path + ": " + *error;
    return false;
  }

  const size_t n = static_cast<size_t>(header.num_nodes);
  const size_t m = static_cast<size_t>(header.num_edges);
  // Shape sanity before any multiplication can overflow: the largest
  // per-node section is 16 bytes/entry, so n and m must fit the file.
  if (n > file_size || m > file_size) {
    *error = path + ": implausible node/edge counts";
    return false;
  }

  // Mandatory graph sections.
  if (!sections[kPositions].present || !sections[kCsrOffsets].present ||
      !sections[kCsrArcs].present) {
    *error = path + ": missing a mandatory graph section";
    return false;
  }
  if (!ExpectSize(sections[kPositions], kPositions, n * sizeof(Point),
                  error) ||
      !ExpectSize(sections[kCsrOffsets], kCsrOffsets,
                  (n + 1) * sizeof(uint32_t), error) ||
      !ExpectSize(sections[kCsrArcs], kCsrArcs,
                  2 * m * sizeof(RoadNetwork::Arc), error)) {
    *error = path + ": " + *error;
    return false;
  }
  Span<const Point> positions(
      reinterpret_cast<const Point*>(sections[kPositions].data), n);
  Span<const uint32_t> csr_offsets(
      reinterpret_cast<const uint32_t*>(sections[kCsrOffsets].data), n + 1);
  Span<const RoadNetwork::Arc> csr_arcs(
      reinterpret_cast<const RoadNetwork::Arc*>(sections[kCsrArcs].data),
      2 * m);
  if (!ValidateCsr(csr_offsets, csr_arcs, n, "graph", error)) {
    *error = path + ": " + *error;
    return false;
  }

  // Optional hub-label arena: all three sections or none.
  const bool has_hl = sections[kHlOffsets].present ||
                      sections[kHlRanks].present ||
                      sections[kHlDists].present;
  std::unique_ptr<HubLabeling> hub_labels;
  if (has_hl) {
    if (!sections[kHlOffsets].present || !sections[kHlRanks].present ||
        !sections[kHlDists].present) {
      *error = path + ": partial hub-label sections";
      return false;
    }
    const size_t total = static_cast<size_t>(header.hl_total_entries);
    if (total > file_size) {
      *error = path + ": implausible hub-label entry count";
      return false;
    }
    const size_t plane = total + n;  // one sentinel per node
    if (!ExpectSize(sections[kHlOffsets], kHlOffsets, n * sizeof(uint32_t),
                    error) ||
        !ExpectSize(sections[kHlRanks], kHlRanks, plane * sizeof(int32_t),
                    error) ||
        !ExpectSize(sections[kHlDists], kHlDists, plane * sizeof(double),
                    error)) {
      *error = path + ": " + *error;
      return false;
    }
    Span<const uint32_t> hl_offsets(
        reinterpret_cast<const uint32_t*>(sections[kHlOffsets].data), n);
    Span<const int32_t> hl_ranks(
        reinterpret_cast<const int32_t*>(sections[kHlRanks].data), plane);
    Span<const double> hl_dists(
        reinterpret_cast<const double*>(sections[kHlDists].data), plane);
    // Memory-safety boundary: the merge join walks each run to its
    // sentinel, and PinSource writes scratch[rank]. Every run start must be
    // in range, every rank in [0, n) or the sentinel, ranks ascending per
    // run, and the plane must end on a sentinel so no walk escapes it.
    if (plane == 0 || hl_ranks[plane - 1] != HubLabeling::kSentinelRank) {
      *error = path + ": hub-label plane does not end on a sentinel";
      return false;
    }
    for (size_t v = 0; v < n; ++v) {
      if (hl_offsets[v] >= plane) {
        *error = path + ": hub-label run start out of range at node " +
                 std::to_string(v);
        return false;
      }
    }
    size_t sentinels = 0;
    int32_t prev = -1;
    for (size_t k = 0; k < plane; ++k) {
      const int32_t r = hl_ranks[k];
      if (r == HubLabeling::kSentinelRank) {
        ++sentinels;
        prev = -1;
        continue;
      }
      if (r < 0 || static_cast<size_t>(r) >= n || r <= prev) {
        *error = path + ": hub-label rank plane malformed at entry " +
                 std::to_string(k);
        return false;
      }
      prev = r;
    }
    if (sentinels != n) {
      *error = path + ": hub-label plane has " + std::to_string(sentinels) +
               " sentinels for " + std::to_string(n) + " nodes";
      return false;
    }
    hub_labels = HubLabeling::FromFrozenSections(hl_offsets, hl_ranks,
                                                 hl_dists, total, src);
  }

  // Optional CH upward CSR: all three sections or none.
  const bool has_ch = sections[kChUpOffsets].present ||
                      sections[kChUpArcs].present ||
                      sections[kChRank].present;
  std::unique_ptr<ContractionHierarchies> ch;
  if (has_ch) {
    if (!sections[kChUpOffsets].present || !sections[kChUpArcs].present ||
        !sections[kChRank].present) {
      *error = path + ": partial contraction-hierarchy sections";
      return false;
    }
    if (sections[kChUpArcs].size % sizeof(ContractionHierarchies::Arc) != 0) {
      *error = path + ": CH arc section size is not a whole arc count";
      return false;
    }
    const size_t num_up =
        sections[kChUpArcs].size / sizeof(ContractionHierarchies::Arc);
    if (!ExpectSize(sections[kChUpOffsets], kChUpOffsets,
                    (n + 1) * sizeof(uint32_t), error) ||
        !ExpectSize(sections[kChRank], kChRank, n * sizeof(int32_t), error)) {
      *error = path + ": " + *error;
      return false;
    }
    Span<const uint32_t> up_offsets(
        reinterpret_cast<const uint32_t*>(sections[kChUpOffsets].data),
        n + 1);
    Span<const ContractionHierarchies::Arc> up_arcs(
        reinterpret_cast<const ContractionHierarchies::Arc*>(
            sections[kChUpArcs].data),
        num_up);
    Span<const int32_t> ch_ranks(
        reinterpret_cast<const int32_t*>(sections[kChRank].data), n);
    if (!ValidateCsr(up_offsets, up_arcs, n, "CH", error)) {
      *error = path + ": " + *error;
      return false;
    }
    for (size_t v = 0; v < n; ++v) {
      if (ch_ranks[v] < 0 || static_cast<size_t>(ch_ranks[v]) >= n) {
        *error = path + ": CH rank out of range at node " + std::to_string(v);
        return false;
      }
    }
    ch = ContractionHierarchies::FromFrozenSections(
        up_offsets, up_arcs, ch_ranks,
        static_cast<size_t>(header.ch_num_shortcuts), src);
  }

  out->network =
      RoadNetwork::FromFrozenSections(positions, csr_offsets, csr_arcs, m, src);
  out->hub_labels = std::move(hub_labels);
  out->ch = std::move(ch);
  return true;
}

bool IsSnapshotFile(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  char head[8] = {0};
  size_t got = std::fread(head, 1, sizeof(head), f);
  std::fclose(f);
  return got == sizeof(head) && std::memcmp(head, kMagic, sizeof(kMagic)) == 0;
}

bool RewriteSnapshotChecksum(const std::string& path, std::string* error) {
  std::string read_err;
  std::shared_ptr<GraphSource> src = GraphSource::ReadFile(path, &read_err);
  if (src == nullptr) {
    *error = read_err;
    return false;
  }
  if (src->size() < kHeaderBytes) {
    *error = path + ": too small to hold a snapshot header";
    return false;
  }
  const uint64_t checksum = Fnv1a(kFnvOffset, src->data() + kHeaderBytes,
                                  src->size() - kHeaderBytes);
  FILE* f = std::fopen(path.c_str(), "rb+");
  if (f == nullptr) {
    *error = "cannot open " + path + " for update";
    return false;
  }
  std::fseek(f, static_cast<long>(offsetof(Header, checksum)), SEEK_SET);
  bool ok = std::fwrite(&checksum, 1, sizeof(checksum), f) == sizeof(checksum);
  ok = std::fclose(f) == 0 && ok;
  if (!ok) {
    *error = "write failed on " + path;
    return false;
  }
  return true;
}

}  // namespace structride
