// Binary graph snapshot persistence: serialize a frozen RoadNetwork plus
// its preprocessed indices (hub-label arena, CH upward CSR) into one
// versioned, checksummed container, and load it back — by reading into a
// heap buffer or by zero-copy mmap — without rebuilding anything.
//
// Container layout (little-endian, the only byte order we target):
//
//   [ 64-byte header ]
//   [ num_sections x 24-byte section entries ]
//   [ zero padding to the next 4096-byte boundary ]
//   [ section 0 bytes ][ padding ][ section 1 bytes ][ padding ] ...
//
// Header: magic "SRSNAP1\0", u32 version (currently 1), u32 num_sections,
// u64 FNV-1a checksum over every byte after the header, u64 file size, and
// the u64 shape counts (num_nodes, num_edges, hl_total_entries,
// ch_num_shortcuts) that the section sizes are validated against.
//
// Sections are raw arrays in the exact in-memory layout the query paths
// read (struct padding zeroed at write time so files are byte-reproducible)
// and are page-aligned so an mmap-ed load hands out naturally aligned
// views with no copy. Known section ids:
//
//   1 positions      Point[num_nodes]
//   2 csr_offsets    u32[num_nodes + 1]
//   3 csr_arcs       RoadNetwork::Arc[2 * num_edges]
//   4 hl_offsets     u32[num_nodes]                     (optional)
//   5 hl_ranks       i32[hl_total_entries + num_nodes]  (optional)
//   6 hl_dists       f64[hl_total_entries + num_nodes]  (optional)
//   7 ch_up_offsets  u32[num_nodes + 1]                 (optional)
//   8 ch_up_arcs     ContractionHierarchies::Arc[]      (optional)
//   9 ch_rank        i32[num_nodes]                     (optional)
//
// The loader trusts nothing: magic/version/size/checksum first, then every
// section offset and size (overflow-safe), then the structural invariants
// the borrow-based classes assume — CSR offsets monotone with in-range
// targets, label runs sentinel-terminated with every rank in [0, n) (the
// pinned-source scratch is indexed by rank, so this is a memory-safety
// boundary, not a style check). Every failure is an error-string return,
// never a crash, never an out-of-bounds read.

#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "roadnet/contraction_hierarchies.h"
#include "roadnet/hub_labeling.h"
#include "roadnet/road_network.h"

namespace structride {

/// A loaded (or built) graph together with its optional preprocessed
/// indices. Snapshot loads borrow every buffer from the backing
/// GraphSource; built bundles own theirs.
struct GraphBundle {
  RoadNetwork network;
  std::unique_ptr<HubLabeling> hub_labels;        ///< may be null
  std::unique_ptr<ContractionHierarchies> ch;     ///< may be null
};

/// The bytes backing a loaded snapshot: either a heap buffer the file was
/// read into, or a read-only private mmap of it. Borrowing classes keep it
/// alive through a type-erased shared_ptr.
class GraphSource {
 public:
  ~GraphSource();
  GraphSource(const GraphSource&) = delete;
  GraphSource& operator=(const GraphSource&) = delete;

  /// Reads the whole file into a heap buffer.
  static std::shared_ptr<GraphSource> ReadFile(const std::string& path,
                                               std::string* error);
  /// Maps the file read-only (MAP_PRIVATE); zero-copy load path.
  static std::shared_ptr<GraphSource> MmapFile(const std::string& path,
                                               std::string* error);

  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }
  bool mmapped() const { return mmapped_; }

 private:
  GraphSource() = default;
  uint8_t* data_ = nullptr;
  size_t size_ = 0;
  bool mmapped_ = false;
};

struct SnapshotWriteOptions {
  /// Serialize the hub-label arena / CH upward CSR when non-null.
  const HubLabeling* hub_labels = nullptr;
  const ContractionHierarchies* ch = nullptr;
};

struct SnapshotLoadOptions {
  /// Map the file instead of reading it (zero-copy; pages fault in lazily).
  bool use_mmap = false;
};

/// Serializes \p net (frozen first if needed) plus the optional indices in
/// \p options into the container described above. Returns false with
/// \p error set on I/O failure.
bool WriteGraphSnapshot(const RoadNetwork& net,
                        const SnapshotWriteOptions& options,
                        const std::string& path, std::string* error);

/// Loads a snapshot, validating everything (see file comment). On success
/// \p out holds a frozen borrowed network plus whichever indices the file
/// carries; all of them keep the GraphSource alive. Returns false with a
/// descriptive \p error on any malformed input.
bool LoadGraphSnapshot(const std::string& path,
                       const SnapshotLoadOptions& options, GraphBundle* out,
                       std::string* error);

/// True when the file starts with the snapshot magic (cheap sniff; does not
/// validate anything else).
bool IsSnapshotFile(const std::string& path);

/// Test helper: recomputes and rewrites the header checksum of an existing
/// snapshot file. Lets the adversarial tests corrupt section *contents* and
/// still get past the checksum gate to exercise structural validation.
bool RewriteSnapshotChecksum(const std::string& path, std::string* error);

}  // namespace structride
