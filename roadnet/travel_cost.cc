#include "roadnet/travel_cost.h"

#include <algorithm>
#include <limits>

#include "roadnet/contraction_hierarchies.h"
#include "roadnet/dijkstra.h"
#include "roadnet/hub_labeling.h"
#include "util/bits.h"
#include "util/logging.h"

namespace structride {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Canonical pair key: the network is undirected and every backend is
// symmetric, so (s, t) and (t, s) must share one cache slot.
inline uint64_t PairKey(NodeId s, NodeId t) {
  NodeId lo = std::min(s, t), hi = std::max(s, t);
  return (static_cast<uint64_t>(static_cast<uint32_t>(lo)) << 32) |
         static_cast<uint32_t>(hi);
}

// Fibonacci-mix the key so consecutive node pairs spread across shards.
inline uint64_t ShardHash(uint64_t key) {
  return (key * 0x9e3779b97f4a7c15ull) >> 32;
}

// Per-thread rank-indexed scratch for pinned hub-label sources. Invariant:
// every element is +infinity between CostMany calls (UnpinSource restores
// it), so a fresh pin only writes the source's own label ranks.
thread_local std::vector<double> tls_hl_scratch;

}  // namespace

TravelCostEngine::TravelCostEngine(const RoadNetwork& net,
                                   TravelCostOptions options)
    : net_(net), options_(options) {
  // Freeze before any backend build or concurrent use: every search below
  // iterates the CSR spans.
  const_cast<RoadNetwork&>(net_).Freeze();
  // A prebuilt index (from a loaded snapshot) is adopted as-is; only build
  // when the selected backend has none.
  switch (options_.backend) {
    case TravelCostOptions::Backend::kHubLabeling:
      if (options_.prebuilt_hub_labels == nullptr) {
        hub_labels_ = std::make_unique<HubLabeling>(net_);
      }
      break;
    case TravelCostOptions::Backend::kContractionHierarchies:
      if (options_.prebuilt_ch == nullptr) {
        ch_ = std::make_unique<ContractionHierarchies>(net_);
      }
      break;
    case TravelCostOptions::Backend::kBidirectionalDijkstra:
      break;
  }
  BuildCache(options_.cache_capacity, options_.cache_shards);
}

TravelCostEngine::TravelCostEngine(TravelCostEngine* parent, size_t capacity,
                                   size_t stripes)
    : net_(parent->net_), options_(parent->options_), parent_(parent) {
  options_.cache_capacity = capacity;
  options_.cache_shards = stripes;
  BuildCache(capacity, stripes);
}

void TravelCostEngine::BuildCache(size_t capacity, size_t stripes) {
  size_t num_shards = RoundUpPow2(std::max<size_t>(1, stripes));
  shard_mask_ = num_shards - 1;
  size_t per_shard = std::max<size_t>(1, capacity / num_shards);
  shards_.reserve(num_shards);
  for (size_t i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>(per_shard));
  }
}

std::unique_ptr<TravelCostEngine> TravelCostEngine::MakeCachePartition(
    size_t capacity, size_t stripes) {
  SR_CHECK(parent_ == nullptr);  // partitions of partitions are not a thing
  auto child = std::unique_ptr<TravelCostEngine>(
      new TravelCostEngine(this, capacity, stripes));
  std::lock_guard<std::mutex> lock(children_mutex_);
  children_.push_back(child.get());
  return child;
}

void TravelCostEngine::RetireChild(const TravelCostEngine* child) {
  std::lock_guard<std::mutex> lock(children_mutex_);
  for (size_t i = 0; i < children_.size(); ++i) {
    if (children_[i] == child) {
      children_.erase(children_.begin() + static_cast<ptrdiff_t>(i));
      break;
    }
  }
  retired_queries_.fetch_add(child->OwnQueries(), std::memory_order_relaxed);
  retired_lookups_.fetch_add(child->OwnLookups(), std::memory_order_relaxed);
}

TravelCostEngine::~TravelCostEngine() {
  if (parent_ != nullptr) parent_->RetireChild(this);
}

TravelCostEngine::Shard& TravelCostEngine::ShardFor(uint64_t key) const {
  return *shards_[ShardHash(key) & shard_mask_];
}

double TravelCostEngine::BackendCost(NodeId s, NodeId t) const {
  // Partitions own no backend: the computation (immutable after construction,
  // hence lock-free to share) is the parent's; only the cache is private.
  if (parent_ != nullptr) return parent_->BackendCost(s, t);
  switch (options_.backend) {
    case TravelCostOptions::Backend::kHubLabeling:
      return Hl()->Query(s, t);
    case TravelCostOptions::Backend::kContractionHierarchies:
      return Ch()->Query(s, t);
    case TravelCostOptions::Backend::kBidirectionalDijkstra:
      return BidirectionalDijkstra(net_, s, t);
  }
  return 0;  // unreachable
}

double TravelCostEngine::Cost(NodeId s, NodeId t) const {
  if (s == t) {
    self_lookups_.fetch_add(1, std::memory_order_relaxed);
    return 0;
  }
  const uint64_t key = PairKey(s, t);
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  ++shard.lookups;
  if (const double* hit = shard.lru.Find(key)) return *hit;
  // Miss: compute while holding the shard lock. This serializes racing
  // threads on the same cold pair (the loser sees a hit above), so a backend
  // computation is counted exactly when its result is inserted.
  double cost = BackendCost(s, t);
  shard.lru.Insert(key, cost);
  ++shard.queries;
  return cost;
}

void TravelCostEngine::CostMany(NodeId source, Span<const NodeId> targets,
                                double* out) const {
  // Pinned-source fast path only when hub labels are the selected backend
  // (a bundle may carry a prebuilt HL next to a CH engine; accounting must
  // match the configured backend).
  const HubLabeling* hl =
      options_.backend == TravelCostOptions::Backend::kHubLabeling ? Hl()
                                                                   : nullptr;
  bool pinned = false;
  double* scratch = nullptr;
  for (size_t i = 0; i < targets.size(); ++i) {
    const NodeId t = targets[i];
    if (t == source) {
      self_lookups_.fetch_add(1, std::memory_order_relaxed);
      out[i] = 0;
      continue;
    }
    const uint64_t key = PairKey(source, t);
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    ++shard.lookups;
    if (const double* hit = shard.lru.Find(key)) {
      out[i] = *hit;
      continue;
    }
    double cost;
    if (hl != nullptr) {
      if (!pinned) {
        // First miss: pin the source's label once. Lazy so an all-hits batch
        // never touches the scratch. Pinning under the shard lock is safe —
        // it only reads the immutable label buffer and writes this thread's
        // scratch.
        if (tls_hl_scratch.size() < hl->num_ranks()) {
          tls_hl_scratch.resize(hl->num_ranks(), kInf);
        }
        scratch = tls_hl_scratch.data();
        hl->PinSource(source, scratch);
        pinned = true;
      }
      cost = hl->QueryPinned(scratch, t);
    } else {
      cost = BackendCost(source, t);
    }
    shard.lru.Insert(key, cost);
    ++shard.queries;
    out[i] = cost;
  }
  if (pinned) hl->UnpinSource(source, scratch);
}

uint64_t TravelCostEngine::OwnQueries() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    total += shard->queries;
  }
  return total;
}

uint64_t TravelCostEngine::OwnLookups() const {
  uint64_t total = self_lookups_.load(std::memory_order_relaxed);
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    total += shard->lookups;
  }
  return total;
}

uint64_t TravelCostEngine::num_queries() const {
  uint64_t total = OwnQueries();
  if (parent_ == nullptr) {
    total += retired_queries_.load(std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(children_mutex_);
    for (const TravelCostEngine* child : children_) {
      total += child->OwnQueries();
    }
  }
  return total;
}

uint64_t TravelCostEngine::num_lookups() const {
  uint64_t total = OwnLookups();
  if (parent_ == nullptr) {
    total += retired_lookups_.load(std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(children_mutex_);
    for (const TravelCostEngine* child : children_) {
      total += child->OwnLookups();
    }
  }
  return total;
}

double TravelCostEngine::CacheHitRate() const {
  uint64_t lookups = num_lookups();
  if (lookups == 0) return 0;
  return 1.0 - static_cast<double>(num_queries()) / static_cast<double>(lookups);
}

size_t TravelCostEngine::MemoryBytes() const {
  size_t bytes = 0;
  // Count whichever index the engine actually queries — owned or adopted
  // from a snapshot (the root engine charges adopted indices once).
  if (parent_ == nullptr) {
    if (const HubLabeling* hl = Hl()) bytes += hl->MemoryBytes();
    if (const ContractionHierarchies* ch = Ch()) bytes += ch->MemoryBytes();
  }
  for (const auto& shard : shards_) {
    bytes += shard->lru.MemoryBytes() + sizeof(Shard);
  }
  if (parent_ == nullptr) {
    std::lock_guard<std::mutex> lock(children_mutex_);
    for (const TravelCostEngine* child : children_) {
      bytes += child->MemoryBytes();
    }
  }
  return bytes;
}

}  // namespace structride
