#include "roadnet/travel_cost.h"

#include "roadnet/contraction_hierarchies.h"
#include "roadnet/dijkstra.h"
#include "roadnet/hub_labeling.h"

namespace structride {

namespace {
inline uint64_t PairKey(NodeId s, NodeId t) {
  return (static_cast<uint64_t>(static_cast<uint32_t>(s)) << 32) |
         static_cast<uint32_t>(t);
}
}  // namespace

TravelCostEngine::TravelCostEngine(const RoadNetwork& net,
                                   TravelCostOptions options)
    : net_(net), options_(options) {
  switch (options_.backend) {
    case TravelCostOptions::Backend::kHubLabeling:
      hub_labels_ = std::make_unique<HubLabeling>(net_);
      break;
    case TravelCostOptions::Backend::kContractionHierarchies:
      ch_ = std::make_unique<ContractionHierarchies>(net_);
      break;
    case TravelCostOptions::Backend::kBidirectionalDijkstra:
      break;
  }
}

TravelCostEngine::~TravelCostEngine() = default;

double TravelCostEngine::BackendCost(NodeId s, NodeId t) const {
  switch (options_.backend) {
    case TravelCostOptions::Backend::kHubLabeling:
      return hub_labels_->Query(s, t);
    case TravelCostOptions::Backend::kContractionHierarchies:
      return ch_->Query(s, t);
    case TravelCostOptions::Backend::kBidirectionalDijkstra:
      return BidirectionalDijkstra(net_, s, t);
  }
  return 0;  // unreachable
}

double TravelCostEngine::Cost(NodeId s, NodeId t) const {
  lookups_.fetch_add(1, std::memory_order_relaxed);
  if (s == t) return 0;
  uint64_t key = PairKey(s, t);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = cache_.find(key);
    if (it != cache_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      return it->second->second;
    }
  }
  queries_.fetch_add(1, std::memory_order_relaxed);
  double cost = BackendCost(s, t);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = cache_.find(key);
    if (it == cache_.end()) {
      lru_.emplace_front(key, cost);
      cache_[key] = lru_.begin();
      if (cache_.size() > options_.cache_capacity) {
        cache_.erase(lru_.back().first);
        lru_.pop_back();
      }
    }
  }
  return cost;
}

double TravelCostEngine::CacheHitRate() const {
  uint64_t lookups = num_lookups();
  if (lookups == 0) return 0;
  return 1.0 - static_cast<double>(num_queries()) / static_cast<double>(lookups);
}

size_t TravelCostEngine::MemoryBytes() const {
  size_t bytes = 0;
  if (hub_labels_) bytes += hub_labels_->MemoryBytes();
  if (ch_) bytes += ch_->MemoryBytes();
  std::lock_guard<std::mutex> lock(mutex_);
  bytes += cache_.size() * (sizeof(uint64_t) * 2 + sizeof(double) +
                            4 * sizeof(void*));
  return bytes;
}

}  // namespace structride
