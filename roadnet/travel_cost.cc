#include "roadnet/travel_cost.h"

#include <algorithm>

#include "roadnet/contraction_hierarchies.h"
#include "roadnet/dijkstra.h"
#include "roadnet/hub_labeling.h"

namespace structride {

namespace {

// Canonical pair key: the network is undirected and every backend is
// symmetric, so (s, t) and (t, s) must share one cache slot.
inline uint64_t PairKey(NodeId s, NodeId t) {
  NodeId lo = std::min(s, t), hi = std::max(s, t);
  return (static_cast<uint64_t>(static_cast<uint32_t>(lo)) << 32) |
         static_cast<uint32_t>(hi);
}

// Fibonacci-mix the key so consecutive node pairs spread across shards.
inline uint64_t ShardHash(uint64_t key) {
  return (key * 0x9e3779b97f4a7c15ull) >> 32;
}

inline size_t RoundUpPow2(size_t v) {
  size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

TravelCostEngine::TravelCostEngine(const RoadNetwork& net,
                                   TravelCostOptions options)
    : net_(net), options_(options) {
  switch (options_.backend) {
    case TravelCostOptions::Backend::kHubLabeling:
      hub_labels_ = std::make_unique<HubLabeling>(net_);
      break;
    case TravelCostOptions::Backend::kContractionHierarchies:
      ch_ = std::make_unique<ContractionHierarchies>(net_);
      break;
    case TravelCostOptions::Backend::kBidirectionalDijkstra:
      break;
  }
  size_t num_shards = RoundUpPow2(std::max<size_t>(1, options_.cache_shards));
  shard_mask_ = num_shards - 1;
  size_t per_shard =
      std::max<size_t>(1, options_.cache_capacity / num_shards);
  shards_.reserve(num_shards);
  for (size_t i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
    shards_.back()->capacity = per_shard;
  }
}

TravelCostEngine::~TravelCostEngine() = default;

TravelCostEngine::Shard& TravelCostEngine::ShardFor(uint64_t key) const {
  return *shards_[ShardHash(key) & shard_mask_];
}

double TravelCostEngine::BackendCost(NodeId s, NodeId t) const {
  switch (options_.backend) {
    case TravelCostOptions::Backend::kHubLabeling:
      return hub_labels_->Query(s, t);
    case TravelCostOptions::Backend::kContractionHierarchies:
      return ch_->Query(s, t);
    case TravelCostOptions::Backend::kBidirectionalDijkstra:
      return BidirectionalDijkstra(net_, s, t);
  }
  return 0;  // unreachable
}

double TravelCostEngine::Cost(NodeId s, NodeId t) const {
  lookups_.fetch_add(1, std::memory_order_relaxed);
  if (s == t) return 0;
  const uint64_t key = PairKey(s, t);
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.map.find(key);
  if (it != shard.map.end()) {
    if (it->second != shard.lru.begin()) {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    }
    return it->second->second;
  }
  // Miss: compute while holding the shard lock. This serializes racing
  // threads on the same cold pair (the loser sees a hit above), so a backend
  // computation is counted exactly when its result is inserted.
  double cost = BackendCost(s, t);
  shard.lru.emplace_front(key, cost);
  shard.map[key] = shard.lru.begin();
  ++shard.queries;
  if (shard.map.size() > shard.capacity) {
    shard.map.erase(shard.lru.back().first);
    shard.lru.pop_back();
  }
  return cost;
}

uint64_t TravelCostEngine::num_queries() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    total += shard->queries;
  }
  return total;
}

double TravelCostEngine::CacheHitRate() const {
  uint64_t lookups = num_lookups();
  if (lookups == 0) return 0;
  return 1.0 - static_cast<double>(num_queries()) / static_cast<double>(lookups);
}

size_t TravelCostEngine::MemoryBytes() const {
  size_t bytes = 0;
  if (hub_labels_) bytes += hub_labels_->MemoryBytes();
  if (ch_) bytes += ch_->MemoryBytes();
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    bytes += shard->map.size() * (sizeof(uint64_t) * 2 + sizeof(double) +
                                  4 * sizeof(void*));
    bytes += sizeof(Shard);
  }
  return bytes;
}

}  // namespace structride
