// The travel-cost oracle every layer above roadnet/ programs against: a
// point-to-point shortest-path backend (hub labels by default, matching the
// paper's setup) behind a lock-striped, sharded LRU cache with exact,
// race-free query accounting so benches can report #SP queries per run.
//
// Concurrency contract (DESIGN.md §"Concurrency model"):
//  - The network is undirected and every backend is symmetric, so the cache
//    key is the canonical (min, max) node pair: Cost(s, t) and Cost(t, s)
//    share one slot and at most one backend computation.
//  - The cache is split into power-of-two shards, each with its own mutex
//    and LRU; threads touching different pairs almost never contend.
//  - A backend computation is counted iff its result enters the cache. The
//    miss path computes under the shard lock, which doubles as in-flight
//    deduplication: two threads racing on the same cold pair serialize, the
//    second finds a hit, and num_queries() is identical at 1 and N threads
//    (as long as the working set fits the capacity — eviction order, and
//    hence re-misses, are the one thing access interleaving can change).

#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "roadnet/road_network.h"

namespace structride {

class HubLabeling;
class ContractionHierarchies;

struct TravelCostOptions {
  enum class Backend {
    kHubLabeling,
    kContractionHierarchies,
    kBidirectionalDijkstra,
  };
  Backend backend = Backend::kHubLabeling;
  /// Total cached pairs across all shards.
  size_t cache_capacity = 1u << 20;
  /// Lock stripes; rounded up to a power of two, clamped to >= 1.
  size_t cache_shards = 64;
};

class TravelCostEngine {
 public:
  explicit TravelCostEngine(const RoadNetwork& net,
                            TravelCostOptions options = {});
  ~TravelCostEngine();

  TravelCostEngine(const TravelCostEngine&) = delete;
  TravelCostEngine& operator=(const TravelCostEngine&) = delete;

  /// Shortest-path travel cost between two nodes. Thread-safe.
  double Cost(NodeId s, NodeId t) const;

  /// Admissible lower bound (straight-line distance); free, never counted.
  double LowerBound(NodeId s, NodeId t) const {
    return net_.EuclidLowerBound(s, t);
  }

  const RoadNetwork& network() const { return net_; }

  /// Backend shortest-path computations (i.e. entries inserted on misses).
  uint64_t num_queries() const;
  /// All Cost() calls, hits included.
  uint64_t num_lookups() const { return lookups_.load(std::memory_order_relaxed); }
  double CacheHitRate() const;

  size_t MemoryBytes() const;

 private:
  struct Shard {
    mutable std::mutex mutex;
    std::list<std::pair<uint64_t, double>> lru;
    std::unordered_map<uint64_t,
                       std::list<std::pair<uint64_t, double>>::iterator>
        map;
    uint64_t queries = 0;  ///< inserts; guarded by mutex, hence exact
    size_t capacity = 0;
  };

  double BackendCost(NodeId s, NodeId t) const;
  Shard& ShardFor(uint64_t key) const;

  const RoadNetwork& net_;
  TravelCostOptions options_;
  std::unique_ptr<HubLabeling> hub_labels_;
  std::unique_ptr<ContractionHierarchies> ch_;

  mutable std::vector<std::unique_ptr<Shard>> shards_;
  size_t shard_mask_ = 0;
  mutable std::atomic<uint64_t> lookups_{0};
};

}  // namespace structride
