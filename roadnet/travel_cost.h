// The travel-cost oracle every layer above roadnet/ programs against: a
// point-to-point shortest-path backend (hub labels by default, matching the
// paper's setup) behind an LRU cache, with thread-safe query accounting so
// benches can report #SP queries per run.

#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <tuple>
#include <unordered_map>

#include "roadnet/road_network.h"

namespace structride {

class HubLabeling;
class ContractionHierarchies;

struct TravelCostOptions {
  enum class Backend {
    kHubLabeling,
    kContractionHierarchies,
    kBidirectionalDijkstra,
  };
  Backend backend = Backend::kHubLabeling;
  size_t cache_capacity = 1u << 20;
};

class TravelCostEngine {
 public:
  explicit TravelCostEngine(const RoadNetwork& net,
                            TravelCostOptions options = {});
  ~TravelCostEngine();

  TravelCostEngine(const TravelCostEngine&) = delete;
  TravelCostEngine& operator=(const TravelCostEngine&) = delete;

  /// Shortest-path travel cost between two nodes. Thread-safe.
  double Cost(NodeId s, NodeId t) const;

  /// Admissible lower bound (straight-line distance); free, never counted.
  double LowerBound(NodeId s, NodeId t) const {
    return net_.EuclidLowerBound(s, t);
  }

  const RoadNetwork& network() const { return net_; }

  /// Backend shortest-path computations (i.e. cache misses).
  uint64_t num_queries() const { return queries_.load(std::memory_order_relaxed); }
  /// All Cost() calls, hits included.
  uint64_t num_lookups() const { return lookups_.load(std::memory_order_relaxed); }
  double CacheHitRate() const;

  size_t MemoryBytes() const;

 private:
  double BackendCost(NodeId s, NodeId t) const;

  const RoadNetwork& net_;
  TravelCostOptions options_;
  std::unique_ptr<HubLabeling> hub_labels_;
  std::unique_ptr<ContractionHierarchies> ch_;

  // LRU cache keyed on the (s, t) pair; guarded by a mutex because the SARD
  // parallel acceptance stage queries from worker threads.
  mutable std::mutex mutex_;
  mutable std::list<std::pair<uint64_t, double>> lru_;
  mutable std::unordered_map<uint64_t,
                             std::list<std::pair<uint64_t, double>>::iterator>
      cache_;
  mutable std::atomic<uint64_t> queries_{0};
  mutable std::atomic<uint64_t> lookups_{0};
};

}  // namespace structride
