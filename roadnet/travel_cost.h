// The travel-cost oracle every layer above roadnet/ programs against: a
// point-to-point shortest-path backend (hub labels by default, matching the
// paper's setup) behind a lock-striped, sharded LRU cache with exact,
// race-free query accounting so benches can report #SP queries per run.
//
// Concurrency contract (DESIGN.md §"Concurrency model"):
//  - The network is undirected and every backend is symmetric, so the cache
//    key is the canonical (min, max) node pair: Cost(s, t) and Cost(t, s)
//    share one slot and at most one backend computation.
//  - The cache is split into power-of-two shards, each with its own mutex
//    and allocation-free flat LRU (roadnet/flat_lru.h); threads touching
//    different pairs almost never contend.
//  - A backend computation is counted iff its result enters the cache. The
//    miss path computes under the shard lock, which doubles as in-flight
//    deduplication: two threads racing on the same cold pair serialize, the
//    second finds a hit, and num_queries() is identical at 1 and N threads
//    (as long as the working set fits the capacity — eviction order, and
//    hence re-misses, are the one thing access interleaving can change).
//  - CostMany(s, targets) is per-target equivalent to Cost(s, t): the same
//    hits, the same misses, the same counts, in the same order — it only
//    pins the source's hub label once so the batch pays the source-side
//    label walk a single time instead of per pair.

#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "roadnet/flat_lru.h"
#include "roadnet/road_network.h"
#include "util/span.h"

namespace structride {

class HubLabeling;
class ContractionHierarchies;

struct TravelCostOptions {
  enum class Backend {
    kHubLabeling,
    kContractionHierarchies,
    kBidirectionalDijkstra,
  };
  Backend backend = Backend::kHubLabeling;
  /// Total cached pairs across all shards.
  size_t cache_capacity = 1u << 20;
  /// Lock stripes; rounded up to a power of two, clamped to >= 1.
  size_t cache_shards = 64;
  /// Already-built indices to adopt instead of rebuilding — how a
  /// snapshot-loaded GraphBundle's preprocessed sections are plugged in.
  /// Used only when the matching backend is selected; must outlive the
  /// engine (and any partitions).
  const HubLabeling* prebuilt_hub_labels = nullptr;
  const ContractionHierarchies* prebuilt_ch = nullptr;
};

class TravelCostEngine {
 public:
  explicit TravelCostEngine(const RoadNetwork& net,
                            TravelCostOptions options = {});
  ~TravelCostEngine();

  TravelCostEngine(const TravelCostEngine&) = delete;
  TravelCostEngine& operator=(const TravelCostEngine&) = delete;

  /// Shortest-path travel cost between two nodes. Thread-safe.
  double Cost(NodeId s, NodeId t) const;

  /// Batched one-to-many costs: out[i] = Cost(source, targets[i]), with
  /// identical cache fills, query counts and lookup counts as issuing the
  /// point-to-point calls in order. With the hub-label backend the source's
  /// label is pinned once into a per-thread rank-indexed scratch, so each
  /// miss costs one target-label walk instead of a full merge join.
  /// Thread-safe.
  void CostMany(NodeId source, Span<const NodeId> targets, double* out) const;

  /// Admissible lower bound (straight-line distance); free, never counted.
  double LowerBound(NodeId s, NodeId t) const {
    return net_.EuclidLowerBound(s, t);
  }

  const RoadNetwork& network() const { return net_; }
  const TravelCostOptions& options() const { return options_; }

  /// Creates a cache partition: a child engine sharing this engine's frozen
  /// network and shortest-path backend, but owning a private FlatLru shard
  /// set and counters. Concurrent users (one geo-shard each) therefore never
  /// contend on a cache lock, and per-partition num_queries()/num_lookups()
  /// stay exact per user. The parent's num_queries()/num_lookups() aggregate
  /// over itself plus all partitions, live or destroyed (a dying partition
  /// folds its counts into the parent), so whole-process accounting is
  /// unaffected by partition lifetimes. Partitions must not outlive the
  /// parent and cannot themselves be partitioned.
  std::unique_ptr<TravelCostEngine> MakeCachePartition(size_t capacity,
                                                       size_t stripes);
  bool is_partition() const { return parent_ != nullptr; }

  /// Backend shortest-path computations (i.e. entries inserted on misses).
  uint64_t num_queries() const;
  /// All Cost() calls (CostMany counts one per target), hits included.
  uint64_t num_lookups() const;
  double CacheHitRate() const;

  size_t MemoryBytes() const;

 private:
  struct Shard {
    explicit Shard(size_t capacity) : lru(capacity) {}
    mutable std::mutex mutex;
    FlatLru lru;
    uint64_t queries = 0;  ///< inserts; guarded by mutex, hence exact
    uint64_t lookups = 0;  ///< Cost/CostMany targets routed here; ditto
  };

  /// Partition constructor: shares parent's network + backend, owns a cache.
  TravelCostEngine(TravelCostEngine* parent, size_t capacity, size_t stripes);

  void BuildCache(size_t capacity, size_t stripes);
  double BackendCost(NodeId s, NodeId t) const;
  Shard& ShardFor(uint64_t key) const;
  const HubLabeling* Hl() const {
    if (parent_ != nullptr) return parent_->Hl();
    return options_.prebuilt_hub_labels != nullptr
               ? options_.prebuilt_hub_labels
               : hub_labels_.get();
  }
  const ContractionHierarchies* Ch() const {
    if (parent_ != nullptr) return parent_->Ch();
    return options_.prebuilt_ch != nullptr ? options_.prebuilt_ch : ch_.get();
  }
  /// This engine's own cache counters, partitions excluded.
  uint64_t OwnQueries() const;
  uint64_t OwnLookups() const;
  void RetireChild(const TravelCostEngine* child);

  const RoadNetwork& net_;
  TravelCostOptions options_;
  std::unique_ptr<HubLabeling> hub_labels_;
  std::unique_ptr<ContractionHierarchies> ch_;

  mutable std::vector<std::unique_ptr<Shard>> shards_;
  size_t shard_mask_ = 0;
  /// s == t lookups only: they never touch a shard, so they keep their own
  /// counter; everything else is counted under the shard lock it already
  /// takes (one atomic RMW fewer on the hot path).
  mutable std::atomic<uint64_t> self_lookups_{0};

  /// Partition bookkeeping. parent_ is set on children; children_ and the
  /// retired_* accumulators live on the parent.
  TravelCostEngine* parent_ = nullptr;
  mutable std::mutex children_mutex_;
  std::vector<const TravelCostEngine*> children_;
  std::atomic<uint64_t> retired_queries_{0};
  std::atomic<uint64_t> retired_lookups_{0};
};

}  // namespace structride
