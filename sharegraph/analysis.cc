#include "sharegraph/analysis.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace structride {

DegreeProfile ComputeDegreeProfile(const ShareGraph& g) {
  DegreeProfile profile;
  profile.num_nodes = g.NumNodes();
  profile.num_edges = g.NumEdges();
  if (profile.num_nodes == 0) return profile;
  profile.mean_degree =
      2.0 * static_cast<double>(profile.num_edges) /
      static_cast<double>(profile.num_nodes);

  // Clauset-style continuous MLE over positive degrees with d_min = 1:
  // eta = 1 + n / sum(ln(d_i / 0.5)).
  double log_sum = 0;
  size_t positive = 0;
  for (RequestId v : g.Nodes()) {
    size_t d = g.Degree(v);
    if (d == 0) continue;
    ++positive;
    log_sum += std::log(static_cast<double>(d) / 0.5);
  }
  if (positive > 0 && log_sum > 0) {
    profile.power_law_exponent = 1.0 + static_cast<double>(positive) / log_sum;
  }
  return profile;
}

CoreDecomposition ComputeCoreDecomposition(const ShareGraph& g) {
  CoreDecomposition out;
  std::unordered_map<RequestId, int> degree;
  for (RequestId v : g.Nodes()) degree[v] = static_cast<int>(g.Degree(v));

  // Bucketed peeling in ascending-degree order.
  int max_degree = 0;
  for (const auto& [v, d] : degree) {
    (void)v;
    max_degree = std::max(max_degree, d);
  }
  std::vector<std::vector<RequestId>> buckets(
      static_cast<size_t>(max_degree) + 1);
  for (RequestId v : g.Nodes()) buckets[static_cast<size_t>(degree[v])].push_back(v);

  std::unordered_set<RequestId> removed;
  int current_core = 0;
  for (int d = 0; d <= max_degree; ++d) {
    auto& bucket = buckets[static_cast<size_t>(d)];
    for (size_t k = 0; k < bucket.size(); ++k) {  // bucket grows during peel
      RequestId v = bucket[k];
      if (removed.count(v) || degree[v] != d) continue;
      current_core = std::max(current_core, d);
      out.core_number[v] = current_core;
      removed.insert(v);
      for (RequestId nb : g.Neighbors(v)) {
        if (removed.count(nb)) continue;
        int& dn = degree[nb];
        if (dn > d) {
          --dn;
          if (dn <= d) {
            bucket.push_back(nb);
          } else {
            buckets[static_cast<size_t>(dn)].push_back(nb);
          }
        }
      }
    }
  }
  out.degeneracy = current_core;
  return out;
}

std::vector<std::vector<RequestId>> ConnectedComponents(const ShareGraph& g) {
  std::vector<std::vector<RequestId>> components;
  std::unordered_set<RequestId> seen;
  for (RequestId root : g.Nodes()) {
    if (seen.count(root)) continue;
    std::vector<RequestId> component;
    std::vector<RequestId> frontier = {root};
    seen.insert(root);
    while (!frontier.empty()) {
      RequestId v = frontier.back();
      frontier.pop_back();
      component.push_back(v);
      for (RequestId nb : g.Neighbors(v)) {
        if (seen.insert(nb).second) frontier.push_back(nb);
      }
    }
    std::sort(component.begin(), component.end());
    components.push_back(std::move(component));
  }
  return components;
}

namespace {

constexpr size_t kMaxCliques = 1u << 20;

void BronKerbosch(const ShareGraph& g, std::vector<RequestId>& r,
                  std::vector<RequestId> p, std::vector<RequestId> x,
                  std::vector<std::vector<RequestId>>* out) {
  if (out->size() >= kMaxCliques) return;
  if (p.empty() && x.empty()) {
    out->push_back(r);
    return;
  }
  // Pivot: the candidate with most neighbors inside P.
  RequestId pivot = 0;
  size_t best = 0;
  bool have_pivot = false;
  for (const auto* pool : {&p, &x}) {
    for (RequestId u : *pool) {
      size_t count = 0;
      for (RequestId v : p) {
        if (g.HasEdge(u, v)) ++count;
      }
      if (!have_pivot || count > best) {
        have_pivot = true;
        best = count;
        pivot = u;
      }
    }
  }
  std::vector<RequestId> candidates;
  for (RequestId v : p) {
    if (!have_pivot || !g.HasEdge(pivot, v)) candidates.push_back(v);
  }
  for (RequestId v : candidates) {
    std::vector<RequestId> np, nx;
    for (RequestId u : p) {
      if (g.HasEdge(u, v)) np.push_back(u);
    }
    for (RequestId u : x) {
      if (g.HasEdge(u, v)) nx.push_back(u);
    }
    r.push_back(v);
    BronKerbosch(g, r, std::move(np), std::move(nx), out);
    r.pop_back();
    p.erase(std::remove(p.begin(), p.end(), v), p.end());
    x.push_back(v);
  }
}

}  // namespace

std::vector<std::vector<RequestId>> MaximalCliques(const ShareGraph& g) {
  std::vector<std::vector<RequestId>> out;
  std::vector<RequestId> r;
  BronKerbosch(g, r, g.Nodes(), {}, &out);
  return out;
}

std::vector<std::vector<RequestId>> GreedyCliquePartition(
    const ShareGraph& g, size_t max_clique_size) {
  if (max_clique_size == 0) max_clique_size = 1;
  // Seed from the least shareable nodes first (they have the fewest chances
  // to join a clique later); ties broken by id for determinism.
  std::vector<RequestId> order = g.Nodes();
  std::stable_sort(order.begin(), order.end(), [&](RequestId a, RequestId b) {
    size_t da = g.Degree(a), db = g.Degree(b);
    if (da != db) return da < db;
    return a < b;
  });

  std::unordered_set<RequestId> assigned;
  std::vector<std::vector<RequestId>> cliques;
  for (RequestId seed : order) {
    if (assigned.count(seed)) continue;
    std::vector<RequestId> clique = {seed};
    assigned.insert(seed);
    while (clique.size() < max_clique_size) {
      RequestId pick = 0;
      bool found = false;
      size_t pick_degree = 0;
      for (RequestId nb : g.Neighbors(clique[0])) {
        if (assigned.count(nb)) continue;
        bool adjacent_to_all = true;
        for (size_t k = 1; k < clique.size(); ++k) {
          if (!g.HasEdge(clique[k], nb)) {
            adjacent_to_all = false;
            break;
          }
        }
        if (!adjacent_to_all) continue;
        size_t d = g.Degree(nb);
        if (!found || d < pick_degree || (d == pick_degree && nb < pick)) {
          found = true;
          pick = nb;
          pick_degree = d;
        }
      }
      if (!found) break;
      clique.push_back(pick);
      assigned.insert(pick);
    }
    cliques.push_back(std::move(clique));
  }
  return cliques;
}

StructureReport AnalyzeStructure(const ShareGraph& g, size_t capacity) {
  StructureReport report;
  report.degrees = ComputeDegreeProfile(g);
  report.degeneracy = ComputeCoreDecomposition(g).degeneracy;
  size_t omega = 0;
  for (const auto& clique : MaximalCliques(g)) {
    omega = std::max(omega, clique.size());
  }
  report.max_clique = omega;
  report.greedy_partition_cliques = GreedyCliquePartition(g, capacity).size();

  // Maximal matching in node order: each matched pair merges into one
  // clique, so theta' <= n - |M|.
  std::unordered_set<RequestId> matched;
  size_t matching = 0;
  for (RequestId v : g.Nodes()) {
    if (matched.count(v)) continue;
    for (RequestId nb : g.Neighbors(v)) {
      if (!matched.count(nb)) {
        matched.insert(v);
        matched.insert(nb);
        ++matching;
        break;
      }
    }
  }
  report.partition_upper_bound = g.NumNodes() - matching;
  report.num_components = ConnectedComponents(g).size();
  return report;
}

}  // namespace structride
