// Structural analyses of shareability graphs: the measurements behind the
// paper's theory (power-law degree profile, degeneracy, clique structure,
// capacity-bounded clique partition and its matching-based upper bound).

#pragma once

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "sharegraph/share_graph.h"

namespace structride {

struct DegreeProfile {
  size_t num_nodes = 0;
  size_t num_edges = 0;
  double mean_degree = 0;
  /// Continuous MLE power-law exponent eta fitted to positive degrees
  /// (Theorem IV.1 assumes a power-law profile); 0 when degenerate.
  double power_law_exponent = 0;
};

DegreeProfile ComputeDegreeProfile(const ShareGraph& g);

struct CoreDecomposition {
  std::unordered_map<RequestId, int> core_number;
  int degeneracy = 0;
};

CoreDecomposition ComputeCoreDecomposition(const ShareGraph& g);

/// Connected components, each listing nodes in graph insertion order.
std::vector<std::vector<RequestId>> ConnectedComponents(const ShareGraph& g);

/// All maximal cliques (Bron-Kerbosch with pivoting). Intended for
/// batch-sized graphs; output capped defensively at 1M cliques.
std::vector<std::vector<RequestId>> MaximalCliques(const ShareGraph& g);

/// Greedy partition of the nodes into cliques of size <= max_clique_size
/// (the capacity-bounded grouping regime of Eq. 6/8).
std::vector<std::vector<RequestId>> GreedyCliquePartition(
    const ShareGraph& g, size_t max_clique_size);

struct StructureReport {
  DegreeProfile degrees;
  int degeneracy = 0;
  size_t max_clique = 0;  ///< omega
  size_t greedy_partition_cliques = 0;
  /// Clique-partition upper bound n - |M| from a maximal matching M (each
  /// matched pair can always merge into one clique).
  size_t partition_upper_bound = 0;
  size_t num_components = 0;
};

StructureReport AnalyzeStructure(const ShareGraph& g, size_t capacity);

}  // namespace structride
