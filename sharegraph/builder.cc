#include "sharegraph/builder.h"

#include <algorithm>
#include <unordered_set>

#include "util/logging.h"
#include "util/thread_pool.h"

namespace structride {

namespace {

// The four stop orders in which the two rides overlap (sequential service is
// not "sharing" and would make the graph near-complete).
constexpr int kJointOrders[4][4] = {
    // 0=pickup a, 1=pickup b, 2=dropoff a, 3=dropoff b
    {0, 1, 2, 3},
    {0, 1, 3, 2},
    {1, 0, 2, 3},
    {1, 0, 3, 2},
};

}  // namespace

template <typename Check>
bool ShareGraphBuilder::AnyJointOrderFeasible(const Request& a,
                                              const Request& b,
                                              Check check) const {
  const Stop stops[4] = {PickupStop(a), PickupStop(b), DropoffStop(a),
                         DropoffStop(b)};
  std::vector<Stop> sequence(4);
  for (const auto& order : kJointOrders) {
    for (int k = 0; k < 4; ++k) sequence[static_cast<size_t>(k)] = stops[order[k]];
    const Request& first = order[0] == 0 ? a : b;
    RouteState state;
    state.start = first.source;
    state.start_time = first.release_time;
    // A pair needs two seats; a capacity-1 fleet shares nothing.
    state.capacity = std::min(2, options_.vehicle_capacity);
    if (check(state, sequence)) return true;
  }
  return false;
}

bool ShareGraphBuilder::Shareable(const Request& a, const Request& b) const {
  return AnyJointOrderFeasible(
      a, b, [this](const RouteState& state, const std::vector<Stop>& stops) {
        return CheckSchedule(state, stops, engine_).first;
      });
}

bool ShareGraphBuilder::LowerBoundShareable(const Request& a,
                                            const Request& b) const {
  return AnyJointOrderFeasible(
      a, b, [this](const RouteState& state, const std::vector<Stop>& stops) {
        return CheckScheduleLowerBound(state, stops, engine_).first;
      });
}

bool ShareGraphBuilder::AngleWide(const Request& a, const Request& b) const {
  const RoadNetwork& net = engine_->network();
  Point sa = net.position(a.source), ea = net.position(a.destination);
  Point sb = net.position(b.source), eb = net.position(b.destination);
  // Directions of both trips as seen from the other trip's origin.
  double theta_ab = AngleBetween(ea - sb, eb - sb);
  double theta_ba = AngleBetween(eb - sa, ea - sa);
  return theta_ab >= options_.angle_threshold ||
         theta_ba >= options_.angle_threshold;
}

void ShareGraphBuilder::AddBatch(const std::vector<Request>& batch) {
  size_t first_new = order_.size();
  for (const Request& r : batch) {
    if (requests_.count(r.id)) continue;
    requests_[r.id] = r;
    order_.push_back(r.id);
    graph_.AddNode(r.id);
  }
  const size_t num_new = order_.size() - first_new;
  if (num_new == 0) return;

  // Phase 1 — evaluate pair feasibility, one task per new request against
  // everything before it. Tasks only read builder state and write their own
  // slot, and the pair checks are mutually independent, so running them on
  // the pool changes neither the accepted edges nor the set of travel-cost
  // pairs queried.
  std::vector<std::vector<RequestId>> accepted(num_new);
  std::vector<uint64_t> pruned(num_new, 0);
  auto check_new_request = [&](size_t task) {
    const size_t i = first_new + task;
    const Request& a = requests_.at(order_[i]);
    // Free screens first (no shortest-path queries), collecting survivors.
    std::vector<const Request*> candidates;
    for (size_t j = 0; j < i; ++j) {
      const Request& b = requests_.at(order_[j]);
      // Temporal screen: if one ride must end before the other exists, no
      // overlapping order can be feasible.
      if (a.release_time > b.deadline || b.release_time > a.deadline) continue;
      if (options_.use_angle_pruning && AngleWide(a, b) &&
          !LowerBoundShareable(a, b)) {
        ++pruned[task];
        continue;
      }
      candidates.push_back(&b);
    }
    // Batched warm-up: every surviving pair reaches Shareable, whose first
    // evaluated joint order starts at one rider's pickup and prices the leg
    // to the other pickup before any deadline can fail — so the
    // (a.source, b.source) cost is queried for every candidate regardless
    // of which order wins. Fetching those legs one-to-many pins a's source
    // label once; CostMany's per-target cache fill/count keeps the query
    // set — and hence sp_queries — identical to the point-to-point path.
    if (candidates.size() > 1) {
      // The leading rider must be able to make its own pickup, or every
      // joint order starting with it bails before pricing any leg; a pair
      // where neither rider can lead performs zero queries and must not be
      // warmed.
      const bool a_can_lead = a.release_time <= a.latest_pickup + 1e-7;
      std::vector<NodeId> pickups;
      pickups.reserve(candidates.size());
      for (const Request* b : candidates) {
        if (a_can_lead || b->release_time <= b->latest_pickup + 1e-7) {
          pickups.push_back(b->source);
        }
      }
      std::vector<double> warmed(pickups.size());
      engine_->CostMany(a.source, {pickups.data(), pickups.size()},
                        warmed.data());
    }
    for (const Request* b : candidates) {
      if (Shareable(a, *b)) accepted[task].push_back(b->id);
    }
  };
  if (pool_ != nullptr && num_new > 1) {
    pool_->ParallelFor(num_new, check_new_request);
  } else {
    for (size_t task = 0; task < num_new; ++task) check_new_request(task);
  }

  // Phase 2 — commit serially in canonical order: edge lists come out in
  // the exact sequence the serial loop would have produced.
  for (size_t task = 0; task < num_new; ++task) {
    pruned_pairs_ += pruned[task];
    const RequestId a_id = order_[first_new + task];
    for (RequestId b_id : accepted[task]) graph_.AddEdge(a_id, b_id);
  }
}

void ShareGraphBuilder::Retain(const std::vector<RequestId>& keep) {
  std::unordered_set<RequestId> keep_set(keep.begin(), keep.end());
  std::vector<RequestId> drop;
  for (RequestId id : order_) {
    if (!keep_set.count(id)) drop.push_back(id);
  }
  for (RequestId id : drop) {
    graph_.RemoveNode(id);
    requests_.erase(id);
  }
  order_.erase(std::remove_if(order_.begin(), order_.end(),
                              [&](RequestId id) { return !keep_set.count(id); }),
               order_.end());
}

const Request& ShareGraphBuilder::request(RequestId id) const {
  auto it = requests_.find(id);
  SR_CHECK(it != requests_.end());
  return it->second;
}

size_t ShareGraphBuilder::MemoryBytes() const {
  size_t bytes = graph_.MemoryBytes();
  bytes += requests_.bucket_count() * sizeof(void*);
  bytes += requests_.size() * (sizeof(Request) + sizeof(RequestId) + 2 * sizeof(void*));
  bytes += order_.capacity() * sizeof(RequestId);
  return bytes;
}

}  // namespace structride
