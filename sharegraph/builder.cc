#include "sharegraph/builder.h"

#include <algorithm>

#include "util/arena.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace structride {

namespace {

// The four stop orders in which the two rides overlap (sequential service is
// not "sharing" and would make the graph near-complete).
constexpr int kJointOrders[4][4] = {
    // 0=pickup a, 1=pickup b, 2=dropoff a, 3=dropoff b
    {0, 1, 2, 3},
    {0, 1, 3, 2},
    {1, 0, 2, 3},
    {1, 0, 3, 2},
};

}  // namespace

ShareGraphBuilder::PairKey ShareGraphBuilder::MakeKey(RequestId a,
                                                      RequestId b) {
  return a < b ? PairKey{a, b} : PairKey{b, a};
}

size_t ShareGraphBuilder::PairKeyHasher::operator()(const PairKey& k) const {
  // Boost-style combine over the two 64-bit halves.
  size_t h = std::hash<RequestId>{}(k.lo);
  h ^= std::hash<RequestId>{}(k.hi) + 0x9e3779b97f4a7c15ull + (h << 6) +
       (h >> 2);
  return h;
}

template <typename Check>
bool ShareGraphBuilder::AnyJointOrderFeasible(const Request& a,
                                              const Request& b,
                                              Check check) const {
  const Stop stops[4] = {PickupStop(a), PickupStop(b), DropoffStop(a),
                         DropoffStop(b)};
  Stop sequence[4];
  for (const auto& order : kJointOrders) {
    for (int k = 0; k < 4; ++k) sequence[static_cast<size_t>(k)] = stops[order[k]];
    const Request& first = order[0] == 0 ? a : b;
    RouteState state;
    state.start = first.source;
    state.start_time = first.release_time;
    // A pair needs two seats; a capacity-1 fleet shares nothing.
    state.capacity = std::min(2, options_.vehicle_capacity);
    if (check(state, Span<const Stop>(sequence, 4))) return true;
  }
  return false;
}

bool ShareGraphBuilder::Shareable(const Request& a, const Request& b) const {
  return AnyJointOrderFeasible(
      a, b, [this](const RouteState& state, Span<const Stop> stops) {
        return CheckSchedule(state, stops, engine_).first;
      });
}

bool ShareGraphBuilder::CheckedShareable(RequestId a, RequestId b) {
  SR_CHECK(a != b);
  auto it = memo_.find(MakeKey(a, b));
  if (it != memo_.end()) {
    ++memo_hits_;
    return it->second;
  }
  bool shareable = Shareable(request(a), request(b));
  ++pair_checks_;
  RecordMemo(a, b, shareable);
  return shareable;
}

void ShareGraphBuilder::RecordMemo(RequestId a, RequestId b, bool shareable) {
  memo_[MakeKey(a, b)] = shareable;
  memo_partners_[a].push_back(b);
  memo_partners_[b].push_back(a);
}

bool ShareGraphBuilder::LowerBoundShareable(const Request& a,
                                            const Request& b) const {
  return AnyJointOrderFeasible(
      a, b, [this](const RouteState& state, Span<const Stop> stops) {
        return CheckScheduleLowerBound(state, stops, engine_).first;
      });
}

bool ShareGraphBuilder::AngleWide(const Request& a, const Request& b) const {
  const RoadNetwork& net = engine_->network();
  Point sa = net.position(a.source), ea = net.position(a.destination);
  Point sb = net.position(b.source), eb = net.position(b.destination);
  // Directions of both trips as seen from the other trip's origin.
  double theta_ab = AngleBetween(ea - sb, eb - sb);
  double theta_ba = AngleBetween(eb - sa, ea - sa);
  return theta_ab >= options_.angle_threshold ||
         theta_ba >= options_.angle_threshold;
}

void ShareGraphBuilder::AddRequests(Span<const Request> batch) {
  // graph_.Nodes() is the pairing order (see the member comment); reading
  // it first settles any pending removal tombstones, so the node adds
  // below are pure appends and the reference stays valid for the tasks.
  const size_t first_new = graph_.Nodes().size();
  for (const Request& r : batch) {
    if (requests_.count(r.id)) continue;
    requests_[r.id] = r;
    graph_.AddNode(r.id);
  }
  const std::vector<RequestId>& order = graph_.Nodes();
  const size_t num_new = order.size() - first_new;
  if (num_new == 0) return;

  // Phase 1 — evaluate pair feasibility, one task per new request against
  // everything before it. Tasks only read builder state (the memo included —
  // no writer runs concurrently) and write their own slot, and the pair
  // checks are mutually independent, so running them on the pool changes
  // neither the accepted edges nor the set of travel-cost pairs queried.
  struct Verdict {
    RequestId partner = 0;
    bool shareable = false;
    bool from_memo = false;
  };
  // Per task, verdicts in partner (insertion) order — memo answers and
  // exact checks interleaved exactly where the serial loop would have
  // produced them, so the committed adjacency sequence is independent of
  // how each verdict was obtained.
  std::vector<std::vector<Verdict>> verdicts(num_new);
  std::vector<uint64_t> pruned(num_new, 0);
  auto check_new_request = [&](size_t task) {
    const size_t i = first_new + task;
    const Request& a = requests_.at(order[i]);
    std::vector<Verdict>& list = verdicts[task];
    // Free screens first (no shortest-path queries), collecting survivors.
    std::vector<const Request*> candidates;
    std::vector<size_t> pending_slot;  // list index awaiting its exact check
    for (size_t j = 0; j < i; ++j) {
      const Request& b = requests_.at(order[j]);
      // Temporal screen: if one ride must end before the other exists, no
      // overlapping order can be feasible.
      if (a.release_time > b.deadline || b.release_time > a.deadline) continue;
      // Per-lifetime memo: a pair already exact-checked while both requests
      // were present answers for free. Never hits on the engine's event
      // flow (a pair is presented once per lifetime by construction) —
      // it guards re-presentations, e.g. hand-driven sync sequences. An
      // empty memo (throwaway builders never record) skips the lookup.
      if (!memo_.empty()) {
        auto mt = memo_.find(MakeKey(a.id, b.id));
        if (mt != memo_.end()) {
          list.push_back({b.id, mt->second, /*from_memo=*/true});
          continue;
        }
      }
      if (options_.use_angle_pruning && AngleWide(a, b) &&
          !LowerBoundShareable(a, b)) {
        ++pruned[task];
        continue;
      }
      pending_slot.push_back(list.size());
      list.push_back({b.id, false, /*from_memo=*/false});
      candidates.push_back(&b);
    }
    // Batched warm-up: every surviving pair reaches Shareable, whose first
    // evaluated joint order starts at one rider's pickup and prices the leg
    // to the other pickup before any deadline can fail — so the
    // (a.source, b.source) cost is queried for every candidate regardless
    // of which order wins. Fetching those legs one-to-many pins a's source
    // label once; CostMany's per-target cache fill/count keeps the query
    // set — and hence sp_queries — identical to the point-to-point path.
    if (candidates.size() > 1) {
      // The leading rider must be able to make its own pickup, or every
      // joint order starting with it bails before pricing any leg; a pair
      // where neither rider can lead performs zero queries and must not be
      // warmed.
      const bool a_can_lead = a.release_time <= a.latest_pickup + 1e-7;
      std::vector<NodeId> pickups;
      pickups.reserve(candidates.size());
      for (const Request* b : candidates) {
        if (a_can_lead || b->release_time <= b->latest_pickup + 1e-7) {
          pickups.push_back(b->source);
        }
      }
      std::vector<double> warmed(pickups.size());
      engine_->CostMany(a.source, {pickups.data(), pickups.size()},
                        warmed.data());
    }
    for (size_t k = 0; k < candidates.size(); ++k) {
      list[pending_slot[k]].shareable = Shareable(a, *candidates[k]);
    }
  };
  if (pool_ != nullptr && num_new > 1) {
    pool_->ParallelFor(num_new, check_new_request);
  } else {
    for (size_t task = 0; task < num_new; ++task) check_new_request(task);
  }

  // Phase 2 — commit serially in canonical order: edge lists and the memo
  // come out in the exact sequence the serial loop would have produced.
  for (size_t task = 0; task < num_new; ++task) {
    pruned_pairs_ += pruned[task];
    const RequestId a_id = order[first_new + task];
    for (const Verdict& v : verdicts[task]) {
      if (v.from_memo) {
        ++memo_hits_;
      } else {
        ++pair_checks_;
        if (memoize_pairs_) RecordMemo(a_id, v.partner, v.shareable);
      }
      if (v.shareable) graph_.AddEdge(a_id, v.partner);
    }
  }
}

bool ShareGraphBuilder::RemoveRequest(RequestId id) {
  auto it = requests_.find(id);
  if (it == requests_.end()) return false;
  // End of lifetime: purge the pair memo through the reverse partner index,
  // both directions, so the index mirrors the memo exactly and the whole
  // structure stays proportional to the live pair set (a request that
  // outlives thousands of retired partners must not accumulate their ids).
  // O(sum of the partners' memo degrees) — degree-bounded like the graph.
  auto mp = memo_partners_.find(id);
  if (mp != memo_partners_.end()) {
    for (RequestId partner : mp->second) {
      memo_.erase(MakeKey(id, partner));
      auto pp = memo_partners_.find(partner);
      if (pp != memo_partners_.end()) {
        auto& back = pp->second;
        back.erase(std::remove(back.begin(), back.end(), id), back.end());
        if (back.empty()) memo_partners_.erase(pp);
      }
    }
    memo_partners_.erase(id);
  }
  graph_.RemoveNode(id);  // also retires the pairing-order slot
  requests_.erase(it);
  return true;
}

void ShareGraphBuilder::RemoveRequests(const std::vector<RequestId>& ids) {
  for (RequestId id : ids) RemoveRequest(id);
}

void ShareGraphBuilder::Retain(Span<const RequestId> keep) {
  // Arena internals (a sorted keep array instead of a hash set, the drop
  // list bump-allocated): a steady-state sync — everything retained,
  // nothing dropped — touches the heap not at all. Ids are unique, so the
  // sorted array answers membership exactly like the set did.
  ArenaScope scope(ScratchArena());
  RequestId* sorted = scope.AllocateArray<RequestId>(keep.size());
  std::copy(keep.begin(), keep.end(), sorted);
  std::sort(sorted, sorted + keep.size());
  const std::vector<RequestId>& nodes = graph_.Nodes();
  RequestId* drop = scope.AllocateArray<RequestId>(nodes.size());
  size_t num_drop = 0;
  for (RequestId id : nodes) {
    if (!std::binary_search(sorted, sorted + keep.size(), id)) {
      drop[num_drop++] = id;
    }
  }
  for (size_t k = 0; k < num_drop; ++k) RemoveRequest(drop[k]);
}

void ShareGraphBuilder::SyncToPending(
    const std::vector<const Request*>& pending) {
  ArenaScope scope(ScratchArena());
  RequestId* open_ids = scope.AllocateArray<RequestId>(pending.size());
  for (size_t i = 0; i < pending.size(); ++i) open_ids[i] = pending[i]->id;
  Retain({static_cast<const RequestId*>(open_ids), pending.size()});
  // The fresh slice, staged on the arena; a steady round has none and
  // AddRequests returns before allocating anything.
  Request* fresh = scope.AllocateArray<Request>(pending.size());
  size_t num_fresh = 0;
  for (const Request* r : pending) {
    if (!requests_.count(r->id)) fresh[num_fresh++] = *r;
  }
  AddRequests(Span<const Request>(fresh, num_fresh));
}

const Request& ShareGraphBuilder::request(RequestId id) const {
  auto it = requests_.find(id);
  SR_CHECK(it != requests_.end());
  return it->second;
}

size_t ShareGraphBuilder::MemoryBytes() const {
  size_t bytes = graph_.MemoryBytes();
  bytes += requests_.bucket_count() * sizeof(void*);
  bytes += requests_.size() * (sizeof(Request) + sizeof(RequestId) + 2 * sizeof(void*));
  bytes += memo_.bucket_count() * sizeof(void*);
  bytes += memo_.size() * (sizeof(PairKey) + sizeof(bool) + 2 * sizeof(void*));
  bytes += memo_partners_.bucket_count() * sizeof(void*);
  for (const auto& [id, partners] : memo_partners_) {
    (void)id;
    bytes += sizeof(RequestId) + sizeof(std::vector<RequestId>) +
             2 * sizeof(void*) + partners.capacity() * sizeof(RequestId);
  }
  return bytes;
}

}  // namespace structride
