#include "sharegraph/builder.h"

#include <algorithm>
#include <unordered_set>

#include "util/logging.h"

namespace structride {

namespace {

// The four stop orders in which the two rides overlap (sequential service is
// not "sharing" and would make the graph near-complete).
constexpr int kJointOrders[4][4] = {
    // 0=pickup a, 1=pickup b, 2=dropoff a, 3=dropoff b
    {0, 1, 2, 3},
    {0, 1, 3, 2},
    {1, 0, 2, 3},
    {1, 0, 3, 2},
};

}  // namespace

template <typename Check>
bool ShareGraphBuilder::AnyJointOrderFeasible(const Request& a,
                                              const Request& b,
                                              Check check) const {
  const Stop stops[4] = {PickupStop(a), PickupStop(b), DropoffStop(a),
                         DropoffStop(b)};
  std::vector<Stop> sequence(4);
  for (const auto& order : kJointOrders) {
    for (int k = 0; k < 4; ++k) sequence[static_cast<size_t>(k)] = stops[order[k]];
    const Request& first = order[0] == 0 ? a : b;
    RouteState state;
    state.start = first.source;
    state.start_time = first.release_time;
    // A pair needs two seats; a capacity-1 fleet shares nothing.
    state.capacity = std::min(2, options_.vehicle_capacity);
    if (check(state, sequence)) return true;
  }
  return false;
}

bool ShareGraphBuilder::Shareable(const Request& a, const Request& b) const {
  return AnyJointOrderFeasible(
      a, b, [this](const RouteState& state, const std::vector<Stop>& stops) {
        return CheckSchedule(state, stops, engine_).first;
      });
}

bool ShareGraphBuilder::LowerBoundShareable(const Request& a,
                                            const Request& b) const {
  return AnyJointOrderFeasible(
      a, b, [this](const RouteState& state, const std::vector<Stop>& stops) {
        return CheckScheduleLowerBound(state, stops, engine_).first;
      });
}

bool ShareGraphBuilder::AngleWide(const Request& a, const Request& b) const {
  const RoadNetwork& net = engine_->network();
  Point sa = net.position(a.source), ea = net.position(a.destination);
  Point sb = net.position(b.source), eb = net.position(b.destination);
  // Directions of both trips as seen from the other trip's origin.
  double theta_ab = AngleBetween(ea - sb, eb - sb);
  double theta_ba = AngleBetween(eb - sa, ea - sa);
  return theta_ab >= options_.angle_threshold ||
         theta_ba >= options_.angle_threshold;
}

void ShareGraphBuilder::AddBatch(const std::vector<Request>& batch) {
  size_t first_new = order_.size();
  for (const Request& r : batch) {
    if (requests_.count(r.id)) continue;
    requests_[r.id] = r;
    order_.push_back(r.id);
    graph_.AddNode(r.id);
  }
  for (size_t i = first_new; i < order_.size(); ++i) {
    const Request& a = requests_[order_[i]];
    for (size_t j = 0; j < i; ++j) {
      const Request& b = requests_[order_[j]];
      // Temporal screen: if one ride must end before the other exists, no
      // overlapping order can be feasible.
      if (a.release_time > b.deadline || b.release_time > a.deadline) continue;
      if (options_.use_angle_pruning && AngleWide(a, b) &&
          !LowerBoundShareable(a, b)) {
        ++pruned_pairs_;
        continue;
      }
      if (Shareable(a, b)) graph_.AddEdge(a.id, b.id);
    }
  }
}

void ShareGraphBuilder::Retain(const std::vector<RequestId>& keep) {
  std::unordered_set<RequestId> keep_set(keep.begin(), keep.end());
  std::vector<RequestId> drop;
  for (RequestId id : order_) {
    if (!keep_set.count(id)) drop.push_back(id);
  }
  for (RequestId id : drop) {
    graph_.RemoveNode(id);
    requests_.erase(id);
  }
  order_.erase(std::remove_if(order_.begin(), order_.end(),
                              [&](RequestId id) { return !keep_set.count(id); }),
               order_.end());
}

const Request& ShareGraphBuilder::request(RequestId id) const {
  auto it = requests_.find(id);
  SR_CHECK(it != requests_.end());
  return it->second;
}

size_t ShareGraphBuilder::MemoryBytes() const {
  size_t bytes = graph_.MemoryBytes();
  bytes += requests_.size() * (sizeof(Request) + sizeof(RequestId) + 2 * sizeof(void*));
  bytes += order_.size() * sizeof(RequestId);
  return bytes;
}

}  // namespace structride
