// Shareability-graph construction (Alg. 1): fold request batches into the
// graph by testing pairwise joint-service feasibility with the travel-cost
// engine. The angle pruning (Sec. III-B) screens divergent-direction pairs
// with a free Euclidean lower-bound walk before spending shortest-path
// queries; because the lower bound never overestimates, the pruned graph is
// identical to the unpruned one — only cheaper to build.

#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/schedule.h"
#include "geo/angle.h"
#include "sharegraph/share_graph.h"

namespace structride {

class ThreadPool;

struct ShareGraphBuilderOptions {
  bool use_angle_pruning = false;
  /// Seats on the (hypothetical) shared vehicle; pairs share iff
  /// min(2, vehicle_capacity) seats admit an overlapping order.
  int vehicle_capacity = 4;
  /// Pairs whose trip directions diverge by at least this angle go through
  /// the lower-bound screen first (paper default: pi/2).
  double angle_threshold = kPi / 2;
};

class ShareGraphBuilder {
 public:
  ShareGraphBuilder(TravelCostEngine* engine, ShareGraphBuilderOptions options)
      : engine_(engine), options_(options) {}

  /// Adds a batch: nodes for every request, then shareability edges among
  /// the batch and against all previously added requests. With a pool set,
  /// the pairwise feasibility checks (the dominant cost of a SARD batch)
  /// run on the workers; edges are still committed serially in the
  /// canonical (insertion-order) sequence, so the graph — and, because pair
  /// checks are mutually independent, the set of travel-cost pairs queried —
  /// is identical at any thread count. Each new request's pickup-to-pickup
  /// legs are prefetched through TravelCostEngine::CostMany (one source, all
  /// candidate partners), which pins the source's hub label once without
  /// changing the query set (DESIGN.md §5).
  void AddBatch(const std::vector<Request>& batch);

  /// Optional worker pool for AddBatch; null (the default) runs serially.
  /// Not owned; the caller keeps it alive across AddBatch calls.
  void set_pool(ThreadPool* pool) { pool_ = pool; }

  const ShareGraph& graph() const { return graph_; }
  ShareGraph* mutable_graph() { return &graph_; }

  const Request& request(RequestId id) const;
  bool has_request(RequestId id) const { return requests_.count(id) > 0; }

  /// Exact pairwise test: can one two-seat vehicle serve both requests with
  /// overlapping rides, within both deadlines? Costs shortest-path queries.
  bool Shareable(const Request& a, const Request& b) const;

  /// Drops every request not in \p keep (assigned, expired or cancelled
  /// riders leave the graph; the paper's builder only carries open
  /// requests between batches).
  void Retain(const std::vector<RequestId>& keep);

  /// Pairs short-circuited by the angle screen (no shortest-path queries).
  uint64_t pruned_pairs() const { return pruned_pairs_; }

  size_t MemoryBytes() const;

 private:
  bool AngleWide(const Request& a, const Request& b) const;
  /// False only when the pair is provably unshareable under the Euclidean
  /// lower-bound metric.
  bool LowerBoundShareable(const Request& a, const Request& b) const;

  template <typename Check>
  bool AnyJointOrderFeasible(const Request& a, const Request& b,
                             Check check) const;

  TravelCostEngine* engine_;
  ShareGraphBuilderOptions options_;
  ThreadPool* pool_ = nullptr;  ///< not owned
  ShareGraph graph_;
  std::unordered_map<RequestId, Request> requests_;
  std::vector<RequestId> order_;  ///< insertion order, for deterministic pairing
  uint64_t pruned_pairs_ = 0;
};

}  // namespace structride
