// Shareability-graph construction (Alg. 1), maintained incrementally across
// batches (DESIGN.md §7): fold request batches into the graph by testing
// pairwise joint-service feasibility with the travel-cost engine, and peel
// closed requests back out in O(degree) as assignment / cancellation /
// expiry events retire them — instead of rebuilding the graph from scratch
// over the whole pending pool every batch. The angle pruning (Sec. III-B)
// screens divergent-direction pairs with a free Euclidean lower-bound walk
// before spending shortest-path queries; because the lower bound never
// overestimates, the pruned graph is identical to the unpruned one — only
// cheaper to build.
//
// Lifetimes and the per-pair memo: a pair (a, b) is exactly-checked at most
// once per request lifetime. While both requests stay in the builder the
// structure guarantees it (AddRequests only examines new-vs-present pairs);
// on builders that outlive a batch (set_memoize_pairs) the memo records
// every exact check and answers any re-presentation of a live pair without
// touching the travel-cost engine. Removing a request
// ends its lifetime: its memo entries are purged through a reverse partner
// index, both directions of every pair (degree-bounded, like the graph),
// so a removed-and-re-added request is re-evaluated from scratch — request
// data is immutable, but the lifetime rule keeps the memo's footprint
// proportional to the live pair set.

#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/schedule.h"
#include "geo/angle.h"
#include "sharegraph/share_graph.h"
#include "util/span.h"

namespace structride {

class ThreadPool;

struct ShareGraphBuilderOptions {
  bool use_angle_pruning = false;
  /// Seats on the (hypothetical) shared vehicle; pairs share iff
  /// min(2, vehicle_capacity) seats admit an overlapping order.
  int vehicle_capacity = 4;
  /// Pairs whose trip directions diverge by at least this angle go through
  /// the lower-bound screen first (paper default: pi/2).
  double angle_threshold = kPi / 2;
};

class ShareGraphBuilder {
 public:
  ShareGraphBuilder(TravelCostEngine* engine, ShareGraphBuilderOptions options)
      : engine_(engine), options_(options) {}

  /// Adds a batch: nodes for every request, then shareability edges among
  /// the batch and against all previously added requests. With a pool set,
  /// the pairwise feasibility checks (the dominant cost of a dispatch
  /// batch) run on the workers; edges are still committed serially in the
  /// canonical (insertion-order) sequence, so the graph — and, because pair
  /// checks are mutually independent, the set of travel-cost pairs queried —
  /// is identical at any thread count. Each new request's pickup-to-pickup
  /// legs are prefetched through TravelCostEngine::CostMany (one source, all
  /// candidate partners), which pins the source's hub label once without
  /// changing the query set (DESIGN.md §5).
  void AddRequests(Span<const Request> batch);
  void AddRequests(const std::vector<Request>& batch) {
    AddRequests(Span<const Request>(batch));
  }
  /// Historical name for AddRequests; kept for the call sites that fold a
  /// whole pool in one shot.
  void AddBatch(const std::vector<Request>& batch) {
    AddRequests(Span<const Request>(batch));
  }

  /// Removes one request: its node and edges leave the graph in O(degree)
  /// via the adjacency lists, its memo entries are purged (both
  /// directions) through the reverse partner index, and its slot in the
  /// insertion order is tombstoned (compacted lazily). Unknown ids are
  /// ignored, so lifecycle events may fire for requests that never
  /// reached a dispatch round. Returns whether the request was present —
  /// under geo-sharding a lifecycle event retires a request from every
  /// shard's builder, and only the shard(s) that synced it report true.
  bool RemoveRequest(RequestId id);
  void RemoveRequests(const std::vector<RequestId>& ids);

  /// Drops every request not in \p keep (assigned, expired or cancelled
  /// riders leave the graph; the paper's builder only carries open
  /// requests between batches).
  void Retain(Span<const RequestId> keep);
  void Retain(const std::vector<RequestId>& keep) {
    Retain(Span<const RequestId>(keep));
  }

  /// One-call delta sync against a dispatch round's open set: removes every
  /// request no longer pending, then folds the unseen ones in. Under
  /// engine-driven event removals the removal half is a no-op sweep; for
  /// hand-built contexts it is what keeps the graph honest.
  void SyncToPending(const std::vector<const Request*>& pending);

  /// Optional worker pool for AddRequests; null (the default) runs
  /// serially. Not owned; the caller keeps it alive across calls.
  void set_pool(ThreadPool* pool) { pool_ = pool; }

  /// Record AddRequests' exact-check outcomes in the per-pair memo. On for
  /// builders that outlive a batch (the engine's run-scoped builder,
  /// SARD's private one); off (the default) for per-batch throwaways,
  /// where a memo can never be consulted again and would only cost
  /// hot-loop inserts and instrumented bytes. CheckedShareable memoizes
  /// regardless — that is its contract.
  void set_memoize_pairs(bool on) { memoize_pairs_ = on; }

  const ShareGraph& graph() const { return graph_; }
  ShareGraph* mutable_graph() { return &graph_; }

  const Request& request(RequestId id) const;
  bool has_request(RequestId id) const { return requests_.count(id) > 0; }
  size_t num_requests() const { return requests_.size(); }

  /// Exact pairwise test: can one two-seat vehicle serve both requests with
  /// overlapping rides, within both deadlines? Costs shortest-path queries.
  /// Bypasses the memo; prefer CheckedShareable for repeated probing.
  bool Shareable(const Request& a, const Request& b) const;

  /// Memoized exact test for requests present in the builder: the first
  /// call per pair lifetime evaluates (counted in pair_checks()), repeats
  /// answer from the memo (counted in memo_hits()) without shortest-path
  /// queries.
  bool CheckedShareable(RequestId a, RequestId b);

  /// Pairs short-circuited by the angle screen (no shortest-path queries).
  uint64_t pruned_pairs() const { return pruned_pairs_; }
  /// Exact pairwise feasibility evaluations (Shareable runs) performed —
  /// the redundancy metric the incremental-vs-rebuild bench gates on.
  uint64_t pair_checks() const { return pair_checks_; }
  /// Pairs whose exact outcome was answered from the memo.
  uint64_t memo_hits() const { return memo_hits_; }

  size_t MemoryBytes() const;

 private:
  /// Canonical (min, max) key for the pair memo.
  struct PairKey {
    RequestId lo = 0;
    RequestId hi = 0;
    bool operator==(const PairKey& o) const {
      return lo == o.lo && hi == o.hi;
    }
  };
  struct PairKeyHasher {
    size_t operator()(const PairKey& k) const;
  };
  static PairKey MakeKey(RequestId a, RequestId b);

  void RecordMemo(RequestId a, RequestId b, bool shareable);

  bool AngleWide(const Request& a, const Request& b) const;
  /// False only when the pair is provably unshareable under the Euclidean
  /// lower-bound metric.
  bool LowerBoundShareable(const Request& a, const Request& b) const;

  template <typename Check>
  bool AnyJointOrderFeasible(const Request& a, const Request& b,
                             Check check) const;

  TravelCostEngine* engine_;
  ShareGraphBuilderOptions options_;
  ThreadPool* pool_ = nullptr;  ///< not owned
  /// The graph's node sequence doubles as the deterministic pairing order:
  /// every request is added to / removed from graph_ in lockstep with
  /// requests_, so graph_.Nodes() IS the insertion order of the live set.
  ShareGraph graph_;
  std::unordered_map<RequestId, Request> requests_;
  /// Exact-check outcomes for live pairs, plus the reverse partner index
  /// that makes purging a removed request's entries O(its memo degree).
  std::unordered_map<PairKey, bool, PairKeyHasher> memo_;
  std::unordered_map<RequestId, std::vector<RequestId>> memo_partners_;
  bool memoize_pairs_ = false;
  uint64_t pruned_pairs_ = 0;
  uint64_t pair_checks_ = 0;
  uint64_t memo_hits_ = 0;
};

}  // namespace structride
