#include "sharegraph/loss.h"

#include <algorithm>
#include <unordered_set>

namespace structride {

double ShareabilityLoss(const ShareGraph& g,
                        const std::vector<RequestId>& group) {
  if (group.empty()) return 0;
  std::unordered_set<RequestId> members(group.begin(), group.end());
  std::unordered_set<RequestId> external;
  size_t common = 0;
  for (RequestId v : group) {
    for (RequestId nb : g.Neighbors(v)) {
      if (!members.count(nb)) external.insert(nb);
    }
  }
  for (RequestId nb : external) {
    bool shared_by_all = true;
    for (RequestId v : group) {
      if (!g.HasEdge(v, nb)) {
        shared_by_all = false;
        break;
      }
    }
    if (shared_by_all) ++common;
  }
  return static_cast<double>(external.size() - common);
}

}  // namespace structride
