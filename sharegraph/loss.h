// Shareability loss of collapsing a group into a supernode: how many
// external requests lose their sharing option because they neighbor some —
// but not all — group members (the supernode keeps only common neighbors).

#pragma once

#include <vector>

#include "sharegraph/share_graph.h"

namespace structride {

double ShareabilityLoss(const ShareGraph& g,
                        const std::vector<RequestId>& group);

}  // namespace structride
