#include "sharegraph/share_graph.h"

#include <algorithm>
#include <limits>

#include "util/logging.h"

namespace structride {

namespace {
const std::vector<RequestId> kEmpty;
// Slot marker for removed nodes awaiting compaction. Request ids are
// non-negative (workload ids and supernode ids alike), so the minimum
// int64 can never collide with a real node.
constexpr RequestId kTombstone = std::numeric_limits<RequestId>::min();
}  // namespace

void ShareGraph::AddNode(RequestId id) {
  SR_CHECK(id != kTombstone);
  if (adjacency_.count(id)) return;
  // Settle a removal-heavy stretch before growing again, so the order
  // vector stays within 2x of the live set even when no one reads Nodes().
  // Deterministic: the trigger depends only on the mutation sequence.
  if (tombstones_ > 0 && tombstones_ * 2 > nodes_.size()) CompactNodes();
  adjacency_[id] = {};
  pos_[id] = nodes_.size();
  nodes_.push_back(id);
}

void ShareGraph::AddEdge(RequestId a, RequestId b) {
  if (a == b) return;
  AddNode(a);
  AddNode(b);
  if (HasEdge(a, b)) return;
  adjacency_[a].push_back(b);
  adjacency_[b].push_back(a);
  ++num_edges_;
}

void ShareGraph::RemoveNode(RequestId id) {
  auto it = adjacency_.find(id);
  if (it == adjacency_.end()) return;
  for (RequestId nb : it->second) {
    auto& back = adjacency_[nb];
    back.erase(std::remove(back.begin(), back.end(), id), back.end());
    --num_edges_;
  }
  adjacency_.erase(it);
  auto pt = pos_.find(id);
  SR_CHECK(pt != pos_.end());
  nodes_[pt->second] = kTombstone;
  ++tombstones_;
  pos_.erase(pt);
}

void ShareGraph::CompactNodes() const {
  nodes_.erase(std::remove(nodes_.begin(), nodes_.end(), kTombstone),
               nodes_.end());
  for (size_t i = 0; i < nodes_.size(); ++i) pos_[nodes_[i]] = i;
  tombstones_ = 0;
}

const std::vector<RequestId>& ShareGraph::Nodes() const {
  if (tombstones_ > 0) CompactNodes();
  return nodes_;
}

bool ShareGraph::HasEdge(RequestId a, RequestId b) const {
  auto it = adjacency_.find(a);
  if (it == adjacency_.end()) return false;
  // Scan the smaller adjacency list; batch graphs have single-digit degrees.
  auto jt = adjacency_.find(b);
  if (jt == adjacency_.end()) return false;
  const auto& list = it->second.size() <= jt->second.size() ? it->second
                                                            : jt->second;
  RequestId needle = &list == &it->second ? b : a;
  return std::find(list.begin(), list.end(), needle) != list.end();
}

size_t ShareGraph::Degree(RequestId id) const {
  auto it = adjacency_.find(id);
  return it == adjacency_.end() ? 0 : it->second.size();
}

const std::vector<RequestId>& ShareGraph::Neighbors(RequestId id) const {
  auto it = adjacency_.find(id);
  return it == adjacency_.end() ? kEmpty : it->second;
}

void ShareGraph::SubstituteSupernode(const std::vector<RequestId>& group,
                                     RequestId super_id) {
  SR_CHECK(!group.empty());
  SR_CHECK(!HasNode(super_id));
  // Common external neighbors, in the first member's adjacency order.
  std::vector<RequestId> common;
  for (RequestId nb : Neighbors(group[0])) {
    if (std::find(group.begin(), group.end(), nb) != group.end()) continue;
    bool shared_by_all = true;
    for (size_t k = 1; k < group.size(); ++k) {
      if (!HasEdge(group[k], nb)) {
        shared_by_all = false;
        break;
      }
    }
    if (shared_by_all) common.push_back(nb);
  }
  for (RequestId member : group) RemoveNode(member);
  AddNode(super_id);
  for (RequestId nb : common) AddEdge(super_id, nb);
}

size_t ShareGraph::MemoryBytes() const {
  // Heap bytes actually reserved: vector capacities (not sizes, so growth
  // slack is charged) plus the hash maps' node and bucket-array overhead.
  size_t bytes = nodes_.capacity() * sizeof(RequestId);
  bytes += pos_.bucket_count() * sizeof(void*);
  bytes += pos_.size() * (sizeof(RequestId) + sizeof(size_t) + 2 * sizeof(void*));
  bytes += adjacency_.bucket_count() * sizeof(void*);
  bytes += adjacency_.size() *
           (sizeof(RequestId) + sizeof(std::vector<RequestId>) + 2 * sizeof(void*));
  for (const auto& [id, nbrs] : adjacency_) {
    (void)id;
    bytes += nbrs.capacity() * sizeof(RequestId);
  }
  return bytes;
}

}  // namespace structride
