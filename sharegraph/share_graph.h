// The shareability graph: one node per open request, one edge per pair that
// could ride together. Deterministic iteration order (insertion order) is a
// hard requirement — dispatcher results must not depend on hash-map order.

#pragma once

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "core/request.h"

namespace structride {

class ShareGraph {
 public:
  /// Adds an isolated node; ignored if already present.
  void AddNode(RequestId id);

  /// Adds an undirected edge (nodes added implicitly; self/duplicate edges
  /// ignored).
  void AddEdge(RequestId a, RequestId b);

  void RemoveNode(RequestId id);

  bool HasNode(RequestId id) const { return adjacency_.count(id) > 0; }
  bool HasEdge(RequestId a, RequestId b) const;
  size_t Degree(RequestId id) const;

  size_t NumNodes() const { return nodes_.size(); }
  size_t NumEdges() const { return num_edges_; }

  /// Nodes in insertion order.
  const std::vector<RequestId>& Nodes() const { return nodes_; }
  /// Neighbors of \p id in edge-insertion order (empty for unknown nodes).
  const std::vector<RequestId>& Neighbors(RequestId id) const;

  /// Collapses \p group into a single supernode \p super_id whose neighbors
  /// are the group's common external neighbors (the pairs every member could
  /// still share with).
  void SubstituteSupernode(const std::vector<RequestId>& group,
                           RequestId super_id);

  size_t MemoryBytes() const;

 private:
  std::vector<RequestId> nodes_;
  std::unordered_map<RequestId, std::vector<RequestId>> adjacency_;
  size_t num_edges_ = 0;
};

}  // namespace structride
