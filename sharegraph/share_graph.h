// The shareability graph: one node per open request, one edge per pair that
// could ride together. Deterministic iteration order (insertion order) is a
// hard requirement — dispatcher results must not depend on hash-map order.
//
// Removal is O(degree) (DESIGN.md §7): RemoveNode erases the node from each
// neighbor's adjacency list and tombstones its slot in the insertion-order
// vector via a position index instead of shifting the tail. Nodes() compacts
// the tombstones lazily (amortized one pass per removal burst), preserving
// insertion order exactly. Two graphs driven through the same mutation
// sequence land in identical states — bytes included — but eager-vs-lazy
// disciplines are not capacity-equivalent (a pending tombstone can push a
// reallocation an eager erase would have avoided). The lazy compaction
// mutates cached state, so concurrent reads are only safe between mutations
// (all builder/dispatcher mutation is serial; parallel phases never touch
// the graph).

#pragma once

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "core/request.h"

namespace structride {

class ShareGraph {
 public:
  /// Adds an isolated node; ignored if already present.
  void AddNode(RequestId id);

  /// Adds an undirected edge (nodes added implicitly; self/duplicate edges
  /// ignored).
  void AddEdge(RequestId a, RequestId b);

  /// O(degree + neighbor scans), not O(nodes): the position index replaces
  /// the old full scan of the insertion-order vector.
  void RemoveNode(RequestId id);

  bool HasNode(RequestId id) const { return adjacency_.count(id) > 0; }
  bool HasEdge(RequestId a, RequestId b) const;
  size_t Degree(RequestId id) const;

  size_t NumNodes() const { return adjacency_.size(); }
  size_t NumEdges() const { return num_edges_; }

  /// Nodes in insertion order. Compacts pending removal tombstones first;
  /// see the header comment for the (serial-only) mutation caveat.
  const std::vector<RequestId>& Nodes() const;
  /// Neighbors of \p id in edge-insertion order (empty for unknown nodes).
  const std::vector<RequestId>& Neighbors(RequestId id) const;

  /// Collapses \p group into a single supernode \p super_id whose neighbors
  /// are the group's common external neighbors (the pairs every member could
  /// still share with).
  void SubstituteSupernode(const std::vector<RequestId>& group,
                           RequestId super_id);

  size_t MemoryBytes() const;

 private:
  void CompactNodes() const;

  /// Insertion order with lazily compacted kTombstone slots; mutable so the
  /// const accessor can settle pending removals.
  mutable std::vector<RequestId> nodes_;
  /// id -> index into nodes_; rebuilt on compaction.
  mutable std::unordered_map<RequestId, size_t> pos_;
  mutable size_t tombstones_ = 0;
  std::unordered_map<RequestId, std::vector<RequestId>> adjacency_;
  size_t num_edges_ = 0;
};

}  // namespace structride
