#include "sim/datasets.h"

#include <cmath>
#include <cstdlib>

#include "roadnet/importer.h"
#include "util/logging.h"

namespace structride {

namespace {

DatasetSpec ChdPreset() {
  DatasetSpec spec;
  spec.name = "CHD";
  spec.city.rows = 40;
  spec.city.cols = 40;
  spec.city.seed = 101;
  spec.city.block = 5;  // mean trip ~170 cost-seconds: paper-like utilization
  spec.num_vehicles = 120;   // paper default 3K vehicles / 25
  spec.capacity = 4;
  spec.policy.gamma = 1.5;
  spec.workload.num_requests = 4000;  // paper default 100K / 25
  spec.workload.duration = 21600;
  spec.workload.seed = 1001;
  return spec;
}

DatasetSpec NycPreset() {
  DatasetSpec spec;
  spec.name = "NYC";
  spec.city.rows = 48;
  spec.city.cols = 48;
  spec.city.seed = 202;
  spec.city.block = 4;  // bigger grid, same trip-length regime as CHD
  spec.city.diagonal_prob = 0.08;  // Manhattan-ish: fewer diagonal streets
  spec.num_vehicles = 120;
  spec.capacity = 4;
  spec.policy.gamma = 1.5;
  spec.workload.num_requests = 4000;
  spec.workload.duration = 21600;
  spec.workload.seed = 2002;
  spec.workload.hotspot_fraction = 0.7;  // denser demand clusters
  return spec;
}

DatasetSpec CainiaoPreset() {
  DatasetSpec spec;
  spec.name = "Cainiao";
  spec.city.rows = 32;
  spec.city.cols = 32;
  spec.city.seed = 303;
  spec.city.block = 6;
  spec.num_vehicles = 160;  // paper default 4K couriers / 25
  spec.capacity = 4;
  spec.policy.gamma = 2.0;  // parcels tolerate longer detours (App. B)
  spec.workload.num_requests = 4000;
  spec.workload.duration = 21600;
  spec.workload.seed = 3003;
  spec.workload.hotspot_fraction = 0.8;  // depot-heavy logistics demand
  spec.workload.num_hotspots = 5;
  return spec;
}

// "file:/data/nyc.gr" -> the CHD workload shape on an imported real graph.
// The basename names the run in bench output.
DatasetSpec FilePreset(const std::string& path) {
  DatasetSpec spec = ChdPreset();
  spec.graph_file = path;
  size_t slash = path.find_last_of('/');
  spec.name = slash == std::string::npos ? path : path.substr(slash + 1);
  return spec;
}

}  // namespace

DatasetSpec DatasetByName(const std::string& name, double scale) {
  SR_CHECK(scale > 0);
  DatasetSpec spec;
  if (name == "CHD") {
    spec = ChdPreset();
  } else if (name == "NYC") {
    spec = NycPreset();
  } else if (name == "Cainiao") {
    spec = CainiaoPreset();
  } else if (name.rfind("file:", 0) == 0) {
    spec = FilePreset(name.substr(5));
  } else {
    SR_LOG("unknown dataset '%s' (want CHD, NYC, Cainiao or file:<path>)",
           name.c_str());
    SR_CHECK(false);
  }
  // The one and only place scale is applied (see header).
  spec.num_vehicles = std::max(
      1, static_cast<int>(std::lround(spec.num_vehicles * scale)));
  spec.workload.num_requests = std::max(
      1, static_cast<int>(std::lround(spec.workload.num_requests * scale)));
  spec.workload.duration *= scale;
  return spec;
}

GraphBundle BuildGraph(const DatasetSpec* spec) {
  SR_CHECK(spec != nullptr);
  std::string path = spec->graph_file;
  // The environment override wins so any preset can be pointed at a real
  // graph without changing code: STRUCTRIDE_GRAPH_FILE=/data/nyc.gr.
  if (const char* env = std::getenv("STRUCTRIDE_GRAPH_FILE")) {
    if (env[0] != '\0') path = env;
  }
  GraphBundle bundle;
  if (path.empty()) {
    bundle.network = GenerateGridCity(spec->city);
    return bundle;
  }
  std::string error;
  if (IsSnapshotFile(path)) {
    if (!LoadGraphSnapshot(path, {}, &bundle, &error)) {
      SR_LOG("cannot load snapshot %s: %s", path.c_str(), error.c_str());
      SR_CHECK(false);
    }
    return bundle;
  }
  ImportStats stats;
  if (!ImportGraphFile(path, {}, &bundle.network, &stats, &error)) {
    SR_LOG("cannot import graph %s: %s", path.c_str(), error.c_str());
    SR_CHECK(false);
  }
  SR_LOG("imported %s: %zu nodes, %zu edges (dropped %zu off-component, "
         "%zu dup arcs, scale %.3g)",
         path.c_str(), stats.kept_nodes, stats.kept_edges,
         stats.dropped_component_nodes, stats.duplicate_arcs,
         stats.position_scale);
  return bundle;
}

RoadNetwork BuildNetwork(const DatasetSpec* spec) {
  GraphBundle bundle = BuildGraph(spec);
  return std::move(bundle.network);
}

}  // namespace structride
