#include "sim/datasets.h"

#include <cmath>

#include "util/logging.h"

namespace structride {

namespace {

DatasetSpec ChdPreset() {
  DatasetSpec spec;
  spec.name = "CHD";
  spec.city.rows = 40;
  spec.city.cols = 40;
  spec.city.seed = 101;
  spec.city.block = 5;  // mean trip ~170 cost-seconds: paper-like utilization
  spec.num_vehicles = 120;   // paper default 3K vehicles / 25
  spec.capacity = 4;
  spec.policy.gamma = 1.5;
  spec.workload.num_requests = 4000;  // paper default 100K / 25
  spec.workload.duration = 21600;
  spec.workload.seed = 1001;
  return spec;
}

DatasetSpec NycPreset() {
  DatasetSpec spec;
  spec.name = "NYC";
  spec.city.rows = 48;
  spec.city.cols = 48;
  spec.city.seed = 202;
  spec.city.block = 4;  // bigger grid, same trip-length regime as CHD
  spec.city.diagonal_prob = 0.08;  // Manhattan-ish: fewer diagonal streets
  spec.num_vehicles = 120;
  spec.capacity = 4;
  spec.policy.gamma = 1.5;
  spec.workload.num_requests = 4000;
  spec.workload.duration = 21600;
  spec.workload.seed = 2002;
  spec.workload.hotspot_fraction = 0.7;  // denser demand clusters
  return spec;
}

DatasetSpec CainiaoPreset() {
  DatasetSpec spec;
  spec.name = "Cainiao";
  spec.city.rows = 32;
  spec.city.cols = 32;
  spec.city.seed = 303;
  spec.city.block = 6;
  spec.num_vehicles = 160;  // paper default 4K couriers / 25
  spec.capacity = 4;
  spec.policy.gamma = 2.0;  // parcels tolerate longer detours (App. B)
  spec.workload.num_requests = 4000;
  spec.workload.duration = 21600;
  spec.workload.seed = 3003;
  spec.workload.hotspot_fraction = 0.8;  // depot-heavy logistics demand
  spec.workload.num_hotspots = 5;
  return spec;
}

}  // namespace

DatasetSpec DatasetByName(const std::string& name, double scale) {
  SR_CHECK(scale > 0);
  DatasetSpec spec;
  if (name == "CHD") {
    spec = ChdPreset();
  } else if (name == "NYC") {
    spec = NycPreset();
  } else if (name == "Cainiao") {
    spec = CainiaoPreset();
  } else {
    SR_LOG("unknown dataset '%s' (want CHD, NYC or Cainiao)", name.c_str());
    SR_CHECK(false);
  }
  // The one and only place scale is applied (see header).
  spec.num_vehicles = std::max(
      1, static_cast<int>(std::lround(spec.num_vehicles * scale)));
  spec.workload.num_requests = std::max(
      1, static_cast<int>(std::lround(spec.workload.num_requests * scale)));
  spec.workload.duration *= scale;
  return spec;
}

RoadNetwork BuildNetwork(const DatasetSpec* spec) {
  SR_CHECK(spec != nullptr);
  return GenerateGridCity(spec->city);
}

}  // namespace structride
