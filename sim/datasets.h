// Dataset presets: the synthetic stand-ins for the paper's three cities
// (Chengdu taxis, NYC taxis, Cainiao logistics). A preset at scale 1 is the
// DESIGN.md default size, roughly 1/25 of the paper's full workload; the
// paper's Table-III defaults correspond to scale ~25.
//
// Scaling semantics (DESIGN.md §2): DatasetByName applies \p scale to the
// request count, the fleet size AND the arrival window, exactly once —
// callers must not rescale any of them again. Network size is a property of
// the city and does not scale.

#pragma once

#include <string>

#include "roadnet/generator.h"
#include "sim/workload.h"

namespace structride {

struct DatasetSpec {
  std::string name;
  CityOptions city;
  int num_vehicles = 0;
  int capacity = 0;  ///< Table-III default seat count
  DeadlinePolicy policy;
  WorkloadOptions workload;
};

/// Preset by name ("CHD", "NYC", "Cainiao"), already scaled.
/// SR_CHECK-fails on unknown names or non-positive scales.
DatasetSpec DatasetByName(const std::string& name, double scale);

/// Materializes the preset's road network.
RoadNetwork BuildNetwork(const DatasetSpec* spec);

}  // namespace structride
