// Dataset presets: the *synthetic* stand-ins for the paper's three cities
// (Chengdu taxis, NYC taxis, Cainiao logistics). "CHD"/"NYC"/"Cainiao" name
// generated grid cities whose shape parameters imitate the real networks —
// they are NOT the real datasets. To run on a real road network, use a
// "file:<path>" preset or set STRUCTRIDE_GRAPH_FILE (see BuildGraph):
// <path> is a DIMACS .gr / OSM edge-list import (roadnet/importer.h) or a
// preprocessed binary snapshot (roadnet/snapshot.h).
//
// A synthetic preset at scale 1 is the DESIGN.md default size, roughly 1/25
// of the paper's full workload; the paper's Table-III defaults correspond
// to scale ~25.
//
// Scaling semantics (DESIGN.md §2): DatasetByName applies \p scale to the
// request count, the fleet size AND the arrival window, exactly once —
// callers must not rescale any of them again. Network size is a property of
// the city (or the graph file) and does not scale.

#pragma once

#include <string>

#include "roadnet/generator.h"
#include "roadnet/snapshot.h"
#include "sim/workload.h"

namespace structride {

struct DatasetSpec {
  std::string name;
  CityOptions city;
  /// When non-empty, the road network comes from this file (import or
  /// snapshot) instead of the synthetic grid generator.
  std::string graph_file;
  int num_vehicles = 0;
  int capacity = 0;  ///< Table-III default seat count
  DeadlinePolicy policy;
  WorkloadOptions workload;
};

/// Preset by name, already scaled. "CHD", "NYC" and "Cainiao" are the
/// synthetic grid presets; "file:<path>" runs the CHD workload shape on the
/// graph imported or loaded from <path>. SR_CHECK-fails on unknown names or
/// non-positive scales.
DatasetSpec DatasetByName(const std::string& name, double scale);

/// Materializes the preset's graph: the synthetic generator, or — when
/// spec->graph_file or the STRUCTRIDE_GRAPH_FILE environment variable is
/// set (env wins) — an import/snapshot load of that file. Snapshot loads
/// carry any preprocessed indices along in the bundle; pass those to
/// TravelCostOptions::prebuilt_* to skip rebuilding. SR_CHECK-fails if the
/// file cannot be imported or loaded.
GraphBundle BuildGraph(const DatasetSpec* spec);

/// Materializes just the road network (BuildGraph minus the indices).
RoadNetwork BuildNetwork(const DatasetSpec* spec);

}  // namespace structride
