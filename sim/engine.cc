#include "sim/engine.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <limits>
#include <numeric>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "dispatch/shard.h"
#include "roadnet/travel_cost.h"
#include "sim/event_queue.h"
#include "util/alloc_gate.h"
#include "util/latency_histogram.h"
#include "util/logging.h"
#include "util/spsc_ring.h"
#include "util/thread_pool.h"

namespace structride {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Nearest-rank percentile over an ascending-sorted sample; 0 when empty.
double NearestRank(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0;
  size_t rank = static_cast<size_t>(
      std::ceil(q * static_cast<double>(sorted.size())));
  if (rank == 0) rank = 1;
  if (rank > sorted.size()) rank = sorted.size();
  return sorted[rank - 1];
}

// Service-quality stats over the served riders, shared by the event core
// and the frozen legacy loop so both emit identical numbers: pickup wait =
// pickup - release; detour ratio = in-vehicle time / direct cost.
void FinalizeServiceQuality(const std::vector<Request>& requests,
                            const std::vector<char>& served_mask,
                            const std::vector<double>& pickup_time,
                            const std::vector<double>& dropoff_time,
                            RunMetrics* m) {
  std::vector<double> waits;
  waits.reserve(static_cast<size_t>(m->served));
  double detour_sum = 0;
  size_t detour_count = 0;
  for (size_t i = 0; i < requests.size(); ++i) {
    if (!served_mask[i]) continue;
    waits.push_back(pickup_time[i] - requests[i].release_time);
    if (requests[i].direct_cost > 0) {
      detour_sum +=
          (dropoff_time[i] - pickup_time[i]) / requests[i].direct_cost;
      ++detour_count;
    }
  }
  std::sort(waits.begin(), waits.end());
  m->pickup_wait_p50 = NearestRank(waits, 0.50);
  m->pickup_wait_p99 = NearestRank(waits, 0.99);
  m->mean_detour_ratio =
      detour_count > 0 ? detour_sum / static_cast<double>(detour_count) : 0;
}

// max/mean over a non-negative sample; 0 when the sum is zero. The double
// sibling of ShardLoadMaxOverMean, for the per-shard batch-time imbalance.
double MaxOverMean(const std::vector<double>& values) {
  if (values.empty()) return 0;
  double total = 0, max_value = 0;
  for (double v : values) {
    total += v;
    max_value = std::max(max_value, v);
  }
  if (total <= 0) return 0;
  return max_value * static_cast<double>(values.size()) / total;
}

}  // namespace

RiderOutcome ClassifyRider(double now, double latest_pickup,
                           double cancel_time) {
  const bool expired = now > latest_pickup;
  const bool cancelled = cancel_time < now;
  if (!expired && !cancelled) return RiderOutcome::kOpen;
  if (expired && cancelled) {
    // Both happened within this batch period: the earlier event wins (a
    // cancellation at exactly the deadline counts as cancelled — the rider
    // left; the deadline merely also passed).
    return cancel_time <= latest_pickup ? RiderOutcome::kCancelled
                                        : RiderOutcome::kExpired;
  }
  return expired ? RiderOutcome::kExpired : RiderOutcome::kCancelled;
}

SimulationEngine::SimulationEngine(TravelCostEngine* engine,
                                   std::vector<Request> requests,
                                   SimulationOptions options)
    : engine_(engine),
      requests_(std::move(requests)),
      options_(std::move(options)),
      run_rng_(options_.seed ^ 0xfa51c0de5eedull) {
  SR_CHECK(engine_ != nullptr);
  std::stable_sort(requests_.begin(), requests_.end(),
                   [](const Request& a, const Request& b) {
                     return a.release_time < b.release_time;
                   });
}

SimulationEngine::~SimulationEngine() = default;

void SimulationEngine::SpawnFleet(int num_vehicles, int capacity) {
  SR_CHECK(num_vehicles > 0);
  SR_CHECK(capacity > 0);
  Rng rng(options_.seed);
  spawn_nodes_.clear();
  int64_t n = static_cast<int64_t>(engine_->network().num_nodes());
  for (int i = 0; i < num_vehicles; ++i) {
    spawn_nodes_.push_back(static_cast<NodeId>(rng.UniformInt(0, n - 1)));
  }
  spawn_capacity_ = capacity;
}

void SimulationEngine::AddScenario(std::unique_ptr<Scenario> scenario) {
  SR_CHECK(scenario != nullptr);
  scenarios_.push_back(std::move(scenario));
}

void SimulationEngine::ClearScenarios() { scenarios_.clear(); }

void SimulationEngine::SetRepositioningPolicy(
    std::unique_ptr<RepositioningPolicy> policy) {
  repositioning_ = std::move(policy);
}

std::vector<Vehicle> SimulationEngine::BuildFleet() {
  // Fresh fleet from the fixed spawn; per-run capacity draws under the
  // Appendix-C variance model. The draw order is shared with the legacy
  // loop, so both engines consume run_rng_ identically.
  std::vector<Vehicle> fleet;
  fleet.reserve(spawn_nodes_.size());
  for (size_t i = 0; i < spawn_nodes_.size(); ++i) {
    int capacity = spawn_capacity_;
    if (options_.capacity_sigma > 0) {
      double draw = run_rng_.Gaussian(static_cast<double>(options_.capacity_mean),
                                      options_.capacity_sigma);
      capacity = std::max(1, static_cast<int>(std::lround(draw)));
    }
    fleet.emplace_back(static_cast<int>(i), spawn_nodes_[i], capacity);
  }
  return fleet;
}

std::vector<double> SimulationEngine::DrawCancelOffsets() {
  std::vector<double> offset(requests_.size(), kInf);
  if (options_.cancellation_rate > 0) {
    for (size_t i = 0; i < offset.size(); ++i) {
      if (run_rng_.Uniform(0, 1) < options_.cancellation_rate) {
        offset[i] = run_rng_.Exponential(options_.cancellation_patience);
      }
    }
  }
  return offset;
}

// ---------------------------------------------------------------------------
// The event-driven core. One EventRun is one Run(): it owns the per-run
// state (a retimeable copy of the stream, the fleet, the event queue, the
// request-state array) and is the ScenarioHost the installed scenarios act
// through. See DESIGN.md §6 for the event taxonomy and the batch-tick
// equivalence argument.
// ---------------------------------------------------------------------------

class SimulationEngine::EventRun : public ScenarioHost {
 public:
  EventRun(SimulationEngine* owner, const std::string& algorithm,
           const DispatchConfig& config)
      : owner_(owner),
        engine_(owner->engine_),
        options_(owner->options_),
        config_(config),
        algorithm_(algorithm),
        requests_(owner->requests_) {}

  RunMetrics Execute();

  // -- ScenarioHost ---------------------------------------------------------
  double now() const override { return now_; }
  const std::vector<Vehicle>& fleet() const override { return fleet_; }

  void ScheduleAt(double when, int64_t tag) override {
    SR_CHECK(current_scenario_ >= 0);  // only from OnInstall / OnEvent
    queue_.Push({when < now_ ? now_ : when, EventType::kScenario,
                 current_scenario_, tag});
  }

  void RetimeWindow(double begin, double end, double factor) override {
    RetimeImpl(/*zone=*/-1, begin, end, factor);
  }

  void RetimeZoneWindow(int zone, double begin, double end,
                        double factor) override {
    RetimeImpl(zone, begin, end, factor);
  }

  int PullVehicles(int count) override {
    return PullImpl(/*zone=*/-1, count);
  }

  int PullVehiclesInZone(int zone, int count) override {
    return PullImpl(zone, count);
  }

  int num_zones() const override { return num_shards_; }

  int ZoneOfNode(NodeId node) const override {
    return partition_.ShardOfNode(node);
  }

  int RestoreVehicles(int count) override {
    SR_CHECK(current_scenario_ >= 0);
    // Each scenario restores only the vehicles *it* pulled (most recent
    // first) — with overlapping downtime windows, popping a shared stack
    // would hand one scenario another's off-duty fleet.
    int restored = 0;
    for (size_t k = pulled_stack_.size(); k-- > 0 && restored < count;) {
      if (pulled_stack_[k].scenario != current_scenario_) continue;
      fleet_[pulled_stack_[k].vehicle].set_in_service(true);
      pulled_stack_.erase(pulled_stack_.begin() + static_cast<long>(k));
      ++restored;
    }
    return restored;
  }

  void SetOnlineDispatch(bool on) override { online_dispatch_ = on; }

 private:
  enum class ReqState : uint8_t {
    kUnreleased,
    kOpen,
    kAssigned,
    kRejected,
    kExpired,
    kCancelled,
    kServed,
  };
  static constexpr uint64_t kNoEpoch = ~uint64_t{0};

  void OpenRequest(size_t idx);
  void HandleRelease(size_t idx);
  void HandleStopEvent(size_t vi, int64_t epoch);
  void DispatchRound(bool online);
  // Streaming service mode (DESIGN.md §13). None of this runs — and none
  // of the state below is constructed — unless options_.service_mode.
  void SetupServiceMode(const std::vector<size_t>& order);
  void ProducerLoop();
  void DrainIngest();
  /// Wall seconds since the run epoch (set just before the producer starts).
  double WallNow() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         wall_epoch_)
        .count();
  }
  void SleepUntilWall(double target) const;
  /// The travel-cost oracle a shard dispatches against: its private cache
  /// partition under geo-sharding, the root engine at 1 shard (preserving
  /// the bitwise 1-shard gate).
  TravelCostEngine* ShardEngine(ShardRuntime& sh) const {
    return sh.cache != nullptr ? sh.cache : engine_;
  }
  /// Phase A of the round protocol: build the shard's context in place and
  /// run its OnBatch. Touches only shard-local state plus read-only global
  /// planes, so shards may run this concurrently.
  void RunShardBatch(ShardRuntime& sh, bool online);
  /// Phase B: merge one shard's output buffers (assignments, rejections,
  /// repositions) into global state. Always serial, in shard-id order.
  void CommitShardOutputs(ShardRuntime& sh);
  void SweepPending();
  void CloseRequest(size_t idx, ReqState to);
  void ApplyRepositions(const std::vector<RepositionMove>& moves);
  void SyncVehicle(size_t vi);
  void RecordStop(const Stop& stop, double when);
  bool AllVehiclesIdle() const;
  RunMetrics Finalize();
  void RetimeImpl(int zone, double begin, double end, double factor);
  int PullImpl(int zone, int count);
  // Geo-sharding (DESIGN.md §12); every one of these is a no-op or
  // unreachable when num_shards_ == 1.
  void MigrateVehicle(size_t vi);
  void DrainEscrow();
  void ScheduleEscrow();
  void CheckConservation() const;

  SimulationEngine* owner_;
  TravelCostEngine* engine_;
  const SimulationOptions& options_;
  const DispatchConfig& config_;
  std::string algorithm_;

  std::vector<Request> requests_;  ///< per-run copy; scenarios may retime it
  std::vector<double> cancel_offset_;
  std::unordered_map<RequestId, size_t> id2idx_;
  std::vector<ReqState> state_;
  std::vector<char> served_mask_;
  std::vector<double> pickup_time_;
  std::vector<double> dropoff_time_;
  std::vector<size_t> pending_;  ///< request indices, release order
  std::vector<char> dispatched_;  ///< request was in some earlier round

  std::vector<Vehicle> fleet_;
  std::vector<uint64_t> scheduled_epoch_;  ///< per vehicle: epoch with a
                                           ///< live queued stop event
  struct PulledVehicle {
    size_t vehicle = 0;
    int64_t scenario = -1;  ///< which scenario pulled it
  };
  std::vector<PulledVehicle> pulled_stack_;

  EventQueue queue_;
  std::unique_ptr<ThreadPool> pool_;
  /// The zone partition and one runtime per zone (DESIGN.md §12). Each
  /// ShardRuntime owns its dispatcher instance, its incrementally
  /// maintained share graph (null when DispatchConfig::incremental_sharegraph
  /// is off), its persistent DispatchContext (outputs keep their capacity
  /// across rounds), and its round-scoped arena/SoA pools (DESIGN.md §8).
  /// With num_shards_ == 1 the single runtime sees the unrestricted fleet
  /// and the whole pending pool — the exact pre-sharding round, bitwise.
  ShardPartition partition_;
  std::vector<std::unique_ptr<ShardRuntime>> shards_;
  std::vector<int> vehicle_shard_;  ///< resident shard per fleet index
  std::vector<int> request_shard_;  ///< owning shard per request index
  /// Boundary escrow: requests whose best candidate vehicle sat across a
  /// zone edge at the end of a round; drained (state-rechecked) at the
  /// start of the next round, re-homing the request to that shard.
  struct EscrowEntry {
    size_t request = 0;
    int to_shard = 0;
  };
  std::vector<EscrowEntry> escrow_;
  /// Heap allocations inside OnBatch, one sample per steady-state round
  /// (see RunMetrics); all-zero unless the counting allocator is linked.
  std::vector<uint64_t> steady_alloc_samples_;
  /// Reposition moves arrive view-local from each shard's context; this
  /// persistent scratch holds the storage-index translation per round.
  std::vector<RepositionMove> round_moves_;
  /// The concurrent batch phase's pool task, built once per run (capturing
  /// only `this`, so the std::function stays within its small-buffer
  /// storage — no per-round allocation).
  std::function<void(size_t)> shard_task_;
  bool round_online_ = false;
  /// Member-plane fingerprints snapshotted before the batch phase and
  /// SR_CHECKed unchanged after it (see MemberPlaneFingerprint).
  std::vector<uint64_t> member_fingerprints_;

  // -- Streaming service mode (DESIGN.md §13) -------------------------------
  /// One ring slot: the request index the producer admitted plus the wall
  /// stamp taken at the push — the start of the ingest→decision latency.
  struct IngestRecord {
    uint32_t idx = 0;
    double wall = 0;
  };
  bool service_ = false;
  /// The virtual-time pacer: virtual seconds per wall second while arrivals
  /// are live. Batch ticks (and every other event) wait for wall time
  /// event.time / time_scale_; once the stream is exhausted and drained the
  /// run free-runs to termination.
  double time_scale_ = 1;
  bool free_running_ = false;
  std::chrono::steady_clock::time_point wall_epoch_;
  std::unique_ptr<SpscRing<IngestRecord>> ring_;
  std::thread producer_;
  std::atomic<bool> producer_done_{false};
  /// The producer's precomputed open-loop schedule: arrival k pushes
  /// request index arrival_idx_[k] at wall second arrival_wall_[k]. Frozen
  /// before the thread starts; the producer reads nothing else of the run.
  std::vector<double> arrival_wall_;
  std::vector<uint32_t> arrival_idx_;
  /// Producer-owned overflow log (read by the consumer only after join).
  std::vector<uint32_t> shed_;
  std::atomic<uint64_t> producer_depth_max_{0};
  uint64_t consumer_depth_max_ = 0;
  /// Wall stamp each drained request carried through the ring.
  std::vector<double> ingest_wall_;
  /// Requests first presented to a dispatcher this round; their
  /// ingest→decision latency is recorded when the round's commit finishes.
  std::vector<size_t> round_new_;
  LatencyHistogram latency_hist_;

  double now_ = 0;
  double tick_time_ = 0;
  bool done_ = false;
  bool installing_ = false;
  bool online_dispatch_ = false;
  int64_t current_scenario_ = -1;
  size_t released_ = 0;
  size_t open_count_ = 0;
  int served_ = 0;
  int cancelled_ = 0;
  int expired_ = 0;
  int rejected_ = 0;
  int late_dropoffs_ = 0;
  int num_shards_ = 1;
  int cross_shard_trips_ = 0;
  double dispatch_seconds_ = 0;
  uint64_t queries_before_ = 0;
  uint64_t lookups_before_ = 0;
};

RunMetrics SimulationEngine::EventRun::Execute() {
  const size_t n = requests_.size();
  fleet_ = owner_->BuildFleet();
  cancel_offset_ = owner_->DrawCancelOffsets();
  id2idx_.reserve(n);
  for (size_t i = 0; i < n; ++i) id2idx_[requests_[i].id] = i;
  state_.assign(n, ReqState::kUnreleased);
  dispatched_.assign(n, 0);
  served_mask_.assign(n, 0);
  pickup_time_.assign(n, 0);
  dropoff_time_.assign(n, 0);
  scheduled_epoch_.assign(fleet_.size(), kNoEpoch);

  // One worker pool per run, shared by every shard's rounds — thread
  // startup never recurs per batch. Built when some dispatcher stage
  // consumes it (SARD's parallel acceptance) or the multi-shard round can
  // run its batch phase concurrently. The pool's presence never changes
  // outcomes (disjoint index-addressed writes + serial merges), so serial
  // and concurrent shard modes see identical inputs either way.
  num_shards_ = std::max(1, config_.num_shards);
  if (config_.num_threads > 1 &&
      (config_.sard_parallel_acceptance || num_shards_ > 1)) {
    pool_ = std::make_unique<ThreadPool>(config_.num_threads);
  }
  // The zone partition and one runtime per zone. Each shard gets its own
  // dispatcher instance, its own travel-cost cache partition (so concurrent
  // shards never contend on a cache lock), and (when incremental
  // maintenance is on) its own share graph: free (empty containers) for
  // dispatchers that never sync into it, incremental for those that do,
  // outliving every batch.
  partition_.Build(engine_->network(), num_shards_, config_.shard_grid_cols);
  if (num_shards_ > 1) {
    owner_->EnsureCachePartitions(num_shards_, config_);
  }
  shards_.clear();
  shards_.reserve(static_cast<size_t>(num_shards_));
  for (int s = 0; s < num_shards_; ++s) {
    auto sh = std::make_unique<ShardRuntime>();
    sh->id = s;
    if (num_shards_ > 1) {
      sh->cache = owner_->cache_partitions_[static_cast<size_t>(s)].get();
      sh->queries_at_run_start = sh->cache->num_queries();
      sh->lookups_at_run_start = sh->cache->num_lookups();
    }
    sh->dispatcher = MakeDispatcher(algorithm_, config_);
    if (config_.incremental_sharegraph) {
      sh->sharegraph = std::make_unique<ShareGraphBuilder>(
          ShardEngine(*sh), config_.sharegraph);
      sh->sharegraph->set_memoize_pairs(true);
    }
    shards_.push_back(std::move(sh));
  }
  shard_task_ = [this](size_t s) { RunShardBatch(*shards_[s], round_online_); };
  // Vehicles home to the zone of their spawn node; filling in fleet order
  // keeps every member list ascending (the FleetView contract).
  vehicle_shard_.resize(fleet_.size());
  for (size_t vi = 0; vi < fleet_.size(); ++vi) {
    vehicle_shard_[vi] = partition_.ShardOfNode(fleet_[vi].node());
    shards_[static_cast<size_t>(vehicle_shard_[vi])]->members.push_back(vi);
  }
  request_shard_.assign(n, 0);
  // After EnsureCachePartitions: the root's counters aggregate over its
  // partitions (live or retired), so these baselines make the run's deltas
  // partition-lifetime-proof.
  queries_before_ = engine_->num_queries();
  lookups_before_ = engine_->num_lookups();

  // Install phase: scenarios reshape the per-run stream and schedule their
  // events before anything fires.
  installing_ = true;
  for (size_t si = 0; si < owner_->scenarios_.size(); ++si) {
    current_scenario_ = static_cast<int64_t>(si);
    owner_->scenarios_[si]->OnInstall(this);
  }
  current_scenario_ = -1;
  installing_ = false;

  // Schedule every release. Stable sort on (possibly retimed) release times
  // keeps equal-time requests in stored order, and the queue's FIFO tie
  // break preserves it — exactly the legacy pending order.
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return requests_[a].release_time < requests_[b].release_time;
  });
  service_ = options_.service_mode;
  if (service_) {
    // Service mode: releases arrive through the ingestion ring instead of
    // the pre-scheduled queue — the stream leaves the EventQueue entirely.
    SetupServiceMode(order);
  } else {
    for (size_t idx : order) {
      queue_.Push({requests_[idx].release_time, EventType::kRequestRelease,
                   static_cast<int64_t>(idx), 0});
    }
  }

  // Batch ticks accumulate exactly like the legacy `now += period` loop so
  // the tick timestamps are the same doubles.
  const double period = options_.batch_period > 0 ? options_.batch_period : 1;
  tick_time_ = period;
  queue_.Push({tick_time_, EventType::kBatchTick, 0, 0});

  while (!done_ && !queue_.empty()) {
    Event e = queue_.Pop();
    if (service_ && !free_running_) {
      // The virtual-time pacer: no event fires before its wall deadline
      // while arrivals are still live. Once the producer is done, the ring
      // drained and nothing is open, the tail (in-flight trips completing)
      // free-runs — there is no arrival left for it to race.
      if (producer_done_.load(std::memory_order_acquire) &&
          ring_->SizeApprox() == 0 && open_count_ == 0) {
        free_running_ = true;
      } else {
        SleepUntilWall(e.time / time_scale_);
      }
    }
    now_ = e.time;
    switch (e.type) {
      case EventType::kRequestRelease:
        HandleRelease(static_cast<size_t>(e.a));
        break;
      case EventType::kStopCompletion:
        HandleStopEvent(static_cast<size_t>(e.a), e.b);
        break;
      case EventType::kVehicleMigration:
        MigrateVehicle(static_cast<size_t>(e.a));
        break;
      case EventType::kScenario:
        current_scenario_ = e.a;
        owner_->scenarios_[static_cast<size_t>(e.a)]->OnEvent(this, e.b);
        current_scenario_ = -1;
        break;
      case EventType::kBatchTick:
        // Service mode drains the ring right at the batch boundary: every
        // arrival admitted by now joins this round's pending pool.
        if (service_) DrainIngest();
        DispatchRound(/*online=*/false);
        // The legacy termination condition, evaluated after the round:
        // stream exhausted, nothing open, fleet idle. In service mode the
        // stream is exhausted when the producer finished and the ring is
        // empty — shed arrivals never release, so released_ can't reach n.
        if ((service_ ? (producer_done_.load(std::memory_order_acquire) &&
                         ring_->SizeApprox() == 0)
                      : released_ >= n) &&
            open_count_ == 0 && AllVehiclesIdle()) {
          done_ = true;
        } else {
          tick_time_ += period;
          queue_.Push({tick_time_, EventType::kBatchTick, 0, 0});
        }
        break;
      case EventType::kRiderCancellation:
        if (state_[static_cast<size_t>(e.a)] == ReqState::kOpen) {
          CloseRequest(static_cast<size_t>(e.a), ReqState::kCancelled);
          ++cancelled_;
        }
        break;
      case EventType::kRiderExpiry:
        if (state_[static_cast<size_t>(e.a)] == ReqState::kOpen) {
          CloseRequest(static_cast<size_t>(e.a), ReqState::kExpired);
          ++expired_;
        }
        break;
    }
  }
  if (producer_.joinable()) producer_.join();
  // Finish any in-flight reposition legs: the policy committed to the move,
  // so its deadhead cost is charged even though the run is over. Committed
  // stops cannot remain here (termination requires an idle fleet).
  for (Vehicle& v : fleet_) {
    v.AdvanceTo(kInf, [this](const Stop& stop, double when) {
      RecordStop(stop, when);
    });
  }
  return Finalize();
}

void SimulationEngine::EventRun::SetupServiceMode(
    const std::vector<size_t>& order) {
  SR_CHECK(options_.service_qps > 0);
  const size_t n = order.size();
  ring_ = std::make_unique<SpscRing<IngestRecord>>(
      std::max<size_t>(1, options_.service_queue_capacity));
  ingest_wall_.assign(requests_.size(), 0);

  // The virtual-time scale. By default it maps the stream's virtual span
  // onto the wall time the target rate needs for n arrivals, so the demand
  // density per batch is qps-invariant and only the wall budget per round
  // shrinks as qps grows — which is what makes "sustainable" monotone in
  // qps and the bench's binary search valid.
  double span_v = options_.batch_period > 0 ? options_.batch_period : 1;
  if (n > 1) {
    span_v = std::max(span_v, requests_[order.back()].release_time -
                                  requests_[order.front()].release_time);
  }
  time_scale_ = options_.service_time_scale > 0
                    ? options_.service_time_scale
                    : options_.service_qps * span_v / std::max<size_t>(1, n);
  SR_CHECK(time_scale_ > 0);

  // Freeze the producer's open-loop schedule before the thread exists:
  // generator-driven is uniform 1/qps spacing; trace-driven rescales the
  // stream's own inter-arrival gaps through the virtual clock. Either way
  // the arrival *order* is the stream order, so drained releases reproduce
  // the replay engine's pending order round by round.
  arrival_wall_.resize(n);
  arrival_idx_.resize(n);
  const double first_v = n > 0 ? requests_[order.front()].release_time : 0;
  for (size_t k = 0; k < n; ++k) {
    arrival_idx_[k] = static_cast<uint32_t>(order[k]);
    arrival_wall_[k] =
        options_.service_trace_arrivals
            ? (requests_[order[k]].release_time - first_v) / time_scale_
            : static_cast<double>(k) / options_.service_qps;
  }
  shed_.clear();
  latency_hist_.Reset();
  wall_epoch_ = std::chrono::steady_clock::now();
  producer_ = std::thread([this] { ProducerLoop(); });
}

void SimulationEngine::EventRun::ProducerLoop() {
  // Open loop: each arrival fires at its precomputed wall time no matter
  // what the dispatcher is doing; a full ring rejects it (shed), it never
  // waits. The thread reads only its frozen schedule, the ring, and the
  // wall clock — nothing the consumer mutates.
  uint64_t depth_max = 0;
  for (size_t k = 0; k < arrival_wall_.size(); ++k) {
    SleepUntilWall(arrival_wall_[k]);
    if (ring_->TryPush({arrival_idx_[k], WallNow()})) {
      depth_max = std::max<uint64_t>(depth_max, ring_->SizeApprox());
    } else {
      shed_.push_back(arrival_idx_[k]);
    }
  }
  producer_depth_max_.store(depth_max, std::memory_order_relaxed);
  producer_done_.store(true, std::memory_order_release);
}

void SimulationEngine::EventRun::DrainIngest() {
  consumer_depth_max_ =
      std::max<uint64_t>(consumer_depth_max_, ring_->SizeApprox());
  IngestRecord rec;
  while (ring_->TryPop(&rec)) {
    const size_t idx = rec.idx;
    // The arrival lands *now* in virtual time: shift the request's window
    // slack-preservingly onto its actual release, exactly like scenario
    // retiming, so deadlines mean the same thing at any qps.
    Request& r = requests_[idx];
    const double delta = now_ - r.release_time;
    r.release_time = now_;
    r.deadline += delta;
    r.latest_pickup += delta;
    ingest_wall_[idx] = rec.wall;
    OpenRequest(idx);
  }
}

void SimulationEngine::EventRun::SleepUntilWall(double target) const {
  for (;;) {
    const double remain = target - WallNow();
    if (remain <= 0) return;
    if (remain > 2e-4) {
      std::this_thread::sleep_for(std::chrono::duration<double>(remain - 1e-4));
    } else {
      std::this_thread::yield();
    }
  }
}

void SimulationEngine::EventRun::OpenRequest(size_t idx) {
  SR_CHECK(state_[idx] == ReqState::kUnreleased);
  state_[idx] = ReqState::kOpen;
  ++open_count_;
  ++released_;
  pending_.push_back(idx);
  request_shard_[idx] = partition_.ShardOfNode(requests_[idx].source);
  const Request& r = requests_[idx];
  // Lifecycle events are scheduled lazily at release so retimed requests
  // carry their shifted deadlines and cancellation countdowns naturally.
  queue_.Push({r.latest_pickup, EventType::kRiderExpiry,
               static_cast<int64_t>(idx), 0});
  if (cancel_offset_[idx] < kInf) {
    queue_.Push({r.release_time + cancel_offset_[idx],
                 EventType::kRiderCancellation, static_cast<int64_t>(idx), 0});
  }
}

void SimulationEngine::EventRun::HandleRelease(size_t idx) {
  OpenRequest(idx);
  if (!online_dispatch_) return;
  // Per-request online mode: dispatch right at release, coalescing
  // same-timestamp releases into one round.
  while (!queue_.empty() && queue_.Top().type == EventType::kRequestRelease &&
         queue_.Top().time == now_) {
    OpenRequest(static_cast<size_t>(queue_.Pop().a));
  }
  DispatchRound(/*online=*/true);
}

void SimulationEngine::EventRun::HandleStopEvent(size_t vi, int64_t epoch) {
  Vehicle& v = fleet_[vi];
  if (static_cast<uint64_t>(epoch) != v.epoch()) return;  // stale: the
  // committed timeline changed after this event was queued.
  v.AdvanceTo(now_, [this](const Stop& stop, double when) {
    RecordStop(stop, when);
  });
  SyncVehicle(vi);
  // Vehicle migration is a first-class event: crossing a zone edge at a
  // stop queues a re-home at the same timestamp. The event slot orders
  // after every same-time stop completion and before the same-time batch
  // tick (sim/event_queue.h), so a round always sees settled residency.
  if (num_shards_ > 1 &&
      partition_.ShardOfNode(v.node()) != vehicle_shard_[vi]) {
    queue_.Push({now_, EventType::kVehicleMigration,
                 static_cast<int64_t>(vi), 0});
  }
}

void SimulationEngine::EventRun::MigrateVehicle(size_t vi) {
  if (num_shards_ <= 1) return;
  // Re-check against fresh state: a vehicle can cross several edges (or
  // bounce back) between the queued event and now; the handler is
  // idempotent and later duplicates self-drop here.
  const int zone = partition_.ShardOfNode(fleet_[vi].node());
  const int cur = vehicle_shard_[vi];
  if (zone == cur) return;
  std::vector<size_t>& from = shards_[static_cast<size_t>(cur)]->members;
  auto it = std::lower_bound(from.begin(), from.end(), vi);
  SR_CHECK(it != from.end() && *it == vi);
  from.erase(it);
  std::vector<size_t>& to = shards_[static_cast<size_t>(zone)]->members;
  to.insert(std::lower_bound(to.begin(), to.end(), vi), vi);
  vehicle_shard_[vi] = zone;
}

void SimulationEngine::EventRun::DispatchRound(bool online) {
  // Boundary escrow drains first: a request whose best candidate sat
  // across a zone edge at the end of the previous round re-homes to that
  // shard before anyone dispatches this round.
  if (num_shards_ > 1) DrainEscrow();

  // The one mark-and-sweep over request state: lifecycle events and the
  // previous round's assignments only *marked* states; this compaction
  // replaces both of the legacy loop's pending-filter passes.
  SweepPending();

  // Steady-state classification (RunMetrics doc): the round counts when
  // every pending request has already been through a dispatch round — the
  // pools-are-warm regime the zero-allocation guarantee covers. The
  // classification stays global: the guarantee covers the whole round
  // across every shard, so the sample below sums the per-shard deltas.
  bool steady = !pending_.empty();
  round_new_.clear();
  for (size_t idx : pending_) {
    if (!dispatched_[idx]) {
      steady = false;
      if (service_) round_new_.push_back(idx);
    }
    dispatched_[idx] = 1;
  }

  round_moves_.clear();

  // Phase A — batch. Every shard builds its context and runs OnBatch,
  // touching only shard-local state (its dispatcher, share graph, arena,
  // SoA planes, cache partition, output buffers) plus read-only global
  // planes (requests_, pending_, state_, request_shard_, member vehicles).
  // That isolation is what makes the concurrent path legal; the member-
  // plane fingerprints assert a slice of it every round. Either way the
  // per-shard work is identical, so the commit phase below observes the
  // same buffers and the two modes are bitwise interchangeable.
  if (num_shards_ > 1) {
    member_fingerprints_.clear();
    for (const std::unique_ptr<ShardRuntime>& sh : shards_) {
      member_fingerprints_.push_back(MemberPlaneFingerprint(sh->members));
    }
  }
  const bool concurrent = num_shards_ > 1 && config_.concurrent_shards &&
                          pool_ != nullptr && pool_->size() > 1;
  uint64_t round_allocs = 0;
  if (concurrent) {
    // Section-level sampling: once shards share the wall clock and the
    // process-wide heap counter, per-shard deltas cross-pollute, so the
    // concurrent mode times the whole parallel section and samples
    // allocations around it. Both are excluded from the bitwise parity
    // contract (like running_time); steady-round allocations stay 0 either
    // way once the pools are warm.
    const uint64_t allocs_before = CurrentHeapAllocCount();
    round_online_ = online;
    const auto t0 = std::chrono::steady_clock::now();
    pool_->ParallelFor(shards_.size(), shard_task_);
    dispatch_seconds_ +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    round_allocs = CurrentHeapAllocCount() - allocs_before;
  } else {
    for (std::unique_ptr<ShardRuntime>& shp : shards_) {
      RunShardBatch(*shp, online);
      dispatch_seconds_ += shp->last_batch_seconds;
      round_allocs += shp->last_batch_allocs;
    }
  }
  if (num_shards_ > 1) {
    for (size_t s = 0; s < shards_.size(); ++s) {
      // No shard may have touched any member plane (its own included)
      // during the batch phase; residency only moves via migration events
      // and the escrow drain, never mid-round.
      SR_CHECK(MemberPlaneFingerprint(shards_[s]->members) ==
               member_fingerprints_[s]);
    }
  }

  // Phase B — commit: merge the output buffers serially in shard-id order,
  // so request closures, cross-shard accounting and share-graph retirement
  // observe exactly the serial shard loop's sequence.
  for (std::unique_ptr<ShardRuntime>& shp : shards_) CommitShardOutputs(*shp);
  if (steady) steady_alloc_samples_.push_back(round_allocs);

  // Ingest→decision latency: from the producer's push stamp to the end of
  // the first dispatch round that presented the request — the rider-visible
  // "how long until the platform decided about me" figure, recorded once
  // per request at its first round regardless of the decision.
  if (service_ && !round_new_.empty()) {
    const double wall = WallNow();
    for (size_t idx : round_new_) {
      latency_hist_.Record((wall - ingest_wall_[idx]) * 1e3);
    }
  }

  if (!round_moves_.empty()) ApplyRepositions(round_moves_);
  if (owner_->repositioning_ != nullptr) {
    std::vector<const Request*> open;
    open.reserve(pending_.size());
    for (size_t idx : pending_) {
      if (state_[idx] == ReqState::kOpen) open.push_back(&requests_[idx]);
    }
    RepositioningContext rc;
    rc.now = now_;
    rc.net = &engine_->network();
    rc.fleet = &fleet_;
    rc.open = &open;
    std::vector<RepositionMove> moves;
    owner_->repositioning_->Propose(rc, &moves);
    ApplyRepositions(moves);
  }

  if (num_shards_ > 1) {
    ScheduleEscrow();
    CheckConservation();
  }

  // Commits and repositions changed committed timelines; (re)queue one stop
  // event per vehicle with work in flight.
  for (size_t vi = 0; vi < fleet_.size(); ++vi) SyncVehicle(vi);
}

void SimulationEngine::EventRun::RunShardBatch(ShardRuntime& sh, bool online) {
  // Each shard's context persists across rounds: outputs keep their
  // capacity, the pending view is rebuilt in place, the arena rewinds
  // over warm chunks. A single shard sees the unrestricted fleet and the
  // root travel-cost engine — the pre-sharding context, bitwise.
  DispatchContext& ctx = sh.ctx;
  ctx.now = now_;
  ctx.engine = ShardEngine(sh);
  ctx.fleet = num_shards_ == 1 ? FleetView(&fleet_)
                               : FleetView(&fleet_, &sh.members);
  ctx.pool = pool_.get();
  ctx.online_event = online;
  ctx.sharegraph = sh.sharegraph.get();
  ctx.assigned.clear();
  ctx.rejected.clear();
  ctx.repositions.clear();
  ctx.pending.clear();
  ctx.pending.reserve(pending_.size());
  ctx.pending_ingest_wall.clear();
  for (size_t idx : pending_) {
    if (num_shards_ > 1 && request_shard_[idx] != sh.id) continue;
    ctx.pending.push_back(&requests_[idx]);
    if (service_) ctx.pending_ingest_wall.push_back(ingest_wall_[idx]);
  }
  if (config_.soa_pools) {
    sh.arena.Reset();
    sh.fleet_soa.Refresh(ctx.fleet);
    sh.pending_soa.Refresh(
        Span<const Request* const>(ctx.pending.data(), ctx.pending.size()));
    ctx.arena = &sh.arena;
    ctx.fleet_soa = &sh.fleet_soa;
    ctx.pending_soa = &sh.pending_soa;
  } else {
    ctx.arena = nullptr;
    ctx.fleet_soa = nullptr;
    ctx.pending_soa = nullptr;
  }

  const uint64_t allocs_before = CurrentHeapAllocCount();
  auto t0 = std::chrono::steady_clock::now();
  sh.dispatcher->OnBatch(&ctx);
  sh.last_batch_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  sh.batch_seconds_total += sh.last_batch_seconds;
  sh.last_batch_allocs = CurrentHeapAllocCount() - allocs_before;
}

void SimulationEngine::EventRun::CommitShardOutputs(ShardRuntime& sh) {
  DispatchContext& ctx = sh.ctx;
  for (RequestId id : ctx.assigned) {
    auto it = id2idx_.find(id);
    SR_CHECK(it != id2idx_.end());
    const size_t idx = it->second;
    if (num_shards_ > 1) {
      // Conservation gates: no other shard may have closed it this round,
      // and a shard may only ever assign requests homed to it (its pending
      // view was filtered on exactly that).
      SR_CHECK(state_[idx] == ReqState::kOpen);
      SR_CHECK(request_shard_[idx] == sh.id);
      if (partition_.ShardOfNode(requests_[idx].source) != sh.id) {
        ++cross_shard_trips_;  // the trip went through the escrow handoff
      }
    }
    CloseRequest(idx, ReqState::kAssigned);
    ++sh.assigned_total;
  }
  for (RequestId id : ctx.rejected) {
    auto it = id2idx_.find(id);
    SR_CHECK(it != id2idx_.end());
    if (num_shards_ > 1) {
      SR_CHECK(state_[it->second] == ReqState::kOpen);
      SR_CHECK(request_shard_[it->second] == sh.id);
    }
    CloseRequest(it->second, ReqState::kRejected);
    ++rejected_;
  }
  // Dispatcher-proposed relocations arrive view-local; translate to
  // fleet-storage indices, applied once after every shard committed.
  for (const RepositionMove& mv : ctx.repositions) {
    if (mv.vehicle >= ctx.fleet.size()) continue;
    round_moves_.push_back({ctx.fleet.global_index(mv.vehicle), mv.target});
  }
}

void SimulationEngine::EventRun::DrainEscrow() {
  for (const EscrowEntry& e : escrow_) {
    // Re-check against fresh state: the request may have been assigned,
    // cancelled or expired since the entry was queued, or already re-homed
    // by an earlier entry.
    if (state_[e.request] != ReqState::kOpen) continue;
    if (request_shard_[e.request] == e.to_shard) continue;
    request_shard_[e.request] = e.to_shard;
  }
  escrow_.clear();
}

void SimulationEngine::EventRun::ScheduleEscrow() {
  // End of round: every still-open request looks across the whole metro for
  // its nearest in-service vehicle (straight-line lower bound — a routing
  // probe here would distort sp_queries). If that candidate resides in a
  // foreign shard, the request enters escrow toward it; the handoff lands
  // at the start of the next round.
  for (size_t idx : pending_) {
    if (state_[idx] != ReqState::kOpen) continue;
    const size_t vi = NearestInServiceVehicle(fleet_, engine_->network(),
                                              requests_[idx].source);
    if (vi == SIZE_MAX) continue;
    const int target = vehicle_shard_[vi];
    if (target != request_shard_[idx]) escrow_.push_back({idx, target});
  }
}

void SimulationEngine::EventRun::CheckConservation() const {
  // Vehicle conservation: the member lists are ascending, disjoint, and
  // partition [0, fleet) exactly — no vehicle lost or duplicated by
  // migration.
  std::vector<char> seen(fleet_.size(), 0);
  size_t total = 0;
  for (const std::unique_ptr<ShardRuntime>& sh : shards_) {
    for (size_t k = 0; k < sh->members.size(); ++k) {
      const size_t vi = sh->members[k];
      SR_CHECK(vi < fleet_.size());
      SR_CHECK(!seen[vi]);
      seen[vi] = 1;
      SR_CHECK(vehicle_shard_[vi] == sh->id);
      if (k > 0) SR_CHECK(sh->members[k - 1] < vi);
      ++total;
    }
  }
  SR_CHECK(total == fleet_.size());
  // Request conservation: the per-outcome counters (incremented exactly
  // once at each closure site) agree with the state array, so no request
  // was double-closed or dropped.
  size_t open = 0, cancelled = 0, expired = 0, rejected = 0, unreleased = 0;
  for (ReqState s : state_) {
    switch (s) {
      case ReqState::kUnreleased: ++unreleased; break;
      case ReqState::kOpen: ++open; break;
      case ReqState::kCancelled: ++cancelled; break;
      case ReqState::kExpired: ++expired; break;
      case ReqState::kRejected: ++rejected; break;
      case ReqState::kAssigned:
      case ReqState::kServed: break;
    }
  }
  SR_CHECK(open == open_count_);
  SR_CHECK(unreleased == state_.size() - released_);
  SR_CHECK(cancelled == static_cast<size_t>(cancelled_));
  SR_CHECK(expired == static_cast<size_t>(expired_));
  SR_CHECK(rejected == static_cast<size_t>(rejected_));
}

void SimulationEngine::EventRun::SweepPending() {
  size_t out = 0;
  for (size_t k = 0; k < pending_.size(); ++k) {
    if (state_[pending_[k]] == ReqState::kOpen) pending_[out++] = pending_[k];
  }
  pending_.resize(out);
}

void SimulationEngine::EventRun::CloseRequest(size_t idx, ReqState to) {
  if (state_[idx] == ReqState::kOpen) --open_count_;
  state_[idx] = to;
  // End of lifetime for the maintained share graphs: assignment, rejection,
  // cancellation and expiry retire the request from *every* shard's builder
  // in O(degree) — a request escrowed between rounds can transiently live
  // in two builders until the old shard's next sync, so no single owner can
  // be assumed. A no-op for requests that never reached a dispatch round
  // (or on the second close of an assigned rider when the dropoff
  // completes).
  for (const std::unique_ptr<ShardRuntime>& sh : shards_) {
    if (sh->sharegraph != nullptr) {
      sh->sharegraph->RemoveRequest(requests_[idx].id);
    }
  }
}

void SimulationEngine::EventRun::RetimeImpl(int zone, double begin,
                                            double end, double factor) {
  SR_CHECK(installing_);  // the stream is scheduled right after install
  SR_CHECK(end > begin);
  SR_CHECK(factor > 0);
  for (Request& r : requests_) {
    if (r.release_time < begin || r.release_time >= end) continue;
    if (zone >= 0 && partition_.ShardOfNode(r.source) != zone) continue;
    double retimed = begin + (r.release_time - begin) / factor;
    double delta = retimed - r.release_time;
    r.release_time = retimed;
    r.deadline += delta;        // slack-preserving shift
    r.latest_pickup += delta;
  }
}

int SimulationEngine::EventRun::PullImpl(int zone, int count) {
  SR_CHECK(current_scenario_ >= 0);  // only from OnInstall / OnEvent
  int pulled = 0;
  // Idle vehicles first, then busy ones, ascending index: deterministic
  // and least disruptive to committed riders.
  for (int want_idle = 1; want_idle >= 0; --want_idle) {
    for (size_t vi = 0; vi < fleet_.size() && pulled < count; ++vi) {
      Vehicle& v = fleet_[vi];
      if (!v.in_service() || static_cast<int>(v.idle()) != want_idle) {
        continue;
      }
      if (zone >= 0 && partition_.ShardOfNode(v.node()) != zone) continue;
      v.CancelReposition();  // off-duty vehicles stop chasing demand
      v.set_in_service(false);
      pulled_stack_.push_back({vi, current_scenario_});
      ++pulled;
    }
  }
  return pulled;
}

void SimulationEngine::EventRun::ApplyRepositions(
    const std::vector<RepositionMove>& moves) {
  for (const RepositionMove& mv : moves) {
    if (mv.vehicle >= fleet_.size()) continue;
    if (mv.target < 0 ||
        static_cast<size_t>(mv.target) >= engine_->network().num_nodes()) {
      continue;
    }
    Vehicle& v = fleet_[mv.vehicle];
    if (!v.in_service() || !v.idle() || v.repositioning()) continue;
    v.BeginReposition(mv.target, now_, engine_);
  }
}

void SimulationEngine::EventRun::SyncVehicle(size_t vi) {
  Vehicle& v = fleet_[vi];
  if (scheduled_epoch_[vi] == v.epoch()) return;  // live event queued
  double when = v.next_completion_time();
  if (!(when < kInf)) return;  // nothing in flight; stale events self-drop
  queue_.Push({when, EventType::kStopCompletion, static_cast<int64_t>(vi),
               static_cast<int64_t>(v.epoch())});
  scheduled_epoch_[vi] = v.epoch();
}

void SimulationEngine::EventRun::RecordStop(const Stop& stop, double when) {
  auto it = id2idx_.find(stop.request);
  SR_CHECK(it != id2idx_.end());
  size_t idx = it->second;
  if (stop.kind == StopKind::kPickup) {
    pickup_time_[idx] = when;
    return;
  }
  dropoff_time_[idx] = when;
  if (when <= stop.deadline + 1e-6) {
    ++served_;
    served_mask_[idx] = 1;
    CloseRequest(idx, ReqState::kServed);
  } else {
    ++late_dropoffs_;  // impossible by construction; pinned by tests
  }
}

bool SimulationEngine::EventRun::AllVehiclesIdle() const {
  for (const Vehicle& v : fleet_) {
    if (!v.idle()) return false;
  }
  return true;
}

RunMetrics SimulationEngine::EventRun::Finalize() {
  const size_t n = requests_.size();
  RunMetrics metrics;
  metrics.dataset = options_.dataset;
  metrics.algorithm = algorithm_;
  metrics.total_requests = static_cast<int>(n);
  metrics.served = served_;
  metrics.cancelled = cancelled_;
  metrics.expired = expired_;
  metrics.rejected = rejected_;
  metrics.service_rate =
      n == 0 ? 0 : static_cast<double>(served_) / static_cast<double>(n);
  for (const Vehicle& v : fleet_) {
    metrics.travel_cost += v.total_travel_cost();
    metrics.repositions += v.repositions_completed();
    metrics.reposition_cost += v.reposition_cost();
  }
  // Unified cost (Sec. II): total travel plus p_r for every request not
  // served, with p_r = coefficient * direct cost. Cancelled riders count as
  // unserved — the platform lost them. Same summation order as the legacy
  // loop (stored request order), so the doubles match bitwise.
  double penalty = 0;
  for (size_t i = 0; i < n; ++i) {
    if (!served_mask_[i]) {
      penalty += config_.penalty_coefficient * requests_[i].direct_cost;
    }
  }
  metrics.penalty_cost = penalty;
  metrics.unified_cost = metrics.travel_cost + penalty;
  metrics.running_time = dispatch_seconds_;
  metrics.sp_queries = engine_->num_queries() - queries_before_;
  // Pair checks and instrumented memory sum over the shard dispatchers
  // (one term with a single shard — the pre-sharding numbers, bitwise).
  uint64_t pair_checks = 0;
  size_t memory_bytes = 0;
  std::vector<uint64_t> loads;
  std::vector<double> batch_times;
  loads.reserve(shards_.size());
  batch_times.reserve(shards_.size());
  for (const std::unique_ptr<ShardRuntime>& sh : shards_) {
    pair_checks += sh->dispatcher->SharePairChecks();
    memory_bytes += sh->dispatcher->MemoryBytes();
    loads.push_back(sh->assigned_total);
    batch_times.push_back(sh->batch_seconds_total);
    // Per-shard cache accounting: the shard's partition under geo-sharding,
    // the root engine's run delta at 1 shard (where the single shard *is*
    // the whole run).
    uint64_t q, l;
    if (sh->cache != nullptr) {
      q = sh->cache->num_queries() - sh->queries_at_run_start;
      l = sh->cache->num_lookups() - sh->lookups_at_run_start;
    } else {
      q = engine_->num_queries() - queries_before_;
      l = engine_->num_lookups() - lookups_before_;
    }
    metrics.shard_sp_queries.push_back(q);
    metrics.shard_cache_hit_rate.push_back(
        l == 0 ? 0 : 1.0 - static_cast<double>(q) / static_cast<double>(l));
  }
  metrics.sharegraph_pair_checks = pair_checks;
  metrics.memory_bytes = memory_bytes;
  metrics.num_shards = num_shards_;
  metrics.cross_shard_trips = cross_shard_trips_;
  metrics.shard_load_max_over_mean = ShardLoadMaxOverMean(loads);
  metrics.shard_round_time_max_over_mean = MaxOverMean(batch_times);
  metrics.late_dropoffs = late_dropoffs_;
  if (num_shards_ > 1) {
    // Final census: every request reached exactly one terminal outcome.
    // Committed riders all completed (termination drains the fleet), so
    // served + late covers the assigned. Shed arrivals never released —
    // they are the only way a request stays kUnreleased to the end.
    SR_CHECK(static_cast<size_t>(served_) + static_cast<size_t>(cancelled_) +
                 static_cast<size_t>(expired_) +
                 static_cast<size_t>(rejected_) +
                 static_cast<size_t>(late_dropoffs_) + shed_.size() ==
             n);
  }
  if (service_) {
    metrics.shed_requests = shed_.size();
    metrics.ingest_queue_depth_max =
        std::max(consumer_depth_max_,
                 producer_depth_max_.load(std::memory_order_relaxed));
    if (latency_hist_.count() > 0) {
      metrics.dispatch_latency_p50_ms = latency_hist_.Quantile(0.50);
      metrics.dispatch_latency_p99_ms = latency_hist_.Quantile(0.99);
      metrics.dispatch_latency_p999_ms = latency_hist_.Quantile(0.999);
    }
  }
  if (!steady_alloc_samples_.empty()) {
    std::vector<uint64_t> sorted = steady_alloc_samples_;
    std::sort(sorted.begin(), sorted.end());
    metrics.allocs_per_batch_p50 = sorted[(sorted.size() - 1) / 2];
    metrics.allocs_per_batch_max = sorted.back();
  }
  metrics.arena_peak_bytes = EpochArena::ProcessPeakRetainedBytes();
  FinalizeServiceQuality(requests_, served_mask_, pickup_time_, dropoff_time_,
                         &metrics);
  return metrics;
}

RunMetrics SimulationEngine::Run(const std::string& algorithm,
                                 const DispatchConfig& config) {
  SR_CHECK(!spawn_nodes_.empty());  // SpawnFleet first
  EventRun run(this, algorithm, config);
  return run.Execute();
}

void SimulationEngine::EnsureCachePartitions(int num_shards,
                                             const DispatchConfig& config) {
  size_t capacity = config.shard_cache_capacity;
  if (capacity == 0) {
    capacity = std::max<size_t>(
        1024, engine_->options().cache_capacity /
                  static_cast<size_t>(std::max(1, num_shards)));
  }
  const size_t stripes =
      config.shard_cache_stripes != 0 ? config.shard_cache_stripes : 16;
  if (cache_partitions_.size() == static_cast<size_t>(num_shards) &&
      partition_capacity_ == capacity && partition_stripes_ == stripes) {
    return;  // shape unchanged — keep the warm partitions
  }
  cache_partitions_.clear();
  cache_partitions_.reserve(static_cast<size_t>(num_shards));
  for (int s = 0; s < num_shards; ++s) {
    cache_partitions_.push_back(engine_->MakeCachePartition(capacity, stripes));
  }
  partition_capacity_ = capacity;
  partition_stripes_ = stripes;
}

// ---------------------------------------------------------------------------
// The frozen fixed-batch loop: the pre-event engine, kept verbatim (modulo
// the shared fleet/cancellation draw helpers and the service-quality
// bookkeeping both paths emit). tests/engine_test.cc holds Run() to bitwise
// equality against this when no scenarios are installed. Do not "improve"
// it — its exact semantics are the contract.
// ---------------------------------------------------------------------------

RunMetrics SimulationEngine::RunLegacy(const std::string& algorithm,
                                       const DispatchConfig& config) {
  SR_CHECK(!spawn_nodes_.empty());  // SpawnFleet first
  const size_t n = requests_.size();

  std::vector<Vehicle> fleet = BuildFleet();

  // Rider impatience draws.
  std::vector<double> offset = DrawCancelOffsets();
  std::vector<double> cancel_time(n, kInf);
  for (size_t i = 0; i < n; ++i) {
    cancel_time[i] = requests_[i].release_time + offset[i];
  }

  std::unique_ptr<Dispatcher> dispatcher = MakeDispatcher(algorithm, config);
  std::unique_ptr<ThreadPool> pool;
  if (config.num_threads > 1 && config.sard_parallel_acceptance) {
    pool = std::make_unique<ThreadPool>(config.num_threads);
  }
  const uint64_t queries_before = engine_->num_queries();
  const uint64_t lookups_before = engine_->num_lookups();

  std::unordered_map<RequestId, size_t> id2idx;
  id2idx.reserve(n);
  for (size_t i = 0; i < n; ++i) id2idx[requests_[i].id] = i;

  int served = 0;
  int cancelled = 0;
  int expired = 0;
  int rejected = 0;
  bool any_assigned = false;
  int late_dropoffs = 0;
  std::vector<char> served_mask(n, 0);
  std::vector<double> pickup_time(n, 0);
  std::vector<double> dropoff_time(n, 0);
  auto on_stop = [&](const Stop& stop, double when) {
    auto it = id2idx.find(stop.request);
    SR_CHECK(it != id2idx.end());
    size_t idx = it->second;
    if (stop.kind == StopKind::kPickup) {
      pickup_time[idx] = when;
      return;
    }
    dropoff_time[idx] = when;
    if (when <= stop.deadline + 1e-6) {
      ++served;
      served_mask[idx] = 1;
    } else {
      ++late_dropoffs;
    }
  };

  std::vector<const Request*> pending;
  std::vector<size_t> pending_idx;  // parallel: index into requests_
  size_t next_release = 0;
  double now = 0;
  double dispatch_seconds = 0;
  const double period = options_.batch_period > 0 ? options_.batch_period : 1;

  while (true) {
    now += period;
    while (next_release < n && requests_[next_release].release_time <= now) {
      pending.push_back(&requests_[next_release]);
      pending_idx.push_back(next_release);
      ++next_release;
    }
    for (Vehicle& v : fleet) v.AdvanceTo(now, on_stop);

    // Fault model + deadline expiry on the open set.
    {
      std::vector<const Request*> keep;
      std::vector<size_t> keep_idx;
      for (size_t k = 0; k < pending.size(); ++k) {
        const Request* r = pending[k];
        switch (ClassifyRider(now, r->latest_pickup,
                              cancel_time[pending_idx[k]])) {
          case RiderOutcome::kExpired:  // unserved
            ++expired;
            continue;
          case RiderOutcome::kCancelled:
            ++cancelled;
            continue;
          case RiderOutcome::kOpen:
            break;
        }
        keep.push_back(r);
        keep_idx.push_back(pending_idx[k]);
      }
      pending = std::move(keep);
      pending_idx = std::move(keep_idx);
    }

    DispatchContext ctx;
    ctx.now = now;
    ctx.engine = engine_;
    ctx.fleet = &fleet;
    ctx.pool = pool.get();
    ctx.pending = pending;
    auto t0 = std::chrono::steady_clock::now();
    dispatcher->OnBatch(&ctx);
    dispatch_seconds +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();

    if (!ctx.assigned.empty()) any_assigned = true;
    rejected += static_cast<int>(ctx.rejected.size());
    if (!ctx.assigned.empty() || !ctx.rejected.empty()) {
      std::unordered_set<RequestId> remove(ctx.assigned.begin(),
                                           ctx.assigned.end());
      remove.insert(ctx.rejected.begin(), ctx.rejected.end());
      std::vector<const Request*> keep;
      std::vector<size_t> keep_idx;
      for (size_t k = 0; k < pending.size(); ++k) {
        if (remove.count(pending[k]->id)) continue;
        keep.push_back(pending[k]);
        keep_idx.push_back(pending_idx[k]);
      }
      pending = std::move(keep);
      pending_idx = std::move(keep_idx);
    }

    if (next_release >= n && pending.empty()) {
      bool busy = false;
      for (const Vehicle& v : fleet) {
        if (!v.idle()) {
          busy = true;
          break;
        }
      }
      if (!busy) break;
    }
  }
  for (Vehicle& v : fleet) v.AdvanceTo(kInf, on_stop);

  RunMetrics metrics;
  metrics.dataset = options_.dataset;
  metrics.algorithm = algorithm;
  metrics.total_requests = static_cast<int>(n);
  metrics.served = served;
  metrics.cancelled = cancelled;
  metrics.expired = expired;
  metrics.rejected = rejected;
  // Single-region by definition: one shard carrying every assignment (load
  // ratio 1, or 0 when nothing was assigned at all), no cross-shard trips.
  metrics.num_shards = 1;
  metrics.cross_shard_trips = 0;
  metrics.shard_load_max_over_mean = any_assigned ? 1.0 : 0.0;
  metrics.service_rate =
      n == 0 ? 0 : static_cast<double>(served) / static_cast<double>(n);
  for (const Vehicle& v : fleet) metrics.travel_cost += v.total_travel_cost();
  // Unified cost (Sec. II): total travel plus p_r for every request not
  // served, with p_r = coefficient * direct cost. Cancelled riders count as
  // unserved — the platform lost them.
  double penalty = 0;
  for (size_t i = 0; i < n; ++i) {
    if (!served_mask[i]) {
      penalty += config.penalty_coefficient * requests_[i].direct_cost;
    }
  }
  metrics.penalty_cost = penalty;
  metrics.unified_cost = metrics.travel_cost + penalty;
  metrics.running_time = dispatch_seconds;
  metrics.sp_queries = engine_->num_queries() - queries_before;
  metrics.sharegraph_pair_checks = dispatcher->SharePairChecks();
  metrics.memory_bytes = dispatcher->MemoryBytes();
  metrics.late_dropoffs = late_dropoffs;
  // Single-region per-shard observability: one entry mirroring the run's
  // global counters, and a time-imbalance ratio of 1 whenever any dispatch
  // time accrued (the lone shard did all the work).
  metrics.shard_sp_queries.push_back(metrics.sp_queries);
  {
    const uint64_t lookups = engine_->num_lookups() - lookups_before;
    metrics.shard_cache_hit_rate.push_back(
        lookups == 0 ? 0
                     : 1.0 - static_cast<double>(metrics.sp_queries) /
                                 static_cast<double>(lookups));
  }
  metrics.shard_round_time_max_over_mean = dispatch_seconds > 0 ? 1.0 : 0.0;
  FinalizeServiceQuality(requests_, served_mask, pickup_time, dropoff_time,
                         &metrics);
  return metrics;
}

}  // namespace structride
