#include "sim/engine.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <unordered_set>

#include "util/logging.h"
#include "util/thread_pool.h"

namespace structride {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

RiderOutcome ClassifyRider(double now, double latest_pickup,
                           double cancel_time) {
  const bool expired = now > latest_pickup;
  const bool cancelled = cancel_time < now;
  if (!expired && !cancelled) return RiderOutcome::kOpen;
  if (expired && cancelled) {
    // Both happened within this batch period: the earlier event wins (a
    // cancellation at exactly the deadline counts as cancelled — the rider
    // left; the deadline merely also passed).
    return cancel_time <= latest_pickup ? RiderOutcome::kCancelled
                                        : RiderOutcome::kExpired;
  }
  return expired ? RiderOutcome::kExpired : RiderOutcome::kCancelled;
}

SimulationEngine::SimulationEngine(TravelCostEngine* engine,
                                   std::vector<Request> requests,
                                   SimulationOptions options)
    : engine_(engine),
      requests_(std::move(requests)),
      options_(options),
      run_rng_(options.seed ^ 0xfa51c0de5eedull) {
  SR_CHECK(engine_ != nullptr);
  std::stable_sort(requests_.begin(), requests_.end(),
                   [](const Request& a, const Request& b) {
                     return a.release_time < b.release_time;
                   });
}

void SimulationEngine::SpawnFleet(int num_vehicles, int capacity) {
  SR_CHECK(num_vehicles > 0);
  SR_CHECK(capacity > 0);
  Rng rng(options_.seed);
  spawn_nodes_.clear();
  int64_t n = static_cast<int64_t>(engine_->network().num_nodes());
  for (int i = 0; i < num_vehicles; ++i) {
    spawn_nodes_.push_back(static_cast<NodeId>(rng.UniformInt(0, n - 1)));
  }
  spawn_capacity_ = capacity;
}

RunMetrics SimulationEngine::Run(const std::string& algorithm,
                                 const DispatchConfig& config) {
  SR_CHECK(!spawn_nodes_.empty());  // SpawnFleet first
  const size_t n = requests_.size();

  // Fresh fleet from the fixed spawn; per-run capacity draws under the
  // Appendix-C variance model.
  std::vector<Vehicle> fleet;
  fleet.reserve(spawn_nodes_.size());
  for (size_t i = 0; i < spawn_nodes_.size(); ++i) {
    int capacity = spawn_capacity_;
    if (options_.capacity_sigma > 0) {
      double draw = run_rng_.Gaussian(static_cast<double>(options_.capacity_mean),
                                      options_.capacity_sigma);
      capacity = std::max(1, static_cast<int>(std::lround(draw)));
    }
    fleet.emplace_back(static_cast<int>(i), spawn_nodes_[i], capacity);
  }

  // Rider impatience draws.
  std::vector<double> cancel_time(n, kInf);
  if (options_.cancellation_rate > 0) {
    for (size_t i = 0; i < n; ++i) {
      if (run_rng_.Uniform(0, 1) < options_.cancellation_rate) {
        cancel_time[i] = requests_[i].release_time +
                         run_rng_.Exponential(options_.cancellation_patience);
      }
    }
  }

  std::unique_ptr<Dispatcher> dispatcher = MakeDispatcher(algorithm, config);
  // One worker pool per run, shared by every batch the dispatcher handles —
  // thread startup never recurs per batch. Only built when some dispatcher
  // stage actually consumes it (today: SARD's parallel acceptance).
  std::unique_ptr<ThreadPool> pool;
  if (config.num_threads > 1 && config.sard_parallel_acceptance) {
    pool = std::make_unique<ThreadPool>(config.num_threads);
  }
  const uint64_t queries_before = engine_->num_queries();

  int served = 0;
  int cancelled = 0;
  std::unordered_set<RequestId> served_ids;
  auto on_stop = [&](const Stop& stop, double when) {
    if (stop.kind == StopKind::kDropoff && when <= stop.deadline + 1e-6) {
      ++served;
      served_ids.insert(stop.request);
    }
  };

  std::vector<const Request*> pending;
  std::vector<size_t> pending_idx;  // parallel: index into requests_
  size_t next_release = 0;
  double now = 0;
  double dispatch_seconds = 0;
  const double period = options_.batch_period > 0 ? options_.batch_period : 1;

  while (true) {
    now += period;
    while (next_release < n && requests_[next_release].release_time <= now) {
      pending.push_back(&requests_[next_release]);
      pending_idx.push_back(next_release);
      ++next_release;
    }
    for (Vehicle& v : fleet) v.AdvanceTo(now, on_stop);

    // Fault model + deadline expiry on the open set.
    {
      std::vector<const Request*> keep;
      std::vector<size_t> keep_idx;
      for (size_t k = 0; k < pending.size(); ++k) {
        const Request* r = pending[k];
        switch (ClassifyRider(now, r->latest_pickup,
                              cancel_time[pending_idx[k]])) {
          case RiderOutcome::kExpired:  // unserved
            continue;
          case RiderOutcome::kCancelled:
            ++cancelled;
            continue;
          case RiderOutcome::kOpen:
            break;
        }
        keep.push_back(r);
        keep_idx.push_back(pending_idx[k]);
      }
      pending = std::move(keep);
      pending_idx = std::move(keep_idx);
    }

    DispatchContext ctx;
    ctx.now = now;
    ctx.engine = engine_;
    ctx.fleet = &fleet;
    ctx.pool = pool.get();
    ctx.pending = pending;
    auto t0 = std::chrono::steady_clock::now();
    dispatcher->OnBatch(&ctx);
    dispatch_seconds +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();

    if (!ctx.assigned.empty() || !ctx.rejected.empty()) {
      std::unordered_set<RequestId> remove(ctx.assigned.begin(),
                                           ctx.assigned.end());
      remove.insert(ctx.rejected.begin(), ctx.rejected.end());
      std::vector<const Request*> keep;
      std::vector<size_t> keep_idx;
      for (size_t k = 0; k < pending.size(); ++k) {
        if (remove.count(pending[k]->id)) continue;
        keep.push_back(pending[k]);
        keep_idx.push_back(pending_idx[k]);
      }
      pending = std::move(keep);
      pending_idx = std::move(keep_idx);
    }

    if (next_release >= n && pending.empty()) {
      bool busy = false;
      for (const Vehicle& v : fleet) {
        if (!v.idle()) {
          busy = true;
          break;
        }
      }
      if (!busy) break;
    }
  }
  for (Vehicle& v : fleet) v.AdvanceTo(kInf, on_stop);

  RunMetrics metrics;
  metrics.algorithm = algorithm;
  metrics.total_requests = static_cast<int>(n);
  metrics.served = served;
  metrics.cancelled = cancelled;
  metrics.service_rate =
      n == 0 ? 0 : static_cast<double>(served) / static_cast<double>(n);
  for (const Vehicle& v : fleet) metrics.travel_cost += v.total_travel_cost();
  // Unified cost (Sec. II): total travel plus p_r for every request not
  // served, with p_r = coefficient * direct cost. Cancelled riders count as
  // unserved — the platform lost them.
  double penalty = 0;
  for (const Request& r : requests_) {
    if (!served_ids.count(r.id)) {
      penalty += config.penalty_coefficient * r.direct_cost;
    }
  }
  metrics.penalty_cost = penalty;
  metrics.unified_cost = metrics.travel_cost + penalty;
  metrics.running_time = dispatch_seconds;
  metrics.sp_queries = engine_->num_queries() - queries_before;
  metrics.memory_bytes = dispatcher->MemoryBytes();
  return metrics;
}

}  // namespace structride
