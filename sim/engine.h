// The simulation engine: replays a request stream against a fleet and one
// dispatcher, producing the unified metrics the paper plots (unified cost,
// service rate, running time, #SP queries, instrumented memory) plus the
// fault-model counters and per-rider service-quality stats.
//
// Run() is the event-driven continuous-time core (DESIGN.md §6): a binary-
// heap EventQueue over typed events — request release, batch tick, stop
// completion, rider cancellation/expiry, scenario events — with the legacy
// fixed-batch semantics expressed as scheduled tick events. With no
// scenarios installed and no repositioning policy, Run() is bitwise
// identical to RunLegacy(), the frozen pre-event batch loop kept as the
// equivalence reference (tests/engine_test.cc pins this at 1 and 8 worker
// threads on all three presets).
//
// Run() also owns the run's incrementally maintained share graph
// (DESIGN.md §7) when DispatchConfig::incremental_sharegraph is on:
// lifecycle events retire requests from it and every dispatch round
// receives it via DispatchContext::sharegraph. RunLegacy never maintains
// one — it always replays the frozen rebuild-per-batch reference stack.
//
// Statefulness contract: SpawnFleet fixes the fleet's spawn positions once;
// every Run starts from that spawn with fresh request state, but the fault
// model's RNG (capacity draws, cancellation draws) advances across runs on
// the same engine. Comparisons between algorithms should therefore use one
// freshly constructed engine per run whenever those draws are active.

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "dispatch/dispatcher.h"
#include "sim/scenario.h"
#include "sim/workload.h"
#include "util/random.h"

namespace structride {

struct SimulationOptions {
  double batch_period = 5;
  uint64_t seed = 1;
  /// Dataset label stamped onto RunMetrics::dataset by the engine, so every
  /// bench row is labeled without each caller remembering to.
  std::string dataset;
  /// Vehicle-capacity distribution N(capacity_mean, capacity_sigma),
  /// clamped to >= 1 (Appendix C); sigma 0 keeps the SpawnFleet capacity.
  double capacity_sigma = 0;
  int capacity_mean = 4;
  /// Rider impatience fault model: each request is a potential canceller
  /// with this probability, leaving if unassigned after Exp(patience).
  double cancellation_rate = 0;
  double cancellation_patience = 60;

  // Streaming service mode (DESIGN.md §13). When on, request releases are
  // no longer replayed from the pre-scheduled EventQueue: a dedicated
  // ingestion thread paces arrivals at `service_qps` wall-clock requests
  // per second (open loop — arrivals never wait for the dispatcher) into a
  // bounded lock-free SPSC ring that the event core drains at every batch
  // boundary. Batch ticks are paced against the wall clock through the
  // virtual-time scale below, so overload is observable: rounds that
  // outrun their wall budget fire late, the ring backs up, and pushes into
  // a full ring are rejected (admission control) and counted as
  // RunMetrics::shed_requests. `false` (the default) is bitwise identical
  // to the replay engine — none of this machinery is constructed.
  bool service_mode = false;
  /// Target offered arrival rate, wall-clock requests/second (> 0).
  double service_qps = 1000;
  /// SPSC ring capacity (rounded up to a power of two): the admission-
  /// control bound on queued-but-undrained arrivals.
  size_t service_queue_capacity = 4096;
  /// Pace arrivals by the stream's own (scaled) inter-arrival gaps instead
  /// of uniform 1/qps spacing — trace-driven rather than generator-driven;
  /// the aggregate rate is `service_qps` either way.
  bool service_trace_arrivals = false;
  /// Virtual seconds that elapse per wall second while arrivals are live
  /// (0 = derive from service_qps so the stream's demand density maps onto
  /// the target rate: qps * virtual_span / num_requests). Once the stream
  /// is exhausted and drained, the tail of the run free-runs.
  double service_time_scale = 0;
};

/// What happened to an unassigned rider by batch time \p now. When a rider
/// both cancelled and passed the pickup deadline within one batch period,
/// whichever event came *first* decides — a rider who walked away at t=10
/// against a deadline of t=50 cancelled, no matter how late the batch that
/// notices is. The event engine reproduces this rule structurally: the
/// cancellation event type orders ahead of the expiry event type at equal
/// timestamps (sim/event_queue.h).
enum class RiderOutcome { kOpen, kExpired, kCancelled };

RiderOutcome ClassifyRider(double now, double latest_pickup,
                           double cancel_time);

struct RunMetrics {
  std::string dataset;
  std::string algorithm;
  double unified_cost = 0;  ///< travel + penalty over unserved requests
  double travel_cost = 0;
  double penalty_cost = 0;
  double service_rate = 0;
  double running_time = 0;  ///< dispatcher compute seconds (wall clock)
  uint64_t sp_queries = 0;  ///< travel-cost backend computations
  /// Exact share-graph pair feasibility evaluations (0 for methods that
  /// build no share graph). The incremental maintenance of DESIGN.md §7
  /// must cut this ≥2x for GAS/RTV versus the rebuild-per-batch reference.
  uint64_t sharegraph_pair_checks = 0;
  size_t memory_bytes = 0;  ///< dispatcher peak instrumented bytes
  int served = 0;
  int cancelled = 0;
  int expired = 0;   ///< riders whose pickup deadline passed unassigned
  int rejected = 0;  ///< riders an online dispatcher gave up on permanently
  int total_requests = 0;
  // Geo-sharding (DESIGN.md §12). Single-region runs report num_shards=1,
  // zero cross-shard trips, and a load ratio of 1 (0 when nothing was
  // assigned at all).
  int num_shards = 1;
  /// Assignments where the request's home zone (pickup) differs from the
  /// shard that committed the vehicle — trips that went through the
  /// boundary-escrow handoff.
  int cross_shard_trips = 0;
  /// max/mean of per-shard assignment counts over the run; 1 is perfectly
  /// balanced, num_shards is one shard doing all the work.
  double shard_load_max_over_mean = 0;
  /// Per-shard observability (one entry per shard, shard-id order; a single
  /// entry mirroring the global counters at num_shards == 1 and in
  /// RunLegacy). Backend computations charged to each shard's cache
  /// partition this run, and the partition's hit rate over the run — exact
  /// and thread-count-invariant per shard, since a shard only ever queries
  /// its own partition.
  std::vector<uint64_t> shard_sp_queries;
  std::vector<double> shard_cache_hit_rate;
  /// max/mean of per-shard OnBatch wall seconds over the run — the
  /// time-domain imbalance (the quantity that bounds the concurrent round's
  /// speedup), as shard_load_max_over_mean is the assignment-domain one.
  /// Wall-clock derived, so excluded from bitwise parity contracts.
  double shard_round_time_max_over_mean = 0;
  // Per-rider service quality over the served riders (0 when none served):
  double pickup_wait_p50 = 0;     ///< median pickup - release wait
  double pickup_wait_p99 = 0;     ///< nearest-rank p99 pickup wait
  double mean_detour_ratio = 0;   ///< mean (dropoff - pickup) / direct_cost
  /// Committed dropoffs that missed their deadline. CommitSchedule enforces
  /// deadlines at commit time and arrivals are fixed thereafter, so this is
  /// 0 by construction — tests pin it as the repositioning invariant.
  int late_dropoffs = 0;
  // Repositioning (0 unless a policy is installed):
  int repositions = 0;          ///< completed empty relocation legs
  double reposition_cost = 0;   ///< their travel cost (inside travel_cost)
  // Allocation discipline (DESIGN.md §8). A *steady-state* batch is a
  // dispatch round whose pending pool is non-empty and contains no freshly
  // released request — the warmed regime where the pooled paths promise
  // zero heap allocations. Counts are heap allocations observed strictly
  // inside Dispatcher::OnBatch under the counting allocator
  // (util/alloc_gate.h); both stay 0 in binaries that don't link
  // util/counting_new.cc, and in RunLegacy (frozen loop, not instrumented).
  uint64_t allocs_per_batch_p50 = 0;  ///< nearest-rank median over steady batches
  uint64_t allocs_per_batch_max = 0;  ///< worst steady batch
  /// Peak bytes retained across every EpochArena in the process (chunks
  /// stay warm over Reset); process-wide high-water mark, not per-run.
  size_t arena_peak_bytes = 0;
  // Streaming service mode (DESIGN.md §13); all zero in replay mode so
  // existing compare_bench baselines stay parseable. Wall-clock derived, so
  // none of these participate in any bitwise parity contract.
  /// Ingest→decision latency quantiles in milliseconds: from the ingestion
  /// thread's push to the end of the first dispatch round that presented
  /// the request, over every request that reached a round.
  double dispatch_latency_p50_ms = 0;
  double dispatch_latency_p99_ms = 0;
  double dispatch_latency_p999_ms = 0;
  /// Filled by sustained-qps benches (bench/svc_sustained_qps.cc): one run
  /// probes a single rate, so the engine always reports 0 here.
  double max_sustained_qps = 0;
  /// Arrivals rejected because the ingestion ring was full — the admission-
  /// control overflow. Shed requests never release; they count as unserved
  /// (penalty applies), like riders the platform turned away at the door.
  uint64_t shed_requests = 0;
  /// Deepest the ingestion ring ever got (sampled at every push and at
  /// every batch-boundary drain).
  uint64_t ingest_queue_depth_max = 0;
};

class SimulationEngine {
 public:
  SimulationEngine(TravelCostEngine* engine, std::vector<Request> requests,
                   SimulationOptions options);
  ~SimulationEngine();

  /// Draws spawn positions (seeded) for \p num_vehicles vehicles with
  /// \p capacity seats each. Call once before Run.
  void SpawnFleet(int num_vehicles, int capacity);

  /// Installs a scenario; OnInstall runs at the start of every Run, in
  /// installation order. Scenarios persist across Runs on this engine.
  void AddScenario(std::unique_ptr<Scenario> scenario);
  void ClearScenarios();

  /// Installs the idle-vehicle repositioning hook (null = off, the
  /// default). The policy runs after every dispatch round.
  void SetRepositioningPolicy(std::unique_ptr<RepositioningPolicy> policy);

  /// Replays the whole stream under the named dispatcher on the
  /// event-driven core, honouring installed scenarios and the
  /// repositioning policy.
  RunMetrics Run(const std::string& algorithm, const DispatchConfig& config);

  /// The frozen fixed-batch loop the event core must reproduce bitwise
  /// (served / costs / sp_queries / memory / service-quality stats) when no
  /// scenarios are installed. Ignores scenarios and repositioning. Kept as
  /// the equivalence reference; prefer Run().
  RunMetrics RunLegacy(const std::string& algorithm,
                       const DispatchConfig& config);

 private:
  class EventRun;  // the per-run event-core state machine (engine.cc)

  std::vector<Vehicle> BuildFleet();
  /// Per-request cancellation delay after release (+inf = never cancels);
  /// consumes run_rng_ exactly like the legacy draw loop did.
  std::vector<double> DrawCancelOffsets();
  /// (Re)builds the per-shard travel-cost cache partitions
  /// (TravelCostEngine::MakeCachePartition) to match the shard count and
  /// DispatchConfig sizing. Partitions persist across Runs on this engine —
  /// like the root cache, they stay warm — and are only rebuilt when the
  /// shape changes.
  void EnsureCachePartitions(int num_shards, const DispatchConfig& config);

  TravelCostEngine* engine_;
  std::vector<Request> requests_;  ///< sorted by release time
  SimulationOptions options_;
  std::vector<NodeId> spawn_nodes_;
  int spawn_capacity_ = 0;
  Rng run_rng_;  ///< fault-model draws; advances across runs (see header)
  std::vector<std::unique_ptr<Scenario>> scenarios_;
  std::unique_ptr<RepositioningPolicy> repositioning_;
  /// One travel-cost cache partition per shard under geo-sharding (empty
  /// until a multi-shard Run). Children of engine_, so they must not
  /// outlive it — callers construct the root engine before the simulation
  /// engine, and destruction order follows.
  std::vector<std::unique_ptr<TravelCostEngine>> cache_partitions_;
  size_t partition_capacity_ = 0;
  size_t partition_stripes_ = 0;
};

}  // namespace structride
