// The batch simulation engine: replays a request stream against a fleet and
// one dispatcher, advancing in fixed batch periods. Produces the unified
// metrics the paper plots (unified cost, service rate, running time,
// #SP queries, instrumented memory) plus the fault-model counters.
//
// Statefulness contract: SpawnFleet fixes the fleet's spawn positions once;
// every Run starts from that spawn with fresh request state, but the fault
// model's RNG (capacity draws, cancellation draws) advances across runs on
// the same engine. Comparisons between algorithms should therefore use one
// freshly constructed engine per run whenever those draws are active.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dispatch/dispatcher.h"
#include "sim/workload.h"
#include "util/random.h"

namespace structride {

struct SimulationOptions {
  double batch_period = 5;
  uint64_t seed = 1;
  /// Vehicle-capacity distribution N(capacity_mean, capacity_sigma),
  /// clamped to >= 1 (Appendix C); sigma 0 keeps the SpawnFleet capacity.
  double capacity_sigma = 0;
  int capacity_mean = 4;
  /// Rider impatience fault model: each request is a potential canceller
  /// with this probability, leaving if unassigned after Exp(patience).
  double cancellation_rate = 0;
  double cancellation_patience = 60;
};

/// What happened to an unassigned rider by batch time \p now. When a rider
/// both cancelled and passed the pickup deadline within one batch period,
/// whichever event came *first* decides — a rider who walked away at t=10
/// against a deadline of t=50 cancelled, no matter how late the batch that
/// notices is.
enum class RiderOutcome { kOpen, kExpired, kCancelled };

RiderOutcome ClassifyRider(double now, double latest_pickup,
                           double cancel_time);

struct RunMetrics {
  std::string dataset;
  std::string algorithm;
  double unified_cost = 0;  ///< travel + penalty over unserved requests
  double travel_cost = 0;
  double penalty_cost = 0;
  double service_rate = 0;
  double running_time = 0;  ///< dispatcher compute seconds (wall clock)
  uint64_t sp_queries = 0;  ///< travel-cost backend computations
  size_t memory_bytes = 0;  ///< dispatcher peak instrumented bytes
  int served = 0;
  int cancelled = 0;
  int total_requests = 0;
};

class SimulationEngine {
 public:
  SimulationEngine(TravelCostEngine* engine, std::vector<Request> requests,
                   SimulationOptions options);

  /// Draws spawn positions (seeded) for \p num_vehicles vehicles with
  /// \p capacity seats each. Call once before Run.
  void SpawnFleet(int num_vehicles, int capacity);

  /// Replays the whole stream under the named dispatcher.
  RunMetrics Run(const std::string& algorithm, const DispatchConfig& config);

 private:
  TravelCostEngine* engine_;
  std::vector<Request> requests_;  ///< sorted by release time
  SimulationOptions options_;
  std::vector<NodeId> spawn_nodes_;
  int spawn_capacity_ = 0;
  Rng run_rng_;  ///< fault-model draws; advances across runs (see header)
};

}  // namespace structride
