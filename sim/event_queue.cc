#include "sim/event_queue.h"

#include <utility>

#include "util/logging.h"

namespace structride {

bool EventQueue::Before(const Entry& x, const Entry& y) {
  if (x.event.time != y.event.time) return x.event.time < y.event.time;
  if (x.event.type != y.event.type) return x.event.type < y.event.type;
  return x.seq < y.seq;
}

void EventQueue::Push(const Event& event) {
  heap_.push_back({event, next_seq_++});
  SiftUp(heap_.size() - 1);
}

const Event& EventQueue::Top() const {
  SR_CHECK(!heap_.empty());
  return heap_.front().event;
}

Event EventQueue::Pop() {
  SR_CHECK(!heap_.empty());
  Event out = heap_.front().event;
  heap_.front() = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) SiftDown(0);
  return out;
}

void EventQueue::Clear() {
  heap_.clear();
  next_seq_ = 0;
}

void EventQueue::SiftUp(size_t i) {
  while (i > 0) {
    size_t parent = (i - 1) / 2;
    if (!Before(heap_[i], heap_[parent])) break;
    std::swap(heap_[i], heap_[parent]);
    i = parent;
  }
}

void EventQueue::SiftDown(size_t i) {
  const size_t n = heap_.size();
  while (true) {
    size_t best = i;
    size_t left = 2 * i + 1;
    size_t right = 2 * i + 2;
    if (left < n && Before(heap_[left], heap_[best])) best = left;
    if (right < n && Before(heap_[right], heap_[best])) best = right;
    if (best == i) return;
    std::swap(heap_[i], heap_[best]);
    i = best;
  }
}

}  // namespace structride
