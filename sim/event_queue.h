// The continuous-time event substrate of the simulation core: typed events
// ordered by a binary heap. The type ordering at equal timestamps is load-
// bearing — it encodes the legacy fixed-batch engine's inclusive/exclusive
// comparisons exactly, which is what makes the event engine's no-scenario
// replay bitwise identical to the frozen batch loop (DESIGN.md §6):
//
//   scenario events            fire FIRST at their timestamp, so a state
//       change at time T (dispatch-mode switch, downtime) already covers
//       releases and ticks at exactly T. Irrelevant to the equivalence
//       guarantee: with no scenarios installed none exist.
//   release / stop completion  fire BEFORE a same-time batch tick
//       (legacy: `release_time <= now` and `arrival <= now` are inclusive)
//   vehicle migration          fires AFTER same-time stop completions (the
//       completion that moved the vehicle across a zone edge has already
//       fired) and BEFORE a same-time batch tick, so a migrating vehicle is
//       resident in its new shard for any dispatch round at the same
//       timestamp (geo-sharding, DESIGN.md §12). Single-region runs push
//       none, keeping the bitwise guarantee untouched.
//   cancellation / expiry      fire AFTER a same-time batch tick
//       (legacy: `cancel_time < now` and `now > latest_pickup` are strict),
//       with cancellation ahead of expiry so a rider whose cancellation and
//       deadline coincide counts as cancelled (ClassifyRider's tie rule).
//
// Ties within one (time, type) bucket pop in push order (FIFO), so request
// releases with equal timestamps keep their release-sorted order.

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace structride {

enum class EventType : uint8_t {
  kScenario = 0,
  kRequestRelease = 1,
  kStopCompletion = 2,    ///< vehicle stop or reposition arrival
  kVehicleMigration = 3,  ///< vehicle crossed a zone edge: re-home its shard
  kBatchTick = 4,
  kRiderCancellation = 5,
  kRiderExpiry = 6,
};

struct Event {
  double time = 0;
  EventType type = EventType::kBatchTick;
  /// Payload: request index (release/cancellation/expiry), fleet index
  /// (stop completion / migration) or scenario index (scenario events).
  int64_t a = 0;
  /// Payload: vehicle epoch (stop completion — stale events are dropped
  /// when the vehicle's committed timeline changed) or scenario tag.
  int64_t b = 0;
};

/// Min-heap over (time, type, insertion order). Hand-rolled so the tie
/// discipline above is explicit and testable rather than an accident of a
/// comparator wrapped in std::priority_queue.
class EventQueue {
 public:
  void Push(const Event& event);
  /// SR_CHECK-fails when empty.
  const Event& Top() const;
  Event Pop();

  bool empty() const { return heap_.empty(); }
  size_t size() const { return heap_.size(); }
  void Clear();

 private:
  struct Entry {
    Event event;
    uint64_t seq = 0;
  };
  static bool Before(const Entry& x, const Entry& y);
  void SiftUp(size_t i);
  void SiftDown(size_t i);

  std::vector<Entry> heap_;
  uint64_t next_seq_ = 0;
};

}  // namespace structride
