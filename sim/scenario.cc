#include "sim/scenario.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/logging.h"

namespace structride {

namespace {

class DemandSurgeScenario : public Scenario {
 public:
  DemandSurgeScenario(int zone, double begin, double end, double factor)
      : zone_(zone), begin_(begin), end_(end), factor_(factor) {
    SR_CHECK(end_ > begin_);
    SR_CHECK(factor_ > 0);
  }

  const char* name() const override {
    return zone_ < 0 ? "demand_surge" : "zonal_demand_surge";
  }

  void OnInstall(ScenarioHost* host) override {
    host->RetimeZoneWindow(zone_, begin_, end_, factor_);
  }

  void OnEvent(ScenarioHost*, int64_t) override {}

 private:
  int zone_;  ///< < 0: every zone (the global surge)
  double begin_;
  double end_;
  double factor_;
};

class VehicleDowntimeScenario : public Scenario {
 public:
  VehicleDowntimeScenario(int zone, double start, double duration,
                          double fraction)
      : zone_(zone), start_(start), duration_(duration), fraction_(fraction) {
    SR_CHECK(start_ >= 0);
    SR_CHECK(duration_ > 0);
    SR_CHECK(fraction_ > 0 && fraction_ <= 1);
  }

  const char* name() const override {
    return zone_ < 0 ? "vehicle_downtime" : "zonal_vehicle_downtime";
  }

  void OnInstall(ScenarioHost* host) override {
    pulled_ = 0;  // per-run state: OnInstall is the reset point
    host->ScheduleAt(start_, kPullTag);
    if (std::isfinite(duration_)) {
      host->ScheduleAt(start_ + duration_, kRestoreTag);
    }
  }

  void OnEvent(ScenarioHost* host, int64_t tag) override {
    if (tag == kPullTag) {
      // The pull quota scales with the affected population: the whole fleet
      // for the global scenario, the vehicles currently inside the zone for
      // the zonal one (an empty zone pulls nothing).
      int basis = 0;
      if (zone_ < 0) {
        basis = static_cast<int>(host->fleet().size());
      } else {
        const std::vector<Vehicle>& fleet = host->fleet();
        for (const Vehicle& v : fleet) {
          if (host->ZoneOfNode(v.node()) == zone_) ++basis;
        }
      }
      if (basis == 0) {
        pulled_ = 0;
        return;
      }
      int want = std::max(
          1, static_cast<int>(fraction_ * static_cast<double>(basis)));
      pulled_ = host->PullVehiclesInZone(zone_, want);
    } else if (tag == kRestoreTag) {
      host->RestoreVehicles(pulled_);
      pulled_ = 0;
    }
  }

 private:
  static constexpr int64_t kPullTag = 0;
  static constexpr int64_t kRestoreTag = 1;
  int zone_;  ///< < 0: whole fleet (the global downtime)
  double start_;
  double duration_;
  double fraction_;
  int pulled_ = 0;
};

class DispatchModeSwitchScenario : public Scenario {
 public:
  DispatchModeSwitchScenario(double on_time, double off_time)
      : on_time_(on_time), off_time_(off_time) {
    SR_CHECK(on_time_ >= 0);
    SR_CHECK(off_time_ > on_time_);
  }

  const char* name() const override { return "dispatch_mode_switch"; }

  void OnInstall(ScenarioHost* host) override {
    host->ScheduleAt(on_time_, 1);
    if (std::isfinite(off_time_)) host->ScheduleAt(off_time_, 0);
  }

  void OnEvent(ScenarioHost* host, int64_t tag) override {
    host->SetOnlineDispatch(tag != 0);
  }

 private:
  double on_time_;
  double off_time_;
};

class GreedyCentroidRepositioning : public RepositioningPolicy {
 public:
  explicit GreedyCentroidRepositioning(GreedyRepositioningOptions options)
      : options_(options) {}

  const char* name() const override { return "greedy_centroid"; }

  void Propose(const RepositioningContext& ctx,
               std::vector<RepositionMove>* moves) override {
    const std::vector<const Request*>& open = *ctx.open;
    if (open.empty() || options_.max_moves_per_round == 0) return;

    Point centroid{0, 0};
    for (const Request* r : open) {
      Point p = ctx.net->position(r->source);
      centroid.x += p.x;
      centroid.y += p.y;
    }
    centroid.x /= static_cast<double>(open.size());
    centroid.y /= static_cast<double>(open.size());

    // The round's target: the open pickup node nearest the centroid (tie:
    // smaller node id), so vehicles head for real demand, not a street-less
    // mean point.
    NodeId target = open.front()->source;
    double best = std::numeric_limits<double>::infinity();
    for (const Request* r : open) {
      double d = EuclidDistance(ctx.net->position(r->source), centroid);
      if (d < best || (d == best && r->source < target)) {
        best = d;
        target = r->source;
      }
    }

    // Farthest-from-centroid idle vehicles move first: they contribute the
    // least where they stand. Deterministic order: distance descending,
    // fleet index ascending on ties.
    std::vector<std::pair<double, size_t>> idle;
    const std::vector<Vehicle>& fleet = *ctx.fleet;
    for (size_t vi = 0; vi < fleet.size(); ++vi) {
      const Vehicle& v = fleet[vi];
      if (!v.in_service() || !v.idle() || v.repositioning()) continue;
      if (v.node() == target) continue;
      double d = EuclidDistance(ctx.net->position(v.node()), centroid);
      if (d <= options_.min_move_distance) continue;
      idle.emplace_back(-d, vi);
    }
    std::sort(idle.begin(), idle.end());
    if (idle.size() > options_.max_moves_per_round) {
      idle.resize(options_.max_moves_per_round);
    }
    for (const auto& [neg_dist, vi] : idle) {
      (void)neg_dist;
      moves->push_back({vi, target});
    }
  }

 private:
  GreedyRepositioningOptions options_;
};

}  // namespace

std::unique_ptr<Scenario> MakeDemandSurge(double begin, double end,
                                          double factor) {
  return std::make_unique<DemandSurgeScenario>(-1, begin, end, factor);
}

std::unique_ptr<Scenario> MakeVehicleDowntime(double start, double duration,
                                              double fraction) {
  return std::make_unique<VehicleDowntimeScenario>(-1, start, duration,
                                                   fraction);
}

std::unique_ptr<Scenario> MakeZonalDemandSurge(int zone, double begin,
                                               double end, double factor) {
  return std::make_unique<DemandSurgeScenario>(zone, begin, end, factor);
}

std::unique_ptr<Scenario> MakeZonalVehicleDowntime(int zone, double start,
                                                   double duration,
                                                   double fraction) {
  return std::make_unique<VehicleDowntimeScenario>(zone, start, duration,
                                                   fraction);
}

std::unique_ptr<Scenario> MakeDispatchModeSwitch(double on_time,
                                                 double off_time) {
  return std::make_unique<DispatchModeSwitchScenario>(on_time, off_time);
}

std::unique_ptr<RepositioningPolicy> MakeGreedyCentroidRepositioning(
    GreedyRepositioningOptions options) {
  return std::make_unique<GreedyCentroidRepositioning>(options);
}

}  // namespace structride
