// The pluggable scenario subsystem of the event-driven simulation core
// (DESIGN.md §6). A Scenario perturbs one run — reshaping the workload at
// install time and/or scheduling events that mutate the world mid-run —
// through the narrow ScenarioHost surface the engine exposes. With no
// scenarios installed the engine is bitwise identical to the frozen
// fixed-batch loop, so every scenario is a pure delta on a pinned baseline.
//
// A RepositioningPolicy is the second hook: after every dispatch round it
// may send idle vehicles on empty relocation legs toward demand. Off by
// default; relocation travel is charged to travel_cost (and reported
// separately in RunMetrics), so a policy must earn its deadhead miles.

#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/vehicle.h"
#include "dispatch/dispatcher.h"

namespace structride {

/// The engine-side surface scenarios act through. Methods marked
/// *install-only* SR_CHECK-fail outside Scenario::OnInstall; the rest are
/// valid from both OnInstall and OnEvent.
class ScenarioHost {
 public:
  virtual ~ScenarioHost() = default;

  /// Current simulation time (0 during OnInstall).
  virtual double now() const = 0;
  virtual const std::vector<Vehicle>& fleet() const = 0;

  /// Schedules OnEvent(tag) for the calling scenario at \p when (>= now()).
  virtual void ScheduleAt(double when, int64_t tag) = 0;

  /// Install-only: compresses the arrival window [begin, end) by \p factor
  /// (> 1 squeezes the same demand into a 1/factor-length window starting
  /// at \p begin — a surge). Each retimed request's deadline and latest
  /// pickup shift with its release, so per-request slack is preserved; so
  /// is a pending cancellation's countdown.
  virtual void RetimeWindow(double begin, double end, double factor) = 0;

  /// Takes up to \p count in-service vehicles out of service (idle vehicles
  /// first, then busy ones, ascending fleet index — deterministic). Pulled
  /// vehicles finish committed stops but receive no new work; an in-flight
  /// reposition is abandoned. Returns how many were pulled.
  virtual int PullVehicles(int count) = 0;
  /// Returns up to \p count vehicles *the calling scenario* pulled back to
  /// service (most recent first — overlapping downtime scenarios never
  /// restore each other's vehicles); returns how many came back.
  virtual int RestoreVehicles(int count) = 0;

  /// Switches per-request online dispatch on or off: when on, every
  /// request-release event triggers an immediate dispatch round (same-time
  /// releases coalesce into one round) in addition to the periodic batch
  /// ticks that still retry leftovers and drive termination.
  virtual void SetOnlineDispatch(bool on) = 0;

  // Zone surface (geo-sharding, DESIGN.md §12). A host without a zone
  // partition reports one zone covering the whole metro, so the defaults
  // degrade every zonal scenario to its global counterpart.

  virtual int num_zones() const { return 1; }
  /// Zone of a network node; always 0 on a single-zone host.
  virtual int ZoneOfNode(NodeId node) const {
    (void)node;
    return 0;
  }
  /// Install-only: RetimeWindow restricted to requests whose pickup lies in
  /// \p zone (< 0 = every zone).
  virtual void RetimeZoneWindow(int zone, double begin, double end,
                                double factor) {
    (void)zone;
    RetimeWindow(begin, end, factor);
  }
  /// PullVehicles restricted to vehicles currently inside \p zone (< 0 =
  /// anywhere); same idle-first ascending-index discipline. Returns how
  /// many were pulled.
  virtual int PullVehiclesInZone(int zone, int count) {
    (void)zone;
    return PullVehicles(count);
  }
};

class Scenario {
 public:
  virtual ~Scenario() = default;
  virtual const char* name() const = 0;
  /// Called once at the start of every Run, before any event fires.
  /// Reshape the workload and schedule the scenario's events here.
  virtual void OnInstall(ScenarioHost* host) = 0;
  /// Called when an event this scenario scheduled fires.
  virtual void OnEvent(ScenarioHost* host, int64_t tag) = 0;
};

/// Demand surge: the releases in [begin, end) compress by \p factor (> 1)
/// toward \p begin. Pure install-time reshaping; no mid-run events.
std::unique_ptr<Scenario> MakeDemandSurge(double begin, double end,
                                          double factor);

/// Vehicle downtime / shift change: at \p start pulls
/// max(1, floor(fraction * fleet)) vehicles out of service and restores
/// them at \p start + \p duration (never, if duration is +infinity).
std::unique_ptr<Scenario> MakeVehicleDowntime(double start, double duration,
                                              double fraction);

/// Dispatch-mode switch: online per-request dispatch turns on at
/// \p on_time and (optionally) back off at \p off_time (+infinity = stays
/// on for the rest of the run).
std::unique_ptr<Scenario> MakeDispatchModeSwitch(double on_time,
                                                 double off_time);

/// Zone-targeted demand surge: like MakeDemandSurge, but only requests whose
/// pickup lies in \p zone retime (zone < 0 = every zone, identical to the
/// global surge). On a host without a zone partition the surge degrades to
/// the global one.
std::unique_ptr<Scenario> MakeZonalDemandSurge(int zone, double begin,
                                               double end, double factor);

/// Zone-targeted downtime: at \p start pulls max(1, floor(fraction * (fleet
/// currently in \p zone))) vehicles from that zone (zone < 0 = whole fleet,
/// identical to MakeVehicleDowntime) and restores them at \p start +
/// \p duration. An empty zone pulls nothing.
std::unique_ptr<Scenario> MakeZonalVehicleDowntime(int zone, double start,
                                                   double duration,
                                                   double fraction);

// ---------------------------------------------------------------------------

/// What a repositioning policy sees after a dispatch round: the fleet and
/// the requests still open (released, unassigned, unexpired).
struct RepositioningContext {
  double now = 0;
  const RoadNetwork* net = nullptr;
  const std::vector<Vehicle>* fleet = nullptr;
  const std::vector<const Request*>* open = nullptr;
};

class RepositioningPolicy {
 public:
  virtual ~RepositioningPolicy() = default;
  virtual const char* name() const = 0;
  /// Appends moves for idle vehicles. The engine validates each move
  /// (in-service, idle, not already repositioning, target != current node)
  /// before starting the leg, so a policy may propose optimistically.
  virtual void Propose(const RepositioningContext& ctx,
                       std::vector<RepositionMove>* moves) = 0;
};

struct GreedyRepositioningOptions {
  /// At most this many relocations start per dispatch round.
  size_t max_moves_per_round = 4;
  /// A vehicle closer than this (straight-line) to the demand centroid
  /// stays put.
  double min_move_distance = 0;
};

/// The first concrete policy: compute the centroid of the open requests'
/// pickup points, pick the open pickup node nearest that centroid as the
/// round's target, and send the idle vehicles farthest from the centroid
/// (the most mispositioned ones) toward it. No moves when nothing is open.
std::unique_ptr<RepositioningPolicy> MakeGreedyCentroidRepositioning(
    GreedyRepositioningOptions options = {});

}  // namespace structride
