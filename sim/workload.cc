#include "sim/workload.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/random.h"

namespace structride {

namespace {

// Node draw: either uniform, or rejection-sampled near a hotspot center.
NodeId DrawNode(Rng& rng, const RoadNetwork& net,
                const std::vector<NodeId>& hotspots, double radius,
                double hotspot_fraction) {
  int64_t n = static_cast<int64_t>(net.num_nodes());
  if (!hotspots.empty() && rng.Uniform(0, 1) < hotspot_fraction) {
    NodeId center = hotspots[static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(hotspots.size()) - 1))];
    for (int attempt = 0; attempt < 30; ++attempt) {
      NodeId v = static_cast<NodeId>(rng.UniformInt(0, n - 1));
      if (EuclidDistance(net.position(v), net.position(center)) <= radius) {
        return v;
      }
    }
    return center;
  }
  return static_cast<NodeId>(rng.UniformInt(0, n - 1));
}

}  // namespace

std::vector<Request> GenerateWorkload(const RoadNetwork& net,
                                      TravelCostEngine* engine,
                                      const DeadlinePolicy& policy,
                                      const WorkloadOptions& options) {
  SR_CHECK(net.num_nodes() >= 2);
  SR_CHECK(policy.gamma > 1.0);
  Rng rng(options.seed);

  std::vector<NodeId> hotspots;
  for (int h = 0; h < options.num_hotspots; ++h) {
    hotspots.push_back(static_cast<NodeId>(
        rng.UniformInt(0, static_cast<int64_t>(net.num_nodes()) - 1)));
  }
  double min_x = 0, max_x = 0, min_y = 0, max_y = 0;
  for (size_t v = 0; v < net.num_nodes(); ++v) {
    const Point& p = net.position(static_cast<NodeId>(v));
    if (v == 0 || p.x < min_x) min_x = p.x;
    if (v == 0 || p.x > max_x) max_x = p.x;
    if (v == 0 || p.y < min_y) min_y = p.y;
    if (v == 0 || p.y > max_y) max_y = p.y;
  }
  double diagonal = std::hypot(max_x - min_x, max_y - min_y);
  double radius = options.hotspot_radius * diagonal;

  std::vector<Request> requests;
  requests.reserve(static_cast<size_t>(options.num_requests));
  while (requests.size() < static_cast<size_t>(options.num_requests)) {
    NodeId source =
        DrawNode(rng, net, hotspots, radius, options.hotspot_fraction);
    NodeId destination =
        DrawNode(rng, net, hotspots, radius, options.hotspot_fraction);
    if (source == destination) continue;
    double direct = engine->Cost(source, destination);
    if (!(direct > 0) || !std::isfinite(direct)) continue;
    Request r;
    r.source = source;
    r.destination = destination;
    r.release_time = rng.Uniform(0, options.duration);
    r.direct_cost = direct;
    r.deadline = r.release_time + policy.gamma * direct;
    r.latest_pickup = r.deadline - direct;
    requests.push_back(r);
  }

  std::stable_sort(requests.begin(), requests.end(),
                   [](const Request& a, const Request& b) {
                     return a.release_time < b.release_time;
                   });
  for (size_t i = 0; i < requests.size(); ++i) {
    requests[i].id = static_cast<RequestId>(i);
  }
  return requests;
}

}  // namespace structride
