// Deterministic request-stream generation: hotspot-weighted origins and
// destinations over a road network, uniform arrivals over the window, and
// gamma-policy deadlines. The same (network, policy, options) always
// produces the identical stream — sweeps re-use streams and tests rely on
// it.

#pragma once

#include <cstdint>
#include <vector>

#include "core/request.h"
#include "roadnet/travel_cost.h"

namespace structride {

struct DeadlinePolicy {
  /// Deadline = release + gamma * direct_cost (Table III default 1.5).
  double gamma = 1.5;
};

struct WorkloadOptions {
  int num_requests = 1000;
  double duration = 600;  ///< arrival window [0, duration)
  uint64_t seed = 1;
  /// Fraction of trip endpoints drawn near one of the hotspot centers; the
  /// rest are uniform over the network.
  double hotspot_fraction = 0.6;
  int num_hotspots = 8;
  /// Hotspot radius as a fraction of the network's bounding-box diagonal.
  double hotspot_radius = 0.08;
};

/// Generates requests sorted by release time with ids 0..n-1 in that order.
/// Uses \p engine for direct costs (these shortest-path queries happen once
/// per request, outside any measured dispatch run).
std::vector<Request> GenerateWorkload(const RoadNetwork& net,
                                      TravelCostEngine* engine,
                                      const DeadlinePolicy& policy,
                                      const WorkloadOptions& options);

}  // namespace structride
