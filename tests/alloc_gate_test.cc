// The allocation gate (DESIGN.md §8). This binary links
// util/counting_new.cc, so global operator new/delete really count — which
// turns two promises into assertions:
//
//  1. EpochArena semantics: Reset retains chunks (a warmed arena re-serves
//     the same workload with zero heap allocations), Save/Restore gives
//     scopes a stack discipline, and the process-wide retained-byte
//     accounting moves only on the cold paths.
//  2. The pooled dispatcher hot paths (SARD, GAS, RTV) perform zero heap
//     allocations on a steady-state batch: after one warm-up round over a
//     fixed pending pool, re-dispatching the same pool allocates nothing.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "dispatch/dispatcher.h"
#include "roadnet/generator.h"
#include "sharegraph/builder.h"
#include "sim/workload.h"
#include "util/alloc_gate.h"
#include "util/arena.h"

namespace structride {
namespace {

TEST(AllocGateTest, CountingAllocatorIsInstalledHere) {
  ASSERT_TRUE(HeapAllocCountingActive());
  uint64_t before = CurrentHeapAllocCount();
  int* p = new int(7);
  EXPECT_GT(CurrentHeapAllocCount(), before);
  delete p;
}

TEST(AllocGateTest, ArenaResetRetainsChunksAndReservesZeroAllocSteadyState) {
  EpochArena arena(/*first_chunk_bytes=*/1024);
  const uint64_t epoch0 = arena.epoch();
  // Warm-up epoch: force growth across several chunks.
  for (int i = 0; i < 64; ++i) arena.AllocateArray<double>(100);
  const size_t retained = arena.retained_bytes();
  EXPECT_GT(retained, size_t{1024});
  EXPECT_GE(EpochArena::ProcessRetainedBytes(), retained);
  EXPECT_GE(EpochArena::ProcessPeakRetainedBytes(),
            EpochArena::ProcessRetainedBytes());

  arena.Reset();
  EXPECT_EQ(arena.epoch(), epoch0 + 1);
  EXPECT_EQ(arena.retained_bytes(), retained);  // chunks survive
  EXPECT_EQ(arena.used_bytes(), size_t{0});

  // Steady-state epoch: the identical workload re-served from warm chunks
  // must not touch the heap at all.
  uint64_t before = CurrentHeapAllocCount();
  for (int i = 0; i < 64; ++i) arena.AllocateArray<double>(100);
  EXPECT_EQ(CurrentHeapAllocCount() - before, uint64_t{0});
  EXPECT_EQ(arena.retained_bytes(), retained);
}

TEST(AllocGateTest, ArenaScopeRewindsToTheSameStorage) {
  EpochArena arena;
  void* outer = arena.Allocate(64);
  void* inner1;
  {
    ArenaScope scope(arena);
    inner1 = scope.AllocateArray<char>(128);
    EXPECT_NE(inner1, outer);
  }
  // The scope died, so its block is re-issued to the next caller.
  void* inner2 = arena.Allocate(128, alignof(char));
  EXPECT_EQ(inner1, inner2);

  // Zero-byte requests get distinct, valid storage.
  void* a = arena.Allocate(0);
  void* b = arena.Allocate(0);
  EXPECT_NE(a, nullptr);
  EXPECT_NE(a, b);
}

// The dispatcher-level gate. The context is built the way the engine builds
// it — caller-owned arena reset per round, SoA planes refreshed per round, a
// persistent memoizing share-graph builder — over a pending pool of riders
// whose deadlines already passed: every feasibility check fails, nothing
// commits, so the fleet and pending pool are identical round after round.
// Round 1 warms every pool (arena chunks, scanner index, grouping scratch,
// thread scratch, travel-cost cache); rounds 2 and 3 are steady-state and
// must allocate nothing.
class DispatcherGateTest : public ::testing::TestWithParam<const char*> {};

TEST_P(DispatcherGateTest, SteadyStateBatchAllocatesNothing) {
  ASSERT_TRUE(HeapAllocCountingActive());
  CityOptions opt;
  opt.rows = 12;
  opt.cols = 12;
  opt.seed = 53;
  RoadNetwork net = GenerateGridCity(opt);
  TravelCostEngine engine(net);
  DeadlinePolicy policy;
  policy.gamma = 1.8;
  WorkloadOptions wopts;
  wopts.num_requests = 24;
  wopts.duration = 40;
  wopts.seed = 17;
  std::vector<Request> requests =
      GenerateWorkload(net, &engine, policy, wopts);
  for (Request& r : requests) {
    r.latest_pickup = -1000;  // expired: nothing is ever feasible
    r.deadline = -1000;
  }

  std::vector<Vehicle> fleet;
  for (int i = 0; i < 6; ++i) {
    fleet.emplace_back(i, requests[static_cast<size_t>(i)].source, 4);
  }

  DispatchConfig config;
  config.vehicle_capacity = 4;
  config.grouping.max_group_size = 4;
  config.sharegraph.vehicle_capacity = 4;
  std::unique_ptr<Dispatcher> dispatcher =
      MakeDispatcher(GetParam(), config);

  ShareGraphBuilder sharegraph(&engine, config.sharegraph);
  sharegraph.set_memoize_pairs(true);
  EpochArena arena;
  FleetSoA fleet_soa;
  RequestSoA pending_soa;

  DispatchContext ctx;
  ctx.engine = &engine;
  ctx.fleet = &fleet;
  ctx.sharegraph = &sharegraph;
  for (const Request& r : requests) ctx.pending.push_back(&r);

  for (int round = 1; round <= 3; ++round) {
    ctx.now = 100 + 5 * round;
    ctx.assigned.clear();
    ctx.rejected.clear();
    ctx.repositions.clear();
    arena.Reset();
    fleet_soa.Refresh(fleet);
    pending_soa.Refresh(
        Span<const Request* const>(ctx.pending.data(), ctx.pending.size()));
    ctx.arena = &arena;
    ctx.fleet_soa = &fleet_soa;
    ctx.pending_soa = &pending_soa;

    uint64_t before = CurrentHeapAllocCount();
    dispatcher->OnBatch(&ctx);
    uint64_t allocs = CurrentHeapAllocCount() - before;
    EXPECT_TRUE(ctx.assigned.empty());
    if (round >= 2) {
      EXPECT_EQ(allocs, uint64_t{0})
          << GetParam() << " allocated on steady-state round " << round;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(PooledDispatchers, DispatcherGateTest,
                         ::testing::Values("SARD", "GAS", "RTV"));

}  // namespace
}  // namespace structride
