// End-to-end dispatcher smoke and invariants on a tiny CHD run: every
// registered dispatcher completes, reports sane metrics, reproduces
// deterministically, and SARD's two knobs (angle pruning, parallel
// acceptance) change only cost/queries — never the assignment outcome.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "sim/datasets.h"
#include "sim/engine.h"
#include "sim/workload.h"

namespace structride {
namespace {

struct TinyChd {
  TinyChd() : spec(DatasetByName("CHD", 0.02)) {
    spec.city.rows = 16;  // shrink the city too: unit tests stay fast while
    spec.city.cols = 16;  // the preset's workload shape is kept
    net = BuildNetwork(&spec);
    engine = std::make_unique<TravelCostEngine>(net);
    requests = GenerateWorkload(net, engine.get(), spec.policy, spec.workload);
  }

  DispatchConfig Config() const {
    DispatchConfig config;
    config.vehicle_capacity = spec.capacity;
    config.grouping.max_group_size = spec.capacity;
    config.sharegraph.vehicle_capacity = spec.capacity;
    return config;
  }

  RunMetrics Run(const std::string& algorithm, const DispatchConfig& config) {
    SimulationOptions sopts;
    sopts.batch_period = 5;
    sopts.seed = 4242;
    SimulationEngine sim(engine.get(), requests, sopts);
    sim.SpawnFleet(std::max(3, spec.num_vehicles), spec.capacity);
    return sim.Run(algorithm, config);
  }

  DatasetSpec spec;
  RoadNetwork net;
  std::unique_ptr<TravelCostEngine> engine;
  std::vector<Request> requests;
};

TEST(DispatchTest, EveryDispatcherCompletesWithSaneMetrics) {
  TinyChd fixture;
  bool first = true;
  for (const std::string& name : AllDispatcherNames()) {
    RunMetrics m = fixture.Run(name, fixture.Config());
    SCOPED_TRACE(name);
    EXPECT_GE(m.service_rate, 0.0);
    EXPECT_LE(m.service_rate, 1.0);
    EXPECT_EQ(m.total_requests, static_cast<int>(fixture.requests.size()));
    EXPECT_LE(m.served, m.total_requests);
    EXPECT_TRUE(std::isfinite(m.unified_cost));
    EXPECT_GE(m.travel_cost, 0.0);
    EXPECT_NEAR(m.unified_cost, m.travel_cost + m.penalty_cost, 1e-6);
    if (first) {
      // Later runs share the fixture's warm travel-cost cache and may
      // legitimately need no new backend computations.
      EXPECT_GT(m.sp_queries, 0u);
      first = false;
    }
    EXPECT_GT(m.memory_bytes, 0u);
    EXPECT_EQ(m.cancelled, 0);
  }
}

TEST(DispatchTest, RunsAreDeterministic) {
  for (const std::string& name : {std::string("SARD"), std::string("GAS"),
                                  std::string("pruneGDP")}) {
    TinyChd a, b;
    RunMetrics ma = a.Run(name, a.Config());
    RunMetrics mb = b.Run(name, b.Config());
    SCOPED_TRACE(name);
    EXPECT_DOUBLE_EQ(ma.unified_cost, mb.unified_cost);
    EXPECT_DOUBLE_EQ(ma.service_rate, mb.service_rate);
    EXPECT_EQ(ma.served, mb.served);
  }
}

TEST(DispatchTest, AnglePruningPreservesSardOutcome) {
  // Separate fixtures so both runs see a cold travel-cost cache: the query
  // counts are then comparable and the assignments must be identical
  // because the pruned shareability graph is identical (sound pruning).
  TinyChd plain, pruned;
  RunMetrics m_plain = plain.Run("SARD", plain.Config());
  DispatchConfig config = pruned.Config();
  config.sharegraph.use_angle_pruning = true;
  RunMetrics m_pruned = pruned.Run("SARD", config);
  EXPECT_DOUBLE_EQ(m_plain.unified_cost, m_pruned.unified_cost);
  EXPECT_DOUBLE_EQ(m_plain.service_rate, m_pruned.service_rate);
  EXPECT_LE(m_pruned.sp_queries, m_plain.sp_queries);
}

TEST(DispatchTest, ParallelAcceptanceIsThreadCountInvariant) {
  TinyChd serial, parallel;
  RunMetrics m_serial = serial.Run("SARD", serial.Config());
  DispatchConfig config = parallel.Config();
  config.sard_parallel_acceptance = true;
  config.num_threads = 4;
  RunMetrics m_parallel = parallel.Run("SARD", config);
  EXPECT_DOUBLE_EQ(m_serial.unified_cost, m_parallel.unified_cost);
  EXPECT_DOUBLE_EQ(m_serial.service_rate, m_parallel.service_rate);
  EXPECT_EQ(m_serial.served, m_parallel.served);
}

TEST(DispatchTest, CancellationFaultModelOnlyRemovesPendingRiders) {
  TinyChd fixture;
  SimulationOptions sopts;
  sopts.batch_period = 5;
  sopts.seed = 4242;
  sopts.cancellation_rate = 0.5;
  sopts.cancellation_patience = 10;
  SimulationEngine sim(fixture.engine.get(), fixture.requests, sopts);
  sim.SpawnFleet(std::max(3, fixture.spec.num_vehicles), fixture.spec.capacity);
  RunMetrics m = sim.Run("SARD", fixture.Config());
  EXPECT_GE(m.cancelled, 0);
  EXPECT_LE(m.cancelled + m.served, m.total_requests);
}

}  // namespace
}  // namespace structride
