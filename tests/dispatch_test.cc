// End-to-end dispatcher smoke and invariants on a tiny CHD run: every
// registered dispatcher completes, reports sane metrics, reproduces
// deterministically, and SARD's two knobs (angle pruning, parallel
// acceptance) change only cost/queries — never the assignment outcome.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>

#include "dispatch/common.h"
#include "dispatch/spatial_index.h"
#include "roadnet/generator.h"
#include "sim/datasets.h"
#include "sim/engine.h"
#include "sim/workload.h"
#include "util/random.h"

namespace structride {
namespace {

struct TinyChd {
  TinyChd() : spec(DatasetByName("CHD", 0.02)) {
    spec.city.rows = 16;  // shrink the city too: unit tests stay fast while
    spec.city.cols = 16;  // the preset's workload shape is kept
    net = BuildNetwork(&spec);
    engine = std::make_unique<TravelCostEngine>(net);
    requests = GenerateWorkload(net, engine.get(), spec.policy, spec.workload);
  }

  DispatchConfig Config() const {
    DispatchConfig config;
    config.vehicle_capacity = spec.capacity;
    config.grouping.max_group_size = spec.capacity;
    config.sharegraph.vehicle_capacity = spec.capacity;
    return config;
  }

  RunMetrics Run(const std::string& algorithm, const DispatchConfig& config) {
    SimulationOptions sopts;
    sopts.batch_period = 5;
    sopts.seed = 4242;
    SimulationEngine sim(engine.get(), requests, sopts);
    sim.SpawnFleet(std::max(3, spec.num_vehicles), spec.capacity);
    return sim.Run(algorithm, config);
  }

  DatasetSpec spec;
  RoadNetwork net;
  std::unique_ptr<TravelCostEngine> engine;
  std::vector<Request> requests;
};

TEST(DispatchTest, EveryDispatcherCompletesWithSaneMetrics) {
  TinyChd fixture;
  bool first = true;
  for (const std::string& name : AllDispatcherNames()) {
    RunMetrics m = fixture.Run(name, fixture.Config());
    SCOPED_TRACE(name);
    EXPECT_GE(m.service_rate, 0.0);
    EXPECT_LE(m.service_rate, 1.0);
    EXPECT_EQ(m.total_requests, static_cast<int>(fixture.requests.size()));
    EXPECT_LE(m.served, m.total_requests);
    EXPECT_TRUE(std::isfinite(m.unified_cost));
    EXPECT_GE(m.travel_cost, 0.0);
    EXPECT_NEAR(m.unified_cost, m.travel_cost + m.penalty_cost, 1e-6);
    if (first) {
      // Later runs share the fixture's warm travel-cost cache and may
      // legitimately need no new backend computations.
      EXPECT_GT(m.sp_queries, 0u);
      first = false;
    }
    EXPECT_GT(m.memory_bytes, 0u);
    EXPECT_EQ(m.cancelled, 0);
  }
}

TEST(DispatchTest, RunsAreDeterministic) {
  for (const std::string& name : {std::string("SARD"), std::string("GAS"),
                                  std::string("pruneGDP")}) {
    TinyChd a, b;
    RunMetrics ma = a.Run(name, a.Config());
    RunMetrics mb = b.Run(name, b.Config());
    SCOPED_TRACE(name);
    EXPECT_DOUBLE_EQ(ma.unified_cost, mb.unified_cost);
    EXPECT_DOUBLE_EQ(ma.service_rate, mb.service_rate);
    EXPECT_EQ(ma.served, mb.served);
  }
}

TEST(DispatchTest, AnglePruningPreservesSardOutcome) {
  // Separate fixtures so both runs see a cold travel-cost cache: the query
  // counts are then comparable and the assignments must be identical
  // because the pruned shareability graph is identical (sound pruning).
  TinyChd plain, pruned;
  RunMetrics m_plain = plain.Run("SARD", plain.Config());
  DispatchConfig config = pruned.Config();
  config.sharegraph.use_angle_pruning = true;
  RunMetrics m_pruned = pruned.Run("SARD", config);
  EXPECT_DOUBLE_EQ(m_plain.unified_cost, m_pruned.unified_cost);
  EXPECT_DOUBLE_EQ(m_plain.service_rate, m_pruned.service_rate);
  EXPECT_LE(m_pruned.sp_queries, m_plain.sp_queries);
}

TEST(DispatchTest, ParallelAcceptanceIsThreadCountInvariant) {
  TinyChd serial, parallel;
  RunMetrics m_serial = serial.Run("SARD", serial.Config());
  DispatchConfig config = parallel.Config();
  config.sard_parallel_acceptance = true;
  config.num_threads = 4;
  RunMetrics m_parallel = parallel.Run("SARD", config);
  EXPECT_DOUBLE_EQ(m_serial.unified_cost, m_parallel.unified_cost);
  EXPECT_DOUBLE_EQ(m_serial.service_rate, m_parallel.service_rate);
  EXPECT_EQ(m_serial.served, m_parallel.served);
}

// The hard determinism bar for the parallel path: same workload and seed,
// 1 vs 8 worker threads, bitwise-equal RunMetrics. Fresh fixtures mean cold
// travel-cost caches, so sp_queries compares the actual backend work.
TEST(DispatchTest, ParallelMetricsAreBitwiseEqualAcrossThreadCounts) {
  TinyChd one, eight;
  DispatchConfig c1 = one.Config();
  c1.sard_parallel_acceptance = true;
  c1.num_threads = 1;
  DispatchConfig c8 = eight.Config();
  c8.sard_parallel_acceptance = true;
  c8.num_threads = 8;
  RunMetrics m1 = one.Run("SARD", c1);
  RunMetrics m8 = eight.Run("SARD", c8);
  EXPECT_EQ(m1.served, m8.served);
  EXPECT_EQ(m1.unified_cost, m8.unified_cost);  // bitwise, not approximate
  EXPECT_EQ(m1.travel_cost, m8.travel_cost);
  EXPECT_EQ(m1.sp_queries, m8.sp_queries);
}

// The spatial index must be a pure running-time change: legacy full-sort
// scans and grid-index scans yield identical dispatch outcomes and backend
// query counts (cold caches via fresh fixtures).
TEST(DispatchTest, SpatialIndexPreservesOutcomeAndQueries) {
  for (const std::string& name :
       {std::string("SARD"), std::string("pruneGDP"),
        std::string("TicketAssign+"), std::string("DARM+DPRS")}) {
    TinyChd legacy, indexed;
    SCOPED_TRACE(name);
    DispatchConfig cl = legacy.Config();
    cl.use_spatial_index = false;
    DispatchConfig ci = indexed.Config();
    ci.use_spatial_index = true;
    RunMetrics ml = legacy.Run(name, cl);
    RunMetrics mi = indexed.Run(name, ci);
    EXPECT_EQ(ml.served, mi.served);
    EXPECT_EQ(ml.unified_cost, mi.unified_cost);
    EXPECT_EQ(ml.sp_queries, mi.sp_queries);
  }
}

// Exactness of the index itself: KNearest must reproduce the first k
// entries of the full distance sort (ties broken by vehicle index), and the
// radius query the early-breaking prefix. A third of the fleet is out of
// service (scenario downtime) — both sides of the contract must skip those
// vehicles identically.
TEST(DispatchTest, SpatialIndexMatchesFullFleetSort) {
  CityOptions copt;
  copt.rows = 12;
  copt.cols = 12;
  copt.seed = 7;
  RoadNetwork net = GenerateGridCity(copt);
  Rng rng(99);
  std::vector<Vehicle> fleet;
  for (int i = 0; i < 40; ++i) {
    NodeId node = static_cast<NodeId>(
        rng.UniformInt(0, static_cast<int64_t>(net.num_nodes()) - 1));
    fleet.emplace_back(i, node, 4);  // duplicate positions exercise ties
    if (i % 3 == 0) fleet.back().set_in_service(false);
  }
  dispatch::FleetSpatialIndex index(fleet, net);
  for (int trial = 0; trial < 30; ++trial) {
    NodeId from = static_cast<NodeId>(
        rng.UniformInt(0, static_cast<int64_t>(net.num_nodes()) - 1));
    std::vector<size_t> full = dispatch::VehiclesByDistance(fleet, net, from);
    for (size_t k : {size_t{1}, size_t{5}, size_t{16}, fleet.size(),
                     fleet.size() + 10}) {
      std::vector<size_t> got = index.KNearest(from, k);
      std::vector<size_t> want(full.begin(),
                               full.begin() + std::min(k, full.size()));
      EXPECT_EQ(got, want) << "k=" << k << " from=" << from;
    }
    for (double radius : {0.0, 2.5, 7.0, 1e9}) {
      // k = fleet size exercises the dense flat-scan path; small k the
      // grid walk with both the best-k bound and the radius cap live.
      for (size_t k : {fleet.size(), size_t{4}}) {
        std::vector<size_t> got = index.KNearestWithin(from, k, radius);
        std::vector<size_t> want;
        for (size_t vi : full) {
          if (want.size() >= k) break;
          if (net.EuclidLowerBound(fleet[vi].node(), from) > radius) break;
          want.push_back(vi);
        }
        EXPECT_EQ(got, want) << "radius=" << radius << " k=" << k
                             << " from=" << from;
      }
    }
  }
  EXPECT_TRUE(index.KNearestWithin(3, 16, -1.0).empty());
}

TEST(SimTest, ClassifyRiderPicksTheEarlierEvent) {
  constexpr double kNever = std::numeric_limits<double>::infinity();
  // Still open: neither event has happened by `now`.
  EXPECT_EQ(ClassifyRider(5, 10, kNever), RiderOutcome::kOpen);
  EXPECT_EQ(ClassifyRider(5, 10, 8), RiderOutcome::kOpen);
  // Only one event inside the batch period.
  EXPECT_EQ(ClassifyRider(11, 10, kNever), RiderOutcome::kExpired);
  EXPECT_EQ(ClassifyRider(11, 20, 10), RiderOutcome::kCancelled);
  // Both events passed in one period: the earlier one decides. The rider
  // who walked away before the deadline cancelled (the seed engine counted
  // this as expired because it checked expiry first).
  EXPECT_EQ(ClassifyRider(50, 10, 5), RiderOutcome::kCancelled);
  EXPECT_EQ(ClassifyRider(50, 10, 30), RiderOutcome::kExpired);
  // Cancellation at exactly the deadline: the rider left.
  EXPECT_EQ(ClassifyRider(50, 10, 10), RiderOutcome::kCancelled);
}

// A group every vehicle rejects must not starve: SARD retries its halves
// down to singletons within the batch. Two shareable requests form a pair
// group, but the whole fleet has capacity-1 vehicles with slack too tight
// for sequential service — only the singleton split can serve them.
TEST(DispatchTest, RejectedGroupSplitsDownToSingletons) {
  CityOptions copt;
  copt.rows = 8;
  copt.cols = 8;
  copt.seed = 21;
  RoadNetwork net = GenerateGridCity(copt);
  TravelCostEngine engine(net);

  // Parallel long trips from adjacent corners; gamma = 2, so the latest
  // pickup allows one direct trip of slack — never a full trip out and back.
  auto make_request = [&](RequestId id, NodeId s, NodeId t) {
    Request r;
    r.id = id;
    r.source = s;
    r.destination = t;
    r.release_time = 0;
    r.direct_cost = engine.Cost(s, t);
    r.deadline = 2 * r.direct_cost;
    r.latest_pickup = r.deadline - r.direct_cost;
    return r;
  };
  Request r1 = make_request(1, 0, 62);
  Request r2 = make_request(2, 1, 63);

  DispatchConfig config;
  config.vehicle_capacity = 2;  // the platform believes pairs can share...
  config.sharegraph.vehicle_capacity = 2;
  config.grouping.max_group_size = 2;

  auto run_batch = [&](bool split_fallback) {
    std::vector<Vehicle> fleet;
    fleet.emplace_back(0, r1.source, 1);  // ...but every real vehicle
    fleet.emplace_back(1, r2.source, 1);  // has a single seat
    DispatchConfig c = config;
    c.sard_split_rejected_groups = split_fallback;
    std::unique_ptr<Dispatcher> dispatcher = MakeDispatcher("SARD", c);
    DispatchContext ctx;
    ctx.now = 1;
    ctx.engine = &engine;
    ctx.fleet = &fleet;
    ctx.pending = {&r1, &r2};
    dispatcher->OnBatch(&ctx);
    return ctx.assigned.size();
  };

  // Without the fallback the pair group is proposed, rejected by both
  // vehicles, and nobody is assigned — the starvation seed.
  EXPECT_EQ(run_batch(false), 0u);
  // With it, the group splits and both riders ride solo.
  EXPECT_EQ(run_batch(true), 2u);
}

TEST(DispatchTest, CancellationFaultModelOnlyRemovesPendingRiders) {
  TinyChd fixture;
  SimulationOptions sopts;
  sopts.batch_period = 5;
  sopts.seed = 4242;
  sopts.cancellation_rate = 0.5;
  sopts.cancellation_patience = 10;
  SimulationEngine sim(fixture.engine.get(), fixture.requests, sopts);
  sim.SpawnFleet(std::max(3, fixture.spec.num_vehicles), fixture.spec.capacity);
  RunMetrics m = sim.Run("SARD", fixture.Config());
  EXPECT_GE(m.cancelled, 0);
  EXPECT_LE(m.cancelled + m.served, m.total_requests);
}

// The registry's public roster: the paper's six in table order plus the
// SARD-O alias, and every listed name actually constructs.
TEST(DispatchTest, ListDispatchersNamesEveryConstructibleDispatcher) {
  const std::vector<std::string>& names = ListDispatchers();
  const std::vector<std::string> paper_six = AllDispatcherNames();
  ASSERT_EQ(names.size(), paper_six.size() + 1);
  for (size_t i = 0; i < paper_six.size(); ++i) {
    EXPECT_EQ(names[i], paper_six[i]);
  }
  EXPECT_EQ(names.back(), "SARD-O");
  DispatchConfig config;
  for (const std::string& name : names) {
    SCOPED_TRACE(name);
    EXPECT_NE(MakeDispatcher(name, config), nullptr);
  }
  // Same vector every call: callers may hold the reference.
  EXPECT_EQ(&ListDispatchers(), &names);
}

// Spatial-index edge cases: queries over an empty fleet, an all-out-of-
// service fleet, and a fleet collapsed into one grid cell must return
// empty/filtered prefixes — never UB — and keep the prefix-of-full-sort
// contract.
TEST(DispatchTest, SpatialIndexHandlesDegenerateFleets) {
  CityOptions copt;
  copt.rows = 8;
  copt.cols = 8;
  copt.seed = 5;
  RoadNetwork net = GenerateGridCity(copt);

  // Empty fleet: every query is empty, no division by zero cells.
  std::vector<Vehicle> empty;
  dispatch::FleetSpatialIndex idx_empty(empty, net);
  EXPECT_TRUE(idx_empty.KNearest(0, 0).empty());
  EXPECT_TRUE(idx_empty.KNearest(0, 5).empty());
  EXPECT_TRUE(idx_empty.KNearestWithin(0, 5, 1e9).empty());
  size_t buf[4];
  EXPECT_EQ(idx_empty.KNearestInto(0, 4, buf), 0u);

  // Every vehicle out of service: indexed but filtered from every answer,
  // exactly like the full-sort reference.
  std::vector<Vehicle> parked;
  for (int i = 0; i < 6; ++i) {
    parked.emplace_back(i, static_cast<NodeId>(i), 4);
    parked.back().set_in_service(false);
  }
  dispatch::FleetSpatialIndex idx_parked(parked, net);
  EXPECT_TRUE(idx_parked.KNearest(0, parked.size()).empty());
  EXPECT_TRUE(dispatch::VehiclesByDistance(parked, net, 0).empty());
  EXPECT_TRUE(idx_parked.KNearestWithin(0, parked.size(), 1e9).empty());

  // Whole fleet on one node (one grid cell, zero spatial extent): ties
  // break by ascending index and k past the fleet size clamps.
  std::vector<Vehicle> stacked;
  for (int i = 0; i < 5; ++i) stacked.emplace_back(i, 3, 4);
  stacked[2].set_in_service(false);
  dispatch::FleetSpatialIndex idx_stacked(stacked, net);
  std::vector<size_t> want = {0, 1, 3, 4};  // 2 is off duty
  EXPECT_EQ(idx_stacked.KNearest(3, stacked.size() + 7), want);
  EXPECT_EQ(idx_stacked.KNearest(3, 2),
            (std::vector<size_t>{0, 1}));  // filtered prefix
  EXPECT_EQ(idx_stacked.KNearestWithin(3, stacked.size(), 0.0), want);
  EXPECT_EQ(dispatch::VehiclesByDistance(stacked, net, 3), want);
}

}  // namespace
}  // namespace structride
