// The event-core contract (DESIGN.md §6):
//  1. With no scenarios and no repositioning policy, the event-driven
//     Run() reproduces the frozen fixed-batch RunLegacy() bitwise — across
//     the three dataset presets, multiple seeds, 1 and 8 worker threads,
//     and with the fault models (cancellation, capacity variance) active.
//  2. Scenario runs are deterministic under a fixed seed.
//  3. The repositioning hook never violates capacity or deadlines (late
//     dropoffs stay impossible) and its legs are charged to travel cost.
//  4. The EventQueue pops (time, type, FIFO) — the tie discipline the
//     batch-tick equivalence rests on.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "sim/datasets.h"
#include "sim/engine.h"
#include "sim/event_queue.h"
#include "sim/scenario.h"
#include "sim/workload.h"

namespace structride {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// A preset shrunk to unit-test size: the city is cut down (like the
// dispatch tests' TinyChd) while the preset's workload shape survives.
struct TinyPreset {
  explicit TinyPreset(const std::string& name) : spec(DatasetByName(name, 0.02)) {
    const int side = name == "CHD" ? 16 : (name == "NYC" ? 18 : 14);
    spec.city.rows = side;
    spec.city.cols = side;
    net = BuildNetwork(&spec);
    engine = std::make_unique<TravelCostEngine>(net);
    requests = GenerateWorkload(net, engine.get(), spec.policy, spec.workload);
  }

  DispatchConfig Config(int threads = 1) const {
    DispatchConfig config;
    config.vehicle_capacity = spec.capacity;
    config.grouping.max_group_size = spec.capacity;
    config.sharegraph.vehicle_capacity = spec.capacity;
    if (threads > 1) {
      config.sard_parallel_acceptance = true;
      config.num_threads = threads;
    }
    return config;
  }

  SimulationOptions Options(uint64_t seed = 4242) const {
    SimulationOptions sopts;
    sopts.batch_period = 5;
    sopts.seed = seed;
    sopts.dataset = spec.name;
    return sopts;
  }

  // A fresh engine per run: the fault-model RNG advances across runs, so
  // bitwise comparisons need identical draw streams.
  std::unique_ptr<SimulationEngine> MakeEngine(const SimulationOptions& sopts) {
    auto sim = std::make_unique<SimulationEngine>(engine.get(), requests, sopts);
    sim->SpawnFleet(std::max(3, spec.num_vehicles), spec.capacity);
    return sim;
  }

  DatasetSpec spec;
  RoadNetwork net;
  std::unique_ptr<TravelCostEngine> engine;
  std::vector<Request> requests;
};

// Everything observable except instrumented memory: the incremental share
// graph (DESIGN.md §7) must reproduce the rebuild-per-batch reference on
// all of these bitwise, but its persistent builder legitimately accounts
// different bytes than per-batch throwaways.
void ExpectOutcomeEqual(const RunMetrics& a, const RunMetrics& b) {
  EXPECT_EQ(a.served, b.served);
  EXPECT_EQ(a.cancelled, b.cancelled);
  EXPECT_EQ(a.expired, b.expired);
  EXPECT_EQ(a.rejected, b.rejected);
  EXPECT_EQ(a.total_requests, b.total_requests);
  EXPECT_EQ(a.num_shards, b.num_shards);
  EXPECT_EQ(a.cross_shard_trips, b.cross_shard_trips);
  EXPECT_EQ(a.shard_load_max_over_mean, b.shard_load_max_over_mean);
  EXPECT_EQ(a.unified_cost, b.unified_cost);  // bitwise, not approximate
  EXPECT_EQ(a.travel_cost, b.travel_cost);
  EXPECT_EQ(a.penalty_cost, b.penalty_cost);
  EXPECT_EQ(a.service_rate, b.service_rate);
  EXPECT_EQ(a.sp_queries, b.sp_queries);
  EXPECT_EQ(a.late_dropoffs, b.late_dropoffs);
  EXPECT_EQ(a.pickup_wait_p50, b.pickup_wait_p50);
  EXPECT_EQ(a.pickup_wait_p99, b.pickup_wait_p99);
  EXPECT_EQ(a.mean_detour_ratio, b.mean_detour_ratio);
  EXPECT_EQ(a.repositions, b.repositions);
  EXPECT_EQ(a.reposition_cost, b.reposition_cost);
  EXPECT_EQ(a.dataset, b.dataset);
}

void ExpectBitwiseEqual(const RunMetrics& a, const RunMetrics& b) {
  ExpectOutcomeEqual(a, b);
  EXPECT_EQ(a.sharegraph_pair_checks, b.sharegraph_pair_checks);
  EXPECT_EQ(a.memory_bytes, b.memory_bytes);
}

// Contract 1: the acceptance bar of the event-core rewrite. Every preset,
// two seeds, 1 and 8 worker threads (SARD's parallel acceptance path).
// Each run gets its own fixture — a fresh, cold travel-cost cache — so
// sp_queries compares the actual backend work, not cache state.
TEST(EngineTest, EventEngineMatchesLegacyBitwise) {
  for (const std::string& ds :
       {std::string("CHD"), std::string("NYC"), std::string("Cainiao")}) {
    for (uint64_t seed : {uint64_t{4242}, uint64_t{777}}) {
      for (int threads : {1, 8}) {
        SCOPED_TRACE(ds + " seed=" + std::to_string(seed) +
                     " threads=" + std::to_string(threads));
        TinyPreset ev(ds), lg(ds);
        RunMetrics event =
            ev.MakeEngine(ev.Options(seed))->Run("SARD", ev.Config(threads));
        RunMetrics legacy = lg.MakeEngine(lg.Options(seed))
                                ->RunLegacy("SARD", lg.Config(threads));
        ExpectBitwiseEqual(event, legacy);
        EXPECT_EQ(event.dataset, ds);  // stamped by the engine, not callers
      }
    }
  }
}

// The equivalence is per-dispatcher-roster, not a SARD artifact: online
// methods (reject immediately) and batch methods (hold requests across
// rounds) replay identically too. Run twice per method: on the frozen
// reference stack (incremental share graph off — GAS/RTV rebuild per batch
// in both engines, so even instrumented memory matches bitwise) and with
// the incremental graph on, where everything except memory accounting must
// still reproduce the legacy engine.
TEST(EngineTest, EventEngineMatchesLegacyAcrossDispatcherKinds) {
  for (const std::string& algo :
       {std::string("pruneGDP"), std::string("GAS"), std::string("RTV"),
        std::string("TicketAssign+"), std::string("DARM+DPRS")}) {
    for (bool incremental : {false, true}) {
      SCOPED_TRACE(algo + (incremental ? " incremental" : " rebuild"));
      TinyPreset ev("CHD"), lg("CHD");
      DispatchConfig ev_config = ev.Config();
      ev_config.incremental_sharegraph = incremental;
      DispatchConfig lg_config = lg.Config();
      lg_config.incremental_sharegraph = false;  // RunLegacy's frozen stack
      RunMetrics event = ev.MakeEngine(ev.Options())->Run(algo, ev_config);
      RunMetrics legacy =
          lg.MakeEngine(lg.Options())->RunLegacy(algo, lg_config);
      if (incremental) {
        ExpectOutcomeEqual(event, legacy);
      } else {
        ExpectBitwiseEqual(event, legacy);
      }
    }
  }
}

// The incremental share graph's parity guarantee (DESIGN.md §7): one
// maintained graph per run — requests retired at assignment / cancellation
// / expiry events, fresh slices folded in per round — must reproduce the
// rebuild-per-batch reference on served / costs / sp_queries / service
// quality bitwise, for every graph-consuming dispatcher, preset and worker
// thread count, while never spending more exact pair checks than the
// rebuild path re-spends.
TEST(EngineTest, IncrementalShareGraphMatchesRebuildReference) {
  struct Case {
    const char* algo;
    int threads;
  };
  for (const std::string& ds :
       {std::string("CHD"), std::string("NYC"), std::string("Cainiao")}) {
    for (const Case& c : {Case{"GAS", 1}, Case{"RTV", 1}, Case{"SARD", 1},
                          Case{"SARD", 8}}) {
      SCOPED_TRACE(ds + " " + c.algo + " threads=" +
                   std::to_string(c.threads));
      TinyPreset inc(ds), ref(ds);
      DispatchConfig inc_config = inc.Config(c.threads);
      inc_config.incremental_sharegraph = true;
      DispatchConfig ref_config = ref.Config(c.threads);
      ref_config.incremental_sharegraph = false;
      RunMetrics on = inc.MakeEngine(inc.Options())->Run(c.algo, inc_config);
      RunMetrics off = ref.MakeEngine(ref.Options())->Run(c.algo, ref_config);
      ExpectOutcomeEqual(on, off);
      // The whole point: maintenance never re-checks a pair the reference
      // path re-checks every batch. (The ≥2x reduction is gated at bench
      // scale by abl_incremental_sharegraph; tiny pools here may retire
      // too fast for a fixed ratio.)
      EXPECT_LE(on.sharegraph_pair_checks, off.sharegraph_pair_checks);
      EXPECT_GT(off.sharegraph_pair_checks, 0u);
    }
  }
}

// Online dispatch mode on the incremental graph: per-request insert at
// release events, removal at assignment — same outcome as the
// rebuild-per-round reference under the mode switch.
TEST(EngineTest, IncrementalShareGraphMatchesRebuildInOnlineMode) {
  auto run_mode = [&](bool incremental) {
    TinyPreset preset("CHD");
    const double d = preset.spec.workload.duration;
    SimulationOptions sopts = preset.Options();
    auto sim = preset.MakeEngine(sopts);
    sim->AddScenario(MakeDispatchModeSwitch(0.25 * d, kInf));
    DispatchConfig config = preset.Config();
    config.incremental_sharegraph = incremental;
    return sim->Run("SARD", config);
  };
  RunMetrics on = run_mode(true);
  RunMetrics off = run_mode(false);
  ExpectOutcomeEqual(on, off);
  EXPECT_LE(on.sharegraph_pair_checks, off.sharegraph_pair_checks);
}

// Fault models ride on events now (cancellations fire at their own
// timestamps, capacities draw per run) — still bitwise against the legacy
// per-tick ClassifyRider pass.
TEST(EngineTest, EventEngineMatchesLegacyUnderFaultModels) {
  TinyPreset ev("CHD"), lg("CHD");
  auto fault_options = [](const TinyPreset& p) {
    SimulationOptions sopts = p.Options();
    sopts.cancellation_rate = 0.4;
    sopts.cancellation_patience = 15;
    sopts.capacity_sigma = 1.0;
    sopts.capacity_mean = p.spec.capacity;
    return sopts;
  };
  RunMetrics event =
      ev.MakeEngine(fault_options(ev))->Run("SARD", ev.Config());
  RunMetrics legacy =
      lg.MakeEngine(fault_options(lg))->RunLegacy("SARD", lg.Config());
  ExpectBitwiseEqual(event, legacy);
  EXPECT_GT(event.cancelled, 0);  // the fault model actually fired
}

// Contract 2: a fixed scenario stack under a fixed seed reproduces exactly
// (fresh fixture per run: cold caches make sp_queries comparable).
TEST(EngineTest, ScenarioRunsAreDeterministic) {
  auto run_once = [&]() {
    TinyPreset preset("NYC");
    const double d = preset.spec.workload.duration;
    SimulationOptions sopts = preset.Options();
    auto sim = preset.MakeEngine(sopts);
    sim->AddScenario(MakeDemandSurge(0.25 * d, 0.5 * d, 3.0));
    sim->AddScenario(MakeVehicleDowntime(0.3 * d, 0.3 * d, 0.5));
    sim->AddScenario(MakeDispatchModeSwitch(0.5 * d, kInf));
    sim->SetRepositioningPolicy(MakeGreedyCentroidRepositioning());
    return sim->Run("SARD", preset.Config());
  };
  RunMetrics a = run_once();
  RunMetrics b = run_once();
  ExpectBitwiseEqual(a, b);
  EXPECT_EQ(a.reposition_cost, b.reposition_cost);
  EXPECT_GE(a.served, 0);
  EXPECT_LE(a.served, a.total_requests);
  EXPECT_EQ(a.late_dropoffs, 0);
}

// Downtime semantics: pulling the whole fleet before anything is released
// and never restoring it means nobody is ever served — and the unified
// cost degenerates to the full penalty sum.
TEST(EngineTest, FullDowntimeServesNothing) {
  TinyPreset preset("CHD");
  SimulationOptions sopts = preset.Options();
  auto sim = preset.MakeEngine(sopts);
  sim->AddScenario(MakeVehicleDowntime(0, kInf, 1.0));
  DispatchConfig config = preset.Config();
  RunMetrics m = sim->Run("SARD", config);
  EXPECT_EQ(m.served, 0);
  EXPECT_EQ(m.travel_cost, 0);
  double full_penalty = 0;
  for (const Request& r : preset.requests) {
    full_penalty += config.penalty_coefficient * r.direct_cost;
  }
  EXPECT_DOUBLE_EQ(m.unified_cost, full_penalty);
}

// Dispatch-mode switch: with a batch period longer than every deadline, the
// pure batch engine can't serve anyone (requests expire before the first
// tick), while per-request online dispatch still can.
TEST(EngineTest, OnlineDispatchServesWhatBatchTicksMiss) {
  TinyPreset preset("CHD");
  SimulationOptions sopts = preset.Options();
  sopts.batch_period = 10 * preset.spec.workload.duration;
  RunMetrics batch =
      preset.MakeEngine(sopts)->Run("pruneGDP", preset.Config());
  EXPECT_EQ(batch.served, 0);

  auto online_sim = preset.MakeEngine(sopts);
  online_sim->AddScenario(MakeDispatchModeSwitch(0, kInf));
  RunMetrics online = online_sim->Run("pruneGDP", preset.Config());
  EXPECT_GT(online.served, 0);
}

// Contract 3: repositioning must never break promises. Late dropoffs stay
// impossible (CommitSchedule still gates every commit), completed legs are
// counted and charged into travel cost, and the run stays deterministic.
TEST(EngineTest, RepositioningKeepsInvariants) {
  auto run_with_policy = [&](bool enabled) {
    TinyPreset preset("Cainiao");
    SimulationOptions sopts = preset.Options();
    auto sim = preset.MakeEngine(sopts);
    if (enabled) {
      sim->SetRepositioningPolicy(MakeGreedyCentroidRepositioning());
    }
    return sim->Run("SARD", preset.Config());
  };
  RunMetrics off = run_with_policy(false);
  RunMetrics on = run_with_policy(true);
  EXPECT_EQ(off.repositions, 0);
  EXPECT_EQ(off.reposition_cost, 0);
  EXPECT_EQ(on.late_dropoffs, 0);
  EXPECT_GE(on.reposition_cost, 0);
  if (on.repositions > 0) {
    EXPECT_GT(on.reposition_cost, 0);
  }
  // Relocation miles are inside travel_cost, so unified cost accounts them.
  EXPECT_GE(on.travel_cost, on.reposition_cost);
  RunMetrics again = run_with_policy(true);
  ExpectBitwiseEqual(on, again);
}

// Out-of-service vehicles leave the candidate market in both scan paths;
// the KNearest == prefix-of-full-sort contract must hold on the filtered
// fleet too (exercised end-to-end by the downtime scenario above, pinned
// here at the engine's default thread count via a spot check on metrics).
TEST(EngineTest, DowntimeIsThreadCountInvariant) {
  auto run_threads = [&](int threads) {
    TinyPreset preset("CHD");
    const double d = preset.spec.workload.duration;
    SimulationOptions sopts = preset.Options();
    auto sim = preset.MakeEngine(sopts);
    sim->AddScenario(MakeVehicleDowntime(0.2 * d, 0.4 * d, 0.5));
    return sim->Run("SARD", preset.Config(threads));
  };
  RunMetrics one = run_threads(1);
  RunMetrics eight = run_threads(8);
  ExpectBitwiseEqual(one, eight);
}

// An unreachable reposition target (disconnected component, Cost = +inf)
// must be refused outright — an infinite leg would never complete mid-run
// and would charge +inf into travel_cost at the end-of-run drain.
TEST(EngineTest, RepositionToUnreachableTargetIsRefused) {
  RoadNetwork net;
  net.AddNode({0, 0});
  net.AddNode({1, 0});
  net.AddNode({5, 0});  // own component: no edges to it
  net.AddEdge(0, 1, 1.0);
  TravelCostEngine engine(net);
  Vehicle v(0, 0, 4);
  EXPECT_FALSE(v.BeginReposition(2, 0, &engine));
  EXPECT_FALSE(v.repositioning());
  EXPECT_TRUE(v.BeginReposition(1, 0, &engine));
  EXPECT_TRUE(v.repositioning());
}

namespace {

// Records which vehicles are in service at a chosen time.
class FleetProbeScenario : public Scenario {
 public:
  FleetProbeScenario(double when, std::vector<bool>* out)
      : when_(when), out_(out) {}
  const char* name() const override { return "fleet_probe"; }
  void OnInstall(ScenarioHost* host) override { host->ScheduleAt(when_, 0); }
  void OnEvent(ScenarioHost* host, int64_t) override {
    out_->clear();
    for (const Vehicle& v : host->fleet()) out_->push_back(v.in_service());
  }

 private:
  double when_;
  std::vector<bool>* out_;
};

}  // namespace

// Overlapping downtime windows: each scenario must restore the vehicles it
// pulled, never another scenario's. A pulls vehicle 0 at t=10 and restores
// at t=40; B pulls vehicle 1 at t=20 permanently. At t=100 vehicle 0 must
// be back and vehicle 1 still out (a shared LIFO would swap them).
TEST(EngineTest, OverlappingDowntimesRestoreTheirOwnVehicles) {
  TinyPreset preset("CHD");
  SimulationOptions sopts;
  sopts.batch_period = 200;  // first tick after every scenario event
  sopts.seed = 4242;
  SimulationEngine sim(preset.engine.get(), {}, sopts);  // empty stream
  sim.SpawnFleet(4, 2);
  sim.AddScenario(MakeVehicleDowntime(10, 30, 0.01));   // pulls 1, restores
  sim.AddScenario(MakeVehicleDowntime(20, kInf, 0.01));  // pulls 1, keeps it
  std::vector<bool> in_service;
  sim.AddScenario(std::make_unique<FleetProbeScenario>(100, &in_service));
  DispatchConfig config;
  sim.Run("SARD", config);
  ASSERT_EQ(in_service.size(), 4u);
  EXPECT_TRUE(in_service[0]);   // pulled by A, restored by A
  EXPECT_FALSE(in_service[1]);  // pulled by B, still off duty
  EXPECT_TRUE(in_service[2]);
  EXPECT_TRUE(in_service[3]);
}

// Contract 4: the queue's tie discipline. Same time: scenario < release <
// stop completion < vehicle migration < tick < cancellation < expiry;
// within one bucket, FIFO. (Migration after the stops that moved the
// vehicle, before the tick that dispatches over settled residency.)
TEST(EventQueueTest, PopsTimeThenTypeThenFifo) {
  EventQueue q;
  q.Push({5, EventType::kRiderExpiry, 0, 0});
  q.Push({5, EventType::kBatchTick, 1, 0});
  q.Push({5, EventType::kRequestRelease, 2, 0});
  q.Push({5, EventType::kRequestRelease, 3, 0});
  q.Push({5, EventType::kRiderCancellation, 4, 0});
  q.Push({5, EventType::kStopCompletion, 5, 0});
  q.Push({5, EventType::kScenario, 6, 0});
  q.Push({5, EventType::kVehicleMigration, 8, 0});
  q.Push({1, EventType::kRiderExpiry, 7, 0});

  std::vector<int64_t> got;
  while (!q.empty()) got.push_back(q.Pop().a);
  EXPECT_EQ(got, (std::vector<int64_t>{7, 6, 2, 3, 5, 8, 1, 4, 0}));
}

// A state change scheduled at exactly a release's timestamp covers that
// release: the mode switch at T fires before the release at T, so the
// rider gets an online round even when batch ticks alone would be too late.
TEST(EngineTest2, ModeSwitchCoversSameTimeRelease) {
  TinyPreset preset("CHD");
  Request r;
  r.id = 0;
  r.source = 0;
  r.destination = static_cast<NodeId>(preset.net.num_nodes() - 1);
  r.release_time = 3;
  r.direct_cost = preset.engine->Cost(r.source, r.destination);
  r.deadline = r.release_time + 2 * r.direct_cost;
  r.latest_pickup = r.deadline - r.direct_cost;

  SimulationOptions sopts;
  sopts.batch_period = 1e6;  // ticks alone would let the request expire
  sopts.seed = 4242;
  SimulationEngine sim(preset.engine.get(), {r}, sopts);
  sim.SpawnFleet(3, 2);
  sim.AddScenario(MakeDispatchModeSwitch(r.release_time, kInf));
  DispatchConfig config;
  RunMetrics m = sim.Run("pruneGDP", config);
  EXPECT_EQ(m.served, 1);
}

// Property test: any event stream pops in exactly the order a stable sort
// on (time, type) produces — FIFO inside every (time, type) bucket. Times
// are drawn from a handful of discrete values so equal-timestamp ties are
// dense (the regime the batch-tick equivalence depends on), and each
// event's payload is its push index so FIFO violations are visible.
TEST(EventQueueTest, RandomStreamsMatchStableSortReference) {
  Rng rng(20260728);
  constexpr EventType kTypes[] = {
      EventType::kScenario,         EventType::kRequestRelease,
      EventType::kStopCompletion,   EventType::kVehicleMigration,
      EventType::kBatchTick,        EventType::kRiderCancellation,
      EventType::kRiderExpiry,
  };
  for (int trial = 0; trial < 50; ++trial) {
    const int n = 1 + static_cast<int>(rng.UniformInt(0, 199));
    // Few distinct times (sometimes just one): maximal tie pressure.
    const int distinct_times = 1 + static_cast<int>(rng.UniformInt(0, 7));
    std::vector<Event> pushed;
    EventQueue q;
    for (int i = 0; i < n; ++i) {
      Event e;
      e.time = static_cast<double>(rng.UniformInt(0, distinct_times - 1));
      e.type = kTypes[rng.UniformInt(0, 6)];
      e.a = i;  // push index: the FIFO witness
      q.Push(e);
      pushed.push_back(e);
    }
    std::stable_sort(pushed.begin(), pushed.end(),
                     [](const Event& x, const Event& y) {
                       if (x.time != y.time) return x.time < y.time;
                       return static_cast<int>(x.type) <
                              static_cast<int>(y.type);
                     });
    for (int i = 0; i < n; ++i) {
      ASSERT_FALSE(q.empty());
      Event got = q.Pop();
      EXPECT_EQ(got.time, pushed[static_cast<size_t>(i)].time)
          << "trial " << trial << " pop " << i;
      EXPECT_EQ(static_cast<int>(got.type),
                static_cast<int>(pushed[static_cast<size_t>(i)].type))
          << "trial " << trial << " pop " << i;
      ASSERT_EQ(got.a, pushed[static_cast<size_t>(i)].a)
          << "trial " << trial << " pop " << i;
    }
    EXPECT_TRUE(q.empty());
  }
}

// Same property under interleaved push/pop: popping a prefix mid-stream
// never reorders what remains relative to the stable-sort reference of the
// whole stream (the popped prefix is always a prefix of that reference).
TEST(EventQueueTest, InterleavedRandomStreamsStayStable) {
  Rng rng(777);
  for (int trial = 0; trial < 20; ++trial) {
    EventQueue q;
    std::vector<Event> alive;  // events currently in the queue
    for (int step = 0; step < 300; ++step) {
      if (q.empty() || rng.Uniform(0, 1) < 0.6) {
        Event e;
        e.time = static_cast<double>(rng.UniformInt(0, 3));
        e.type = static_cast<EventType>(rng.UniformInt(0, 6));
        e.a = step;
        q.Push(e);
        alive.push_back(e);
      } else {
        // The popped event must be the stable-sort minimum of the alive
        // set; remove the first matching element (FIFO) from the model.
        Event got = q.Pop();
        auto best = alive.begin();
        for (auto it = alive.begin(); it != alive.end(); ++it) {
          if (it->time < best->time ||
              (it->time == best->time &&
               static_cast<int>(it->type) < static_cast<int>(best->type))) {
            best = it;
          }
        }
        ASSERT_EQ(got.a, best->a) << "trial " << trial << " step " << step;
        alive.erase(best);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Scenario edge cases: extreme but legal configurations must terminate
// cleanly with internally consistent RunMetrics.
// ---------------------------------------------------------------------------

void ExpectConsistentMetrics(const RunMetrics& m) {
  EXPECT_GE(m.served, 0);
  EXPECT_GE(m.cancelled, 0);
  EXPECT_LE(m.served + m.cancelled, m.total_requests);
  EXPECT_EQ(m.late_dropoffs, 0);
  EXPECT_GE(m.travel_cost, 0);
  EXPECT_GE(m.penalty_cost, 0);
  EXPECT_DOUBLE_EQ(m.unified_cost, m.travel_cost + m.penalty_cost);
  const double expect_rate =
      m.total_requests == 0
          ? 0
          : static_cast<double>(m.served) / m.total_requests;
  EXPECT_DOUBLE_EQ(m.service_rate, expect_rate);
}

// 100% of the fleet pulled mid-run and never restored: vehicles finish
// committed stops, every still-open rider expires, and the engine must
// still terminate with the books balanced (served riders keep their travel
// cost, everyone else is penalized).
TEST(ScenarioEdgeTest, FullFleetPullMidRunTerminates) {
  TinyPreset preset("CHD");
  const double d = preset.spec.workload.duration;
  auto sim = preset.MakeEngine(preset.Options());
  sim->AddScenario(MakeVehicleDowntime(0.3 * d, kInf, 1.0));
  RunMetrics m = sim->Run("SARD", preset.Config());
  ExpectConsistentMetrics(m);
  EXPECT_LT(m.served, m.total_requests);  // the pull really cut service
}

// A surge window compressed to a single instant (factor = +inf): every
// release in the window lands on exactly the window start. The release
// burst shares one timestamp — the queue's FIFO tie discipline keeps the
// stored order — and the run must complete with consistent metrics.
TEST(ScenarioEdgeTest, SurgeCompressedToSingleInstant) {
  // Fresh preset per run: a shared travel-cost cache would warm up and
  // make the second run's sp_queries incomparable.
  auto run_once = [&]() {
    TinyPreset preset("NYC");
    const double d = preset.spec.workload.duration;
    auto sim = preset.MakeEngine(preset.Options());
    sim->AddScenario(MakeDemandSurge(0.25 * d, 0.75 * d, kInf));
    RunMetrics m = sim->Run("SARD", preset.Config());
    EXPECT_EQ(m.total_requests, static_cast<int>(preset.requests.size()));
    return m;
  };
  RunMetrics m = run_once();
  ExpectConsistentMetrics(m);
  // Determinism under the degenerate retiming.
  ExpectBitwiseEqual(m, run_once());
}

// Online mode over an empty workload: no releases ever fire, so the run
// must end at the first batch tick with all-zero books instead of idling
// forever waiting for a request.
TEST(ScenarioEdgeTest, OnlineModeWithEmptyWorkloadTerminates) {
  TinyPreset preset("CHD");
  SimulationOptions sopts = preset.Options();
  SimulationEngine sim(preset.engine.get(), {}, sopts);
  sim.SpawnFleet(3, preset.spec.capacity);
  sim.AddScenario(MakeDispatchModeSwitch(0, kInf));
  RunMetrics m = sim.Run("SARD", preset.Config());
  ExpectConsistentMetrics(m);
  EXPECT_EQ(m.total_requests, 0);
  EXPECT_EQ(m.served, 0);
  EXPECT_EQ(m.unified_cost, 0);
  EXPECT_EQ(m.sharegraph_pair_checks, 0u);
}

TEST(EventQueueTest, InterleavedPushPopKeepsHeapOrder) {
  EventQueue q;
  for (int i = 0; i < 50; ++i) {
    q.Push({static_cast<double>((i * 37) % 13), EventType::kBatchTick, i, 0});
    if (i % 3 == 2) q.Pop();
  }
  double last = -1;
  while (!q.empty()) {
    double t = q.Top().time;
    EXPECT_GE(t, last);
    last = t;
    q.Pop();
  }
}

}  // namespace
}  // namespace structride
