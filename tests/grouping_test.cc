// Scheduling primitives: CheckSchedule semantics, BestInsertion optimality
// (pruned == exhaustive, and matches the kinetic-tree optimum for the cases
// where linear insertion is exact), and the grouping enumerator's clique /
// capacity invariants.

#include <gtest/gtest.h>

#include <limits>

#include "core/insertion.h"
#include "core/kinetic_tree.h"
#include "group/grouping.h"
#include "roadnet/generator.h"
#include "sharegraph/builder.h"
#include "sim/workload.h"

namespace structride {
namespace {

struct GroupingFixture : public ::testing::Test {
  GroupingFixture() {
    CityOptions opt;
    opt.rows = 12;
    opt.cols = 12;
    opt.seed = 41;
    net = GenerateGridCity(opt);
    engine = std::make_unique<TravelCostEngine>(net);
    DeadlinePolicy policy;
    policy.gamma = 1.8;
    WorkloadOptions wopts;
    wopts.num_requests = 60;
    wopts.duration = 60;
    wopts.seed = 11;
    requests = GenerateWorkload(net, engine.get(), policy, wopts);
  }
  RoadNetwork net;
  std::unique_ptr<TravelCostEngine> engine;
  std::vector<Request> requests;
};

TEST_F(GroupingFixture, CheckScheduleEnforcesDeadlinesAndCapacity) {
  const Request& r = requests[0];
  RouteState state;
  state.start = r.source;
  state.start_time = r.release_time;
  state.capacity = 1;
  std::vector<Stop> ok = {PickupStop(r), DropoffStop(r)};
  auto [feasible, cost] = CheckSchedule(state, ok, engine.get());
  EXPECT_TRUE(feasible);
  EXPECT_NEAR(cost, r.direct_cost, 1e-9);

  // Starting after the latest pickup breaks the pickup deadline.
  state.start_time = r.latest_pickup + 1;
  EXPECT_FALSE(CheckSchedule(state, ok, engine.get()).first);

  // Zero-capacity vehicle cannot pick anyone up.
  state.start_time = r.release_time;
  state.capacity = 0;
  EXPECT_FALSE(CheckSchedule(state, ok, engine.get()).first);

  // The lower-bound walk is never more pessimistic than the real one.
  state.capacity = 1;
  auto [lb_ok, lb_cost] = CheckScheduleLowerBound(state, ok, engine.get());
  EXPECT_TRUE(lb_ok);
  EXPECT_LE(lb_cost, cost + 1e-9);
}

TEST_F(GroupingFixture, PrunedInsertionMatchesExhaustive) {
  RouteState state;
  state.start = requests[0].source;
  state.start_time = 0;
  state.capacity = 6;
  Schedule schedule;
  int compared = 0;
  for (size_t i = 0; i + 1 < 12; ++i) {
    const Request& r = requests[i];
    InsertionOptions pruned{true};
    InsertionOptions exhaustive{false};
    InsertionCandidate a = BestInsertion(state, schedule, r, engine.get(), pruned);
    InsertionCandidate b =
        BestInsertion(state, schedule, r, engine.get(), exhaustive);
    EXPECT_EQ(a.feasible, b.feasible);
    if (a.feasible) {
      EXPECT_NEAR(a.delta_cost, b.delta_cost, 1e-9);
      schedule = ApplyInsertion(schedule, r, a);
      ++compared;
    }
  }
  EXPECT_GT(compared, 2);
}

TEST_F(GroupingFixture, KineticTreeNeverWorseThanLinearInsertion) {
  // Seed from pairs the shareability graph certifies as jointly serveable,
  // so the comparison is guaranteed to have material to work with.
  ShareGraphBuilderOptions bopts;
  ShareGraphBuilder builder(engine.get(), bopts);
  builder.AddBatch(requests);

  // A shareability edge certifies a joint order starting at one of the two
  // pickups; try both starts and require at least one to carry through.
  auto attempt = [&](const Request& first, const Request& second) {
    RouteState state;
    state.start = first.source;
    state.start_time = first.release_time;
    state.capacity = 4;

    KineticTree tree(state);
    if (!tree.Insert(first, engine.get()) ||
        !tree.Insert(second, engine.get())) {
      return false;
    }
    Schedule schedule;
    InsertionCandidate ins_a = BestInsertion(state, schedule, first, engine.get());
    EXPECT_TRUE(ins_a.feasible);
    if (!ins_a.feasible) return false;
    schedule = ApplyInsertion(schedule, first, ins_a);
    InsertionCandidate ins_b =
        BestInsertion(state, schedule, second, engine.get());
    // The tree's orders are a superset of linear insertion's, so linear must
    // succeed whenever the tree did from this start.
    EXPECT_TRUE(ins_b.feasible);
    if (!ins_b.feasible) return false;

    double optimal = tree.BestCost(engine.get());
    EXPECT_GT(tree.NumSchedules(), 0u);
    EXPECT_LE(optimal, ins_b.total_cost + 1e-6);
    return true;
  };

  int checked = 0;
  for (RequestId a : builder.graph().Nodes()) {
    if (checked >= 8) break;
    for (RequestId b : builder.graph().Neighbors(a)) {
      if (b <= a) continue;
      const Request& ra = builder.request(a);
      const Request& rb = builder.request(b);
      EXPECT_TRUE(attempt(ra, rb) || attempt(rb, ra))
          << "edge (" << a << "," << b << ") unusable from either start";
      ++checked;
      break;
    }
  }
  EXPECT_GT(checked, 0);
}

TEST_F(GroupingFixture, EnumeratedGroupsAreFeasibleCliques) {
  ShareGraphBuilderOptions bopts;
  bopts.vehicle_capacity = 3;
  ShareGraphBuilder builder(engine.get(), bopts);
  builder.AddBatch(requests);

  RouteState state;
  state.start = requests[0].source;
  state.start_time = 0;
  state.capacity = 3;
  GroupingOptions gopts;
  gopts.max_group_size = 3;
  for (auto policy : {InsertionOrderPolicy::kByShareability,
                      InsertionOrderPolicy::kBestOfAllParents}) {
    gopts.insertion_order = policy;
    GroupingResult res = EnumerateGroups(state, Schedule(), requests,
                                         &builder.graph(), engine.get(), gopts);
    EXPECT_FALSE(res.groups.empty());
    for (const CandidateGroup& g : res.groups) {
      EXPECT_LE(g.members.size(), 3u);
      EXPECT_EQ(g.schedule.size(), 2 * g.members.size());
      for (size_t i = 0; i < g.members.size(); ++i) {
        for (size_t j = i + 1; j < g.members.size(); ++j) {
          EXPECT_TRUE(builder.graph().HasEdge(g.members[i], g.members[j]));
        }
      }
      auto [ok, cost] = CheckSchedule(state, g.schedule.stops(), engine.get());
      EXPECT_TRUE(ok);
      EXPECT_NEAR(cost, g.delta_cost, 1e-6);  // empty committed schedule
    }
  }
}

TEST_F(GroupingFixture, TryInsertAndCommitUpdatesVehicle) {
  Vehicle vehicle(0, requests[0].source, 4);
  double delta =
      TryInsertAndCommit(&vehicle, requests[0], /*now=*/0, engine.get());
  ASSERT_LT(delta, std::numeric_limits<double>::infinity());
  EXPECT_EQ(vehicle.schedule().size(), 2u);
  vehicle.AdvanceTo(std::numeric_limits<double>::infinity(), nullptr);
  EXPECT_TRUE(vehicle.idle());
  EXPECT_NEAR(vehicle.total_travel_cost(), requests[0].direct_cost, 1e-9);
}

}  // namespace
}  // namespace structride
