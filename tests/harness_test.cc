// The bench harness's JSON emission: every string value (dataset, bench,
// series, point names) flows through JsonEscape before landing in
// BENCH_*.json, so one quote or backslash in a name must never corrupt the
// file.

#include <gtest/gtest.h>

#include <string>

#include "bench/harness.h"

namespace structride {
namespace bench {
namespace {

TEST(JsonEscapeTest, PassesPlainStringsThrough) {
  EXPECT_EQ(JsonEscape(""), "");
  EXPECT_EQ(JsonEscape("CHD baseline"), "CHD baseline");
  EXPECT_EQ(JsonEscape("abl_scenarios-0.25x"), "abl_scenarios-0.25x");
}

TEST(JsonEscapeTest, EscapesQuotesAndBackslashes) {
  EXPECT_EQ(JsonEscape("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("\\\""), "\\\\\\\"");
}

TEST(JsonEscapeTest, EscapesNamedControls) {
  EXPECT_EQ(JsonEscape("line1\nline2"), "line1\\nline2");
  EXPECT_EQ(JsonEscape("tab\there"), "tab\\there");
  EXPECT_EQ(JsonEscape("cr\rlf\n"), "cr\\rlf\\n");
  EXPECT_EQ(JsonEscape("\b\f"), "\\b\\f");
}

TEST(JsonEscapeTest, EscapesOtherControlBytesAsUnicode) {
  EXPECT_EQ(JsonEscape(std::string(1, '\x01')), "\\u0001");
  EXPECT_EQ(JsonEscape(std::string(1, '\x1f')), "\\u001f");
  // 0x20 (space) and above pass through.
  EXPECT_EQ(JsonEscape(" ~"), " ~");
}

TEST(JsonEscapeTest, KeepsUtf8MultibyteSequencesIntact) {
  // Bytes >= 0x80 are not control characters; a UTF-8 dataset name must
  // survive byte-for-byte.
  EXPECT_EQ(JsonEscape("Chéngdū"), "Chéngdū");
}

}  // namespace
}  // namespace bench
}  // namespace structride
