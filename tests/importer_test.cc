// Real-graph import: DIMACS / OSM-edge-list parsers, their edge cases
// (comments, 1-based ids, duplicate/self/out-of-order arcs, CRLF, declared
// count mismatches), the import normalizations (admissibility rescale,
// largest-component restriction) and the bundled fixture.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>

#include "roadnet/astar.h"
#include "roadnet/dijkstra.h"
#include "roadnet/importer.h"

namespace structride {
namespace {

std::string DataPath(const std::string& name) {
  return std::string(STRUCTRIDE_TEST_DATA_DIR) + "/" + name;
}

std::string WriteTemp(const std::string& name, const std::string& content) {
  std::string path = testing::TempDir() + name;
  std::ofstream out(path, std::ios::binary);
  out << content;
  return path;
}

// The importer's admissibility contract: every arc cost dominates the
// Euclidean distance between its endpoints.
void ExpectAdmissible(const RoadNetwork& net) {
  for (size_t v = 0; v < net.num_nodes(); ++v) {
    for (const RoadNetwork::Arc& arc : net.arcs(static_cast<NodeId>(v))) {
      EXPECT_GE(arc.cost,
                net.EuclidLowerBound(static_cast<NodeId>(v), arc.to) - 1e-9);
    }
  }
}

TEST(ImporterTest, BundledFixtureImports) {
  RoadNetwork net;
  ImportStats stats;
  std::string error;
  ASSERT_TRUE(ImportDimacs(DataPath("mini.gr"), DataPath("mini.co"), {}, &net,
                           &stats, &error))
      << error;
  EXPECT_EQ(stats.file_nodes, 484u);
  EXPECT_EQ(stats.file_arcs, 1816u);
  // Every arc is emitted in both directions; the reverse folds as duplicate.
  EXPECT_EQ(stats.duplicate_arcs, 908u);
  EXPECT_GE(stats.kept_nodes, 450u);
  EXPECT_GE(stats.kept_edges, 850u);
  EXPECT_EQ(net.num_nodes(), stats.kept_nodes);
  EXPECT_EQ(net.num_edges(), stats.kept_edges);
  ExpectAdmissible(net);
  // The fixture is usable by admissible searches out of the box.
  std::vector<double> ref = DijkstraAll(net, 0);
  NodeId far = static_cast<NodeId>(net.num_nodes() - 1);
  EXPECT_NEAR(AStarCost(net, 0, far), ref[static_cast<size_t>(far)], 1e-6);
}

TEST(ImporterTest, DimacsCommentsCrlfAndOutOfOrderArcs) {
  // CRLF endings everywhere, comments interleaved, arcs in scrambled order.
  std::string gr = WriteTemp(
      "crlf.gr",
      "c leading comment\r\n"
      "p sp 3 4\r\n"
      "c mid comment\r\n"
      "a 2 3 5\r\n"
      "a 1 2 4\r\n"
      "c another\r\n"
      "a 3 2 5\r\n"
      "a 2 1 4\r\n");
  std::string co = WriteTemp(
      "crlf.co",
      "c coords\r\n"
      "p aux sp co 3\r\n"
      "v 3 2 0\r\n"
      "v 1 0 0\r\n"
      "v 2 1 0\r\n");
  RoadNetwork net;
  ImportStats stats;
  std::string error;
  ASSERT_TRUE(ImportDimacs(gr, co, {}, &net, &stats, &error)) << error;
  EXPECT_EQ(net.num_nodes(), 3u);
  EXPECT_EQ(net.num_edges(), 2u);
  EXPECT_EQ(stats.duplicate_arcs, 2u);
  // 1-based file ids map to 0-based nodes: 1-2 cost 4, 2-3 cost 5.
  std::vector<double> ref = DijkstraAll(net, 0);
  EXPECT_DOUBLE_EQ(ref[1], 4);
  EXPECT_DOUBLE_EQ(ref[2], 9);
}

TEST(ImporterTest, DimacsFoldsDuplicatesKeepingCheapestAndDropsSelfArcs) {
  std::string gr = WriteTemp("dup.gr",
                             "p sp 2 4\n"
                             "a 1 2 9\n"
                             "a 2 1 3\n"
                             "a 1 1 1\n"
                             "a 1 2 7\n");
  std::string co = WriteTemp("dup.co",
                             "p aux sp co 2\n"
                             "v 1 0 0\n"
                             "v 2 1 0\n");
  RoadNetwork net;
  ImportStats stats;
  std::string error;
  ASSERT_TRUE(ImportDimacs(gr, co, {}, &net, &stats, &error)) << error;
  EXPECT_EQ(stats.self_arcs, 1u);
  EXPECT_EQ(stats.duplicate_arcs, 2u);
  EXPECT_EQ(net.num_edges(), 1u);
  EXPECT_DOUBLE_EQ(net.arcs(0)[0].cost, 3);  // the cheapest of 9, 3, 7
}

TEST(ImporterTest, DimacsRejectsMalformedInput) {
  std::string co = WriteTemp("ok.co",
                             "p aux sp co 2\n"
                             "v 1 0 0\n"
                             "v 2 1 0\n");
  RoadNetwork net;
  ImportStats stats;
  std::string error;

  // Arc before the problem line.
  std::string bad1 = WriteTemp("bad1.gr", "a 1 2 3\np sp 2 1\n");
  EXPECT_FALSE(ImportDimacs(bad1, co, {}, &net, &stats, &error));
  EXPECT_NE(error.find("problem line"), std::string::npos) << error;

  // Declared arc count mismatches the body.
  std::string bad2 = WriteTemp("bad2.gr", "p sp 2 3\na 1 2 3\n");
  EXPECT_FALSE(ImportDimacs(bad2, co, {}, &net, &stats, &error));
  EXPECT_NE(error.find("declared 3 arcs"), std::string::npos) << error;

  // 1-based ids: 0 and n+1 are both out of range.
  std::string bad3 = WriteTemp("bad3.gr", "p sp 2 1\na 0 2 3\n");
  EXPECT_FALSE(ImportDimacs(bad3, co, {}, &net, &stats, &error));
  EXPECT_NE(error.find("out of range"), std::string::npos) << error;
  std::string bad4 = WriteTemp("bad4.gr", "p sp 2 1\na 1 3 3\n");
  EXPECT_FALSE(ImportDimacs(bad4, co, {}, &net, &stats, &error));
  EXPECT_NE(error.find("out of range"), std::string::npos) << error;

  // Negative cost, garbage line, duplicate problem line.
  std::string bad5 = WriteTemp("bad5.gr", "p sp 2 1\na 1 2 -3\n");
  EXPECT_FALSE(ImportDimacs(bad5, co, {}, &net, &stats, &error));
  EXPECT_NE(error.find("negative"), std::string::npos) << error;
  std::string bad6 = WriteTemp("bad6.gr", "p sp 2 1\nx 1 2 3\n");
  EXPECT_FALSE(ImportDimacs(bad6, co, {}, &net, &stats, &error));
  EXPECT_NE(error.find("unrecognized"), std::string::npos) << error;
  std::string bad7 = WriteTemp("bad7.gr", "p sp 2 1\np sp 2 1\na 1 2 3\n");
  EXPECT_FALSE(ImportDimacs(bad7, co, {}, &net, &stats, &error));
  EXPECT_NE(error.find("duplicate problem line"), std::string::npos) << error;
}

TEST(ImporterTest, DimacsRejectsMalformedCoordinates) {
  std::string gr = WriteTemp("cook.gr", "p sp 2 1\na 1 2 3\n");
  RoadNetwork net;
  ImportStats stats;
  std::string error;

  std::string co1 = WriteTemp("co1.co", "p aux sp co 2\nv 1 0 0\n");
  EXPECT_FALSE(ImportDimacs(gr, co1, {}, &net, &stats, &error));
  EXPECT_NE(error.find("no coordinate"), std::string::npos) << error;

  std::string co2 =
      WriteTemp("co2.co", "p aux sp co 2\nv 1 0 0\nv 1 1 0\nv 2 1 0\n");
  EXPECT_FALSE(ImportDimacs(gr, co2, {}, &net, &stats, &error));
  EXPECT_NE(error.find("duplicate coordinate"), std::string::npos) << error;

  std::string co3 = WriteTemp("co3.co", "p aux sp co 5\nv 1 0 0\nv 2 1 0\n");
  EXPECT_FALSE(ImportDimacs(gr, co3, {}, &net, &stats, &error));
  EXPECT_NE(error.find("mismatches"), std::string::npos) << error;

  std::string co4 = WriteTemp("co4.co", "v 1 0 0\nv 2 1 0\n");
  EXPECT_FALSE(ImportDimacs(gr, co4, {}, &net, &stats, &error));
  EXPECT_NE(error.find("missing"), std::string::npos) << error;
}

TEST(ImporterTest, AdmissibilityRescaleShrinksOversizedCoordinates) {
  // Coordinates in "meters" but costs in "minutes": euclid >> cost. Without
  // the rescale every lower bound would be inadmissible.
  std::string gr = WriteTemp("scale.gr",
                             "p sp 3 4\n"
                             "a 1 2 2\n"
                             "a 2 1 2\n"
                             "a 2 3 3\n"
                             "a 3 2 3\n");
  std::string co = WriteTemp("scale.co",
                             "p aux sp co 3\n"
                             "v 1 0 0\n"
                             "v 2 1000 0\n"
                             "v 3 1000 1500\n");
  RoadNetwork net;
  ImportStats stats;
  std::string error;
  ASSERT_TRUE(ImportDimacs(gr, co, {}, &net, &stats, &error)) << error;
  EXPECT_LT(stats.position_scale, 1.0);
  ExpectAdmissible(net);
  // Costs are untouched; only positions shrink.
  std::vector<double> ref = DijkstraAll(net, 0);
  EXPECT_DOUBLE_EQ(ref[2], 5);
  // The rescale can be turned off.
  ImportOptions raw;
  raw.scale_positions_to_admissible = false;
  ASSERT_TRUE(ImportDimacs(gr, co, raw, &net, &stats, &error)) << error;
  EXPECT_DOUBLE_EQ(stats.position_scale, 1.0);
  EXPECT_DOUBLE_EQ(net.position(1).x, 1000);
}

TEST(ImporterTest, LargestComponentRestrictionDropsFragments) {
  // 4 nodes in the main component, a 2-node islet, one isolated node.
  std::string osm = WriteTemp("frag.osm",
                              "# fragmented extract\n"
                              "n 10 0 0\n"
                              "n 20 1 0\n"
                              "n 30 2 0\n"
                              "n 40 3 0\n"
                              "n 50 100 100\n"
                              "n 60 101 100\n"
                              "n 70 200 200\n"
                              "e 10 20 1.5\n"
                              "e 20 30 1.5\n"
                              "e 30 40 1.5\n"
                              "e 50 60 1.5\n");
  RoadNetwork net;
  ImportStats stats;
  std::string error;
  ASSERT_TRUE(ImportOsmEdgeList(osm, {}, &net, &stats, &error)) << error;
  EXPECT_EQ(stats.file_nodes, 7u);
  EXPECT_EQ(stats.dropped_component_nodes, 3u);
  EXPECT_EQ(net.num_nodes(), 4u);
  EXPECT_EQ(net.num_edges(), 3u);
  std::vector<double> ref = DijkstraAll(net, 0);
  for (double d : ref) EXPECT_TRUE(std::isfinite(d));  // fully connected

  ImportOptions keep_all;
  keep_all.restrict_to_largest_component = false;
  ASSERT_TRUE(ImportOsmEdgeList(osm, keep_all, &net, &stats, &error)) << error;
  EXPECT_EQ(net.num_nodes(), 7u);
}

TEST(ImporterTest, OsmEdgeListRejectsMalformedInput) {
  RoadNetwork net;
  ImportStats stats;
  std::string error;

  std::string bad1 = WriteTemp("o1.osm", "n 1 0 0\nn 1 1 0\n");
  EXPECT_FALSE(ImportOsmEdgeList(bad1, {}, &net, &stats, &error));
  EXPECT_NE(error.find("duplicate node id"), std::string::npos) << error;

  std::string bad2 = WriteTemp("o2.osm", "n 1 0 0\ne 1 2 3\n");
  EXPECT_FALSE(ImportOsmEdgeList(bad2, {}, &net, &stats, &error));
  EXPECT_NE(error.find("undeclared"), std::string::npos) << error;

  std::string bad3 = WriteTemp("o3.osm", "n 1 0 0\nn 2 1 0\ne 1 2 0\n");
  EXPECT_FALSE(ImportOsmEdgeList(bad3, {}, &net, &stats, &error));
  EXPECT_NE(error.find("positive"), std::string::npos) << error;
}

TEST(ImporterTest, ImportGraphFileSniffsFormats) {
  RoadNetwork net;
  ImportStats stats;
  std::string error;
  // A .gr path dispatches to DIMACS and derives the .co sibling.
  ASSERT_TRUE(ImportGraphFile(DataPath("mini.gr"), {}, &net, &stats, &error))
      << error;
  EXPECT_EQ(stats.file_nodes, 484u);
  // An edge-list file dispatches to the OSM parser.
  std::string osm = WriteTemp("sniff.osm",
                              "n 1 0 0\nn 2 1 0\ne 1 2 1.5\n");
  ASSERT_TRUE(ImportGraphFile(osm, {}, &net, &stats, &error)) << error;
  EXPECT_EQ(net.num_nodes(), 2u);
  // Snapshot containers are rejected with a pointer at the right API.
  std::string snap = WriteTemp("sniff.snap", std::string("SRSNAP1\0x", 9));
  EXPECT_FALSE(ImportGraphFile(snap, {}, &net, &stats, &error));
  EXPECT_NE(error.find("LoadGraphSnapshot"), std::string::npos) << error;
}

}  // namespace
}  // namespace structride
