// Shortest-path substrate: every backend must agree with plain Dijkstra on
// a small grid, and the cached engine must count queries as misses only.

#include <gtest/gtest.h>

#include <thread>
#include <utility>
#include <vector>

#include "roadnet/astar.h"
#include "roadnet/contraction_hierarchies.h"
#include "roadnet/dijkstra.h"
#include "roadnet/generator.h"
#include "roadnet/hub_labeling.h"
#include "roadnet/travel_cost.h"
#include "util/random.h"

namespace structride {
namespace {

const RoadNetwork& Net() {
  static RoadNetwork net = [] {
    CityOptions opt;
    opt.rows = 9;
    opt.cols = 9;
    opt.seed = 13;
    return GenerateGridCity(opt);
  }();
  return net;
}

TEST(RoadnetTest, GeneratorShape) {
  const RoadNetwork& net = Net();
  EXPECT_EQ(net.num_nodes(), 81u);
  EXPECT_GE(net.num_edges(), 2u * 8u * 9u);  // full grid at minimum
}

TEST(RoadnetTest, EdgeCostsDominateEuclid) {
  const RoadNetwork& net = Net();
  for (size_t v = 0; v < net.num_nodes(); ++v) {
    for (const RoadNetwork::Arc& arc : net.arcs(static_cast<NodeId>(v))) {
      EXPECT_GE(arc.cost,
                net.EuclidLowerBound(static_cast<NodeId>(v), arc.to) - 1e-9);
    }
  }
}

TEST(RoadnetTest, AllBackendsMatchDijkstra) {
  const RoadNetwork& net = Net();
  HubLabeling hl(net);
  ContractionHierarchies ch(net);
  Rng rng(5);
  for (int trial = 0; trial < 60; ++trial) {
    NodeId s = static_cast<NodeId>(
        rng.UniformInt(0, static_cast<int64_t>(net.num_nodes()) - 1));
    NodeId t = static_cast<NodeId>(
        rng.UniformInt(0, static_cast<int64_t>(net.num_nodes()) - 1));
    std::vector<double> ref = DijkstraAll(net, s);
    double expected = ref[static_cast<size_t>(t)];
    EXPECT_NEAR(BidirectionalDijkstra(net, s, t), expected, 1e-6);
    EXPECT_NEAR(AStarCost(net, s, t), expected, 1e-6);
    EXPECT_NEAR(hl.Query(s, t), expected, 1e-6);
    EXPECT_NEAR(ch.Query(s, t), expected, 1e-6);
    EXPECT_LE(net.EuclidLowerBound(s, t), expected + 1e-9);
  }
}

TEST(RoadnetTest, EngineBackendsMatchAndCacheCountsMisses) {
  const RoadNetwork& net = Net();
  std::vector<double> ref = DijkstraAll(net, 0);

  for (auto backend : {TravelCostOptions::Backend::kHubLabeling,
                       TravelCostOptions::Backend::kContractionHierarchies,
                       TravelCostOptions::Backend::kBidirectionalDijkstra}) {
    TravelCostOptions options;
    options.backend = backend;
    TravelCostEngine engine(net, options);
    for (NodeId t : {NodeId{5}, NodeId{40}, NodeId{80}}) {
      EXPECT_NEAR(engine.Cost(0, t), ref[static_cast<size_t>(t)], 1e-6);
    }
    uint64_t misses = engine.num_queries();
    EXPECT_EQ(misses, 3u);
    // Re-asking the same pairs must be pure cache hits.
    for (NodeId t : {NodeId{5}, NodeId{40}, NodeId{80}}) {
      EXPECT_NEAR(engine.Cost(0, t), ref[static_cast<size_t>(t)], 1e-6);
    }
    EXPECT_EQ(engine.num_queries(), misses);
    EXPECT_GT(engine.CacheHitRate(), 0.0);
  }
}

// Regression for the directed-key cache bug: the network is undirected, so
// Cost(s, t) followed by Cost(t, s) must hit one canonical cache slot and
// perform exactly one backend query.
TEST(RoadnetTest, SymmetricPairSharesOneCacheSlot) {
  TravelCostEngine engine(Net());
  double st = engine.Cost(3, 77);
  EXPECT_EQ(engine.num_queries(), 1u);
  double ts = engine.Cost(77, 3);
  EXPECT_EQ(engine.num_queries(), 1u);
  EXPECT_DOUBLE_EQ(st, ts);
  EXPECT_EQ(engine.num_lookups(), 2u);
}

// Regression for the double-counted-miss bug: N threads hammering the same
// cold pairs (both directions) must insert — and therefore count — each
// canonical pair exactly once, so Tables V/VI savings cannot depend on
// thread count.
TEST(RoadnetTest, ConcurrentColdMissesCountEachPairOnce) {
  const RoadNetwork& net = Net();
  TravelCostOptions options;
  options.backend = TravelCostOptions::Backend::kBidirectionalDijkstra;
  TravelCostEngine engine(net, options);

  std::vector<std::pair<NodeId, NodeId>> pairs;
  const NodeId n = static_cast<NodeId>(net.num_nodes());
  for (NodeId s = 0; s < 20; ++s) {
    pairs.emplace_back(s, static_cast<NodeId>(n - 1 - s));
  }

  constexpr int kThreads = 8;
  constexpr int kRounds = 4;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int round = 0; round < kRounds; ++round) {
        for (const auto& [s, d] : pairs) {
          engine.Cost(s, d);
          engine.Cost(d, s);  // the flipped direction is the same pair
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(engine.num_queries(), pairs.size());
  EXPECT_EQ(engine.num_lookups(),
            static_cast<uint64_t>(kThreads) * kRounds * 2 * pairs.size());
  // Values must match single-threaded ground truth.
  for (const auto& [s, d] : pairs) {
    EXPECT_NEAR(engine.Cost(s, d), BidirectionalDijkstra(net, s, d), 1e-9);
  }
}

TEST(RoadnetTest, SelfCostIsZeroAndFree) {
  TravelCostEngine engine(Net());
  uint64_t before = engine.num_queries();
  EXPECT_DOUBLE_EQ(engine.Cost(7, 7), 0);
  EXPECT_EQ(engine.num_queries(), before);
}

}  // namespace
}  // namespace structride
