// Shortest-path substrate: every backend must agree with plain Dijkstra on
// a small grid, and the cached engine must count queries as misses only.

#include <gtest/gtest.h>

#include <limits>
#include <list>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "roadnet/astar.h"
#include "roadnet/contraction_hierarchies.h"
#include "roadnet/dijkstra.h"
#include "roadnet/flat_lru.h"
#include "roadnet/generator.h"
#include "roadnet/hub_labeling.h"
#include "roadnet/travel_cost.h"
#include "util/random.h"

namespace structride {
namespace {

const RoadNetwork& Net() {
  static RoadNetwork net = [] {
    CityOptions opt;
    opt.rows = 9;
    opt.cols = 9;
    opt.seed = 13;
    return GenerateGridCity(opt);
  }();
  return net;
}

TEST(RoadnetTest, GeneratorShape) {
  const RoadNetwork& net = Net();
  EXPECT_EQ(net.num_nodes(), 81u);
  EXPECT_GE(net.num_edges(), 2u * 8u * 9u);  // full grid at minimum
}

TEST(RoadnetTest, EdgeCostsDominateEuclid) {
  const RoadNetwork& net = Net();
  for (size_t v = 0; v < net.num_nodes(); ++v) {
    for (const RoadNetwork::Arc& arc : net.arcs(static_cast<NodeId>(v))) {
      EXPECT_GE(arc.cost,
                net.EuclidLowerBound(static_cast<NodeId>(v), arc.to) - 1e-9);
    }
  }
}

TEST(RoadnetTest, AllBackendsMatchDijkstra) {
  const RoadNetwork& net = Net();
  HubLabeling hl(net);
  ContractionHierarchies ch(net);
  Rng rng(5);
  for (int trial = 0; trial < 60; ++trial) {
    NodeId s = static_cast<NodeId>(
        rng.UniformInt(0, static_cast<int64_t>(net.num_nodes()) - 1));
    NodeId t = static_cast<NodeId>(
        rng.UniformInt(0, static_cast<int64_t>(net.num_nodes()) - 1));
    std::vector<double> ref = DijkstraAll(net, s);
    double expected = ref[static_cast<size_t>(t)];
    EXPECT_NEAR(BidirectionalDijkstra(net, s, t), expected, 1e-6);
    EXPECT_NEAR(AStarCost(net, s, t), expected, 1e-6);
    EXPECT_NEAR(hl.Query(s, t), expected, 1e-6);
    EXPECT_NEAR(ch.Query(s, t), expected, 1e-6);
    EXPECT_LE(net.EuclidLowerBound(s, t), expected + 1e-9);
  }
}

TEST(RoadnetTest, EngineBackendsMatchAndCacheCountsMisses) {
  const RoadNetwork& net = Net();
  std::vector<double> ref = DijkstraAll(net, 0);

  for (auto backend : {TravelCostOptions::Backend::kHubLabeling,
                       TravelCostOptions::Backend::kContractionHierarchies,
                       TravelCostOptions::Backend::kBidirectionalDijkstra}) {
    TravelCostOptions options;
    options.backend = backend;
    TravelCostEngine engine(net, options);
    for (NodeId t : {NodeId{5}, NodeId{40}, NodeId{80}}) {
      EXPECT_NEAR(engine.Cost(0, t), ref[static_cast<size_t>(t)], 1e-6);
    }
    uint64_t misses = engine.num_queries();
    EXPECT_EQ(misses, 3u);
    // Re-asking the same pairs must be pure cache hits.
    for (NodeId t : {NodeId{5}, NodeId{40}, NodeId{80}}) {
      EXPECT_NEAR(engine.Cost(0, t), ref[static_cast<size_t>(t)], 1e-6);
    }
    EXPECT_EQ(engine.num_queries(), misses);
    EXPECT_GT(engine.CacheHitRate(), 0.0);
  }
}

// Regression for the directed-key cache bug: the network is undirected, so
// Cost(s, t) followed by Cost(t, s) must hit one canonical cache slot and
// perform exactly one backend query.
TEST(RoadnetTest, SymmetricPairSharesOneCacheSlot) {
  TravelCostEngine engine(Net());
  double st = engine.Cost(3, 77);
  EXPECT_EQ(engine.num_queries(), 1u);
  double ts = engine.Cost(77, 3);
  EXPECT_EQ(engine.num_queries(), 1u);
  EXPECT_DOUBLE_EQ(st, ts);
  EXPECT_EQ(engine.num_lookups(), 2u);
}

// Regression for the double-counted-miss bug: N threads hammering the same
// cold pairs (both directions) must insert — and therefore count — each
// canonical pair exactly once, so Tables V/VI savings cannot depend on
// thread count.
TEST(RoadnetTest, ConcurrentColdMissesCountEachPairOnce) {
  const RoadNetwork& net = Net();
  TravelCostOptions options;
  options.backend = TravelCostOptions::Backend::kBidirectionalDijkstra;
  TravelCostEngine engine(net, options);

  std::vector<std::pair<NodeId, NodeId>> pairs;
  const NodeId n = static_cast<NodeId>(net.num_nodes());
  for (NodeId s = 0; s < 20; ++s) {
    pairs.emplace_back(s, static_cast<NodeId>(n - 1 - s));
  }

  constexpr int kThreads = 8;
  constexpr int kRounds = 4;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int round = 0; round < kRounds; ++round) {
        for (const auto& [s, d] : pairs) {
          engine.Cost(s, d);
          engine.Cost(d, s);  // the flipped direction is the same pair
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(engine.num_queries(), pairs.size());
  EXPECT_EQ(engine.num_lookups(),
            static_cast<uint64_t>(kThreads) * kRounds * 2 * pairs.size());
  // Values must match single-threaded ground truth.
  for (const auto& [s, d] : pairs) {
    EXPECT_NEAR(engine.Cost(s, d), BidirectionalDijkstra(net, s, d), 1e-9);
  }
}

// Cache partitions (DESIGN.md §12): a partition shares the parent's frozen
// backend but owns a private LRU and counters; the parent aggregates its
// own traffic plus every partition's, live or destroyed.
TEST(RoadnetTest, CachePartitionsIsolateLruAndAggregateCounters) {
  const RoadNetwork& net = Net();
  TravelCostEngine root(net);
  const double ref = root.Cost(0, 50);
  EXPECT_EQ(root.num_queries(), 1u);
  {
    auto a = root.MakeCachePartition(/*capacity=*/64, /*stripes=*/4);
    auto b = root.MakeCachePartition(/*capacity=*/64, /*stripes=*/4);
    EXPECT_TRUE(a->is_partition());
    EXPECT_FALSE(root.is_partition());
    // Cold in each partition even though hot in the root: private LRUs,
    // one backend computation per partition.
    EXPECT_DOUBLE_EQ(a->Cost(0, 50), ref);
    EXPECT_DOUBLE_EQ(b->Cost(0, 50), ref);
    // The flipped direction is the canonical pair: a pure hit.
    EXPECT_DOUBLE_EQ(a->Cost(50, 0), ref);
    EXPECT_EQ(a->num_queries(), 1u);
    EXPECT_EQ(b->num_queries(), 1u);
    EXPECT_EQ(a->num_lookups(), 2u);
    EXPECT_EQ(b->num_lookups(), 1u);
    // The parent reports the aggregate over itself and live partitions.
    EXPECT_EQ(root.num_queries(), 3u);
    EXPECT_EQ(root.num_lookups(), 4u);
  }
  // Dying partitions fold their counts into the parent: the process-wide
  // totals are unaffected by partition lifetimes.
  EXPECT_EQ(root.num_queries(), 3u);
  EXPECT_EQ(root.num_lookups(), 4u);
}

TEST(RoadnetTest, SelfCostIsZeroAndFree) {
  TravelCostEngine engine(Net());
  uint64_t before = engine.num_queries();
  EXPECT_DOUBLE_EQ(engine.Cost(7, 7), 0);
  EXPECT_EQ(engine.num_queries(), before);
}

// The frozen CSR view must expose exactly the arcs AddEdge recorded, per
// node, in insertion order — so pre-freeze and post-freeze traversals are
// the same sequence.
TEST(RoadnetTest, CsrFreezePreservesArcOrder) {
  RoadNetwork net;
  NodeId a = net.AddNode({0, 0});
  NodeId b = net.AddNode({1, 0});
  NodeId c = net.AddNode({0, 1});
  net.AddEdge(a, b, 1.5);
  net.AddEdge(a, c, 2.0);
  net.AddEdge(b, c, 2.5);
  EXPECT_FALSE(net.frozen());
  RoadNetwork::ArcSpan arcs_a = net.arcs(a);  // lazy freeze
  EXPECT_TRUE(net.frozen());
  ASSERT_EQ(arcs_a.size(), 2u);
  EXPECT_EQ(arcs_a[0].to, b);
  EXPECT_DOUBLE_EQ(arcs_a[0].cost, 1.5);
  EXPECT_EQ(arcs_a[1].to, c);
  EXPECT_DOUBLE_EQ(arcs_a[1].cost, 2.0);
  RoadNetwork::ArcSpan arcs_c = net.arcs(c);
  ASSERT_EQ(arcs_c.size(), 2u);
  EXPECT_EQ(arcs_c[0].to, a);
  EXPECT_EQ(arcs_c[1].to, b);
  EXPECT_EQ(net.num_edges(), 3u);
  EXPECT_GT(net.MemoryBytes(), 0u);
}

// Randomized equivalence over generator layouts: every backend over the
// frozen CSR must agree with plain Dijkstra ground truth.
TEST(RoadnetTest, RandomGridBackendEquivalence) {
  for (uint64_t seed : {21u, 22u, 23u}) {
    CityOptions opt;
    opt.rows = 7;
    opt.cols = 8;
    opt.seed = seed;
    opt.diagonal_prob = 0.3;
    RoadNetwork net = GenerateGridCity(opt);
    EXPECT_TRUE(net.frozen());
    HubLabeling hl(net);
    ContractionHierarchies ch(net);
    Rng rng(seed);
    for (int trial = 0; trial < 25; ++trial) {
      NodeId s = static_cast<NodeId>(
          rng.UniformInt(0, static_cast<int64_t>(net.num_nodes()) - 1));
      NodeId t = static_cast<NodeId>(
          rng.UniformInt(0, static_cast<int64_t>(net.num_nodes()) - 1));
      std::vector<double> ref = DijkstraAll(net, s);
      double expected = ref[static_cast<size_t>(t)];
      EXPECT_NEAR(BidirectionalDijkstra(net, s, t), expected, 1e-6);
      EXPECT_NEAR(AStarCost(net, s, t), expected, 1e-6);
      EXPECT_NEAR(hl.Query(s, t), expected, 1e-6);
      EXPECT_NEAR(ch.Query(s, t), expected, 1e-6);
    }
  }
}

// Two islands with no connecting edge: cross-island costs must be infinite
// from every backend; intra-island costs must still match Dijkstra.
TEST(RoadnetTest, DisconnectedComponentsReportInfinity) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  RoadNetwork net;
  // Island A: a 2x2 block at the origin; island B: the same block far away.
  for (double off : {0.0, 50.0}) {
    NodeId base = net.AddNode({off, off});
    net.AddNode({off + 1, off});
    net.AddNode({off, off + 1});
    net.AddNode({off + 1, off + 1});
    net.AddEdge(base, base + 1, 1.2);
    net.AddEdge(base, base + 2, 1.1);
    net.AddEdge(base + 1, base + 3, 1.3);
    net.AddEdge(base + 2, base + 3, 1.4);
  }
  HubLabeling hl(net);
  ContractionHierarchies ch(net);
  for (NodeId s = 0; s < 4; ++s) {
    for (NodeId t = 4; t < 8; ++t) {
      EXPECT_EQ(hl.Query(s, t), kInf);
      EXPECT_EQ(ch.Query(s, t), kInf);
      EXPECT_EQ(BidirectionalDijkstra(net, s, t), kInf);
      EXPECT_EQ(AStarCost(net, s, t), kInf);
    }
  }
  for (NodeId s = 0; s < 8; ++s) {
    std::vector<double> ref = DijkstraAll(net, s);
    for (NodeId t = 0; t < 8; ++t) {
      double expected = ref[static_cast<size_t>(t)];
      if (expected == kInf) {
        EXPECT_EQ(hl.Query(s, t), kInf);
      } else {
        EXPECT_NEAR(hl.Query(s, t), expected, 1e-9);
        EXPECT_NEAR(ch.Query(s, t), expected, 1e-9);
      }
    }
  }
  // CostMany across components: infinities propagate, queries still count.
  TravelCostEngine engine(net);
  std::vector<NodeId> targets = {4, 5, 0, 6};
  std::vector<double> out(targets.size());
  engine.CostMany(0, {targets.data(), targets.size()}, out.data());
  EXPECT_EQ(out[0], kInf);
  EXPECT_EQ(out[1], kInf);
  EXPECT_DOUBLE_EQ(out[2], 0);
  EXPECT_EQ(out[3], kInf);
  EXPECT_EQ(engine.num_queries(), 3u);
}

// CostMany must be per-target equivalent to the point-to-point path:
// bitwise-identical results and identical num_queries()/num_lookups(), for
// every backend, including duplicate and self targets.
TEST(RoadnetTest, CostManyMatchesRepeatedCost) {
  const RoadNetwork& net = Net();
  for (auto backend : {TravelCostOptions::Backend::kHubLabeling,
                       TravelCostOptions::Backend::kContractionHierarchies,
                       TravelCostOptions::Backend::kBidirectionalDijkstra}) {
    TravelCostOptions options;
    options.backend = backend;
    TravelCostEngine seq(net, options);
    TravelCostEngine batch(net, options);

    const NodeId source = 12;
    Rng rng(17);
    std::vector<NodeId> targets;
    for (int i = 0; i < 40; ++i) {
      targets.push_back(static_cast<NodeId>(
          rng.UniformInt(0, static_cast<int64_t>(net.num_nodes()) - 1)));
    }
    targets.push_back(source);      // self target: free, uncounted query
    targets.push_back(targets[0]);  // duplicate: second hit, one count
    targets.push_back(targets[5]);

    std::vector<double> expected;
    for (NodeId t : targets) expected.push_back(seq.Cost(source, t));
    std::vector<double> got(targets.size());
    batch.CostMany(source, {targets.data(), targets.size()}, got.data());
    for (size_t i = 0; i < targets.size(); ++i) {
      EXPECT_EQ(got[i], expected[i]) << "target " << i;
    }
    EXPECT_EQ(batch.num_queries(), seq.num_queries());
    EXPECT_EQ(batch.num_lookups(), seq.num_lookups());

    // Second pass is all hits on both paths.
    for (NodeId t : targets) seq.Cost(source, t);
    batch.CostMany(source, {targets.data(), targets.size()}, got.data());
    EXPECT_EQ(batch.num_queries(), seq.num_queries());
    EXPECT_EQ(batch.num_lookups(), seq.num_lookups());
  }
}

// The flat open-addressing LRU must behave exactly like the PR2 shard it
// replaced (std::list + unordered_map): same hits, same values, same
// eviction victims in the same order.
TEST(RoadnetTest, FlatLruMatchesReferenceListLru) {
  constexpr size_t kCapacity = 8;
  FlatLru flat(kCapacity);
  EXPECT_EQ(flat.capacity(), kCapacity);
  std::list<std::pair<uint64_t, double>> ref_lru;
  std::unordered_map<uint64_t,
                     std::list<std::pair<uint64_t, double>>::iterator>
      ref_map;

  Rng rng(99);
  for (int op = 0; op < 5000; ++op) {
    uint64_t key = static_cast<uint64_t>(rng.UniformInt(0, 23));
    const double* hit = flat.Find(key);
    auto it = ref_map.find(key);
    if (it != ref_map.end()) {
      ASSERT_NE(hit, nullptr) << "op " << op;
      EXPECT_EQ(*hit, it->second->second);
      if (it->second != ref_lru.begin()) {
        ref_lru.splice(ref_lru.begin(), ref_lru, it->second);
      }
    } else {
      ASSERT_EQ(hit, nullptr) << "op " << op;
      double value = static_cast<double>(key) * 3.5 + op;
      std::optional<uint64_t> evicted = flat.Insert(key, value);
      ref_lru.emplace_front(key, value);
      ref_map[key] = ref_lru.begin();
      if (ref_map.size() > kCapacity) {
        ASSERT_TRUE(evicted.has_value()) << "op " << op;
        EXPECT_EQ(*evicted, ref_lru.back().first) << "op " << op;
        ref_map.erase(ref_lru.back().first);
        ref_lru.pop_back();
      } else {
        EXPECT_FALSE(evicted.has_value()) << "op " << op;
      }
    }
    ASSERT_EQ(flat.size(), ref_map.size());
  }
  EXPECT_GT(flat.MemoryBytes(), 0u);
}

}  // namespace
}  // namespace structride
