// Shortest-path substrate: every backend must agree with plain Dijkstra on
// a small grid, and the cached engine must count queries as misses only.

#include <gtest/gtest.h>

#include "roadnet/astar.h"
#include "roadnet/contraction_hierarchies.h"
#include "roadnet/dijkstra.h"
#include "roadnet/generator.h"
#include "roadnet/hub_labeling.h"
#include "roadnet/travel_cost.h"
#include "util/random.h"

namespace structride {
namespace {

const RoadNetwork& Net() {
  static RoadNetwork net = [] {
    CityOptions opt;
    opt.rows = 9;
    opt.cols = 9;
    opt.seed = 13;
    return GenerateGridCity(opt);
  }();
  return net;
}

TEST(RoadnetTest, GeneratorShape) {
  const RoadNetwork& net = Net();
  EXPECT_EQ(net.num_nodes(), 81u);
  EXPECT_GE(net.num_edges(), 2u * 8u * 9u);  // full grid at minimum
}

TEST(RoadnetTest, EdgeCostsDominateEuclid) {
  const RoadNetwork& net = Net();
  for (size_t v = 0; v < net.num_nodes(); ++v) {
    for (const RoadNetwork::Arc& arc : net.arcs(static_cast<NodeId>(v))) {
      EXPECT_GE(arc.cost,
                net.EuclidLowerBound(static_cast<NodeId>(v), arc.to) - 1e-9);
    }
  }
}

TEST(RoadnetTest, AllBackendsMatchDijkstra) {
  const RoadNetwork& net = Net();
  HubLabeling hl(net);
  ContractionHierarchies ch(net);
  Rng rng(5);
  for (int trial = 0; trial < 60; ++trial) {
    NodeId s = static_cast<NodeId>(
        rng.UniformInt(0, static_cast<int64_t>(net.num_nodes()) - 1));
    NodeId t = static_cast<NodeId>(
        rng.UniformInt(0, static_cast<int64_t>(net.num_nodes()) - 1));
    std::vector<double> ref = DijkstraAll(net, s);
    double expected = ref[static_cast<size_t>(t)];
    EXPECT_NEAR(BidirectionalDijkstra(net, s, t), expected, 1e-6);
    EXPECT_NEAR(AStarCost(net, s, t), expected, 1e-6);
    EXPECT_NEAR(hl.Query(s, t), expected, 1e-6);
    EXPECT_NEAR(ch.Query(s, t), expected, 1e-6);
    EXPECT_LE(net.EuclidLowerBound(s, t), expected + 1e-9);
  }
}

TEST(RoadnetTest, EngineBackendsMatchAndCacheCountsMisses) {
  const RoadNetwork& net = Net();
  std::vector<double> ref = DijkstraAll(net, 0);

  for (auto backend : {TravelCostOptions::Backend::kHubLabeling,
                       TravelCostOptions::Backend::kContractionHierarchies,
                       TravelCostOptions::Backend::kBidirectionalDijkstra}) {
    TravelCostOptions options;
    options.backend = backend;
    TravelCostEngine engine(net, options);
    for (NodeId t : {NodeId{5}, NodeId{40}, NodeId{80}}) {
      EXPECT_NEAR(engine.Cost(0, t), ref[static_cast<size_t>(t)], 1e-6);
    }
    uint64_t misses = engine.num_queries();
    EXPECT_EQ(misses, 3u);
    // Re-asking the same pairs must be pure cache hits.
    for (NodeId t : {NodeId{5}, NodeId{40}, NodeId{80}}) {
      EXPECT_NEAR(engine.Cost(0, t), ref[static_cast<size_t>(t)], 1e-6);
    }
    EXPECT_EQ(engine.num_queries(), misses);
    EXPECT_GT(engine.CacheHitRate(), 0.0);
  }
}

TEST(RoadnetTest, SelfCostIsZeroAndFree) {
  TravelCostEngine engine(Net());
  uint64_t before = engine.num_queries();
  EXPECT_DOUBLE_EQ(engine.Cost(7, 7), 0);
  EXPECT_EQ(engine.num_queries(), before);
}

}  // namespace
}  // namespace structride
