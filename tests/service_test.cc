// The streaming-service-mode contract (DESIGN.md §13):
//  1. service_mode=false is bitwise identical to the pre-service engine:
//     Run() still reproduces the frozen RunLegacy() across the dispatcher
//     roster × the three dataset presets × 1 and 8 worker threads, and all
//     service-mode metrics stay zero — none of the ingestion machinery may
//     leak into replay runs.
//  2. A service run terminates with every request at exactly one terminal
//     outcome (shed arrivals included), reports ingest→decision latency
//     quantiles in order, and observes the ring depth it actually used.
//  3. A full ring sheds instead of blocking: admission control, counted,
//     never served, never releasing.
//  4. Service mode composes with geo-sharding (the engine's conservation
//     and census SR_CHECKs run on every round).

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "sim/datasets.h"
#include "sim/engine.h"
#include "sim/workload.h"

namespace structride {
namespace {

// A preset shrunk to unit-test size, like engine_test's TinyPreset.
struct TinyPreset {
  explicit TinyPreset(const std::string& name)
      : spec(DatasetByName(name, 0.02)) {
    const int side = name == "CHD" ? 16 : (name == "NYC" ? 18 : 14);
    spec.city.rows = side;
    spec.city.cols = side;
    net = BuildNetwork(&spec);
    engine = std::make_unique<TravelCostEngine>(net);
    requests = GenerateWorkload(net, engine.get(), spec.policy, spec.workload);
  }

  DispatchConfig Config(int threads = 1) const {
    DispatchConfig config;
    config.vehicle_capacity = spec.capacity;
    config.grouping.max_group_size = spec.capacity;
    config.sharegraph.vehicle_capacity = spec.capacity;
    if (threads > 1) {
      config.sard_parallel_acceptance = true;
      config.num_threads = threads;
    }
    return config;
  }

  SimulationOptions Options(uint64_t seed = 4242) const {
    SimulationOptions sopts;
    sopts.batch_period = 5;
    sopts.seed = seed;
    sopts.dataset = spec.name;
    return sopts;
  }

  std::unique_ptr<SimulationEngine> MakeEngine(const SimulationOptions& sopts) {
    auto sim =
        std::make_unique<SimulationEngine>(engine.get(), requests, sopts);
    sim->SpawnFleet(std::max(3, spec.num_vehicles), spec.capacity);
    return sim;
  }

  DatasetSpec spec;
  RoadNetwork net;
  std::unique_ptr<TravelCostEngine> engine;
  std::vector<Request> requests;
};

void ExpectBitwiseEqual(const RunMetrics& a, const RunMetrics& b) {
  EXPECT_EQ(a.served, b.served);
  EXPECT_EQ(a.cancelled, b.cancelled);
  EXPECT_EQ(a.expired, b.expired);
  EXPECT_EQ(a.rejected, b.rejected);
  EXPECT_EQ(a.total_requests, b.total_requests);
  EXPECT_EQ(a.unified_cost, b.unified_cost);  // bitwise, not approximate
  EXPECT_EQ(a.travel_cost, b.travel_cost);
  EXPECT_EQ(a.penalty_cost, b.penalty_cost);
  EXPECT_EQ(a.service_rate, b.service_rate);
  EXPECT_EQ(a.sp_queries, b.sp_queries);
  EXPECT_EQ(a.pickup_wait_p50, b.pickup_wait_p50);
  EXPECT_EQ(a.pickup_wait_p99, b.pickup_wait_p99);
  EXPECT_EQ(a.mean_detour_ratio, b.mean_detour_ratio);
  EXPECT_EQ(a.late_dropoffs, b.late_dropoffs);
}

void ExpectServiceMetricsZero(const RunMetrics& m) {
  EXPECT_EQ(m.dispatch_latency_p50_ms, 0);
  EXPECT_EQ(m.dispatch_latency_p99_ms, 0);
  EXPECT_EQ(m.dispatch_latency_p999_ms, 0);
  EXPECT_EQ(m.max_sustained_qps, 0);
  EXPECT_EQ(m.shed_requests, 0u);
  EXPECT_EQ(m.ingest_queue_depth_max, 0u);
}

// Contract 1: the NEW differential — with service_mode at its default
// (false), the event engine still matches the frozen legacy loop bitwise
// for every roster dispatcher on all three presets at 1 and 8 threads,
// and reports all-zero service metrics on both paths.
TEST(ServiceModeOffTest, ReplayEngineUnchangedAcrossRosterDatasetsThreads) {
  for (const std::string& ds : {"CHD", "NYC", "Cainiao"}) {
    for (const std::string& algo : AllDispatcherNames()) {
      for (int threads : {1, 8}) {
        SCOPED_TRACE(ds + " / " + algo + " / " + std::to_string(threads) +
                     " threads");
        // Fresh fixture per run: cold travel-cost caches keep sp_queries
        // comparing backend work, not cache state (the engine_test idiom).
        TinyPreset legacy_fix(ds), event_fix(ds);
        SimulationOptions sopts = legacy_fix.Options();
        EXPECT_FALSE(sopts.service_mode);  // the default stays off
        RunMetrics legacy = legacy_fix.MakeEngine(sopts)->RunLegacy(
            algo, legacy_fix.Config(threads));
        RunMetrics event =
            event_fix.MakeEngine(sopts)->Run(algo, event_fix.Config(threads));
        ExpectBitwiseEqual(event, legacy);
        ExpectServiceMetricsZero(event);
        ExpectServiceMetricsZero(legacy);
      }
    }
  }
}

// Contract 2: a service run accounts for every request exactly once and
// reports ordered latency quantiles from a populated histogram.
TEST(ServiceModeTest, EveryRequestReachesOneTerminalOutcome) {
  TinyPreset tiny("NYC");
  SimulationOptions sopts = tiny.Options();
  sopts.service_mode = true;
  sopts.service_qps = 2000;  // arrivals finish in tens of milliseconds
  RunMetrics m = tiny.MakeEngine(sopts)->Run("SARD", tiny.Config());
  const int total = m.total_requests;
  ASSERT_GT(total, 0);
  // Ample ring: nothing shed, so the terminal outcomes partition the
  // stream exactly.
  EXPECT_EQ(m.shed_requests, 0u);
  EXPECT_EQ(m.served + m.cancelled + m.expired + m.rejected + m.late_dropoffs,
            total);
  EXPECT_GT(m.served, 0);
  // Every request went through the ring and through a dispatch round.
  EXPECT_GE(m.ingest_queue_depth_max, 1u);
  EXPECT_GT(m.dispatch_latency_p50_ms, 0);
  EXPECT_LE(m.dispatch_latency_p50_ms, m.dispatch_latency_p99_ms);
  EXPECT_LE(m.dispatch_latency_p99_ms, m.dispatch_latency_p999_ms);
  // One run probes one rate; the bench, not the engine, fills this.
  EXPECT_EQ(m.max_sustained_qps, 0);
}

// Contract 2, trace-paced: arrival gaps follow the stream's own spacing.
TEST(ServiceModeTest, TraceArrivalsDrainToo) {
  TinyPreset tiny("CHD");
  SimulationOptions sopts = tiny.Options();
  sopts.service_mode = true;
  sopts.service_qps = 2000;
  sopts.service_trace_arrivals = true;
  RunMetrics m = tiny.MakeEngine(sopts)->Run("GAS", tiny.Config());
  EXPECT_EQ(m.shed_requests, 0u);
  EXPECT_EQ(m.served + m.cancelled + m.expired + m.rejected + m.late_dropoffs,
            m.total_requests);
  EXPECT_GT(m.dispatch_latency_p99_ms, 0);
}

// Contract 3: a capacity-1 ring against a deliberately slow drain cadence
// must shed — and shed requests stay unserved, never crash the census.
TEST(ServiceModeTest, FullRingShedsInsteadOfBlocking) {
  TinyPreset tiny("NYC");
  SimulationOptions sopts = tiny.Options();
  sopts.service_mode = true;
  sopts.service_qps = 4000;           // 0.25 ms arrival gap...
  sopts.service_queue_capacity = 1;   // ...into a one-slot ring...
  sopts.service_time_scale = 250;     // ...drained every 20 ms of wall
  RunMetrics m = tiny.MakeEngine(sopts)->Run("pruneGDP", tiny.Config());
  EXPECT_GT(m.shed_requests, 0u);
  EXPECT_LT(m.served + m.cancelled + m.expired + m.rejected, m.total_requests);
  EXPECT_EQ(static_cast<uint64_t>(m.served + m.cancelled + m.expired +
                                  m.rejected + m.late_dropoffs) +
                m.shed_requests,
            static_cast<uint64_t>(m.total_requests));
  EXPECT_EQ(m.ingest_queue_depth_max, 1u);  // the ring never holds more
}

// Contract 4: service mode under geo-sharding — the per-round conservation
// checks and the final census (which must count shed arrivals) all run.
TEST(ServiceModeTest, ComposesWithGeoSharding) {
  TinyPreset tiny("CHD");
  SimulationOptions sopts = tiny.Options();
  sopts.service_mode = true;
  sopts.service_qps = 2000;
  DispatchConfig config = tiny.Config(4);
  config.num_shards = 4;
  RunMetrics m = tiny.MakeEngine(sopts)->Run("SARD", config);
  EXPECT_EQ(m.num_shards, 4);
  EXPECT_EQ(static_cast<uint64_t>(m.served + m.cancelled + m.expired +
                                  m.rejected + m.late_dropoffs) +
                m.shed_requests,
            static_cast<uint64_t>(m.total_requests));
  EXPECT_GT(m.dispatch_latency_p99_ms, 0);
}

}  // namespace
}  // namespace structride
