// The geo-sharding contract (DESIGN.md §12):
//  1. num_shards=1 is *bitwise* identical to the frozen legacy engine —
//     served, costs, sp_queries, service-quality stats — for every
//     registered dispatcher, every dataset preset, 1 and 8 worker threads.
//     The whole shard machinery must vanish at Z=1.
//  2. num_shards>1 conserves requests and vehicles exactly: every request
//     reaches exactly one terminal outcome, every vehicle lives in exactly
//     one shard's member list (the engine SR_CHECKs this every round; the
//     tests drive randomized multi-shard runs through those checks and pin
//     the final census).
//  3. The boundary handoff works: a request whose only candidates sit
//     across the zone edge re-homes through the escrow and is served as a
//     cross-shard trip.
//  4. Zone-targeted scenarios act only on their zone, and zone=-1 degrades
//     to the global scenario bitwise.
// Plus units for the partition, FleetView, and the shard helpers.

#include <gtest/gtest.h>

#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "core/vehicle.h"
#include "dispatch/shard.h"
#include "sim/datasets.h"
#include "sim/engine.h"
#include "sim/scenario.h"
#include "sim/workload.h"

namespace structride {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Same tiny fixture discipline as engine_test: presets shrunk to unit-test
// size, a fresh engine (cold travel-cost cache, aligned fault-model RNG)
// per compared run.
struct TinyPreset {
  explicit TinyPreset(const std::string& name)
      : spec(DatasetByName(name, 0.02)) {
    const int side = name == "CHD" ? 16 : (name == "NYC" ? 18 : 14);
    spec.city.rows = side;
    spec.city.cols = side;
    net = BuildNetwork(&spec);
    engine = std::make_unique<TravelCostEngine>(net);
    requests = GenerateWorkload(net, engine.get(), spec.policy, spec.workload);
  }

  DispatchConfig Config(int threads = 1) const {
    DispatchConfig config;
    config.vehicle_capacity = spec.capacity;
    config.grouping.max_group_size = spec.capacity;
    config.sharegraph.vehicle_capacity = spec.capacity;
    if (threads > 1) {
      config.sard_parallel_acceptance = true;
      config.num_threads = threads;
    }
    return config;
  }

  SimulationOptions Options(uint64_t seed = 4242) const {
    SimulationOptions sopts;
    sopts.batch_period = 5;
    sopts.seed = seed;
    sopts.dataset = spec.name;
    return sopts;
  }

  std::unique_ptr<SimulationEngine> MakeEngine(const SimulationOptions& sopts) {
    auto sim = std::make_unique<SimulationEngine>(engine.get(), requests, sopts);
    sim->SpawnFleet(std::max(3, spec.num_vehicles), spec.capacity);
    return sim;
  }

  DatasetSpec spec;
  RoadNetwork net;
  std::unique_ptr<TravelCostEngine> engine;
  std::vector<Request> requests;
};

void ExpectBitwiseEqual(const RunMetrics& a, const RunMetrics& b) {
  EXPECT_EQ(a.served, b.served);
  EXPECT_EQ(a.cancelled, b.cancelled);
  EXPECT_EQ(a.expired, b.expired);
  EXPECT_EQ(a.rejected, b.rejected);
  EXPECT_EQ(a.total_requests, b.total_requests);
  EXPECT_EQ(a.unified_cost, b.unified_cost);  // bitwise, not approximate
  EXPECT_EQ(a.travel_cost, b.travel_cost);
  EXPECT_EQ(a.penalty_cost, b.penalty_cost);
  EXPECT_EQ(a.service_rate, b.service_rate);
  EXPECT_EQ(a.sp_queries, b.sp_queries);
  EXPECT_EQ(a.sharegraph_pair_checks, b.sharegraph_pair_checks);
  EXPECT_EQ(a.memory_bytes, b.memory_bytes);
  EXPECT_EQ(a.late_dropoffs, b.late_dropoffs);
  EXPECT_EQ(a.pickup_wait_p50, b.pickup_wait_p50);
  EXPECT_EQ(a.pickup_wait_p99, b.pickup_wait_p99);
  EXPECT_EQ(a.mean_detour_ratio, b.mean_detour_ratio);
  EXPECT_EQ(a.num_shards, b.num_shards);
  EXPECT_EQ(a.cross_shard_trips, b.cross_shard_trips);
  EXPECT_EQ(a.shard_load_max_over_mean, b.shard_load_max_over_mean);
}

// Every outcome counter lands in exactly one terminal bucket — the N-shard
// conservation invariant the escrow/migration machinery must never break.
void ExpectCensusBalanced(const RunMetrics& m) {
  EXPECT_EQ(m.served + m.cancelled + m.expired + m.rejected + m.late_dropoffs,
            m.total_requests);
  EXPECT_EQ(m.late_dropoffs, 0);
  EXPECT_GE(m.cross_shard_trips, 0);
  EXPECT_LE(m.cross_shard_trips, m.served);
}

// ---------------------------------------------------------------- units --

TEST(ShardPartitionTest, SingleShardMapsEveryNodeToZero) {
  TinyPreset preset("CHD");
  ShardPartition p;
  p.Build(preset.net, 1);
  EXPECT_EQ(p.num_shards(), 1);
  for (size_t n = 0; n < preset.net.num_nodes(); ++n) {
    EXPECT_EQ(p.ShardOfNode(static_cast<NodeId>(n)), 0);
  }
}

TEST(ShardPartitionTest, GridPartitionCoversEveryShard) {
  TinyPreset preset("CHD");
  for (int z : {2, 3, 4, 6}) {
    SCOPED_TRACE(z);
    ShardPartition p;
    p.Build(preset.net, z);
    EXPECT_EQ(p.num_shards(), z);
    EXPECT_GE(p.cols() * p.rows(), z);
    std::vector<int> count(static_cast<size_t>(z), 0);
    for (size_t n = 0; n < preset.net.num_nodes(); ++n) {
      int s = p.ShardOfNode(static_cast<NodeId>(n));
      ASSERT_GE(s, 0);
      ASSERT_LT(s, z);
      ++count[static_cast<size_t>(s)];
    }
    // A uniform grid city occupies every zone of the uniform partition.
    for (int s = 0; s < z; ++s) EXPECT_GT(count[static_cast<size_t>(s)], 0);
  }
}

TEST(ShardPartitionTest, GridColsOverrideSplitsAlongOneAxis) {
  RoadNetwork net;
  net.AddNode({0, 0});
  net.AddNode({1, 7});
  net.AddNode({9, 0});
  net.AddNode({10, 7});
  net.AddEdge(0, 1, 8);  // costs >= straight-line distance (admissibility)
  net.AddEdge(1, 2, 11);
  net.AddEdge(2, 3, 8);
  ShardPartition p;
  p.Build(net, /*num_shards=*/2, /*grid_cols=*/2);
  EXPECT_EQ(p.cols(), 2);
  EXPECT_EQ(p.rows(), 1);
  EXPECT_EQ(p.ShardOfNode(0), 0);  // left half, any y
  EXPECT_EQ(p.ShardOfNode(1), 0);
  EXPECT_EQ(p.ShardOfNode(2), 1);  // right half
  EXPECT_EQ(p.ShardOfNode(3), 1);
}

TEST(FleetViewTest, UnrestrictedViewIsPurePassThrough) {
  std::vector<Vehicle> fleet;
  for (int i = 0; i < 4; ++i) fleet.emplace_back(i, static_cast<NodeId>(i), 2);
  FleetView view(&fleet);
  EXPECT_FALSE(view.restricted());
  ASSERT_EQ(view.size(), fleet.size());
  for (size_t i = 0; i < fleet.size(); ++i) {
    EXPECT_EQ(&view[i], &fleet[i]);
    EXPECT_EQ(view.global_index(i), i);
  }
  EXPECT_TRUE(FleetView().empty());
}

TEST(FleetViewTest, RestrictedViewTranslatesMemberIndices) {
  std::vector<Vehicle> fleet;
  for (int i = 0; i < 5; ++i) fleet.emplace_back(i, static_cast<NodeId>(i), 2);
  const std::vector<size_t> members = {1, 3, 4};
  FleetView view(&fleet, &members);
  EXPECT_TRUE(view.restricted());
  ASSERT_EQ(view.size(), members.size());
  for (size_t i = 0; i < members.size(); ++i) {
    EXPECT_EQ(&view[i], &fleet[members[i]]);
    EXPECT_EQ(view.global_index(i), members[i]);
  }
  // Mutation through the view hits the shared storage.
  view[0].set_in_service(false);
  EXPECT_FALSE(fleet[1].in_service());
}

TEST(ShardHelperTest, LoadMaxOverMean) {
  EXPECT_EQ(ShardLoadMaxOverMean({}), 0);
  EXPECT_EQ(ShardLoadMaxOverMean({0, 0, 0}), 0);
  EXPECT_EQ(ShardLoadMaxOverMean({5}), 1.0);
  EXPECT_EQ(ShardLoadMaxOverMean({4, 4}), 1.0);
  EXPECT_EQ(ShardLoadMaxOverMean({6, 2}), 1.5);
  EXPECT_EQ(ShardLoadMaxOverMean({8, 0, 0, 0}), 4.0);
}

TEST(ShardHelperTest, NearestInServiceVehicle) {
  RoadNetwork net;
  net.AddNode({0, 0});
  net.AddNode({5, 0});
  net.AddNode({6, 0});
  net.AddEdge(0, 1, 5);
  net.AddEdge(1, 2, 1);
  std::vector<Vehicle> fleet;
  EXPECT_EQ(NearestInServiceVehicle(fleet, net, 0),
            std::numeric_limits<size_t>::max());
  fleet.emplace_back(0, 2, 2);
  fleet.emplace_back(1, 1, 2);
  fleet.emplace_back(2, 1, 2);  // same node as 1: tie broken by index
  EXPECT_EQ(NearestInServiceVehicle(fleet, net, 0), 1u);
  fleet[1].set_in_service(false);
  EXPECT_EQ(NearestInServiceVehicle(fleet, net, 0), 2u);
  fleet[0].set_in_service(false);
  fleet[2].set_in_service(false);
  EXPECT_EQ(NearestInServiceVehicle(fleet, net, 0),
            std::numeric_limits<size_t>::max());
}

// -------------------------------------------------- 1-shard bitwise gate --

// Contract 1: the coordinator at Z=1 replays the exact pre-sharding round
// for the whole dispatcher roster. Both sides run the frozen
// rebuild-per-batch share-graph reference (incremental_sharegraph off) so
// the comparison is fully bitwise, pair checks and instrumented bytes
// included — RunLegacy never maintains the incremental graph, and its
// persistent builder legitimately accounts differently (DESIGN.md §7;
// engine_test pins that equivalence). SARD's 8-thread cell exercises the
// parallel acceptance path through the shard context's shared pool.
TEST(ShardParityTest, OneShardMatchesLegacyBitwiseAcrossRoster) {
  for (const std::string& ds :
       {std::string("CHD"), std::string("NYC"), std::string("Cainiao")}) {
    for (const std::string& algo : ListDispatchers()) {
      for (int threads : {1, 8}) {
        SCOPED_TRACE(ds + " " + algo + " threads=" + std::to_string(threads));
        TinyPreset ev(ds), lg(ds);
        DispatchConfig config = ev.Config(threads);
        config.incremental_sharegraph = false;
        config.num_shards = 1;  // explicit: the sharded coordinator's Z=1
        DispatchConfig legacy_config = lg.Config(threads);
        legacy_config.incremental_sharegraph = false;
        RunMetrics event = ev.MakeEngine(ev.Options())->Run(algo, config);
        RunMetrics legacy =
            lg.MakeEngine(lg.Options())->RunLegacy(algo, legacy_config);
        ExpectBitwiseEqual(event, legacy);
        EXPECT_EQ(event.num_shards, 1);
        EXPECT_EQ(event.cross_shard_trips, 0);
      }
    }
  }
}

// Same gate under the default config (incremental share graph on): every
// *outcome* — served, costs, sp_queries, service quality, shard counters —
// still matches legacy bitwise for the graph consumers; only the
// §7-documented pair-check/byte accounting may differ.
TEST(ShardParityTest, OneShardDefaultConfigMatchesLegacyOutcomes) {
  for (const std::string& algo : {std::string("GAS"), std::string("RTV"),
                                  std::string("SARD")}) {
    SCOPED_TRACE(algo);
    TinyPreset ev("CHD"), lg("CHD");
    DispatchConfig config = ev.Config();
    config.num_shards = 1;
    RunMetrics event = ev.MakeEngine(ev.Options())->Run(algo, config);
    RunMetrics legacy = lg.MakeEngine(lg.Options())->RunLegacy(algo, lg.Config());
    EXPECT_EQ(event.served, legacy.served);
    EXPECT_EQ(event.cancelled, legacy.cancelled);
    EXPECT_EQ(event.expired, legacy.expired);
    EXPECT_EQ(event.rejected, legacy.rejected);
    EXPECT_EQ(event.unified_cost, legacy.unified_cost);
    EXPECT_EQ(event.sp_queries, legacy.sp_queries);
    EXPECT_EQ(event.pickup_wait_p50, legacy.pickup_wait_p50);
    EXPECT_EQ(event.pickup_wait_p99, legacy.pickup_wait_p99);
    EXPECT_EQ(event.mean_detour_ratio, legacy.mean_detour_ratio);
    EXPECT_EQ(event.num_shards, legacy.num_shards);
    EXPECT_EQ(event.cross_shard_trips, 0);
    EXPECT_EQ(event.shard_load_max_over_mean, legacy.shard_load_max_over_mean);
  }
}

// ---------------------------------------------- N-shard conservation gate --

// Contract 2, randomized: multi-shard runs under the cancellation fault
// model must balance the census exactly and reproduce bitwise under the
// same seed. Every round additionally passes the engine's internal
// vehicle/request conservation SR_CHECKs (a violation aborts the test
// binary). The 1-shard cell of each seed is the differential baseline: the
// same stream, same draws, no sharding machinery.
TEST(ShardConservationTest, RandomizedMultiShardRunsBalanceTheCensus) {
  for (uint64_t seed : {uint64_t{11}, uint64_t{5150}, uint64_t{909090}}) {
    for (int shards : {1, 2, 4}) {
      SCOPED_TRACE("seed=" + std::to_string(seed) +
                   " shards=" + std::to_string(shards));
      auto run_once = [&]() {
        TinyPreset preset("CHD");
        SimulationOptions sopts = preset.Options(seed);
        sopts.cancellation_rate = 0.3;
        sopts.cancellation_patience = 20;
        DispatchConfig config = preset.Config();
        config.num_shards = shards;
        return preset.MakeEngine(sopts)->Run("SARD", config);
      };
      RunMetrics m = run_once();
      ExpectCensusBalanced(m);
      EXPECT_EQ(m.num_shards, shards);
      if (shards == 1) {
        EXPECT_EQ(m.cross_shard_trips, 0);
      } else if (m.served > 0) {
        EXPECT_GE(m.shard_load_max_over_mean, 1.0);
        EXPECT_LE(m.shard_load_max_over_mean, static_cast<double>(shards));
      }
      // Determinism: the geo-sharded run replays bitwise under its seed.
      ExpectBitwiseEqual(m, run_once());
    }
  }
}

// Batch-holding and online dispatchers alike must conserve under sharding.
TEST(ShardConservationTest, MultiShardCensusHoldsAcrossDispatcherKinds) {
  for (const std::string& algo :
       {std::string("pruneGDP"), std::string("GAS"), std::string("RTV")}) {
    SCOPED_TRACE(algo);
    TinyPreset preset("NYC");
    DispatchConfig config = preset.Config();
    config.num_shards = 4;
    RunMetrics m = preset.MakeEngine(preset.Options())->Run(algo, config);
    ExpectCensusBalanced(m);
    EXPECT_EQ(m.num_shards, 4);
  }
}

// ------------------------------------------------------ boundary handoff --

// Contract 3, deterministic: one request in zone 0, the whole fleet in
// zone 1. Shard 0 owns the request but has no vehicles; the end-of-round
// escrow finds the nearest candidate across the boundary, re-homes the
// request, and shard 1 serves it on the next round — exactly one
// cross-shard trip.
TEST(ShardEscrowTest, HandoffCrossesTheBoundary) {
  // Node 0 sits alone at x=0; the 29-node cluster spans x in [30, 58], all
  // strictly right of the x=29 midline, so the 2x1 partition puts exactly
  // one node — the pickup — in zone 0. Edge costs equal the straight-line
  // gaps (admissibility).
  RoadNetwork net;
  net.AddNode({0, 0});  // the lone zone-0 node: the request's pickup
  const int kRight = 29;
  for (int i = 1; i <= kRight; ++i) {
    net.AddNode({29.0 + static_cast<double>(i), 0});
  }
  net.AddEdge(0, 1, 30);
  for (int i = 1; i < kRight; ++i) {
    net.AddEdge(static_cast<NodeId>(i), static_cast<NodeId>(i + 1), 1);
  }
  TravelCostEngine engine(net);

  Request r;
  r.id = 0;
  r.source = 0;
  r.destination = static_cast<NodeId>(kRight);
  r.release_time = 1;
  r.direct_cost = engine.Cost(r.source, r.destination);
  r.latest_pickup = 200;
  r.deadline = 400;

  SimulationOptions sopts;
  sopts.batch_period = 5;
  sopts.seed = 4242;
  SimulationEngine sim(&engine, {r}, sopts);
  sim.SpawnFleet(2, 4);

  // Pin the premise under this seed: nobody spawned on the lone zone-0
  // node, so shard 0 starts (and stays) empty of vehicles.
  ShardPartition p;
  p.Build(net, 2, 2);
  struct ZoneProbe : Scenario {
    std::vector<int>* zones;
    explicit ZoneProbe(std::vector<int>* z) : zones(z) {}
    const char* name() const override { return "zone_probe"; }
    void OnInstall(ScenarioHost* host) override { host->ScheduleAt(0, 0); }
    void OnEvent(ScenarioHost* host, int64_t) override {
      zones->clear();
      for (const Vehicle& v : host->fleet()) {
        zones->push_back(host->ZoneOfNode(v.node()));
      }
    }
  };
  std::vector<int> spawn_zones;
  sim.AddScenario(std::make_unique<ZoneProbe>(&spawn_zones));

  DispatchConfig config;
  config.num_shards = 2;
  config.shard_grid_cols = 2;
  RunMetrics m = sim.Run("SARD", config);

  ASSERT_EQ(spawn_zones.size(), 2u);
  for (int z : spawn_zones) ASSERT_EQ(z, 1);  // premise, pinned by the seed

  EXPECT_EQ(m.served, 1);
  EXPECT_EQ(m.cross_shard_trips, 1);  // assigned by the foreign shard
  EXPECT_EQ(m.num_shards, 2);
  ExpectCensusBalanced(m);
}

// ------------------------------------- concurrent shard execution gate --

// The PR-8 contract (DESIGN.md §12): concurrent_shards=true runs the
// per-shard batch phase as independent pool tasks, but the buffer-then-
// commit protocol keeps it bitwise identical to the serial shard-id-order
// reference — outcomes, costs, #SP queries, and the per-shard counter
// vectors. shard_cache_capacity is pinned large enough that no travel-cost
// partition ever evicts: eviction *order* under sard_parallel_acceptance is
// the one documented place the two interleavings could legally differ.
TEST(ShardConcurrencyTest, ConcurrentMatchesSerialAcrossRoster) {
  for (const std::string& ds :
       {std::string("CHD"), std::string("NYC"), std::string("Cainiao")}) {
    for (const std::string& algo : ListDispatchers()) {
      for (int threads : {1, 8}) {
        SCOPED_TRACE(ds + " " + algo + " threads=" + std::to_string(threads));
        auto run_once = [&](bool concurrent) {
          TinyPreset preset(ds);
          DispatchConfig config = preset.Config(threads);
          config.num_shards = 4;
          config.concurrent_shards = concurrent;
          config.shard_cache_capacity = size_t{1} << 16;
          return preset.MakeEngine(preset.Options())->Run(algo, config);
        };
        RunMetrics on = run_once(true);
        RunMetrics off = run_once(false);
        ExpectBitwiseEqual(on, off);
        EXPECT_EQ(on.shard_sp_queries, off.shard_sp_queries);
        EXPECT_EQ(on.shard_cache_hit_rate, off.shard_cache_hit_rate);
        ExpectCensusBalanced(on);
        EXPECT_EQ(on.num_shards, 4);
      }
    }
  }
}

// Same gate under the randomized cancellation fault model: the concurrent
// batch phase must not perturb the RNG stream or the escrow bookkeeping —
// every seed replays bitwise against its serial reference.
TEST(ShardConcurrencyTest, RandomizedFaultModelMatchesSerialBitwise) {
  for (uint64_t seed : {uint64_t{77}, uint64_t{31337}, uint64_t{424242}}) {
    for (int shards : {2, 4}) {
      SCOPED_TRACE("seed=" + std::to_string(seed) +
                   " shards=" + std::to_string(shards));
      auto run_once = [&](bool concurrent) {
        TinyPreset preset("CHD");
        SimulationOptions sopts = preset.Options(seed);
        sopts.cancellation_rate = 0.35;
        sopts.cancellation_patience = 15;
        DispatchConfig config = preset.Config(8);
        config.num_shards = shards;
        config.concurrent_shards = concurrent;
        config.shard_cache_capacity = size_t{1} << 16;
        return preset.MakeEngine(sopts)->Run("SARD", config);
      };
      RunMetrics on = run_once(true);
      RunMetrics off = run_once(false);
      ExpectBitwiseEqual(on, off);
      EXPECT_EQ(on.shard_sp_queries, off.shard_sp_queries);
      EXPECT_EQ(on.shard_cache_hit_rate, off.shard_cache_hit_rate);
      ExpectCensusBalanced(on);
    }
  }
}

// Dense-boundary stress: a line city split into four zones with every
// request crossing at least one zone boundary and a fleet too small to
// populate every zone — maximal escrow/re-homing traffic. The concurrent
// phase must reproduce the serial reference bitwise while actually
// performing cross-shard handoffs (not vacuously, cross_shard_trips > 0).
TEST(ShardConcurrencyTest, DenseBoundaryStressMatchesSerialBitwise) {
  constexpr int kNodes = 40;
  auto run_once = [&](bool concurrent) {
    RoadNetwork net;
    for (int i = 0; i < kNodes; ++i) {
      net.AddNode({static_cast<double>(i), 0});
    }
    for (int i = 0; i + 1 < kNodes; ++i) {
      net.AddEdge(static_cast<NodeId>(i), static_cast<NodeId>(i + 1), 1);
    }
    TravelCostEngine engine(net);

    // Twelve requests, sources cycling through all four zones, every
    // destination 15 nodes away (one to two boundaries crossed).
    std::vector<Request> requests;
    for (int k = 0; k < 12; ++k) {
      Request r;
      r.id = k;
      r.source = static_cast<NodeId>(2 + 10 * (k % 4));
      r.destination =
          static_cast<NodeId>((r.source + 15) % kNodes);
      r.release_time = 1 + 4 * k;
      r.direct_cost = engine.Cost(r.source, r.destination);
      r.latest_pickup = r.release_time + 150;
      r.deadline = r.release_time + 400;
      requests.push_back(r);
    }

    SimulationOptions sopts;
    sopts.batch_period = 5;
    sopts.seed = 4242;
    SimulationEngine sim(&engine, requests, sopts);
    sim.SpawnFleet(3, 2);  // three vehicles over four zones: one zone empty

    DispatchConfig config;
    config.num_shards = 4;
    config.shard_grid_cols = 4;
    config.concurrent_shards = concurrent;
    config.num_threads = 8;
    config.shard_cache_capacity = size_t{1} << 16;
    return sim.Run("SARD", config);
  };
  RunMetrics on = run_once(true);
  RunMetrics off = run_once(false);
  ExpectBitwiseEqual(on, off);
  EXPECT_EQ(on.shard_sp_queries, off.shard_sp_queries);
  EXPECT_EQ(on.shard_cache_hit_rate, off.shard_cache_hit_rate);
  ExpectCensusBalanced(on);
  EXPECT_GT(on.cross_shard_trips, 0);
  EXPECT_EQ(on.num_shards, 4);
}

// ------------------------------------------------------- zonal scenarios --

// Zone-targeted downtime pulls every in-service vehicle of its zone and
// nobody else's; observed through the host's own zone surface at the pull
// instant (the probe is installed after the downtime, so same-timestamp
// scenario events fire in install order).
TEST(ZonalScenarioTest, ZonalDowntimePullsOnlyItsZone) {
  TinyPreset preset("CHD");
  const double d = preset.spec.workload.duration;

  struct PullProbe : Scenario {
    double when;
    std::vector<std::pair<bool, int>>* out;  // (in_service, zone) per vehicle
    PullProbe(double w, std::vector<std::pair<bool, int>>* o)
        : when(w), out(o) {}
    const char* name() const override { return "pull_probe"; }
    void OnInstall(ScenarioHost* host) override { host->ScheduleAt(when, 0); }
    void OnEvent(ScenarioHost* host, int64_t) override {
      out->clear();
      for (const Vehicle& v : host->fleet()) {
        out->emplace_back(v.in_service(), host->ZoneOfNode(v.node()));
      }
    }
  };

  auto sim = preset.MakeEngine(preset.Options());
  sim->AddScenario(MakeZonalVehicleDowntime(/*zone=*/1, 0.3 * d, kInf, 1.0));
  std::vector<std::pair<bool, int>> probe;
  sim->AddScenario(std::make_unique<PullProbe>(0.3 * d, &probe));
  DispatchConfig config = preset.Config();
  config.num_shards = 2;
  RunMetrics m = sim->Run("SARD", config);
  ExpectCensusBalanced(m);

  ASSERT_FALSE(probe.empty());
  int pulled = 0;
  for (const auto& [in_service, zone] : probe) {
    // fraction=1.0 over the zone: out of service iff resident in zone 1.
    EXPECT_EQ(in_service, zone != 1);
    if (!in_service) ++pulled;
  }
  EXPECT_GT(pulled, 0);  // the zone was populated under this seed
  EXPECT_LT(pulled, static_cast<int>(probe.size()));  // zone 0 kept its fleet
}

// zone=-1 is the documented "every zone" escape hatch: the zonal factories
// must degrade to the global scenarios bitwise.
TEST(ZonalScenarioTest, NegativeZoneDegradesToGlobalBitwise) {
  const double d = TinyPreset("NYC").spec.workload.duration;
  auto run_once = [&](bool zonal) {
    TinyPreset preset("NYC");
    auto sim = preset.MakeEngine(preset.Options());
    if (zonal) {
      sim->AddScenario(MakeZonalDemandSurge(-1, 0.25 * d, 0.5 * d, 3.0));
      sim->AddScenario(MakeZonalVehicleDowntime(-1, 0.3 * d, 0.3 * d, 0.5));
    } else {
      sim->AddScenario(MakeDemandSurge(0.25 * d, 0.5 * d, 3.0));
      sim->AddScenario(MakeVehicleDowntime(0.3 * d, 0.3 * d, 0.5));
    }
    return sim->Run("SARD", preset.Config());
  };
  ExpectBitwiseEqual(run_once(true), run_once(false));
}

// A zonal surge on a multi-shard run retimes only its zone's pickups: the
// zone-0 requests keep their original release times.
TEST(ZonalScenarioTest, ZonalSurgeLeavesOtherZonesUntouched) {
  TinyPreset preset("CHD");
  const double d = preset.spec.workload.duration;
  auto run_with = [&](int zone) {
    TinyPreset p("CHD");
    auto sim = p.MakeEngine(p.Options());
    if (zone >= -1) {
      sim->AddScenario(MakeZonalDemandSurge(zone, 0.25 * d, 0.75 * d, 4.0));
    }
    DispatchConfig config = p.Config();
    config.num_shards = 2;
    return sim->Run("SARD", config);
  };
  RunMetrics baseline = run_with(-2);  // no scenario at all
  RunMetrics zonal = run_with(1);
  RunMetrics global = run_with(-1);
  ExpectCensusBalanced(zonal);
  // The zonal surge is a real perturbation of the multi-shard run, but a
  // strictly smaller one than the global surge: identical to neither when
  // the window actually contains zone-1 releases (it does on this preset —
  // pinned by the served/cost triple differing from both extremes on at
  // least one axis).
  const bool same_as_baseline = zonal.unified_cost == baseline.unified_cost &&
                                zonal.sp_queries == baseline.sp_queries;
  const bool same_as_global = zonal.unified_cost == global.unified_cost &&
                              zonal.sp_queries == global.sp_queries;
  EXPECT_FALSE(same_as_baseline && same_as_global);
}

}  // namespace
}  // namespace structride
