// ShareGraph structure operations, and the load-bearing property of the
// angle pruning: it must never drop a feasible share pair — the pruned and
// unpruned builders must produce identical graphs (the pruning only saves
// shortest-path queries).

#include <gtest/gtest.h>

#include <algorithm>

#include "roadnet/generator.h"
#include "sharegraph/analysis.h"
#include "sharegraph/builder.h"
#include "sharegraph/loss.h"
#include "sim/workload.h"

namespace structride {
namespace {

TEST(ShareGraphTest, BasicOperations) {
  ShareGraph g;
  g.AddNode(1);
  g.AddNode(2);
  g.AddEdge(1, 2);
  g.AddEdge(1, 2);  // duplicate ignored
  g.AddEdge(2, 2);  // self-loop ignored
  g.AddEdge(2, 3);  // implicit node
  EXPECT_EQ(g.NumNodes(), 3u);
  EXPECT_EQ(g.NumEdges(), 2u);
  EXPECT_TRUE(g.HasEdge(1, 2));
  EXPECT_TRUE(g.HasEdge(2, 1));
  EXPECT_FALSE(g.HasEdge(1, 3));
  EXPECT_EQ(g.Degree(2), 2u);
  g.RemoveNode(2);
  EXPECT_EQ(g.NumNodes(), 2u);
  EXPECT_EQ(g.NumEdges(), 0u);
  EXPECT_EQ(g.Degree(1), 0u);
}

TEST(ShareGraphTest, SupernodeKeepsCommonNeighbors) {
  // 1-2 share neighbors {3}, while 4 neighbors only 1.
  ShareGraph g;
  g.AddEdge(1, 2);
  g.AddEdge(1, 3);
  g.AddEdge(2, 3);
  g.AddEdge(1, 4);
  EXPECT_DOUBLE_EQ(ShareabilityLoss(g, {1, 2}), 1.0);  // loses 4, keeps 3
  g.SubstituteSupernode({1, 2}, 100);
  EXPECT_TRUE(g.HasNode(100));
  EXPECT_FALSE(g.HasNode(1));
  EXPECT_FALSE(g.HasNode(2));
  EXPECT_TRUE(g.HasEdge(100, 3));
  EXPECT_FALSE(g.HasEdge(100, 4));
}

TEST(ShareGraphTest, AnalysisOnKnownGraph) {
  // A triangle plus a pendant and an isolated node.
  ShareGraph g;
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(0, 2);
  g.AddEdge(2, 3);
  g.AddNode(9);
  StructureReport report = AnalyzeStructure(g, 3);
  EXPECT_EQ(report.degrees.num_nodes, 5u);
  EXPECT_EQ(report.degrees.num_edges, 4u);
  EXPECT_EQ(report.degeneracy, 2);
  EXPECT_EQ(report.max_clique, 3u);
  EXPECT_EQ(report.num_components, 2u);
  // Partition: {0,1,2} triangle, {3}, {9} at capacity 3.
  EXPECT_EQ(report.greedy_partition_cliques, 3u);
  EXPECT_GE(report.partition_upper_bound, report.greedy_partition_cliques - 1);
  auto cliques = GreedyCliquePartition(g, 3);
  size_t covered = 0;
  for (const auto& clique : cliques) {
    covered += clique.size();
    for (size_t i = 0; i < clique.size(); ++i) {
      for (size_t j = i + 1; j < clique.size(); ++j) {
        EXPECT_TRUE(g.HasEdge(clique[i], clique[j]));
      }
    }
  }
  EXPECT_EQ(covered, g.NumNodes());
}

TEST(ShareGraphBuilderTest, AnglePruningNeverDropsAFeasiblePair) {
  CityOptions copt;
  copt.rows = 15;
  copt.cols = 15;
  copt.seed = 21;
  RoadNetwork net = GenerateGridCity(copt);
  TravelCostEngine engine(net);
  DeadlinePolicy policy;
  policy.gamma = 1.5;
  WorkloadOptions wopts;
  wopts.num_requests = 90;
  wopts.duration = 120;
  wopts.seed = 4;
  auto requests = GenerateWorkload(net, &engine, policy, wopts);

  ShareGraphBuilderOptions plain;
  plain.use_angle_pruning = false;
  ShareGraphBuilder unpruned(&engine, plain);
  unpruned.AddBatch(requests);

  ShareGraphBuilderOptions pruned_opts;
  pruned_opts.use_angle_pruning = true;
  ShareGraphBuilder pruned(&engine, pruned_opts);
  pruned.AddBatch(requests);

  // The screen must have fired (otherwise this test checks nothing)...
  EXPECT_GT(pruned.pruned_pairs(), 0u);
  // ...and the graphs must still be identical.
  ASSERT_EQ(unpruned.graph().NumNodes(), pruned.graph().NumNodes());
  EXPECT_EQ(unpruned.graph().NumEdges(), pruned.graph().NumEdges());
  for (RequestId v : unpruned.graph().Nodes()) {
    auto a = unpruned.graph().Neighbors(v);
    auto b = pruned.graph().Neighbors(v);
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(a, b) << "neighborhood mismatch at request " << v;
  }
}

TEST(ShareGraphBuilderTest, IncrementalAddBatchMatchesOneShot) {
  CityOptions copt;
  copt.rows = 10;
  copt.cols = 10;
  copt.seed = 31;
  RoadNetwork net = GenerateGridCity(copt);
  TravelCostEngine engine(net);
  DeadlinePolicy policy;
  WorkloadOptions wopts;
  wopts.num_requests = 60;
  wopts.duration = 90;
  wopts.seed = 8;
  auto requests = GenerateWorkload(net, &engine, policy, wopts);

  ShareGraphBuilderOptions opts;
  ShareGraphBuilder one_shot(&engine, opts);
  one_shot.AddBatch(requests);

  ShareGraphBuilder incremental(&engine, opts);
  std::vector<Request> first(requests.begin(), requests.begin() + 40);
  std::vector<Request> second(requests.begin() + 40, requests.end());
  incremental.AddBatch(first);
  incremental.AddBatch(second);

  EXPECT_EQ(one_shot.graph().NumEdges(), incremental.graph().NumEdges());
}

}  // namespace
}  // namespace structride
