// ShareGraph structure operations, and the load-bearing property of the
// angle pruning: it must never drop a feasible share pair — the pruned and
// unpruned builders must produce identical graphs (the pruning only saves
// shortest-path queries).

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <unordered_map>
#include <vector>

#include "roadnet/generator.h"
#include "sharegraph/analysis.h"
#include "sharegraph/builder.h"
#include "sharegraph/loss.h"
#include "sim/workload.h"
#include "util/random.h"

namespace structride {
namespace {

TEST(ShareGraphTest, BasicOperations) {
  ShareGraph g;
  g.AddNode(1);
  g.AddNode(2);
  g.AddEdge(1, 2);
  g.AddEdge(1, 2);  // duplicate ignored
  g.AddEdge(2, 2);  // self-loop ignored
  g.AddEdge(2, 3);  // implicit node
  EXPECT_EQ(g.NumNodes(), 3u);
  EXPECT_EQ(g.NumEdges(), 2u);
  EXPECT_TRUE(g.HasEdge(1, 2));
  EXPECT_TRUE(g.HasEdge(2, 1));
  EXPECT_FALSE(g.HasEdge(1, 3));
  EXPECT_EQ(g.Degree(2), 2u);
  g.RemoveNode(2);
  EXPECT_EQ(g.NumNodes(), 2u);
  EXPECT_EQ(g.NumEdges(), 0u);
  EXPECT_EQ(g.Degree(1), 0u);
}

TEST(ShareGraphTest, SupernodeKeepsCommonNeighbors) {
  // 1-2 share neighbors {3}, while 4 neighbors only 1.
  ShareGraph g;
  g.AddEdge(1, 2);
  g.AddEdge(1, 3);
  g.AddEdge(2, 3);
  g.AddEdge(1, 4);
  EXPECT_DOUBLE_EQ(ShareabilityLoss(g, {1, 2}), 1.0);  // loses 4, keeps 3
  g.SubstituteSupernode({1, 2}, 100);
  EXPECT_TRUE(g.HasNode(100));
  EXPECT_FALSE(g.HasNode(1));
  EXPECT_FALSE(g.HasNode(2));
  EXPECT_TRUE(g.HasEdge(100, 3));
  EXPECT_FALSE(g.HasEdge(100, 4));
}

TEST(ShareGraphTest, AnalysisOnKnownGraph) {
  // A triangle plus a pendant and an isolated node.
  ShareGraph g;
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(0, 2);
  g.AddEdge(2, 3);
  g.AddNode(9);
  StructureReport report = AnalyzeStructure(g, 3);
  EXPECT_EQ(report.degrees.num_nodes, 5u);
  EXPECT_EQ(report.degrees.num_edges, 4u);
  EXPECT_EQ(report.degeneracy, 2);
  EXPECT_EQ(report.max_clique, 3u);
  EXPECT_EQ(report.num_components, 2u);
  // Partition: {0,1,2} triangle, {3}, {9} at capacity 3.
  EXPECT_EQ(report.greedy_partition_cliques, 3u);
  EXPECT_GE(report.partition_upper_bound, report.greedy_partition_cliques - 1);
  auto cliques = GreedyCliquePartition(g, 3);
  size_t covered = 0;
  for (const auto& clique : cliques) {
    covered += clique.size();
    for (size_t i = 0; i < clique.size(); ++i) {
      for (size_t j = i + 1; j < clique.size(); ++j) {
        EXPECT_TRUE(g.HasEdge(clique[i], clique[j]));
      }
    }
  }
  EXPECT_EQ(covered, g.NumNodes());
}

TEST(ShareGraphBuilderTest, AnglePruningNeverDropsAFeasiblePair) {
  CityOptions copt;
  copt.rows = 15;
  copt.cols = 15;
  copt.seed = 21;
  RoadNetwork net = GenerateGridCity(copt);
  TravelCostEngine engine(net);
  DeadlinePolicy policy;
  policy.gamma = 1.5;
  WorkloadOptions wopts;
  wopts.num_requests = 90;
  wopts.duration = 120;
  wopts.seed = 4;
  auto requests = GenerateWorkload(net, &engine, policy, wopts);

  ShareGraphBuilderOptions plain;
  plain.use_angle_pruning = false;
  ShareGraphBuilder unpruned(&engine, plain);
  unpruned.AddBatch(requests);

  ShareGraphBuilderOptions pruned_opts;
  pruned_opts.use_angle_pruning = true;
  ShareGraphBuilder pruned(&engine, pruned_opts);
  pruned.AddBatch(requests);

  // The screen must have fired (otherwise this test checks nothing)...
  EXPECT_GT(pruned.pruned_pairs(), 0u);
  // ...and the graphs must still be identical.
  ASSERT_EQ(unpruned.graph().NumNodes(), pruned.graph().NumNodes());
  EXPECT_EQ(unpruned.graph().NumEdges(), pruned.graph().NumEdges());
  for (RequestId v : unpruned.graph().Nodes()) {
    auto a = unpruned.graph().Neighbors(v);
    auto b = pruned.graph().Neighbors(v);
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(a, b) << "neighborhood mismatch at request " << v;
  }
}

TEST(ShareGraphTest, RemovalPreservesInsertionOrderAndReaddAppends) {
  ShareGraph g;
  for (RequestId id : {5, 3, 9, 1, 7}) g.AddNode(id);
  g.AddEdge(5, 9);
  g.AddEdge(3, 9);
  g.AddEdge(9, 7);
  g.RemoveNode(9);  // tombstoned slot, edges gone in O(degree)
  EXPECT_EQ(g.NumNodes(), 4u);
  EXPECT_EQ(g.NumEdges(), 0u);
  EXPECT_EQ(g.Nodes(), (std::vector<RequestId>{5, 3, 1, 7}));
  g.AddNode(9);  // re-add lands at the end of the insertion order
  EXPECT_EQ(g.Nodes(), (std::vector<RequestId>{5, 3, 1, 7, 9}));
  // A removal burst exceeding half the order vector compacts eagerly even
  // when no one reads Nodes() in between.
  g.RemoveNode(5);
  g.RemoveNode(3);
  g.RemoveNode(1);
  g.AddNode(11);
  EXPECT_EQ(g.Nodes(), (std::vector<RequestId>{7, 9, 11}));
}

// The per-pair memo (DESIGN.md §7): an exact check runs once per pair
// lifetime — repeats answer from the memo without travel-cost work, and a
// removal ends the lifetime so a re-added request is evaluated afresh.
TEST(ShareGraphBuilderTest, PairMemoAnswersRepeatsAndResetsOnRemoval) {
  CityOptions copt;
  copt.rows = 10;
  copt.cols = 10;
  copt.seed = 17;
  RoadNetwork net = GenerateGridCity(copt);
  TravelCostEngine engine(net);
  DeadlinePolicy policy;
  WorkloadOptions wopts;
  wopts.num_requests = 20;
  wopts.duration = 60;
  wopts.seed = 5;
  auto requests = GenerateWorkload(net, &engine, policy, wopts);

  // A pair that survives the temporal screen, so adding it costs exactly
  // one exact check.
  const Request* a = nullptr;
  const Request* b = nullptr;
  for (size_t i = 0; i < requests.size() && a == nullptr; ++i) {
    for (size_t j = i + 1; j < requests.size(); ++j) {
      if (requests[i].release_time <= requests[j].deadline &&
          requests[j].release_time <= requests[i].deadline) {
        a = &requests[i];
        b = &requests[j];
        break;
      }
    }
  }
  ASSERT_NE(a, nullptr);

  ShareGraphBuilder builder(&engine, {});
  builder.set_memoize_pairs(true);
  builder.AddRequests({*a, *b});
  EXPECT_EQ(builder.pair_checks(), 1u);
  EXPECT_EQ(builder.memo_hits(), 0u);
  const bool edge = builder.graph().HasEdge(a->id, b->id);

  // Probing the live pair is free: memo hit, no new exact check, and no
  // shortest-path queries.
  const uint64_t queries_before = engine.num_queries();
  EXPECT_EQ(builder.CheckedShareable(a->id, b->id), edge);
  EXPECT_EQ(builder.pair_checks(), 1u);
  EXPECT_EQ(builder.memo_hits(), 1u);
  EXPECT_EQ(engine.num_queries(), queries_before);

  // Removal ends b's lifetime; re-adding re-evaluates the pair from
  // scratch (same immutable request data, hence the same edge verdict).
  builder.RemoveRequest(b->id);
  EXPECT_FALSE(builder.graph().HasNode(b->id));
  builder.AddRequests({*b});
  EXPECT_EQ(builder.pair_checks(), 2u);
  EXPECT_EQ(builder.graph().HasEdge(a->id, b->id), edge);
}

// The differential harness pinning the tentpole (DESIGN.md §7): drive many
// seeded random batch / assignment / expiry / retain sequences through the
// incremental builder, and after EVERY step rebuild the graph from scratch
// over the surviving requests (in the incremental builder's insertion
// order — exactly what the frozen rebuild-per-batch path would do). Node
// sequence, edge count and each node's full neighbor SEQUENCE must match;
// the graph is unweighted, so adjacency order is the strictest per-edge
// invariant there is — it is what makes dispatcher results independent of
// how the graph was maintained.
TEST(ShareGraphBuilderTest, DifferentialIncrementalVsFromScratchRebuild) {
  CityOptions copt;
  copt.rows = 12;
  copt.cols = 12;
  copt.seed = 41;
  RoadNetwork net = GenerateGridCity(copt);
  TravelCostEngine engine(net);
  DeadlinePolicy policy;
  policy.gamma = 1.5;
  WorkloadOptions wopts;
  wopts.num_requests = 80;
  wopts.duration = 120;
  wopts.seed = 12;
  auto requests = GenerateWorkload(net, &engine, policy, wopts);
  std::unordered_map<RequestId, const Request*> by_id;
  for (const Request& r : requests) by_id[r.id] = &r;

  for (bool angle_pruning : {false, true}) {
    for (uint64_t seed : {uint64_t{1}, uint64_t{2}, uint64_t{3}}) {
      SCOPED_TRACE(std::string("pruning=") + (angle_pruning ? "on" : "off") +
                   " seed=" + std::to_string(seed));
      Rng rng(seed);
      ShareGraphBuilderOptions opts;
      opts.use_angle_pruning = angle_pruning;
      ShareGraphBuilder inc(&engine, opts);
      inc.set_memoize_pairs(true);  // the maintained role
      std::vector<char> alive(requests.size(), 0);
      uint64_t rebuild_checks_total = 0;

      for (int step = 0; step < 25; ++step) {
        const int op = static_cast<int>(rng.UniformInt(0, 2));
        if (op == 0 || inc.num_requests() == 0) {
          // Release a batch: fresh requests and re-adds of retired ones.
          std::vector<Request> batch;
          const int k = static_cast<int>(rng.UniformInt(1, 8));
          for (int t = 0; t < k; ++t) {
            size_t idx = static_cast<size_t>(
                rng.UniformInt(0, static_cast<int64_t>(requests.size()) - 1));
            if (alive[idx]) continue;
            alive[idx] = 1;
            batch.push_back(requests[idx]);
          }
          inc.AddRequests(batch);
        } else if (op == 1) {
          // Assignment / cancellation / expiry events: retire a few.
          std::vector<RequestId> drop;
          for (size_t idx = 0; idx < requests.size(); ++idx) {
            if (alive[idx] && rng.Uniform(0, 1) < 0.3) {
              alive[idx] = 0;
              drop.push_back(requests[idx].id);
            }
          }
          inc.RemoveRequests(drop);
        } else {
          // A dispatch-round sweep: keep a random subset of the open pool.
          std::vector<RequestId> keep;
          for (size_t idx = 0; idx < requests.size(); ++idx) {
            if (!alive[idx]) continue;
            if (rng.Uniform(0, 1) < 0.7) {
              keep.push_back(requests[idx].id);
            } else {
              alive[idx] = 0;
            }
          }
          inc.Retain(keep);
        }

        // From-scratch reference over the survivors, in the incremental
        // builder's insertion order.
        std::vector<Request> pool;
        for (RequestId id : inc.graph().Nodes()) pool.push_back(*by_id.at(id));
        ShareGraphBuilder ref(&engine, opts);
        ref.AddRequests(pool);
        rebuild_checks_total += ref.pair_checks();

        ASSERT_EQ(inc.graph().NumNodes(), ref.graph().NumNodes())
            << "step " << step;
        ASSERT_EQ(inc.graph().NumEdges(), ref.graph().NumEdges())
            << "step " << step;
        ASSERT_EQ(inc.graph().Nodes(), ref.graph().Nodes()) << "step " << step;
        for (RequestId v : ref.graph().Nodes()) {
          ASSERT_EQ(inc.graph().Neighbors(v), ref.graph().Neighbors(v))
              << "neighbor sequence mismatch at request " << v << ", step "
              << step;
        }
      }
      // The economics of maintenance: across the whole sequence the
      // incremental builder spent strictly fewer exact checks than the
      // rebuild-after-every-step discipline it replaces.
      EXPECT_LT(inc.pair_checks(), rebuild_checks_total);
    }
  }
}

TEST(ShareGraphBuilderTest, IncrementalAddBatchMatchesOneShot) {
  CityOptions copt;
  copt.rows = 10;
  copt.cols = 10;
  copt.seed = 31;
  RoadNetwork net = GenerateGridCity(copt);
  TravelCostEngine engine(net);
  DeadlinePolicy policy;
  WorkloadOptions wopts;
  wopts.num_requests = 60;
  wopts.duration = 90;
  wopts.seed = 8;
  auto requests = GenerateWorkload(net, &engine, policy, wopts);

  ShareGraphBuilderOptions opts;
  ShareGraphBuilder one_shot(&engine, opts);
  one_shot.AddBatch(requests);

  ShareGraphBuilder incremental(&engine, opts);
  std::vector<Request> first(requests.begin(), requests.begin() + 40);
  std::vector<Request> second(requests.begin() + 40, requests.end());
  incremental.AddBatch(first);
  incremental.AddBatch(second);

  EXPECT_EQ(one_shot.graph().NumEdges(), incremental.graph().NumEdges());
}

}  // namespace
}  // namespace structride
