// Binary snapshot persistence: lossless round-trips (bitwise-identical
// costs from every backend, identical engine sp_queries, loaded vs built),
// byte-reproducible writes, zero-copy mmap loads, and adversarial inputs —
// truncation, checksum flips, wrong magic/version, out-of-bounds section
// offsets, corrupt section contents — each failing loudly through the error
// return, never reading out of bounds.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "roadnet/astar.h"
#include "roadnet/contraction_hierarchies.h"
#include "roadnet/dijkstra.h"
#include "roadnet/generator.h"
#include "roadnet/hub_labeling.h"
#include "roadnet/importer.h"
#include "roadnet/snapshot.h"
#include "roadnet/travel_cost.h"
#include "util/random.h"

namespace structride {
namespace {

std::string DataPath(const std::string& name) {
  return std::string(STRUCTRIDE_TEST_DATA_DIR) + "/" + name;
}

std::string TempPath(const std::string& name) {
  return testing::TempDir() + name;
}

std::string Slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void Spit(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  out << content;
}

// Container layout constants mirrored from roadnet/snapshot.cc for the
// byte-surgery tests.
constexpr size_t kHeaderBytes = 64;
constexpr size_t kEntryBytes = 24;
constexpr size_t kChecksumOffset = 16;
constexpr size_t kVersionOffset = 8;
constexpr size_t kNumSectionsOffset = 12;

uint32_t NumSections(const std::string& bytes) {
  uint32_t n;
  std::memcpy(&n, bytes.data() + kNumSectionsOffset, sizeof(n));
  return n;
}

// Finds the file offset of section \p id's payload (0 if absent).
uint64_t SectionOffset(const std::string& bytes, uint32_t id,
                       uint64_t* size = nullptr) {
  for (uint32_t i = 0; i < NumSections(bytes); ++i) {
    uint32_t entry_id;
    const char* entry = bytes.data() + kHeaderBytes + i * kEntryBytes;
    std::memcpy(&entry_id, entry, sizeof(entry_id));
    if (entry_id != id) continue;
    uint64_t off;
    std::memcpy(&off, entry + 8, sizeof(off));
    if (size != nullptr) std::memcpy(size, entry + 16, sizeof(*size));
    return off;
  }
  return 0;
}

// A small synthetic city and the bundled DIMACS fixture: the two graph
// sources the differential runs over.
RoadNetwork MakeGrid() {
  CityOptions opt;
  opt.rows = 8;
  opt.cols = 8;
  opt.seed = 77;
  return GenerateGridCity(opt);
}

RoadNetwork MakeFixture() {
  RoadNetwork net;
  ImportStats stats;
  std::string error;
  EXPECT_TRUE(ImportDimacs(DataPath("mini.gr"), DataPath("mini.co"), {}, &net,
                           &stats, &error))
      << error;
  return net;
}

// Writes net (+ freshly built HL and CH) to \p path and returns the loaded
// bundle. EXPECT-fails on any error.
GraphBundle RoundTrip(const RoadNetwork& net, const HubLabeling& hl,
                      const ContractionHierarchies& ch,
                      const std::string& path, bool use_mmap) {
  SnapshotWriteOptions wopts;
  wopts.hub_labels = &hl;
  wopts.ch = &ch;
  std::string error;
  EXPECT_TRUE(WriteGraphSnapshot(net, wopts, path, &error)) << error;
  GraphBundle bundle;
  SnapshotLoadOptions lopts;
  lopts.use_mmap = use_mmap;
  EXPECT_TRUE(LoadGraphSnapshot(path, lopts, &bundle, &error)) << error;
  return bundle;
}

// The loss-less contract: on sampled pairs, every backend on the loaded
// graph returns the bitwise-identical cost the in-memory original returns.
void ExpectBitwiseEqualBackends(const RoadNetwork& net, const HubLabeling& hl,
                                const ContractionHierarchies& ch,
                                const GraphBundle& loaded, uint64_t seed) {
  ASSERT_EQ(loaded.network.num_nodes(), net.num_nodes());
  ASSERT_EQ(loaded.network.num_edges(), net.num_edges());
  ASSERT_NE(loaded.hub_labels, nullptr);
  ASSERT_NE(loaded.ch, nullptr);
  EXPECT_TRUE(loaded.network.borrowed());
  EXPECT_EQ(loaded.hub_labels->TotalLabelEntries(), hl.TotalLabelEntries());
  EXPECT_EQ(loaded.ch->num_shortcuts(), ch.num_shortcuts());

  Rng rng(seed);
  const int64_t n = static_cast<int64_t>(net.num_nodes());
  for (int trial = 0; trial < 40; ++trial) {
    NodeId s = static_cast<NodeId>(rng.UniformInt(0, n - 1));
    NodeId t = static_cast<NodeId>(rng.UniformInt(0, n - 1));
    // Bitwise (==), not NEAR: the loaded arrays are the written arrays, so
    // every backend must run the exact same float operations.
    EXPECT_EQ(BidirectionalDijkstra(loaded.network, s, t),
              BidirectionalDijkstra(net, s, t));
    EXPECT_EQ(AStarCost(loaded.network, s, t), AStarCost(net, s, t));
    EXPECT_EQ(DijkstraAll(loaded.network, s)[static_cast<size_t>(t)],
              DijkstraAll(net, s)[static_cast<size_t>(t)]);
    EXPECT_EQ(loaded.hub_labels->Query(s, t), hl.Query(s, t));
    EXPECT_EQ(loaded.ch->Query(s, t), ch.Query(s, t));
  }
}

TEST(SnapshotTest, RoundTripIsLosslessOnGridAndFixture) {
  int source = 0;
  for (const auto& make : {+[] { return MakeGrid(); },
                           +[] { return MakeFixture(); }}) {
    RoadNetwork net = make();
    net.Freeze();
    HubLabeling hl(net);
    ContractionHierarchies ch(net);
    std::string path = TempPath("rt" + std::to_string(source) + ".snap");
    for (bool use_mmap : {false, true}) {
      GraphBundle loaded = RoundTrip(net, hl, ch, path, use_mmap);
      ExpectBitwiseEqualBackends(net, hl, ch, loaded,
                                 1234u + static_cast<uint64_t>(source));
    }
    ++source;
  }
}

TEST(SnapshotTest, LoadedEngineMatchesRebuiltEngineQueryForQuery) {
  RoadNetwork net = MakeFixture();
  net.Freeze();
  HubLabeling hl(net);
  ContractionHierarchies ch(net);
  std::string path = TempPath("engine.snap");
  GraphBundle loaded = RoundTrip(net, hl, ch, path, /*use_mmap=*/true);

  for (auto backend : {TravelCostOptions::Backend::kHubLabeling,
                       TravelCostOptions::Backend::kContractionHierarchies}) {
    TravelCostOptions built_opts;
    built_opts.backend = backend;
    TravelCostEngine built(net, built_opts);

    TravelCostOptions loaded_opts;
    loaded_opts.backend = backend;
    loaded_opts.prebuilt_hub_labels = loaded.hub_labels.get();
    loaded_opts.prebuilt_ch = loaded.ch.get();
    TravelCostEngine adopted(loaded.network, loaded_opts);

    // Same query sequence (with repeats, so hits happen) must produce
    // bitwise-identical costs and identical sp_queries accounting.
    Rng rng(99);
    const int64_t n = static_cast<int64_t>(net.num_nodes());
    std::vector<NodeId> targets;
    for (int i = 0; i < 50; ++i) {
      targets.push_back(static_cast<NodeId>(rng.UniformInt(0, n - 1)));
    }
    for (int round = 0; round < 2; ++round) {
      for (NodeId t : targets) {
        EXPECT_EQ(built.Cost(3, t), adopted.Cost(3, t));
      }
      std::vector<double> a(targets.size()), b(targets.size());
      built.CostMany(7, {targets.data(), targets.size()}, a.data());
      adopted.CostMany(7, {targets.data(), targets.size()}, b.data());
      for (size_t i = 0; i < targets.size(); ++i) EXPECT_EQ(a[i], b[i]);
    }
    EXPECT_EQ(built.num_queries(), adopted.num_queries());
    EXPECT_EQ(built.num_lookups(), adopted.num_lookups());
  }
}

TEST(SnapshotTest, WritesAreByteReproducible) {
  RoadNetwork net = MakeGrid();
  HubLabeling hl(net);
  ContractionHierarchies ch(net);
  SnapshotWriteOptions wopts;
  wopts.hub_labels = &hl;
  wopts.ch = &ch;
  std::string error;
  std::string p1 = TempPath("repro1.snap"), p2 = TempPath("repro2.snap");
  ASSERT_TRUE(WriteGraphSnapshot(net, wopts, p1, &error)) << error;
  ASSERT_TRUE(WriteGraphSnapshot(net, wopts, p2, &error)) << error;
  EXPECT_EQ(Slurp(p1), Slurp(p2));
}

TEST(SnapshotTest, GraphOnlySnapshotLoadsWithoutIndices) {
  RoadNetwork net = MakeGrid();
  std::string path = TempPath("graphonly.snap");
  std::string error;
  ASSERT_TRUE(WriteGraphSnapshot(net, {}, path, &error)) << error;
  EXPECT_TRUE(IsSnapshotFile(path));
  GraphBundle bundle;
  ASSERT_TRUE(LoadGraphSnapshot(path, {}, &bundle, &error)) << error;
  EXPECT_EQ(bundle.hub_labels, nullptr);
  EXPECT_EQ(bundle.ch, nullptr);
  EXPECT_EQ(BidirectionalDijkstra(bundle.network, 0, 63),
            BidirectionalDijkstra(net, 0, 63));
}

// ------------------------------------------------------- adversarial ----

class SnapshotAdversarialTest : public testing::Test {
 protected:
  void SetUp() override {
    RoadNetwork net = MakeGrid();
    HubLabeling hl(net);
    ContractionHierarchies ch(net);
    SnapshotWriteOptions wopts;
    wopts.hub_labels = &hl;
    wopts.ch = &ch;
    path_ = TempPath("adv.snap");
    std::string error;
    ASSERT_TRUE(WriteGraphSnapshot(net, wopts, path_, &error)) << error;
    bytes_ = Slurp(path_);
    ASSERT_GE(bytes_.size(), kHeaderBytes);
  }

  // Writes the mutated bytes and expects the load to fail mentioning
  // \p needle. Runs both load paths: heap read and mmap.
  void ExpectRejected(const std::string& bytes, const std::string& needle) {
    Spit(path_, bytes);
    for (bool use_mmap : {false, true}) {
      GraphBundle bundle;
      std::string error;
      SnapshotLoadOptions lopts;
      lopts.use_mmap = use_mmap;
      EXPECT_FALSE(LoadGraphSnapshot(path_, lopts, &bundle, &error));
      EXPECT_NE(error.find(needle), std::string::npos)
          << "want \"" << needle << "\" in \"" << error << "\"";
    }
  }

  // Mutates bytes, then re-stamps a valid checksum so the structural
  // validators (not the checksum gate) are what rejects the file.
  void ExpectRejectedPastChecksum(const std::string& bytes,
                                  const std::string& needle) {
    Spit(path_, bytes);
    std::string error;
    ASSERT_TRUE(RewriteSnapshotChecksum(path_, &error)) << error;
    ExpectRejected(Slurp(path_), needle);
  }

  std::string path_;
  std::string bytes_;
};

TEST_F(SnapshotAdversarialTest, TruncatedFile) {
  ExpectRejected(bytes_.substr(0, 10), "too small");
  ExpectRejected(bytes_.substr(0, kHeaderBytes + 5), "truncated");
  ExpectRejected(bytes_.substr(0, bytes_.size() / 2), "truncated");
}

TEST_F(SnapshotAdversarialTest, FlippedChecksum) {
  std::string bytes = bytes_;
  bytes[kChecksumOffset] ^= 0x01;
  ExpectRejected(bytes, "checksum mismatch");
  // A flipped payload byte trips the same gate.
  bytes = bytes_;
  bytes[bytes.size() - 1] ^= 0x80;
  ExpectRejected(bytes, "checksum mismatch");
}

TEST_F(SnapshotAdversarialTest, WrongMagicAndVersion) {
  std::string bytes = bytes_;
  bytes[0] = 'X';
  ExpectRejected(bytes, "bad magic");

  bytes = bytes_;
  uint32_t v = 999;
  std::memcpy(&bytes[kVersionOffset], &v, sizeof(v));
  ExpectRejected(bytes, "unsupported snapshot version");
}

TEST_F(SnapshotAdversarialTest, SectionOffsetOutOfBounds) {
  // Point the first section's offset past EOF (keeping page alignment so
  // the bounds check, not the alignment check, fires).
  std::string bytes = bytes_;
  uint64_t huge = (bytes.size() / 4096 + 16) * 4096;
  std::memcpy(&bytes[kHeaderBytes + 8], &huge, sizeof(huge));
  ExpectRejectedPastChecksum(bytes, "out of bounds");

  // Size overflowing past EOF from a valid offset.
  bytes = bytes_;
  uint64_t big_size = bytes.size();
  std::memcpy(&bytes[kHeaderBytes + 16], &big_size, sizeof(big_size));
  ExpectRejectedPastChecksum(bytes, "out of bounds");

  // Misaligned offset.
  bytes = bytes_;
  uint64_t off;
  std::memcpy(&off, &bytes[kHeaderBytes + 8], sizeof(off));
  off += 8;
  std::memcpy(&bytes[kHeaderBytes + 8], &off, sizeof(off));
  ExpectRejectedPastChecksum(bytes, "not page-aligned");
}

TEST_F(SnapshotAdversarialTest, CorruptCsrContents) {
  // An arc targeting a node far out of range: the loader must reject it
  // before any search could index with it.
  std::string bytes = bytes_;
  uint64_t arcs_off = SectionOffset(bytes, /*csr_arcs=*/3);
  ASSERT_NE(arcs_off, 0u);
  int32_t evil = 1 << 20;
  std::memcpy(&bytes[arcs_off], &evil, sizeof(evil));
  ExpectRejectedPastChecksum(bytes, "out-of-range node");

  // Non-monotone CSR offsets.
  bytes = bytes_;
  uint64_t offs_off = SectionOffset(bytes, /*csr_offsets=*/2);
  ASSERT_NE(offs_off, 0u);
  uint32_t big = 0xffffffffu;
  std::memcpy(&bytes[offs_off + 4], &big, sizeof(big));
  ExpectRejectedPastChecksum(bytes, "not monotone");
}

TEST_F(SnapshotAdversarialTest, CorruptHubLabelRanks) {
  // A rank >= n would index past the pinned-source scratch; the loader must
  // catch it during validation.
  std::string bytes = bytes_;
  uint64_t ranks_off = SectionOffset(bytes, /*hl_ranks=*/5);
  ASSERT_NE(ranks_off, 0u);
  int32_t evil = 1 << 20;
  std::memcpy(&bytes[ranks_off], &evil, sizeof(evil));
  ExpectRejectedPastChecksum(bytes, "rank plane malformed");

  // A missing final sentinel would let the merge join run off the plane.
  uint64_t ranks_size = 0;
  bytes = bytes_;
  SectionOffset(bytes, 5, &ranks_size);
  int32_t zero = 0;
  std::memcpy(&bytes[ranks_off + ranks_size - 4], &zero, sizeof(zero));
  ExpectRejectedPastChecksum(bytes, "sentinel");
}

TEST_F(SnapshotAdversarialTest, SectionTableDoesNotFit) {
  std::string bytes = bytes_;
  uint32_t sections = 1u << 30;
  std::memcpy(&bytes[kNumSectionsOffset], &sections, sizeof(sections));
  ExpectRejectedPastChecksum(bytes, "section table does not fit");
}

}  // namespace
}  // namespace structride
