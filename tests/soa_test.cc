// The pooled-representation contract (DESIGN.md §8): every pooled twin —
// arena-scratch insertion, ApplyInsertionInto, the SchedulePool-backed
// kinetic tree, EnumerateGroupsPooled, and the full soa_pools engine path —
// must reproduce its legacy vector-backed reference bitwise: same
// feasibility, same positions, same costs, same stops, same group order,
// same travel-cost query sequence. Randomized over seeded workloads so the
// pin covers shapes nobody hand-picked.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/insertion.h"
#include "core/kinetic_tree.h"
#include "group/grouping.h"
#include "roadnet/generator.h"
#include "sharegraph/builder.h"
#include "sim/datasets.h"
#include "sim/engine.h"
#include "sim/workload.h"
#include "util/random.h"

namespace structride {
namespace {

struct SoaFixture : public ::testing::Test {
  SoaFixture() {
    CityOptions opt;
    opt.rows = 12;
    opt.cols = 12;
    opt.seed = 47;
    net = GenerateGridCity(opt);
    engine = std::make_unique<TravelCostEngine>(net);
    DeadlinePolicy policy;
    policy.gamma = 1.8;
    WorkloadOptions wopts;
    wopts.num_requests = 80;
    wopts.duration = 80;
    wopts.seed = 13;
    requests = GenerateWorkload(net, engine.get(), policy, wopts);
  }
  RoadNetwork net;
  std::unique_ptr<TravelCostEngine> engine;
  std::vector<Request> requests;
};

void ExpectStopsEqual(Span<const Stop> a, Span<const Stop> b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].request, b[i].request);
    EXPECT_EQ(a[i].node, b[i].node);
    EXPECT_EQ(a[i].kind, b[i].kind);
    EXPECT_EQ(a[i].earliest, b[i].earliest);
    EXPECT_EQ(a[i].deadline, b[i].deadline);
  }
}

// Arena-scratch insertion is the legacy evaluation with the buffers moved:
// identical candidate, bitwise, across random schedules, both pruning
// settings, and repeated runs over a warmed thread-scratch arena.
TEST_F(SoaFixture, BestInsertionArenaScratchMatchesLegacy) {
  Rng rng(99);
  int compared = 0;
  for (int trial = 0; trial < 20; ++trial) {
    const Request& seed = requests[static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(requests.size()) - 1))];
    RouteState state;
    state.start = seed.source;
    state.start_time = 0;
    state.capacity = static_cast<int>(rng.UniformInt(2, 6));
    Schedule schedule;
    for (int step = 0; step < 6; ++step) {
      const Request& r = requests[static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(requests.size()) - 1))];
      for (bool pruning : {true, false}) {
        InsertionOptions arena_opts;
        arena_opts.use_pruning = pruning;
        arena_opts.use_arena_scratch = true;
        InsertionOptions legacy_opts;
        legacy_opts.use_pruning = pruning;
        legacy_opts.use_arena_scratch = false;
        InsertionCandidate a =
            BestInsertion(state, schedule, r, engine.get(), arena_opts);
        InsertionCandidate b =
            BestInsertion(state, schedule, r, engine.get(), legacy_opts);
        EXPECT_EQ(a.feasible, b.feasible);
        if (a.feasible) {
          EXPECT_EQ(a.pickup_pos, b.pickup_pos);
          EXPECT_EQ(a.dropoff_pos, b.dropoff_pos);
          EXPECT_EQ(a.delta_cost, b.delta_cost);  // bitwise
          EXPECT_EQ(a.total_cost, b.total_cost);
          ++compared;
        }
      }
      InsertionCandidate grow = BestInsertion(state, schedule, r, engine.get());
      if (grow.feasible) {
        // Grow through the pooled writer and pin it against the legacy
        // materialization as we go.
        std::vector<Stop> staged(schedule.size() + 2);
        size_t len =
            ApplyInsertionInto(schedule.stops(), r, grow, staged.data());
        Schedule legacy_grown = ApplyInsertion(schedule, r, grow);
        ASSERT_EQ(len, legacy_grown.size());
        ExpectStopsEqual(Span<const Stop>(staged.data(), len),
                         legacy_grown.stops());
        schedule = std::move(legacy_grown);
      }
    }
  }
  EXPECT_GT(compared, 20);
}

// The SchedulePool-backed kinetic tree holds the same orderings in the same
// sequence as the one-vector-per-ordering backend, insert after insert.
TEST_F(SoaFixture, KineticTreePooledMatchesLegacy) {
  Rng rng(7);
  int trees = 0;
  for (int trial = 0; trial < 12; ++trial) {
    const Request& seed = requests[static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(requests.size()) - 1))];
    RouteState state;
    state.start = seed.source;
    state.start_time = seed.release_time;
    state.capacity = 4;
    KineticTree pooled(state, /*use_pool=*/true);
    KineticTree legacy(state, /*use_pool=*/false);
    for (int step = 0; step < 5; ++step) {
      const Request& r = requests[static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(requests.size()) - 1))];
      bool a = pooled.Insert(r, engine.get());
      bool b = legacy.Insert(r, engine.get());
      ASSERT_EQ(a, b);
      ASSERT_EQ(pooled.NumSchedules(), legacy.NumSchedules());
      for (size_t i = 0; i < pooled.NumSchedules(); ++i) {
        ExpectStopsEqual(pooled.ScheduleAt(i), legacy.ScheduleAt(i));
      }
      EXPECT_EQ(pooled.BestCost(engine.get()), legacy.BestCost(engine.get()));
      if (a) ++trees;
    }
  }
  EXPECT_GT(trees, 5);
}

// EnumerateGroupsPooled appends the exact legacy group sequence — members,
// schedules, deltas, truncation — into a scratch that it must keep
// reproducing after Reset (the warmed steady-state reuse).
TEST_F(SoaFixture, PooledGroupingMatchesLegacy) {
  ShareGraphBuilderOptions bopts;
  bopts.vehicle_capacity = 3;
  ShareGraphBuilder builder(engine.get(), bopts);
  builder.AddBatch(requests);

  std::vector<const Request*> pool;
  for (const Request& r : requests) pool.push_back(&r);

  GroupingScratch scratch;
  Rng rng(23);
  for (auto policy : {InsertionOrderPolicy::kByShareability,
                      InsertionOrderPolicy::kBestOfAllParents}) {
    for (int trial = 0; trial < 4; ++trial) {
      const Request& seed = requests[static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(requests.size()) - 1))];
      RouteState state;
      state.start = seed.source;
      state.start_time = 0;
      state.capacity = 3;
      GroupingOptions gopts;
      gopts.max_group_size = 3;
      gopts.insertion_order = policy;

      GroupingResult legacy = EnumerateGroups(
          state, Schedule(), requests, &builder.graph(), engine.get(), gopts);
      // Two pooled passes over one Reset cycle: the second runs on warmed
      // scratch capacity and must reproduce the first exactly.
      for (int pass = 0; pass < 2; ++pass) {
        scratch.Reset();
        PooledGroupingResult pooled = EnumerateGroupsPooled(
            state, Span<const Stop>(nullptr, 0),
            Span<const Request* const>(pool.data(), pool.size()),
            &builder.graph(), engine.get(), gopts, &scratch);
        ASSERT_EQ(pooled.count, legacy.groups.size());
        EXPECT_EQ(pooled.truncated, legacy.truncated);
        for (size_t gi = 0; gi < pooled.count; ++gi) {
          const CandidateGroup& lg = legacy.groups[gi];
          const PooledGroup& pg = scratch.groups[pooled.first_group + gi];
          Span<const RequestId> members = scratch.MembersOf(pg);
          ASSERT_EQ(members.size(), lg.members.size());
          for (size_t m = 0; m < members.size(); ++m) {
            EXPECT_EQ(members[m], lg.members[m]);
          }
          EXPECT_EQ(pg.delta_cost, lg.delta_cost);  // bitwise
          ExpectStopsEqual(scratch.ScheduleOf(pg), lg.schedule.stops());
        }
        // Instrumented accounting is representation-independent: one call's
        // pooled slice counts the same content bytes as the legacy result.
        EXPECT_EQ(PooledGroupingMemoryBytes(scratch, pooled),
                  GroupingMemoryBytes(legacy));
      }
    }
  }
}

// The end-to-end pin, the PR's acceptance bar: soa_pools on reproduces
// soa_pools off through the full engine — served, unified cost, #SP queries
// (and everything else observable, including instrumented memory, which the
// pooled paths account size-based for exactly this reason) — on every
// preset, for SARD (1 and 8 worker threads), GAS and RTV.
TEST(SoaEngineTest, SoaPoolsMatchesLegacyRepresentationBitwise) {
  struct Cell {
    const char* algo;
    int threads;
  };
  const Cell cells[] = {{"SARD", 1}, {"SARD", 8}, {"GAS", 1}, {"RTV", 1}};
  for (const std::string& ds :
       {std::string("CHD"), std::string("NYC"), std::string("Cainiao")}) {
    for (const Cell& cell : cells) {
      SCOPED_TRACE(ds + " " + cell.algo +
                   " threads=" + std::to_string(cell.threads));
      // A preset shrunk to unit-test size, one fresh fixture per run so the
      // travel-cost caches and fault-model draws are identical.
      auto make = [&ds]() {
        DatasetSpec spec = DatasetByName(ds, 0.02);
        const int side = ds == "CHD" ? 16 : (ds == "NYC" ? 18 : 14);
        spec.city.rows = side;
        spec.city.cols = side;
        return spec;
      };
      auto run = [&](bool soa_pools) {
        DatasetSpec spec = make();
        RoadNetwork net = BuildNetwork(&spec);
        TravelCostEngine engine(net);
        auto reqs =
            GenerateWorkload(net, &engine, spec.policy, spec.workload);
        SimulationOptions sopts;
        sopts.batch_period = 5;
        sopts.seed = 4242;
        sopts.dataset = spec.name;
        SimulationEngine sim(&engine, reqs, sopts);
        sim.SpawnFleet(std::max(3, spec.num_vehicles), spec.capacity);
        DispatchConfig config;
        config.vehicle_capacity = spec.capacity;
        config.grouping.max_group_size = spec.capacity;
        config.sharegraph.vehicle_capacity = spec.capacity;
        if (cell.threads > 1) {
          config.sard_parallel_acceptance = true;
          config.num_threads = cell.threads;
        }
        config.soa_pools = soa_pools;
        return sim.Run(cell.algo, config);
      };
      RunMetrics pooled = run(true);
      RunMetrics legacy = run(false);
      EXPECT_EQ(pooled.served, legacy.served);
      EXPECT_EQ(pooled.cancelled, legacy.cancelled);
      EXPECT_EQ(pooled.unified_cost, legacy.unified_cost);  // bitwise
      EXPECT_EQ(pooled.travel_cost, legacy.travel_cost);
      EXPECT_EQ(pooled.penalty_cost, legacy.penalty_cost);
      EXPECT_EQ(pooled.service_rate, legacy.service_rate);
      EXPECT_EQ(pooled.sp_queries, legacy.sp_queries);
      EXPECT_EQ(pooled.sharegraph_pair_checks, legacy.sharegraph_pair_checks);
      EXPECT_EQ(pooled.memory_bytes, legacy.memory_bytes);
      EXPECT_EQ(pooled.pickup_wait_p50, legacy.pickup_wait_p50);
      EXPECT_EQ(pooled.pickup_wait_p99, legacy.pickup_wait_p99);
      EXPECT_EQ(pooled.mean_detour_ratio, legacy.mean_detour_ratio);
      EXPECT_EQ(pooled.late_dropoffs, legacy.late_dropoffs);
    }
  }
}

}  // namespace
}  // namespace structride
