#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "geo/angle.h"
#include "util/random.h"
#include "util/stats.h"
#include "util/thread_pool.h"

namespace structride {
namespace {

TEST(RngTest, SameSeedSameStream) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  bool any_diff = false;
  for (int i = 0; i < 16; ++i) {
    if (a.Next() != b.Next()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(RngTest, UniformIntStaysInClosedRange) {
  Rng rng(7);
  for (int i = 0; i < 5000; ++i) {
    int64_t v = rng.UniformInt(-3, 11);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 11);
  }
}

TEST(RngTest, UniformCoversRange) {
  Rng rng(9);
  double lo = 1, hi = 0;
  for (int i = 0; i < 5000; ++i) {
    double v = rng.Uniform(0, 1);
    lo = std::min(lo, v);
    hi = std::max(hi, v);
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 1);
  }
  EXPECT_LT(lo, 0.05);
  EXPECT_GT(hi, 0.95);
}

TEST(RunningStatTest, MeanAndStdDev) {
  RunningStat stat;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stat.Add(x);
  EXPECT_EQ(stat.Count(), 8u);
  EXPECT_DOUBLE_EQ(stat.Mean(), 5.0);
  EXPECT_NEAR(stat.StdDev(), 2.138, 1e-3);  // sample stddev
  EXPECT_DOUBLE_EQ(stat.Min(), 2.0);
  EXPECT_DOUBLE_EQ(stat.Max(), 9.0);
}

TEST(ThreadPoolTest, ParallelForRunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4);
  std::vector<int> counts(1000, 0);  // disjoint slots: no synchronization
  pool.ParallelFor(counts.size(), [&](size_t i) { ++counts[i]; });
  for (int c : counts) EXPECT_EQ(c, 1);
}

TEST(ThreadPoolTest, PoolIsReusableAcrossCalls) {
  ThreadPool pool(3);
  std::atomic<long> sum{0};
  for (int round = 0; round < 50; ++round) {
    pool.ParallelFor(100, [&](size_t i) {
      sum.fetch_add(static_cast<long>(i), std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(sum.load(), 50l * (99 * 100 / 2));
}

TEST(ThreadPoolTest, SingleThreadAndEmptyRangesRunInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1);
  int calls = 0;
  pool.ParallelFor(0, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.ParallelFor(7, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 7);
}

TEST(ThreadPoolTest, NestedParallelForRunsInlineWithoutDeadlock) {
  // Re-entering the pool from inside one of its own tasks must degrade to
  // the inline serial path (every worker could otherwise block waiting for
  // workers that no longer exist). Deterministic too: the inner loop runs
  // in index order on the calling worker.
  ThreadPool pool(4);
  std::vector<int> outer(8, 0);
  std::atomic<long> inner_sum{0};
  pool.ParallelFor(outer.size(), [&](size_t i) {
    ++outer[i];
    pool.ParallelFor(10, [&](size_t j) {
      inner_sum.fetch_add(static_cast<long>(j), std::memory_order_relaxed);
    });
  });
  for (int c : outer) EXPECT_EQ(c, 1);
  EXPECT_EQ(inner_sum.load(), 8l * 45);
}

TEST(AngleTest, OrthogonalAndParallel) {
  EXPECT_NEAR(AngleBetween({1, 0}, {0, 1}), kPi / 2, 1e-12);
  EXPECT_NEAR(AngleBetween({1, 0}, {2, 0}), 0, 1e-12);
  EXPECT_NEAR(AngleBetween({1, 0}, {-3, 0}), kPi, 1e-12);
  // Degenerate vectors never report a wide angle.
  EXPECT_DOUBLE_EQ(AngleBetween({0, 0}, {1, 1}), 0);
}

}  // namespace
}  // namespace structride
