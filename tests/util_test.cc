#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <numeric>
#include <thread>
#include <vector>

#include "geo/angle.h"
#include "util/latency_histogram.h"
#include "util/random.h"
#include "util/spsc_ring.h"
#include "util/stats.h"
#include "util/thread_pool.h"

namespace structride {
namespace {

TEST(RngTest, SameSeedSameStream) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  bool any_diff = false;
  for (int i = 0; i < 16; ++i) {
    if (a.Next() != b.Next()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(RngTest, UniformIntStaysInClosedRange) {
  Rng rng(7);
  for (int i = 0; i < 5000; ++i) {
    int64_t v = rng.UniformInt(-3, 11);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 11);
  }
}

TEST(RngTest, UniformCoversRange) {
  Rng rng(9);
  double lo = 1, hi = 0;
  for (int i = 0; i < 5000; ++i) {
    double v = rng.Uniform(0, 1);
    lo = std::min(lo, v);
    hi = std::max(hi, v);
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 1);
  }
  EXPECT_LT(lo, 0.05);
  EXPECT_GT(hi, 0.95);
}

TEST(RunningStatTest, MeanAndStdDev) {
  RunningStat stat;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stat.Add(x);
  EXPECT_EQ(stat.Count(), 8u);
  EXPECT_DOUBLE_EQ(stat.Mean(), 5.0);
  EXPECT_NEAR(stat.StdDev(), 2.138, 1e-3);  // sample stddev
  EXPECT_DOUBLE_EQ(stat.Min(), 2.0);
  EXPECT_DOUBLE_EQ(stat.Max(), 9.0);
}

TEST(ThreadPoolTest, ParallelForRunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4);
  std::vector<int> counts(1000, 0);  // disjoint slots: no synchronization
  pool.ParallelFor(counts.size(), [&](size_t i) { ++counts[i]; });
  for (int c : counts) EXPECT_EQ(c, 1);
}

TEST(ThreadPoolTest, PoolIsReusableAcrossCalls) {
  ThreadPool pool(3);
  std::atomic<long> sum{0};
  for (int round = 0; round < 50; ++round) {
    pool.ParallelFor(100, [&](size_t i) {
      sum.fetch_add(static_cast<long>(i), std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(sum.load(), 50l * (99 * 100 / 2));
}

TEST(ThreadPoolTest, SingleThreadAndEmptyRangesRunInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1);
  int calls = 0;
  pool.ParallelFor(0, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.ParallelFor(7, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 7);
}

TEST(ThreadPoolTest, NestedParallelForRunsInlineWithoutDeadlock) {
  // Re-entering the pool from inside one of its own tasks must degrade to
  // the inline serial path (every worker could otherwise block waiting for
  // workers that no longer exist). Deterministic too: the inner loop runs
  // in index order on the calling worker.
  ThreadPool pool(4);
  std::vector<int> outer(8, 0);
  std::atomic<long> inner_sum{0};
  pool.ParallelFor(outer.size(), [&](size_t i) {
    ++outer[i];
    pool.ParallelFor(10, [&](size_t j) {
      inner_sum.fetch_add(static_cast<long>(j), std::memory_order_relaxed);
    });
  });
  for (int c : outer) EXPECT_EQ(c, 1);
  EXPECT_EQ(inner_sum.load(), 8l * 45);
}

TEST(SpscRingTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscRing<int>(1).capacity(), 1u);
  EXPECT_EQ(SpscRing<int>(2).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(3).capacity(), 4u);
  EXPECT_EQ(SpscRing<int>(4096).capacity(), 4096u);
  EXPECT_EQ(SpscRing<int>(5000).capacity(), 8192u);
}

TEST(SpscRingTest, FullRejectsEmptyReturnsFalse) {
  SpscRing<int> ring(4);
  int out = 0;
  EXPECT_FALSE(ring.TryPop(&out));  // empty
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.TryPush(i));
  EXPECT_FALSE(ring.TryPush(99));  // full: the admission-control rejection
  EXPECT_EQ(ring.SizeApprox(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(ring.TryPop(&out));
    EXPECT_EQ(out, i);  // FIFO
  }
  EXPECT_FALSE(ring.TryPop(&out));
  EXPECT_EQ(ring.SizeApprox(), 0u);
}

TEST(SpscRingTest, WraparoundPreservesFifoOrder) {
  // Push/pop far past the capacity so the monotonic counters wrap the slot
  // array many times; order and values must survive every wrap.
  SpscRing<uint64_t> ring(8);
  uint64_t next_push = 0, next_pop = 0, out = 0;
  for (int round = 0; round < 1000; ++round) {
    const int burst = 1 + round % 8;
    for (int i = 0; i < burst; ++i) {
      ASSERT_TRUE(ring.TryPush(next_push));
      ++next_push;
    }
    for (int i = 0; i < burst; ++i) {
      ASSERT_TRUE(ring.TryPop(&out));
      ASSERT_EQ(out, next_pop);
      ++next_pop;
    }
  }
  EXPECT_EQ(ring.SizeApprox(), 0u);
}

TEST(SpscRingTest, CapacityOneAlternates) {
  SpscRing<int> ring(1);
  int out = 0;
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(ring.TryPush(i));
    EXPECT_FALSE(ring.TryPush(i));  // one slot, already full
    EXPECT_TRUE(ring.TryPop(&out));
    EXPECT_EQ(out, i);
    EXPECT_FALSE(ring.TryPop(&out));
  }
}

TEST(SpscRingTest, ConcurrentProducerConsumerDeliversEverythingInOrder) {
  // The TSan target for the ingestion path: one pushing thread racing one
  // popping thread across constant full/empty transitions on a tiny ring.
  // Every value must arrive exactly once, in order.
  SpscRing<uint64_t> ring(4);
  constexpr uint64_t kCount = 20000;
  std::thread producer([&] {
    for (uint64_t v = 0; v < kCount;) {
      if (ring.TryPush(v)) {
        ++v;
      } else {
        std::this_thread::yield();  // full: let the consumer drain
      }
    }
  });
  uint64_t expect = 0, out = 0;
  while (expect < kCount) {
    if (ring.TryPop(&out)) {
      ASSERT_EQ(out, expect);
      ++expect;
    } else {
      std::this_thread::yield();
    }
  }
  producer.join();
  EXPECT_FALSE(ring.TryPop(&out));
}

TEST(LatencyHistogramTest, BucketBoundariesPartitionTheRange) {
  // Every bucket's [lower, upper) maps back to the bucket itself at both
  // edges (lower inclusive, upper lands in the next bucket), the spans
  // tile with no gaps, and each bucket is at most 6.25% wide.
  for (int b = LatencyHistogram::kSubBuckets; b + 1 < LatencyHistogram::kNumBuckets; ++b) {
    const double lo = LatencyHistogram::BucketLower(b);
    const double hi = LatencyHistogram::BucketUpper(b);
    EXPECT_EQ(LatencyHistogram::BucketOf(lo), b);
    EXPECT_EQ(LatencyHistogram::BucketOf(hi), b + 1);
    EXPECT_EQ(LatencyHistogram::BucketUpper(b), LatencyHistogram::BucketLower(b + 1));
    EXPECT_LE((hi - lo) / lo, 1.0 / LatencyHistogram::kSubBuckets + 1e-12);
  }
  // The edge cases clamp instead of indexing out of range.
  EXPECT_EQ(LatencyHistogram::BucketOf(0), 0);
  EXPECT_EQ(LatencyHistogram::BucketOf(-3.5), 0);
  EXPECT_EQ(LatencyHistogram::BucketOf(std::nan("")), 0);
  EXPECT_EQ(LatencyHistogram::BucketOf(1e300), LatencyHistogram::kNumBuckets - 1);
  EXPECT_EQ(LatencyHistogram::BucketOf(std::numeric_limits<double>::infinity()),
            LatencyHistogram::kNumBuckets - 1);
}

TEST(LatencyHistogramTest, MergeIsAssociativeAndCommutative) {
  Rng rng(11);
  LatencyHistogram a, b, c;
  for (int i = 0; i < 500; ++i) a.Record(rng.Uniform(0, 1) * 100);
  for (int i = 0; i < 300; ++i) b.Record(rng.Uniform(0, 1) * 0.5);
  for (int i = 0; i < 700; ++i) c.Record(1 + rng.Uniform(0, 1) * 1e4);
  LatencyHistogram ab_c = a;   // (a+b)+c
  ab_c.Merge(b);
  ab_c.Merge(c);
  LatencyHistogram bc_a = b;   // (b+c)+a
  bc_a.Merge(c);
  bc_a.Merge(a);
  EXPECT_EQ(ab_c.count(), bc_a.count());
  EXPECT_EQ(ab_c.min(), bc_a.min());
  EXPECT_EQ(ab_c.max(), bc_a.max());
  for (int k = 0; k < LatencyHistogram::kNumBuckets; ++k) {
    ASSERT_EQ(ab_c.bucket_count(k), bc_a.bucket_count(k));
  }
  EXPECT_EQ(ab_c.Quantile(0.99), bc_a.Quantile(0.99));
}

TEST(LatencyHistogramTest, QuantilesTrackSortedReference) {
  // Against the exact nearest-rank quantile of the sorted samples, the
  // log-bucketed read-back must stay within one bucket width (~6.25%
  // relative) on a heavy-tailed mixture like real dispatch latencies.
  Rng rng(23);
  LatencyHistogram h;
  std::vector<double> samples;
  for (int i = 0; i < 20000; ++i) {
    double v = 0.1 * std::exp(3.0 * rng.Uniform(0, 1));  // log-uniform-ish
    if (i % 100 == 0) v *= 50;                       // a 1% far tail
    samples.push_back(v);
    h.Record(v);
  }
  std::sort(samples.begin(), samples.end());
  for (double q : {0.5, 0.9, 0.99, 0.999}) {
    const size_t rank = static_cast<size_t>(
        std::ceil(q * static_cast<double>(samples.size())));
    const double exact = samples[rank - 1];
    EXPECT_NEAR(h.Quantile(q), exact, exact * 0.0651)
        << "q=" << q;
  }
  // Extremes are exact, not bucketized.
  EXPECT_EQ(h.min(), samples.front());
  EXPECT_EQ(h.max(), samples.back());
}

TEST(LatencyHistogramTest, EmptyAndResetReportZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Quantile(0.5), 0);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  h.Record(4.2);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.Quantile(0.5), 4.2);  // single sample: clamped to exact
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Quantile(0.99), 0);
}

TEST(AngleTest, OrthogonalAndParallel) {
  EXPECT_NEAR(AngleBetween({1, 0}, {0, 1}), kPi / 2, 1e-12);
  EXPECT_NEAR(AngleBetween({1, 0}, {2, 0}), 0, 1e-12);
  EXPECT_NEAR(AngleBetween({1, 0}, {-3, 0}), kPi, 1e-12);
  // Degenerate vectors never report a wide angle.
  EXPECT_DOUBLE_EQ(AngleBetween({0, 0}, {1, 1}), 0);
}

}  // namespace
}  // namespace structride
