// Workload generation: deterministic per seed, release-sorted, and with
// deadline bookkeeping that matches the gamma policy exactly.

#include <gtest/gtest.h>

#include "roadnet/generator.h"
#include "sim/datasets.h"
#include "sim/workload.h"

namespace structride {
namespace {

struct WorkloadFixture : public ::testing::Test {
  WorkloadFixture() {
    CityOptions opt;
    opt.rows = 12;
    opt.cols = 12;
    opt.seed = 3;
    net = GenerateGridCity(opt);
    engine = std::make_unique<TravelCostEngine>(net);
  }
  RoadNetwork net;
  std::unique_ptr<TravelCostEngine> engine;
};

TEST_F(WorkloadFixture, SameSeedIdenticalStream) {
  DeadlinePolicy policy;
  WorkloadOptions opts;
  opts.num_requests = 150;
  opts.duration = 300;
  opts.seed = 77;
  auto a = GenerateWorkload(net, engine.get(), policy, opts);
  auto b = GenerateWorkload(net, engine.get(), policy, opts);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id);
    EXPECT_EQ(a[i].source, b[i].source);
    EXPECT_EQ(a[i].destination, b[i].destination);
    EXPECT_DOUBLE_EQ(a[i].release_time, b[i].release_time);
    EXPECT_DOUBLE_EQ(a[i].direct_cost, b[i].direct_cost);
    EXPECT_DOUBLE_EQ(a[i].deadline, b[i].deadline);
  }
}

TEST_F(WorkloadFixture, DifferentSeedDifferentStream) {
  DeadlinePolicy policy;
  WorkloadOptions opts;
  opts.num_requests = 50;
  opts.duration = 300;
  opts.seed = 1;
  auto a = GenerateWorkload(net, engine.get(), policy, opts);
  opts.seed = 2;
  auto b = GenerateWorkload(net, engine.get(), policy, opts);
  bool any_diff = false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].source != b[i].source || a[i].release_time != b[i].release_time) {
      any_diff = true;
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST_F(WorkloadFixture, SortedIdsAndDeadlinePolicy) {
  DeadlinePolicy policy;
  policy.gamma = 1.7;
  WorkloadOptions opts;
  opts.num_requests = 120;
  opts.duration = 240;
  opts.seed = 9;
  auto stream = GenerateWorkload(net, engine.get(), policy, opts);
  ASSERT_EQ(stream.size(), 120u);
  for (size_t i = 0; i < stream.size(); ++i) {
    const Request& r = stream[i];
    EXPECT_EQ(r.id, static_cast<RequestId>(i));
    if (i > 0) {
      EXPECT_GE(r.release_time, stream[i - 1].release_time);
    }
    EXPECT_GE(r.release_time, 0);
    EXPECT_LT(r.release_time, opts.duration);
    EXPECT_GT(r.direct_cost, 0);
    EXPECT_NEAR(r.deadline, r.release_time + policy.gamma * r.direct_cost,
                1e-9);
    EXPECT_NEAR(r.latest_pickup, r.deadline - r.direct_cost, 1e-9);
    // Direct cost is a real shortest path, so it dominates the euclid bound.
    EXPECT_GE(r.direct_cost,
              net.EuclidLowerBound(r.source, r.destination) - 1e-9);
  }
}

TEST(DatasetTest, ScaleAppliedExactlyOnce) {
  DatasetSpec full = DatasetByName("CHD", 1.0);
  DatasetSpec half = DatasetByName("CHD", 0.5);
  EXPECT_EQ(half.workload.num_requests, full.workload.num_requests / 2);
  EXPECT_EQ(half.num_vehicles, full.num_vehicles / 2);
  EXPECT_DOUBLE_EQ(half.workload.duration, full.workload.duration * 0.5);
  // Network size is a property of the city, not of the scale.
  EXPECT_EQ(half.city.rows, full.city.rows);
  EXPECT_EQ(half.city.cols, full.city.cols);
}

TEST(DatasetTest, AllPresetsBuild) {
  for (const char* name : {"CHD", "NYC", "Cainiao"}) {
    DatasetSpec spec = DatasetByName(name, 0.05);
    RoadNetwork net = BuildNetwork(&spec);
    EXPECT_GT(net.num_nodes(), 0u);
    EXPECT_GT(spec.num_vehicles, 0);
    EXPECT_GT(spec.workload.num_requests, 0);
  }
}

}  // namespace
}  // namespace structride
