// The counting-allocator gate (DESIGN.md §8). Targets that link
// util/counting_new.cc get global operator new/delete overrides that count
// every heap allocation into the atomic below and flip the active flag;
// everything else sees a counter frozen at zero and an inactive gate.
//
// The simulation engine samples the counter around each dispatch round and
// reports per-steady-round allocation counts in RunMetrics — the "zero heap
// allocations per steady-state batch" guarantee is asserted by
// tests/alloc_gate_test.cc (controlled pools, max == 0) and by
// abl_parallel_scaling (real runs at 1/2/4/8 threads, median == 0).

#pragma once

#include <atomic>
#include <cstdint>

namespace structride {
namespace alloc_gate {

inline std::atomic<uint64_t> g_heap_allocs{0};
inline std::atomic<bool> g_counting_installed{false};

}  // namespace alloc_gate

/// Heap allocations observed so far; 0 forever unless counting_new.cc is
/// linked into this binary.
inline uint64_t CurrentHeapAllocCount() {
  return alloc_gate::g_heap_allocs.load(std::memory_order_relaxed);
}

/// True when the global operator new/delete overrides are present, i.e.
/// the counter actually moves and per-batch deltas mean something.
inline bool HeapAllocCountingActive() {
  return alloc_gate::g_counting_installed.load(std::memory_order_relaxed);
}

}  // namespace structride
