// Epoch (bump) arena: the allocation substrate of the SoA hot path
// (DESIGN.md §8). Dispatch rounds, grouping enumeration, insertion scratch
// and proposal buffers bump-allocate from an arena and the whole thing is
// rewound once per batch — after the first few batches have grown the
// chunks, a steady-state round performs zero heap allocations.
//
// Lifetime rules:
//  - Allocate() returns storage valid until the enclosing Reset() (or a
//    Restore() past it). Chunks are retained across Reset, so a warmed
//    arena never re-allocates for workloads no bigger than it has seen.
//  - Chunks never move: pointers stay stable while allocation continues,
//    which is what lets pooled schedules reference earlier arena blocks.
//  - Save()/Restore() give nested scopes (ArenaScope) a stack discipline on
//    top of the epoch: a scope's allocations die at scope exit, its
//    parent's survive.
//  - Arenas are single-threaded. Cross-thread use goes through the
//    per-thread ScratchArena(); worker pools keep threads alive across
//    batches, so thread scratch warms exactly like the batch arena.

#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <type_traits>
#include <vector>

namespace structride {

namespace arena_internal {
// Process-wide retained-byte accounting (all arenas, all threads), sampled
// into RunMetrics::arena_peak_bytes. Updated only on the cold paths (chunk
// allocation / arena destruction), never per Allocate.
inline std::atomic<size_t> g_retained_bytes{0};
inline std::atomic<size_t> g_peak_retained_bytes{0};

inline void NoteRetained(size_t delta) {
  size_t now = g_retained_bytes.fetch_add(delta, std::memory_order_relaxed) +
               delta;
  size_t peak = g_peak_retained_bytes.load(std::memory_order_relaxed);
  while (now > peak &&
         !g_peak_retained_bytes.compare_exchange_weak(
             peak, now, std::memory_order_relaxed)) {
  }
}
inline void NoteReleased(size_t delta) {
  g_retained_bytes.fetch_sub(delta, std::memory_order_relaxed);
}
}  // namespace arena_internal

class EpochArena {
 public:
  /// Position watermark for nested scopes: which chunk, how far into it.
  struct Mark {
    size_t chunk = 0;
    size_t used = 0;
  };

  explicit EpochArena(size_t first_chunk_bytes = kDefaultFirstChunk)
      : first_chunk_bytes_(first_chunk_bytes) {}

  EpochArena(const EpochArena&) = delete;
  EpochArena& operator=(const EpochArena&) = delete;

  ~EpochArena() {
    for (const Chunk& c : chunks_) {
      arena_internal::NoteReleased(c.size);
      ::operator delete(c.data);
    }
  }

  /// Raw bump allocation; alignment must be a power of two.
  void* Allocate(size_t bytes, size_t align = alignof(std::max_align_t)) {
    if (bytes == 0) bytes = 1;
    while (true) {
      if (chunk_ < chunks_.size()) {
        Chunk& c = chunks_[chunk_];
        size_t at = (used_ + (align - 1)) & ~(align - 1);
        if (at + bytes <= c.size) {
          used_ = at + bytes;
          return c.data + at;
        }
        // Doesn't fit: move to the next retained chunk (or grow below).
        if (chunk_ + 1 < chunks_.size()) {
          ++chunk_;
          used_ = 0;
          continue;
        }
      }
      AddChunk(bytes + align);
    }
  }

  template <typename T>
  T* AllocateArray(size_t n) {
    static_assert(std::is_trivially_destructible<T>::value,
                  "arena storage is never destructed");
    return static_cast<T*>(Allocate(n * sizeof(T), alignof(T)));
  }

  /// Rewinds to empty; chunks are retained, so a warmed arena re-serves the
  /// same workload without touching the heap. Bumps the epoch.
  void Reset() {
    chunk_ = 0;
    used_ = 0;
    ++epoch_;
  }

  Mark Save() const { return {chunk_, used_}; }
  void Restore(const Mark& m) {
    chunk_ = m.chunk;
    used_ = m.used;
  }

  uint64_t epoch() const { return epoch_; }

  /// Heap bytes held by the chunks (survives Reset; this is the warmth).
  size_t retained_bytes() const {
    size_t total = 0;
    for (const Chunk& c : chunks_) total += c.size;
    return total;
  }

  /// Bytes currently handed out (full chunks before chunk_ plus the bump).
  size_t used_bytes() const {
    size_t total = 0;
    for (size_t k = 0; k < chunk_ && k < chunks_.size(); ++k) {
      total += chunks_[k].size;
    }
    return total + used_;
  }

  static size_t ProcessRetainedBytes() {
    return arena_internal::g_retained_bytes.load(std::memory_order_relaxed);
  }
  /// High-water mark of ProcessRetainedBytes over the process lifetime.
  static size_t ProcessPeakRetainedBytes() {
    return arena_internal::g_peak_retained_bytes.load(
        std::memory_order_relaxed);
  }

 private:
  // Generous enough that realistic per-batch / per-task scratch fits the
  // very first chunk — warm-up is one allocation, steady state is zero.
  static constexpr size_t kDefaultFirstChunk = size_t{256} << 10;

  struct Chunk {
    char* data = nullptr;
    size_t size = 0;
  };

  void AddChunk(size_t at_least) {
    size_t size = chunks_.empty() ? first_chunk_bytes_
                                  : chunks_.back().size * 2;
    if (size < at_least) size = at_least;
    Chunk c;
    c.data = static_cast<char*>(::operator new(size));
    c.size = size;
    arena_internal::NoteRetained(size);
    chunks_.push_back(c);
    chunk_ = chunks_.size() - 1;
    used_ = 0;
  }

  size_t first_chunk_bytes_;
  std::vector<Chunk> chunks_;
  size_t chunk_ = 0;  ///< current chunk index (== chunks_.size() when empty)
  size_t used_ = 0;   ///< bump offset into chunks_[chunk_]
  uint64_t epoch_ = 0;
};

/// The calling thread's scratch arena. Persistent for the thread's
/// lifetime; pool workers live across batches, so their scratch warms once.
/// Always use through ArenaScope so nested callers compose.
inline EpochArena& ScratchArena() {
  thread_local EpochArena arena;
  return arena;
}

/// RAII watermark: allocations made after construction are released (the
/// position rewinds) at destruction. Parent scopes' blocks are untouched.
class ArenaScope {
 public:
  explicit ArenaScope(EpochArena& arena) : arena_(&arena), mark_(arena.Save()) {}
  ~ArenaScope() { arena_->Restore(mark_); }

  ArenaScope(const ArenaScope&) = delete;
  ArenaScope& operator=(const ArenaScope&) = delete;

  EpochArena* arena() const { return arena_; }
  template <typename T>
  T* AllocateArray(size_t n) const {
    return arena_->AllocateArray<T>(n);
  }

 private:
  EpochArena* arena_;
  EpochArena::Mark mark_;
};

}  // namespace structride
