// Small bit-twiddling helpers shared by the cache sizing code.

#pragma once

#include <cstddef>

namespace structride {

/// Smallest power of two >= v (returns 1 for v == 0).
inline size_t RoundUpPow2(size_t v) {
  size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace structride
