// Global operator new/delete overrides that count every heap allocation.
// Linked ONLY into the gated targets (tests/alloc_gate_test,
// abl_parallel_scaling) — never into the structride library — so ordinary
// binaries pay nothing. One relaxed fetch_add per allocation; frees are
// not counted (the gate is about allocation churn, and counting both
// would double-charge every temporary).

#include <cstdlib>
#include <new>

#include "util/alloc_gate.h"

namespace {

// Flip the active flag during static initialization, before main.
const bool g_installed = [] {
  structride::alloc_gate::g_counting_installed.store(
      true, std::memory_order_relaxed);
  return true;
}();

void* CountedAlloc(std::size_t size) {
  structride::alloc_gate::g_heap_allocs.fetch_add(1,
                                                  std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}

void* CountedAlignedAlloc(std::size_t size, std::size_t align) {
  structride::alloc_gate::g_heap_allocs.fetch_add(1,
                                                  std::memory_order_relaxed);
  void* p = nullptr;
  if (align < sizeof(void*)) align = sizeof(void*);
  if (posix_memalign(&p, align, size ? size : align) != 0) return nullptr;
  return p;
}

}  // namespace

void* operator new(std::size_t size) {
  (void)g_installed;
  void* p = CountedAlloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return CountedAlloc(size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return CountedAlloc(size);
}
void* operator new(std::size_t size, std::align_val_t align) {
  void* p = CountedAlignedAlloc(size, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return CountedAlignedAlloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return CountedAlignedAlloc(size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
