// A fixed-size, allocation-free, log-bucketed histogram for latency samples
// (DESIGN.md §13). Buckets are base-2 octaves split into 16 linear
// sub-buckets each (frexp exponent + 4 mantissa bits), so every bucket's
// width is at most 6.25% of its value and any quantile read back is within
// ~3.2% relative error of the exact sample quantile — tight enough for SLO
// gating without storing samples. Recording is two array writes; histograms
// from different threads merge by summing counters, and merging is
// associative and commutative by construction.
//
// Units are the caller's: the histogram bucketizes positive doubles
// covering ~1e-9 .. 1e9 of whatever unit goes in (the service mode records
// milliseconds). Non-positive and sub-range samples clamp into the edge
// buckets; the exact running min/max are kept so the extremes stay honest.

#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

namespace structride {

class LatencyHistogram {
 public:
  static constexpr int kSubBits = 4;  ///< 16 sub-buckets per octave
  static constexpr int kSubBuckets = 1 << kSubBits;
  /// frexp exponents covered: [kMinExp, kMaxExp] spans ~1e-9 .. ~1e9.
  static constexpr int kMinExp = -29;
  static constexpr int kMaxExp = 30;
  static constexpr int kNumBuckets = (kMaxExp - kMinExp + 1) * kSubBuckets;

  LatencyHistogram() { Reset(); }

  void Reset() {
    for (uint64_t& c : counts_) c = 0;
    count_ = 0;
    min_ = std::numeric_limits<double>::infinity();
    max_ = 0;
  }

  /// Records one sample. Never allocates.
  void Record(double value) {
    ++counts_[BucketOf(value)];
    ++count_;
    if (value < min_) min_ = value;
    if (value > max_) max_ = value;
  }

  /// Folds \p other into this histogram (per-bucket sum). (a+b)+c and
  /// a+(b+c) produce identical counters.
  void Merge(const LatencyHistogram& other) {
    for (int b = 0; b < kNumBuckets; ++b) counts_[b] += other.counts_[b];
    count_ += other.count_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }

  uint64_t count() const { return count_; }
  /// Exact extremes over the recorded samples (0 / 0 when empty).
  double min() const { return count_ == 0 ? 0 : min_; }
  double max() const { return count_ == 0 ? 0 : max_; }

  /// Nearest-rank quantile (\p q in [0, 1]): the geometric midpoint of the
  /// bucket holding the rank-ceil(q*count) sample, clamped to the exact
  /// [min, max] observed. 0 when empty.
  double Quantile(double q) const {
    if (count_ == 0) return 0;
    uint64_t rank = static_cast<uint64_t>(
        std::ceil(q * static_cast<double>(count_)));
    if (rank == 0) rank = 1;
    if (rank > count_) rank = count_;
    uint64_t seen = 0;
    for (int b = 0; b < kNumBuckets; ++b) {
      seen += counts_[b];
      if (seen >= rank) {
        return std::min(std::max(BucketMid(b), min_), max_);
      }
    }
    return max_;  // unreachable: seen reaches count_ on the last bucket
  }

  uint64_t bucket_count(int b) const { return counts_[b]; }

  /// The bucket a sample lands in — exposed for the boundary tests.
  static int BucketOf(double value) {
    if (!(value > 0) || std::isinf(value) || std::isnan(value)) {
      return value > 0 ? kNumBuckets - 1 : 0;  // +inf clamps high, rest low
    }
    int exp = 0;
    const double mantissa = std::frexp(value, &exp);  // in [0.5, 1)
    if (exp < kMinExp) return 0;
    if (exp > kMaxExp) return kNumBuckets - 1;
    // Mantissa in [0.5, 1) maps linearly onto the octave's 16 sub-buckets.
    int sub = static_cast<int>((mantissa - 0.5) * 2 * kSubBuckets);
    if (sub >= kSubBuckets) sub = kSubBuckets - 1;
    return (exp - kMinExp) * kSubBuckets + sub;
  }

  /// [lower, upper) value range of bucket \p b.
  static double BucketLower(int b) {
    const int exp = b / kSubBuckets + kMinExp;
    const int sub = b % kSubBuckets;
    return std::ldexp(0.5 + static_cast<double>(sub) / (2 * kSubBuckets), exp);
  }
  static double BucketUpper(int b) {
    const int exp = b / kSubBuckets + kMinExp;
    const int sub = b % kSubBuckets;
    return std::ldexp(0.5 + static_cast<double>(sub + 1) / (2 * kSubBuckets),
                      exp);
  }

 private:
  static double BucketMid(int b) {
    return std::sqrt(BucketLower(b) * BucketUpper(b));
  }

  uint64_t counts_[kNumBuckets];
  uint64_t count_ = 0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = 0;
};

}  // namespace structride
