// Minimal check/log macros for the structride library. SR_CHECK aborts with
// file:line context on failure; it is always on (benches and dispatch code
// use it to guard invariants that must hold even in Release builds).

#pragma once

#include <cstdio>
#include <cstdlib>

namespace structride {
namespace internal {

[[noreturn]] inline void CheckFailed(const char* expr, const char* file,
                                     int line) {
  std::fprintf(stderr, "[structride] CHECK failed: %s at %s:%d\n", expr, file,
               line);
  std::fflush(stderr);
  std::abort();
}

}  // namespace internal
}  // namespace structride

#define SR_CHECK(expr)                                                \
  do {                                                                \
    if (!(expr)) {                                                    \
      ::structride::internal::CheckFailed(#expr, __FILE__, __LINE__); \
    }                                                                 \
  } while (0)

#define SR_CHECK_GE(a, b) SR_CHECK((a) >= (b))
#define SR_CHECK_LE(a, b) SR_CHECK((a) <= (b))
#define SR_CHECK_LT(a, b) SR_CHECK((a) < (b))
#define SR_CHECK_EQ(a, b) SR_CHECK((a) == (b))

// Lightweight stderr logging; keep it printf-style so benches stay free of
// iostream static-init overhead.
#define SR_LOG(...)                        \
  do {                                     \
    std::fprintf(stderr, "[structride] "); \
    std::fprintf(stderr, __VA_ARGS__);     \
    std::fprintf(stderr, "\n");            \
  } while (0)
