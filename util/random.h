// Seeded RNG used everywhere determinism matters (workload generation,
// fleet spawning, fault models). A thin wrapper over a fixed-algorithm
// generator so streams are reproducible across platforms and stdlib
// versions, unlike std::default_random_engine / std::uniform_*distribution.

#pragma once

#include <cmath>
#include <cstdint>

namespace structride {

class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed ? seed : 0x9e3779b97f4a7c15ull) {}

  // splitmix64: tiny, fast, and fully specified.
  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  /// Uniform integer in the closed interval [lo, hi].
  int64_t UniformInt(int64_t lo, int64_t hi) {
    if (hi <= lo) return lo;
    uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    return lo + static_cast<int64_t>(Next() % span);
  }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) {
    double u = static_cast<double>(Next() >> 11) * 0x1.0p-53;  // [0,1)
    return lo + u * (hi - lo);
  }

  /// Standard normal via Box-Muller (deterministic, two draws per call).
  double Gaussian(double mean, double stddev) {
    double u1 = Uniform(1e-12, 1.0);
    double u2 = Uniform(0.0, 1.0);
    double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * kTwoPi_ * u2);
    return mean + stddev * z;
  }

  /// Exponential with the given mean.
  double Exponential(double mean) {
    double u = Uniform(1e-12, 1.0);
    return -mean * std::log(u);
  }

 private:
  static constexpr double kTwoPi_ = 3.14159265358979323846;
  uint64_t state_;
};

}  // namespace structride
