// Minimal contiguous view (C++17 stand-in for std::span): pointer + length
// over memory owned elsewhere. Used for the frozen CSR arc ranges and the
// batched travel-cost API so hot loops iterate raw arrays without the
// per-node vector header indirection.

#pragma once

#include <cstddef>
#include <vector>

namespace structride {

template <typename T>
class Span {
 public:
  constexpr Span() = default;
  constexpr Span(T* data, size_t size) : data_(data), size_(size) {}
  template <typename U>
  Span(const std::vector<U>& v) : data_(v.data()), size_(v.size()) {}

  constexpr T* begin() const { return data_; }
  constexpr T* end() const { return data_ + size_; }
  constexpr T* data() const { return data_; }
  constexpr size_t size() const { return size_; }
  constexpr bool empty() const { return size_ == 0; }
  constexpr T& operator[](size_t i) const { return data_[i]; }

 private:
  T* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace structride
