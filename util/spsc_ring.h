// A bounded, lock-free single-producer/single-consumer ring — the ingestion
// path of the streaming service mode (DESIGN.md §13). The producer (the
// ingestion thread pacing arrivals at a target qps) and the consumer (the
// event core, draining at batch boundaries) each touch exactly one atomic
// index of the other side, so neither ever blocks and a full ring simply
// rejects the push — that rejection *is* the admission-control bound, and
// the caller counts it as a shed request.
//
// Implementation notes:
//  - Monotonic 64-bit push/pop counters (slot = counter & mask) instead of
//    the classic one-slot-wasted head/tail ring, so every capacity works —
//    including capacity 1 — and full/empty are unambiguous
//    (push - pop == capacity / push == pop).
//  - Each side keeps a cached copy of the other side's counter and only
//    re-reads the shared atomic when the cached value says full/empty, so
//    the steady-state push and pop are one relaxed load + one release store
//    each (the classic Rigtorp/folly SPSC refinement).
//  - Capacity is rounded up to a power of two at construction; the slot
//    array never reallocates afterwards, so the hot path is allocation-free.
//  - Strictly SPSC: one pushing thread, one popping thread. SizeApprox()
//    may be read from either side (or a third thread) and is exact when
//    read by the producer or consumer between their own operations.

#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/logging.h"

namespace structride {

template <typename T>
class SpscRing {
 public:
  /// \p capacity is rounded up to the next power of two (>= 1).
  explicit SpscRing(size_t capacity) {
    SR_CHECK(capacity > 0);
    size_t cap = 1;
    while (cap < capacity) cap <<= 1;
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  /// Producer side. Returns false (and leaves the ring untouched) when the
  /// ring is full — the admission-control rejection.
  bool TryPush(const T& value) {
    const uint64_t push = push_.load(std::memory_order_relaxed);
    if (push - cached_pop_ == slots_.size()) {
      cached_pop_ = pop_.load(std::memory_order_acquire);
      if (push - cached_pop_ == slots_.size()) return false;  // truly full
    }
    slots_[static_cast<size_t>(push) & mask_] = value;
    push_.store(push + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side. Returns false when the ring is empty.
  bool TryPop(T* out) {
    const uint64_t pop = pop_.load(std::memory_order_relaxed);
    if (pop == cached_push_) {
      cached_push_ = push_.load(std::memory_order_acquire);
      if (pop == cached_push_) return false;  // truly empty
    }
    *out = slots_[static_cast<size_t>(pop) & mask_];
    pop_.store(pop + 1, std::memory_order_release);
    return true;
  }

  /// Entries currently queued. Exact from the producer or consumer thread
  /// (between that side's own operations); a racing snapshot otherwise.
  size_t SizeApprox() const {
    const uint64_t push = push_.load(std::memory_order_acquire);
    const uint64_t pop = pop_.load(std::memory_order_acquire);
    return push >= pop ? static_cast<size_t>(push - pop) : 0;
  }

  size_t capacity() const { return slots_.size(); }

  size_t MemoryBytes() const { return slots_.capacity() * sizeof(T); }

 private:
  std::vector<T> slots_;
  size_t mask_ = 0;
  // Producer-owned line: its counter plus its cache of the consumer's.
  alignas(64) std::atomic<uint64_t> push_{0};
  uint64_t cached_pop_ = 0;
  // Consumer-owned line.
  alignas(64) std::atomic<uint64_t> pop_{0};
  uint64_t cached_push_ = 0;
};

}  // namespace structride
