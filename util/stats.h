// Streaming mean/variance accumulator (Welford) used by the ablation
// benches to fit trip-cost distributions without buffering samples.

#pragma once

#include <cmath>
#include <cstddef>

namespace structride {

class RunningStat {
 public:
  void Add(double x) {
    ++count_;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    if (count_ == 1 || x < min_) min_ = x;
    if (count_ == 1 || x > max_) max_ = x;
  }

  size_t Count() const { return count_; }
  double Mean() const { return mean_; }
  double Variance() const {
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
  }
  double StdDev() const { return std::sqrt(Variance()); }
  double Min() const { return min_; }
  double Max() const { return max_; }

 private:
  size_t count_ = 0;
  double mean_ = 0;
  double m2_ = 0;
  double min_ = 0;
  double max_ = 0;
};

}  // namespace structride
