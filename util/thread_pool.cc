#include "util/thread_pool.h"

#include <algorithm>

namespace structride {

namespace {

// The pool this thread is currently draining a generation for. A nested
// ParallelFor on the same pool (e.g. a dispatcher pricing groups from inside
// a concurrent shard task) would wait forever on the generation barrier, so
// ParallelFor checks this marker and runs nested ranges inline instead.
thread_local const ThreadPool* tls_active_pool = nullptr;

}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  int workers = std::max(0, num_threads - 1);
  workers_.reserve(static_cast<size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::Drain() {
  // Claim indices until the range is exhausted; fn_ stays valid for the
  // whole generation because ParallelFor only returns after every worker
  // reports back.
  const std::function<void(size_t)>& fn = *fn_;
  const size_t n = n_;
  const ThreadPool* prev = tls_active_pool;
  tls_active_pool = this;
  for (size_t i = next_.fetch_add(1, std::memory_order_relaxed); i < n;
       i = next_.fetch_add(1, std::memory_order_relaxed)) {
    fn(i);
  }
  tls_active_pool = prev;
}

void ThreadPool::WorkerLoop() {
  uint64_t seen = 0;
  while (true) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      start_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
    }
    Drain();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--workers_active_ == 0) done_cv_.notify_all();
    }
  }
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (tls_active_pool == this || workers_.empty() || n == 1) {
    // Inline path: trivial ranges, no workers, or a nested call from inside
    // a generation this thread is already draining (re-arming the barrier
    // from a worker would deadlock). Serial, hence deterministic.
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    fn_ = &fn;
    n_ = n;
    next_.store(0, std::memory_order_relaxed);
    workers_active_ = workers_.size();
    ++generation_;
  }
  start_cv_.notify_all();
  Drain();  // the caller is a worker too
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [&] { return workers_active_ == 0; });
  fn_ = nullptr;
}

}  // namespace structride
