// A persistent worker pool with a blocking ParallelFor. Dispatchers and the
// simulation engine reuse one pool across batches instead of spawning and
// joining fresh std::threads every round — at bench scale thread startup was
// a measurable share of a batch, and a pool makes worker count a property of
// the run, not of each call site.
//
// Determinism contract: ParallelFor(n, fn) runs fn(0..n-1) exactly once
// each, in an unspecified interleaving. Callers keep results deterministic
// by writing to disjoint, index-addressed slots and doing any order-
// sensitive merging serially afterwards.

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace structride {

class ThreadPool {
 public:
  /// Spawns max(0, num_threads - 1) workers; the calling thread participates
  /// in every ParallelFor, so `num_threads` is the total parallelism.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total threads that work a ParallelFor (workers + caller).
  int size() const { return static_cast<int>(workers_.size()) + 1; }

  /// Runs fn(i) for every i in [0, n); blocks until all complete. Indices
  /// are claimed dynamically, so uneven task costs balance. One top-level
  /// ParallelFor at a time per pool; a nested call made from inside fn on
  /// the same pool is detected and runs its whole range inline on the
  /// calling thread (serially, hence deterministically) instead of
  /// deadlocking on the generation barrier.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

 private:
  void WorkerLoop();
  void Drain();

  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  const std::function<void(size_t)>* fn_ = nullptr;  // guarded by mutex_
  size_t n_ = 0;
  std::atomic<size_t> next_{0};
  size_t workers_active_ = 0;
  uint64_t generation_ = 0;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace structride
